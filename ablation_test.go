// Ablation benchmarks: isolate the mechanisms DESIGN.md §5 claims drive
// each result, by sweeping the input property the mechanism responds to.
// Each bench reports the measured effect as a metric so a reviewer can see
// the causal knob move.
package repro

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/device"
	"repro/internal/kernels"
	"repro/internal/sparse"
	"repro/internal/variant"
)

// skewedPreset builds a synthetic dataset with a controlled Zipf exponent
// so the row-degree skew — the cause of the flat kernel's warp imbalance —
// can be swept directly.
func skewedPreset(skew float64) dataset.Preset {
	return dataset.Preset{
		Name: "SKEW", Long: "skew ablation", Users: 4000, Items: 800,
		NNZ: 120000, MinVal: 1, MaxVal: 5, UserSkew: skew, ItemSkew: 0.5,
	}
}

// BenchmarkAblationSkewVsFlatPenalty: the thread-batching claim. As row
// skew grows, the flat one-thread-per-row GPU kernel pays increasing warp
// serialization while the batched kernel is insensitive — the flat/batched
// ratio must grow with skew.
func BenchmarkAblationSkewVsFlatPenalty(b *testing.B) {
	gpu := device.K20c()
	var prev float64
	for _, skew := range []float64{0.05, 0.6, 1.1} {
		skew := skew
		b.Run("zipf"+ftoa(skew), func(b *testing.B) {
			mx := skewedPreset(skew).Generate(1).Matrix
			imb := sparse.WarpImbalance(mx.R, 32)
			var ratio float64
			for i := 0; i < b.N; i++ {
				flat, err := kernels.Train(mx, kernels.Config{Device: gpu, Spec: kernels.Baseline(),
					K: 10, Lambda: 0.1, Iterations: 1, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				batched, err := kernels.Train(mx, kernels.Config{Device: gpu, Spec: kernels.Spec{},
					K: 10, Lambda: 0.1, Iterations: 1, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				ratio = flat.Seconds() / batched.Seconds()
			}
			b.ReportMetric(imb, "warp_imbalance")
			b.ReportMetric(ratio, "flat_over_batched_x")
			if prev != 0 && ratio < prev*0.95 {
				b.Errorf("flat penalty did not grow with skew: %.2f after %.2f", ratio, prev)
			}
			prev = ratio
		})
	}
}

// BenchmarkAblationCacheWorkingSet: the CPU local-memory claim. Staging
// pays off because the scattered walk over Y wastes cachelines; when Y far
// exceeds the LLC the first-stream misses grow too. Sweeping the item count
// (Y size) must increase the no-staging cost per nonzero.
func BenchmarkAblationCacheWorkingSet(b *testing.B) {
	cpu := device.XeonE52670()
	for _, items := range []int{2000, 100000, 800000} {
		items := items
		b.Run("items"+itoa(items), func(b *testing.B) {
			p := dataset.Preset{
				Name: "CACHE", Long: "cache ablation", Users: 3000, Items: items,
				NNZ: 90000, MinVal: 1, MaxVal: 5, UserSkew: 0.5, ItemSkew: 0.3,
			}
			mx := p.Generate(2).Matrix
			var perNNZ, boost float64
			for i := 0; i < b.N; i++ {
				plain, err := kernels.Train(mx, kernels.Config{Device: cpu, Spec: kernels.Spec{},
					K: 10, Lambda: 0.1, Iterations: 1, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				staged, err := kernels.Train(mx, kernels.Config{Device: cpu,
					Spec: kernels.Spec{S1Local: true, S2Local: true},
					K:    10, Lambda: 0.1, Iterations: 1, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				perNNZ = plain.Seconds() / float64(mx.NNZ()) * 1e9
				boost = plain.Seconds() / staged.Seconds()
			}
			b.ReportMetric(perNNZ, "ns_per_nnz_unstaged")
			b.ReportMetric(boost, "staging_boost_x")
		})
	}
}

// BenchmarkAblationTransferShare: the PCIe-placement choice. The one-time
// transfer must dominate tiny accelerator runs and vanish on large ones.
func BenchmarkAblationTransferShare(b *testing.B) {
	gpu := device.K20c()
	for _, scale := range []float64{0.01, 0.3} {
		scale := scale
		b.Run("scale"+ftoa(scale), func(b *testing.B) {
			mx := dataset.YahooR4.ScaledForBench(scale).Generate(3).Matrix
			var share float64
			for i := 0; i < b.N; i++ {
				res, err := kernels.Train(mx, kernels.Config{Device: gpu,
					Spec: kernels.FromVariant(variant.Options{Local: true, Register: true}),
					K:    10, Lambda: 0.1, Iterations: 5, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				share = res.TransferSeconds / res.Seconds()
			}
			b.ReportMetric(share*100, "transfer_pct")
		})
	}
}

// BenchmarkAblationGroupGrid: the launch-grid choice (the paper's fixed
// 8192 groups). Too few groups starve the compute units; the makespan
// stops improving once groups >> CUs.
func BenchmarkAblationGroupGrid(b *testing.B) {
	gpu := device.K20c()
	mx := dataset.Netflix.ScaledForBench(0.002).Generate(4).Matrix
	for _, groups := range []int{4, 64, 8192} {
		groups := groups
		b.Run("groups"+itoa(groups), func(b *testing.B) {
			var secs float64
			for i := 0; i < b.N; i++ {
				res, err := kernels.Train(mx, kernels.Config{Device: gpu,
					Spec: kernels.FromVariant(variant.Options{Local: true, Register: true}),
					K:    10, Lambda: 0.1, Iterations: 1, Seed: 1, Groups: groups})
				if err != nil {
					b.Fatal(err)
				}
				secs = res.Seconds()
			}
			b.ReportMetric(secs, "sim_seconds")
		})
	}
}

func ftoa(f float64) string {
	// fixed 2-decimal formatting without fmt (keeps bench names stable)
	n := int(f*100 + 0.5)
	frac := itoa(n % 100)
	if n%100 < 10 {
		frac = "0" + frac
	}
	return itoa(n/100) + "p" + frac
}
