package sim

import (
	"testing"
	"testing/quick"

	"repro/internal/device"
)

func unitKernel(cost float64) Kernel {
	return func(task int, acc *Acc) {
		acc.Charge(S1, device.Counters{Overhead: cost})
	}
}

func TestRunDistributesTasks(t *testing.T) {
	dev := device.K20c()
	var mu = make(chan int, 1000)
	kernel := func(task int, acc *Acc) {
		mu <- task
		acc.Charge(S2, device.Counters{Overhead: 1})
	}
	rep := Run(Launch{Device: dev, Groups: 7, GroupSize: 32, Tasks: 100}, kernel)
	close(mu)
	seen := map[int]int{}
	for task := range mu {
		seen[task]++
	}
	if len(seen) != 100 {
		t.Fatalf("kernel ran for %d distinct tasks, want 100", len(seen))
	}
	for task, n := range seen {
		if n != 1 {
			t.Fatalf("task %d ran %d times", task, n)
		}
	}
	if rep.StageCycles[S2] != 100 {
		t.Fatalf("S2 cycles = %g, want 100", rep.StageCycles[S2])
	}
}

// TestMakespanIsMaxOverCUs: with one group per CU and unequal costs, the
// makespan equals the slowest group.
func TestMakespanIsMaxOverCUs(t *testing.T) {
	dev := device.K20c() // 13 CUs
	kernel := func(task int, acc *Acc) {
		acc.Charge(S1, device.Counters{Overhead: float64((task + 1) * 100)})
	}
	rep := Run(Launch{Device: dev, Groups: 13, GroupSize: 32, Tasks: 13}, kernel)
	if rep.MakespanCycles != 1300 {
		t.Fatalf("makespan = %g, want 1300 (slowest group)", rep.MakespanCycles)
	}
}

// TestMakespanImbalance: the round-robin CU schedule exposes load imbalance
// (two heavy groups landing on the same CU when groups > CUs).
func TestMakespanImbalance(t *testing.T) {
	dev := device.K20c()
	// 26 groups on 13 CUs: groups g and g+13 share CU g.
	kernel := func(task int, acc *Acc) {
		cost := 1.0
		if task == 0 || task == 13 {
			cost = 1000
		}
		acc.Charge(S1, device.Counters{Overhead: cost})
	}
	rep := Run(Launch{Device: dev, Groups: 26, GroupSize: 32, Tasks: 26}, kernel)
	if rep.MakespanCycles != 2000 {
		t.Fatalf("makespan = %g, want 2000 (both heavy groups on CU 0)", rep.MakespanCycles)
	}
}

func TestGroupsClampedToTasks(t *testing.T) {
	dev := device.XeonE52670()
	rep := Run(Launch{Device: dev, Groups: 8192, GroupSize: 32, Tasks: 3}, unitKernel(10))
	if rep.StageCycles[S1] != 30 {
		t.Fatalf("S1 cycles = %g, want 30", rep.StageCycles[S1])
	}
	// 3 groups on 16 CUs: each CU holds at most one group.
	if rep.MakespanCycles != 10 {
		t.Fatalf("makespan = %g, want 10", rep.MakespanCycles)
	}
}

func TestRunPanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Run(Launch{Device: device.K20c(), Groups: 0, GroupSize: 32, Tasks: 1}, unitKernel(1))
}

// TestDeterminism: repeated runs give bit-identical reports regardless of
// scheduling (quick-check over geometries).
func TestDeterminism(t *testing.T) {
	dev := device.XeonPhi31SP()
	f := func(groups8, tasks8 uint8) bool {
		groups := int(groups8%50) + 1
		tasks := int(tasks8)
		kernel := func(task int, acc *Acc) {
			acc.Charge(Stage(task%3), device.Counters{
				ALUOps: float64(task), GlobalTx: float64(task % 7), Overhead: 3,
			})
		}
		a := Run(Launch{Device: dev, Groups: groups, GroupSize: 16, Tasks: tasks}, kernel)
		b := Run(Launch{Device: dev, Groups: groups, GroupSize: 16, Tasks: tasks}, kernel)
		if a.MakespanCycles != b.MakespanCycles || a.Seconds != b.Seconds {
			return false
		}
		for s := 0; s < 3; s++ {
			if a.StageCycles[s] != b.StageCycles[s] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestReportAddAndShare(t *testing.T) {
	var a, b Report
	a.StageCycles[S1] = 60
	a.StageCycles[S2] = 30
	a.StageCycles[S3] = 10
	a.MakespanCycles = 100
	a.Seconds = 1
	b.StageCycles[S1] = 40
	b.MakespanCycles = 50
	b.Seconds = 0.5
	a.Add(&b)
	if a.StageCycles[S1] != 100 || a.MakespanCycles != 150 || a.Seconds != 1.5 {
		t.Fatalf("Add wrong: %+v", a)
	}
	sh := a.StageShare()
	if sh[0] != 100.0/140 || sh[1] != 30.0/140 || sh[2] != 10.0/140 {
		t.Fatalf("StageShare wrong: %v", sh)
	}
	var empty Report
	if s := empty.StageShare(); s[0] != 0 || s[1] != 0 || s[2] != 0 {
		t.Fatalf("empty StageShare = %v", s)
	}
}

func TestStageString(t *testing.T) {
	if S1.String() != "S1" || S2.String() != "S2" || S3.String() != "S3" {
		t.Fatal("stage names wrong")
	}
	if Stage(9).String() == "" {
		t.Fatal("unknown stage should still format")
	}
}

// TestMakespanBounds: for any geometry and cost pattern, the makespan must
// lie between perfect balance (total/CUs) and full serialization (total).
func TestMakespanBounds(t *testing.T) {
	dev := device.XeonE52670()
	f := func(groups8, tasks8, costSeed uint8) bool {
		groups := int(groups8%60) + 1
		tasks := int(tasks8%120) + 1
		kernel := func(task int, acc *Acc) {
			acc.Charge(S1, device.Counters{Overhead: float64((task*int(costSeed)+7)%97 + 1)})
		}
		rep := Run(Launch{Device: dev, Groups: groups, GroupSize: 8, Tasks: tasks}, kernel)
		var total float64
		for _, c := range rep.StageCycles {
			total += c
		}
		lower := total / float64(dev.ComputeUnits)
		const eps = 1e-9
		return rep.MakespanCycles >= lower-eps && rep.MakespanCycles <= total+eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestZeroTasks(t *testing.T) {
	rep := Run(Launch{Device: device.K20c(), Groups: 4, GroupSize: 32, Tasks: 0}, unitKernel(5))
	if rep.MakespanCycles != 0 || rep.Seconds != 0 {
		t.Fatalf("zero-task launch cost %g cycles", rep.MakespanCycles)
	}
}
