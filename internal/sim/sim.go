// Package sim is the OpenCL-style execution engine for the simulated
// devices: it launches an NDRange of work-groups over a device's compute
// units, runs the kernel's real arithmetic on the host, and aggregates the
// device.Counters the kernel charges into per-stage and per-compute-unit
// cycle totals.
//
// Work distribution follows the paper's launch scheme (a fixed grid such as
// 8192 groups × 32 work-items, Sec. IV): row tasks are assigned to groups
// grid-stride (group g processes tasks g, g+G, g+2G, …), and groups are
// assigned to compute units round-robin. The simulated execution time is the
// makespan: the largest per-CU sum of group cycles, converted to seconds at
// the device clock. Everything is deterministic — counters do not depend on
// goroutine scheduling — which the package tests verify.
package sim

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/device"
)

// Stage labels the three phases of the per-row ALS update (Sec. V-C):
// S1 = YᵀY+λI, S2 = Yᵀr_u, S3 = the Cholesky solve.
type Stage int

const (
	S1 Stage = iota
	S2
	S3
	numStages
)

// String returns the paper's stage label.
func (s Stage) String() string {
	switch s {
	case S1:
		return "S1"
	case S2:
		return "S2"
	case S3:
		return "S3"
	}
	return fmt.Sprintf("Stage(%d)", int(s))
}

// Acc accumulates a single work-group's charged counters by stage. A kernel
// receives one Acc per group and calls Charge as it works.
type Acc struct {
	Dev       *device.Device
	GroupSize int
	stages    [numStages]device.Counters
}

// Charge adds counters to the given stage.
func (a *Acc) Charge(s Stage, c device.Counters) {
	a.stages[s].Add(c)
}

// Kernel processes one task (typically one row of the factor update) inside
// a work-group, performing its real arithmetic and charging its cost.
type Kernel func(task int, acc *Acc)

// Launch describes one kernel invocation.
type Launch struct {
	Device    *device.Device
	Groups    int // number of work-groups in the grid (paper: 8192)
	GroupSize int // work-items per group (paper: 32)
	Tasks     int // number of row tasks to cover grid-stride
}

// Report summarizes a kernel run.
type Report struct {
	// StageCycles are total device cycles charged per stage across all
	// groups (drives the Fig. 8 breakdown).
	StageCycles [numStages]float64
	// MakespanCycles is the simulated execution time in cycles: the largest
	// per-compute-unit sum of its groups' cycles.
	MakespanCycles float64
	// Seconds is MakespanCycles at the device clock.
	Seconds float64
	// Total aggregates all counters (diagnostics and tests).
	Total device.Counters
}

// Add merges another report (e.g. the Y-update following the X-update).
func (r *Report) Add(o *Report) {
	for i := range r.StageCycles {
		r.StageCycles[i] += o.StageCycles[i]
	}
	r.MakespanCycles += o.MakespanCycles
	r.Seconds += o.Seconds
	r.Total.Add(o.Total)
}

// StageShare returns each stage's fraction of total charged cycles,
// the quantity Fig. 8's pie charts plot.
func (r *Report) StageShare() [3]float64 {
	var total float64
	for _, c := range r.StageCycles {
		total += c
	}
	var out [3]float64
	if total == 0 {
		return out
	}
	for i, c := range r.StageCycles {
		out[i] = c / total
	}
	return out
}

// Run executes the launch. The kernel's arithmetic runs concurrently across
// host goroutines (group results must only touch per-task outputs), while
// the cost accounting reproduces the device's round-robin group placement.
func Run(l Launch, kernel Kernel) *Report {
	if l.Groups <= 0 || l.GroupSize <= 0 {
		panic(fmt.Sprintf("sim: bad launch geometry %d groups × %d", l.Groups, l.GroupSize))
	}
	groups := l.Groups
	if groups > l.Tasks && l.Tasks > 0 {
		groups = l.Tasks // idle groups contribute nothing
	}

	groupCycles := make([]float64, groups)
	groupStage := make([][numStages]device.Counters, groups)

	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0)
	if workers > groups {
		workers = groups
	}
	next := make(chan int, groups)
	for g := 0; g < groups; g++ {
		next <- g
	}
	close(next)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for g := range next {
				acc := &Acc{Dev: l.Device, GroupSize: l.GroupSize}
				for task := g; task < l.Tasks; task += groups {
					kernel(task, acc)
				}
				groupStage[g] = acc.stages
				var cy float64
				for _, c := range acc.stages {
					cy += l.Device.Cycles(c)
				}
				groupCycles[g] = cy
			}
		}()
	}
	wg.Wait()

	rep := &Report{}
	cus := l.Device.ComputeUnits
	perCU := make([]float64, cus)
	for g := 0; g < groups; g++ {
		perCU[g%cus] += groupCycles[g]
		for s := Stage(0); s < numStages; s++ {
			rep.StageCycles[s] += l.Device.Cycles(groupStage[g][s])
			rep.Total.Add(groupStage[g][s])
		}
	}
	for _, c := range perCU {
		if c > rep.MakespanCycles {
			rep.MakespanCycles = c
		}
	}
	rep.Seconds = l.Device.Seconds(rep.MakespanCycles)
	return rep
}
