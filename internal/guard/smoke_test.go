package guard_test

import (
	"bufio"
	"bytes"
	"io"
	"math"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// chaosSpec plants one NaN, one Inf and one huge rating, zeroes two Gram
// diagonals, forces one solver failure, and blows the loss up at iteration
// 2 — at least one fault from every class the resilience layer handles.
const chaosSpec = "nan=1,inf=1,huge=1,gram=2,fail=1,blowup=2,seed=7"

var trainArgs = []string{
	"-preset", "MVLE", "-scale", "0.002", "-iters", "6", "-k", "8", "-seed", "2017",
}

// TestAlstrainChaosSmoke is the chaos lane CI runs: a fully poisoned
// alstrain run must finish with exit 0, report a train RMSE within 10% of a
// clean run's, expose non-zero recovery/rollback/sanitizer counters on
// /metrics, and be bit-for-bit reproducible. The same chaos under
// -strict-numerics must instead fail fast with an error naming the
// iteration and row.
func TestAlstrainChaosSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the alstrain binary")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "alstrain")
	build := exec.Command("go", "build", "-o", bin, "repro/cmd/alstrain")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building alstrain: %v\n%s", err, out)
	}

	// Clean baseline: same data, same hyperparameters, no faults.
	cleanOut, err := exec.Command(bin, trainArgs...).CombinedOutput()
	if err != nil {
		t.Fatalf("clean run failed: %v\n%s", err, cleanOut)
	}
	cleanRMSE := parseRMSE(t, string(cleanOut), "train RMSE:")

	// Poisoned run A with the debug server up so we can scrape the guard
	// counters mid-linger, a checkpoint dir so the blow-up rolls back
	// instead of restarting, and a saved model for the determinism check.
	modelA := filepath.Join(dir, "model-a.bin")
	args := append(append([]string{}, trainArgs...),
		"-chaos", chaosSpec,
		"-checkpoint-dir", filepath.Join(dir, "ckpt-a"),
		"-out", modelA,
		"-debug-addr", "127.0.0.1:0", "-debug-linger", "30s")
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()

	// Follow stdout: grab the bound debug address and the RMSE/guard lines,
	// then wait for the linger line so the scrape sees the finished run.
	var addr, guardLine string
	chaosRMSE := math.NaN()
	sc := bufio.NewScanner(stdout)
	deadline := time.After(60 * time.Second)
	lines := make(chan string)
	go func() {
		defer close(lines)
		for sc.Scan() {
			lines <- sc.Text()
		}
	}()
wait:
	for {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatal("alstrain exited before lingering")
			}
			if rest, found := strings.CutPrefix(line, "debug server listening on http://"); found {
				addr = rest
			}
			if rest, found := strings.CutPrefix(line, "guard: "); found {
				guardLine = rest
			}
			if rest, found := strings.CutPrefix(line, "train RMSE:"); found {
				v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
				if err != nil {
					t.Fatalf("bad RMSE line %q: %v", line, err)
				}
				chaosRMSE = v
			}
			if strings.HasPrefix(line, "debug server lingering") {
				break wait
			}
		case <-deadline:
			t.Fatal("timed out waiting for alstrain")
		}
	}
	if addr == "" {
		t.Fatal("alstrain never printed the debug address")
	}
	if guardLine == "" {
		t.Fatal("poisoned run printed no guard summary")
	}

	// The run must have converged despite the poison: finite, and within
	// 10% of the clean baseline.
	if math.IsNaN(chaosRMSE) || math.IsInf(chaosRMSE, 0) {
		t.Fatalf("chaos train RMSE = %g", chaosRMSE)
	}
	if diff := math.Abs(chaosRMSE - cleanRMSE); diff > 0.1*cleanRMSE {
		t.Errorf("chaos RMSE %g vs clean %g: off by more than 10%%", chaosRMSE, cleanRMSE)
	}

	// The guard counters must be visible on /metrics: the ladder fired (the
	// two Gram faults plus the forced failure), the watchdog rolled back
	// once, and the sanitizer fixed the three poisoned ratings.
	body := get(t, "http://"+addr+"/metrics")
	if _, err := obs.ValidateExposition(strings.NewReader(body)); err != nil {
		t.Fatalf("/metrics is not valid exposition: %v\n%s", err, body)
	}
	if n := sumMetric(t, body, "als_solver_recoveries_total"); n < 3 {
		t.Errorf("als_solver_recoveries_total = %g, want >= 3 (gram=2 + fail=1)", n)
	}
	if n := sumMetric(t, body, "als_guard_rollbacks_total"); n != 1 {
		t.Errorf("als_guard_rollbacks_total = %g, want 1", n)
	}
	if n := sumMetric(t, body, "als_ratings_sanitized_total"); n != 3 {
		t.Errorf("als_ratings_sanitized_total = %g, want 3 (nan+inf+huge)", n)
	}

	// Determinism: an identical poisoned run must produce a bit-identical
	// model. (Run B also proves the observability plumbing of run A did not
	// leak into the math.)
	modelB := filepath.Join(dir, "model-b.bin")
	argsB := append(append([]string{}, trainArgs...),
		"-chaos", chaosSpec,
		"-checkpoint-dir", filepath.Join(dir, "ckpt-b"),
		"-out", modelB)
	if out, err := exec.Command(bin, argsB...).CombinedOutput(); err != nil {
		t.Fatalf("chaos run B failed: %v\n%s", err, out)
	}
	a, err := os.ReadFile(modelA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(modelB)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("two identical chaos runs produced different models")
	}

	// Strict mode with the same poison must die fast, naming the iteration
	// and row of the first unsolvable system.
	argsS := append(append([]string{}, trainArgs...), "-strict-numerics", "-chaos", chaosSpec)
	strictOut, err := exec.Command(bin, argsS...).CombinedOutput()
	if err == nil {
		t.Fatalf("strict chaos run succeeded:\n%s", strictOut)
	}
	if _, ok := err.(*exec.ExitError); !ok {
		t.Fatalf("strict chaos run: %v", err)
	}
	serr := string(strictOut)
	if !strings.Contains(serr, "iteration") || !strings.Contains(serr, "row") {
		t.Errorf("strict failure does not name iteration and row: %q", serr)
	}
}

func parseRMSE(t *testing.T, out, prefix string) float64 {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		if rest, found := strings.CutPrefix(line, prefix); found {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("bad RMSE line %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("no %q line in output:\n%s", prefix, out)
	return 0
}

var sampleLine = regexp.MustCompile(`^(\w+)(?:\{[^}]*\})? ([0-9eE.+-]+)$`)

// sumMetric adds up every sample of one family in an exposition body.
func sumMetric(t *testing.T, body, name string) float64 {
	t.Helper()
	var sum float64
	seen := false
	for _, line := range strings.Split(body, "\n") {
		m := sampleLine.FindStringSubmatch(line)
		if m == nil || m[1] != name {
			continue
		}
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			t.Fatalf("bad sample line %q: %v", line, err)
		}
		sum += v
		seen = true
	}
	if !seen {
		t.Fatalf("metric %s not present in /metrics", name)
	}
	return sum
}

func get(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, b)
	}
	return string(b)
}
