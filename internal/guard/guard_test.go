package guard

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/sparse"
)

func TestParseChaosRoundTrip(t *testing.T) {
	c, err := ParseChaos("nan=2,inf=1,huge=3,gram=4,fail=5,blowup=2,seed=9")
	if err != nil {
		t.Fatal(err)
	}
	if c.NaN != 2 || c.Inf != 1 || c.Huge != 3 || c.GramRows != 4 || c.FailRows != 5 || c.BlowUpIter != 2 || c.Seed != 9 {
		t.Fatalf("parsed %+v", c)
	}
	if got := c.String(); got != "nan=2,inf=1,huge=3,gram=4,fail=5,blowup=2,seed=9" {
		t.Fatalf("String() = %q", got)
	}
	// Defaults: seed 1, everything else off.
	c, err = ParseChaos("gram=1")
	if err != nil {
		t.Fatal(err)
	}
	if c.Seed != 1 || !c.Active() {
		t.Fatalf("parsed %+v", c)
	}
	for _, bad := range []string{"gram", "gram=x", "gram=-1", "bogus=1"} {
		if _, err := ParseChaos(bad); err == nil {
			t.Errorf("ParseChaos(%q) accepted", bad)
		}
	}
}

func TestChaosBindDisjointAndDeterministic(t *testing.T) {
	a := &Chaos{Seed: 5, GramRows: 10, FailRows: 10}
	a.Bind(64)
	b := &Chaos{Seed: 5, GramRows: 10, FailRows: 10}
	b.Bind(64)
	ga, gb := a.GramRowList(), b.GramRowList()
	if len(ga) != 10 || len(gb) != 10 {
		t.Fatalf("bound %d/%d gram rows, want 10", len(ga), len(gb))
	}
	for i := range ga {
		if ga[i] != gb[i] {
			t.Fatalf("same seed bound different rows: %v vs %v", ga, gb)
		}
	}
	for _, r := range ga {
		if a.FailSolve(1, r, true) {
			t.Fatalf("row %d carries both gram and fail faults", r)
		}
	}
	// A different seed picks a different set (overwhelmingly likely).
	c := &Chaos{Seed: 6, GramRows: 10, FailRows: 10}
	c.Bind(64)
	same := true
	for i, r := range c.GramRowList() {
		if r != ga[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds bound identical row sets")
	}
}

func TestChaosCorruptMatrixDeterministic(t *testing.T) {
	build := func() *sparse.Matrix {
		coo := sparse.NewCOO(20, 15)
		for u := 0; u < 20; u++ {
			for j := 0; j < 5; j++ {
				coo.Append(u, (u+j*3)%15, float32(1+(u+j)%5))
			}
		}
		mx, err := sparse.NewMatrix(coo)
		if err != nil {
			t.Fatal(err)
		}
		return mx
	}
	c := &Chaos{Seed: 3, NaN: 2, Inf: 2, Huge: 1}
	m1, err := c.CorruptMatrix(build())
	if err != nil {
		t.Fatal(err)
	}
	m2, err := c.CorruptMatrix(build())
	if err != nil {
		t.Fatal(err)
	}
	var nans, infs, huges int
	for i, v := range m1.R.Val {
		if v != m2.R.Val[i] && !(math.IsNaN(float64(v)) && math.IsNaN(float64(m2.R.Val[i]))) {
			t.Fatalf("corruption not deterministic at %d: %g vs %g", i, v, m2.R.Val[i])
		}
		switch v64 := float64(v); {
		case math.IsNaN(v64):
			nans++
		case math.IsInf(v64, 0):
			infs++
		case v == 1e30:
			huges++
		}
	}
	if nans != 2 || infs != 2 || huges != 1 {
		t.Fatalf("planted nan=%d inf=%d huge=%d, want 2/2/1", nans, infs, huges)
	}
	// Both sparse views must carry the same corruption.
	csum := 0
	for _, v := range m1.C.Val {
		if v64 := float64(v); math.IsNaN(v64) || math.IsInf(v64, 0) || v == 1e30 {
			csum++
		}
	}
	if csum != 5 {
		t.Fatalf("CSC view carries %d corrupt values, want 5", csum)
	}
	// Asking for more corruption than there are ratings is an error.
	big := &Chaos{Seed: 1, NaN: 1000}
	if _, err := big.CorruptMatrix(build()); err == nil {
		t.Fatal("oversized corruption accepted")
	}
}

func TestChaosBlowUpOneShot(t *testing.T) {
	c := &Chaos{BlowUpIter: 2}
	if c.BlowUp(1) {
		t.Fatal("fired at the wrong iteration")
	}
	if !c.BlowUp(2) {
		t.Fatal("did not fire at its iteration")
	}
	// The post-rollback replay of the same iteration must stay clean.
	if c.BlowUp(2) {
		t.Fatal("fired twice")
	}
	var nilChaos *Chaos
	if nilChaos.BlowUp(2) || nilChaos.CorruptGram(1, 0, true) || nilChaos.FailSolve(1, 0, true) || nilChaos.Active() {
		t.Fatal("nil Chaos is not inert")
	}
}

func TestSanitizeMatrix(t *testing.T) {
	coo := sparse.NewCOO(3, 4)
	coo.Append(0, 0, 4)
	coo.Append(0, 1, float32(math.NaN()))
	coo.Append(1, 2, float32(math.Inf(-1)))
	coo.Append(2, 3, 2e7)
	coo.Append(2, 0, -3)
	mx, err := sparse.NewMatrix(coo)
	if err != nil {
		t.Fatal(err)
	}
	g := New(Policy{})
	if fixed := g.SanitizeMatrix(mx); fixed != 3 {
		t.Fatalf("fixed %d, want 3", fixed)
	}
	for _, vals := range [][]float32{mx.R.Val, mx.C.Val} {
		for _, v := range vals {
			if v64 := float64(v); math.IsNaN(v64) || math.IsInf(v64, 0) || v > DefaultMaxAbsRating || v < -DefaultMaxAbsRating {
				t.Fatalf("value %g survived sanitizing", v)
			}
		}
	}
	if g.Sanitized(SanitizedNaN) != 1 || g.Sanitized(SanitizedInf) != 1 || g.Sanitized(SanitizedHuge) != 1 {
		t.Fatalf("counts nan=%d inf=%d huge=%d", g.Sanitized(SanitizedNaN), g.Sanitized(SanitizedInf), g.Sanitized(SanitizedHuge))
	}
	// Healthy values are untouched.
	found := map[float32]bool{}
	for _, v := range mx.R.Val {
		found[v] = true
	}
	if !found[4] || !found[-3] {
		t.Fatalf("healthy ratings disturbed: %v", mx.R.Val)
	}
}

func TestCheckIteration(t *testing.T) {
	ok := []float32{1, 2, 3}
	bad := []float32{1, float32(math.NaN())}

	g := New(Policy{})
	g.SetLossScale(100)
	if err := g.CheckIteration(1, ok, ok, 50); err != nil {
		t.Fatalf("healthy iteration rejected: %v", err)
	}
	if err := g.CheckIteration(2, bad, ok, 40); err == nil {
		t.Fatal("NaN factors accepted")
	} else {
		var de *DivergedError
		if !errors.As(err, &de) || de.Reason != "non-finite factors" || !errors.Is(err, ErrDiverged) {
			t.Fatalf("wrong error: %v", err)
		}
	}
	if err := g.CheckIteration(2, ok, ok, math.Inf(1)); err == nil {
		t.Fatal("Inf loss accepted")
	}
	// 50 is the best so far; a 10× jump trips the watchdog, smaller doesn't.
	if err := g.CheckIteration(2, ok, ok, 499); err != nil {
		t.Fatalf("sub-threshold loss rejected: %v", err)
	}
	if err := g.CheckIteration(3, ok, ok, 501); err == nil {
		t.Fatal("loss blow-up accepted")
	} else if !strings.Contains(err.Error(), "blow-up") {
		t.Fatalf("wrong reason: %v", err)
	}

	// Near an exact fit, large RATIOS of tiny losses are float noise, not
	// divergence: the Σr² floor must absorb them.
	g2 := New(Policy{})
	g2.SetLossScale(100)
	if err := g2.CheckIteration(1, ok, ok, 1e-10); err != nil {
		t.Fatal(err)
	}
	if err := g2.CheckIteration(2, ok, ok, 1e-6); err != nil {
		t.Fatalf("noise-scale jump tripped the watchdog: %v", err)
	}
	// ... but a jump back to data scale is still caught.
	if err := g2.CheckIteration(3, ok, ok, 1e4); err == nil {
		t.Fatal("data-scale blow-up accepted near an exact fit")
	}
}

func TestGuardMetricsAndSummary(t *testing.T) {
	g := New(Policy{})
	if g.Summary() != "" {
		t.Fatalf("idle guard summary = %q", g.Summary())
	}
	g.SetVariant("tb+fus")
	g.Recovered(RungJitter2)
	g.Recovered(RungJitter2)
	g.Recovered(RungSkip)
	g.NoteRollback()
	reg := obs.NewRegistry()
	g.Register(reg)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	body := sb.String()
	if _, err := obs.ValidateExposition(strings.NewReader(body)); err != nil {
		t.Fatalf("guard metrics do not validate: %v\n%s", err, body)
	}
	for _, want := range []string{
		`als_solver_recoveries_total{rung="jitter2",variant="tb+fus"} 2`,
		`als_solver_recoveries_total{rung="skip",variant="tb+fus"} 1`,
		`als_solver_recoveries_total{rung="ldl",variant="tb+fus"} 0`,
		"als_guard_rollbacks_total 1",
		`als_ratings_sanitized_total{kind="nan"} 0`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
	sum := g.Summary()
	for _, want := range []string{"3 row solves", "jitter2=2", "skip=1", "1 rollbacks"} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary %q missing %q", sum, want)
		}
	}
}

func TestRowErrorFormatting(t *testing.T) {
	e := &RowError{Row: 7, Omega: 3, Err: ErrForcedFailure}
	if s := e.Error(); !strings.Contains(s, "row 7") || strings.Contains(s, "iteration") {
		t.Fatalf("unannotated error = %q", s)
	}
	e.Iteration = 4
	if s := e.Error(); !strings.Contains(s, "iteration 4") || !strings.Contains(s, "row 7") {
		t.Fatalf("annotated error = %q", s)
	}
	if !errors.Is(e, ErrForcedFailure) {
		t.Fatal("RowError does not unwrap")
	}
}
