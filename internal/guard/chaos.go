package guard

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"repro/internal/sparse"
)

// Chaos is the deterministic numerical-fault injector: the counterpart of
// checkpoint.Faults for the numeric domain. Everything it does is a pure
// function of Seed and the configured counts, so a poisoned run is exactly
// reproducible — the property the chaos-smoke lane asserts. Fault classes:
//
//   - rating corruption (CorruptMatrix): NaN, ±Inf and absurdly large
//     values planted at seeded positions before training;
//   - Gram corruption (CorruptGram): zero the Gram diagonal of chosen rows
//     in the first X half-iteration, making the system exactly singular so
//     Cholesky fails and the recovery ladder has to climb;
//   - forced solver failures (FailSolve): chosen rows fail outright with
//     ErrForcedFailure before any factorization runs and through every
//     recovery rung, driving the ladder to the skip rung;
//   - a loss blow-up (BlowUp/CorruptFactors): at the chosen iteration the
//     X factors are scaled by BlowUpScale once, tripping the divergence
//     watchdog into a rollback.
type Chaos struct {
	Seed int64

	NaN  int // ratings replaced with NaN
	Inf  int // ratings replaced with ±Inf
	Huge int // ratings replaced with ±1e30

	GramRows int // rows whose Gram diagonal is zeroed (first X half)
	FailRows int // rows whose solve fails outright (first X half)

	BlowUpIter  int     // iteration whose factors blow up; 0 disables
	BlowUpScale float32 // factor scale at blow-up (default 1e6)

	// FailFunc, when set, replaces the seeded FailRows selection — a test
	// hook for forcing failures at exact (iteration, row, half) points.
	FailFunc func(iter, row int, xHalf bool) bool

	gram  map[int]bool
	fail  map[int]bool
	blown atomic.Bool
}

// ParseChaos parses an alstrain -chaos spec: comma-separated key=value
// pairs from nan, inf, huge, gram, fail, blowup, seed — e.g.
// "nan=2,gram=3,blowup=2,seed=7". Unknown keys are errors.
func ParseChaos(spec string) (*Chaos, error) {
	c := &Chaos{Seed: 1}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("guard: chaos spec %q: want key=value", part)
		}
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("guard: chaos spec %q: bad value", part)
		}
		switch key {
		case "nan":
			c.NaN = int(n)
		case "inf":
			c.Inf = int(n)
		case "huge":
			c.Huge = int(n)
		case "gram":
			c.GramRows = int(n)
		case "fail":
			c.FailRows = int(n)
		case "blowup":
			c.BlowUpIter = int(n)
		case "seed":
			c.Seed = n
		default:
			return nil, fmt.Errorf("guard: chaos spec: unknown key %q", key)
		}
	}
	return c, nil
}

// String renders the spec back in canonical form (for run banners).
func (c *Chaos) String() string {
	return fmt.Sprintf("nan=%d,inf=%d,huge=%d,gram=%d,fail=%d,blowup=%d,seed=%d",
		c.NaN, c.Inf, c.Huge, c.GramRows, c.FailRows, c.BlowUpIter, c.Seed)
}

// Bind fixes the Gram-corruption and forced-failure row sets for a matrix
// with the given number of rows. The two sets are drawn disjoint from one
// seeded shuffle so one row never carries both faults (which would make
// attribution in the rung counters ambiguous).
func (c *Chaos) Bind(rows int) {
	rng := rand.New(rand.NewSource(c.Seed))
	perm := rng.Perm(rows)
	ng := min(c.GramRows, rows)
	nf := min(c.FailRows, rows-ng)
	c.gram = make(map[int]bool, ng)
	c.fail = make(map[int]bool, nf)
	for _, r := range perm[:ng] {
		c.gram[r] = true
	}
	for _, r := range perm[ng : ng+nf] {
		c.fail[r] = true
	}
}

// GramRowList returns the bound Gram-corruption rows in ascending order
// (for tests and run banners).
func (c *Chaos) GramRowList() []int {
	rows := make([]int, 0, len(c.gram))
	for r := range c.gram {
		rows = append(rows, r)
	}
	sort.Ints(rows)
	return rows
}

// CorruptMatrix plants the configured NaN/Inf/huge ratings at seeded entry
// positions and rebuilds both sparse views so the corruption is consistent
// across the CSR and CSC value arrays, exactly as corrupt input data would
// arrive. The input matrix is not modified.
func (c *Chaos) CorruptMatrix(mx *sparse.Matrix) (*sparse.Matrix, error) {
	total := c.NaN + c.Inf + c.Huge
	if total == 0 {
		return mx, nil
	}
	coo := mx.R.ToCOO()
	nnz := len(coo.Entries)
	if total > nnz {
		return nil, fmt.Errorf("guard: chaos wants %d corrupt ratings but matrix has %d", total, nnz)
	}
	rng := rand.New(rand.NewSource(c.Seed + 1))
	perm := rng.Perm(nnz)[:total]
	for i, p := range perm {
		switch {
		case i < c.NaN:
			coo.Entries[p].Val = float32(math.NaN())
		case i < c.NaN+c.Inf:
			coo.Entries[p].Val = float32(math.Inf(1 - 2*(i%2))) // alternate ±Inf
		default:
			coo.Entries[p].Val = 1e30
		}
	}
	return sparse.NewMatrix(coo)
}

// CorruptGram reports whether the Gram diagonal of this row update should
// be zeroed. Faults fire only in the first X half-iteration: once is
// enough to force the ladder, and keeping later iterations clean lets the
// run converge. Nil-safe.
func (c *Chaos) CorruptGram(iter, row int, xHalf bool) bool {
	if c == nil || !xHalf || iter != 1 {
		return false
	}
	return c.gram[row]
}

// FailSolve reports whether this row's solve should fail outright with
// ErrForcedFailure. FailFunc, when set, takes full control. Nil-safe.
func (c *Chaos) FailSolve(iter, row int, xHalf bool) bool {
	if c == nil {
		return false
	}
	if c.FailFunc != nil {
		return c.FailFunc(iter, row, xHalf)
	}
	if !xHalf || iter != 1 {
		return false
	}
	return c.fail[row]
}

// BlowUp reports whether this iteration's factors should blow up. It fires
// at most once per process so the post-rollback replay of the same
// iteration is not re-poisoned. Nil-safe.
func (c *Chaos) BlowUp(iter int) bool {
	if c == nil || c.BlowUpIter == 0 || iter != c.BlowUpIter {
		return false
	}
	return c.blown.CompareAndSwap(false, true)
}

// CorruptFactors scales every factor entry by BlowUpScale — finite but
// enormous, so the loss explodes without tripping the NaN checks first.
func (c *Chaos) CorruptFactors(x []float32) {
	scale := c.BlowUpScale
	if scale == 0 {
		scale = 1e6
	}
	for i := range x {
		x[i] *= scale
	}
}

// Active reports whether any fault class is configured.
func (c *Chaos) Active() bool {
	if c == nil {
		return false
	}
	return c.NaN+c.Inf+c.Huge+c.GramRows+c.FailRows+c.BlowUpIter > 0 || c.FailFunc != nil
}
