// Package guard is the numerical-resilience layer of the reproduction: it
// keeps an ALS run alive through the faults the clean math ignores. The
// paper's Algorithm 1 assumes every per-row normal-equation solve succeeds,
// but in practice the Gram matrix YᵀY+λI goes non-SPD (near-zero-degree
// rows, tiny λ, float32 accumulation) and a single NaN anywhere in the
// ratings poisons both factor matrices. guard answers with three layers:
//
//   - a solver recovery ladder the row-update kernel walks on ErrNotSPD:
//     re-solve with escalating ridge jitter (2λ, then 10λ added to the
//     diagonal), fall back to LDLᵀ, and finally skip the row keeping its
//     last-good factors — each rung counted per variant in
//     als_solver_recoveries_total instead of killing the run;
//   - a divergence watchdog at the iteration boundary: NaN/Inf factors,
//     non-finite loss, or a loss blow-up past DivergenceFactor× the best
//     seen so far surfaces a typed DivergedError that the core layer
//     answers by rolling back to the last good checkpoint with escalated
//     λ, bounded by MaxRollbacks;
//   - a data sanitizer that quarantines non-finite and absurd ratings
//     before training (counted in als_ratings_sanitized_total).
//
// Strict mode turns all of it off and preserves fail-fast behavior, with
// typed RowErrors naming the iteration and row that died. The companion
// Chaos injector (chaos.go) deterministically reproduces every fault class
// so the chaos-smoke lane can prove a poisoned run still converges.
package guard

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/sparse"
)

// Recovery-ladder rungs, in escalation order. Only the rung that rescued a
// row is counted: a row that needed the 10λ jitter counts once under
// jitter10, not under jitter2.
const (
	RungJitter2 = iota // re-solve with 2λ ridge jitter added to the diagonal
	RungJitter10
	RungLDL  // LDLᵀ fallback on the original system
	RungSkip // keep the row's last-good factors and move on
	NumRungs
)

// RungNames are the label values for als_solver_recoveries_total{rung=...}.
var RungNames = [NumRungs]string{"jitter2", "jitter10", "ldl", "skip"}

// JitterMultipliers are the ridge escalation steps of the jitter rungs,
// applied to the row's effective λ (floored at 1e-6 when λ = 0, since
// jittering by a multiple of zero is no jitter at all).
var JitterMultipliers = [2]float32{2, 10}

// MinJitterBase is the λ floor the jitter rungs fall back to for λ = 0 runs.
const MinJitterBase = 1e-6

// divergenceFloorFrac scales the zero-model loss into the watchdog's noise
// floor (see CheckIteration).
const divergenceFloorFrac = 1e-6

// Sanitizer kinds for als_ratings_sanitized_total{kind=...}.
const (
	SanitizedNaN = iota
	SanitizedInf
	SanitizedHuge
	NumSanitized
)

var sanitizedNames = [NumSanitized]string{"nan", "inf", "huge"}

// DefaultMaxAbsRating is the sanitizer's plausibility bound: ratings with a
// larger magnitude are zeroed (real rating scales top out in single digits;
// a single absurd value dominates the least-squares objective and distorts
// every factor it touches, so clamping is not enough — it must go).
const DefaultMaxAbsRating = 1e6

// ErrDiverged is the sentinel every DivergedError unwraps to; core surfaces
// it once MaxRollbacks is exhausted.
var ErrDiverged = errors.New("guard: training diverged")

// ErrForcedFailure marks a solver failure injected by the chaos harness.
var ErrForcedFailure = errors.New("guard: injected solver failure")

// RowError is the typed strict-mode failure: it names the row (and, once
// the training loop annotates it, the iteration) whose normal equations
// could not be solved.
type RowError struct {
	Iteration int // 1-based; 0 until the training loop fills it in
	Row       int
	Omega     int // the row's rating count
	Err       error
}

func (e *RowError) Error() string {
	if e.Iteration > 0 {
		return fmt.Sprintf("guard: iteration %d, row %d (omega=%d): %v", e.Iteration, e.Row, e.Omega, e.Err)
	}
	return fmt.Sprintf("guard: row %d (omega=%d): %v", e.Row, e.Omega, e.Err)
}

func (e *RowError) Unwrap() error { return e.Err }

// DivergedError reports the watchdog tripping at an iteration boundary.
type DivergedError struct {
	Iteration int
	Reason    string  // "non-finite factors", "non-finite loss", "loss blow-up"
	Loss      float64 // the offending loss (NaN/Inf for factor faults)
	Best      float64 // best loss seen before this iteration
}

func (e *DivergedError) Error() string {
	return fmt.Sprintf("guard: iteration %d: %s (loss=%g, best=%g)", e.Iteration, e.Reason, e.Loss, e.Best)
}

func (e *DivergedError) Unwrap() error { return ErrDiverged }

// Policy sets the resilience knobs. The zero value means non-strict with
// the defaults New fills in.
type Policy struct {
	// Strict preserves the pre-guard fail-fast behavior: no ladder, no
	// sanitizing, no rollback — the first numerical fault kills the run
	// with a typed RowError/DivergedError.
	Strict bool
	// DivergenceFactor trips the watchdog when the iteration loss exceeds
	// this multiple of the best loss so far (default 10; ALS loss is
	// monotone per half in exact arithmetic, so a 10× jump is pathological).
	DivergenceFactor float64
	// MaxRollbacks bounds divergence rollbacks before the run surfaces
	// ErrDiverged (default 3).
	MaxRollbacks int
	// LambdaEscalation multiplies λ on every rollback so the re-run is
	// better conditioned than the one that diverged (default 2).
	LambdaEscalation float32
	// MaxAbsRating is the sanitizer's clamp bound (default 1e6).
	MaxAbsRating float32
}

// Guard threads one run's resilience policy, live counters and optional
// chaos injection through the training stack. All counter methods are safe
// for concurrent use from the worker pool.
type Guard struct {
	Policy
	// Chaos, when set, injects deterministic numerical faults (see Chaos).
	Chaos *Chaos

	recoveries [NumRungs]atomic.Int64
	rollbacks  atomic.Int64
	sanitized  [NumSanitized]atomic.Int64

	mu      sync.Mutex
	variant string
	best    float64 // best (lowest) iteration loss seen so far
	scale   float64 // Σr², the zero-model loss (sets the blow-up noise floor)
}

// New builds a Guard, filling Policy defaults.
func New(p Policy) *Guard {
	if p.DivergenceFactor <= 1 {
		p.DivergenceFactor = 10
	}
	if p.MaxRollbacks <= 0 {
		p.MaxRollbacks = 3
	}
	if p.LambdaEscalation <= 1 {
		p.LambdaEscalation = 2
	}
	if p.MaxAbsRating <= 0 {
		p.MaxAbsRating = DefaultMaxAbsRating
	}
	return &Guard{Policy: p, best: math.Inf(1)}
}

// SetVariant records the resolved code variant for the per-variant
// recovery metric labels. Called by the training loop once the variant is
// known.
func (g *Guard) SetVariant(v string) {
	g.mu.Lock()
	g.variant = v
	g.mu.Unlock()
}

// Recovered counts one row rescued at the given ladder rung.
func (g *Guard) Recovered(rung int) { g.recoveries[rung].Add(1) }

// Recoveries reads one rung's counter.
func (g *Guard) Recoveries(rung int) int64 { return g.recoveries[rung].Load() }

// TotalRecoveries sums the ladder counters.
func (g *Guard) TotalRecoveries() int64 {
	var n int64
	for r := range g.recoveries {
		n += g.recoveries[r].Load()
	}
	return n
}

// NoteRollback counts one divergence rollback.
func (g *Guard) NoteRollback() { g.rollbacks.Add(1) }

// Rollbacks reads the rollback counter.
func (g *Guard) Rollbacks() int64 { return g.rollbacks.Load() }

// Sanitized reads one sanitizer counter.
func (g *Guard) Sanitized(kind int) int64 { return g.sanitized[kind].Load() }

// TotalSanitized sums the sanitizer counters.
func (g *Guard) TotalSanitized() int64 {
	var n int64
	for k := range g.sanitized {
		n += g.sanitized[k].Load()
	}
	return n
}

// CheckIteration is the divergence watchdog, run at each iteration
// boundary with the workers quiescent: it rejects non-finite factors,
// non-finite loss, and a loss more than DivergenceFactor× the best seen so
// far. The best-loss floor persists across rollbacks (the Guard outlives
// each host.Train attempt), so a rolled-back run cannot "reset" its own
// blow-up threshold.
func (g *Guard) CheckIteration(it int, x, y []float32, loss float64) error {
	g.mu.Lock()
	best, scale := g.best, g.scale
	g.mu.Unlock()
	if !finiteSlice(x) || !finiteSlice(y) {
		return &DivergedError{Iteration: it, Reason: "non-finite factors", Loss: loss, Best: best}
	}
	if math.IsNaN(loss) || math.IsInf(loss, 0) {
		return &DivergedError{Iteration: it, Reason: "non-finite loss", Loss: loss, Best: best}
	}
	// A run that converged to an essentially exact fit jitters by large
	// RATIOS of tiny numbers, so the blow-up baseline is floored at a
	// fraction of the zero-model loss Σr² (SetLossScale): only jumps that
	// are large on the problem's own scale count as divergence.
	if floor := scale * divergenceFloorFrac; best < floor {
		best = floor
	}
	if loss > g.DivergenceFactor*best {
		return &DivergedError{Iteration: it, Reason: "loss blow-up", Loss: loss, Best: best}
	}
	g.mu.Lock()
	if loss < g.best {
		g.best = loss
	}
	g.mu.Unlock()
	return nil
}

// SetLossScale records the problem's natural loss magnitude — Σr², the loss
// of an all-zero model — which floors the watchdog's blow-up baseline.
// Called by the training loop before the first iteration.
func (g *Guard) SetLossScale(s float64) {
	g.mu.Lock()
	g.scale = s
	g.mu.Unlock()
}

// SanitizeMatrix quarantines corrupt ratings in place, in both the CSR and
// CSC views (they hold independent value arrays): NaN, ±Inf and magnitudes
// beyond MaxAbsRating all become 0, removing their pull on the objective
// while keeping the sparsity structure intact. It returns the number of
// ratings touched; counts land in als_ratings_sanitized_total. Strict runs
// skip sanitizing so the fault surfaces where it happens.
func (g *Guard) SanitizeMatrix(mx *sparse.Matrix) int64 {
	fixed := g.sanitizeVals(mx.R.Val, true)
	g.sanitizeVals(mx.C.Val, false)
	return fixed
}

func (g *Guard) sanitizeVals(vals []float32, count bool) int64 {
	maxAbs := g.MaxAbsRating
	var fixed int64
	for i, v := range vals {
		v64 := float64(v)
		switch {
		case math.IsNaN(v64):
			vals[i] = 0
			if count {
				g.sanitized[SanitizedNaN].Add(1)
			}
		case math.IsInf(v64, 0):
			vals[i] = 0
			if count {
				g.sanitized[SanitizedInf].Add(1)
			}
		case v > maxAbs, v < -maxAbs:
			vals[i] = 0
			if count {
				g.sanitized[SanitizedHuge].Add(1)
			}
		default:
			continue
		}
		fixed++
	}
	return fixed
}

// Register mirrors the guard counters into reg as live Prometheus
// collector families, read at scrape time.
func (g *Guard) Register(reg *obs.Registry) {
	reg.Func("als_solver_recoveries_total",
		"Row updates rescued by the solver recovery ladder, by rung (jitter2/jitter10/ldl/skip) and code variant.",
		obs.Counter, []string{"rung", "variant"}, func() []obs.Sample {
			g.mu.Lock()
			variant := g.variant
			g.mu.Unlock()
			samples := make([]obs.Sample, 0, NumRungs)
			for r := 0; r < NumRungs; r++ {
				samples = append(samples, obs.Sample{
					Labels: []string{RungNames[r], variant},
					Value:  float64(g.recoveries[r].Load()),
				})
			}
			return samples
		})
	reg.Func("als_guard_rollbacks_total",
		"Divergence rollbacks performed by the watchdog (checkpoint restore + lambda escalation).",
		obs.Counter, nil, func() []obs.Sample {
			return []obs.Sample{{Value: float64(g.rollbacks.Load())}}
		})
	reg.Func("als_ratings_sanitized_total",
		"Corrupt ratings quarantined before training, by kind (nan/inf/huge).",
		obs.Counter, []string{"kind"}, func() []obs.Sample {
			samples := make([]obs.Sample, 0, NumSanitized)
			for k := 0; k < NumSanitized; k++ {
				samples = append(samples, obs.Sample{
					Labels: []string{sanitizedNames[k]},
					Value:  float64(g.sanitized[k].Load()),
				})
			}
			return samples
		})
}

// Summary renders a one-line human report of what the guard did, or "" if
// it never had to act.
func (g *Guard) Summary() string {
	total := g.TotalRecoveries()
	rb := g.Rollbacks()
	san := g.TotalSanitized()
	if total == 0 && rb == 0 && san == 0 {
		return ""
	}
	s := "recovered " + strconv.FormatInt(total, 10) + " row solves ("
	first := true
	for r := 0; r < NumRungs; r++ {
		if n := g.recoveries[r].Load(); n > 0 {
			if !first {
				s += " "
			}
			s += RungNames[r] + "=" + strconv.FormatInt(n, 10)
			first = false
		}
	}
	s += "), " + strconv.FormatInt(rb, 10) + " rollbacks, sanitized " +
		strconv.FormatInt(san, 10) + " ratings"
	return s
}

// FiniteVec reports whether every element of v is finite. The recovery
// ladder uses it to reject "successful" solves that produced garbage
// (LDLᵀ on an indefinite system can return without error).
func FiniteVec(v []float32) bool { return finiteSlice(v) }

func finiteSlice(v []float32) bool {
	for _, f := range v {
		// A float32 is non-finite iff its exponent bits are all ones;
		// comparing through float64 keeps NaN and ±Inf detection exact.
		f64 := float64(f)
		if math.IsNaN(f64) || math.IsInf(f64, 0) {
			return false
		}
	}
	return true
}
