package trace

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/device"
	"repro/internal/kernels"
	"repro/internal/sim"
)

func tuneConfig() kernels.Config {
	return kernels.Config{Device: device.K20c(), K: 10, Lambda: 0.1, Iterations: 1, Seed: 4}
}

func tuneMatrix(t testing.TB) *dataset.Dataset {
	t.Helper()
	return dataset.Netflix.ScaledForBench(0.002).Generate(17)
}

// TestTuneRetracesFig8: the hotspot-guided loop must (a) start with S1
// dominant, (b) optimize S1 first, (c) strictly reduce total time at every
// accepted step, and (d) finish with every optimization applied.
func TestTuneRetracesFig8(t *testing.T) {
	ds := tuneMatrix(t)
	steps, final, err := Tune(ds.Matrix, tuneConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) < 3 {
		t.Fatalf("only %d tuning steps", len(steps))
	}
	if steps[0].Hotspot != sim.S1 {
		t.Fatalf("first hotspot = %s, want S1 (paper: ~70%%)", steps[0].Hotspot)
	}
	if steps[0].Applied == "" || steps[0].Applied[:2] != "S1" {
		t.Fatalf("first optimization %q does not target S1", steps[0].Applied)
	}
	for i := 1; i < len(steps); i++ {
		if steps[i].Seconds >= steps[i-1].Seconds {
			t.Errorf("step %d did not improve: %.4f -> %.4f (%s)",
				i, steps[i-1].Seconds, steps[i].Seconds, steps[i-1].Applied)
		}
	}
	if !final.S1Local || !final.S1Register || !final.S2Local || final.S3Gauss {
		t.Fatalf("final spec incomplete: %+v", final)
	}
	// The last step reports no further optimization.
	if steps[len(steps)-1].Applied != "" {
		t.Fatalf("tuner did not converge: last applied %q", steps[len(steps)-1].Applied)
	}
}

// TestTuneShiftsHotspotToS2: after the S1 optimizations the hotspot must
// move to S2 (the Fig. 8 b→c transition).
func TestTuneShiftsHotspotToS2(t *testing.T) {
	ds := tuneMatrix(t)
	steps, _, err := Tune(ds.Matrix, tuneConfig())
	if err != nil {
		t.Fatal(err)
	}
	sawS2 := false
	for _, st := range steps {
		if st.Spec.S1Local && st.Spec.S1Register && st.Hotspot == sim.S2 {
			sawS2 = true
		}
	}
	if !sawS2 {
		t.Fatal("hotspot never moved to S2 after optimizing S1")
	}
}

func TestStepString(t *testing.T) {
	ds := tuneMatrix(t)
	steps, _, err := Tune(ds.Matrix, tuneConfig())
	if err != nil {
		t.Fatal(err)
	}
	if steps[0].String() == "" {
		t.Fatal("empty step string")
	}
}

// TestApplyFallbacks exercises the remaining-optimization fallback paths of
// the tuner's apply step directly.
func TestApplyFallbacks(t *testing.T) {
	// S1 fully optimized but still the hotspot: fall through to whatever
	// remains, in S3 -> S2 -> done order.
	spec := kernels.Spec{S1Local: true, S1Register: true, S3Gauss: true}
	next, applied := apply(spec, sim.S1)
	if applied == "" || next.S3Gauss {
		t.Fatalf("fallback did not pick Cholesky: %q %+v", applied, next)
	}
	next2, applied2 := apply(next, sim.S1)
	if applied2 == "" || !next2.S2Local {
		t.Fatalf("fallback did not pick S2 staging: %q %+v", applied2, next2)
	}
	if _, applied3 := apply(next2, sim.S1); applied3 != "" {
		t.Fatalf("fully optimized spec still applied %q", applied3)
	}
	// S2 hotspot with S2 already staged.
	full := kernels.Spec{S1Local: true, S1Register: true, S2Local: true}
	if _, a := apply(full, sim.S2); a != "" {
		t.Fatalf("S2 fallback applied %q on fully optimized spec", a)
	}
	// S3 hotspot with Gauss still on.
	g := kernels.Spec{S3Gauss: true}
	n, a := apply(g, sim.S3)
	if a == "" || n.S3Gauss {
		t.Fatalf("S3 hotspot did not switch to Cholesky: %q", a)
	}
	// Fallback ordering when only S1 options remain.
	s1only := kernels.Spec{S2Local: true}
	n, a = apply(s1only, sim.S2)
	if a == "" || !n.S1Local {
		t.Fatalf("fallback did not reach S1 local: %q %+v", a, n)
	}
	n2, a2 := apply(n, sim.S2)
	if a2 == "" || !n2.S1Register {
		t.Fatalf("fallback did not reach S1 registers: %q %+v", a2, n2)
	}
}
