// Package trace implements the paper's hotspot-guided tuning methodology
// (Sec. V-C): profile the three stages of the ALS update, find the most
// time-consuming one, apply that stage's optimization, and repeat. The
// sequence it discovers on the GPU retraces Fig. 8: S1 dominates (~70 %),
// optimizing S1 promotes S2 to the hotspot, optimizing S2 brings S1 back,
// and switching S3 to Cholesky trims the remainder.
package trace

import (
	"fmt"

	"repro/internal/kernels"
	"repro/internal/sim"
	"repro/internal/sparse"
)

// Step records one round of the tuner: what it measured, which stage it
// chose, and what it applied.
type Step struct {
	Spec    kernels.Spec
	Shares  [3]float64 // S1/S2/S3 shares before acting
	Seconds float64
	Hotspot sim.Stage
	Applied string // optimization applied, "" when nothing is left
}

// String renders the step like the Fig. 8 captions.
func (s Step) String() string {
	return fmt.Sprintf("%-40s S1=%4.1f%% S2=%4.1f%% S3=%4.1f%% total=%.4fs hotspot=%s applied=%q",
		s.Spec.Name(), s.Shares[0]*100, s.Shares[1]*100, s.Shares[2]*100, s.Seconds, s.Hotspot, s.Applied)
}

// Tune runs the hotspot-guided loop starting from the bare thread-batched
// kernel with the generic S3 (the paper's starting point after batching).
// It stops when the hotspot stage has no remaining optimization, and
// returns every step plus the final spec.
func Tune(mx *sparse.Matrix, cfg kernels.Config) ([]Step, kernels.Spec, error) {
	spec := kernels.Spec{S3Gauss: true}
	var steps []Step
	for round := 0; round < 6; round++ {
		cfg.Spec = spec
		res, err := kernels.Train(mx, cfg)
		if err != nil {
			return nil, spec, fmt.Errorf("trace: round %d: %w", round, err)
		}
		st := Step{Spec: spec, Shares: res.Report.StageShare(), Seconds: res.Seconds()}
		st.Hotspot = hotspot(st.Shares)
		next, applied := apply(spec, st.Hotspot)
		st.Applied = applied
		steps = append(steps, st)
		if applied == "" {
			return steps, spec, nil
		}
		spec = next
	}
	return steps, spec, nil
}

func hotspot(shares [3]float64) sim.Stage {
	best := sim.S1
	for s := sim.S2; s <= sim.S3; s++ {
		if shares[s] > shares[best] {
			best = s
		}
	}
	return best
}

// apply returns the spec with the hotspot stage's next optimization turned
// on, or applied == "" if that stage is fully optimized. Optimizations
// follow the paper's S1 → registers+local, S2 → local staging,
// S3 → Cholesky ordering.
func apply(spec kernels.Spec, hot sim.Stage) (kernels.Spec, string) {
	switch hot {
	case sim.S1:
		switch {
		case !spec.S1Local:
			spec.S1Local = true
			return spec, "S1: stage Y columns in local memory"
		case !spec.S1Register:
			spec.S1Register = true
			return spec, "S1: k-strip register accumulators"
		}
	case sim.S2:
		if !spec.S2Local {
			spec.S2Local = true
			return spec, "S2: stage row values in local memory"
		}
	case sim.S3:
		if spec.S3Gauss {
			spec.S3Gauss = false
			return spec, "S3: Cholesky LL^T factorization"
		}
	}
	// The hotspot has nothing left: try any remaining optimization once
	// (mirrors the paper finishing with the Cholesky S3 even though S1
	// still dominates).
	switch {
	case spec.S3Gauss:
		spec.S3Gauss = false
		return spec, "S3: Cholesky LL^T factorization"
	case !spec.S2Local:
		spec.S2Local = true
		return spec, "S2: stage row values in local memory"
	case !spec.S1Local:
		spec.S1Local = true
		return spec, "S1: stage Y columns in local memory"
	case !spec.S1Register:
		spec.S1Register = true
		return spec, "S1: k-strip register accumulators"
	}
	return spec, ""
}
