package kernels

import (
	"testing"

	"repro/internal/device"
	"repro/internal/linalg"
	"repro/internal/variant"
)

func multiConfig() Config {
	return Config{Device: device.K20c(), Spec: FromVariant(variant.Options{Local: true, Register: true}),
		K: 10, Lambda: 0.1, Iterations: 2, Seed: 5}
}

// TestMultiMatchesSingle: sharding must not change the arithmetic.
func TestMultiMatchesSingle(t *testing.T) {
	mx := longRowMatrix(t)
	single, err := Train(mx, multiConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 2, 4} {
		devs := make([]*device.Device, n)
		for i := range devs {
			devs[i] = device.K20c()
		}
		multi, err := TrainMulti(mx, multiConfig(), devs)
		if err != nil {
			t.Fatalf("%d devices: %v", n, err)
		}
		if d := linalg.MaxAbsDiff(single.X, multi.X); d != 0 {
			t.Fatalf("%d devices: X differs by %g", n, d)
		}
		if d := linalg.MaxAbsDiff(single.Y, multi.Y); d != 0 {
			t.Fatalf("%d devices: Y differs by %g", n, d)
		}
	}
}

// TestMultiComputeScales: with rows sharded, the compute makespan must
// shrink close to linearly while transfers grow with the device count.
func TestMultiComputeScales(t *testing.T) {
	mx := longRowMatrix(t)
	one, err := TrainMulti(mx, multiConfig(), []*device.Device{device.K20c()})
	if err != nil {
		t.Fatal(err)
	}
	four, err := TrainMulti(mx, multiConfig(), []*device.Device{
		device.K20c(), device.K20c(), device.K20c(), device.K20c()})
	if err != nil {
		t.Fatal(err)
	}
	speedup := one.ComputeSeconds / four.ComputeSeconds
	if speedup < 2.4 || speedup > 4.5 {
		t.Fatalf("4-device compute speedup = %.2fx, want roughly linear [2.4, 4.5]", speedup)
	}
	if !(four.TransferSeconds > one.TransferSeconds) {
		t.Fatalf("transfers did not grow with devices: %g vs %g", four.TransferSeconds, one.TransferSeconds)
	}
}

// TestMultiErrors: input validation.
func TestMultiErrors(t *testing.T) {
	mx := testMatrix(t)
	if _, err := TrainMulti(mx, multiConfig(), nil); err == nil {
		t.Fatal("accepted empty device list")
	}
}

// TestMultiMoreDevicesThanRows: degenerate sharding must still work.
func TestMultiMoreDevicesThanRows(t *testing.T) {
	mx := testMatrix(t)
	devs := make([]*device.Device, 64)
	for i := range devs {
		devs[i] = device.K20c()
	}
	res, err := TrainMulti(mx, multiConfig(), devs)
	if err != nil {
		t.Fatal(err)
	}
	single, err := Train(mx, multiConfig())
	if err != nil {
		t.Fatal(err)
	}
	if d := linalg.MaxAbsDiff(single.X, res.X); d != 0 {
		t.Fatalf("64-device X differs by %g", d)
	}
}
