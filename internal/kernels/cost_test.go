package kernels

import (
	"testing"
	"testing/quick"

	"repro/internal/device"
)

func TestEnvChunkGeometry(t *testing.T) {
	cpu := device.XeonE52670()  // vector width 8
	mic := device.XeonPhi31SP() // vector width 16
	cases := []struct {
		dev        *device.Device
		k, ws      int
		full, idle int
	}{
		// CPU, k=10: two AVX chunks cover the columns regardless of ws≤16.
		{cpu, 10, 8, 2, 0},
		{cpu, 10, 16, 2, 0},
		{cpu, 10, 32, 2, 2},   // 4 executed chunks, 2 useful
		{cpu, 10, 128, 2, 14}, // 16 executed chunks
		// MIC, k=10: one 16-wide chunk suffices at ws>=16; ws=8 forces two
		// half-width passes (both full cost).
		{mic, 10, 16, 1, 0},
		{mic, 10, 8, 2, 0},
		{mic, 10, 32, 1, 1},
		// k larger than ws.
		{cpu, 40, 8, 5, 0},
	}
	for _, tc := range cases {
		e := newEnv(tc.dev, tc.k, tc.ws, 100)
		if e.fullChunks != tc.full || e.idleChunks != tc.idle {
			t.Errorf("%s k=%d ws=%d: chunks full=%d idle=%d, want %d/%d",
				tc.dev.Kind, tc.k, tc.ws, e.fullChunks, e.idleChunks, tc.full, tc.idle)
		}
	}
}

func TestEnvWarpsAndColIters(t *testing.T) {
	gpu := device.K20c()
	e := newEnv(gpu, 10, 8, 100)
	if e.colIters != 2 || e.warps != 1 {
		t.Fatalf("ws=8: colIters=%d warps=%d", e.colIters, e.warps)
	}
	e = newEnv(gpu, 10, 128, 100)
	if e.colIters != 1 || e.warps != 4 {
		t.Fatalf("ws=128: colIters=%d warps=%d", e.colIters, e.warps)
	}
}

// TestS1CostMonotoneInOmega: more nonzeros never cost fewer cycles, for
// every device and spec.
func TestS1CostMonotoneInOmega(t *testing.T) {
	specs := []Spec{{}, {S1Register: true}, {S1Local: true}, {S1Local: true, S1Register: true, Vector: true}}
	f := func(omega8 uint8, extra uint8) bool {
		omega := int(omega8) + 1
		bigger := omega + int(extra) + 1
		for _, dev := range device.All() {
			e := newEnv(dev, 10, 32, 5000)
			for _, spec := range specs {
				a := dev.Cycles(e.batchedS1(spec, omega))
				b := dev.Cycles(e.batchedS1(spec, bigger))
				if b < a {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestRegisterRemovesSpills: the Fig. 3b restructuring's defining effect.
func TestRegisterRemovesSpills(t *testing.T) {
	gpu := device.K20c()
	e := newEnv(gpu, 10, 32, 1000)
	base := e.batchedS1(Spec{}, 50)
	reg := e.batchedS1(Spec{S1Register: true}, 50)
	if base.SpillOps == 0 {
		t.Fatal("baseline S1 charged no spill traffic")
	}
	if reg.SpillOps != 0 {
		t.Fatalf("register S1 still spills: %g", reg.SpillOps)
	}
}

// TestLocalMovesTrafficToScratchpad: on the GPU, staging must convert
// per-step global transactions into one fill plus local accesses.
func TestLocalMovesTrafficToScratchpad(t *testing.T) {
	gpu := device.K20c()
	e := newEnv(gpu, 10, 32, 1000)
	noLoc := e.batchedS1(Spec{S1Register: true}, 80)
	loc := e.batchedS1(Spec{S1Register: true, S1Local: true}, 80)
	if !(loc.GlobalTx < noLoc.GlobalTx/2) {
		t.Fatalf("staging did not cut global traffic: %g vs %g", loc.GlobalTx, noLoc.GlobalTx)
	}
	if loc.LocalOps == 0 {
		t.Fatal("staged S1 charged no local accesses")
	}
	if noLoc.LocalOps != 0 {
		t.Fatal("unstaged S1 charged local accesses")
	}
}

// TestCPUClassification: the ALU classification rules behind the paper's
// CPU/MIC anomalies (Sec. V-B).
func TestCPUClassification(t *testing.T) {
	cpu := device.XeonE52670()
	e := newEnv(cpu, 10, 32, 1000)
	plain := e.batchedS1(Spec{}, 40)
	if plain.ALUOps == 0 || plain.VectorALUOps != 0 || plain.ScalarALUOps != 0 {
		t.Fatalf("plain batched misclassified: %+v", plain)
	}
	local := e.batchedS1(Spec{S1Local: true}, 40)
	if local.VectorALUOps == 0 {
		t.Fatalf("staged form should auto-vectorize: %+v", local)
	}
	reg := e.batchedS1(Spec{S1Register: true}, 40)
	if reg.ScalarALUOps == 0 {
		t.Fatalf("register form should defeat the vectorizer: %+v", reg)
	}
	vec := e.batchedS1(Spec{S1Register: true, Vector: true}, 40)
	if vec.VectorALUOps == 0 || vec.ScalarALUOps != 0 {
		t.Fatalf("explicit vectors should restore wide issue: %+v", vec)
	}
}

// TestFlatWarpSerialization: the flat GPU bundle's cost follows the longest
// row, damped by the warp-overlap blend.
func TestFlatWarpSerialization(t *testing.T) {
	gpu := device.K20c()
	e := newEnv(gpu, 10, 32, 1000)
	balanced := make([]int, 32)
	skewed := make([]int, 32)
	for i := range balanced {
		balanced[i] = 50
		skewed[i] = 1
	}
	skewed[0] = 50*32 - 31 // same total work, one huge row
	b1, b2, b3 := e.flatWarp(balanced, 50)
	s1, s2, s3 := e.flatWarp(skewed, skewed[0])
	bal := gpu.Cycles(b1) + gpu.Cycles(b2) + gpu.Cycles(b3)
	skw := gpu.Cycles(s1) + gpu.Cycles(s2) + gpu.Cycles(s3)
	if !(skw > bal*3) {
		t.Fatalf("skewed warp (%.0f) not much slower than balanced (%.0f) at equal work", skw, bal)
	}
}

// TestFlatCPUNoLockStep: on the CPU the flat baseline sums per-row work —
// the same total nonzeros cost the same regardless of distribution.
func TestFlatCPUNoLockStep(t *testing.T) {
	cpu := device.XeonE52670()
	e := newEnv(cpu, 10, 8, 1000)
	balanced := []int{50, 50, 50, 50}
	skewed := []int{197, 1, 1, 1}
	b1, b2, b3 := e.flatWarp(balanced, 50)
	s1, s2, s3 := e.flatWarp(skewed, 197)
	bal := cpu.Cycles(b1) + cpu.Cycles(b2) + cpu.Cycles(b3)
	skw := cpu.Cycles(s1) + cpu.Cycles(s2) + cpu.Cycles(s3)
	rel := skw / bal
	if rel < 0.99 || rel > 1.01 {
		t.Fatalf("CPU flat cost depends on within-bundle distribution: ratio %.3f", rel)
	}
}

// TestS3CholeskyCheaperThanGauss: the Sec. V-C S3 optimization.
func TestS3CholeskyCheaperThanGauss(t *testing.T) {
	for _, dev := range device.All() {
		e := newEnv(dev, 10, 32, 1000)
		chol := dev.Cycles(e.s3(Spec{}))
		gauss := dev.Cycles(e.s3(Spec{S3Gauss: true}))
		if !(chol < gauss) {
			t.Errorf("%s: Cholesky S3 (%.0f) not cheaper than Gauss (%.0f)", dev.Kind, chol, gauss)
		}
	}
}

// TestGroupOverheadGrowsWithWarps: the Fig. 10 idle-warp penalty.
func TestGroupOverheadGrowsWithWarps(t *testing.T) {
	gpu := device.K20c()
	small := newEnv(gpu, 10, 32, 1000).groupOverhead()
	big := newEnv(gpu, 10, 128, 1000).groupOverhead()
	if !(big.Overhead > small.Overhead) {
		t.Fatalf("extra warps cost nothing: %g vs %g", big.Overhead, small.Overhead)
	}
}

// TestStageTiles: staging footprints beyond the scratch-pad capacity split
// into tiles and cost extra overhead.
func TestStageTiles(t *testing.T) {
	gpu := device.K20c() // 48 KB local
	e := newEnv(gpu, 10, 32, 1000)
	if got := e.stageTiles(100); got != 1 {
		t.Fatalf("100 rows x k=10 should fit in one tile, got %d", got)
	}
	// 48KB / (44 bytes per staged row) ≈ 1117 rows per tile.
	if got := e.stageTiles(3000); got != 3 {
		t.Fatalf("3000 rows should need 3 tiles, got %d", got)
	}
	small := gpu.Cycles(e.batchedS1(Spec{S1Local: true, S1Register: true}, 1000))
	big := gpu.Cycles(e.batchedS1(Spec{S1Local: true, S1Register: true}, 3000))
	if !(big > 3*small*0.9) {
		t.Fatalf("tiled staging cost did not scale: %g vs %g", big, small)
	}
	ek100 := newEnv(gpu, 100, 32, 1000)
	if got := ek100.stageTiles(1000); got < 8 {
		t.Fatalf("k=100 staging of 1000 rows should need many tiles, got %d", got)
	}
}
