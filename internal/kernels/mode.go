package kernels

import "fmt"

// This file extends the cost model with the training-mode dimension. The
// simulated devices execute only the explicit-feedback kernels (Fig. 3 and
// the fused/packed family); the implicit fast paths — shared-Gram rank-1
// corrections, matrix-free CG, iALS++ block sweeps — run on the host. The
// estimator below is how the variant/cost layer still reasons about them:
// it predicts the per-row update work of each (mode, solver, block) point
// so mode selection can be argued analytically and asserted in tests,
// mirroring what BENCH_8.json measures in wall-clock.

// ModeSpec names one training-mode configuration of the host solver.
type ModeSpec struct {
	Implicit bool
	// Solver is "chol" (or "ldl" — same cubic cost shape) or "cg".
	Solver string
	// CGIters is the CG budget per row solve (default 3, only with "cg").
	CGIters int
	// BlockSize b > 0 selects iALS++ block-coordinate sweeps (implicit +
	// "chol" only); 0 is the full-width direct solve.
	BlockSize int
}

// ModeCost is the estimated per-row update work in multiply-add flops,
// split the way the stage instrumentation attributes it: assembly (the
// S1+S2 Gram/RHS work) and solve (the S3 factorization or iteration loop).
type ModeCost struct {
	AssembleFlops float64
	SolveFlops    float64
}

// Total is the full per-row estimate.
func (c ModeCost) Total() float64 { return c.AssembleFlops + c.SolveFlops }

// EstimateMode predicts the per-row update cost for a mode configuration
// at latent dimension k and row density omega (nonzeros in the row).
//
// The shapes, matching the host kernels flop for flop at leading order:
//
//	explicit chol/ldl:  ω·k(k+1)/2 + ω·k assembly, k³/6 + k² solve
//	explicit cg:        ω·k RHS, iters·2ωk matrix-free products
//	implicit chol/ldl:  same triangle as explicit — the shared FᵀF base is
//	                    amortized over the half-iteration, each row pays
//	                    only its confidence-weighted rank-1 corrections
//	implicit cg:        ω·k RHS, iters·(k² + 2ωk): the dense G·p product
//	                    plus the per-observation corrections
//	implicit block b:   k² + 2ωk residual/dot maintenance, plus per-sweep
//	                    block fills ω·k·b/2 and ⌈k/b⌉ factorizations b³/6
//	                    — increasing in b, meeting the direct solve at b=k
func EstimateMode(spec ModeSpec, k, omega int) (ModeCost, error) {
	if k <= 0 || omega < 0 {
		return ModeCost{}, fmt.Errorf("kernels: invalid mode estimate shape k=%d omega=%d", k, omega)
	}
	kf, w := float64(k), float64(omega)
	triangle := kf * (kf + 1) / 2
	iters := spec.CGIters
	if iters <= 0 {
		iters = 3
	}
	b := spec.BlockSize
	if b > k {
		b = k
	}
	switch {
	case spec.BlockSize != 0 && (!spec.Implicit || spec.Solver == "cg"):
		return ModeCost{}, fmt.Errorf("kernels: block size needs implicit mode with a direct solver")
	case b > 0:
		bf := float64(b)
		nb := float64((k + b - 1) / b)
		return ModeCost{
			AssembleFlops: kf*kf + 2*w*kf + w*kf*bf/2,
			SolveFlops:    nb * (bf*bf*bf/6 + bf*bf),
		}, nil
	case spec.Solver == "cg":
		per := 2 * w * kf
		if spec.Implicit {
			per += kf * kf
		}
		return ModeCost{
			AssembleFlops: w * kf,
			SolveFlops:    float64(iters) * per,
		}, nil
	default: // "chol"/"ldl" direct, either mode
		return ModeCost{
			AssembleFlops: w*triangle + w*kf,
			SolveFlops:    kf*kf*kf/6 + kf*kf,
		}, nil
	}
}
