package kernels

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/host"
	"repro/internal/linalg"
	"repro/internal/sparse"
)

// This file implements data-parallel multi-device ALS in the style the
// paper's related work attributes to cuMF ("using data parallelism in
// conjunction with model parallelism, minimizing the communication overhead
// between computing units"): user rows are sharded across devices for the
// X update and item rows for the Y update; the fixed factor matrix is
// replicated, so every half-iteration broadcasts it over PCIe and gathers
// the updated shards back. Compute overlaps across devices (the slowest
// shard sets the pace) while transfers serialize on the shared host link —
// which is exactly why small datasets stop scaling.

// MultiResult is a simulated multi-device training run.
type MultiResult struct {
	X, Y *linalg.Dense
	// ComputeSeconds is the summed per-iteration makespan of the slowest
	// device; TransferSeconds the serialized PCIe traffic (initial shard
	// placement + per-iteration broadcasts and gathers).
	ComputeSeconds  float64
	TransferSeconds float64
}

// Seconds is the simulated end-to-end time.
func (r *MultiResult) Seconds() float64 { return r.ComputeSeconds + r.TransferSeconds }

// TrainMulti runs ALS sharded across the given devices (all must share the
// config's spec/launch parameters; they would typically be identical GPUs).
// The factors it produces are identical to a single-device run — sharding
// only changes where rows are computed.
func TrainMulti(mx *sparse.Matrix, cfg Config, devices []*device.Device) (*MultiResult, error) {
	if len(devices) == 0 {
		return nil, fmt.Errorf("kernels: no devices")
	}
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	if mx.NNZ() == 0 {
		return nil, fmt.Errorf("kernels: empty rating matrix")
	}
	m, n := mx.Rows(), mx.Cols()
	x := linalg.NewDense(m, cfg.K)
	y := host.InitialY(n, cfg.K, cfg.Seed)
	rt := &sparse.CSR{NumRows: n, NumCols: m, RowPtr: mx.C.ColPtr, ColIdx: mx.C.RowIdx, Val: mx.C.Val}

	res := &MultiResult{X: x, Y: y}

	// Initial placement: each device receives its R shards (both views)
	// once. Approximate each device's share of the nonzeros as uniform.
	perDevNNZ := int64(mx.NNZ()) / int64(len(devices))
	for _, d := range devices {
		res.TransferSeconds += d.TransferSeconds(perDevNNZ * 16)
	}

	factorBytes := func(rows int) int64 { return int64(rows) * int64(cfg.K) * 4 }
	for it := 0; it < cfg.Iterations; it++ {
		// X update: broadcast Y to every device, compute row shards,
		// gather the X shards back.
		comp, err := multiUpdate(mx.R, y, x, cfg, devices)
		if err != nil {
			return nil, fmt.Errorf("kernels: multi iteration %d (X): %w", it+1, err)
		}
		res.ComputeSeconds += comp
		for i, d := range devices {
			res.TransferSeconds += d.TransferSeconds(factorBytes(n)) // Y broadcast
			lo, hi := shard(m, len(devices), i)
			res.TransferSeconds += d.TransferSeconds(factorBytes(hi - lo)) // X gather
		}
		// Y update, symmetric.
		comp, err = multiUpdate(rt, x, y, cfg, devices)
		if err != nil {
			return nil, fmt.Errorf("kernels: multi iteration %d (Y): %w", it+1, err)
		}
		res.ComputeSeconds += comp
		for i, d := range devices {
			res.TransferSeconds += d.TransferSeconds(factorBytes(m))
			lo, hi := shard(n, len(devices), i)
			res.TransferSeconds += d.TransferSeconds(factorBytes(hi - lo))
		}
	}
	return res, nil
}

// shard returns device i's contiguous row range out of total rows.
func shard(rows, devices, i int) (lo, hi int) {
	lo = i * rows / devices
	hi = (i + 1) * rows / devices
	return
}

// multiUpdate computes one half-iteration across devices, returning the
// compute makespan (the slowest device's simulated time).
func multiUpdate(r *sparse.CSR, fixed, out *linalg.Dense, cfg Config, devices []*device.Device) (float64, error) {
	var slowest float64
	for i, d := range devices {
		lo, hi := shard(r.NumRows, len(devices), i)
		if lo == hi {
			continue
		}
		// A zero-copy CSR view of the row shard (column space unchanged).
		view := &sparse.CSR{
			NumRows: hi - lo,
			NumCols: r.NumCols,
			RowPtr:  make([]int64, hi-lo+1),
			ColIdx:  r.ColIdx,
			Val:     r.Val,
		}
		base := r.RowPtr[lo]
		for j := 0; j <= hi-lo; j++ {
			view.RowPtr[j] = r.RowPtr[lo+j] - base
		}
		view.ColIdx = r.ColIdx[base:r.RowPtr[hi]]
		view.Val = r.Val[base:r.RowPtr[hi]]

		shardOut := linalg.NewDenseFrom(hi-lo, cfg.K, out.Data[lo*cfg.K:hi*cfg.K])
		devCfg := cfg
		devCfg.Device = d
		rep, err := UpdateSide(view, fixed, shardOut, devCfg)
		if err != nil {
			return 0, err
		}
		if rep.Seconds > slowest {
			slowest = rep.Seconds
		}
	}
	return slowest, nil
}
