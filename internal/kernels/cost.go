package kernels

import (
	"repro/internal/device"
	"repro/internal/sim"
)

// The cost model. Quantities are derived from the kernel shapes of the
// paper's Fig. 3 and Algorithm 2; each formula states which mechanism it
// charges. Lane-level lock-step work is expressed in "steps": one step is
// one warp/vector-wide multiply-add issue.
//
// Notation: k = latent factor, ws = work-group size, ω = row nonzeros,
// colIters = ⌈k/ws⌉ (passes each lane makes over the k columns).

// env carries launch-wide quantities shared by all rows of one update.
type env struct {
	dev      *device.Device
	k        int
	ws       int
	colIters int
	warps    int // resident warps per group: ⌈ws/WarpSize⌉
	// hitY is the deterministic cache-hit fraction when streaming gathered
	// rows of the fixed factor straight from global memory (CPU/MIC).
	hitY float64
	// lineFloats is how many floats one memory transaction/cacheline holds.
	lineFloats int
	// fullChunks/idleChunks: per column-pass vector-chunk counts on CPU/MIC
	// (see newEnv).
	fullChunks int
	idleChunks int
}

func newEnv(d *device.Device, k, ws int, fixedRows int) env {
	ci := (k + ws - 1) / ws
	w := (ws + d.WarpSize - 1) / d.WarpSize
	e := env{
		dev: d, k: k, ws: ws, colIters: ci, warps: w,
		hitY:       d.CacheHitFraction(int64(fixedRows) * int64(k) * 4),
		lineFloats: d.TransactionBytes / 4,
	}
	if !d.HasScratchpad {
		// On CPU/MIC the runtime packs work-items into vector chunks of
		// WarpSize lanes. A pass over the k columns issues
		// ceil(min(ws,k)/vw) chunks and the group loops colIters times, so
		// ws < vw forces narrow (but full-cost) passes; ws beyond the
		// columns adds predicated idle chunks that only cost issue slots.
		vw := d.WarpSize
		active := ws
		if active > k {
			active = k
		}
		chunksPerPass := (active + vw - 1) / vw
		e.fullChunks = ci * chunksPerPass
		executed := ci * ((ws + vw - 1) / vw)
		e.idleChunks = executed - e.fullChunks
		if e.idleChunks < 0 {
			e.idleChunks = 0
		}
	}
	return e
}

// rowLines is how many transactions/cachelines one k-float factor row spans.
func (e env) rowLines() float64 {
	return float64((e.k*4 + e.dev.TransactionBytes - 1) / e.dev.TransactionBytes)
}

// stageTiles is how many scratch-pad tiles staging ω gathered rows of k
// floats needs (plus the ω staged rating values), given the device's local
// memory capacity. 1 means the whole row fits at once.
func (e env) stageTiles(omega int) int {
	bytes := omega*e.k*4 + omega*4
	if bytes <= e.dev.LocalBytes {
		return 1
	}
	return (bytes + e.dev.LocalBytes - 1) / e.dev.LocalBytes
}

// groupOverhead charges the fixed per-row scheduling cost, including the
// idle extra warps a too-large group keeps resident (Fig. 10's penalty at
// 64/128 threads per group).
func (e env) groupOverhead() device.Counters {
	return device.Counters{
		Overhead: e.dev.GroupOverhead + float64(e.warps-1)*e.dev.WarpOverhead,
	}
}

// batchedS1 charges the thread-batched YᵀY+λI step for one row.
//
// Shape: the group's lanes split the k output columns; for each nonzero z
// the group makes colIters lock-step passes of k multiply-adds (Fig. 3).
// ws < k therefore costs extra passes (Fig. 10: block 8 needs two passes at
// k=10, block 16/32 one).
func (e env) batchedS1(spec Spec, omega int) device.Counters {
	var c device.Counters
	steps := float64(omega) * float64(e.colIters) * float64(e.k)
	if !e.dev.HasScratchpad {
		// Vector-chunk count: data volume and useful issue slots don't grow
		// with the group size; idle chunks cost a fraction of a slot.
		steps = float64(omega) * float64(e.k) *
			(float64(e.fullChunks) + idleChunkCost*float64(e.idleChunks))
	}

	// ALU classification: on CPU/MIC the contiguous staged form implicitly
	// vectorizes, the guarded register form defeats the vectorizer
	// (Sec. V-B's "unpredictable" CPU/MIC observations), and explicit
	// vectors restore full-width issue anywhere. The fused kernel's packed
	// strips are contiguous, so it vectorizes like the staged form.
	switch {
	case spec.Vector:
		c.VectorALUOps += steps
	case spec.Fused && !e.dev.HasScratchpad:
		c.VectorALUOps += steps
	case spec.S1Register && !e.dev.HasScratchpad:
		c.ScalarALUOps += steps
	case spec.S1Local && !e.dev.HasScratchpad:
		c.VectorALUOps += steps
	default:
		c.ALUOps += steps
	}

	// Accumulator traffic: without the Fig. 3b restructuring the k×k
	// dynamically-indexed private array lives in spill space (CUDA local
	// memory on the GPU, stack lines on CPU/MIC): one round trip per MAD.
	// The fused kernel's packed accumulator is the k-strip register form.
	if !spec.S1Register && !spec.Fused {
		c.SpillOps += steps
	}

	if e.dev.HasScratchpad {
		if spec.S1Local {
			// Stage once: ω coalesced row loads, then every pass reads the
			// scratch-pad. Rows whose staged footprint exceeds the per-CU
			// scratch-pad are staged in tiles: same total fill traffic, but
			// each extra tile costs a barrier + re-issue of the pass loop.
			c.GlobalTx += float64(omega) * e.rowLines()
			c.LocalOps += steps * 2
			if tiles := e.stageTiles(omega); tiles > 1 {
				c.Overhead += float64(tiles-1) * stageTileOverhead
			}
		} else {
			// Every pass re-streams the gathered rows from DRAM: a coalesced
			// load of the lane columns plus a warp-uniform load per step.
			c.GlobalTx += steps * s1GlobalTxPerStep
		}
	} else {
		// Cache-based devices: the first stream over the gathered rows pays
		// the Y-working-set hit fraction; re-passes hit cache (the gathered
		// set is KBs). Staging adds an explicit copy but makes the re-passes
		// contiguous (vector-classified above).
		firstStream := float64(omega) * e.rowLines()
		c.CacheHits += firstStream * e.hitY
		c.CacheMisses += firstStream * (1 - e.hitY)
		if spec.S1Local {
			// Staged rows pack cachelines fully and prefetch cleanly; the
			// scattered form wastes most of each line it touches. This is
			// why local memory helps on CPU/MIC despite the missing
			// physical scratch-pad (the paper's Sec. V-B observation).
			c.CacheHits += steps * s1CacheTouchPerStep * stagedTouchDiscount
			c.ALUOps += float64(omega) * float64(e.colIters) // copy loop
		} else {
			c.CacheHits += steps * s1CacheTouchPerStep * scatteredTouchWaste
		}
	}
	return c
}

// batchedS2 charges the Yᵀr_u gather step for one row: per nonzero, one
// lock-step pass of the lanes over the k columns (colIters steps).
func (e env) batchedS2(spec Spec, omega int) device.Counters {
	var c device.Counters
	steps := float64(omega) * float64(e.colIters)
	if !e.dev.HasScratchpad {
		steps = float64(omega) *
			(float64(e.fullChunks) + idleChunkCost*float64(e.idleChunks))
	}
	if spec.Vector {
		c.VectorALUOps += steps
	} else {
		c.ALUOps += steps
	}
	if spec.Fused {
		// The fused kernel accumulates svec during the S1 sweep: the
		// gathered rows are already in registers, so S2 costs only its
		// multiply-adds plus the rating loads (the column-major value
		// indirection still pays residual scattered traffic on the GPU).
		if e.dev.HasScratchpad {
			c.GlobalTx += float64(omega) * s2IndirectionTx
		} else {
			c.CacheHits += float64(omega)
		}
		return c
	}
	if e.dev.HasScratchpad {
		if spec.S2Local {
			// Rows already staged by S1 (or staged now): ratings staged
			// coalesced; the column-major value indirection still costs
			// residual scattered traffic.
			if !spec.S1Local {
				c.GlobalTx += float64(omega) * e.rowLines()
			}
			c.GlobalTx += float64(omega) * s2IndirectionTx
			c.LocalOps += steps * 2
		} else {
			c.GlobalTx += steps * s2GlobalTxPerStep
		}
	} else {
		if spec.S2Local && !spec.S1Local {
			c.ALUOps += float64(omega) * float64(e.colIters)
		}
		touch := float64(omega) * e.rowLines()
		if spec.S1Local || spec.S2Local {
			c.CacheHits += touch
		} else {
			c.CacheHits += touch * e.hitY
			c.CacheMisses += touch * (1 - e.hitY)
		}
	}
	return c
}

// serialCPI is the effective cycles-per-flop of dependence-chained scalar
// code (the triangular factor/solve loops): the GPU runs it on essentially
// one lane of a warp, the in-order MIC stalls on every dependence, and the
// out-of-order CPU hides most of the chain.
func serialCPI(d *device.Device) float64 {
	switch d.Kind {
	case device.GPU:
		return 4.5
	case device.MIC:
		return 9
	default:
		return 0.8
	}
}

// s3 charges the dense k×k solve. Cholesky factorization does k³/6
// multiply-adds; the generic Gaussian-elimination form the tuning story
// starts from does k³/3 on a non-symmetric layout. The loop-carried
// dependences make it serial work at serialCPI, on scratch that lives in
// local memory (GPU) or L1 (CPU/MIC).
func (e env) s3(spec Spec) device.Counters {
	var c device.Counters
	k := float64(e.k)
	var flops float64
	if spec.S3Gauss {
		flops = k*k*k/3 + k*k
	} else {
		flops = k*k*k/6 + k*k
	}
	c.Overhead += flops * serialCPI(e.dev)
	// Packed storage (fused variant) halves the S3 working-set touches:
	// the factorization walks k(k+1)/2 elements instead of k².
	touch := s3ScratchTouch
	if spec.Fused {
		touch *= 0.5
	}
	if e.dev.HasScratchpad {
		c.LocalOps += flops * touch
	} else {
		c.CacheHits += flops * touch
	}
	c.Add(e.groupOverhead())
	return c
}

// flatWarp charges one lock-step bundle of the SAC'15 flat kernel —
// WarpSize consecutive rows handled by one warp/vector, maxOmega the
// longest row — returning the three stages separately.
//
// Mechanisms (Sec. III-B diagnosis):
//   - unbalanced thread use: on the GPU every lane waits for the longest
//     row — cost scales with maxΩ·(active lanes), not ΣΩ;
//   - scattered access: lanes walk different rows, so each lane's load is
//     its own transaction (no coalescing) on the GPU;
//   - the k×k private scratch spills (dynamic indexing), charged per MAD.
//
// On CPU/MIC the baseline is the OpenMP code: independent scalar threads,
// so there is no lock-step serialization — rows cost their own ω — but
// accesses are scalar and cache-dependent, and core-level imbalance appears
// across compute units through the scheduler in als.go.
func (e env) flatWarp(omegas []int, maxOmega int) (s1, s2, s3 device.Counters) {
	k := float64(e.k)
	triangle := k * (k + 1) / 2
	rows := float64(len(omegas))

	if e.dev.Kind == device.GPU {
		// Lock-step effective length: lanes wait for the longest row, but
		// the SM hides part of that wait behind its other resident warps,
		// so the charged length blends the warp maximum with the mean.
		var sum int
		for _, o := range omegas {
			sum += o
		}
		mean := float64(sum) / rows
		effOmega := warpOverlapAlpha*float64(maxOmega) + (1-warpOverlapAlpha)*mean

		// S1: every lane walks the full pair triangle of its row; each
		// lane's loads target its own row of Y, so a step issues up to
		// `rows` distinct transactions (scatter), partially merged in L2.
		steps1 := effOmega * triangle
		s1.ALUOps += steps1
		s1.SpillOps += steps1
		s1.GlobalTx += steps1 * flatScatterTxPerStep * rows
		// S2: the gather of Yᵀr_u, same serialization and scatter plus the
		// column-major rating indirection (colMajored_sparse_id).
		steps2 := effOmega * k
		s2.ALUOps += steps2
		s2.GlobalTx += steps2 * flatScatterTxPerStep * rows * 1.5
		// S3: every lane factorizes its own k×k system out of spill space;
		// the scattered spill accesses serialize the lanes.
		flops := k*k*k/6 + k*k
		s3.Overhead += rows * flops * serialCPI(e.dev) * flatS3LaneSerial
		s3.SpillOps += rows * flops * flatS3ScratchTouch
		s3.Overhead += e.dev.GroupOverhead
		return s1, s2, s3
	}

	// CPU/MIC OpenMP baseline: per-row scalar work, summed. The column-major
	// value indirection chains every load (flatCPUIndirection) and the pair
	// loop re-streams the gathered rows (flatCPUReloadFactor).
	for _, omega := range omegas {
		w := float64(omega)
		s1.ScalarALUOps += w * triangle * flatCPUIndirection
		s1.SpillOps += w * triangle * cpuFlatScratchTouch
		touch := w * e.rowLines() * flatCPUReloadFactor
		s1.CacheHits += touch * e.hitY
		s1.CacheMisses += touch * (1 - e.hitY)
		s2.ScalarALUOps += w * k * flatCPUIndirection
		s2.CacheHits += w * e.rowLines() * e.hitY
		s2.CacheMisses += w * e.rowLines() * (1 - e.hitY)
		flops := k*k*k/6 + k*k
		s3.Overhead += flops * serialCPI(e.dev)
		s3.CacheHits += flops * s3ScratchTouch
	}
	s3.Overhead += e.dev.GroupOverhead
	return s1, s2, s3
}

// Calibration constants. These weight the per-step memory shapes above;
// they were fixed once against the paper's headline ratios (Fig. 1: flat
// CUDA ≈ 8.4× slower than flat OpenMP; Fig. 7: 21.2× on K20c and 5.5× on
// E5-2670 over the flat baselines, 2.2–6.8× over cuMF; Fig. 9: CPU < GPU <
// MIC) and are asserted to stay in-band by calibrate_test.go.
const (
	// s1GlobalTxPerStep: transactions per lock-step S1 MAD without local
	// staging on the GPU (coalesced lane load + uniform load, L2-mitigated).
	s1GlobalTxPerStep = 0.55
	// s2GlobalTxPerStep: transactions per S2 step without staging: the Y
	// row reload plus the scattered column-major rating load behind the
	// colMajored_sparse_id indirection (Algorithm 2, line 10).
	s2GlobalTxPerStep = 2.2
	// s2IndirectionTx: residual scattered transactions per nonzero that the
	// rating indirection costs even with the factor rows staged locally.
	s2IndirectionTx = 0.7
	// s1CacheTouchPerStep: cacheline touches per S1 MAD on CPU/MIC once the
	// gathered rows are cache-resident.
	s1CacheTouchPerStep = 1.0
	// stagedTouchDiscount/scatteredTouchWaste scale those touches when the
	// rows are staged contiguously vs walked through scattered lines.
	stagedTouchDiscount = 0.6
	scatteredTouchWaste = 1.25
	// idleChunkCost: issue-slot fraction a predicated idle vector chunk
	// costs on CPU/MIC when the group size exceeds the useful lanes.
	idleChunkCost = 0.06
	// stageTileOverhead: cycles per extra scratch-pad tile when a staged
	// row exceeds the local-memory capacity (barrier + loop re-issue).
	stageTileOverhead = 220.0
	// s3ScratchTouch: scratch touches per S3 flop (smat working set).
	s3ScratchTouch = 0.5
	// warpOverlapAlpha: weight of the warp-max row length (vs the warp
	// mean) in the flat kernel's effective lock-step length; resident warps
	// on the same SM hide part of the divergence stall.
	warpOverlapAlpha = 0.4
	// flatScatterTxPerStep: scattered transactions per lock-step flat-kernel
	// MAD per active lane (2 operand loads, partially L2-merged).
	flatScatterTxPerStep = 0.27
	// flatS3LaneSerial: fraction of per-lane S3 work that serializes across
	// the warp through conflicting spill accesses in the flat kernel.
	flatS3LaneSerial = 0.8
	// flatS3ScratchTouch: spill-space touches per S3 flop in the flat GPU
	// kernel (smat lives in CUDA local memory there).
	flatS3ScratchTouch = 1.0
	// cpuFlatScratchTouch: stack-scratch touches per flat MAD on CPU/MIC.
	cpuFlatScratchTouch = 2.0
	// flatCPUIndirection: issue-rate multiplier for the baseline's
	// dependence-chained column-major value indirection on CPU/MIC.
	flatCPUIndirection = 1.35
	// flatCPUReloadFactor: extra streams over the gathered rows the
	// unblocked baseline makes on CPU/MIC (pair loop re-reads).
	flatCPUReloadFactor = 8.0
)

// chargeStages is a helper used by the kernels to charge S1/S2/S3 at once.
func chargeStages(acc *sim.Acc, s1, s2, s3 device.Counters) {
	acc.Charge(sim.S1, s1)
	acc.Charge(sim.S2, s2)
	acc.Charge(sim.S3, s3)
}
