package kernels

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/device"
	"repro/internal/host"
	"repro/internal/linalg"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/sparse"
	"repro/internal/variant"
)

func testMatrix(t testing.TB) *sparse.Matrix {
	t.Helper()
	return dataset.YahooR4.ScaledForBench(0.05).Generate(11).Matrix
}

// longRowMatrix keeps per-row nonzero counts near the real datasets' so
// stage-share assertions see the paper's regime (ω ≈ 60 vs Netflix's 206,
// rather than the ~15 of the tiny default test matrix).
func longRowMatrix(t testing.TB) *sparse.Matrix {
	t.Helper()
	return dataset.Netflix.ScaledForBench(0.002).Generate(13).Matrix
}

// TestSimMatchesHost: the simulated kernels do real arithmetic — the
// factors they produce must match the host solver's for every device and
// variant (the simulator only changes the clock, not the math).
func TestSimMatchesHost(t *testing.T) {
	mx := testMatrix(t)
	ref, err := host.Train(mx, host.Config{K: 10, Lambda: 0.1, Iterations: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, dev := range device.All() {
		for _, v := range variant.All() {
			res, err := Train(mx, Config{Device: dev, Spec: FromVariant(v),
				K: 10, Lambda: 0.1, Iterations: 2, Seed: 3})
			if err != nil {
				t.Fatalf("%s/%s: %v", dev.Kind, v, err)
			}
			if d := linalg.MaxAbsDiff(ref.X, res.X); d > 2e-3 {
				t.Errorf("%s/%s: X deviates from host by %g", dev.Kind, v, d)
			}
			if d := linalg.MaxAbsDiff(ref.Y, res.Y); d > 2e-3 {
				t.Errorf("%s/%s: Y deviates from host by %g", dev.Kind, v, d)
			}
		}
	}
}

// TestFlatMatchesHost covers the baseline spec's arithmetic too.
func TestFlatMatchesHost(t *testing.T) {
	mx := testMatrix(t)
	ref, err := host.Train(mx, host.Config{K: 8, Lambda: 0.1, Iterations: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Train(mx, Config{Device: device.K20c(), Spec: Baseline(),
		K: 8, Lambda: 0.1, Iterations: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if d := linalg.MaxAbsDiff(ref.X, res.X); d > 2e-3 {
		t.Errorf("flat X deviates from host by %g", d)
	}
}

// TestSimDeterministic: identical configs give identical simulated times —
// the cost accounting must not depend on goroutine interleaving.
func TestSimDeterministic(t *testing.T) {
	mx := testMatrix(t)
	cfg := Config{Device: device.K20c(), Spec: FromVariant(variant.Options{Local: true, Register: true}),
		K: 10, Lambda: 0.1, Iterations: 1, Seed: 7}
	a, err := Train(mx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		b, err := Train(mx, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if a.Report.MakespanCycles != b.Report.MakespanCycles {
			t.Fatalf("run %d: makespan %.0f != %.0f", i, b.Report.MakespanCycles, a.Report.MakespanCycles)
		}
		for s := 0; s < 3; s++ {
			if a.Report.StageCycles[s] != b.Report.StageCycles[s] {
				t.Fatalf("run %d: stage %d cycles differ", i, s)
			}
		}
	}
}

// TestSimLearns: the simulated run must actually factorize (sanity on the
// real-math claim).
func TestSimLearns(t *testing.T) {
	mx := testMatrix(t)
	res, err := Train(mx, Config{Device: device.XeonE52670(),
		K: 10, Lambda: 0.1, Iterations: 6, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	rmse := metrics.RMSE(mx.R, res.X, res.Y)
	if math.IsNaN(rmse) || rmse > 1.0 {
		t.Fatalf("simulated training RMSE = %g, want < 1.0", rmse)
	}
}

func TestSpecNames(t *testing.T) {
	if Baseline().Name() != "flat baseline" {
		t.Fatalf("Baseline name = %q", Baseline().Name())
	}
	s := FromVariant(variant.Options{Local: true, Register: true})
	if s.Name() != "thread batching+local memory+register" {
		t.Fatalf("spec name = %q", s.Name())
	}
	g := Spec{S3Gauss: true}
	if g.Name() != "thread batching (gauss S3)" {
		t.Fatalf("gauss spec name = %q", g.Name())
	}
}

func TestTrainRejectsEmptyAndNilDevice(t *testing.T) {
	coo := sparse.NewCOO(3, 3)
	empty, err := sparse.NewMatrix(coo)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Train(empty, Config{Device: device.K20c()}); err == nil {
		t.Fatal("accepted empty matrix")
	}
	mx := testMatrix(t)
	if _, err := Train(mx, Config{}); err == nil {
		t.Fatal("accepted nil device")
	}
}

// TestStageDominance: with the paper's defaults, S1 dominates the
// un-optimized thread-batched run (the premise of the hotspot-guided tuning
// in Sec. V-C).
func TestStageDominance(t *testing.T) {
	mx := longRowMatrix(t)
	res, err := Train(mx, Config{Device: device.K20c(), Spec: Spec{},
		K: 10, Lambda: 0.1, Iterations: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sh := res.Report.StageShare()
	if !(sh[0] > sh[1] && sh[0] > sh[2]) {
		t.Fatalf("S1 share %.2f not dominant (S2 %.2f, S3 %.2f)", sh[0], sh[1], sh[2])
	}
	if sh[0] < 0.5 {
		t.Fatalf("S1 share %.2f, paper reports ~65-70%%", sh[0])
	}
}

// TestOptimizationShiftsHotspot: optimizing S1 must shift the dominant
// stage toward S2 (Fig. 8 b→c transition).
func TestOptimizationShiftsHotspot(t *testing.T) {
	mx := longRowMatrix(t)
	before, err := Train(mx, Config{Device: device.K20c(), Spec: Spec{S3Gauss: true},
		K: 10, Lambda: 0.1, Iterations: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	after, err := Train(mx, Config{Device: device.K20c(),
		Spec: Spec{S1Local: true, S1Register: true, S3Gauss: true},
		K:    10, Lambda: 0.1, Iterations: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sb, sa := before.Report.StageShare(), after.Report.StageShare()
	if !(sa[0] < sb[0]) {
		t.Fatalf("S1 share did not drop after optimizing S1: %.2f -> %.2f", sb[0], sa[0])
	}
	if !(sa[1] > sb[1]) {
		t.Fatalf("S2 share did not rise after optimizing S1: %.2f -> %.2f", sb[1], sa[1])
	}
}

// TestGroupSizeSweepGPU: block-size behaviour on the GPU at k=10
// (Fig. 10): 8 is slower than 16/32; 128 is slower than 32.
func TestGroupSizeSweepGPU(t *testing.T) {
	mx := testMatrix(t)
	times := map[int]float64{}
	for _, ws := range []int{8, 16, 32, 128} {
		res, err := Train(mx, Config{Device: device.K20c(),
			Spec: FromVariant(variant.Options{Local: true, Register: true}),
			K:    10, Lambda: 0.1, Iterations: 1, Seed: 1, GroupSize: ws})
		if err != nil {
			t.Fatal(err)
		}
		times[ws] = res.Seconds()
	}
	if !(times[8] > times[16] && times[8] > times[32]) {
		t.Fatalf("block 8 (%.5f) not slower than 16 (%.5f)/32 (%.5f)", times[8], times[16], times[32])
	}
	if !(times[128] > times[32]) {
		t.Fatalf("block 128 (%.5f) not slower than 32 (%.5f)", times[128], times[32])
	}
}

// TestTransferChargedOnAccelerators: PCIe placement shows up on GPU/MIC and
// not on the host-resident CPU.
func TestTransferChargedOnAccelerators(t *testing.T) {
	mx := testMatrix(t)
	for _, dev := range device.All() {
		res, err := Train(mx, Config{Device: dev, K: 10, Lambda: 0.1, Iterations: 1, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if dev.Kind == device.CPU && res.TransferSeconds != 0 {
			t.Errorf("CPU charged transfer %.6fs", res.TransferSeconds)
		}
		if dev.Kind != device.CPU && res.TransferSeconds <= 0 {
			t.Errorf("%s charged no transfer", dev.Kind)
		}
	}
}

// TestEmptyRowsCostNothing: rows with no ratings are skipped by the kernel
// (Algorithm 2's omegaSize guard) and charge no stage cycles.
func TestEmptyRowsCostNothing(t *testing.T) {
	coo := sparse.NewCOO(100, 10)
	coo.Append(0, 1, 3) // a single rated row
	coo.Append(0, 2, 4)
	mx, err := sparse.NewMatrix(coo)
	if err != nil {
		t.Fatal(err)
	}
	fixed := linalg.NewDense(10, 4)
	for i := range fixed.Data {
		fixed.Data[i] = 0.1
	}
	out := linalg.NewDense(100, 4)
	rep, err := UpdateSide(mx.R, fixed, out, Config{Device: device.K20c(), K: 4, Lambda: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	// One active row: the report must reflect exactly one row's overhead.
	single := rep.StageCycles[sim.S3]
	if single <= 0 {
		t.Fatal("no S3 cycles for the rated row")
	}
	coo2 := sparse.NewCOO(100, 10)
	coo2.Append(50, 1, 3)
	coo2.Append(50, 2, 4)
	mx2, err := sparse.NewMatrix(coo2)
	if err != nil {
		t.Fatal(err)
	}
	out2 := linalg.NewDense(100, 4)
	rep2, err := UpdateSide(mx2.R, fixed, out2, Config{Device: device.K20c(), K: 4, Lambda: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.StageCycles[sim.S1] != rep2.StageCycles[sim.S1] {
		t.Fatalf("same single-row work charged differently: %g vs %g",
			rep.StageCycles[sim.S1], rep2.StageCycles[sim.S1])
	}
}
