package kernels

import "testing"

// TestEstimateModeCGBeatsDirect: the reason the CG solver exists — at the
// serving-scale latent dimension (k=64) a 3-iteration matrix-free solve
// does far fewer flops than assembling and factorizing the k×k system.
// BENCH_8.json asserts the same relation in wall-clock (≥1.2×); the model
// must predict a comfortable margin.
func TestEstimateModeCGBeatsDirect(t *testing.T) {
	const k, omega = 64, 100
	direct, err := EstimateMode(ModeSpec{Implicit: true, Solver: "chol"}, k, omega)
	if err != nil {
		t.Fatal(err)
	}
	cg, err := EstimateMode(ModeSpec{Implicit: true, Solver: "cg", CGIters: 3}, k, omega)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := direct.Total() / cg.Total(); ratio < 1.2 {
		t.Fatalf("model predicts CG speedup %.2fx at k=%d, want ≥ 1.2x", ratio, k)
	}
	// At its worst-case budget (2k iterations) CG loses the advantage —
	// the budget is the trade-off, and the model must show it.
	full, err := EstimateMode(ModeSpec{Implicit: true, Solver: "cg", CGIters: 2 * k}, k, omega)
	if err != nil {
		t.Fatal(err)
	}
	if full.Total() < direct.Total() {
		t.Fatalf("model predicts exhaustive CG (%.0f flops) cheaper than direct (%.0f)", full.Total(), direct.Total())
	}
}

// TestEstimateModeBlockScaling pins the iALS++ trade-off: per-row update
// cost strictly increases with block size b, and the b=k point lands in
// the same regime as the full direct solve (one exact Newton step).
func TestEstimateModeBlockScaling(t *testing.T) {
	const k, omega = 64, 100
	prev := 0.0
	for _, b := range []int{4, 8, 16, 32, 64} {
		c, err := EstimateMode(ModeSpec{Implicit: true, Solver: "chol", BlockSize: b}, k, omega)
		if err != nil {
			t.Fatal(err)
		}
		if c.Total() <= prev {
			t.Fatalf("block cost not increasing: b=%d gives %.0f, previous %.0f", b, c.Total(), prev)
		}
		prev = c.Total()
	}
	direct, err := EstimateMode(ModeSpec{Implicit: true, Solver: "chol"}, k, omega)
	if err != nil {
		t.Fatal(err)
	}
	full, err := EstimateMode(ModeSpec{Implicit: true, Solver: "chol", BlockSize: k}, k, omega)
	if err != nil {
		t.Fatal(err)
	}
	if r := full.Total() / direct.Total(); r < 0.5 || r > 2 {
		t.Fatalf("b=k cost %.0f not within 2x of direct %.0f (ratio %.2f)", full.Total(), direct.Total(), r)
	}
}

// TestEstimateModeImplicitMatchesExplicitDirect: the shared-Gram design is
// exactly what makes implicit rows cost the same as explicit ones — the
// model encodes that equivalence for the direct solver.
func TestEstimateModeImplicitMatchesExplicitDirect(t *testing.T) {
	const k, omega = 16, 40
	ex, err := EstimateMode(ModeSpec{Solver: "chol"}, k, omega)
	if err != nil {
		t.Fatal(err)
	}
	im, err := EstimateMode(ModeSpec{Implicit: true, Solver: "chol"}, k, omega)
	if err != nil {
		t.Fatal(err)
	}
	if ex != im {
		t.Fatalf("direct-solver cost differs across modes: explicit %+v, implicit %+v", ex, im)
	}
}

// TestEstimateModeRejectsInvalid: impossible shapes and mode combinations
// must error, matching host.Config validation.
func TestEstimateModeRejectsInvalid(t *testing.T) {
	if _, err := EstimateMode(ModeSpec{Solver: "chol"}, 0, 5); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := EstimateMode(ModeSpec{Solver: "chol"}, 8, -1); err == nil {
		t.Fatal("negative omega accepted")
	}
	if _, err := EstimateMode(ModeSpec{Solver: "chol", BlockSize: 4}, 8, 5); err == nil {
		t.Fatal("explicit block size accepted")
	}
	if _, err := EstimateMode(ModeSpec{Implicit: true, Solver: "cg", BlockSize: 4}, 8, 5); err == nil {
		t.Fatal("cg block size accepted")
	}
}
