// Package kernels implements the paper's ALS update kernels for the
// simulated devices: the flat one-thread-per-row baseline (SAC'15) and the
// thread-batched kernel family with the register / local-memory / vector
// optimizations individually applicable per stage.
//
// Each kernel performs the real per-row arithmetic (the factors it produces
// are checked against the host solver bit-tolerantly) and charges
// device.Counters describing its memory-access pattern and lock-step
// execution shape on the target device; internal/sim turns those into
// simulated execution times. The cost formulas and their rationale are
// documented in cost.go and DESIGN.md §5.
package kernels

import (
	"repro/internal/variant"
)

// Spec selects the kernel implementation per stage. The zero value is the
// bare thread-batched kernel with the Cholesky S3 (the paper's starting
// point after Sec. III-B).
type Spec struct {
	// Flat selects the SAC'15 baseline: one work-item per row, private
	// k×k scratch, scattered accesses. All other toggles are ignored.
	Flat bool

	// S1Local stages the gathered rows of the fixed factor in local memory
	// for the YᵀY step; S2Local reuses the stage (or builds one) for Yᵀr_u.
	S1Local bool
	S2Local bool
	// S1Register uses the Fig. 3b k-strip accumulator restructuring.
	S1Register bool
	// Vector issues the inner loops through explicit wide vector ops.
	Vector bool
	// S3Gauss replaces the Cholesky solve with the generic Gaussian
	// elimination the tuning narrative of Sec. V-C starts from.
	S3Gauss bool
	// Fused computes S1 and S2 in one sweep over the gathered rows with a
	// packed upper-triangular accumulator, and runs S3 as a packed
	// Cholesky. Subsumes S1Register (the packed strip is the register
	// form); composes with S1Local/S2Local staging and Vector.
	Fused bool
}

// FromVariant maps one of the paper's 8 code variants onto a per-stage spec
// (optimizations apply to the stages the paper applies them to: local to S1
// and S2, registers to S1, vectors to all compute loops).
func FromVariant(v variant.Options) Spec {
	return Spec{
		S1Local:    v.Local,
		S2Local:    v.Local,
		S1Register: v.Register,
		Vector:     v.Vector,
		Fused:      v.Fused,
	}
}

// Baseline returns the SAC'15 flat-kernel spec.
func Baseline() Spec { return Spec{Flat: true} }

// Name renders the spec the way the figures label it.
func (s Spec) Name() string {
	if s.Flat {
		return "flat baseline"
	}
	v := variant.Options{Local: s.S1Local || s.S2Local, Register: s.S1Register && !s.Fused,
		Vector: s.Vector, Fused: s.Fused}
	n := v.String()
	if s.S3Gauss {
		n += " (gauss S3)"
	}
	return n
}
