package kernels

import (
	"fmt"
	"sync"

	"repro/internal/device"
	"repro/internal/host"
	"repro/internal/linalg"
	"repro/internal/sim"
	"repro/internal/sparse"
)

// Config describes one simulated ALS run.
type Config struct {
	Device *device.Device
	Spec   Spec

	K          int     // latent factor (paper default 10)
	Lambda     float32 // regularization (paper default 0.1)
	Iterations int     // paper times 5 iterations
	Seed       int64

	// Groups×GroupSize is the launch grid; the paper's experiments use
	// 8192×32 (Sec. V). Zero values take those defaults.
	Groups    int
	GroupSize int
}

func (c *Config) setDefaults() error {
	if c.Device == nil {
		return fmt.Errorf("kernels: nil device")
	}
	if c.K <= 0 {
		c.K = 10
	}
	if c.Iterations <= 0 {
		c.Iterations = 5
	}
	if c.Groups <= 0 {
		c.Groups = 8192
	}
	if c.GroupSize <= 0 {
		c.GroupSize = 32
	}
	return nil
}

// Result is a simulated training run: real factors plus the simulated
// execution-time report.
type Result struct {
	X, Y *linalg.Dense
	// Report accumulates all update launches across iterations.
	Report sim.Report
	// TransferSeconds is the one-time PCIe placement cost (GPU/MIC).
	TransferSeconds float64
}

// Seconds is the simulated end-to-end factorization time: kernel makespan
// plus the initial transfer.
func (r *Result) Seconds() float64 { return r.Report.Seconds + r.TransferSeconds }

// Train runs the full ALS loop (Algorithm 1) on the simulated device. The
// arithmetic is real — the returned factors match internal/host's within
// float tolerance — while the Report carries the modeled device time.
func Train(mx *sparse.Matrix, cfg Config) (*Result, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	if mx.NNZ() == 0 {
		return nil, fmt.Errorf("kernels: empty rating matrix")
	}
	m, n := mx.Rows(), mx.Cols()
	x := linalg.NewDense(m, cfg.K)
	y := host.InitialY(n, cfg.K, cfg.Seed)
	rt := &sparse.CSR{NumRows: n, NumCols: m, RowPtr: mx.C.ColPtr, ColIdx: mx.C.RowIdx, Val: mx.C.Val}

	res := &Result{X: x, Y: y}
	// One-time placement of R (CSR+CSC), X and Y on the accelerator.
	bytes := int64(mx.NNZ())*16 + int64(m+n+2)*8 + int64((m+n)*cfg.K)*4
	res.TransferSeconds = cfg.Device.TransferSeconds(bytes)

	for it := 0; it < cfg.Iterations; it++ {
		rep, err := UpdateSide(mx.R, y, x, cfg)
		if err != nil {
			return nil, fmt.Errorf("kernels: iteration %d update X: %w", it+1, err)
		}
		res.Report.Add(rep)
		rep, err = UpdateSide(rt, x, y, cfg)
		if err != nil {
			return nil, fmt.Errorf("kernels: iteration %d update Y: %w", it+1, err)
		}
		res.Report.Add(rep)
	}
	return res, nil
}

// UpdateSide recomputes out (m×k) from fixed (n×k) over the rows of r on
// the simulated device, returning the launch report.
func UpdateSide(r *sparse.CSR, fixed, out *linalg.Dense, cfg Config) (*sim.Report, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	if cfg.Spec.Flat {
		return flatUpdate(r, fixed, out, cfg)
	}
	return batchedUpdate(r, fixed, out, cfg)
}

// scratch is the per-group workspace; pooled because sim.Run creates group
// contexts concurrently. gsum backs the baseline scatter kernel's private
// buffer; packed and ldl back the fused/packed S1+S3 path.
type scratch struct {
	smat   *linalg.Dense
	svec   []float32
	gsum   []float32
	packed []float32
	ldl    []float64
}

var scratchPool = sync.Pool{}

func getScratch(k int) *scratch {
	if v := scratchPool.Get(); v != nil {
		s := v.(*scratch)
		if s.smat.Rows == k {
			return s
		}
	}
	return &scratch{smat: linalg.NewDense(k, k), svec: make([]float32, k),
		gsum: make([]float32, k*k), packed: make([]float32, linalg.PackedLen(k)),
		ldl: make([]float64, k)}
}

func putScratch(s *scratch) { scratchPool.Put(s) }

// solveRow performs the real Algorithm 2 body for one row. The Gram kernel
// matches the spec so the arithmetic truly differs per variant (all
// variants are equivalent within float tolerance; the tests verify it).
func solveRow(r *sparse.CSR, fixed, out *linalg.Dense, u int, cfg Config, s *scratch) error {
	cols, vals := r.Row(u)
	xu := out.Row(u)
	if len(cols) == 0 {
		for i := range xu {
			xu[i] = 0
		}
		return nil
	}
	if cfg.Spec.Fused {
		// Fused S1+S2 into packed storage, packed Cholesky S3.
		fused := linalg.GramRHSFused
		if cfg.Spec.Vector {
			fused = linalg.GramRHSFusedUnrolled
		}
		fused(fixed.Data, cfg.K, cols, vals, s.packed, s.svec)
		linalg.AddDiagPacked(s.packed, cfg.K, cfg.Lambda)
		if err := linalg.CholeskySolvePacked(s.packed, cfg.K, s.svec); err != nil {
			fused(fixed.Data, cfg.K, cols, vals, s.packed, s.svec)
			linalg.AddDiagPacked(s.packed, cfg.K, cfg.Lambda)
			if err := linalg.LDLSolvePacked(s.packed, cfg.K, s.svec, s.ldl); err != nil {
				return fmt.Errorf("row %d: %w", u, err)
			}
		}
		copy(xu, s.svec)
		return nil
	}
	gram := func(y []float32, k int, cols []int32, smat []float32) {
		linalg.GramScatter(y, k, cols, smat, s.gsum)
	}
	switch {
	case cfg.Spec.Vector:
		gram = linalg.GramUnrolled
	case cfg.Spec.S1Register:
		gram = linalg.GramRegister
	}
	gram(fixed.Data, cfg.K, cols, s.smat.Data)
	s.smat.AddDiag(cfg.Lambda)
	if cfg.Spec.Vector {
		linalg.GatherGaxpyUnrolled(fixed.Data, cfg.K, cols, vals, s.svec)
	} else {
		linalg.GatherGaxpy(fixed.Data, cfg.K, cols, vals, s.svec)
	}
	if err := linalg.CholeskySolve(s.smat, s.svec); err != nil {
		gram(fixed.Data, cfg.K, cols, s.smat.Data)
		s.smat.AddDiag(cfg.Lambda)
		if err := linalg.LDLSolve(s.smat, s.svec); err != nil {
			return fmt.Errorf("row %d: %w", u, err)
		}
	}
	copy(xu, s.svec)
	return nil
}

// batchedUpdate launches the thread-batched kernel: one work-group per row
// task, grid-stride over rows (Sec. III-B).
func batchedUpdate(r *sparse.CSR, fixed, out *linalg.Dense, cfg Config) (*sim.Report, error) {
	e := newEnv(cfg.Device, cfg.K, cfg.GroupSize, fixed.Rows)
	var firstErr error
	var errMu sync.Mutex
	kernel := func(task int, acc *sim.Acc) {
		s := getScratch(cfg.K)
		defer putScratch(s)
		if err := solveRow(r, fixed, out, task, cfg, s); err != nil {
			errMu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			errMu.Unlock()
			return
		}
		omega := r.RowNNZ(task)
		if omega == 0 {
			return
		}
		chargeStages(acc,
			e.batchedS1(cfg.Spec, omega),
			e.batchedS2(cfg.Spec, omega),
			e.s3(cfg.Spec))
	}
	rep := sim.Run(sim.Launch{
		Device: cfg.Device, Groups: cfg.Groups, GroupSize: cfg.GroupSize, Tasks: r.NumRows,
	}, kernel)
	return rep, firstErr
}

// flatUpdate launches the SAC'15 baseline: one work-item per row. On the
// GPU, rows are bundled into lock-step warps (a bundle's cost follows its
// longest row); on CPU/MIC the bundles model OpenMP threads processing row
// ranges independently.
func flatUpdate(r *sparse.CSR, fixed, out *linalg.Dense, cfg Config) (*sim.Report, error) {
	bundle := cfg.Device.WarpSize
	tasks := (r.NumRows + bundle - 1) / bundle
	e := newEnv(cfg.Device, cfg.K, bundle, fixed.Rows)
	var firstErr error
	var errMu sync.Mutex
	kernel := func(task int, acc *sim.Acc) {
		s := getScratch(cfg.K)
		defer putScratch(s)
		lo := task * bundle
		hi := lo + bundle
		if hi > r.NumRows {
			hi = r.NumRows
		}
		omegas := make([]int, 0, bundle)
		maxOmega := 0
		for u := lo; u < hi; u++ {
			if err := solveRow(r, fixed, out, u, cfg, s); err != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				errMu.Unlock()
				return
			}
			omega := r.RowNNZ(u)
			if omega == 0 {
				continue
			}
			omegas = append(omegas, omega)
			if omega > maxOmega {
				maxOmega = omega
			}
		}
		if len(omegas) == 0 {
			return
		}
		s1, s2, s3 := e.flatWarp(omegas, maxOmega)
		chargeStages(acc, s1, s2, s3)
	}
	rep := sim.Run(sim.Launch{
		Device: cfg.Device, Groups: cfg.Groups, GroupSize: bundle, Tasks: tasks,
	}, kernel)
	return rep, firstErr
}
