package linalg

// This file implements the fused S1+S2 kernel: one sweep over the gathered
// rows of the fixed factor accumulates the packed Gram matrix
//
//	P = Σ_{z ∈ Ω(u)} y_c(z) · y_c(z)ᵀ   (upper triangle, packed)
//
// and the right-hand side
//
//	svec = Σ_{z ∈ Ω(u)} r(z) · y_c(z)
//
// together. The separate S1/S2 kernels (syrk.go) walk the same gathered
// rows twice — the paper's Algorithm 2 performs the smat and svec loops
// back-to-back — so fusing halves the gather traffic, and the packed
// accumulator removes the k×k mirror copy. Accumulation order over the
// nonzeros matches GramRegister/GatherGaxpy element-for-element, so the
// plain fused form is bit-identical to running the separate kernels.

// GramRHSFused computes the packed Gram matrix and the right-hand side in
// a single pass over the gathered rows. packed (PackedLen(k) floats, upper
// triangle) and svec (k floats) are fully overwritten.
func GramRHSFused(y []float32, k int, cols []int32, vals []float32, packed, svec []float32) {
	packed = packed[:PackedLen(k)]
	for i := range packed {
		packed[i] = 0
	}
	svec = svec[:k]
	for i := range svec {
		svec[i] = 0
	}
	for z, c := range cols {
		row := y[int(c)*k : int(c)*k+k]
		r := vals[z]
		off := 0
		for i := 0; i < k; i++ {
			yi := row[i]
			svec[i] += r * yi
			out := packed[off : off+k-i]
			src := row[i:]
			for j := range out {
				out[j] += yi * src[j]
			}
			off += k - i
		}
	}
}

// GramRHSFusedUnrolled is the optimized form: nonzeros are processed four
// at a time (register blocking over the gather loop), so each packed
// accumulator strip is loaded and stored once per four rank-1 updates, and
// the contiguous inner loops expose independent multiply-adds the way the
// paper's explicit vectorization does. Blocking changes the float32
// summation order (the block's terms are grouped before accumulation),
// which stays within the variant-equivalence tolerance.
func GramRHSFusedUnrolled(y []float32, k int, cols []int32, vals []float32, packed, svec []float32) {
	packed = packed[:PackedLen(k)]
	for i := range packed {
		packed[i] = 0
	}
	svec = svec[:k]
	for i := range svec {
		svec[i] = 0
	}
	z := 0
	for ; z+4 <= len(cols); z += 4 {
		r1 := y[int(cols[z])*k : int(cols[z])*k+k]
		r2 := y[int(cols[z+1])*k : int(cols[z+1])*k+k]
		r3 := y[int(cols[z+2])*k : int(cols[z+2])*k+k]
		r4 := y[int(cols[z+3])*k : int(cols[z+3])*k+k]
		v1, v2, v3, v4 := vals[z], vals[z+1], vals[z+2], vals[z+3]
		off := 0
		for i := 0; i < k; i++ {
			y1, y2, y3, y4 := r1[i], r2[i], r3[i], r4[i]
			svec[i] += v1*y1 + v2*y2 + v3*y3 + v4*y4
			out := packed[off : off+k-i]
			a := r1[i:][:len(out)]
			b := r2[i:][:len(out)]
			c := r3[i:][:len(out)]
			d := r4[i:][:len(out)]
			for j := range out {
				out[j] += y1*a[j] + y2*b[j] + y3*c[j] + y4*d[j]
			}
			off += k - i
		}
	}
	for ; z+2 <= len(cols); z += 2 {
		r1 := y[int(cols[z])*k : int(cols[z])*k+k]
		r2 := y[int(cols[z+1])*k : int(cols[z+1])*k+k]
		v1, v2 := vals[z], vals[z+1]
		off := 0
		for i := 0; i < k; i++ {
			y1, y2 := r1[i], r2[i]
			svec[i] += v1*y1 + v2*y2
			out := packed[off : off+k-i]
			a := r1[i:][:len(out)]
			b := r2[i:][:len(out)]
			for j := range out {
				out[j] += y1*a[j] + y2*b[j]
			}
			off += k - i
		}
	}
	for ; z < len(cols); z++ {
		row := y[int(cols[z])*k : int(cols[z])*k+k]
		r := vals[z]
		off := 0
		for i := 0; i < k; i++ {
			yi := row[i]
			svec[i] += r * yi
			out := packed[off : off+k-i]
			src := row[i:][:len(out)]
			for j := range out {
				out[j] += yi * src[j]
			}
			off += k - i
		}
	}
}
