package linalg

import (
	"math"
	"math/bits"
)

// IEEE 754 binary16 ("half") conversion primitives. Go has no native
// float16, so the quantized serving path stores halves as raw uint16 bits
// and converts at the edges: F32ToF16 on encode (once per swap) and
// F16ToF32 on every scan element. Both are exact where exactness is
// possible — every binary16 value is representable in float32, and the
// narrowing direction rounds to nearest, ties to even, exactly as a
// hardware VCVTPS2PH would.

// F32ToF16 converts a float32 to binary16 bits with round-to-nearest-even.
// Values above the binary16 range overflow to ±Inf, tiny values pass
// through the binary16 subnormal range and then flush to signed zero, and
// NaN becomes a quiet NaN.
func F32ToF16(x float32) uint16 {
	b := math.Float32bits(x)
	sign := uint16(b>>16) & 0x8000
	exp := int32(b>>23) & 0xff
	man := b & 0x007fffff
	switch {
	case exp == 0xff: // Inf or NaN
		if man != 0 {
			return sign | 0x7e00
		}
		return sign | 0x7c00
	case exp > 142: // >= 2^16: past the largest finite half (65504)
		return sign | 0x7c00
	case exp >= 113: // normal binary16
		h := sign | uint16(exp-112)<<10 | uint16(man>>13)
		rem := man & 0x1fff
		if rem > 0x1000 || (rem == 0x1000 && man>>13&1 == 1) {
			h++ // a mantissa carry rolls into the exponent field correctly
		}
		return h
	case exp >= 103: // binary16 subnormal: value = mantissa * 2^-24
		man |= 0x00800000
		shift := uint(126 - exp)
		h := sign | uint16(man>>shift)
		rem := man & (1<<shift - 1)
		half := uint32(1) << (shift - 1)
		if rem > half || (rem == half && man>>shift&1 == 1) {
			h++
		}
		return h
	default: // below the smallest subnormal half: signed zero
		return sign
	}
}

// F16ToF32 converts binary16 bits to the float32 with the same value
// (exact: binary16 is a subset of float32).
func F16ToF32(h uint16) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h>>10) & 0x1f
	man := uint32(h & 0x3ff)
	switch {
	case exp == 0x1f: // Inf or NaN
		if man != 0 {
			return math.Float32frombits(sign | 0x7fc00000 | man<<13)
		}
		return math.Float32frombits(sign | 0x7f800000)
	case exp != 0: // normal
		return math.Float32frombits(sign | (exp+112)<<23 | man<<13)
	case man != 0: // subnormal: man * 2^-24, normalized for float32
		p := uint32(31 - bits.LeadingZeros32(man)) // man ∈ [1, 0x3ff]
		r := man &^ (1 << p)
		return math.Float32frombits(sign | (p+103)<<23 | r<<(23-p))
	default:
		return math.Float32frombits(sign) // signed zero
	}
}
