package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func isFinite(v []float32) bool {
	for _, f := range v {
		if f64 := float64(f); math.IsNaN(f64) || math.IsInf(f64, 0) {
			return false
		}
	}
	return true
}

// TestSolversOnDegenerateSystems holds both factorizations to the guard
// layer's contract on pathological normal equations: Cholesky must reject
// them with ErrNotSPD (never return garbage), and LDLSolve must either
// produce a fully finite solution or fail with the same typed error —
// silent NaN is the one outcome the recovery ladder cannot handle.
func TestSolversOnDegenerateSystems(t *testing.T) {
	cases := []struct {
		name  string
		build func() *Dense
	}{
		{"zero matrix", func() *Dense { return NewDense(4, 4) }},
		{"zero gram diagonal", func() *Dense {
			// A healthy Gram with row/col 2 zeroed — exactly what the chaos
			// injector's CorruptGram produces for a cold user.
			a := gramOf(4, 8, rand.New(rand.NewSource(1)))
			for j := 0; j < 4; j++ {
				a.Set(2, j, 0)
				a.Set(j, 2, 0)
			}
			return a
		}},
		{"negative diagonal", func() *Dense {
			a := NewDense(3, 3)
			a.Set(0, 0, 1)
			a.Set(1, 1, -2)
			a.Set(2, 2, 1)
			return a
		}},
		{"rank-1 outer product", func() *Dense {
			// v·vᵀ has rank 1: the second pivot is exactly zero.
			v := []float32{1, 2, 3}
			a := NewDense(3, 3)
			for i := range v {
				for j := range v {
					a.Set(i, j, v[i]*v[j])
				}
			}
			return a
		}},
		{"nan entry", func() *Dense {
			a := NewDense(3, 3)
			a.Set(0, 0, 2)
			a.Set(1, 1, float32(math.NaN()))
			a.Set(2, 2, 2)
			return a
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := []float32{1, 1, 1, 1}[:tc.build().Rows]
			if err := Cholesky(tc.build()); !errors.Is(err, ErrNotSPD) {
				t.Fatalf("Cholesky error = %v, want ErrNotSPD", err)
			}
			x := append([]float32(nil), b...)
			switch err := LDLSolve(tc.build(), x); {
			case err == nil:
				if !isFinite(x) {
					t.Fatalf("LDLSolve returned no error but a non-finite solution: %v", x)
				}
			case !errors.Is(err, ErrNotSPD):
				t.Fatalf("LDLSolve error = %v, want ErrNotSPD", err)
			}
		})
	}
}

// gramOf builds G = YᵀY from omega random k-vectors: PSD by construction,
// and rank-deficient (hence singular) whenever omega < k.
func gramOf(k, omega int, rng *rand.Rand) *Dense {
	y := make([][]float32, omega)
	for t := range y {
		y[t] = make([]float32, k)
		for i := range y[t] {
			y[t][i] = float32(rng.NormFloat64())
		}
	}
	g := NewDense(k, k)
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			var s float64
			for t := 0; t < omega; t++ {
				s += float64(y[t][i]) * float64(y[t][j])
			}
			g.Set(i, j, float32(s))
		}
	}
	return g
}

// TestJitteredSolvesFinite is the property behind the recovery ladder's
// jitter rungs: G = YᵀY from omega < k ratings is singular and Cholesky
// rejects it, but G + εI is SPD for any ε > 0 and the jittered solve must
// succeed with a fully finite solution — for every k the ALS kernels use
// and across many random rank-deficient systems.
func TestJitteredSolvesFinite(t *testing.T) {
	const trials = 25
	for _, k := range []int{8, 16, 32} {
		for _, jitter := range []float32{2e-6, 1e-5} { // the ladder's 2λ and 10λ rungs at the λ=0 floor
			rng := rand.New(rand.NewSource(int64(k)))
			for trial := 0; trial < trials; trial++ {
				omega := 1 + rng.Intn(k-1) // strictly fewer ratings than factors
				g := gramOf(k, omega, rng)
				b := make([]float32, k)
				for i := range b {
					b[i] = float32(rng.NormFloat64())
				}

				bare := append([]float32(nil), b...)
				if err := CholeskySolve(g.Clone(), bare); err == nil && !isFinite(bare) {
					t.Fatalf("k=%d omega=%d: bare solve of singular system returned non-finite x silently", k, omega)
				}

				jg := g.Clone()
				jg.AddDiag(jitter)
				x := append([]float32(nil), b...)
				if err := CholeskySolve(jg, x); err != nil {
					t.Fatalf("k=%d omega=%d jitter=%g: jittered solve failed: %v", k, omega, jitter, err)
				}
				if !isFinite(x) {
					t.Fatalf("k=%d omega=%d jitter=%g: jittered solve returned non-finite x", k, omega, jitter)
				}
			}
		}
	}
}
