package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func finiteSlice(x []float32) bool {
	for _, v := range x {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			return false
		}
	}
	return true
}

// Property (satellite): on random SPD systems of every tested k, CG run to
// 2k iterations (its exact-arithmetic termination bound is k; the slack
// absorbs float32 rounding of the matvec) matches the direct Cholesky solve
// within 1e-5. The systems are the class ALS produces: YᵀY + λI from a
// random slab, solved against a random right-hand side.
func TestCGMatchesCholeskyOnSPD(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, k := range []int{8, 16, 32} {
		for trial := 0; trial < 20; trial++ {
			a := randomSPD(rng, k, k+8, 0.5)
			b := make([]float32, k)
			for i := range b {
				b[i] = rng.Float32()*2 - 1
			}
			want := append([]float32(nil), b...)
			if err := CholeskySolve(a.Clone(), want); err != nil {
				t.Fatalf("k=%d trial %d: Cholesky: %v", k, trial, err)
			}
			sys := &CGSystem{G: a.Data, K: k}
			x := make([]float32, k)
			r, p, ap := make([]float32, k), make([]float32, k), make([]float32, k)
			if err := CGSolve(sys, b, x, 2*k, r, p, ap); err != nil {
				t.Fatalf("k=%d trial %d: CG: %v", k, trial, err)
			}
			for i := range x {
				if d := math.Abs(float64(x[i]) - float64(want[i])); d > 1e-5 {
					t.Fatalf("k=%d trial %d: component %d differs by %g (cg=%g chol=%g)",
						k, trial, i, d, x[i], want[i])
				}
			}
		}
	}
}

// The rank-1 (implicit-shaped) application path must agree with applying the
// explicitly assembled matrix.
func TestCGImplicitApplyMatchesAssembled(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const k, omega = 12, 9
	fixed := make([]float32, (omega+3)*k)
	for i := range fixed {
		fixed[i] = rng.Float32()*2 - 1
	}
	cols := make([]int32, omega)
	vals := make([]float32, omega)
	for z := range cols {
		cols[z] = int32(z + 2)
		vals[z] = rng.Float32() * 5
	}
	g := NewSharedGram(k)
	g.Compute(NewDenseFrom(omega+3, k, fixed))
	const alpha, lam = 3.5, 0.25

	// Assemble A = G + Σ α·r f fᵀ + λI densely.
	a := NewDense(k, k)
	copy(a.Data, g.Dense)
	for z, c := range cols {
		f := fixed[int(c)*k : int(c)*k+k]
		conf := float32(alpha) * vals[z]
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				a.Data[i*k+j] += conf * f[i] * f[j]
			}
		}
	}
	a.AddDiag(lam)

	sys := &CGSystem{G: g.Dense, K: k, Src: fixed, Cols: cols, Vals: vals, Alpha: alpha, Lam: lam}
	p := make([]float32, k)
	for i := range p {
		p[i] = rng.Float32()*2 - 1
	}
	got := make([]float32, k)
	sys.Apply(p, got)
	for i := 0; i < k; i++ {
		want := Dot(a.Row(i), p)
		if d := math.Abs(float64(got[i]) - want); d > 1e-4*(1+math.Abs(want)) {
			t.Fatalf("component %d: implicit apply %g vs assembled %g", i, got[i], want)
		}
	}
}

// Property (satellite): degenerate systems produce a typed breakdown error
// — never NaN factors. The zero matrix and an inconsistent rank-1 system
// both have zero curvature along the first search direction.
func TestCGDegenerateBreaksDownFinite(t *testing.T) {
	const k = 8
	b := make([]float32, k)
	b[1] = 1

	cases := []struct {
		name string
		sys  *CGSystem
	}{
		{"zero matrix", &CGSystem{G: make([]float32, k*k), K: k}},
		{"inconsistent rank-1", func() *CGSystem {
			f := make([]float32, k)
			f[0] = 1 // A = e0·e0ᵀ, b = e1 ∉ range(A)
			return &CGSystem{K: k, Src: f, Cols: []int32{0}}
		}()},
	}
	for _, tc := range cases {
		x := make([]float32, k)
		r, p, ap := make([]float32, k), make([]float32, k), make([]float32, k)
		err := CGSolve(tc.sys, b, x, 3*k, r, p, ap)
		if err == nil {
			t.Fatalf("%s: expected breakdown, got nil", tc.name)
		}
		if !errors.Is(err, ErrCGBreakdown) {
			t.Fatalf("%s: error not typed ErrCGBreakdown: %v", tc.name, err)
		}
		if !finiteSlice(x) {
			t.Fatalf("%s: x not finite after breakdown: %v", tc.name, x)
		}
	}
}

// A consistent singular system (b in the range of A) is solved by CG
// without tripping the breakdown guard — the residual hits the floor first.
func TestCGConsistentSingular(t *testing.T) {
	const k = 6
	f := make([]float32, k)
	for i := range f {
		f[i] = float32(i + 1)
	}
	sys := &CGSystem{K: k, Src: f, Cols: []int32{0}} // A = f·fᵀ, singular
	b := make([]float32, k)
	ff := Dot(f, f)
	for i := range b {
		b[i] = float32(2 * float64(f[i])) // b = 2f = A·x with x = 2f/(fᵀf)
	}
	x := make([]float32, k)
	r, p, ap := make([]float32, k), make([]float32, k), make([]float32, k)
	if err := CGSolve(sys, b, x, k, r, p, ap); err != nil {
		t.Fatalf("consistent singular system: %v", err)
	}
	for i := range x {
		want := 2 * float64(f[i]) / ff
		if d := math.Abs(float64(x[i]) - want); d > 1e-5 {
			t.Fatalf("component %d: %g want %g", i, x[i], want)
		}
	}
}

// Warm starts from the exact solution must be a no-op (the residual floor),
// the property that makes CG cheap on converged late iterations.
func TestCGWarmStartNoop(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const k = 16
	a := randomSPD(rng, k, k+4, 1)
	want := make([]float32, k)
	for i := range want {
		want[i] = rng.Float32()
	}
	b := make([]float32, k)
	sys := &CGSystem{G: a.Data, K: k}
	sys.Apply(want, b)
	x := append([]float32(nil), want...)
	// Solve A·x = A·want starting at want with a single allowed iteration:
	// the residual is rounding-level, so x must stay put.
	r, p, ap := make([]float32, k), make([]float32, k), make([]float32, k)
	if err := CGSolve(sys, b, x, 1, r, p, ap); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if d := math.Abs(float64(x[i]) - float64(want[i])); d > 1e-4 {
			t.Fatalf("warm start drifted: component %d by %g", i, d)
		}
	}
}
