package linalg

// This file implements the implicit-feedback (Hu/Koren/Volinsky) counterpart
// of the fused S1+S2 kernel. The per-row normal matrix of implicit ALS is
//
//	smat = FᵀF + Σ_{z ∈ Ω(u)} α·r(z) · f_z f_zᵀ + λI
//	svec = Σ_{z ∈ Ω(u)} (1 + α·r(z)) · f_z
//
// where FᵀF is shared by every row of a half iteration (the Gram trick: the
// dense sum over all items collapses to one precomputed matrix) and each row
// adds only its |Ω| confidence-weighted rank-1 corrections. SharedGram holds
// the precompute; ConfGramRHSFused/Unrolled are the per-row sweeps, shaped
// exactly like fused.go's explicit kernels so they slot into the same packed
// Cholesky S3 and the same worker-pool scheduling.
//
// Bit-identity contract (pinned by the solvers equivalence suite): the
// reference solver in internal/solvers seeds a dense float32 smat from the
// float64 Gram and accumulates corrections row-major, then factors with the
// dense Cholesky, which reads the LOWER triangle — entry (i,j), i>j, holds
// base + Σ_z fl(fl(conf·f_z[i])·f_z[j]). The packed Cholesky reads the UPPER
// triangle, so packed slot (a,b), a≤b, must mirror dense (b,a): its addend
// is fl(fl(conf·f_z[b])·f_z[a]). ConfGramRHSFused therefore precomputes the
// scaled row cf[j] = conf·f_z[j] once per nonzero and accumulates cf[b]·f[a]
// — one addend per nonzero per slot, in nonzero order, the same rounding
// sequence as the reference's lower triangle. Packed and dense Cholesky are
// themselves bit-identical (packed.go), so the fast-path factors match the
// reference float-for-float.

// SharedGram is the per-half-iteration FᵀF precompute for implicit ALS.
// Accumulation is sequential float64 in row order — the same arithmetic as
// the reference solver — so the downstream float32 casts are reproducible
// regardless of worker count. The float64 triangle is kept private; the
// float32 projections are what the kernels consume.
type SharedGram struct {
	K int
	// Dense is the k×k float32 projection, both triangles (exactly
	// symmetric). The CG matvec and the iALS++ block residuals read it.
	Dense []float32
	// Packed is the upper-triangle packed projection the fused kernels seed
	// their accumulator from.
	Packed []float32
	f64    []float64
}

// NewSharedGram allocates the precompute buffers for dimensionality k.
func NewSharedGram(k int) *SharedGram {
	return &SharedGram{
		K:      k,
		Dense:  make([]float32, k*k),
		Packed: make([]float32, PackedLen(k)),
		f64:    make([]float64, k*k),
	}
}

// Compute refills the Gram projections from the fixed factor. One call per
// half iteration; cost k²·rows/2 float64 multiply-adds, independent of nnz.
func (g *SharedGram) Compute(fixed *Dense) {
	k := g.K
	for i := range g.f64 {
		g.f64[i] = 0
	}
	for row := 0; row < fixed.Rows; row++ {
		f := fixed.Row(row)
		for i := 0; i < k; i++ {
			fi := float64(f[i])
			gi := g.f64[i*k:]
			for j := i; j < k; j++ {
				gi[j] += fi * float64(f[j])
			}
		}
	}
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			g.f64[j*k+i] = g.f64[i*k+j]
		}
	}
	for i, v := range g.f64 {
		g.Dense[i] = float32(v)
	}
	idx := 0
	for i := 0; i < k; i++ {
		for j := i; j < k; j++ {
			g.Packed[idx] = float32(g.f64[i*k+j])
			idx++
		}
	}
}

// ConfGramRHSFused seeds the packed accumulator from the shared Gram base
// and sweeps the gathered rows once, accumulating the confidence-weighted
// corrections and the right-hand side together. cf is caller scratch of at
// least k floats (the per-nonzero scaled row); packed and svec are fully
// overwritten. Plain form: per-slot accumulation order matches the reference
// solver exactly (see the file comment), so the result is bit-identical.
func ConfGramRHSFused(src []float32, k int, cols []int32, vals []float32, alpha float32, base, packed, svec, cf []float32) {
	packed = packed[:PackedLen(k)]
	copy(packed, base[:PackedLen(k)])
	svec = svec[:k]
	for i := range svec {
		svec[i] = 0
	}
	cf = cf[:k]
	for z, c := range cols {
		f := src[int(c)*k : int(c)*k+k]
		conf := alpha * vals[z]
		w := 1 + conf
		for j := 0; j < k; j++ {
			cf[j] = conf * f[j]
		}
		off := 0
		for i := 0; i < k; i++ {
			fi := f[i]
			svec[i] += w * fi
			out := packed[off : off+k-i]
			c := cf[i:][:len(out)]
			for j := range out {
				out[j] += c[j] * fi
			}
			off += k - i
		}
	}
}

// ConfGramRHSFusedUnrolled is the vector-variant form: nonzeros are
// processed four at a time so each packed strip is loaded and stored once
// per four rank-1 corrections, exposing independent multiply-adds exactly
// like GramRHSFusedUnrolled. cf is caller scratch of at least 4k floats.
// Blocking groups the four terms before accumulating, which changes float32
// rounding within the variant-equivalence tolerance.
func ConfGramRHSFusedUnrolled(src []float32, k int, cols []int32, vals []float32, alpha float32, base, packed, svec, cf []float32) {
	packed = packed[:PackedLen(k)]
	copy(packed, base[:PackedLen(k)])
	svec = svec[:k]
	for i := range svec {
		svec[i] = 0
	}
	cf = cf[:4*k]
	z := 0
	for ; z+4 <= len(cols); z += 4 {
		f1 := src[int(cols[z])*k : int(cols[z])*k+k]
		f2 := src[int(cols[z+1])*k : int(cols[z+1])*k+k]
		f3 := src[int(cols[z+2])*k : int(cols[z+2])*k+k]
		f4 := src[int(cols[z+3])*k : int(cols[z+3])*k+k]
		c1 := alpha * vals[z]
		c2 := alpha * vals[z+1]
		c3 := alpha * vals[z+2]
		c4 := alpha * vals[z+3]
		w1, w2, w3, w4 := 1+c1, 1+c2, 1+c3, 1+c4
		cf1, cf2, cf3, cf4 := cf[:k], cf[k:2*k], cf[2*k:3*k], cf[3*k:4*k]
		for j := 0; j < k; j++ {
			cf1[j] = c1 * f1[j]
			cf2[j] = c2 * f2[j]
			cf3[j] = c3 * f3[j]
			cf4[j] = c4 * f4[j]
		}
		off := 0
		for i := 0; i < k; i++ {
			y1, y2, y3, y4 := f1[i], f2[i], f3[i], f4[i]
			svec[i] += w1*y1 + w2*y2 + w3*y3 + w4*y4
			out := packed[off : off+k-i]
			a := cf1[i:][:len(out)]
			b := cf2[i:][:len(out)]
			c := cf3[i:][:len(out)]
			d := cf4[i:][:len(out)]
			for j := range out {
				out[j] += a[j]*y1 + b[j]*y2 + c[j]*y3 + d[j]*y4
			}
			off += k - i
		}
	}
	for ; z < len(cols); z++ {
		f := src[int(cols[z])*k : int(cols[z])*k+k]
		conf := alpha * vals[z]
		w := 1 + conf
		cf1 := cf[:k]
		for j := 0; j < k; j++ {
			cf1[j] = conf * f[j]
		}
		off := 0
		for i := 0; i < k; i++ {
			fi := f[i]
			svec[i] += w * fi
			out := packed[off : off+k-i]
			c := cf1[i:][:len(out)]
			for j := range out {
				out[j] += c[j] * fi
			}
			off += k - i
		}
	}
}

// ConfRHS accumulates only the implicit right-hand side
// svec = Σ (1+α·r)·f_z — the CG and iALS++ block paths need the RHS without
// ever forming the corrected Gram. svec is fully overwritten. The
// accumulation order matches ConfGramRHSFused's svec exactly.
func ConfRHS(src []float32, k int, cols []int32, vals []float32, alpha float32, svec []float32) {
	svec = svec[:k]
	for i := range svec {
		svec[i] = 0
	}
	for z, c := range cols {
		f := src[int(c)*k : int(c)*k+k]
		w := 1 + alpha*vals[z]
		for i := 0; i < k; i++ {
			svec[i] += w * f[i]
		}
	}
}
