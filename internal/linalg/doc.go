// Package linalg provides the small dense linear-algebra kernels ALS needs
// per row/column update: building the k×k normal-equation matrix
// smat = YᵀY + λI restricted to a row's rated items (a SYRK-style rank-Ω
// update), the k-vector svec = Yᵀ r_u (a gather-gaxpy), and solving the
// resulting symmetric positive-definite system with a Cholesky LLᵀ
// factorization plus two triangular solves — the paper's steps S1, S2, S3.
//
// Matrices here are dense, row-major float32 (matching the device kernels);
// the Cholesky path accumulates in float64 for stability at larger k.
// Where it matters for the host solver's performance, inner loops come in a
// scalar and an unrolled/vector-width-aware form (the paper's "using vector
// units" optimization mapped to Go).
package linalg
