package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomSPD builds YᵀY + λI from a random (omega×k) Y slab — exactly the
// matrix class ALS feeds to Cholesky.
func randomSPD(rng *rand.Rand, k, omega int, lambda float32) *Dense {
	y := make([]float32, omega*k)
	for i := range y {
		y[i] = rng.Float32()*2 - 1
	}
	cols := make([]int32, omega)
	for i := range cols {
		cols[i] = int32(i)
	}
	a := NewDense(k, k)
	GramRegister(y, k, cols, a.Data)
	a.AddDiag(lambda)
	return a
}

func TestCholeskyReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, k := range []int{1, 2, 3, 5, 10, 32, 64} {
		a := randomSPD(rng, k, k+5, 0.1)
		orig := a.Clone()
		if err := Cholesky(a); err != nil {
			t.Fatalf("k=%d: Cholesky: %v", k, err)
		}
		// Verify L·Lᵀ == original in the lower triangle (and by symmetry all).
		for i := 0; i < k; i++ {
			for j := 0; j <= i; j++ {
				var s float64
				for p := 0; p <= j; p++ {
					s += float64(a.At(i, p)) * float64(a.At(j, p))
				}
				want := float64(orig.At(i, j))
				if math.Abs(s-want) > 1e-3*(1+math.Abs(want)) {
					t.Fatalf("k=%d: (LLᵀ)[%d][%d] = %g, want %g", k, i, j, s, want)
				}
			}
		}
	}
}

func TestSolveCholeskyResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, k := range []int{1, 3, 10, 50} {
		a := randomSPD(rng, k, 2*k, 0.1)
		orig := a.Clone()
		b := make([]float32, k)
		for i := range b {
			b[i] = rng.Float32()*4 - 2
		}
		rhs := make([]float32, k)
		copy(rhs, b)
		if err := CholeskySolve(a, b); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		// Residual ‖A·x − rhs‖∞ should be tiny relative to ‖rhs‖.
		for i := 0; i < k; i++ {
			var s float64
			for j := 0; j < k; j++ {
				s += float64(orig.At(i, j)) * float64(b[j])
			}
			if math.Abs(s-float64(rhs[i])) > 1e-2 {
				t.Fatalf("k=%d: residual[%d] = %g", k, i, s-float64(rhs[i]))
			}
		}
	}
}

func TestCholeskyKnown2x2(t *testing.T) {
	// A = [[4,2],[2,3]] => L = [[2,0],[1,sqrt(2)]].
	a := NewDenseFrom(2, 2, []float32{4, 2, 2, 3})
	if err := Cholesky(a); err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(a.At(0, 0))-2) > 1e-6 {
		t.Errorf("L[0][0] = %g, want 2", a.At(0, 0))
	}
	if math.Abs(float64(a.At(1, 0))-1) > 1e-6 {
		t.Errorf("L[1][0] = %g, want 1", a.At(1, 0))
	}
	if math.Abs(float64(a.At(1, 1))-math.Sqrt2) > 1e-6 {
		t.Errorf("L[1][1] = %g, want sqrt(2)", a.At(1, 1))
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := NewDenseFrom(2, 2, []float32{1, 2, 2, 1}) // eigenvalues 3, -1
	err := Cholesky(a)
	if !errors.Is(err, ErrNotSPD) {
		t.Fatalf("err = %v, want ErrNotSPD", err)
	}
}

func TestCholeskyRejectsNonSquare(t *testing.T) {
	a := NewDense(2, 3)
	if err := Cholesky(a); err == nil {
		t.Fatal("accepted non-square matrix")
	}
}

func TestSolveCholeskyShapeErrors(t *testing.T) {
	a := NewDenseFrom(2, 2, []float32{4, 0, 0, 4})
	if err := Cholesky(a); err != nil {
		t.Fatal(err)
	}
	if err := SolveCholesky(a, make([]float32, 3)); err == nil {
		t.Fatal("accepted wrong-length rhs")
	}
}

func TestLDLSolveMatchesCholesky(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, k := range []int{1, 4, 12} {
		a := randomSPD(rng, k, k+3, 0.05)
		b := make([]float32, k)
		for i := range b {
			b[i] = rng.Float32()
		}
		a2 := a.Clone()
		b2 := make([]float32, k)
		copy(b2, b)
		if err := CholeskySolve(a, b); err != nil {
			t.Fatal(err)
		}
		if err := LDLSolve(a2, b2); err != nil {
			t.Fatal(err)
		}
		for i := range b {
			if math.Abs(float64(b[i])-float64(b2[i])) > 1e-3 {
				t.Fatalf("k=%d: x[%d]: Cholesky %g vs LDL %g", k, i, b[i], b2[i])
			}
		}
	}
}

func TestLDLSolveIndefinite(t *testing.T) {
	// LDL handles symmetric indefinite systems Cholesky rejects.
	a := NewDenseFrom(2, 2, []float32{1, 2, 2, 1})
	b := []float32{3, 3}
	if err := LDLSolve(a, b); err != nil {
		t.Fatal(err)
	}
	// Solution of [[1,2],[2,1]]x = [3,3] is x = [1,1].
	if math.Abs(float64(b[0])-1) > 1e-5 || math.Abs(float64(b[1])-1) > 1e-5 {
		t.Fatalf("x = %v, want [1 1]", b)
	}
}

// TestCholeskySolveProperty: for random SPD systems the solve recovers a
// planted solution. This is the quick-check form of the ALS S3 invariant.
func TestCholeskySolveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := rng.Intn(20) + 1
		a := randomSPD(rng, k, k+8, 0.5)
		// Plant x, compute b = A·x, then solve and compare.
		x := make([]float32, k)
		for i := range x {
			x[i] = rng.Float32()*2 - 1
		}
		b := make([]float32, k)
		for i := 0; i < k; i++ {
			var s float64
			for j := 0; j < k; j++ {
				s += float64(a.At(i, j)) * float64(x[j])
			}
			b[i] = float32(s)
		}
		if err := CholeskySolve(a, b); err != nil {
			return false
		}
		for i := range x {
			if math.Abs(float64(b[i])-float64(x[i])) > 5e-2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestConditionEstimate(t *testing.T) {
	a := NewDenseFrom(2, 2, []float32{100, 0, 0, 1})
	if err := Cholesky(a); err != nil {
		t.Fatal(err)
	}
	got := ConditionEstimate(a)
	if math.Abs(got-100) > 1e-3 {
		t.Fatalf("ConditionEstimate = %g, want 100", got)
	}
	id := NewDenseFrom(2, 2, []float32{1, 0, 0, 1})
	if err := Cholesky(id); err != nil {
		t.Fatal(err)
	}
	if got := ConditionEstimate(id); got != 1 {
		t.Fatalf("ConditionEstimate(I) = %g, want 1", got)
	}
}
