package linalg

import (
	"math"
	"testing"
)

// TestF16RoundTripExhaustive decodes every one of the 65536 half
// bit-patterns and re-encodes it; every non-NaN pattern must survive the
// round trip bit-exactly (binary16 is a subset of float32, and narrowing a
// value that is exactly representable must not move it).
func TestF16RoundTripExhaustive(t *testing.T) {
	for i := 0; i < 1<<16; i++ {
		h := uint16(i)
		f := F16ToF32(h)
		if h&0x7c00 == 0x7c00 && h&0x3ff != 0 { // NaN: payload is not preserved
			if !math.IsNaN(float64(f)) {
				t.Fatalf("F16ToF32(%#04x) = %v, want NaN", h, f)
			}
			continue
		}
		if got := F32ToF16(f); got != h {
			t.Fatalf("round trip %#04x -> %v -> %#04x", h, f, got)
		}
	}
}

func TestF16KnownValues(t *testing.T) {
	cases := []struct {
		f float32
		h uint16
	}{
		{0, 0x0000},
		{float32(math.Copysign(0, -1)), 0x8000},
		{1, 0x3c00},
		{-2, 0xc000},
		{65504, 0x7bff},                 // largest finite half
		{6.103515625e-05, 0x0400},       // smallest normal half (2^-14)
		{5.960464477539063e-08, 0x0001}, // smallest subnormal half (2^-24)
		{float32(math.Inf(1)), 0x7c00},  // +Inf
		{float32(math.Inf(-1)), 0xfc00}, // -Inf
		{65536, 0x7c00},                 // overflow to +Inf
		{1e-10, 0x0000},                 // underflow to zero
		{0.333251953125, 0x3555},        // 1/3 rounded to half precision
	}
	for _, c := range cases {
		if got := F32ToF16(c.f); got != c.h {
			t.Errorf("F32ToF16(%v) = %#04x, want %#04x", c.f, got, c.h)
		}
	}
	if got := F32ToF16(float32(math.NaN())); got&0x7c00 != 0x7c00 || got&0x3ff == 0 {
		t.Errorf("F32ToF16(NaN) = %#04x, not a half NaN", got)
	}
}

// TestF16RoundToNearestEven pins the tie-breaking behavior on exact
// midpoints between adjacent halves.
func TestF16RoundToNearestEven(t *testing.T) {
	cases := []struct {
		f    float32
		want uint16
	}{
		// 1 + 2^-11 is halfway between 1.0 (mantissa ...00) and 1+2^-10
		// (mantissa ...01): ties go to the even mantissa, so down to 1.0.
		{1 + 0x1p-11, 0x3c00},
		// 1 + 2^-10 + 2^-11 is halfway between mantissa ...01 and ...10:
		// ties to even rounds up.
		{1 + 0x1p-10 + 0x1p-11, 0x3c02},
		// Just above a midpoint always rounds up.
		{1 + 0x1p-11 + 0x1p-20, 0x3c01},
	}
	for _, c := range cases {
		if got := F32ToF16(c.f); got != c.want {
			t.Errorf("F32ToF16(%v) = %#04x, want %#04x", c.f, got, c.want)
		}
	}
}

// TestF16NarrowingError bounds the rounding error of the narrowing
// conversion: for finite values inside the half range the relative error
// is at most 2^-11 (half an ulp of the 10-bit mantissa).
func TestF16NarrowingError(t *testing.T) {
	vals := []float32{1e-4, 0.1, 0.5, 0.999, 1, 1.5, 3.14159, 100, 1000, 65000}
	for _, v := range vals {
		for _, s := range []float32{1, -1} {
			x := v * s
			back := F16ToF32(F32ToF16(x))
			if rel := math.Abs(float64(back-x)) / math.Abs(float64(x)); rel > 0x1p-11 {
				t.Errorf("F16 round trip of %v moved by rel %v > 2^-11", x, rel)
			}
		}
	}
}
