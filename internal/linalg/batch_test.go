package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// fillSPDBatch plants known solutions in every system of a batch and
// returns them.
func fillSPDBatch(t testing.TB, bs *BatchedSystems, rng *rand.Rand) [][]float32 {
	t.Helper()
	k := bs.K
	planted := make([][]float32, bs.Batch)
	for i := 0; i < bs.Batch; i++ {
		a, b := bs.System(i)
		spd := randomSPD(rng, k, k+6, 0.3)
		copy(a.Data, spd.Data)
		x := make([]float32, k)
		for j := range x {
			x[j] = rng.Float32()*2 - 1
		}
		planted[i] = x
		for r := 0; r < k; r++ {
			var s float64
			for c := 0; c < k; c++ {
				s += float64(a.At(r, c)) * float64(x[c])
			}
			b[r] = float32(s)
		}
	}
	return planted
}

func TestBatchedSolveAll(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	bs := NewBatchedSystems(10, 137)
	planted := fillSPDBatch(t, bs, rng)
	if err := bs.SolveAll(0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < bs.Batch; i++ {
		_, got := bs.System(i)
		for j := range got {
			if math.Abs(float64(got[j])-float64(planted[i][j])) > 5e-2 {
				t.Fatalf("system %d x[%d] = %g, want %g", i, j, got[j], planted[i][j])
			}
		}
	}
}

func TestBatchedWorkerInvariance(t *testing.T) {
	run := func(workers int) []float32 {
		rng := rand.New(rand.NewSource(2))
		bs := NewBatchedSystems(6, 64)
		fillSPDBatch(t, bs, rng)
		if err := bs.SolveAll(workers); err != nil {
			t.Fatal(err)
		}
		out := make([]float32, len(bs.Bs))
		copy(out, bs.Bs)
		return out
	}
	a, b := run(1), run(9)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("solutions differ across worker counts at %d", i)
		}
	}
}

func TestBatchedReportsFailingSystem(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	bs := NewBatchedSystems(4, 40)
	fillSPDBatch(t, bs, rng)
	// Corrupt system 25 to be indefinite.
	a, _ := bs.System(25)
	a.Zero()
	a.Set(0, 0, -1)
	err := bs.SolveAll(0)
	if err == nil {
		t.Fatal("batched solve accepted an indefinite system")
	}
}

func TestBatchedEmptyAndShape(t *testing.T) {
	bs := NewBatchedSystems(3, 0)
	if err := bs.SolveAll(4); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad shape")
		}
	}()
	NewBatchedSystems(0, 4)
}
