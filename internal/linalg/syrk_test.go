package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomFactor(rng *rand.Rand, n, k int) []float32 {
	y := make([]float32, n*k)
	for i := range y {
		y[i] = rng.Float32()*2 - 1
	}
	return y
}

func randomGather(rng *rand.Rand, n, omega int) ([]int32, []float32) {
	cols := make([]int32, omega)
	vals := make([]float32, omega)
	for i := range cols {
		cols[i] = int32(rng.Intn(n))
		vals[i] = float32(rng.Intn(5) + 1)
	}
	return cols, vals
}

// referenceGram is an intentionally naive float64 implementation the three
// production kernels are checked against.
func referenceGram(y []float32, k int, cols []int32) []float64 {
	out := make([]float64, k*k)
	for _, c := range cols {
		row := y[int(c)*k : int(c)*k+k]
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				out[i*k+j] += float64(row[i]) * float64(row[j])
			}
		}
	}
	return out
}

// TestGramVariantsAgree: the paper defines code variants as "functionally
// equivalent" implementations (Sec. III-D); the three host Gram kernels must
// produce the same matrix.
func TestGramVariantsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, k := range []int{1, 2, 5, 10, 16, 33} {
		for _, omega := range []int{0, 1, 7, 100} {
			y := randomFactor(rng, 50, k)
			cols, _ := randomGather(rng, 50, omega)
			ref := referenceGram(y, k, cols)
			scratch := make([]float32, k*k)
			impls := map[string]func([]float32, int, []int32, []float32){
				"scatter": func(y []float32, k int, cols []int32, smat []float32) {
					GramScatter(y, k, cols, smat, scratch)
				},
				"register": GramRegister,
				"unrolled": GramUnrolled,
			}
			for name, fn := range impls {
				smat := make([]float32, k*k)
				// Pre-poison to verify full overwrite.
				for i := range smat {
					smat[i] = float32(math.NaN())
				}
				fn(y, k, cols, smat)
				for i := 0; i < k*k; i++ {
					if math.Abs(float64(smat[i])-ref[i]) > 1e-2*(1+math.Abs(ref[i])) {
						t.Fatalf("k=%d omega=%d %s: smat[%d] = %g, want %g", k, omega, name, i, smat[i], ref[i])
					}
				}
				// Symmetry check.
				for i := 0; i < k; i++ {
					for j := 0; j < k; j++ {
						if smat[i*k+j] != smat[j*k+i] {
							t.Fatalf("%s: asymmetric at (%d,%d)", name, i, j)
						}
					}
				}
			}
		}
	}
}

func TestGatherGaxpyVariantsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, k := range []int{1, 3, 10, 17} {
		y := randomFactor(rng, 40, k)
		cols, vals := randomGather(rng, 40, 25)
		ref := make([]float64, k)
		for z, c := range cols {
			row := y[int(c)*k : int(c)*k+k]
			for i := range row {
				ref[i] += float64(vals[z]) * float64(row[i])
			}
		}
		for name, fn := range map[string]func([]float32, int, []int32, []float32, []float32){
			"plain":    GatherGaxpy,
			"unrolled": GatherGaxpyUnrolled,
		} {
			svec := make([]float32, k)
			for i := range svec {
				svec[i] = 42 // must be overwritten
			}
			fn(y, k, cols, vals, svec)
			for i := range svec {
				if math.Abs(float64(svec[i])-ref[i]) > 1e-3*(1+math.Abs(ref[i])) {
					t.Fatalf("k=%d %s: svec[%d] = %g, want %g", k, name, i, svec[i], ref[i])
				}
			}
		}
	}
}

// TestGramQuick: property form over random shapes.
func TestGramQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := rng.Intn(12) + 1
		n := rng.Intn(30) + 1
		omega := rng.Intn(40)
		y := randomFactor(rng, n, k)
		cols, _ := randomGather(rng, n, omega)
		a := make([]float32, k*k)
		b := make([]float32, k*k)
		GramScatter(y, k, cols, a, make([]float32, k*k))
		GramUnrolled(y, k, cols, b)
		for i := range a {
			if math.Abs(float64(a[i])-float64(b[i])) > 1e-2*(1+math.Abs(float64(a[i]))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDotAxpyScale(t *testing.T) {
	a := []float32{1, 2, 3}
	b := []float32{4, 5, 6}
	if got := Dot(a, b); got != 32 {
		t.Fatalf("Dot = %g, want 32", got)
	}
	y := []float32{1, 1, 1}
	Axpy(2, a, y)
	want := []float32{3, 5, 7}
	for i := range y {
		if y[i] != want[i] {
			t.Fatalf("Axpy: y = %v", y)
		}
	}
	Scale(0.5, y)
	want = []float32{1.5, 2.5, 3.5}
	for i := range y {
		if y[i] != want[i] {
			t.Fatalf("Scale: y = %v", y)
		}
	}
	if got := Nrm2Sq([]float32{3, 4}); got != 25 {
		t.Fatalf("Nrm2Sq = %g, want 25", got)
	}
}

func TestDenseBasics(t *testing.T) {
	d := NewDense(2, 3)
	d.Set(1, 2, 5)
	if d.At(1, 2) != 5 {
		t.Fatal("Set/At broken")
	}
	if len(d.Row(1)) != 3 || d.Row(1)[2] != 5 {
		t.Fatal("Row view broken")
	}
	tr := d.Transpose()
	if tr.Rows != 3 || tr.Cols != 2 || tr.At(2, 1) != 5 {
		t.Fatal("Transpose broken")
	}
	cl := d.Clone()
	cl.Set(0, 0, 9)
	if d.At(0, 0) == 9 {
		t.Fatal("Clone shares storage")
	}
	d.Fill(2)
	if d.At(0, 0) != 2 {
		t.Fatal("Fill broken")
	}
	d.Zero()
	if d.FrobeniusNorm() != 0 {
		t.Fatal("Zero broken")
	}
}

func TestSymmetrizeAddDiag(t *testing.T) {
	d := NewDenseFrom(2, 2, []float32{1, 7, 0, 2})
	d.Symmetrize()
	if d.At(1, 0) != 7 {
		t.Fatalf("Symmetrize: At(1,0) = %g, want 7", d.At(1, 0))
	}
	d.AddDiag(0.5)
	if d.At(0, 0) != 1.5 || d.At(1, 1) != 2.5 {
		t.Fatal("AddDiag broken")
	}
}

func TestMaxAbsDiff(t *testing.T) {
	a := NewDenseFrom(1, 3, []float32{1, 2, 3})
	b := NewDenseFrom(1, 3, []float32{1, 2.5, 2})
	if got := MaxAbsDiff(a, b); got != 1 {
		t.Fatalf("MaxAbsDiff = %g, want 1", got)
	}
}

func TestPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("NewDense negative", func() { NewDense(-1, 2) })
	mustPanic("NewDenseFrom wrong len", func() { NewDenseFrom(2, 2, make([]float32, 3)) })
	mustPanic("Symmetrize non-square", func() { NewDense(2, 3).Symmetrize() })
	mustPanic("AddDiag non-square", func() { NewDense(2, 3).AddDiag(1) })
	mustPanic("MaxAbsDiff shape", func() { MaxAbsDiff(NewDense(1, 2), NewDense(2, 1)) })
}

func TestDenseString(t *testing.T) {
	small := NewDense(2, 2)
	if small.String() == "" {
		t.Fatal("empty String for small matrix")
	}
	big := NewDense(20, 20)
	if got := big.String(); got != "Dense 20x20" {
		t.Fatalf("big String = %q", got)
	}
}
