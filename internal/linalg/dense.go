package linalg

import (
	"fmt"
	"math"
	"strings"
)

// Dense is a row-major dense matrix of float32. ALS uses it both for the
// factor matrices X (m×k) and Y (n×k) and for the per-update k×k normal
// matrix smat.
type Dense struct {
	Rows, Cols int
	Data       []float32 // len == Rows*Cols, row-major
}

// NewDense allocates a zeroed Rows×Cols matrix.
func NewDense(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: negative dimensions %dx%d", rows, cols))
	}
	return &Dense{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// NewDenseFrom wraps existing row-major data without copying.
func NewDenseFrom(rows, cols int, data []float32) *Dense {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("linalg: data length %d != %d*%d", len(data), rows, cols))
	}
	return &Dense{Rows: rows, Cols: cols, Data: data}
}

// At returns element (i, j).
func (d *Dense) At(i, j int) float32 { return d.Data[i*d.Cols+j] }

// Set assigns element (i, j).
func (d *Dense) Set(i, j int, v float32) { d.Data[i*d.Cols+j] = v }

// Row returns row i as a sub-slice backed by the matrix storage.
func (d *Dense) Row(i int) []float32 { return d.Data[i*d.Cols : (i+1)*d.Cols] }

// Clone returns a deep copy.
func (d *Dense) Clone() *Dense {
	out := NewDense(d.Rows, d.Cols)
	copy(out.Data, d.Data)
	return out
}

// Zero clears all elements in place.
func (d *Dense) Zero() {
	for i := range d.Data {
		d.Data[i] = 0
	}
}

// Fill sets all elements to v.
func (d *Dense) Fill(v float32) {
	for i := range d.Data {
		d.Data[i] = v
	}
}

// Transpose returns a new matrix with rows and columns swapped.
func (d *Dense) Transpose() *Dense {
	out := NewDense(d.Cols, d.Rows)
	for i := 0; i < d.Rows; i++ {
		row := d.Row(i)
		for j, v := range row {
			out.Data[j*d.Rows+i] = v
		}
	}
	return out
}

// MaxAbsDiff returns the largest absolute element-wise difference between
// two same-shaped matrices; it is the metric the variant-equivalence tests
// use to show the 8 code variants are functionally identical.
func MaxAbsDiff(a, b *Dense) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("linalg: shape mismatch %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	var max float64
	for i := range a.Data {
		d := math.Abs(float64(a.Data[i]) - float64(b.Data[i]))
		if d > max {
			max = d
		}
	}
	return max
}

// FrobeniusNorm returns sqrt(sum of squares) of all elements, accumulated in
// float64.
func (d *Dense) FrobeniusNorm() float64 {
	var s float64
	for _, v := range d.Data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// String renders small matrices for debugging; large ones are abbreviated.
func (d *Dense) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Dense %dx%d", d.Rows, d.Cols)
	if d.Rows > 8 || d.Cols > 8 {
		return b.String()
	}
	for i := 0; i < d.Rows; i++ {
		b.WriteString("\n  ")
		for j := 0; j < d.Cols; j++ {
			fmt.Fprintf(&b, "%9.4f", d.At(i, j))
		}
	}
	return b.String()
}

// Symmetrize copies the strictly-upper triangle onto the lower triangle of a
// square matrix in place, as the register-optimized YᵀY kernel does when it
// writes smat[(j,i)] and smat[(i,j)] from one accumulator (paper Fig. 3).
func (d *Dense) Symmetrize() {
	if d.Rows != d.Cols {
		panic("linalg: Symmetrize requires a square matrix")
	}
	for i := 0; i < d.Rows; i++ {
		for j := i + 1; j < d.Cols; j++ {
			d.Set(j, i, d.At(i, j))
		}
	}
}

// AddDiag adds lambda to every diagonal element of a square matrix — the
// regularization term λI of smat = YᵀY + λI.
func (d *Dense) AddDiag(lambda float32) {
	if d.Rows != d.Cols {
		panic("linalg: AddDiag requires a square matrix")
	}
	for i := 0; i < d.Rows; i++ {
		d.Data[i*d.Cols+i] += lambda
	}
}
