package linalg

// This file implements the paper's S1 kernel on the host: the Gram matrix of
// the factor rows selected by one sparse row,
//
//	smat = Σ_{z ∈ Ω(u)} y_c(z) · y_c(z)ᵀ   (+ λI added by the caller)
//
// It is a SYRK-style rank-|Ω| symmetric update over gathered rows of Y.
// Three forms mirror the paper's code variants:
//
//   - GramScatter: the baseline's structure (Fig. 3a) — a k×k private
//     accumulator filled pair-by-pair, iterating the nonzeros innermost.
//   - GramRegister: the register-restructured form (Fig. 3b) — the nonzero
//     loop outermost, a k-sized accumulator strip per output row.
//   - GramUnrolled: GramRegister with the inner pair loop unrolled by 4,
//     the host analogue of the paper's explicit vectorization.

// GramScatter computes smat += Σ y_c·y_cᵀ with the baseline loop nest:
// for each (i,j) output pair, scan all nonzeros. cols lists the selected row
// indices of y (an n×k row-major factor matrix); smat is k×k row-major and
// is fully overwritten (both triangles). sum is the caller-provided k×k
// scratch standing in for the baseline's oversized private buffer — with
// large k this is exactly the structure that spills registers on the
// device; on the host the solver passes its per-worker scratch so the row
// loop stays allocation-free.
func GramScatter(y []float32, k int, cols []int32, smat, sum []float32) {
	sum = sum[:k*k]
	for i := 0; i < k; i++ {
		for j := i; j < k; j++ {
			var s float32
			for _, c := range cols {
				d := int(c) * k
				s += y[d+i] * y[d+j]
			}
			sum[i*k+j] = s
		}
	}
	for i := 0; i < k; i++ {
		for j := i; j < k; j++ {
			v := sum[i*k+j]
			smat[i*k+j] = v
			smat[j*k+i] = v
		}
	}
}

// GramRegister computes the same Gram matrix with the restructured loop of
// Fig. 3b: the gather loop over nonzeros is outermost so each selected row
// of Y is loaded once and contributes a rank-1 update; the live accumulator
// working set per output row is k values, not k×k.
func GramRegister(y []float32, k int, cols []int32, smat []float32) {
	for i := range smat[:k*k] {
		smat[i] = 0
	}
	for _, c := range cols {
		row := y[int(c)*k : int(c)*k+k]
		for i := 0; i < k; i++ {
			yi := row[i]
			out := smat[i*k:]
			for j := i; j < k; j++ {
				out[j] += yi * row[j]
			}
		}
	}
	// Mirror the upper triangle.
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			smat[j*k+i] = smat[i*k+j]
		}
	}
}

// GramUnrolled is GramRegister with the j-loop unrolled by 4, exposing
// independent multiply-adds the way the paper's float16 OpenCL vectors do.
func GramUnrolled(y []float32, k int, cols []int32, smat []float32) {
	for i := range smat[:k*k] {
		smat[i] = 0
	}
	for _, c := range cols {
		row := y[int(c)*k : int(c)*k+k]
		for i := 0; i < k; i++ {
			yi := row[i]
			out := smat[i*k:]
			j := i
			for ; j+4 <= k; j += 4 {
				out[j] += yi * row[j]
				out[j+1] += yi * row[j+1]
				out[j+2] += yi * row[j+2]
				out[j+3] += yi * row[j+3]
			}
			for ; j < k; j++ {
				out[j] += yi * row[j]
			}
		}
	}
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			smat[j*k+i] = smat[i*k+j]
		}
	}
}

// GatherGaxpy computes the paper's S2 kernel on the host:
//
//	svec = Σ_{z ∈ Ω(u)} r(z) · y_c(z)
//
// i.e. the k-vector Yᵀ·r_u restricted to the row's nonzeros. svec is fully
// overwritten.
func GatherGaxpy(y []float32, k int, cols []int32, vals []float32, svec []float32) {
	for i := range svec[:k] {
		svec[i] = 0
	}
	for z, c := range cols {
		r := vals[z]
		row := y[int(c)*k : int(c)*k+k]
		for i, v := range row {
			svec[i] += r * v
		}
	}
}

// GatherGaxpyUnrolled is GatherGaxpy with the k-loop unrolled by 4.
func GatherGaxpyUnrolled(y []float32, k int, cols []int32, vals []float32, svec []float32) {
	for i := range svec[:k] {
		svec[i] = 0
	}
	for z, c := range cols {
		r := vals[z]
		row := y[int(c)*k : int(c)*k+k]
		i := 0
		for ; i+4 <= k; i += 4 {
			svec[i] += r * row[i]
			svec[i+1] += r * row[i+1]
			svec[i+2] += r * row[i+2]
			svec[i+3] += r * row[i+3]
		}
		for ; i < k; i++ {
			svec[i] += r * row[i]
		}
	}
}

// Dot returns the float64-accumulated inner product of two float32 vectors;
// it is the prediction primitive r̂_ui = x_u·y_i.
func Dot(a, b []float32) float64 {
	var s float64
	for i := range a {
		s += float64(a[i]) * float64(b[i])
	}
	return s
}

// Axpy computes y += alpha*x element-wise.
func Axpy(alpha float32, x, y []float32) {
	for i := range x {
		y[i] += alpha * x[i]
	}
}

// Scale multiplies every element of x by alpha in place.
func Scale(alpha float32, x []float32) {
	for i := range x {
		x[i] *= alpha
	}
}

// Nrm2Sq returns the squared Euclidean norm accumulated in float64, used by
// the regularized-loss invariant tests (λ(|x_u|² + |y_i|²)).
func Nrm2Sq(x []float32) float64 {
	var s float64
	for _, v := range x {
		s += float64(v) * float64(v)
	}
	return s
}
