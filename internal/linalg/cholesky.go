package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotSPD reports that Cholesky factorization hit a non-positive pivot:
// the matrix is not (numerically) symmetric positive definite. For ALS this
// cannot happen when λ > 0, since smat = YᵀY + λI ⪰ λI ≻ 0, but the solver
// still guards against it (e.g. λ = 0 with an empty row).
var ErrNotSPD = errors.New("linalg: matrix not positive definite")

// Cholesky factorizes the symmetric positive-definite k×k matrix A in place
// into A = L·Lᵀ, storing L in the lower triangle (the upper triangle is left
// untouched). This is the paper's S3 step ("LLᵀ ← smat ... with Cholesky").
// Accumulation is in float64: for k up to a few hundred, float32 dot products
// lose enough precision to destabilize the subsequent triangular solves.
func Cholesky(a *Dense) error {
	if a.Rows != a.Cols {
		return fmt.Errorf("linalg: Cholesky needs square matrix, got %dx%d", a.Rows, a.Cols)
	}
	k := a.Rows
	for j := 0; j < k; j++ {
		// Diagonal: L[j][j] = sqrt(A[j][j] - sum_{p<j} L[j][p]^2).
		d := float64(a.At(j, j))
		row := a.Row(j)
		for p := 0; p < j; p++ {
			d -= float64(row[p]) * float64(row[p])
		}
		if d <= 0 || math.IsNaN(d) {
			return fmt.Errorf("%w: pivot %d = %g", ErrNotSPD, j, d)
		}
		ljj := math.Sqrt(d)
		a.Set(j, j, float32(ljj))
		// Column below the diagonal.
		for i := j + 1; i < k; i++ {
			s := float64(a.At(i, j))
			ri := a.Row(i)
			for p := 0; p < j; p++ {
				s -= float64(ri[p]) * float64(row[p])
			}
			a.Set(i, j, float32(s/ljj))
		}
	}
	return nil
}

// SolveCholesky solves A·x = b given the in-place Cholesky factor produced
// by Cholesky (L in the lower triangle of a). b is overwritten with x.
// It performs the forward solve L·y = b then the backward solve Lᵀ·x = y.
func SolveCholesky(a *Dense, b []float32) error {
	k := a.Rows
	if a.Cols != k || len(b) != k {
		return fmt.Errorf("linalg: SolveCholesky shape mismatch: A %dx%d, b %d", a.Rows, a.Cols, len(b))
	}
	// Forward: L y = b.
	for i := 0; i < k; i++ {
		s := float64(b[i])
		row := a.Row(i)
		for p := 0; p < i; p++ {
			s -= float64(row[p]) * float64(b[p])
		}
		b[i] = float32(s / float64(row[i]))
	}
	// Backward: Lᵀ x = y. Lᵀ[i][j] = L[j][i].
	for i := k - 1; i >= 0; i-- {
		s := float64(b[i])
		for p := i + 1; p < k; p++ {
			s -= float64(a.At(p, i)) * float64(b[p])
		}
		b[i] = float32(s / float64(a.At(i, i)))
	}
	return nil
}

// CholeskySolve is the fused convenience path used by the ALS inner loop:
// it factorizes a copy-free in-place view of smat and solves for x in one
// call. smat is destroyed (its lower triangle becomes L); b becomes x.
func CholeskySolve(smat *Dense, b []float32) error {
	if err := Cholesky(smat); err != nil {
		return err
	}
	return SolveCholesky(smat, b)
}

// LDLSolve solves A·x = b via an LDLᵀ factorization without square roots.
// It tolerates semi-definite matrices better than plain Cholesky and is the
// fallback the solver uses when λ = 0 produces a borderline pivot. A is
// destroyed; b is overwritten with x.
func LDLSolve(a *Dense, b []float32) error {
	k := a.Rows
	if a.Cols != k || len(b) != k {
		return fmt.Errorf("linalg: LDLSolve shape mismatch: A %dx%d, b %d", a.Rows, a.Cols, len(b))
	}
	d := make([]float64, k)
	// Factor: A = L D Lᵀ with unit lower-triangular L stored below diag.
	for j := 0; j < k; j++ {
		dj := float64(a.At(j, j))
		row := a.Row(j)
		for p := 0; p < j; p++ {
			dj -= float64(row[p]) * float64(row[p]) * d[p]
		}
		if math.Abs(dj) < 1e-30 || math.IsNaN(dj) {
			return fmt.Errorf("%w: LDL pivot %d = %g", ErrNotSPD, j, dj)
		}
		d[j] = dj
		for i := j + 1; i < k; i++ {
			s := float64(a.At(i, j))
			ri := a.Row(i)
			for p := 0; p < j; p++ {
				s -= float64(ri[p]) * float64(row[p]) * d[p]
			}
			a.Set(i, j, float32(s/dj))
		}
	}
	// Forward: L z = b.
	for i := 0; i < k; i++ {
		s := float64(b[i])
		row := a.Row(i)
		for p := 0; p < i; p++ {
			s -= float64(row[p]) * float64(b[p])
		}
		b[i] = float32(s)
	}
	// Diagonal: D w = z.
	for i := 0; i < k; i++ {
		b[i] = float32(float64(b[i]) / d[i])
	}
	// Backward: Lᵀ x = w.
	for i := k - 1; i >= 0; i-- {
		s := float64(b[i])
		for p := i + 1; p < k; p++ {
			s -= float64(a.At(p, i)) * float64(b[p])
		}
		b[i] = float32(s)
	}
	return nil
}

// ConditionEstimate returns a cheap lower-bound estimate of the 1-norm
// condition number of an SPD matrix from its Cholesky factor: the squared
// ratio of the largest to smallest diagonal of L. Used by diagnostics to
// flag nearly-singular normal equations (tiny λ, cold users).
func ConditionEstimate(l *Dense) float64 {
	var min, max float64 = math.Inf(1), 0
	for i := 0; i < l.Rows; i++ {
		d := math.Abs(float64(l.At(i, i)))
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	if min == 0 {
		return math.Inf(1)
	}
	r := max / min
	return r * r
}
