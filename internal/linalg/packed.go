package linalg

import (
	"fmt"
	"math"
)

// This file implements packed symmetric storage for the per-row normal
// matrix smat = YᵀY|Ω + λI. The matrix is symmetric, so only the upper
// triangle is stored, row-major:
//
//	P[off(i) + (j-i)] = A[i][j]   for j >= i,  off(i) = i*(2k-i+1)/2
//
// k*(k+1)/2 floats instead of k*k. This removes the mirror copy the dense
// Gram kernels make after accumulating the upper triangle (Fig. 3's smat is
// only ever used symmetrically) and halves the S3 working set: the packed
// Cholesky factors in place over the same triangle. The arithmetic — loop
// order and float64 accumulation — matches the dense Cholesky/LDLᵀ in
// cholesky.go exactly, so packed and dense solves agree bit-for-bit on the
// same input (packed_test.go asserts it).

// PackedLen returns the storage size of a packed symmetric k×k matrix:
// k*(k+1)/2.
func PackedLen(k int) int { return k * (k + 1) / 2 }

// PackedOff returns the offset of the first (diagonal) element of row i in
// the packed upper-triangular layout.
func PackedOff(k, i int) int { return i * (2*k - i + 1) / 2 }

// AddDiagPacked adds lambda to every diagonal element of a packed k×k
// symmetric matrix — the λI regularization on packed storage.
func AddDiagPacked(p []float32, k int, lambda float32) {
	d := 0
	for i := 0; i < k; i++ {
		p[d] += lambda
		d += k - i
	}
}

// ZeroDiagPacked zeroes every diagonal element of a packed k×k symmetric
// matrix, making it exactly singular — the guard chaos harness uses it to
// force ErrNotSPD out of the packed Cholesky.
func ZeroDiagPacked(p []float32, k int) {
	d := 0
	for i := 0; i < k; i++ {
		p[d] = 0
		d += k - i
	}
}

// PackedToDense expands a packed upper-triangular matrix into a full dense
// symmetric matrix (both triangles). Used by tests and diagnostics.
func PackedToDense(p []float32, k int) *Dense {
	a := NewDense(k, k)
	idx := 0
	for i := 0; i < k; i++ {
		for j := i; j < k; j++ {
			a.Set(i, j, p[idx])
			a.Set(j, i, p[idx])
			idx++
		}
	}
	return a
}

// DenseToPacked compresses the upper triangle of a square dense matrix into
// packed storage. p must have PackedLen(k) capacity; it is returned sliced.
func DenseToPacked(a *Dense, p []float32) []float32 {
	k := a.Rows
	p = p[:PackedLen(k)]
	idx := 0
	for i := 0; i < k; i++ {
		row := a.Row(i)
		for j := i; j < k; j++ {
			p[idx] = row[j]
			idx++
		}
	}
	return p
}

// CholeskyPacked factorizes a packed symmetric positive-definite matrix in
// place into A = UᵀU with U upper-triangular in the same packed layout
// (U = Lᵀ of the dense form, so the pivots and off-diagonal values are
// identical to Cholesky's). Accumulation is in float64, same as the dense
// path.
func CholeskyPacked(p []float32, k int) error {
	for j := 0; j < k; j++ {
		oj := PackedOff(k, j)
		// Pivot: U[j][j] = sqrt(A[j][j] - Σ_{q<j} U[q][j]²).
		d := float64(p[oj])
		off := j // P index of U[q][j] for q=0: row 0 column j.
		for q := 0; q < j; q++ {
			v := float64(p[off])
			d -= v * v
			off += k - q - 1 // step to U[q+1][j]
		}
		if d <= 0 || math.IsNaN(d) {
			return fmt.Errorf("%w: pivot %d = %g", ErrNotSPD, j, d)
		}
		ujj := math.Sqrt(d)
		p[oj] = float32(ujj)
		// Rest of row j: U[j][i] = (A[j][i] - Σ_{q<j} U[q][j]·U[q][i]) / U[j][j]
		// for i > j. The row is contiguous in packed storage.
		for i := j + 1; i < k; i++ {
			s := float64(p[oj+i-j])
			offJ, offI := j, i
			for q := 0; q < j; q++ {
				s -= float64(p[offJ]) * float64(p[offI])
				step := k - q - 1
				offJ += step
				offI += step
			}
			p[oj+i-j] = float32(s / ujj)
		}
	}
	return nil
}

// SolveCholeskyPacked solves A·x = b given the packed factor produced by
// CholeskyPacked (A = UᵀU). b is overwritten with x: forward solve
// Uᵀy = b, then backward solve Ux = y.
func SolveCholeskyPacked(p []float32, k int, b []float32) {
	// Forward: Uᵀ is lower-triangular with (Uᵀ)[i][q] = U[q][i].
	for i := 0; i < k; i++ {
		s := float64(b[i])
		off := i
		for q := 0; q < i; q++ {
			s -= float64(p[off]) * float64(b[q])
			off += k - q - 1
		}
		b[i] = float32(s / float64(p[off]))
	}
	// Backward: U x = y; row i of U is contiguous.
	for i := k - 1; i >= 0; i-- {
		oi := PackedOff(k, i)
		s := float64(b[i])
		for q := i + 1; q < k; q++ {
			s -= float64(p[oi+q-i]) * float64(b[q])
		}
		b[i] = float32(s / float64(p[oi]))
	}
}

// CholeskySolvePacked is the fused S3 path on packed storage: factor in
// place and solve. p is destroyed (becomes U); b becomes x.
func CholeskySolvePacked(p []float32, k int, b []float32) error {
	if err := CholeskyPacked(p, k); err != nil {
		return err
	}
	SolveCholeskyPacked(p, k, b)
	return nil
}

// LDLSolvePacked solves A·x = b on packed storage via a square-root-free
// LDLᵀ factorization, the fallback for borderline systems (λ = 0). d is a
// caller-provided float64 scratch of length ≥ k so the hot path stays
// allocation-free; A is destroyed (unit U off-diagonal, D implicit in d);
// b is overwritten with x.
func LDLSolvePacked(p []float32, k int, b []float32, d []float64) error {
	d = d[:k]
	// Factor: A = Uᵀ D U with unit upper-triangular U (dense LDLSolve's L is
	// Uᵀ, so pivots match the dense path exactly).
	for j := 0; j < k; j++ {
		oj := PackedOff(k, j)
		dj := float64(p[oj])
		off := j
		for q := 0; q < j; q++ {
			v := float64(p[off])
			dj -= v * v * d[q]
			off += k - q - 1
		}
		if math.Abs(dj) < 1e-30 || math.IsNaN(dj) {
			return fmt.Errorf("%w: LDL pivot %d = %g", ErrNotSPD, j, dj)
		}
		d[j] = dj
		for i := j + 1; i < k; i++ {
			s := float64(p[oj+i-j])
			offJ, offI := j, i
			for q := 0; q < j; q++ {
				s -= float64(p[offJ]) * float64(p[offI]) * d[q]
				step := k - q - 1
				offJ += step
				offI += step
			}
			p[oj+i-j] = float32(s / dj)
		}
	}
	// Forward: Uᵀ z = b (unit diagonal).
	for i := 0; i < k; i++ {
		s := float64(b[i])
		off := i
		for q := 0; q < i; q++ {
			s -= float64(p[off]) * float64(b[q])
			off += k - q - 1
		}
		b[i] = float32(s)
	}
	// Diagonal: D w = z.
	for i := 0; i < k; i++ {
		b[i] = float32(float64(b[i]) / d[i])
	}
	// Backward: U x = w (unit diagonal).
	for i := k - 1; i >= 0; i-- {
		oi := PackedOff(k, i)
		s := float64(b[i])
		for q := i + 1; q < k; q++ {
			s -= float64(p[oi+q-i]) * float64(b[q])
		}
		b[i] = float32(s)
	}
	return nil
}
