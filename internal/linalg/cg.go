package linalg

import (
	"errors"
	"fmt"
	"math"
)

// This file implements the conjugate-gradient row solver: the alternative S3
// the rusket exemplar ships as cg_iters=3. Instead of assembling the k×k
// normal matrix (|Ω|·k² work for the implicit corrections) and factoring it
// (k³/6), CG only ever applies it — and the application can stay implicit:
//
//	A·p = G·p + Σ_z w_z · f_z (f_zᵀ p) + λ·p
//
// costs k² + |Ω|·k per iteration, so a handful of iterations beats the
// direct solve whenever |Ω|·k² dominates, i.e. for large k. Warm-started
// from the previous iteration's factors, 2–3 iterations track the direct
// solution closely (the equivalence suite pins the tolerance).

// ErrCGBreakdown reports that conjugate gradient hit a non-positive or
// non-finite curvature pᵀAp — the system is not (numerically) positive
// definite, CG's requirement. The caller falls back to assembling the full
// system and climbing the direct-solver recovery ladder.
var ErrCGBreakdown = errors.New("linalg: conjugate gradient breakdown")

// cgResidualFloor stops iterating once the squared residual is exactly
// negligible — the warm start already solved the system (cold rows with
// no observations, or a converged run's late iterations).
const cgResidualFloor = 1e-30

// CGSystem describes the row normal matrix A without materializing it:
// an optional shared dense base G (the implicit mode's FᵀF), the gathered
// factor rows as rank-1 terms, and the ridge λ. With Vals nil the rank-1
// weights are 1 (explicit ALS: A = Σ f_z f_zᵀ + λI); with Vals set they are
// the implicit confidences α·r(z). With Cols nil only G and λ remain — the
// dense form the property tests exercise against Cholesky.
type CGSystem struct {
	G     []float32 // optional k×k row-major symmetric base; nil = absent
	K     int
	Src   []float32 // factor storage; row c is Src[c*k : c*k+k]
	Cols  []int32   // gathered row ids; nil = no rank-1 terms
	Vals  []float32 // per-nonzero ratings; nil = unit weights
	Alpha float32   // confidence scale: weight_z = Alpha·Vals[z]
	Lam   float32   // diagonal ridge λ
}

// Apply computes out = A·p. Dot products accumulate in float64 (matching
// the direct solvers' accumulation discipline); the rank-1 scatter back to
// out stays float32. Sequential and deterministic — CG results are worker-
// count invariant by construction.
func (s *CGSystem) Apply(p, out []float32) {
	k := s.K
	p = p[:k]
	out = out[:k]
	for i := 0; i < k; i++ {
		acc := float64(s.Lam) * float64(p[i])
		if s.G != nil {
			row := s.G[i*k : i*k+k]
			for j := 0; j < k; j++ {
				acc += float64(row[j]) * float64(p[j])
			}
		}
		out[i] = float32(acc)
	}
	for z, c := range s.Cols {
		f := s.Src[int(c)*k : int(c)*k+k]
		var d float64
		for i := 0; i < k; i++ {
			d += float64(f[i]) * float64(p[i])
		}
		w := 1.0
		if s.Vals != nil {
			w = float64(s.Alpha) * float64(s.Vals[z])
		}
		wd := float32(w * d)
		for i := 0; i < k; i++ {
			out[i] += wd * f[i]
		}
	}
}

// CGSolve runs at most iters conjugate-gradient steps on A·x = b, updating
// x in place from its warm-start value. r, p, ap are caller scratch of at
// least k floats each, so a warmed worker solves without allocating. On
// breakdown (non-SPD curvature or a non-finite residual) x holds the last
// finite iterate and a typed ErrCGBreakdown is returned; CG never emits
// NaN — the guard ladder handles the row from the assembled system instead.
func CGSolve(sys *CGSystem, b, x []float32, iters int, r, p, ap []float32) error {
	k := sys.K
	b, x = b[:k], x[:k]
	r, p, ap = r[:k], p[:k], ap[:k]
	sys.Apply(x, ap)
	for i := range r {
		r[i] = b[i] - ap[i]
	}
	copy(p, r)
	rs := Dot(r, r)
	if math.IsNaN(rs) || math.IsInf(rs, 0) {
		return fmt.Errorf("%w: non-finite initial residual", ErrCGBreakdown)
	}
	for it := 0; it < iters; it++ {
		if rs <= cgResidualFloor {
			return nil
		}
		sys.Apply(p, ap)
		pap := Dot(p, ap)
		if pap <= 0 || math.IsNaN(pap) || math.IsInf(pap, 0) {
			return fmt.Errorf("%w: curvature pᵀAp = %g at iteration %d", ErrCGBreakdown, pap, it)
		}
		alpha := float32(rs / pap)
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
		}
		rsNew := Dot(r, r)
		if math.IsNaN(rsNew) || math.IsInf(rsNew, 0) {
			return fmt.Errorf("%w: non-finite residual at iteration %d", ErrCGBreakdown, it)
		}
		beta := float32(rsNew / rs)
		rs = rsNew
		for i := range p {
			p[i] = r[i] + beta*p[i]
		}
	}
	return nil
}
