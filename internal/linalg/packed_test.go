package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPackedLayout(t *testing.T) {
	for _, k := range []int{1, 2, 5, 10} {
		if got := PackedLen(k); got != k*(k+1)/2 {
			t.Fatalf("PackedLen(%d) = %d", k, got)
		}
		// Offsets must tile the packed array exactly: row i holds k-i entries.
		idx := 0
		for i := 0; i < k; i++ {
			if off := PackedOff(k, i); off != idx {
				t.Fatalf("k=%d: PackedOff(%d) = %d, want %d", k, i, off, idx)
			}
			idx += k - i
		}
		if idx != PackedLen(k) {
			t.Fatalf("k=%d: offsets cover %d entries, want %d", k, idx, PackedLen(k))
		}
	}
}

func TestPackedDenseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, k := range []int{1, 3, 10} {
		a := randomSPD(rng, k, k+4, 0.3)
		p := DenseToPacked(a, make([]float32, PackedLen(k)))
		back := PackedToDense(p, k)
		if d := MaxAbsDiff(a, back); d != 0 {
			t.Fatalf("k=%d: round trip differs by %g", k, d)
		}
	}
}

func TestAddDiagPacked(t *testing.T) {
	k := 4
	a := randomSPD(rand.New(rand.NewSource(2)), k, 6, 0)
	p := DenseToPacked(a, make([]float32, PackedLen(k)))
	AddDiagPacked(p, k, 0.5)
	a.AddDiag(0.5)
	if d := MaxAbsDiff(a, PackedToDense(p, k)); d != 0 {
		t.Fatalf("AddDiagPacked differs from dense AddDiag by %g", d)
	}
}

// TestPackedCholeskyMatchesDense is the packed-vs-dense S3 property test:
// on random SPD YᵀY+λI systems the packed factorization and solve must be
// bit-identical to the dense path (same loop order, same float64
// accumulation).
func TestPackedCholeskyMatchesDense(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := rng.Intn(16) + 1
		a := randomSPD(rng, k, k+5, 0.1)
		b := make([]float32, k)
		for i := range b {
			b[i] = rng.Float32()*4 - 2
		}
		p := DenseToPacked(a, make([]float32, PackedLen(k)))
		bp := make([]float32, k)
		copy(bp, b)
		errD := CholeskySolve(a, b)
		errP := CholeskySolvePacked(p, k, bp)
		if (errD == nil) != (errP == nil) {
			return false
		}
		if errD != nil {
			return true
		}
		for i := range b {
			if b[i] != bp[i] {
				return false
			}
		}
		// The factor itself must match too: packed row i == dense L column i.
		for i := 0; i < k; i++ {
			for j := i; j < k; j++ {
				if p[PackedOff(k, i)+j-i] != a.At(j, i) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestPackedLDLMatchesDense covers the λ=0 fallback path: the square-root-
// free packed LDLᵀ must agree bit-for-bit with the dense LDLSolve,
// including on the rank-deficient systems an empty-ish row with λ=0
// produces (both must reject with ErrNotSPD).
func TestPackedLDLMatchesDense(t *testing.T) {
	f := func(seed int64, degenerate bool) bool {
		rng := rand.New(rand.NewSource(seed))
		k := rng.Intn(12) + 1
		omega := k + 3
		if degenerate && k > 1 {
			omega = k - 1 // rank-deficient YᵀY with λ=0
		}
		a := randomSPD(rng, k, omega, 0)
		b := make([]float32, k)
		for i := range b {
			b[i] = rng.Float32()
		}
		p := DenseToPacked(a, make([]float32, PackedLen(k)))
		bp := make([]float32, k)
		copy(bp, b)
		errD := LDLSolve(a, b)
		errP := LDLSolvePacked(p, k, bp, make([]float64, k))
		if (errD == nil) != (errP == nil) {
			return false
		}
		if errD != nil {
			return errors.Is(errP, ErrNotSPD)
		}
		for i := range b {
			if b[i] != bp[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestPackedCholeskyRejectsIndefinite(t *testing.T) {
	a := NewDenseFrom(2, 2, []float32{1, 2, 2, 1}) // eigenvalues 3, -1
	p := DenseToPacked(a, make([]float32, PackedLen(2)))
	if err := CholeskyPacked(p, 2); !errors.Is(err, ErrNotSPD) {
		t.Fatalf("err = %v, want ErrNotSPD", err)
	}
}

// referenceRHS mirrors referenceGram for the S2 vector.
func referenceRHS(y []float32, k int, cols []int32, vals []float32) []float64 {
	out := make([]float64, k)
	for z, c := range cols {
		row := y[int(c)*k : int(c)*k+k]
		for i := range row {
			out[i] += float64(vals[z]) * float64(row[i])
		}
	}
	return out
}

// TestFusedMatchesSeparateKernels: the fused single-pass S1+S2 kernel must
// reproduce GramRegister + GatherGaxpy exactly (same accumulation order),
// and the pair-blocked unrolled form must agree within float tolerance.
func TestFusedMatchesSeparateKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, k := range []int{1, 2, 5, 10, 16, 33} {
		for _, omega := range []int{0, 1, 2, 7, 101} {
			y := randomFactor(rng, 60, k)
			cols, vals := randomGather(rng, 60, omega)
			smat := make([]float32, k*k)
			svec := make([]float32, k)
			GramRegister(y, k, cols, smat)
			GatherGaxpy(y, k, cols, vals, svec)

			packed := make([]float32, PackedLen(k))
			fsvec := make([]float32, k)
			for i := range packed {
				packed[i] = float32(math.NaN()) // must be overwritten
			}
			GramRHSFused(y, k, cols, vals, packed, fsvec)
			got := PackedToDense(packed, k)
			if d := MaxAbsDiff(NewDenseFrom(k, k, smat), got); d != 0 {
				t.Fatalf("k=%d omega=%d: fused Gram differs by %g", k, omega, d)
			}
			for i := range svec {
				if svec[i] != fsvec[i] {
					t.Fatalf("k=%d omega=%d: fused rhs[%d] = %g, want %g", k, omega, i, fsvec[i], svec[i])
				}
			}

			refG := referenceGram(y, k, cols)
			refR := referenceRHS(y, k, cols, vals)
			GramRHSFusedUnrolled(y, k, cols, vals, packed, fsvec)
			un := PackedToDense(packed, k)
			for i := 0; i < k; i++ {
				for j := 0; j < k; j++ {
					if math.Abs(float64(un.At(i, j))-refG[i*k+j]) > 1e-2*(1+math.Abs(refG[i*k+j])) {
						t.Fatalf("k=%d omega=%d: unrolled Gram (%d,%d) = %g, want %g",
							k, omega, i, j, un.At(i, j), refG[i*k+j])
					}
				}
			}
			for i := range fsvec {
				if math.Abs(float64(fsvec[i])-refR[i]) > 1e-3*(1+math.Abs(refR[i])) {
					t.Fatalf("k=%d omega=%d: unrolled rhs[%d] = %g, want %g", k, omega, i, fsvec[i], refR[i])
				}
			}
		}
	}
}

// TestFusedQuick: property form — the whole fused packed row update
// (fused Gram+RHS, packed Cholesky) equals the dense register path.
func TestFusedQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := rng.Intn(12) + 1
		n := rng.Intn(30) + 1
		omega := rng.Intn(40) + 1
		y := randomFactor(rng, n, k)
		cols, vals := randomGather(rng, n, omega)

		smat := NewDense(k, k)
		svec := make([]float32, k)
		GramRegister(y, k, cols, smat.Data)
		GatherGaxpy(y, k, cols, vals, svec)
		smat.AddDiag(0.1)
		if err := CholeskySolve(smat, svec); err != nil {
			return true // both paths reject identically (covered elsewhere)
		}

		packed := make([]float32, PackedLen(k))
		fsvec := make([]float32, k)
		GramRHSFused(y, k, cols, vals, packed, fsvec)
		AddDiagPacked(packed, k, 0.1)
		if err := CholeskySolvePacked(packed, k, fsvec); err != nil {
			return false
		}
		for i := range svec {
			if svec[i] != fsvec[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
