package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// referenceImplicitRow reproduces the reference solver's per-row arithmetic
// (internal/solvers implicit.go) float-for-float: dense float32 smat seeded
// from the sequential float64 Gram, corrections accumulated row-major, λI,
// dense Cholesky. Returns the corrected dense matrix (pre-factorization)
// and the solved factors.
func referenceImplicitRow(fixed *Dense, k int, cols []int32, vals []float32, alpha, lambda float32) (*Dense, []float32) {
	gram := make([]float64, k*k)
	for row := 0; row < fixed.Rows; row++ {
		f := fixed.Row(row)
		for i := 0; i < k; i++ {
			fi := float64(f[i])
			for j := i; j < k; j++ {
				gram[i*k+j] += fi * float64(f[j])
			}
		}
	}
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			gram[j*k+i] = gram[i*k+j]
		}
	}
	smat := NewDense(k, k)
	svec := make([]float32, k)
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			smat.Data[i*k+j] = float32(gram[i*k+j])
		}
	}
	for z, c := range cols {
		conf := alpha * vals[z]
		f := fixed.Row(int(c))
		for i := 0; i < k; i++ {
			ci := conf * f[i]
			row := smat.Data[i*k:]
			for j := 0; j < k; j++ {
				row[j] += ci * f[j]
			}
			svec[i] += (1 + conf) * f[i]
		}
	}
	smat.AddDiag(lambda)
	pre := smat.Clone()
	if err := CholeskySolve(smat, svec); err != nil {
		panic(err)
	}
	return pre, svec
}

func implicitFixture(rng *rand.Rand, n, k, omega int) (*Dense, []int32, []float32) {
	fixed := NewDense(n, k)
	for i := range fixed.Data {
		fixed.Data[i] = rng.Float32()*0.2 - 0.1
	}
	perm := rng.Perm(n)
	cols := make([]int32, omega)
	vals := make([]float32, omega)
	for z := 0; z < omega; z++ {
		cols[z] = int32(perm[z])
		vals[z] = float32(rng.Intn(5) + 1)
	}
	return fixed, cols, vals
}

// The packed confidence kernel must mirror the LOWER triangle of the
// reference's dense matrix — the triangle the dense Cholesky actually reads
// — exactly, and the packed solve must then reproduce the reference factors
// bit-for-bit. This is the kernel-level half of the fast-path equivalence
// contract.
func TestConfGramRHSFusedBitIdenticalToReference(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, tc := range []struct{ n, k, omega int }{
		{30, 8, 5}, {50, 10, 1}, {64, 16, 20}, {40, 13, 40},
	} {
		const alpha, lambda = 40, 0.1
		fixed, cols, vals := implicitFixture(rng, tc.n, tc.k, tc.omega)
		pre, want := referenceImplicitRow(fixed, tc.k, cols, vals, alpha, lambda)

		g := NewSharedGram(tc.k)
		g.Compute(fixed)
		packed := make([]float32, PackedLen(tc.k))
		svec := make([]float32, tc.k)
		cf := make([]float32, tc.k)
		ConfGramRHSFused(fixed.Data, tc.k, cols, vals, alpha, g.Packed, packed, svec, cf)
		AddDiagPacked(packed, tc.k, lambda)

		// Slot (a,b), a<=b of the packed matrix == dense (b,a).
		idx := 0
		for a := 0; a < tc.k; a++ {
			for b := a; b < tc.k; b++ {
				if packed[idx] != pre.At(b, a) {
					t.Fatalf("n=%d k=%d omega=%d: packed slot (%d,%d)=%v != dense lower (%d,%d)=%v",
						tc.n, tc.k, tc.omega, a, b, packed[idx], b, a, pre.At(b, a))
				}
				idx++
			}
		}
		if err := CholeskySolvePacked(packed, tc.k, svec); err != nil {
			t.Fatal(err)
		}
		for i := range svec {
			if svec[i] != want[i] {
				t.Fatalf("n=%d k=%d omega=%d: solution component %d: packed %v != reference %v",
					tc.n, tc.k, tc.omega, i, svec[i], want[i])
			}
		}
	}
}

// The unrolled form groups four corrections per accumulate; it must stay
// within the variant-equivalence tolerance of the plain kernel.
func TestConfGramRHSFusedUnrolledClose(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const n, k, omega = 80, 12, 31
	fixed, cols, vals := implicitFixture(rng, n, k, omega)
	g := NewSharedGram(k)
	g.Compute(fixed)

	plainP := make([]float32, PackedLen(k))
	plainS := make([]float32, k)
	cf := make([]float32, 4*k)
	ConfGramRHSFused(fixed.Data, k, cols, vals, 40, g.Packed, plainP, plainS, cf)

	unrP := make([]float32, PackedLen(k))
	unrS := make([]float32, k)
	ConfGramRHSFusedUnrolled(fixed.Data, k, cols, vals, 40, g.Packed, unrP, unrS, cf)

	for i := range plainP {
		if d := math.Abs(float64(plainP[i]) - float64(unrP[i])); d > 2e-3*(1+math.Abs(float64(plainP[i]))) {
			t.Fatalf("packed slot %d: plain %v vs unrolled %v", i, plainP[i], unrP[i])
		}
	}
	for i := range plainS {
		if d := math.Abs(float64(plainS[i]) - float64(unrS[i])); d > 2e-3*(1+math.Abs(float64(plainS[i]))) {
			t.Fatalf("svec %d: plain %v vs unrolled %v", i, plainS[i], unrS[i])
		}
	}
}

// ConfRHS must reproduce the fused kernel's right-hand side exactly — the
// CG and block paths build only the RHS and must not drift from the direct
// path's.
func TestConfRHSMatchesFused(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const n, k, omega = 60, 10, 17
	fixed, cols, vals := implicitFixture(rng, n, k, omega)
	g := NewSharedGram(k)
	g.Compute(fixed)
	packed := make([]float32, PackedLen(k))
	svec := make([]float32, k)
	cf := make([]float32, k)
	ConfGramRHSFused(fixed.Data, k, cols, vals, 40, g.Packed, packed, svec, cf)
	rhs := make([]float32, k)
	ConfRHS(fixed.Data, k, cols, vals, 40, rhs)
	for i := range rhs {
		if rhs[i] != svec[i] {
			t.Fatalf("component %d: ConfRHS %v != fused svec %v", i, rhs[i], svec[i])
		}
	}
}

// SharedGram's float32 projections must agree with each other (packed slot
// (i,j) == dense (i,j) == dense (j,i)) — the CG matvec reads Dense, the
// fused kernels read Packed, and the two paths must start from identical
// bases.
func TestSharedGramProjectionsConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const n, k = 37, 9
	fixed := NewDense(n, k)
	for i := range fixed.Data {
		fixed.Data[i] = rng.Float32() - 0.5
	}
	g := NewSharedGram(k)
	g.Compute(fixed)
	idx := 0
	for i := 0; i < k; i++ {
		for j := i; j < k; j++ {
			if g.Packed[idx] != g.Dense[i*k+j] || g.Packed[idx] != g.Dense[j*k+i] {
				t.Fatalf("slot (%d,%d): packed %v dense %v / %v", i, j,
					g.Packed[idx], g.Dense[i*k+j], g.Dense[j*k+i])
			}
			idx++
		}
	}
}
