package linalg

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// This file implements batched small-matrix factorization in the style of
// Kurzak/Anzt/Gates/Dongarra (the paper's reference [21], used by the
// Gates et al. ALS in reference [22]): many independent k×k SPD systems
// solved together, one goroutine-pool pass, with per-batch amortized
// scheduling instead of per-system dispatch. The ALS Y-update is exactly
// this shape — n systems of size k — and cuMF's batched LU is the generic
// competitor modeled in internal/baseline.

// BatchedSystems is a set of independent k×k symmetric positive-definite
// systems A_i·x_i = b_i stored contiguously: As is batch·k·k row-major
// matrices back to back, Bs is batch·k right-hand sides.
type BatchedSystems struct {
	K     int
	Batch int
	As    []float32 // len Batch*K*K; overwritten with the Cholesky factors
	Bs    []float32 // len Batch*K; overwritten with the solutions
}

// NewBatchedSystems allocates a zeroed batch.
func NewBatchedSystems(k, batch int) *BatchedSystems {
	if k <= 0 || batch < 0 {
		panic(fmt.Sprintf("linalg: bad batch shape k=%d batch=%d", k, batch))
	}
	return &BatchedSystems{
		K: k, Batch: batch,
		As: make([]float32, batch*k*k),
		Bs: make([]float32, batch*k),
	}
}

// System returns views of the i-th matrix and right-hand side.
func (bs *BatchedSystems) System(i int) (*Dense, []float32) {
	k := bs.K
	a := NewDenseFrom(k, k, bs.As[i*k*k:(i+1)*k*k])
	return a, bs.Bs[i*k : (i+1)*k]
}

// SolveAll factorizes and solves every system in the batch concurrently
// across `workers` goroutines (0 = GOMAXPROCS). On return Bs holds the
// solutions. The first failing system aborts the batch with its index.
func (bs *BatchedSystems) SolveAll(workers int) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > bs.Batch {
		workers = bs.Batch
	}
	if bs.Batch == 0 {
		return nil
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	var firstErr atomic.Value
	// Chunked claims amortize the atomic over several small systems.
	chunk := 16
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				base := int(cursor.Add(int64(chunk))) - chunk
				if base >= bs.Batch {
					return
				}
				end := base + chunk
				if end > bs.Batch {
					end = bs.Batch
				}
				for i := base; i < end; i++ {
					a, b := bs.System(i)
					if err := CholeskySolve(a, b); err != nil {
						firstErr.CompareAndSwap(nil, fmt.Errorf("linalg: batched system %d: %w", i, err))
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if err, _ := firstErr.Load().(error); err != nil {
		return err
	}
	return nil
}
