package shard

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"net"
	"sync/atomic"
)

// The trainer's exchange protocol: every frame is a little-endian uint64
// body length followed by the body, whose first byte names the frame kind.
// Factor frames carry a fixed 20-byte header (iteration, half, first row,
// row count, k) and then rows·k raw little-endian float32s, so a full
// factor matrix moves as one frame with no per-row framing.
const (
	frameHello    byte = 1 // worker → coordinator: uint32 rank
	frameConfig   byte = 2 // coordinator → worker: JSON workerConfig
	frameFactors  byte = 3 // either direction: factorHeader + float32 payload
	frameError    byte = 4 // worker → coordinator: UTF-8 failure message
	frameTraceCtx byte = 5 // coordinator → worker: rtrace binary span context (17 bytes)
	frameSpans    byte = 6 // worker → coordinator: rtrace.EncodeSpans payload
)

// maxSmallFrame bounds hello/config/error bodies; factor frames are bounded
// by their declared row count instead.
const maxSmallFrame = 1 << 20

const halfX, halfY byte = 0, 1

// factorHeader describes one factor frame: rows [Lo, Lo+Rows) of the
// iteration's half-side matrix.
type factorHeader struct {
	Iter, Lo, Rows, K uint32
	Half              byte
}

const factorHeaderLen = 17

// wire is one framed connection. Reads and writes are buffered; traffic,
// when non-nil, accumulates the full on-the-wire size of every frame sent
// or received (the als_dist_broadcast_bytes_total measurement point).
type wire struct {
	c       net.Conn
	br      *bufio.Reader
	bw      *bufio.Writer
	scratch []byte
	traffic *atomic.Int64
}

func newWire(c net.Conn, traffic *atomic.Int64) *wire {
	return &wire{
		c:       c,
		br:      bufio.NewReaderSize(c, 1<<16),
		bw:      bufio.NewWriterSize(c, 1<<16),
		scratch: make([]byte, 1<<16),
		traffic: traffic,
	}
}

func (w *wire) close() {
	if w != nil && w.c != nil {
		w.c.Close()
	}
}

func (w *wire) count(n int) {
	if w.traffic != nil {
		w.traffic.Add(int64(n))
	}
}

// writeSmall sends a hello/config/error frame and flushes.
func (w *wire) writeSmall(kind byte, payload []byte) error {
	var hdr [9]byte
	binary.LittleEndian.PutUint64(hdr[:8], uint64(1+len(payload)))
	hdr[8] = kind
	if _, err := w.bw.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.bw.Write(payload); err != nil {
		return err
	}
	w.count(len(hdr) + len(payload))
	return w.bw.Flush()
}

// writeFactors sends one factor frame and flushes.
func (w *wire) writeFactors(h factorHeader, data []float32) error {
	if int(h.Rows)*int(h.K) != len(data) {
		return fmt.Errorf("shard: factor frame %dx%d does not match %d floats", h.Rows, h.K, len(data))
	}
	var hdr [8 + 1 + factorHeaderLen]byte
	binary.LittleEndian.PutUint64(hdr[:8], uint64(1+factorHeaderLen+len(data)*4))
	hdr[8] = frameFactors
	binary.LittleEndian.PutUint32(hdr[9:], h.Iter)
	binary.LittleEndian.PutUint32(hdr[13:], h.Lo)
	binary.LittleEndian.PutUint32(hdr[17:], h.Rows)
	binary.LittleEndian.PutUint32(hdr[21:], h.K)
	hdr[25] = h.Half
	if _, err := w.bw.Write(hdr[:]); err != nil {
		return err
	}
	if err := w.writeFloats(data); err != nil {
		return err
	}
	w.count(len(hdr) + len(data)*4)
	return w.bw.Flush()
}

// writeFloats streams data through the scratch buffer as little-endian
// float32s, so a multi-megabyte factor matrix needs no matrix-sized copy.
func (w *wire) writeFloats(data []float32) error {
	buf := w.scratch
	for len(data) > 0 {
		chunk := len(buf) / 4
		if chunk > len(data) {
			chunk = len(data)
		}
		for i := 0; i < chunk; i++ {
			binary.LittleEndian.PutUint32(buf[i*4:], math.Float32bits(data[i]))
		}
		if _, err := w.bw.Write(buf[:chunk*4]); err != nil {
			return err
		}
		data = data[chunk:]
	}
	return nil
}

// readHeader reads the next frame's length prefix and kind byte.
func (w *wire) readHeader() (kind byte, bodyLen uint64, err error) {
	var hdr [9]byte
	if _, err := io.ReadFull(w.br, hdr[:]); err != nil {
		return 0, 0, err
	}
	n := binary.LittleEndian.Uint64(hdr[:8])
	if n < 1 {
		return 0, 0, fmt.Errorf("shard: empty frame")
	}
	w.count(9)
	return hdr[8], n - 1, nil
}

// readSmall reads one hello/config/error frame, returning its kind and body.
func (w *wire) readSmall() (byte, []byte, error) {
	kind, n, err := w.readHeader()
	if err != nil {
		return 0, nil, err
	}
	if kind == frameFactors {
		return 0, nil, fmt.Errorf("shard: unexpected factor frame")
	}
	if n > maxSmallFrame {
		return 0, nil, fmt.Errorf("shard: %d-byte control frame exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(w.br, body); err != nil {
		return 0, nil, err
	}
	w.count(int(n))
	return kind, body, nil
}

// expectFactors reads one frame, which must be a factor frame for the given
// iteration and half covering rows [wantLo, wantLo+wantRows), and decodes
// its payload into dst (indexed in the frame's own row space, so receiving
// a shard lands at dst[wantLo*k:]). A frameError surfaces as the worker's
// own message.
func (w *wire) expectFactors(iter int, half byte, k int, dst []float32, wantLo, wantRows int) error {
	kind, n, err := w.readHeader()
	if err != nil {
		return err
	}
	switch kind {
	case frameError:
		if n > maxSmallFrame {
			return fmt.Errorf("shard: oversized error frame")
		}
		msg := make([]byte, n)
		if _, err := io.ReadFull(w.br, msg); err != nil {
			return fmt.Errorf("shard: peer failed (message lost: %v)", err)
		}
		return fmt.Errorf("shard: peer failed: %s", msg)
	case frameFactors:
	default:
		return fmt.Errorf("shard: unexpected frame kind %d (want factors)", kind)
	}
	var hb [factorHeaderLen]byte
	if _, err := io.ReadFull(w.br, hb[:]); err != nil {
		return err
	}
	h := factorHeader{
		Iter: binary.LittleEndian.Uint32(hb[0:]),
		Lo:   binary.LittleEndian.Uint32(hb[4:]),
		Rows: binary.LittleEndian.Uint32(hb[8:]),
		K:    binary.LittleEndian.Uint32(hb[12:]),
		Half: hb[16],
	}
	if h.Iter != uint32(iter) || h.Half != half || h.K != uint32(k) ||
		h.Lo != uint32(wantLo) || h.Rows != uint32(wantRows) {
		return fmt.Errorf("shard: factor frame (iter=%d half=%d rows [%d,%d) k=%d) does not match expected (iter=%d half=%d rows [%d,%d) k=%d)",
			h.Iter, h.Half, h.Lo, int(h.Lo)+int(h.Rows), h.K, iter, half, wantLo, wantLo+wantRows, k)
	}
	if n != uint64(factorHeaderLen)+uint64(wantRows)*uint64(k)*4 {
		return fmt.Errorf("shard: factor frame length %d does not match %dx%d payload", n, wantRows, k)
	}
	if err := w.readFloats(dst[wantLo*k : (wantLo+wantRows)*k]); err != nil {
		return err
	}
	w.count(int(n))
	return nil
}

// readFloats decodes len(dst) little-endian float32s through the scratch
// buffer.
func (w *wire) readFloats(dst []float32) error {
	buf := w.scratch
	for len(dst) > 0 {
		chunk := len(buf) / 4
		if chunk > len(dst) {
			chunk = len(dst)
		}
		if _, err := io.ReadFull(w.br, buf[:chunk*4]); err != nil {
			return err
		}
		for i := 0; i < chunk; i++ {
			dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[i*4:]))
		}
		dst = dst[chunk:]
	}
	return nil
}
