package shard

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"net"
	"sync"
	"sync/atomic"
)

// The trainer's exchange protocol: every frame is a little-endian uint64
// body length, the body (whose first byte names the frame kind), and a
// little-endian uint32 CRC-32C of the body. The checksum rides as a trailer,
// not a header, so a multi-megabyte factor frame still streams through the
// scratch buffer with the CRC accumulated chunk by chunk — no frame-sized
// staging copy on either end. A mismatched trailer surfaces as the typed
// ErrFrameCorrupt, which the supervisor treats as a worker failure rather
// than silently assembling a wrong model.
//
// Factor frames carry a fixed 17-byte header (iteration, half, first row,
// row count, k) and then rows·k raw little-endian float32s, so a full factor
// matrix moves as one frame with no per-row framing. Heartbeat frames are
// empty liveness markers a worker emits while computing; readers skip them
// transparently, refreshing their deadline per beat.
const (
	frameHello     byte = 1 // worker → coordinator: uint32 rank
	frameConfig    byte = 2 // coordinator → worker: JSON workerConfig
	frameFactors   byte = 3 // either direction: factorHeader + float32 payload
	frameError     byte = 4 // worker → coordinator: UTF-8 failure message
	frameTraceCtx  byte = 5 // coordinator → worker: rtrace binary span context (17 bytes)
	frameSpans     byte = 6 // worker → coordinator: rtrace.EncodeSpans payload
	frameHeartbeat byte = 7 // worker → coordinator: empty liveness marker
)

// maxSmallFrame bounds hello/config/error bodies; factor frames are bounded
// by their declared row count instead.
const maxSmallFrame = 1 << 20

const halfX, halfY byte = 0, 1

// ErrFrameCorrupt reports a frame whose CRC-32C trailer does not match its
// body — bytes were damaged in flight (or injected as damaged by chaosnet).
var ErrFrameCorrupt = errors.New("shard: frame checksum mismatch")

// castagnoli is the CRC-32C table, matching the checkpoint file format's
// checksum family.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// factorHeader describes one factor frame: rows [Lo, Lo+Rows) of the
// iteration's half-side matrix.
type factorHeader struct {
	Iter, Lo, Rows, K uint32
	Half              byte
}

const factorHeaderLen = 17

// crcTrailerLen is the per-frame checksum trailer size.
const crcTrailerLen = 4

// wire is one framed connection. Reads and writes are buffered; writes are
// additionally serialized by a mutex, because a worker's heartbeat goroutine
// emits liveness frames concurrently with the training loop's factor
// frames. traffic, when non-nil, accumulates the full on-the-wire size of
// every frame sent or received (the als_dist_broadcast_bytes_total
// measurement point).
type wire struct {
	c       net.Conn
	br      *bufio.Reader
	wmu     sync.Mutex
	bw      *bufio.Writer
	scratch []byte
	rcrc    uint32 // running CRC of the frame body being read
	traffic *atomic.Int64
}

func newWire(c net.Conn, traffic *atomic.Int64) *wire {
	return &wire{
		c:       c,
		br:      bufio.NewReaderSize(c, 1<<16),
		bw:      bufio.NewWriterSize(c, 1<<16),
		scratch: make([]byte, 1<<16),
		traffic: traffic,
	}
}

func (w *wire) close() {
	if w != nil && w.c != nil {
		w.c.Close()
	}
}

func (w *wire) count(n int) {
	if w.traffic != nil {
		w.traffic.Add(int64(n))
	}
}

// writeSmall sends a hello/config/error/heartbeat frame and flushes.
func (w *wire) writeSmall(kind byte, payload []byte) error {
	w.wmu.Lock()
	defer w.wmu.Unlock()
	var hdr [9]byte
	binary.LittleEndian.PutUint64(hdr[:8], uint64(1+len(payload)))
	hdr[8] = kind
	if _, err := w.bw.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.bw.Write(payload); err != nil {
		return err
	}
	crc := crc32.Update(0, castagnoli, hdr[8:])
	crc = crc32.Update(crc, castagnoli, payload)
	if err := w.writeTrailer(crc); err != nil {
		return err
	}
	w.count(len(hdr) + len(payload) + crcTrailerLen)
	return w.bw.Flush()
}

// writeFactors sends one factor frame and flushes.
func (w *wire) writeFactors(h factorHeader, data []float32) error {
	if int(h.Rows)*int(h.K) != len(data) {
		return fmt.Errorf("shard: factor frame %dx%d does not match %d floats", h.Rows, h.K, len(data))
	}
	w.wmu.Lock()
	defer w.wmu.Unlock()
	var hdr [8 + 1 + factorHeaderLen]byte
	binary.LittleEndian.PutUint64(hdr[:8], uint64(1+factorHeaderLen+len(data)*4))
	hdr[8] = frameFactors
	binary.LittleEndian.PutUint32(hdr[9:], h.Iter)
	binary.LittleEndian.PutUint32(hdr[13:], h.Lo)
	binary.LittleEndian.PutUint32(hdr[17:], h.Rows)
	binary.LittleEndian.PutUint32(hdr[21:], h.K)
	hdr[25] = h.Half
	if _, err := w.bw.Write(hdr[:]); err != nil {
		return err
	}
	crc := crc32.Update(0, castagnoli, hdr[8:])
	if err := w.writeFloats(data, &crc); err != nil {
		return err
	}
	if err := w.writeTrailer(crc); err != nil {
		return err
	}
	w.count(len(hdr) + len(data)*4 + crcTrailerLen)
	return w.bw.Flush()
}

func (w *wire) writeTrailer(crc uint32) error {
	var tr [crcTrailerLen]byte
	binary.LittleEndian.PutUint32(tr[:], crc)
	_, err := w.bw.Write(tr[:])
	return err
}

// writeFloats streams data through the scratch buffer as little-endian
// float32s, accumulating the frame CRC, so a multi-megabyte factor matrix
// needs no matrix-sized copy.
func (w *wire) writeFloats(data []float32, crc *uint32) error {
	buf := w.scratch
	for len(data) > 0 {
		chunk := len(buf) / 4
		if chunk > len(data) {
			chunk = len(data)
		}
		for i := 0; i < chunk; i++ {
			binary.LittleEndian.PutUint32(buf[i*4:], math.Float32bits(data[i]))
		}
		if _, err := w.bw.Write(buf[:chunk*4]); err != nil {
			return err
		}
		*crc = crc32.Update(*crc, castagnoli, buf[:chunk*4])
		data = data[chunk:]
	}
	return nil
}

// readHeader reads the next frame's length prefix and kind byte, seeding the
// running body CRC with the kind.
func (w *wire) readHeader() (kind byte, bodyLen uint64, err error) {
	var hdr [9]byte
	if _, err := io.ReadFull(w.br, hdr[:]); err != nil {
		return 0, 0, err
	}
	n := binary.LittleEndian.Uint64(hdr[:8])
	if n < 1 {
		return 0, 0, fmt.Errorf("shard: empty frame")
	}
	w.count(9)
	w.rcrc = crc32.Update(0, castagnoli, hdr[8:])
	return hdr[8], n - 1, nil
}

// readTrailer consumes the frame's CRC trailer and checks it against the
// accumulated body CRC.
func (w *wire) readTrailer(kind byte) error {
	var tr [crcTrailerLen]byte
	if _, err := io.ReadFull(w.br, tr[:]); err != nil {
		return err
	}
	w.count(crcTrailerLen)
	if got := binary.LittleEndian.Uint32(tr[:]); got != w.rcrc {
		return fmt.Errorf("%w (kind=%d, trailer=%08x, computed=%08x)", ErrFrameCorrupt, kind, got, w.rcrc)
	}
	return nil
}

// readSmall reads one control frame, returning its kind and body. Heartbeat
// frames are consumed and skipped; onBeat, when non-nil, runs after each so
// callers can refresh their read deadline per sign of life.
func (w *wire) readSmall(onBeat func()) (byte, []byte, error) {
	for {
		kind, n, err := w.readHeader()
		if err != nil {
			return 0, nil, err
		}
		if kind == frameFactors {
			return 0, nil, fmt.Errorf("shard: unexpected factor frame")
		}
		if n > maxSmallFrame {
			return 0, nil, fmt.Errorf("shard: %d-byte control frame exceeds limit", n)
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(w.br, body); err != nil {
			return 0, nil, err
		}
		w.count(int(n))
		w.rcrc = crc32.Update(w.rcrc, castagnoli, body)
		if err := w.readTrailer(kind); err != nil {
			return 0, nil, err
		}
		if kind == frameHeartbeat {
			if onBeat != nil {
				onBeat()
			}
			continue
		}
		return kind, body, nil
	}
}

// expectFactors reads frames until a factor frame arrives, which must match
// the given iteration and half and cover rows [wantLo, wantLo+wantRows), and
// decodes its payload into dst (indexed in the frame's own row space, so
// receiving a shard lands at dst[wantLo*k:]). Heartbeats are skipped (via
// onBeat, as in readSmall) and a frameError surfaces as the worker's own
// message.
func (w *wire) expectFactors(iter int, half byte, k int, dst []float32, wantLo, wantRows int, onBeat func()) error {
	var kind byte
	var n uint64
	for {
		var err error
		kind, n, err = w.readHeader()
		if err != nil {
			return err
		}
		if kind != frameHeartbeat {
			break
		}
		if n > maxSmallFrame {
			return fmt.Errorf("shard: %d-byte heartbeat frame exceeds limit", n)
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(w.br, body); err != nil {
			return err
		}
		w.count(int(n))
		w.rcrc = crc32.Update(w.rcrc, castagnoli, body)
		if err := w.readTrailer(kind); err != nil {
			return err
		}
		if onBeat != nil {
			onBeat()
		}
	}
	switch kind {
	case frameError:
		if n > maxSmallFrame {
			return fmt.Errorf("shard: oversized error frame")
		}
		msg := make([]byte, n)
		if _, err := io.ReadFull(w.br, msg); err != nil {
			return fmt.Errorf("shard: peer failed (message lost: %v)", err)
		}
		w.count(int(n))
		w.rcrc = crc32.Update(w.rcrc, castagnoli, msg)
		if err := w.readTrailer(kind); err != nil {
			return err
		}
		return &workerFailure{msg: string(msg)}
	case frameFactors:
	default:
		return fmt.Errorf("shard: unexpected frame kind %d (want factors)", kind)
	}
	var hb [factorHeaderLen]byte
	if _, err := io.ReadFull(w.br, hb[:]); err != nil {
		return err
	}
	w.rcrc = crc32.Update(w.rcrc, castagnoli, hb[:])
	h := factorHeader{
		Iter: binary.LittleEndian.Uint32(hb[0:]),
		Lo:   binary.LittleEndian.Uint32(hb[4:]),
		Rows: binary.LittleEndian.Uint32(hb[8:]),
		K:    binary.LittleEndian.Uint32(hb[12:]),
		Half: hb[16],
	}
	if h.Iter != uint32(iter) || h.Half != half || h.K != uint32(k) ||
		h.Lo != uint32(wantLo) || h.Rows != uint32(wantRows) {
		return fmt.Errorf("shard: factor frame (iter=%d half=%d rows [%d,%d) k=%d) does not match expected (iter=%d half=%d rows [%d,%d) k=%d)",
			h.Iter, h.Half, h.Lo, int(h.Lo)+int(h.Rows), h.K, iter, half, wantLo, wantLo+wantRows, k)
	}
	if n != uint64(factorHeaderLen)+uint64(wantRows)*uint64(k)*4 {
		return fmt.Errorf("shard: factor frame length %d does not match %dx%d payload", n, wantRows, k)
	}
	if err := w.readFloats(dst[wantLo*k : (wantLo+wantRows)*k]); err != nil {
		return err
	}
	w.count(int(n))
	return w.readTrailer(kind)
}

// readFloats decodes len(dst) little-endian float32s through the scratch
// buffer, accumulating the frame CRC.
func (w *wire) readFloats(dst []float32) error {
	buf := w.scratch
	for len(dst) > 0 {
		chunk := len(buf) / 4
		if chunk > len(dst) {
			chunk = len(dst)
		}
		if _, err := io.ReadFull(w.br, buf[:chunk*4]); err != nil {
			return err
		}
		w.rcrc = crc32.Update(w.rcrc, castagnoli, buf[:chunk*4])
		for i := 0; i < chunk; i++ {
			dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[i*4:]))
		}
		dst = dst[chunk:]
	}
	return nil
}

// workerFailure is a frameError relayed from a worker: the peer is alive
// enough to report its own failure, which the supervisor classifies
// separately from connection loss.
type workerFailure struct{ msg string }

func (e *workerFailure) Error() string { return "shard: peer failed: " + e.msg }
