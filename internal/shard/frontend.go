package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/linalg"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/rtrace"
	"repro/internal/serve"
)

// FrontendConfig configures a scatter-gather frontend.
type FrontendConfig struct {
	// Shards are the replica base URLs in shard order, e.g.
	// "http://127.0.0.1:8081". Length defines the fleet size K.
	Shards []string
	// Client overrides the outbound HTTP client (nil builds one with a
	// reasonable connection pool).
	Client *http.Client
	// ShardTimeout is the per-shard deadline for one fan-out leg (default
	// 1s). A shard that misses it is treated as down for that request and
	// the response degrades to the healthy shards' merged results.
	ShardTimeout time.Duration
	// ProbeInterval is the background health-check period (default 2s).
	ProbeInterval time.Duration
	// RetryBackoff is the base for the jittered pause before the single
	// retry of a transiently-failed fan-out leg (default 25ms). The retry
	// runs inside the same per-shard deadline, so a request is only
	// degraded to partial when a shard fails twice within ShardTimeout.
	RetryBackoff time.Duration
	// MaxN caps the per-request recommendation count (default 100).
	MaxN int
	// MaxFoldInItems caps one fold-in request's ratings (default 10000).
	MaxFoldInItems int
	// Lambda is the fold-in regularization fallback when neither the
	// request nor the shards' model metadata supplies one (default 0.1).
	Lambda float32
	// Tracer, when set, records one root span per frontend request with a
	// child span per shard hop (the context rides the traceparent header,
	// so shard-side spans join the same trace) plus merge and fold-in
	// phase spans. Nil disables tracing with zero per-request cost.
	Tracer *rtrace.Tracer
	// SlowLog, when positive, logs requests at or above this duration
	// with their trace ID.
	SlowLog time.Duration
}

func (c *FrontendConfig) setDefaults() {
	if c.ShardTimeout <= 0 {
		c.ShardTimeout = time.Second
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 2 * time.Second
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 25 * time.Millisecond
	}
	if c.MaxN <= 0 {
		c.MaxN = 100
	}
	if c.MaxFoldInItems <= 0 {
		c.MaxFoldInItems = 10000
	}
	if c.Lambda <= 0 {
		c.Lambda = 0.1
	}
}

// shardState is the frontend's per-shard view: liveness (set by the health
// prober and passively by request outcomes) and the last /shard/v1/info.
type shardState struct {
	up   atomic.Bool
	info atomic.Pointer[InfoResponse]
}

// Frontend fans /v1/recommend and /v1/foldin out to a fleet of shard
// replicas and merges their bounded heaps with metrics.TopK, so the merged
// top-N (including tie-breaking toward lower item indices) is identical to
// a single process scanning the full catalog. A shard that is down or
// misses its deadline degrades the response to the healthy shards' merged
// results — flagged in the response, counted in als_shard_partial_total,
// and reflected by /readyz going 503 while the fleet is degraded.
type Frontend struct {
	cfg    FrontendConfig
	client *http.Client
	shards []*shardState
	mux    *http.ServeMux

	reg       *obs.Registry
	partial   *obs.Metric
	requests  *obs.Vec
	latency   *obs.Vec
	shardReqs *obs.Vec
	retries   *obs.Vec
}

var frontLatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// NewFrontend builds a frontend over the given shard fleet. Start Run for
// background health probing; requests also mark shards up or down
// passively, so the frontend degrades and recovers even without it.
func NewFrontend(cfg FrontendConfig) (*Frontend, error) {
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("shard: frontend needs at least one shard URL")
	}
	cfg.setDefaults()
	f := &Frontend{cfg: cfg, client: cfg.Client, reg: obs.NewRegistry()}
	if f.client == nil {
		f.client = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 16,
			IdleConnTimeout:     30 * time.Second,
		}}
	}
	for range cfg.Shards {
		f.shards = append(f.shards, &shardState{})
	}
	f.partial = f.reg.Counter("als_shard_partial_total",
		"Requests answered from fewer than all shards (degraded scatter-gather).").With()
	f.requests = f.reg.Counter("als_front_requests_total",
		"Frontend requests by endpoint and status code.", "endpoint", "code")
	f.latency = f.reg.Histogram("als_front_request_seconds",
		"Frontend request latency by status code.", frontLatencyBuckets, "code")
	cfg.Tracer.Register(f.reg)
	f.shardReqs = f.reg.Counter("als_front_shard_requests_total",
		"Fan-out legs by shard and outcome.", "shard", "outcome")
	f.retries = f.reg.Counter("als_shard_retries_total",
		"Fan-out legs retried after a transient shard failure.", "shard")
	f.reg.Func("als_front_shard_up",
		"Whether the shard answered its last probe or request (1 up, 0 down).",
		obs.Gauge, []string{"shard"}, func() []obs.Sample {
			out := make([]obs.Sample, len(f.shards))
			for i, st := range f.shards {
				v := 0.0
				if st.up.Load() {
					v = 1
				}
				out[i] = obs.Sample{Labels: []string{strconv.Itoa(i)}, Value: v}
			}
			return out
		})

	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("GET /readyz", f.handleReady)
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		f.reg.WritePrometheus(w)
	})
	mux.HandleFunc("GET /v1/model", f.timed("model", f.handleModel))
	mux.HandleFunc("GET /v1/recommend", f.timed("recommend", f.handleRecommend))
	mux.HandleFunc("POST /v1/foldin", f.timed("foldin", f.handleFoldIn))
	f.mux = mux
	return f, nil
}

// Handler returns the frontend's HTTP routing.
func (f *Frontend) Handler() http.Handler { return f.mux }

// Registry exposes the frontend's metrics (for embedding hosts).
func (f *Frontend) Registry() *obs.Registry { return f.reg }

// timed wraps a handler with the request counter, the latency histogram
// and — when a Tracer is configured — the request's root span (continuing
// an inbound traceparent context). The status-code label is shared by the
// counter and the histogram: one strconv.Itoa per request, so tracing off
// adds no allocations over the untraced path.
func (f *Frontend) timed(endpoint string, h func(http.ResponseWriter, *http.Request)) func(http.ResponseWriter, *http.Request) {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		var span *rtrace.Span
		if f.cfg.Tracer != nil {
			var ctx context.Context
			ctx, span = f.cfg.Tracer.StartRequest(r.Context(), endpoint, rtrace.Extract(r.Header))
			if span != nil {
				r = r.WithContext(ctx)
			}
		}
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		d := time.Since(start)
		code := strconv.Itoa(sw.code)
		f.requests.With(endpoint, code).Inc()
		f.latency.With(code).Observe(d.Seconds())
		if span != nil {
			span.SetAttr("code", code)
			span.End()
		}
		if f.cfg.SlowLog > 0 && d >= f.cfg.SlowLog {
			log.Printf("alsfront: slow request endpoint=%s code=%s dur=%s trace=%s",
				endpoint, code, d, span.TraceID())
		}
	}
}

type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// statusError is a non-2xx shard reply; 4xx codes mean the request (not
// the shard) is at fault, so they never mark a shard down.
type statusError struct {
	code int
	msg  string
}

func (e *statusError) Error() string { return e.msg }

// Run probes shard health until ctx is cancelled (one immediate sweep,
// then every ProbeInterval).
func (f *Frontend) Run(ctx context.Context) {
	f.ProbeOnce(ctx)
	t := time.NewTicker(f.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			f.ProbeOnce(ctx)
		}
	}
}

// ProbeOnce health-checks every shard through its public /readyz and, for
// ready shards, refreshes the cached /shard/v1/info.
func (f *Frontend) ProbeOnce(ctx context.Context) {
	var wg sync.WaitGroup
	for i := range f.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sctx, cancel := context.WithTimeout(ctx, f.cfg.ShardTimeout)
			defer cancel()
			st := f.shards[i]
			if err := f.getJSON(sctx, i, "/readyz", nil); err != nil {
				st.up.Store(false)
				return
			}
			var info InfoResponse
			if err := f.getJSON(sctx, i, "/shard/v1/info", &info); err == nil {
				st.info.Store(&info)
			}
			st.up.Store(true)
		}(i)
	}
	wg.Wait()
}

// Ready reports fleet health for /readyz: an error while any shard is
// down (the degraded state operators alert on), even though requests keep
// serving partial results from the healthy ones.
func (f *Frontend) Ready() error {
	var down []string
	for i, st := range f.shards {
		if !st.up.Load() {
			down = append(down, strconv.Itoa(i))
		}
	}
	switch {
	case len(down) == len(f.shards):
		return fmt.Errorf("all %d shards down", len(f.shards))
	case len(down) > 0:
		return fmt.Errorf("degraded: shard(s) %s down", strings.Join(down, ","))
	}
	return nil
}

// Healthy returns how many shards are currently marked up.
func (f *Frontend) Healthy() (up, total int) {
	for _, st := range f.shards {
		if st.up.Load() {
			up++
		}
	}
	return up, len(f.shards)
}

func (f *Frontend) handleReady(w http.ResponseWriter, _ *http.Request) {
	if err := f.Ready(); err != nil {
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	w.Write([]byte("ok\n"))
}

// getJSON GETs path from shard i and decodes the response into out (nil
// discards the body). Non-2xx replies surface as *statusError.
func (f *Frontend) getJSON(ctx context.Context, i int, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.cfg.Shards[i]+path, nil)
	if err != nil {
		return err
	}
	return f.doJSON(ctx, i, req, out)
}

// postJSON POSTs body to path on shard i and decodes the response.
func (f *Frontend) postJSON(ctx context.Context, i int, path string, body, out any) error {
	enc, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, f.cfg.Shards[i]+path, bytes.NewReader(enc))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return f.doJSON(ctx, i, req, out)
}

// doJSON runs one fan-out leg. On a traced request it opens a per-hop child
// span ("shard<i> <path>") and injects its context into the outbound
// traceparent header, so the shard's own middleware span joins the trace.
func (f *Frontend) doJSON(ctx context.Context, i int, req *http.Request, out any) error {
	var hop *rtrace.Span
	if rtrace.Active(ctx) {
		_, hop = rtrace.StartChild(ctx, "shard"+strconv.Itoa(i)+" "+req.URL.Path)
		hop.SetAttr("shard", strconv.Itoa(i))
		rtrace.Inject(req.Header, hop.Context())
		defer hop.End()
	}
	resp, err := f.client.Do(req)
	if err != nil {
		if hop != nil {
			hop.SetAttr("error", err.Error())
		}
		return err
	}
	defer resp.Body.Close()
	if hop != nil {
		hop.SetAttr("code", strconv.Itoa(resp.StatusCode))
	}
	if resp.StatusCode/100 != 2 {
		msg := fmt.Sprintf("shard replied %d", resp.StatusCode)
		var e struct {
			Error string `json:"error"`
		}
		if json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&e) == nil && e.Error != "" {
			msg = e.Error
		}
		return &statusError{code: resp.StatusCode, msg: msg}
	}
	if out == nil {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// scatter runs fn for every shard concurrently under the per-shard
// deadline and returns the per-shard outcomes. A transient failure — a
// transport error or a 5xx reply — is retried once after a jittered
// backoff, still inside the same per-shard deadline, so one flaky response
// does not degrade the answer to partial. Transport failures and 5xx
// replies that survive the retry mark the shard down (and a later success
// marks it back up), so request traffic itself drives degradation and
// recovery.
func (f *Frontend) scatter(ctx context.Context, fn func(ctx context.Context, i int) error) []error {
	errs := make([]error, len(f.shards))
	var wg sync.WaitGroup
	for i := range f.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sctx, cancel := context.WithTimeout(ctx, f.cfg.ShardTimeout)
			defer cancel()
			err := fn(sctx, i)
			if retryable(err) && sctx.Err() == nil {
				f.retries.With(strconv.Itoa(i)).Inc()
				pause := time.NewTimer(f.cfg.RetryBackoff/2 +
					time.Duration(rand.Int63n(int64(f.cfg.RetryBackoff))))
				select {
				case <-sctx.Done():
					pause.Stop()
				case <-pause.C:
					err = fn(sctx, i)
				}
			}
			errs[i] = err
			outcome := "ok"
			var se *statusError
			switch {
			case err == nil:
				f.shards[i].up.Store(true)
			case errors.As(err, &se) && se.code < 500:
				// The request is at fault, not the shard.
				outcome = "rejected"
			default:
				outcome = "error"
				f.shards[i].up.Store(false)
			}
			f.shardReqs.With(strconv.Itoa(i), outcome).Inc()
		}(i)
	}
	wg.Wait()
	return errs
}

// retryable reports whether a fan-out leg's failure is worth one more try:
// transport errors and 5xx replies are transient (a hiccup, a restarting
// replica), while 4xx replies blame the request and a spent deadline
// leaves no time to try again.
func retryable(err error) bool {
	if err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var se *statusError
	if errors.As(err, &se) {
		return se.code >= 500
	}
	return true
}

// anyInfo returns the freshest cached shard info, fetching one
// synchronously when nothing is cached yet.
func (f *Frontend) anyInfo(ctx context.Context) *InfoResponse {
	var best *InfoResponse
	for _, st := range f.shards {
		if in := st.info.Load(); in != nil && (best == nil || in.Seq > best.Seq) {
			best = in
		}
	}
	if best != nil {
		return best
	}
	for i := range f.shards {
		sctx, cancel := context.WithTimeout(ctx, f.cfg.ShardTimeout)
		var info InfoResponse
		err := f.getJSON(sctx, i, "/shard/v1/info", &info)
		cancel()
		if err == nil {
			f.shards[i].info.Store(&info)
			return &info
		}
	}
	return nil
}

// RecommendResponse is the frontend's /v1/recommend answer: the standard
// serving response plus the scatter-gather outcome.
type RecommendResponse struct {
	serve.RecommendResponse
	Partial  bool `json:"partial,omitempty"`
	ShardsOK int  `json:"shards_ok"`
	Shards   int  `json:"shards"`
}

func (f *Frontend) handleRecommend(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	user, err := strconv.ParseInt(q.Get("user"), 10, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, "user must be an integer")
		return
	}
	n := 10
	if v := q.Get("n"); v != "" {
		n, err = strconv.Atoi(v)
		if err != nil || n <= 0 || n > f.cfg.MaxN {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("n must be in [1,%d]", f.cfg.MaxN))
			return
		}
	}
	results := make([]*serve.RecommendResponse, len(f.shards))
	path := fmt.Sprintf("/v1/recommend?user=%d&n=%d", user, n)
	errs := f.scatter(r.Context(), func(ctx context.Context, i int) error {
		var resp serve.RecommendResponse
		if err := f.getJSON(ctx, i, path, &resp); err != nil {
			return err
		}
		results[i] = &resp
		return nil
	})
	ok := countOK(errs)
	if ok == 0 {
		failAllShards(w, errs)
		return
	}
	_, mspan := rtrace.StartChild(r.Context(), "merge")
	merged, version, seq := mergeItems(results, n)
	mspan.End()
	resp := RecommendResponse{
		RecommendResponse: serve.RecommendResponse{
			Version: version, Seq: seq, User: user, Items: merged,
		},
		Partial: ok < len(f.shards), ShardsOK: ok, Shards: len(f.shards),
	}
	if resp.Partial {
		f.partial.Inc()
	}
	writeJSON(w, resp)
}

// FoldInResponse is the frontend's /v1/foldin answer.
type FoldInResponse struct {
	serve.FoldInResponse
	Partial  bool `json:"partial,omitempty"`
	ShardsOK int  `json:"shards_ok"`
	Shards   int  `json:"shards"`
}

// handleFoldIn solves a cold-start user across the fleet: every shard
// contributes the partial Gram/RHS terms of its item slice, the frontend
// sums them, adds λI once and solves the k×k system (packed Cholesky with
// the same LDLᵀ fallback as core.Model.FoldInUser), then scatter-gathers
// the scoring of the solved factor. The write path finishes by purging the
// user's cached responses on every shard — not just the ones that answered
// — so no replica can serve a pre-write recommendation from its LRU.
func (f *Frontend) handleFoldIn(w http.ResponseWriter, r *http.Request) {
	var req serve.FoldInRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	if len(req.Items) == 0 {
		httpError(w, http.StatusBadRequest, "need at least one rating")
		return
	}
	if len(req.Items) > f.cfg.MaxFoldInItems {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("at most %d ratings per request", f.cfg.MaxFoldInItems))
		return
	}
	if len(req.Items) != len(req.Ratings) {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("%d items but %d ratings", len(req.Items), len(req.Ratings)))
		return
	}
	if req.N <= 0 {
		req.N = 10
	}
	if req.N > f.cfg.MaxN {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("n must be in [1,%d]", f.cfg.MaxN))
		return
	}
	info := f.anyInfo(r.Context())
	seen := make(map[int32]struct{}, len(req.Items))
	for j, it := range req.Items {
		if it < 0 || (info != nil && int(it) >= info.TotalItems) {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("item %d out of range", it))
			return
		}
		if _, dup := seen[it]; dup {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("duplicate item %d in fold-in ratings", it))
			return
		}
		seen[it] = struct{}{}
		if v := float64(req.Ratings[j]); math.IsNaN(v) || math.IsInf(v, 0) {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("rating for item %d is %g", it, v))
			return
		}
	}

	// Phase 1: gather partial normal equations. Each phase runs under its
	// own span so its per-shard hop spans nest beneath it.
	partials := make([]*PartialsResponse, len(f.shards))
	preq := PartialsRequest{Items: req.Items, Ratings: req.Ratings}
	pctx, pspan := rtrace.StartChild(r.Context(), "foldin.partials")
	errs := f.scatter(pctx, func(ctx context.Context, i int) error {
		var resp PartialsResponse
		if err := f.postJSON(ctx, i, "/shard/v1/partials", preq, &resp); err != nil {
			return err
		}
		partials[i] = &resp
		return nil
	})
	pspan.End()
	ok := countOK(errs)
	if ok == 0 {
		failAllShards(w, errs)
		return
	}
	degraded := ok < len(f.shards)
	k := 0
	for _, p := range partials {
		if p != nil {
			k = p.K
			break
		}
	}
	packed := make([]float32, linalg.PackedLen(k))
	rhs := make([]float32, k)
	for _, p := range partials {
		if p == nil {
			continue
		}
		if p.K != k || len(p.Gram) != len(packed) || len(p.RHS) != k {
			httpError(w, http.StatusBadGateway, "shards disagree on model dimensionality")
			return
		}
		for z, v := range p.Gram {
			packed[z] += v
		}
		for z, v := range p.RHS {
			rhs[z] += v
		}
	}
	lam := req.Lambda
	if lam <= 0 {
		switch {
		case info != nil && info.Lambda > 0 && info.WeightedLambda:
			lam = info.Lambda * float32(len(req.Items))
		case info != nil && info.Lambda > 0:
			lam = info.Lambda
		default:
			lam = f.cfg.Lambda
		}
	}
	// Keep pristine copies: a rejected Cholesky clobbers its inputs.
	pcopy := append([]float32(nil), packed...)
	rcopy := append([]float32(nil), rhs...)
	_, sspan := rtrace.StartChild(r.Context(), "foldin.solve")
	linalg.AddDiagPacked(packed, k, lam)
	xu := rhs
	if err := linalg.CholeskySolvePacked(packed, k, xu); err != nil {
		linalg.AddDiagPacked(pcopy, k, lam)
		if err := linalg.LDLSolvePacked(pcopy, k, rcopy, make([]float64, k)); err != nil {
			sspan.End()
			httpError(w, http.StatusBadGateway, "fold-in solve: "+err.Error())
			return
		}
		xu = rcopy
	}
	sspan.End()

	// Phase 2: scatter the solved factor for scoring (the user's own rated
	// items excluded, as in the single-process path).
	scores := make([]*serve.RecommendResponse, len(f.shards))
	sreq := ScoreRequest{X: xu, N: req.N, Exclude: req.Items}
	scctx, scspan := rtrace.StartChild(r.Context(), "foldin.score")
	errs = f.scatter(scctx, func(ctx context.Context, i int) error {
		var resp ScoreResponse
		if err := f.postJSON(ctx, i, "/shard/v1/score", sreq, &resp); err != nil {
			return err
		}
		scores[i] = &serve.RecommendResponse{Version: resp.Version, Seq: resp.Seq, Items: resp.Items}
		return nil
	})
	scspan.End()
	ok = countOK(errs)
	if ok == 0 {
		failAllShards(w, errs)
		return
	}
	degraded = degraded || ok < len(f.shards)

	// Write-path cache invalidation: broadcast the purge to every
	// configured shard — including any that missed the partials or scoring
	// deadline — so a recovering replica cannot serve the user's pre-write
	// recommendations out of its LRU.
	if req.User != nil {
		puctx, puspan := rtrace.StartChild(r.Context(), "foldin.purge")
		f.scatter(puctx, func(ctx context.Context, i int) error {
			return f.postJSON(ctx, i, "/shard/v1/purge", PurgeRequest{User: *req.User}, nil)
		})
		puspan.End()
	}

	_, mspan := rtrace.StartChild(r.Context(), "merge")
	merged, version, seq := mergeItems(scores, req.N)
	mspan.End()
	resp := FoldInResponse{
		FoldInResponse: serve.FoldInResponse{Version: version, Seq: seq, Items: merged},
		Partial:        degraded, ShardsOK: ok, Shards: len(f.shards),
	}
	if degraded {
		f.partial.Inc()
	}
	writeJSON(w, resp)
}

// handleModel aggregates the fleet's /shard/v1/info into the standard
// /v1/model discovery answer (full catalog size, shared user count).
func (f *Frontend) handleModel(w http.ResponseWriter, r *http.Request) {
	infos := make([]*InfoResponse, len(f.shards))
	errs := f.scatter(r.Context(), func(ctx context.Context, i int) error {
		var info InfoResponse
		if err := f.getJSON(ctx, i, "/shard/v1/info", &info); err != nil {
			return err
		}
		f.shards[i].info.Store(&info)
		infos[i] = &info
		return nil
	})
	if countOK(errs) == 0 {
		failAllShards(w, errs)
		return
	}
	var best *InfoResponse
	for _, in := range infos {
		if in != nil && (best == nil || in.Seq > best.Seq) {
			best = in
		}
	}
	writeJSON(w, serve.ModelResponse{
		Version: best.Version, Seq: best.Seq,
		Users: best.Users, Items: best.TotalItems, K: best.K,
		Compact: best.Compact,
	})
}

// mergeItems merges per-shard top-N lists through one bounded heap. Shards
// report disjoint global item indices and metrics.TopK breaks score ties
// toward the lower item index, so the merge is deterministic and identical
// to a single-process scan of the full catalog. The reported version/seq
// is the newest among the answering shards (they briefly diverge mid-swap).
func mergeItems(results []*serve.RecommendResponse, n int) ([]serve.RecItem, string, uint64) {
	merged := metrics.NewTopK(n)
	byItem := make(map[int]serve.RecItem)
	version, seq := "", uint64(0)
	for _, res := range results {
		if res == nil {
			continue
		}
		if res.Seq >= seq {
			version, seq = res.Version, res.Seq
		}
		for _, it := range res.Items {
			merged.Push(it.Item, it.Score)
			byItem[it.Item] = it
		}
	}
	drained := merged.Drain()
	out := make([]serve.RecItem, len(drained))
	for i, s := range drained {
		it := byItem[s.Item]
		out[i] = serve.RecItem{Item: s.Item, ID: it.ID, Score: s.Score}
	}
	return out, version, seq
}

func countOK(errs []error) int {
	n := 0
	for _, err := range errs {
		if err == nil {
			n++
		}
	}
	return n
}

// failAllShards reports a request no shard could answer: a 4xx consensus
// (e.g. unknown user) passes through, anything else is 503.
func failAllShards(w http.ResponseWriter, errs []error) {
	var se *statusError
	for _, err := range errs {
		if errors.As(err, &se) && se.code < 500 {
			httpError(w, se.code, se.msg)
			return
		}
	}
	msg := "no shard answered"
	for _, err := range errs {
		if err != nil {
			msg = err.Error()
			break
		}
	}
	httpError(w, http.StatusServiceUnavailable, msg)
}
