package shard

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/rtrace"
	"repro/internal/serve"
)

// TestTrainerTraceSpans runs a traced 2-worker in-process training job and
// checks the assembled span forest: a coordinator "train" root with per-half
// gather/broadcast children (and one wait span per rank), plus each worker's
// own compute/gather/broadcast spans shipped back over the frameSpans frame
// and stitched into the same trace.
func TestTrainerTraceSpans(t *testing.T) {
	spec := DataSpec{Preset: "YMR4", Scale: 0.02, Seed: 7, TestFrac: 0}
	mx, err := spec.Load()
	if err != nil {
		t.Fatal(err)
	}
	const workers, iters = 2, 2
	tr := rtrace.New(rtrace.Config{Sample: 1, Process: "alstrain"})
	if _, _, err := Train(mx, TrainerConfig{
		Workers: workers, K: 4, Iterations: iters, Seed: 7,
		UseRecommended: true, Data: spec, Tracer: tr,
	}); err != nil {
		t.Fatal(err)
	}

	spans := tr.Snapshot()
	byID := map[rtrace.SpanID]rtrace.SpanRecord{}
	children := map[rtrace.SpanID][]rtrace.SpanRecord{}
	for _, sp := range spans {
		byID[sp.ID] = sp
		children[sp.Parent] = append(children[sp.Parent], sp)
	}
	var root rtrace.SpanRecord
	for _, sp := range spans {
		if sp.Name == "train" {
			root = sp
		}
	}
	if root.ID == 0 {
		t.Fatalf("no train root span among %d spans", len(spans))
	}

	// Coordinator side: one iterN/half span per half-iteration, each with a
	// gather (holding per-rank waits) and a broadcast child.
	halves := 0
	for _, h := range children[root.ID] {
		if h.Name == "worker0" || h.Name == "worker1" {
			continue
		}
		halves++
		names := map[string]int{}
		for _, c := range children[h.ID] {
			names[c.Name]++
			if c.Name == "gather" {
				if got := len(children[c.ID]); got != workers {
					t.Errorf("%s gather has %d wait spans, want %d", h.Name, got, workers)
				}
			}
		}
		if names["gather"] != 1 || names["broadcast"] != 1 {
			t.Errorf("%s children = %v, want one gather and one broadcast", h.Name, names)
		}
	}
	if halves != iters*2 {
		t.Errorf("coordinator half spans = %d, want %d", halves, iters*2)
	}

	// Worker side: each rank's root continues the coordinator's trace and
	// carries compute/gather/broadcast spans for every half-iteration.
	for rank := 0; rank < workers; rank++ {
		name := "worker" + string(rune('0'+rank))
		var wroot rtrace.SpanRecord
		for _, sp := range spans {
			if sp.Name == name {
				wroot = sp
			}
		}
		if wroot.ID == 0 {
			t.Fatalf("no %s root span", name)
		}
		if wroot.Trace != root.Trace {
			t.Errorf("%s trace = %v, want coordinator trace %v", name, wroot.Trace, root.Trace)
		}
		if wroot.Parent != root.ID {
			t.Errorf("%s parent = %v, want train root %v", name, wroot.Parent, root.ID)
		}
		phases := map[string]int{}
		for _, h := range children[wroot.ID] {
			for _, c := range children[h.ID] {
				phases[c.Name]++
			}
		}
		want := iters * 2
		if phases["compute"] != want || phases["gather"] != want || phases["broadcast"] != want {
			t.Errorf("%s phase spans = %v, want %d of each of compute/gather/broadcast", name, phases, want)
		}
	}

	if rec, dropped := tr.SpanCount(); int(rec) != len(spans) || dropped != 0 {
		t.Errorf("span counters (%d, %d) disagree with %d snapshot spans", rec, dropped, len(spans))
	}

	// An untraced run (nil tracer) still works and records nothing new.
	before := len(tr.Snapshot())
	if _, _, err := Train(mx, TrainerConfig{
		Workers: workers, K: 4, Iterations: 1, Seed: 7,
		UseRecommended: true, Data: spec,
	}); err != nil {
		t.Fatal(err)
	}
	if got := len(tr.Snapshot()); got != before {
		t.Errorf("untraced run added %d spans", got-before)
	}
}

// tracedFleet builds a 2-shard fleet where the frontend and both replicas
// share one tracer, so shard-side middleware spans land in the same ring the
// frontend publishes to (in production each process has its own tracer and
// the traces are joined by ID in the UI; sharing one here lets the test see
// the whole stitched tree).
func tracedFleet(t *testing.T, tr *rtrace.Tracer) *Frontend {
	t.Helper()
	const shards = 2
	m := tieModel(5, 23, 3)
	urls := make([]string, shards)
	for i := 0; i < shards; i++ {
		srv := serve.New(serve.Config{Tracer: tr})
		rep, err := NewReplica(srv, ReplicaConfig{Index: i, Count: shards})
		if err != nil {
			t.Fatal(err)
		}
		rep.Swap(m, nil, "v1")
		ts := httptest.NewServer(rep.Handler())
		t.Cleanup(func() { ts.Close(); srv.Close() })
		urls[i] = ts.URL
	}
	front, err := NewFrontend(FrontendConfig{
		Shards: urls, ShardTimeout: 5 * time.Second, Tracer: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	front.ProbeOnce(context.Background())
	return front
}

// TestFrontendTraceSpans checks the scatter-gather span tree: a frontend
// root with one hop child per contacted shard (plus the merge span), hop
// envelopes inside the root's, the shard's own middleware span stitched
// under its hop via the traceparent header, and the trace retrievable from
// the flight recorder by the same ID.
func TestFrontendTraceSpans(t *testing.T) {
	tr := rtrace.New(rtrace.Config{Sample: 1, Process: "alsfront"})
	front := tracedFleet(t, tr)
	fts := httptest.NewServer(front.Handler())
	t.Cleanup(fts.Close)

	if code := getJSON(t, fts.URL+"/v1/recommend?user=500&n=5", nil); code != 200 {
		t.Fatalf("recommend: HTTP %d", code)
	}

	spans := tr.Snapshot()
	children := map[rtrace.SpanID][]rtrace.SpanRecord{}
	var root rtrace.SpanRecord
	for _, sp := range spans {
		children[sp.Parent] = append(children[sp.Parent], sp)
		if sp.Name == "recommend" && sp.Parent == 0 {
			root = sp
		}
	}
	if root.ID == 0 {
		t.Fatalf("no frontend root span among %d spans", len(spans))
	}
	hops, merges := 0, 0
	for _, c := range children[root.ID] {
		if c.Trace != root.Trace {
			t.Errorf("child %q trace = %v, want root trace %v", c.Name, c.Trace, root.Trace)
		}
		if c.Start.Before(root.Start) || c.Start.Add(c.Dur).After(root.Start.Add(root.Dur)) {
			t.Errorf("child %q outside the root envelope", c.Name)
		}
		switch {
		case strings.HasPrefix(c.Name, "shard"):
			hops++
			// The shard's middleware span joined the trace through the
			// injected traceparent header.
			found := false
			for _, g := range children[c.ID] {
				if g.Name == "recommend" {
					found = true
				}
			}
			if !found {
				t.Errorf("hop %q has no shard-side middleware span beneath it", c.Name)
			}
		case c.Name == "merge":
			merges++
		}
	}
	if hops != 2 {
		t.Errorf("root has %d shard hop spans, want 2", hops)
	}
	if merges != 1 {
		t.Errorf("root has %d merge spans, want 1", merges)
	}

	slowest := tr.Slowest()
	traces, ok := slowest["recommend"]
	if !ok || len(traces) == 0 {
		t.Fatalf("flight recorder has no recommend traces: %v", slowest)
	}
	if traces[0].Trace != root.Trace {
		t.Errorf("slowest trace ID %v, want %v", traces[0].Trace, root.Trace)
	}
}

// TestTimedStatusCodesConcurrent drives mixed-status requests through the
// frontend middleware from many goroutines at once: the statusWriter must
// capture each handler's code without races, and the per-code counter and
// histogram labels must add up exactly.
func TestTimedStatusCodesConcurrent(t *testing.T) {
	front := tracedFleet(t, nil)
	fts := httptest.NewServer(front.Handler())
	t.Cleanup(fts.Close)

	const perCode = 8
	var wg sync.WaitGroup
	for i := 0; i < perCode; i++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			if code := getJSON(t, fts.URL+"/v1/recommend?user=500&n=3", nil); code != 200 {
				t.Errorf("known user: HTTP %d", code)
			}
		}()
		go func() {
			defer wg.Done()
			if code := getJSON(t, fts.URL+"/v1/recommend?user=99999&n=3", nil); code != 404 {
				t.Errorf("unknown user: HTTP %d", code)
			}
		}()
	}
	wg.Wait()

	var buf bytes.Buffer
	if err := front.Registry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if _, err := obs.ValidateExposition(strings.NewReader(text)); err != nil {
		t.Fatalf("exposition does not validate: %v", err)
	}
	for _, want := range []string{
		fmt.Sprintf(`als_front_requests_total{endpoint="recommend",code="200"} %d`, perCode),
		fmt.Sprintf(`als_front_requests_total{endpoint="recommend",code="404"} %d`, perCode),
		fmt.Sprintf(`als_front_request_seconds_count{code="200"} %d`, perCode),
		fmt.Sprintf(`als_front_request_seconds_count{code="404"} %d`, perCode),
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition lacks %q", want)
		}
	}
}
