package chaosnet

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"net"
	"testing"
	"time"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// frame builds one wire frame in the shard protocol: length prefix, body
// (kind byte + payload), CRC-32C trailer.
func frame(kind byte, payload []byte) []byte {
	body := append([]byte{kind}, payload...)
	b := make([]byte, lenPrefix, lenPrefix+len(body)+crcTrailer)
	binary.LittleEndian.PutUint64(b, uint64(len(body)))
	b = append(b, body...)
	return binary.LittleEndian.AppendUint32(b, crc32.Checksum(body, castagnoli))
}

func hello(rank uint32) []byte {
	p := make([]byte, 4)
	binary.LittleEndian.PutUint32(p, rank)
	return frame(kindHello, p)
}

func heartbeat() []byte { return frame(kindHeartbeat, nil) }

// feed writes raw bytes to the peer end in the given chunk size, ignoring
// errors (an injected sever legitimately kills the pipe mid-write).
func feed(c net.Conn, raw []byte, chunk int) {
	go func() {
		for len(raw) > 0 {
			n := chunk
			if n > len(raw) {
				n = len(raw)
			}
			if _, err := c.Write(raw[:n]); err != nil {
				return
			}
			raw = raw[n:]
		}
	}()
}

func readN(t *testing.T, c net.Conn, n int) []byte {
	t.Helper()
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, n)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatalf("reading %d bytes: %v", n, err)
	}
	return buf
}

func TestParsePlanRoundTrip(t *testing.T) {
	spec := "seed=7,sever=1:in:3,corrupt=0:out:2,trunc=2:in:5,drop=0:in:4,delay=1:in:4:2s"
	p, err := ParsePlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.String(); got != spec {
		t.Fatalf("String() = %q, want %q", got, spec)
	}
	faults := p.Faults()
	if len(faults) != 5 {
		t.Fatalf("got %d faults, want 5", len(faults))
	}
	if f := faults[4]; f.Action != Delay || f.Delay != 2*time.Second || f.Rank != 1 || f.Frame != 4 {
		t.Fatalf("delay fault parsed as %+v", f)
	}
}

func TestParsePlanRejects(t *testing.T) {
	for _, spec := range []string{
		"nonsense",
		"explode=1:in:3",
		"sever=1:sideways:3",
		"sever=1:in:0",
		"sever=1:in",
		"sever=-1:in:3",
		"delay=1:in:3",
		"delay=1:in:3:fast",
		"seed=many",
	} {
		if _, err := ParsePlan(spec); err == nil {
			t.Errorf("ParsePlan(%q) accepted", spec)
		}
	}
}

// TestPassThroughSplitChunks streams a hello plus two payload frames through
// a fault-free plan one byte at a time: every byte must come out unchanged,
// and the per-rank frame counters must see all three frames.
func TestPassThroughSplitChunks(t *testing.T) {
	plan := NewPlan(1)
	client, server := net.Pipe()
	wrapped := plan.Wrap(server)

	raw := hello(3)
	raw = append(raw, frame(9, bytes.Repeat([]byte{0xAB}, 100))...)
	raw = append(raw, frame(9, []byte{1, 2, 3})...)
	feed(client, raw, 1)

	got := readN(t, wrapped, len(raw))
	if !bytes.Equal(got, raw) {
		t.Fatal("fault-free wrapper altered the stream")
	}
	if n := plan.Frames(3, In); n != 3 {
		t.Fatalf("Frames(3, In) = %d, want 3", n)
	}
	if r := plan.Ranks(); len(r) != 1 || r[0] != 3 {
		t.Fatalf("Ranks() = %v, want [3]", r)
	}
	if plan.Fired() != 0 {
		t.Fatal("fault fired on a fault-free plan")
	}
}

// TestHeartbeatSkipsOrdinal interleaves a heartbeat between the hello and a
// payload frame: the heartbeat must pass through untouched and NOT advance
// the ordinal, so a fault on In frame 2 hits the payload frame.
func TestHeartbeatSkipsOrdinal(t *testing.T) {
	plan := NewPlan(1, Fault{Rank: 3, Dir: In, Frame: 2, Action: Sever})
	client, server := net.Pipe()
	wrapped := plan.Wrap(server)

	clean := append(hello(3), heartbeat()...)
	raw := append(append([]byte{}, clean...), frame(9, []byte{1, 2, 3})...)
	feed(client, raw, 5)

	got := readN(t, wrapped, len(clean))
	if !bytes.Equal(got, clean) {
		t.Fatal("hello+heartbeat were altered")
	}
	wrapped.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := wrapped.Read(make([]byte, 64)); err == nil {
		t.Fatal("read past the injected sever")
	}
	if plan.Fired() != 1 {
		t.Fatalf("Fired() = %d, want 1", plan.Fired())
	}
	if n := plan.Frames(3, In); n != 2 {
		t.Fatalf("Frames(3, In) = %d, want 2 (heartbeat must not count)", n)
	}
}

// TestSeverBeforeFirstByte pins that a severed frame leaks nothing: the
// previous frame arrives whole, the severed frame contributes zero bytes.
func TestSeverBeforeFirstByte(t *testing.T) {
	plan := NewPlan(1, Fault{Rank: 0, Dir: In, Frame: 2, Action: Sever})
	client, server := net.Pipe()
	wrapped := plan.Wrap(server)

	h := hello(0)
	feed(client, append(h, frame(9, []byte{4, 5, 6})...), 7)

	got := readN(t, wrapped, len(h))
	if !bytes.Equal(got, h) {
		t.Fatal("hello altered")
	}
	wrapped.SetReadDeadline(time.Now().Add(5 * time.Second))
	n, err := wrapped.Read(make([]byte, 64))
	if n != 0 || err == nil {
		t.Fatalf("severed frame leaked %d bytes, err=%v", n, err)
	}
}

// TestOneShotClaim replays the same frame sequence on a second wrapped
// connection, as a respawn does: the fault must not re-fire, and the global
// per-rank ordinal keeps counting across connections.
func TestOneShotClaim(t *testing.T) {
	plan := NewPlan(1, Fault{Rank: 1, Dir: In, Frame: 2, Action: Sever})

	run := func() error {
		client, server := net.Pipe()
		wrapped := plan.Wrap(server)
		defer wrapped.Close()
		raw := append(hello(1), frame(9, []byte{1})...)
		feed(client, raw, len(raw))
		wrapped.SetReadDeadline(time.Now().Add(5 * time.Second))
		_, err := io.ReadFull(wrapped, make([]byte, len(raw)))
		return err
	}

	if err := run(); err == nil {
		t.Fatal("first connection survived the sever")
	}
	if err := run(); err != nil {
		t.Fatalf("respawned connection hit the fault again: %v", err)
	}
	if plan.Fired() != 1 {
		t.Fatalf("Fired() = %d, want 1", plan.Fired())
	}
	if n := plan.Frames(1, In); n != 4 {
		t.Fatalf("Frames(1, In) = %d, want 4 (ordinals span connections)", n)
	}
}

// TestCorruptDeterministic pins Corrupt's contract: exactly one bit differs,
// never in the length prefix or kind byte, and the flipped position is a
// pure function of the plan seed.
func TestCorruptDeterministic(t *testing.T) {
	payload := bytes.Repeat([]byte{0x5A}, 200)
	run := func(seed int64) []byte {
		plan := NewPlan(seed, Fault{Rank: 1, Dir: In, Frame: 2, Action: Corrupt})
		client, server := net.Pipe()
		wrapped := plan.Wrap(server)
		raw := append(hello(1), frame(9, payload)...)
		feed(client, raw, 13)
		return readN(t, wrapped, len(raw))
	}

	raw := append(hello(1), frame(9, payload)...)
	a, b := run(42), run(42)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different corruption")
	}
	diff := 0
	pos := -1
	for i := range raw {
		if x := raw[i] ^ a[i]; x != 0 {
			diff++
			pos = i
			if x&(x-1) != 0 {
				t.Fatalf("byte %d has %08b flipped, want a single bit", i, x)
			}
		}
	}
	if diff != 1 {
		t.Fatalf("%d bytes differ, want exactly 1", diff)
	}
	frameStart := len(hello(1))
	if pos < frameStart+lenPrefix+1 {
		t.Fatalf("flip at offset %d corrupted the frame prologue", pos)
	}
}

// TestDropSwallowsFrame drops one frame: the connection stays open and the
// following frame arrives intact, with nothing of the dropped frame leaking.
func TestDropSwallowsFrame(t *testing.T) {
	plan := NewPlan(1, Fault{Rank: 1, Dir: In, Frame: 2, Action: Drop})
	client, server := net.Pipe()
	wrapped := plan.Wrap(server)

	h := hello(1)
	third := frame(9, []byte{7, 8, 9})
	raw := append(append(append([]byte{}, h...), frame(9, bytes.Repeat([]byte{1}, 50))...), third...)
	feed(client, raw, 11)

	got := readN(t, wrapped, len(h)+len(third))
	if !bytes.Equal(got[:len(h)], h) {
		t.Fatal("hello altered")
	}
	if !bytes.Equal(got[len(h):], third) {
		t.Fatal("frame after the dropped one did not arrive intact")
	}
	if plan.Frames(1, In); plan.Fired() != 1 {
		t.Fatalf("Fired() = %d, want 1", plan.Fired())
	}
}

// TestTruncateCutsMidFrame forwards part of the frame and then severs — the
// mid-write crash. The surviving prefix must be byte-exact.
func TestTruncateCutsMidFrame(t *testing.T) {
	plan := NewPlan(1, Fault{Rank: 1, Dir: In, Frame: 2, Action: Truncate})
	client, server := net.Pipe()
	wrapped := plan.Wrap(server)

	h := hello(1)
	f := frame(9, bytes.Repeat([]byte{0xCC}, 64))
	feed(client, append(append([]byte{}, h...), f...), 9)

	cut := (lenPrefix + 1 + len(f)) / 2
	got := readN(t, wrapped, len(h)+cut)
	if !bytes.Equal(got, append(append([]byte{}, h...), f[:cut]...)) {
		t.Fatal("truncated prefix not byte-exact")
	}
	wrapped.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := wrapped.Read(make([]byte, 64)); err == nil {
		t.Fatal("read past the truncation point")
	}
}

// TestDelayHonorsDeadline stalls a frame for longer than the caller's read
// deadline: the read must fail with a net.Error whose Timeout() is true, at
// roughly the deadline — exactly how a hung peer looks.
func TestDelayHonorsDeadline(t *testing.T) {
	plan := NewPlan(1, Fault{Rank: 1, Dir: In, Frame: 2, Action: Delay, Delay: 30 * time.Second})
	client, server := net.Pipe()
	wrapped := plan.Wrap(server)

	h := hello(1)
	feed(client, h, 64)
	if got := readN(t, wrapped, len(h)); !bytes.Equal(got, h) {
		t.Fatal("hello altered")
	}

	// Arm the short deadline before the stalled frame arrives, as the
	// supervisor's heartbeat-refreshed gather deadline would be.
	wrapped.SetReadDeadline(time.Now().Add(150 * time.Millisecond))
	feed(client, frame(9, []byte{1}), 64)
	begin := time.Now()
	_, err := wrapped.Read(make([]byte, 64))
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("err = %v, want a net.Error timeout", err)
	}
	if d := time.Since(begin); d > 5*time.Second {
		t.Fatalf("stalled %v despite a 150ms deadline", d)
	}
}

// TestOutDirection applies a fault to coordinator→worker traffic: the
// wrapped Write must sever before the targeted frame's bytes reach the peer.
func TestOutDirection(t *testing.T) {
	plan := NewPlan(1, Fault{Rank: 1, Dir: Out, Frame: 2, Action: Sever})
	client, server := net.Pipe()
	wrapped := plan.Wrap(server)

	// Identify the rank from the inbound hello first, as the coordinator does.
	feed(client, hello(1), 13)
	readN(t, wrapped, len(hello(1)))

	first := frame(2, []byte(`{}`))
	got := make(chan []byte, 1)
	go func() {
		client.SetReadDeadline(time.Now().Add(5 * time.Second))
		buf := make([]byte, len(first))
		if _, err := io.ReadFull(client, buf); err == nil {
			got <- buf
		}
		close(got)
	}()
	if _, err := wrapped.Write(first); err != nil {
		t.Fatalf("Out frame 1: %v", err)
	}
	if buf, ok := <-got; !ok || !bytes.Equal(buf, first) {
		t.Fatal("Out frame 1 did not arrive intact")
	}
	if _, err := wrapped.Write(frame(3, bytes.Repeat([]byte{2}, 40))); err == nil {
		t.Fatal("write survived the injected sever")
	}
	if plan.Fired() != 1 {
		t.Fatalf("Fired() = %d, want 1", plan.Fired())
	}
}

func TestNilPlanWrap(t *testing.T) {
	_, server := net.Pipe()
	var p *Plan
	if p.Wrap(server) != server {
		t.Fatal("nil plan should return the conn unchanged")
	}
}
