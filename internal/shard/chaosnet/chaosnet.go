// Package chaosnet injects deterministic network faults into the distributed
// trainer's TCP exchange, mirroring checkpoint.MemFS.Faults for the wire: a
// Plan names frames by ordinal on a specific rank's connection and a fault
// action (sever, corrupt, truncate, drop, delay), and Wrap turns an accepted
// coordinator-side net.Conn into one that executes the plan.
//
// The wrapper understands the shard framing — a little-endian uint64 body
// length, the body (first byte = frame kind), and a 4-byte CRC-32C trailer —
// and counts frames per connection and direction as they stream through, so
// "sever rank 1's third inbound frame" means the same bytes on every run.
// Liveness heartbeats (frame kind 7) pass through without advancing the
// ordinal: their timing is wall-clock-driven, so counting them would make
// plans nondeterministic. A connection's rank is learned from its own first
// inbound frame (the hello), which the wrapper holds back until the rank is
// parsed — so even the hello itself is addressable by rank. Faults are
// one-shot: a claimed fault never re-fires, so the respawned connection that
// replaces a severed one runs clean instead of dying in a loop.
package chaosnet

import (
	"encoding/binary"
	"fmt"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Wire framing constants, kept in sync with internal/shard's protocol.
const (
	lenPrefix      = 8 // little-endian uint64 body length
	crcTrailer     = 4 // CRC-32C of the body
	kindHello      = 1 // first inbound frame; body = kind + uint32 rank
	kindHeartbeat  = 7 // liveness frame; never advances the frame ordinal
	helloBodyLen   = 5 // kind byte + 4-byte rank
	helloWireBytes = lenPrefix + helloBodyLen
)

// Dir is the direction of a frame relative to the coordinator.
type Dir uint8

const (
	// In is worker → coordinator traffic (hellos, factor shards, errors).
	In Dir = iota
	// Out is coordinator → worker traffic (config, seeds, broadcasts).
	Out
)

func (d Dir) String() string {
	if d == In {
		return "in"
	}
	return "out"
}

// Action is what happens to the targeted frame.
type Action uint8

const (
	// Sever closes the connection at the frame boundary, before any of the
	// frame's bytes pass — the abrupt-death case (kill -9, network cut).
	Sever Action = iota
	// Corrupt flips one deterministically-chosen payload bit, so the frame
	// arrives well-formed but fails its CRC — the silent-corruption case.
	Corrupt
	// Truncate forwards roughly half the frame and then closes — the
	// mid-write crash case.
	Truncate
	// Drop swallows the whole frame but keeps the connection open — the
	// lost-message case, detectable only by a deadline.
	Drop
	// Delay stalls the frame's first byte for the configured duration — the
	// hung-worker case, detectable by missed heartbeats.
	Delay
)

func (a Action) String() string {
	switch a {
	case Sever:
		return "sever"
	case Corrupt:
		return "corrupt"
	case Truncate:
		return "trunc"
	case Drop:
		return "drop"
	case Delay:
		return "delay"
	}
	return "action" + strconv.Itoa(int(a))
}

// Fault targets one frame of one rank's connection. Frame ordinals are
// 1-based and count non-heartbeat frames per direction, so In frame 1 is the
// hello and Out frame 1 is the config.
type Fault struct {
	Rank   int
	Dir    Dir
	Frame  int
	Action Action
	Delay  time.Duration // Delay action only
}

func (f Fault) String() string {
	s := fmt.Sprintf("%s=%d:%s:%d", f.Action, f.Rank, f.Dir, f.Frame)
	if f.Action == Delay {
		s += ":" + f.Delay.String()
	}
	return s
}

// Plan is a deterministic fault schedule shared by every connection the
// coordinator wraps. The zero Plan injects nothing but still counts frames,
// which is how tests enumerate the frame space before sweeping it.
type Plan struct {
	Seed int64

	mu       sync.Mutex
	faults   []*armedFault
	observed map[obsKey]int
	fired    int
}

type armedFault struct {
	Fault
	fired bool
}

type obsKey struct {
	rank int
	dir  Dir
}

// NewPlan builds a plan from a seed (feeding Corrupt's bit choice) and a
// fault list.
func NewPlan(seed int64, faults ...Fault) *Plan {
	p := &Plan{Seed: seed, observed: map[obsKey]int{}}
	for _, f := range faults {
		p.faults = append(p.faults, &armedFault{Fault: f})
	}
	return p
}

// ParsePlan parses the -net-chaos flag syntax: comma-separated
// action=rank:dir:frame entries (dir "in" or "out", frame 1-based), a
// delay entry carrying a trailing duration, and an optional seed=N.
//
//	sever=1:in:3,corrupt=0:out:2,delay=1:in:4:2s,seed=7
func ParsePlan(spec string) (*Plan, error) {
	p := NewPlan(1, nil...)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("chaosnet: %q is not key=value", part)
		}
		if key == "seed" {
			seed, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("chaosnet: bad seed %q: %v", val, err)
			}
			p.Seed = seed
			continue
		}
		var action Action
		switch key {
		case "sever":
			action = Sever
		case "corrupt":
			action = Corrupt
		case "trunc", "truncate":
			action = Truncate
		case "drop":
			action = Drop
		case "delay":
			action = Delay
		default:
			return nil, fmt.Errorf("chaosnet: unknown fault %q (want sever/corrupt/trunc/drop/delay/seed)", key)
		}
		fields := strings.Split(val, ":")
		want := 3
		if action == Delay {
			want = 4
		}
		if len(fields) != want {
			return nil, fmt.Errorf("chaosnet: %s wants %d colon-separated fields, got %q", key, want, val)
		}
		rank, err := strconv.Atoi(fields[0])
		if err != nil || rank < 0 {
			return nil, fmt.Errorf("chaosnet: bad rank %q", fields[0])
		}
		var dir Dir
		switch fields[1] {
		case "in":
			dir = In
		case "out":
			dir = Out
		default:
			return nil, fmt.Errorf("chaosnet: bad direction %q (want in/out)", fields[1])
		}
		frame, err := strconv.Atoi(fields[2])
		if err != nil || frame < 1 {
			return nil, fmt.Errorf("chaosnet: bad frame ordinal %q (1-based)", fields[2])
		}
		f := Fault{Rank: rank, Dir: dir, Frame: frame, Action: action}
		if action == Delay {
			d, err := time.ParseDuration(fields[3])
			if err != nil || d <= 0 {
				return nil, fmt.Errorf("chaosnet: bad delay %q", fields[3])
			}
			f.Delay = d
		}
		p.faults = append(p.faults, &armedFault{Fault: f})
	}
	return p, nil
}

// String renders the plan in ParsePlan syntax.
func (p *Plan) String() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	parts := []string{"seed=" + strconv.FormatInt(p.Seed, 10)}
	for _, f := range p.faults {
		parts = append(parts, f.Fault.String())
	}
	return strings.Join(parts, ",")
}

// Faults returns a copy of the plan's fault list.
func (p *Plan) Faults() []Fault {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Fault, len(p.faults))
	for i, f := range p.faults {
		out[i] = f.Fault
	}
	return out
}

// Fired reports how many faults have been claimed so far.
func (p *Plan) Fired() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.fired
}

// Frames reports how many non-heartbeat frames have streamed through wrapped
// connections of the given rank and direction — the sweep enumerator.
func (p *Plan) Frames(rank int, d Dir) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.observed[obsKey{rank, d}]
}

// Ranks lists the ranks observed so far, sorted.
func (p *Plan) Ranks() []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	seen := map[int]bool{}
	for k := range p.observed {
		seen[k.rank] = true
	}
	var out []int
	for r := range seen {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}

func (p *Plan) observe(rank int, d Dir) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.observed[obsKey{rank, d}]++
	return p.observed[obsKey{rank, d}]
}

// claim returns the fault targeting (rank, dir, frame), at most once ever.
func (p *Plan) claim(rank int, d Dir, frame int) *Fault {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, f := range p.faults {
		if !f.fired && f.Rank == rank && f.Dir == d && f.Frame == frame {
			f.fired = true
			p.fired++
			fc := f.Fault
			return &fc
		}
	}
	return nil
}

// Wrap returns c with the plan applied. Call it on each connection the
// coordinator accepts; the wrapper identifies the peer's rank from the hello
// frame it relays. A nil plan returns c unchanged.
func (p *Plan) Wrap(c net.Conn) net.Conn {
	if p == nil {
		return c
	}
	cc := &conn{Conn: c, plan: p, rscratch: make([]byte, 32<<10)}
	cc.rank.Store(rankUnknown)
	cc.rd.dir = In
	cc.rd.reset()
	cc.wr.dir = Out
	cc.wr.reset()
	return cc
}

const (
	rankUnknown int32 = -2 // hello not yet parsed
	rankNone    int32 = -1 // first frame was not a well-formed hello
)

// errSevered is what reads and writes return once an injected sever fires;
// the underlying connection is closed, so the peer fails too.
var errSevered = fmt.Errorf("chaosnet: connection severed (injected)")

// timeoutError is returned when an injected delay outlasts the caller's
// deadline; it satisfies net.Error.Timeout() like a real deadline miss.
type timeoutError struct{}

func (timeoutError) Error() string   { return "chaosnet: injected stall: i/o timeout" }
func (timeoutError) Timeout() bool   { return true }
func (timeoutError) Temporary() bool { return true }

// conn is one wrapped connection: an independent frame-parsing state machine
// per direction, transformed-read leftovers, and deadline mirrors so an
// injected delay can honor SetReadDeadline the way a real stall would.
type conn struct {
	net.Conn
	plan *Plan
	rank atomic.Int32

	rmu      sync.Mutex
	rd       dirState
	rq       []byte // transformed bytes awaiting delivery
	rerr     error  // sticky error delivered after rq drains
	rscratch []byte

	wmu sync.Mutex
	wr  dirState

	rdl atomic.Int64 // read deadline, unix nanos (0 = none)
	wdl atomic.Int64

	closed atomic.Bool
}

// dirState parses one direction's frame stream incrementally — length
// prefixes and prologues may be split across arbitrarily small Read/Write
// calls — and carries the active fault's per-frame effects.
type dirState struct {
	dir     Dir
	frame   int    // non-heartbeat ordinal, 1-based once inFrame
	held    []byte // prologue bytes withheld until the frame is classified
	inFrame bool
	kind    byte
	total   int // wire bytes of the current frame: 8 + bodyLen + 4
	pos     int // bytes of the current frame already emitted or consumed

	drop    bool
	cutAt   int // sever once pos reaches this offset (-1 = none)
	flipAt  int // flip flipBit at this wire offset (-1 = none)
	flipBit uint8
}

func (d *dirState) reset() {
	d.inFrame = false
	d.held = d.held[:0]
	d.kind = 0
	d.total = 0
	d.pos = 0
	d.drop = false
	d.cutAt = -1
	d.flipAt = -1
}

// process feeds raw stream bytes through the direction's state machine,
// appending the (possibly transformed) output to out. It returns errSevered
// when an injected sever or truncate closes the connection mid-chunk; bytes
// already appended to out are still valid and must be delivered first. An
// injected delay that outlasts the caller's deadline returns a timeout error
// mid-frame; re-entry resumes with the withheld prologue, never
// reclassifying (so frame ordinals and one-shot faults stay exact).
func (c *conn) process(d *dirState, in, out []byte) ([]byte, error) {
	for {
		if d.inFrame {
			// Flush any prologue withheld across a stall before touching in.
			if len(d.held) > 0 {
				var err error
				out, err = c.emit(d, d.held, out)
				d.held = d.held[:0]
				if err != nil {
					return out, err
				}
				if d.pos == d.total {
					d.reset()
				}
				continue
			}
			if len(in) == 0 {
				return out, nil
			}
			n := d.total - d.pos
			if n > len(in) {
				n = len(in)
			}
			var err error
			out, err = c.emit(d, in[:n], out)
			in = in[n:]
			if err != nil {
				return out, err
			}
			if d.pos == d.total {
				d.reset()
			}
			continue
		}
		if len(in) == 0 {
			return out, nil
		}
		// Accumulate the prologue: 9 bytes classify the frame; the
		// connection's first inbound frame needs 13 so the hello's rank can
		// arm rank-targeted faults before any byte is released.
		need := lenPrefix + 1
		if d.dir == In && c.rank.Load() == rankUnknown {
			need = lenPrefix + helloBodyLen
		}
		take := need - len(d.held)
		if take > len(in) {
			take = len(in)
		}
		d.held = append(d.held, in[:take]...)
		in = in[take:]
		if len(d.held) < need {
			return out, nil // mid-prologue; wait for more bytes
		}
		bodyLen := binary.LittleEndian.Uint64(d.held[:lenPrefix])
		kind := d.held[lenPrefix]
		if d.dir == In && c.rank.Load() == rankUnknown {
			if kind == kindHello && bodyLen == helloBodyLen {
				c.rank.Store(int32(binary.LittleEndian.Uint32(d.held[lenPrefix+1:])))
			} else {
				c.rank.Store(rankNone)
			}
		}
		d.inFrame = true
		d.kind = kind
		d.total = lenPrefix + int(bodyLen) + crcTrailer
		d.pos = 0
		if kind != kindHeartbeat {
			d.frame = c.plan.observe(int(c.rank.Load()), d.dir)
			if f := c.plan.claim(int(c.rank.Load()), d.dir, d.frame); f != nil {
				switch f.Action {
				case Sever:
					c.sever()
					return out, errSevered
				case Delay:
					if err := c.stall(d.dir, f.Delay); err != nil {
						return out, err
					}
				case Drop:
					d.drop = true
				case Corrupt:
					// Flip one bit somewhere in body-after-kind or the CRC
					// trailer: either way the checksum cannot match.
					span := d.total - (lenPrefix + 1)
					h := mix(uint64(c.plan.Seed) ^ mix(uint64(f.Rank)<<32|uint64(f.Frame)<<8|uint64(f.Dir)))
					d.flipAt = lenPrefix + 1 + int(h>>8)%span
					d.flipBit = uint8(1) << (h & 7)
				case Truncate:
					d.cutAt = (lenPrefix + 1 + d.total) / 2
				}
			}
		}
	}
}

// emit applies the active frame's drop/corrupt/truncate effects to a run of
// its bytes. Input is never mutated: corrupted bytes are flipped in the
// appended copy, which keeps the io.Writer contract for the Write path.
func (c *conn) emit(d *dirState, b []byte, out []byte) ([]byte, error) {
	if d.cutAt >= 0 && d.pos+len(b) > d.cutAt {
		keep := d.cutAt - d.pos
		if keep > 0 {
			out = append(out, b[:keep]...)
			d.pos += keep
		}
		c.sever()
		return out, errSevered
	}
	if !d.drop {
		start := len(out)
		out = append(out, b...)
		if d.flipAt >= d.pos && d.flipAt < d.pos+len(b) {
			out[start+d.flipAt-d.pos] ^= d.flipBit
		}
	}
	d.pos += len(b)
	return out, nil
}

func (c *conn) sever() {
	if c.closed.CompareAndSwap(false, true) {
		c.Conn.Close()
	}
}

// stall sleeps for the injected delay, but never past the direction's
// mirrored deadline: if the deadline lands first it returns a Timeout()
// error, exactly as a genuinely hung peer would look to the caller.
func (c *conn) stall(d Dir, delay time.Duration) error {
	dl := c.rdl.Load()
	if d == Out {
		dl = c.wdl.Load()
	}
	until := time.Now().Add(delay)
	if dl != 0 {
		deadline := time.Unix(0, dl)
		if deadline.Before(until) {
			time.Sleep(time.Until(deadline))
			return timeoutError{}
		}
	}
	time.Sleep(delay)
	return nil
}

func (c *conn) Read(p []byte) (int, error) {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	for len(c.rq) == 0 {
		if c.rerr != nil {
			return 0, c.rerr
		}
		n, err := c.Conn.Read(c.rscratch)
		if n > 0 {
			out, perr := c.process(&c.rd, c.rscratch[:n], c.rq[:0])
			c.rq = out
			if perr != nil {
				c.rerr = perr
			}
		}
		if err != nil && len(c.rq) == 0 {
			return 0, err
		}
		if err != nil {
			c.rerr = err
		}
	}
	n := copy(p, c.rq)
	rest := copy(c.rq, c.rq[n:])
	c.rq = c.rq[:rest]
	return n, nil
}

func (c *conn) Write(p []byte) (int, error) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	out, perr := c.process(&c.wr, p, nil)
	if len(out) > 0 {
		if _, err := c.Conn.Write(out); err != nil {
			return 0, err
		}
	}
	if perr != nil {
		return 0, perr
	}
	return len(p), nil
}

func (c *conn) Close() error {
	c.closed.Store(true)
	return c.Conn.Close()
}

func (c *conn) SetDeadline(t time.Time) error {
	c.rdl.Store(nanosOf(t))
	c.wdl.Store(nanosOf(t))
	return c.Conn.SetDeadline(t)
}

func (c *conn) SetReadDeadline(t time.Time) error {
	c.rdl.Store(nanosOf(t))
	return c.Conn.SetReadDeadline(t)
}

func (c *conn) SetWriteDeadline(t time.Time) error {
	c.wdl.Store(nanosOf(t))
	return c.Conn.SetWriteDeadline(t)
}

func nanosOf(t time.Time) int64 {
	if t.IsZero() {
		return 0
	}
	return t.UnixNano()
}

// mix is splitmix64's finalizer — a cheap, seed-stable hash for picking the
// corrupted bit.
func mix(v uint64) uint64 {
	v += 0x9e3779b97f4a7c15
	v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9
	v = (v ^ (v >> 27)) * 0x94d049bb133111eb
	return v ^ (v >> 31)
}
