package shard

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/linalg"
)

// Range returns the half-open row range [lo, hi) that shard i of `of`
// owns in a catalog of total rows. The same arithmetic partitions item
// factors across serving replicas and user rows across trainer workers, so
// every component agrees on ownership without coordination.
func Range(total, i, of int) (lo, hi int) {
	return i * total / of, (i + 1) * total / of
}

// ParseSpec parses a "-shard i/N" specification.
func ParseSpec(s string) (i, of int, err error) {
	idx, count, ok := strings.Cut(s, "/")
	if ok {
		i, err = strconv.Atoi(strings.TrimSpace(idx))
		if err == nil {
			of, err = strconv.Atoi(strings.TrimSpace(count))
		}
	}
	if !ok || err != nil || of < 1 || i < 0 || i >= of {
		return 0, 0, fmt.Errorf("shard: spec %q is not i/N with 0 <= i < N", s)
	}
	return i, of, nil
}

// SliceModel returns shard i's zero-copy view of a full model: the item
// factors (and item ID labels) restricted to the shard's range, the user
// factors shared, and the metadata copied. It reports the slice's global
// item offset and the full catalog size.
func SliceModel(m *core.Model, i, of int) (view *core.Model, itemOffset, itemTotal int) {
	total := m.Y.Rows
	lo, hi := Range(total, i, of)
	view = &core.Model{
		K:       m.K,
		X:       m.X,
		Y:       linalg.NewDenseFrom(hi-lo, m.K, m.Y.Data[lo*m.K:hi*m.K]),
		UserIDs: m.UserIDs,
		Meta:    m.Meta,
	}
	if m.ItemIDs != nil {
		view.ItemIDs = m.ItemIDs[lo:hi]
	}
	if m.QY != nil {
		// A compressed checkpoint's quantized factors slice zero-copy too,
		// so every replica shares one encoding of the catalog.
		view.QY = m.QY.Slice(lo, hi)
	}
	return view, lo, total
}
