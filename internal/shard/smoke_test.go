package shard_test

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestDistSmoke is the distributed end-to-end check the `make dist-smoke`
// CI lane runs, entirely through the real binaries: train a tiny preset
// single-process and with -workers 2 and require bit-identical model
// files, then stand up two alsserve shard replicas and an alsfront
// frontend, serve a merged recommendation, hold the frontend's /metrics to
// the strict exposition parser, and tear everything down (the processes
// are killed by deferred stops even when an assertion fails, so a broken
// run leaves no orphans).
func TestDistSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the alstrain/alsserve/alsfront binaries")
	}
	dir := t.TempDir()
	bins := map[string]string{}
	for _, name := range []string{"alstrain", "alsserve", "alsfront"} {
		bin := filepath.Join(dir, name)
		build := exec.Command("go", "build", "-o", bin, "repro/cmd/"+name)
		if out, err := build.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, out)
		}
		bins[name] = bin
	}

	// Distributed training must be byte-identical to single-process.
	single := filepath.Join(dir, "single.model")
	dist := filepath.Join(dir, "dist.model")
	trainArgs := []string{"-preset", "YMR4", "-scale", "0.02", "-iters", "2",
		"-k", "6", "-test-frac", "0", "-seed", "11"}
	for _, run := range [][]string{
		append(trainArgs[:len(trainArgs):len(trainArgs)], "-out", single),
		append(trainArgs[:len(trainArgs):len(trainArgs)], "-workers", "2", "-out", dist),
	} {
		cmd := exec.Command(bins["alstrain"], run...)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("alstrain %v: %v\n%s", run, err, out)
		}
	}
	a, err := os.ReadFile(single)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(dist)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("-workers 2 model differs from single-process (%d vs %d bytes)", len(b), len(a))
	}

	// Two shard replicas on ephemeral ports.
	var shardURLs []string
	for i := 0; i < 2; i++ {
		addr := startServer(t, bins["alsserve"],
			[]string{"-model", single, "-shard", fmt.Sprintf("%d/2", i), "-addr", "127.0.0.1:0"},
			"alsserve: listening on ")
		shardURLs = append(shardURLs, "http://"+addr)
	}

	frontAddr := startServer(t, bins["alsfront"],
		[]string{"-shards", strings.Join(shardURLs, ","), "-addr", "127.0.0.1:0",
			"-probe-interval", "100ms"},
		"alsfront: listening on ")
	frontURL := "http://" + frontAddr

	// Wait for the prober to mark both shards up.
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get(frontURL + "/readyz")
		if err == nil {
			code := resp.StatusCode
			resp.Body.Close()
			if code == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("frontend never became ready")
		}
		time.Sleep(100 * time.Millisecond)
	}

	resp, err := http.Get(frontURL + "/v1/recommend?user=1&n=5")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recommend through the fleet: HTTP %d: %s", resp.StatusCode, body)
	}
	if !bytes.Contains(body, []byte(`"items":[{`)) || bytes.Contains(body, []byte(`"partial":true`)) {
		t.Fatalf("recommend response not a full merged top-N: %s", body)
	}

	mresp, err := http.Get(frontURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	raw, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := obs.ValidateExposition(bytes.NewReader(raw)); err != nil {
		t.Fatalf("frontend exposition invalid: %v\n%s", err, raw)
	} else if n == 0 {
		t.Fatal("frontend exposition empty")
	}
	for _, want := range []string{"als_shard_partial_total", "als_front_requests_total", "als_front_shard_up"} {
		if !bytes.Contains(raw, []byte(want)) {
			t.Fatalf("frontend exposition lacks %s:\n%s", want, raw)
		}
	}
}

// startServer launches a server binary, waits for its "listening on" line,
// and returns the bound address. The process is killed on test cleanup —
// including failures — so the smoke lane cannot leak orphans.
func startServer(t *testing.T, bin string, args []string, listenPrefix string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})

	lines := make(chan string, 16)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	deadline := time.After(15 * time.Second)
	for {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatalf("%s exited before announcing its address", bin)
			}
			if rest, found := strings.CutPrefix(line, listenPrefix); found {
				addr := strings.Fields(rest)[0]
				addr = strings.TrimSuffix(addr, ",")
				go func() {
					for range lines {
					}
				}()
				return addr
			}
		case <-deadline:
			t.Fatalf("%s never announced its address", bin)
		}
	}
}
