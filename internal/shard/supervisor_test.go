package shard

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/shard/chaosnet"
)

// sweepSpec is the shared tiny workload for the chaos tests: small enough
// that a full kill-at-every-frame sweep stays in test-suite territory, real
// enough that every frame kind and boundary occurs.
var sweepSpec = DataSpec{Preset: "YMR4", Scale: 0.02, Seed: 5, TestFrac: 0}

const (
	sweepK      = 6
	sweepIters  = 3
	sweepLambda = 0.07
)

func sweepRef(t *testing.T) *core.Model {
	t.Helper()
	mx, err := sweepSpec.Load()
	if err != nil {
		t.Fatal(err)
	}
	ref, _, err := core.Train(mx, core.Config{
		Platform: "host", K: sweepK, Lambda: sweepLambda, Iterations: sweepIters,
		Seed: sweepSpec.Seed, UseRecommended: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ref
}

func sweepConfig(workers int, plan *chaosnet.Plan) TrainerConfig {
	return TrainerConfig{
		Workers: workers, K: sweepK, Lambda: sweepLambda, Iterations: sweepIters,
		Seed: sweepSpec.Seed, UseRecommended: true, Data: sweepSpec,
		NetChaos: plan,
		// Failure detection in these tests rides on connection errors, not
		// wall-clock timeouts; keep the clock-driven limits far away so a
		// slow CI machine cannot trip them.
		HeartbeatInterval: 100 * time.Millisecond,
		HeartbeatTimeout:  30 * time.Second,
		RoundTimeout:      2 * time.Minute,
		SpawnTimeout:      2 * time.Minute,
	}
}

// TestKillAtEveryFrameSweep is the acceptance sweep: a 2-worker, 3-iteration
// run exchanges 7 frames in each direction per rank (hello + 6 shards up;
// config + 6 broadcasts down). Severing the connection at every one of those
// boundaries, for both ranks, must still produce factors byte-identical to
// the clean single-process run — via respawn when the budget allows it, via
// elastic downscale when it does not (safe because worker count does not
// change the bits).
func TestKillAtEveryFrameSweep(t *testing.T) {
	mx, err := sweepSpec.Load()
	if err != nil {
		t.Fatal(err)
	}
	ref := sweepRef(t)
	const workers = 2

	// Enumerate the frame space with a fault-free counting plan.
	count := chaosnet.NewPlan(1)
	if _, _, err := Train(mx, sweepConfig(workers, count)); err != nil {
		t.Fatal(err)
	}
	inFrames, outFrames := count.Frames(1, chaosnet.In), count.Frames(1, chaosnet.Out)
	wantFrames := 1 + 2*sweepIters // hello/config + one frame per half
	if inFrames != wantFrames || outFrames != wantFrames {
		t.Fatalf("counting run saw %d in / %d out frames, want %d each", inFrames, outFrames, wantFrames)
	}

	for _, mode := range []struct {
		name        string
		maxRespawns int
	}{
		{"respawn", 0},    // default budget: the severed rank is respawned
		{"downscale", -1}, // no budget: the cohort shrinks to the survivor
	} {
		for rank := 0; rank < workers; rank++ {
			for _, dir := range []chaosnet.Dir{chaosnet.In, chaosnet.Out} {
				frames := inFrames
				if dir == chaosnet.Out {
					frames = outFrames
				}
				for frame := 1; frame <= frames; frame++ {
					name := fmt.Sprintf("%s/rank%d/%s/frame%d", mode.name, rank, dir, frame)
					plan := chaosnet.NewPlan(int64(frame),
						chaosnet.Fault{Rank: rank, Dir: dir, Frame: frame, Action: chaosnet.Sever})
					cfg := sweepConfig(workers, plan)
					cfg.MaxRespawns = mode.maxRespawns
					m, info, err := Train(mx, cfg)
					if err != nil {
						t.Fatalf("%s: %v", name, err)
					}
					if plan.Fired() != 1 {
						t.Fatalf("%s: fault did not fire", name)
					}
					if info.Failures < 1 {
						t.Errorf("%s: no failure recorded", name)
					}
					if mode.maxRespawns < 0 && info.Respawns != 0 {
						t.Errorf("%s: %d respawns in downscale mode", name, info.Respawns)
					}
					bitsEqual(t, name+" X", m.X, ref.X)
					bitsEqual(t, name+" Y", m.Y, ref.Y)
				}
			}
		}
	}
}

// TestElasticDownscaleBitIdentity pins the downscale outcome explicitly: a
// 3-worker run that loses a rank with respawning disabled finishes on 2
// workers, bit-identical to the clean run (at any worker count).
func TestElasticDownscaleBitIdentity(t *testing.T) {
	mx, err := sweepSpec.Load()
	if err != nil {
		t.Fatal(err)
	}
	ref := sweepRef(t)
	plan := chaosnet.NewPlan(3,
		chaosnet.Fault{Rank: 2, Dir: chaosnet.In, Frame: 3, Action: chaosnet.Sever})
	cfg := sweepConfig(3, plan)
	cfg.MaxRespawns = -1
	m, info, err := Train(mx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if info.Downscales != 1 || info.FinalWorkers != 2 {
		t.Fatalf("downscales=%d finalWorkers=%d, want 1 and 2", info.Downscales, info.FinalWorkers)
	}
	bitsEqual(t, "X", m.X, ref.X)
	bitsEqual(t, "Y", m.Y, ref.Y)
}

// TestCorruptFrameTyped injects a single bit flip into a worker's shard
// frame: the CRC trailer must reject it as a typed corrupt-frame failure
// (never a silently wrong model), the rank must be respawned, and the final
// factors must still match the clean run exactly. A corrupted *broadcast*
// kills the receiving worker instead; the supervisor notices at the next
// gather and recovery still converges.
func TestCorruptFrameTyped(t *testing.T) {
	mx, err := sweepSpec.Load()
	if err != nil {
		t.Fatal(err)
	}
	ref := sweepRef(t)

	plan := chaosnet.NewPlan(11,
		chaosnet.Fault{Rank: 1, Dir: chaosnet.In, Frame: 2, Action: chaosnet.Corrupt})
	reg := obs.NewRegistry()
	cfg := sweepConfig(2, plan)
	cfg.Registry = reg
	m, info, err := Train(mx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if info.Failures < 1 || info.Respawns < 1 {
		t.Fatalf("failures=%d respawns=%d, want >=1 each", info.Failures, info.Respawns)
	}
	bitsEqual(t, "X", m.X, ref.X)
	bitsEqual(t, "Y", m.Y, ref.Y)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if _, err := obs.ValidateExposition(strings.NewReader(text)); err != nil {
		t.Fatalf("exposition does not validate: %v", err)
	}
	for _, want := range []string{
		`als_dist_worker_failures_total{reason="corrupt"} 1`,
		`als_dist_respawns_total 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition lacks %q in:\n%s", want, text)
		}
	}

	// Broadcast corruption: the worker rejects the frame and dies; the next
	// gather detects the loss and recovery still lands on the same bits.
	plan = chaosnet.NewPlan(12,
		chaosnet.Fault{Rank: 0, Dir: chaosnet.Out, Frame: 2, Action: chaosnet.Corrupt})
	m, info, err = Train(mx, sweepConfig(2, plan))
	if err != nil {
		t.Fatal(err)
	}
	if info.Failures < 1 {
		t.Fatal("broadcast corruption went unnoticed")
	}
	bitsEqual(t, "bcast X", m.X, ref.X)
	bitsEqual(t, "bcast Y", m.Y, ref.Y)
}

// TestHungWorkerDetected stalls a worker's shard mid-flight for longer than
// the heartbeat timeout: the supervisor must classify the silence as a hang
// within seconds (not the 10-minute exchange timeout), respawn the rank, and
// finish bit-identical. A short stall, well inside the heartbeat timeout,
// must be tolerated with no failures at all.
func TestHungWorkerDetected(t *testing.T) {
	mx, err := sweepSpec.Load()
	if err != nil {
		t.Fatal(err)
	}
	ref := sweepRef(t)

	plan := chaosnet.NewPlan(21,
		chaosnet.Fault{Rank: 1, Dir: chaosnet.In, Frame: 2, Action: chaosnet.Delay, Delay: 30 * time.Second})
	reg := obs.NewRegistry()
	cfg := sweepConfig(2, plan)
	cfg.HeartbeatInterval = 20 * time.Millisecond
	cfg.HeartbeatTimeout = 250 * time.Millisecond
	cfg.Registry = reg
	begin := time.Now()
	m, info, err := Train(mx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d := time.Since(begin); d > 10*time.Second {
		t.Fatalf("hang detection took %v", d)
	}
	if info.Respawns < 1 {
		t.Fatalf("respawns=%d, want >=1", info.Respawns)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `als_dist_worker_failures_total{reason="hang"} 1`) {
		t.Errorf("exposition lacks the hang failure:\n%s", buf.String())
	}
	bitsEqual(t, "X", m.X, ref.X)
	bitsEqual(t, "Y", m.Y, ref.Y)

	// A stall shorter than the heartbeat timeout is just a slow network.
	plan = chaosnet.NewPlan(22,
		chaosnet.Fault{Rank: 1, Dir: chaosnet.In, Frame: 2, Action: chaosnet.Delay, Delay: 50 * time.Millisecond})
	cfg = sweepConfig(2, plan)
	cfg.HeartbeatInterval = 20 * time.Millisecond
	cfg.HeartbeatTimeout = 2 * time.Second
	m, info, err = Train(mx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if info.Failures != 0 || info.Respawns != 0 {
		t.Fatalf("tolerable stall caused failures=%d respawns=%d", info.Failures, info.Respawns)
	}
	bitsEqual(t, "slow X", m.X, ref.X)
	bitsEqual(t, "slow Y", m.Y, ref.Y)
}

// TestDroppedFrameRoundDeadline swallows a shard frame entirely: the worker
// keeps heartbeating (so liveness never fires) but the round deadline must
// catch the lost exchange, count it, and recover to the exact clean-run
// factors.
func TestDroppedFrameRoundDeadline(t *testing.T) {
	mx, err := sweepSpec.Load()
	if err != nil {
		t.Fatal(err)
	}
	ref := sweepRef(t)
	plan := chaosnet.NewPlan(31,
		chaosnet.Fault{Rank: 1, Dir: chaosnet.In, Frame: 2, Action: chaosnet.Drop})
	reg := obs.NewRegistry()
	cfg := sweepConfig(2, plan)
	cfg.HeartbeatInterval = 20 * time.Millisecond
	cfg.HeartbeatTimeout = 5 * time.Second
	cfg.RoundTimeout = 700 * time.Millisecond
	cfg.Registry = reg
	m, info, err := Train(mx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if info.Respawns < 1 {
		t.Fatalf("respawns=%d, want >=1", info.Respawns)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`als_dist_worker_failures_total{reason="round-deadline"} 1`,
		`als_dist_round_deadline_exceeded_total 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition lacks %q in:\n%s", want, text)
		}
	}
	bitsEqual(t, "X", m.X, ref.X)
	bitsEqual(t, "Y", m.Y, ref.Y)
}

// TestAllWorkersLost pins the terminal case: a failure every cohort hits
// deterministically (the workers cannot load their dataset) burns the
// respawn budget, downscales to nothing, and surfaces the workers' own
// error instead of hanging or succeeding vacuously.
func TestAllWorkersLost(t *testing.T) {
	mx, err := sweepSpec.Load()
	if err != nil {
		t.Fatal(err)
	}
	cfg := sweepConfig(2, nil)
	cfg.Data = DataSpec{Input: "/nonexistent/ratings.csv"}
	cfg.MaxRespawns = 2
	_, _, err = Train(mx, cfg)
	if err == nil {
		t.Fatal("run with unloadable worker data succeeded")
	}
	if !strings.Contains(err.Error(), "all workers lost") {
		t.Fatalf("error %q does not name the terminal condition", err)
	}
}

// TestTrainerInterrupt closes the Interrupt channel before training: the run
// must stop at the first iteration boundary with ErrInterrupted and a
// checkpoint on disk, and a -resume run must finish with the clean-run bits.
func TestTrainerInterrupt(t *testing.T) {
	mx, err := sweepSpec.Load()
	if err != nil {
		t.Fatal(err)
	}
	ref := sweepRef(t)
	dir := t.TempDir()

	ch := make(chan struct{})
	close(ch)
	cfg := sweepConfig(2, nil)
	cfg.CheckpointDir = dir
	cfg.Interrupt = ch
	_, info, err := Train(mx, cfg)
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	if info == nil || info.FinalWorkers == 0 {
		t.Fatal("interrupted run returned no info")
	}
	st, _, err := checkpoint.LoadLatest(checkpoint.OS, dir)
	if err != nil {
		t.Fatalf("no checkpoint after interrupt: %v", err)
	}
	if st.Iteration != 1 {
		t.Fatalf("checkpoint at iteration %d, want 1", st.Iteration)
	}

	cfg = sweepConfig(2, nil)
	cfg.CheckpointDir = dir
	cfg.Resume = true
	m, info, err := Train(mx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if info.ResumedFrom != 1 {
		t.Fatalf("resumed from %d, want 1", info.ResumedFrom)
	}
	bitsEqual(t, "X", m.X, ref.X)
	bitsEqual(t, "Y", m.Y, ref.Y)
}
