package shard

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/linalg"
)

func bitsEqual(t *testing.T, label string, got, want *linalg.Dense) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: %dx%d, want %dx%d", label, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range want.Data {
		if math.Float32bits(got.Data[i]) != math.Float32bits(want.Data[i]) {
			t.Fatalf("%s: element %d = %x, want %x (first bit difference)",
				label, i, math.Float32bits(got.Data[i]), math.Float32bits(want.Data[i]))
		}
	}
}

// TestDistributedBitIdentity pins the tentpole guarantee: a -workers 2..4
// run produces factors byte-identical to a single-process train with the
// same flags. Workers run in-process here; the exec path is covered by the
// dist-smoke lane.
func TestDistributedBitIdentity(t *testing.T) {
	spec := DataSpec{Preset: "YMR4", Scale: 0.03, Seed: 5, TestFrac: 0.1}
	mx, err := spec.Load()
	if err != nil {
		t.Fatal(err)
	}
	const k, iters = 8, 3
	const lambda = 0.07

	ref, _, err := core.Train(mx, core.Config{
		Platform: "host", K: k, Lambda: lambda, Iterations: iters,
		Seed: 5, UseRecommended: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 2, 3, 4} {
		m, info, err := Train(mx, TrainerConfig{
			Workers: workers, K: k, Lambda: lambda, Iterations: iters,
			Seed: 5, UseRecommended: true, Data: spec,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		bitsEqual(t, "X", m.X, ref.X)
		bitsEqual(t, "Y", m.Y, ref.Y)
		if info.BroadcastBytes <= 0 {
			t.Fatalf("workers=%d: broadcast bytes = %d", workers, info.BroadcastBytes)
		}
		if info.Workers != workers {
			t.Fatalf("info.Workers = %d, want %d", info.Workers, workers)
		}
	}
}

// TestDistributedResume restarts a distributed run from its checkpoints —
// with a different worker count — and still lands on the single-process
// factors: checkpoints carry the full assembled side, so the partition is
// free to change across restarts.
func TestDistributedResume(t *testing.T) {
	spec := DataSpec{Preset: "YMR4", Scale: 0.03, Seed: 9, TestFrac: 0}
	mx, err := spec.Load()
	if err != nil {
		t.Fatal(err)
	}
	const k, lambda = 6, 0.1
	dir := t.TempDir()

	if _, _, err := Train(mx, TrainerConfig{
		Workers: 2, K: k, Lambda: lambda, Iterations: 2, Seed: 9,
		UseRecommended: true, Data: spec, CheckpointDir: dir,
	}); err != nil {
		t.Fatal(err)
	}
	resumed, info, err := Train(mx, TrainerConfig{
		Workers: 3, K: k, Lambda: lambda, Iterations: 4, Seed: 9,
		UseRecommended: true, Data: spec, CheckpointDir: dir, Resume: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if info.ResumedFrom != 2 {
		t.Fatalf("resumed from iteration %d, want 2", info.ResumedFrom)
	}

	ref, _, err := core.Train(mx, core.Config{
		Platform: "host", K: k, Lambda: lambda, Iterations: 4,
		Seed: 9, UseRecommended: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	bitsEqual(t, "X", resumed.X, ref.X)
	bitsEqual(t, "Y", resumed.Y, ref.Y)

	// A mismatched hyperparameter must refuse the checkpoint, exactly as
	// core.Train does.
	if _, _, err := Train(mx, TrainerConfig{
		Workers: 2, K: k, Lambda: 0.2, Iterations: 4, Seed: 9,
		UseRecommended: true, Data: spec, CheckpointDir: dir, Resume: true,
	}); err == nil {
		t.Fatal("resumed across a lambda change")
	}
}
