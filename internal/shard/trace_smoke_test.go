package shard_test

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// chromeExport is the /debug/traces document shape this test validates.
type chromeExport struct {
	TraceEvents []struct {
		Name string            `json:"name"`
		Ph   string            `json:"ph"`
		TS   float64           `json:"ts"`
		Dur  float64           `json:"dur"`
		Args map[string]string `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

// TestTraceSmoke is the `make trace-smoke` CI lane: a 2-shard fleet of real
// binaries with the frontend sampling every request, driven over HTTP, then
// judged on its /debug/traces export — well-formed Chrome trace JSON where
// every frontend root span carries at least one shard hop child inside the
// root's time envelope, and /debug/slowest retains the same trace IDs.
func TestTraceSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the alstrain/alsserve/alsfront binaries")
	}
	dir := t.TempDir()
	bins := map[string]string{}
	for _, name := range []string{"alstrain", "alsserve", "alsfront"} {
		bin := filepath.Join(dir, name)
		build := exec.Command("go", "build", "-o", bin, "repro/cmd/"+name)
		if out, err := build.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, out)
		}
		bins[name] = bin
	}

	model := filepath.Join(dir, "smoke.model")
	train := exec.Command(bins["alstrain"], "-preset", "YMR4", "-scale", "0.02",
		"-iters", "2", "-k", "6", "-test-frac", "0", "-seed", "11", "-out", model)
	if out, err := train.CombinedOutput(); err != nil {
		t.Fatalf("alstrain: %v\n%s", err, out)
	}

	var shardURLs []string
	for i := 0; i < 2; i++ {
		addrs := startServerPrefixes(t, bins["alsserve"],
			[]string{"-model", model, "-shard", fmt.Sprintf("%d/2", i), "-addr", "127.0.0.1:0"},
			"alsserve: listening on ")
		shardURLs = append(shardURLs, "http://"+addrs["alsserve: listening on "])
	}

	const debugPrefix = "debug server listening on http://"
	const listenPrefix = "alsfront: listening on "
	addrs := startServerPrefixes(t, bins["alsfront"],
		[]string{"-shards", strings.Join(shardURLs, ","), "-addr", "127.0.0.1:0",
			"-probe-interval", "100ms", "-debug-addr", "127.0.0.1:0",
			"-trace-sample", "1.0"},
		debugPrefix, listenPrefix)
	frontURL := "http://" + addrs[listenPrefix]
	debugURL := "http://" + addrs[debugPrefix]

	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get(frontURL + "/readyz")
		if err == nil {
			code := resp.StatusCode
			resp.Body.Close()
			if code == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("frontend never became ready")
		}
		time.Sleep(100 * time.Millisecond)
	}

	const requests = 5
	for i := 0; i < requests; i++ {
		resp, err := http.Get(fmt.Sprintf("%s/v1/recommend?user=%d&n=5", frontURL, i+1))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("recommend %d: HTTP %d", i, resp.StatusCode)
		}
	}

	resp, err := http.Get(debugURL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/traces: HTTP %d", resp.StatusCode)
	}
	var export chromeExport
	if err := json.Unmarshal(raw, &export); err != nil {
		t.Fatalf("/debug/traces is not valid Chrome trace JSON: %v\n%s", err, raw)
	}
	if export.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", export.DisplayTimeUnit)
	}

	// Index the span events and check every frontend root's shard children.
	type ev = struct {
		name     string
		ts, dur  float64
		children int
	}
	spans := map[string]*ev{}
	var roots []string
	for _, e := range export.TraceEvents {
		if e.Ph != "X" {
			continue
		}
		spans[e.Args["span_id"]] = &ev{name: e.Name, ts: e.TS, dur: e.Dur}
		if e.Name == "recommend" && e.Args["parent_id"] == "" {
			roots = append(roots, e.Args["span_id"])
		}
	}
	rootTraces := map[string]bool{}
	for _, e := range export.TraceEvents {
		if e.Ph != "X" || !strings.HasPrefix(e.Name, "shard") {
			continue
		}
		parent, ok := spans[e.Args["parent_id"]]
		if !ok || parent.name != "recommend" {
			continue
		}
		if e.TS < parent.ts || e.TS+e.Dur > parent.ts+parent.dur+0.001 {
			t.Errorf("hop %q [%f,%f] escapes its root envelope [%f,%f]",
				e.Name, e.TS, e.TS+e.Dur, parent.ts, parent.ts+parent.dur)
		}
		parent.children++
	}
	if len(roots) < requests {
		t.Fatalf("%d frontend root spans, want >= %d driven requests\n%s", len(roots), requests, raw)
	}
	for _, id := range roots {
		if spans[id].children == 0 {
			t.Errorf("frontend root span %s has no shard hop children", id)
		}
	}
	for _, e := range export.TraceEvents {
		if e.Ph == "X" && e.Name == "recommend" && e.Args["parent_id"] == "" {
			rootTraces[e.Args["trace_id"]] = true
		}
	}

	// The flight recorder retains the same traces, addressable by ID.
	sresp, err := http.Get(debugURL + "/debug/slowest")
	if err != nil {
		t.Fatal(err)
	}
	sraw, _ := io.ReadAll(sresp.Body)
	sresp.Body.Close()
	var slowest map[string][]struct {
		TraceID string `json:"trace_id"`
	}
	if err := json.Unmarshal(sraw, &slowest); err != nil {
		t.Fatalf("/debug/slowest is not valid JSON: %v\n%s", err, sraw)
	}
	if len(slowest["recommend"]) == 0 {
		t.Fatalf("/debug/slowest holds no recommend traces:\n%s", sraw)
	}
	for _, st := range slowest["recommend"] {
		if !rootTraces[st.TraceID] {
			t.Errorf("slowest trace %s not among the exported root trace IDs", st.TraceID)
		}
	}
}

// startServerPrefixes launches a server binary and waits until every given
// stdout prefix has announced an address, returning prefix → address. The
// process is killed on test cleanup, so the smoke lane cannot leak orphans.
func startServerPrefixes(t *testing.T, bin string, args []string, prefixes ...string) map[string]string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})

	lines := make(chan string, 16)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	addrs := map[string]string{}
	deadline := time.After(15 * time.Second)
	for len(addrs) < len(prefixes) {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatalf("%s exited before announcing %v (got %v)", bin, prefixes, addrs)
			}
			for _, p := range prefixes {
				if rest, found := strings.CutPrefix(line, p); found {
					addr := strings.Fields(rest)[0]
					addrs[p] = strings.TrimSuffix(addr, ",")
				}
			}
		case <-deadline:
			t.Fatalf("%s never announced %v (got %v)", bin, prefixes, addrs)
		}
	}
	go func() {
		for range lines {
		}
	}()
	return addrs
}
