package shard

import (
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/obs"
)

// TestBroadcastBytesCrossValidation pins the real trainer's measured
// exchange traffic (als_dist_broadcast_bytes_total) against two models of
// it: the closed-form cluster.AllGatherBytes prediction, which must match
// to within a few percent (only the one-time hello/config frames separate
// them), and the cluster simulator's ReplicationBytes for the same problem
// shape, which models a partial-replication topology instead of a star and
// therefore only has to land within the issue's 2x criterion.
func TestBroadcastBytesCrossValidation(t *testing.T) {
	spec := DataSpec{Preset: "YMR4", Scale: 0.02, Seed: 7}
	mx, err := spec.Load()
	if err != nil {
		t.Fatal(err)
	}
	const workers, iters, k = 2, 3, 8

	reg := obs.NewRegistry()
	_, info, err := Train(mx, TrainerConfig{
		Workers: workers, K: k, Lambda: 0.05, Iterations: iters,
		Seed: 7, Data: spec, Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	measured := info.BroadcastBytes
	if measured <= 0 {
		t.Fatalf("measured broadcast bytes = %d, want > 0", measured)
	}

	// The registry counter must report the same measurement.
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "als_dist_broadcast_bytes_total") {
		t.Fatalf("exposition lacks als_dist_broadcast_bytes_total:\n%s", sb.String())
	}

	predicted := cluster.AllGatherBytes(mx.Rows(), mx.Cols(), k, workers, iters)
	if ratio := float64(measured) / float64(predicted); ratio < 1.0 || ratio > 1.02 {
		// Measured includes hello/config frames, so it sits just above the
		// prediction — never below, never more than ~a kilobyte above.
		t.Fatalf("measured %d vs predicted %d bytes (ratio %.4f), want within [1.00, 1.02]",
			measured, predicted, ratio)
	}

	// The simulator ships fixed-factor working sets instead of relaying
	// whole sides through a coordinator; for matched shapes the two totals
	// must agree within 2x or the simulator's traffic constant is wrong.
	sim, err := cluster.Train(mx, cluster.Config{
		Nodes: workers, K: k, Lambda: 0.05, Iterations: iters, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sim.ReplicationBytes <= 0 {
		t.Fatalf("simulated replication bytes = %d, want > 0", sim.ReplicationBytes)
	}
	ratio := float64(measured) / float64(sim.ReplicationBytes)
	if ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("measured %d bytes vs simulated %d (ratio %.2f), want within 2x — the simulator's per-row traffic constant has drifted from the real exchange",
			measured, sim.ReplicationBytes, ratio)
	}
}
