package shard

import (
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/serve"
)

// TestWatcherShardSync exercises the fleet's model-distribution mechanism:
// every replica follows the same checkpoint directory through a watcher
// whose Transform hook slices each checkpoint down to the replica's item
// range, so one training run's -checkpoint-dir drives the whole fleet and
// each member hot-swaps only its slice.
func TestWatcherShardSync(t *testing.T) {
	const users, items, k, shards = 5, 23, 3, 3
	fsys := checkpoint.NewMemFS()
	const dir = "ckpts"

	save := func(iter int, m *core.Model) {
		st := &checkpoint.State{
			Iteration: iter, K: m.K, Lambda: 0.5, Seed: 1, Variant: "tb",
			X: m.X, Y: m.Y,
		}
		if _, err := checkpoint.Save(fsys, dir, st); err != nil {
			t.Fatal(err)
		}
	}
	m1 := tieModel(users, items, k)
	save(1, m1)

	var reps []*Replica
	var watchers []*serve.Watcher
	for i := 0; i < shards; i++ {
		srv := serve.New(serve.Config{})
		t.Cleanup(srv.Close)
		rep, err := NewReplica(srv, ReplicaConfig{Index: i, Count: shards})
		if err != nil {
			t.Fatal(err)
		}
		w := serve.NewWatcher(srv, serve.WatcherConfig{
			Dir: dir, FS: fsys, Transform: rep.Transform,
		})
		if swapped, err := w.Poll(); err != nil || !swapped {
			t.Fatalf("shard %d: initial poll swapped=%v err=%v", i, swapped, err)
		}
		reps = append(reps, rep)
		watchers = append(watchers, w)
	}

	for i, rep := range reps {
		sn := rep.Server().Current()
		lo, hi := Range(items, i, shards)
		if sn.ItemOffset != lo || sn.ItemTotal != items || sn.Model.Y.Rows != hi-lo {
			t.Fatalf("shard %d installed offset=%d total=%d rows=%d, want offset=%d total=%d rows=%d",
				i, sn.ItemOffset, sn.ItemTotal, sn.Model.Y.Rows, lo, items, hi-lo)
		}
		if sn.Version != "ckpt-1" {
			t.Fatalf("shard %d version = %q, want ckpt-1", i, sn.Version)
		}
		// The slice is a view of the same checkpoint: row lo+1 of the full
		// Y must be local row 1.
		if hi-lo > 1 && sn.Model.Y.At(1, 0) != m1.Y.At(lo+1, 0) {
			t.Fatalf("shard %d slice content mismatch at local row 1", i)
		}
	}

	// A newer checkpoint lands; every shard picks up exactly its slice of
	// the new factors on the next poll.
	m2 := tieModel(users, items, k)
	for i := 0; i < items; i++ {
		m2.Y.Set(i, 0, float32(100+i))
	}
	save(2, m2)
	for i, w := range watchers {
		if swapped, err := w.Poll(); err != nil || !swapped {
			t.Fatalf("shard %d: second poll swapped=%v err=%v", i, swapped, err)
		}
		sn := reps[i].Server().Current()
		lo, _ := Range(items, i, shards)
		if sn.Version != "ckpt-2" {
			t.Fatalf("shard %d version = %q after new checkpoint", i, sn.Version)
		}
		if got, want := sn.Model.Y.At(0, 0), float32(100+lo); got != want {
			t.Fatalf("shard %d local row 0 = %v, want %v (global row %d of the new checkpoint)",
				i, got, want, lo)
		}
	}

	// No newer checkpoint: polls are quiescent.
	for i, w := range watchers {
		if swapped, _ := w.Poll(); swapped {
			t.Fatalf("shard %d swapped with no new checkpoint", i)
		}
	}
}
