package shard

import (
	"bufio"
	"bytes"
	"encoding/hex"
	"errors"
	"strings"
	"testing"
)

// Golden wire frames, pinned byte for byte (little-endian uint64 body length,
// body = kind + payload, little-endian uint32 CRC-32C trailer). If one of
// these changes, the protocol changed and mixed-version coordinator/worker
// pairs will reject each other — bump deliberately.
const (
	goldenHelloHex = "05000000000000000103000000a090411f"                   // hello, rank 3
	goldenErrorHex = "050000000000000004626f6f6d437158b5"                   // error, "boom"
	goldenBeatHex  = "010000000000000007ba37b786"                           // heartbeat
	goldenFactsHex = "42000000000000000302000000010000000300000004000000" + // factors: iter=2 lo=1 rows=3 k=4 half=Y
		"010000003f0000c03f0000204000006040000090400000b0400000d040" +
		"0000f04000000841000018410000284100003841b64cfb88" // floats 0.5 … 11.5
)

func mustHex(t testing.TB, s string) []byte {
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// writerWire returns a wire whose output lands in buf; the write path never
// touches the net.Conn.
func writerWire(buf *bytes.Buffer) *wire {
	return &wire{bw: bufio.NewWriterSize(buf, 1<<16), scratch: make([]byte, 1<<16)}
}

// readerWire returns a wire reading from raw bytes; the read path never
// touches the net.Conn, so a truncated stream surfaces as ErrUnexpectedEOF
// rather than blocking.
func readerWire(raw []byte) *wire {
	return &wire{br: bufio.NewReaderSize(bytes.NewReader(raw), 1<<16), scratch: make([]byte, 1<<16)}
}

func goldenFactorArgs() (h factorHeader, data []float32) {
	h = factorHeader{Iter: 2, Lo: 1, Rows: 3, K: 4, Half: halfY}
	for i := 0; i < 12; i++ {
		data = append(data, float32(i)+0.5)
	}
	return h, data
}

func TestGoldenFrames(t *testing.T) {
	var buf bytes.Buffer
	w := writerWire(&buf)

	rank := []byte{3, 0, 0, 0}
	if err := w.writeSmall(frameHello, rank); err != nil {
		t.Fatal(err)
	}
	if err := w.writeSmall(frameError, []byte("boom")); err != nil {
		t.Fatal(err)
	}
	if err := w.writeSmall(frameHeartbeat, nil); err != nil {
		t.Fatal(err)
	}
	h, data := goldenFactorArgs()
	if err := w.writeFactors(h, data); err != nil {
		t.Fatal(err)
	}

	want := goldenHelloHex + goldenErrorHex + goldenBeatHex + goldenFactsHex
	if got := hex.EncodeToString(buf.Bytes()); got != want {
		t.Fatalf("wire bytes changed:\n got %s\nwant %s", got, want)
	}

	// The reader must accept its own golden bytes: heartbeat skipped (with
	// the beat callback fired), control bodies returned, factors decoded.
	r := readerWire(buf.Bytes())
	kind, body, err := r.readSmall(nil)
	if err != nil || kind != frameHello || !bytes.Equal(body, rank) {
		t.Fatalf("hello readback: kind=%d body=%x err=%v", kind, body, err)
	}
	kind, body, err = r.readSmall(nil)
	if err != nil || kind != frameError || string(body) != "boom" {
		t.Fatalf("error readback: kind=%d body=%q err=%v", kind, body, err)
	}
	beats := 0
	dst := make([]float32, 16)
	err = r.expectFactors(2, halfY, 4, dst, 1, 3, func() { beats++ })
	if err != nil {
		t.Fatal(err)
	}
	if beats != 1 {
		t.Fatalf("beat callback ran %d times, want 1", beats)
	}
	for i, want := range data {
		if dst[4+i] != want {
			t.Fatalf("dst[%d] = %v, want %v", 4+i, dst[4+i], want)
		}
	}
}

// TestEveryFlippedByteRejected flips one bit in every byte of each golden
// frame: the decoder must return an error for all of them — never a panic,
// never a silent accept — and any flip past the frame prologue must surface
// as the typed ErrFrameCorrupt.
func TestEveryFlippedByteRejected(t *testing.T) {
	facts := mustHex(t, goldenFactsHex)
	for pos := range facts {
		raw := append([]byte{}, facts...)
		raw[pos] ^= 0x10
		dst := make([]float32, 16)
		err := readerWire(raw).expectFactors(2, halfY, 4, dst, 1, 3, nil)
		if err == nil {
			t.Fatalf("factor frame with byte %d flipped was accepted", pos)
		}
		// Bytes after the length prefix and factor header are float payload
		// or trailer: only the checksum can catch those, and it must.
		if pos >= 9+factorHeaderLen && !errors.Is(err, ErrFrameCorrupt) {
			t.Fatalf("payload flip at byte %d: err = %v, want ErrFrameCorrupt", pos, err)
		}
	}

	hello := mustHex(t, goldenHelloHex)
	for pos := range hello {
		raw := append([]byte{}, hello...)
		raw[pos] ^= 0x10
		_, _, err := readerWire(raw).readSmall(nil)
		if err == nil {
			t.Fatalf("hello frame with byte %d flipped was accepted", pos)
		}
		if pos >= 9 && !errors.Is(err, ErrFrameCorrupt) {
			t.Fatalf("body flip at byte %d: err = %v, want ErrFrameCorrupt", pos, err)
		}
	}
}

// TestTruncatedFramesRejected cuts each golden frame at every byte boundary:
// all prefixes must error out cleanly (unexpected EOF family), never hang or
// panic.
func TestTruncatedFramesRejected(t *testing.T) {
	for _, g := range []string{goldenHelloHex, goldenBeatHex, goldenFactsHex} {
		raw := mustHex(t, g)
		for cut := 0; cut < len(raw); cut++ {
			dst := make([]float32, 16)
			if err := readerWire(raw[:cut]).expectFactors(2, halfY, 4, dst, 1, 3, nil); err == nil {
				t.Fatalf("frame %s truncated to %d bytes was accepted", g[:16], cut)
			}
			if _, _, err := readerWire(raw[:cut]).readSmall(nil); err == nil {
				t.Fatalf("frame %s truncated to %d bytes was accepted by readSmall", g[:16], cut)
			}
		}
	}
}

// TestOversizeFrameRejected pins the control-frame size limit: a declared
// multi-gigabyte body must be rejected from its header alone, not allocated.
func TestOversizeFrameRejected(t *testing.T) {
	raw := mustHex(t, goldenErrorHex)
	raw[3] = 0x40 // declared body length now ~1GiB
	if _, _, err := readerWire(raw).readSmall(nil); err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("oversize control frame: err = %v", err)
	}
}

// TestWorkerFailureSurfaces pins that a frameError arriving where factors
// were expected carries the worker's own message as a workerFailure.
func TestWorkerFailureSurfaces(t *testing.T) {
	raw := mustHex(t, goldenErrorHex)
	dst := make([]float32, 16)
	err := readerWire(raw).expectFactors(2, halfY, 4, dst, 1, 3, nil)
	var wf *workerFailure
	if !errors.As(err, &wf) || !strings.Contains(wf.Error(), "boom") {
		t.Fatalf("err = %v, want a workerFailure carrying the message", err)
	}
}

// FuzzReadFrame hammers the frame decoders with arbitrary bytes. The
// invariant is total: any input either decodes or returns an error — no
// panics, no unbounded allocation (control bodies are capped at
// maxSmallFrame; factor payloads at the expected row count), no hangs (the
// reader consumes at least a header per loop iteration from a finite
// stream).
func FuzzReadFrame(f *testing.F) {
	for _, g := range []string{goldenHelloHex, goldenErrorHex, goldenBeatHex, goldenFactsHex} {
		raw, err := hex.DecodeString(g)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(raw)
		f.Add(raw[:len(raw)-3])
		f.Add(append(append([]byte{}, raw...), raw...))
	}
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		if _, _, err := readerWire(data).readSmall(nil); err != nil {
			_ = err.Error()
		}
		dst := make([]float32, 16)
		if err := readerWire(data).expectFactors(2, halfY, 4, dst, 1, 3, nil); err != nil {
			_ = err.Error()
		}
	})
}
