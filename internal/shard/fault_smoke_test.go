package shard_test

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/obs"
)

// The fault-smoke lane runs the supervision layer through the real alstrain
// binary: a worker killed with SIGKILL mid-iteration is respawned and the
// run still produces a model byte-identical to a clean one; SIGTERM stops
// the coordinator gracefully with a resumable checkpoint; a coordinator
// killed with SIGKILL leaves no orphan worker processes.
//
// Every distributed run injects a tolerated 3-second chaosnet delay at
// iteration 2 (shorter than the 5s heartbeat timeout, so it causes no
// failure) purely to hold the run open: the signal under test is guaranteed
// to land mid-run regardless of how fast the machine trains.
const faultStall = "delay=0:in:4:3s"

var faultTrainArgs = []string{"-preset", "YMR4", "-scale", "0.02", "-iters", "60",
	"-k", "6", "-test-frac", "0", "-seed", "11"}

func buildAlstrain(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "alstrain")
	build := exec.Command("go", "build", "-o", bin, "repro/cmd/alstrain")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building alstrain: %v\n%s", err, out)
	}
	return bin
}

// trainProc wraps a running alstrain coordinator: it captures the combined
// output, and parses the "worker R pid P" and debug-server lines as they
// appear.
type trainProc struct {
	t    *testing.T
	cmd  *exec.Cmd
	done chan struct{}

	mu       sync.Mutex
	out      bytes.Buffer
	pids     map[int]int
	debugURL string
}

var workerPidRE = regexp.MustCompile(`^worker (\d+) pid (\d+)$`)

func startTrain(t *testing.T, bin string, args ...string) *trainProc {
	t.Helper()
	cmd := exec.Command(bin, args...)
	pr, pw, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stdout, cmd.Stderr = pw, pw
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	pw.Close()
	tp := &trainProc{t: t, cmd: cmd, done: make(chan struct{}), pids: map[int]int{}}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	go func() {
		defer close(tp.done)
		sc := bufio.NewScanner(pr)
		for sc.Scan() {
			line := sc.Text()
			tp.mu.Lock()
			tp.out.WriteString(line)
			tp.out.WriteByte('\n')
			if m := workerPidRE.FindStringSubmatch(line); m != nil {
				rank, _ := strconv.Atoi(m[1])
				pid, _ := strconv.Atoi(m[2])
				tp.pids[rank] = pid
			}
			if rest, ok := strings.CutPrefix(line, "debug server listening on "); ok {
				tp.debugURL = strings.TrimSpace(rest)
			}
			tp.mu.Unlock()
		}
	}()
	return tp
}

// waitPids blocks until n distinct worker ranks have announced their PIDs.
func (tp *trainProc) waitPids(n int) map[int]int {
	tp.t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		tp.mu.Lock()
		if len(tp.pids) >= n {
			got := make(map[int]int, len(tp.pids))
			for r, p := range tp.pids {
				got[r] = p
			}
			tp.mu.Unlock()
			return got
		}
		tp.mu.Unlock()
		if time.Now().After(deadline) {
			tp.t.Fatalf("saw %d worker PID lines, want %d; output:\n%s", len(tp.pids), n, tp.output())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func (tp *trainProc) output() string {
	tp.mu.Lock()
	defer tp.mu.Unlock()
	return tp.out.String()
}

// wait blocks for process exit and returns its exit code.
func (tp *trainProc) wait() int {
	tp.t.Helper()
	<-tp.done
	err := tp.cmd.Wait()
	if err == nil {
		return 0
	}
	var ee *exec.ExitError
	if ok := isExitError(err, &ee); ok {
		return ee.ExitCode()
	}
	tp.t.Fatalf("wait: %v", err)
	return -1
}

func isExitError(err error, ee **exec.ExitError) bool {
	e, ok := err.(*exec.ExitError)
	if ok {
		*ee = e
	}
	return ok
}

// processGone reports whether pid no longer runs (a zombie awaiting a reap
// counts as gone: it computes nothing and exits with its reaper).
func processGone(pid int) bool {
	stat, err := os.ReadFile(fmt.Sprintf("/proc/%d/stat", pid))
	if err != nil {
		return true
	}
	// Field 3, after the parenthesized comm, is the state.
	if i := bytes.LastIndexByte(stat, ')'); i >= 0 && i+2 < len(stat) {
		return stat[i+2] == 'Z' || stat[i+2] == 'X'
	}
	return false
}

func waitGone(t *testing.T, label string, pids map[int]int) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		left := 0
		for _, pid := range pids {
			if !processGone(pid) {
				left++
			}
		}
		if left == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s: %d worker processes still running (orphans): %v", label, left, pids)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// TestFaultSmokeKillWorker is the `make fault-smoke` acceptance run: a
// 3-worker training run loses one worker to SIGKILL mid-iteration, respawns
// it, finishes, and the saved model is byte-identical to a clean
// single-process run; /metrics shows a nonzero respawn count and validates
// under the strict exposition parser; no worker outlives the run.
func TestFaultSmokeKillWorker(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the alstrain binary")
	}
	bin := buildAlstrain(t)
	dir := t.TempDir()

	clean := filepath.Join(dir, "clean.model")
	cmd := exec.Command(bin, append(append([]string{}, faultTrainArgs...), "-out", clean)...)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("clean run: %v\n%s", err, out)
	}

	faulted := filepath.Join(dir, "faulted.model")
	tp := startTrain(t, bin, append(append([]string{}, faultTrainArgs...),
		"-workers", "3", "-out", faulted,
		"-net-chaos", faultStall,
		"-debug-addr", "127.0.0.1:0", "-debug-linger", "60s")...)
	pids := tp.waitPids(3)

	// Let the run reach the iteration-2 stall, then kill a worker there.
	time.Sleep(1 * time.Second)
	if err := syscall.Kill(pids[1], syscall.SIGKILL); err != nil {
		t.Fatalf("killing worker 1 (pid %d): %v", pids[1], err)
	}

	// The run must complete: the atomic model write is the completion marker.
	deadline := time.Now().Add(90 * time.Second)
	for {
		if _, err := os.Stat(faulted); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("faulted run never wrote its model; output:\n%s", tp.output())
		}
		time.Sleep(100 * time.Millisecond)
	}
	a, err := os.ReadFile(clean)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(faulted)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("model after worker SIGKILL differs from clean run (%d vs %d bytes)", len(b), len(a))
	}

	// Workers were stopped by the coordinator before the model was written.
	waitGone(t, "after completion", tp.pids)

	tp.mu.Lock()
	debugURL := tp.debugURL
	tp.mu.Unlock()
	if debugURL == "" {
		t.Fatalf("no debug server line; output:\n%s", tp.output())
	}
	resp, err := http.Get(debugURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := obs.ValidateExposition(bytes.NewReader(raw)); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, raw)
	}
	respawns := regexp.MustCompile(`(?m)^als_dist_respawns_total ([0-9]+)$`).FindSubmatch(raw)
	if respawns == nil {
		t.Fatalf("exposition lacks als_dist_respawns_total:\n%s", raw)
	}
	if n, _ := strconv.Atoi(string(respawns[1])); n < 1 {
		t.Fatalf("als_dist_respawns_total = %s, want >= 1", respawns[1])
	}
	if !bytes.Contains(raw, []byte(`als_dist_worker_failures_total{`)) {
		t.Fatalf("exposition lacks als_dist_worker_failures_total:\n%s", raw)
	}
}

// TestFaultSmokeGracefulShutdown sends SIGTERM mid-run: the coordinator
// must stop at the next iteration boundary with a checkpoint on disk, report
// the run as resumable, exit nonzero with no workers left behind — and a
// -resume rerun must finish with the clean run's exact bytes.
func TestFaultSmokeGracefulShutdown(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the alstrain binary")
	}
	bin := buildAlstrain(t)
	dir := t.TempDir()
	ckpts := filepath.Join(dir, "ckpts")

	clean := filepath.Join(dir, "clean.model")
	cmd := exec.Command(bin, append(append([]string{}, faultTrainArgs...), "-out", clean)...)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("clean run: %v\n%s", err, out)
	}

	tp := startTrain(t, bin, append(append([]string{}, faultTrainArgs...),
		"-workers", "2", "-checkpoint-dir", ckpts, "-net-chaos", faultStall)...)
	pids := tp.waitPids(2)
	time.Sleep(1 * time.Second) // inside the iteration-2 stall
	if err := tp.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	code := tp.wait()
	out := tp.output()
	if code == 0 {
		t.Fatalf("SIGTERM run exited 0; output:\n%s", out)
	}
	if !strings.Contains(out, "resumable") {
		t.Fatalf("interrupted run did not report itself resumable:\n%s", out)
	}
	if _, it, err := checkpoint.Latest(checkpoint.OS, ckpts); err != nil || it < 1 {
		t.Fatalf("no checkpoint after graceful shutdown (iter %d): %v", it, err)
	}
	waitGone(t, "after SIGTERM", pids)

	resumed := filepath.Join(dir, "resumed.model")
	cmd = exec.Command(bin, append(append([]string{}, faultTrainArgs...),
		"-workers", "2", "-checkpoint-dir", ckpts, "-resume", "-out", resumed)...)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("resume run: %v\n%s", err, out)
	}
	a, err := os.ReadFile(clean)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("resumed model differs from clean run (%d vs %d bytes)", len(b), len(a))
	}
}

// TestFaultSmokeCoordinatorKill9 kills the coordinator with SIGKILL — no
// graceful path at all — and requires every worker process to notice the
// dead exchange connection and exit on its own within seconds.
func TestFaultSmokeCoordinatorKill9(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the alstrain binary")
	}
	bin := buildAlstrain(t)
	tp := startTrain(t, bin, append(append([]string{}, faultTrainArgs...),
		"-workers", "2", "-net-chaos", faultStall)...)
	pids := tp.waitPids(2)
	time.Sleep(1 * time.Second) // inside the iteration-2 stall
	if err := tp.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	tp.cmd.Wait()
	waitGone(t, "after coordinator SIGKILL", pids)
}
