// Package shard turns the single-process ALS system into a real
// multi-process deployment, replacing the simulated-clock cluster model in
// internal/cluster with processes that talk over actual sockets:
//
//   - Shard replicas (Replica): an alsserve process started with -shard i/N
//     holds only its static range of the item factors and answers partial
//     top-N queries with the same bounded per-shard heaps the in-process
//     scorer uses, plus the internal endpoints the frontend composes
//     (/shard/v1/info, /shard/v1/partials, /shard/v1/score,
//     /shard/v1/purge).
//
//   - A scatter-gather frontend (Frontend, cmd/alsfront): fans /v1/recommend
//     and /v1/foldin out to the shard fleet over HTTP, merges the per-shard
//     heaps with metrics.TopK (identical tie-breaking to a single-process
//     scan of the full catalog), applies a per-shard deadline, retries a
//     transiently failed leg once with jittered backoff inside that
//     deadline (als_shard_retries_total), and degrades to partial results
//     when a shard stays down — counted in als_shard_partial_total and
//     reflected by /readyz.
//
//   - A data-parallel trainer (Train/RunWorker, alstrain -workers N): worker
//     processes each solve one static user-row (and item-row) partition and
//     allgather the updated factors between half-iterations over a
//     length-prefixed TCP exchange relayed by the coordinator. Row updates
//     are pure functions of the fixed factors, so the distributed model is
//     bit-identical to the single-process run on the same seed.
//
//   - Worker supervision on that trainer: every frame carries a CRC-32C
//     trailer (corruption is the typed ErrFrameCorrupt, never silent bad
//     floats), workers heartbeat while they compute, and a crashed, hung or
//     corrupting rank is respawned mid-run, reseeded from the in-memory
//     factors at the interrupted half-iteration. Once the respawn budget
//     (TrainerConfig.MaxRespawns) is spent the cohort elastically
//     downscales to the survivors — legal because results are bit-identical
//     across worker counts. Workers self-terminate when the coordinator
//     dies; TrainerConfig.Interrupt stops a run gracefully at an iteration
//     boundary with a forced final checkpoint. The chaosnet subpackage is
//     the deterministic network-fault harness (sever/corrupt/truncate/drop/
//     delay exactly the Nth frame of a rank+direction) behind the
//     kill-at-every-frame sweep test and alstrain's -net-chaos flag.
//
// Shard replicas stay in sync with training through the existing checkpoint
// watcher: the coordinator writes ordinary checkpoints, every replica
// watches the same directory, and a WatcherConfig.Transform hook slices the
// loaded model down to the replica's item range before the hot-swap.
package shard
