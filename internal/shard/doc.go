// Package shard turns the single-process ALS system into a real
// multi-process deployment, replacing the simulated-clock cluster model in
// internal/cluster with processes that talk over actual sockets:
//
//   - Shard replicas (Replica): an alsserve process started with -shard i/N
//     holds only its static range of the item factors and answers partial
//     top-N queries with the same bounded per-shard heaps the in-process
//     scorer uses, plus the internal endpoints the frontend composes
//     (/shard/v1/info, /shard/v1/partials, /shard/v1/score,
//     /shard/v1/purge).
//
//   - A scatter-gather frontend (Frontend, cmd/alsfront): fans /v1/recommend
//     and /v1/foldin out to the shard fleet over HTTP, merges the per-shard
//     heaps with metrics.TopK (identical tie-breaking to a single-process
//     scan of the full catalog), applies a per-shard deadline, and degrades
//     to partial results when a shard is down — counted in
//     als_shard_partial_total and reflected by /readyz.
//
//   - A data-parallel trainer (Train/RunWorker, alstrain -workers N): worker
//     processes each solve one static user-row (and item-row) partition and
//     allgather the updated factors between half-iterations over a
//     length-prefixed TCP exchange relayed by the coordinator. Row updates
//     are pure functions of the fixed factors, so the distributed model is
//     bit-identical to the single-process run on the same seed.
//
// Shard replicas stay in sync with training through the existing checkpoint
// watcher: the coordinator writes ordinary checkpoints, every replica
// watches the same directory, and a WatcherConfig.Transform hook slices the
// loaded model down to the replica's item range before the hot-swap.
package shard
