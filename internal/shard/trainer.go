package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/host"
	"repro/internal/linalg"
	"repro/internal/obs"
	"repro/internal/quant"
	"repro/internal/rtrace"
	"repro/internal/sparse"
	"repro/internal/variant"
)

// DataSpec tells a worker process how to materialize the training matrix on
// its own, exactly as the alstrain front-end does: generate or read the
// dataset, then carve off the held-out fraction with dataset.Split seeded at
// Seed+1. Dataset generation and splitting are deterministic, so every
// worker — and the single-process reference run — sees byte-identical
// ratings, which is what the trainer's bit-identity guarantee rests on.
type DataSpec struct {
	Preset   string  `json:"preset,omitempty"`
	Scale    float64 `json:"scale,omitempty"`
	Input    string  `json:"input,omitempty"`
	OneBased bool    `json:"one_based,omitempty"`
	Compact  bool    `json:"compact,omitempty"`
	TestFrac float64 `json:"test_frac"`
	Seed     int64   `json:"seed"`
}

// Load materializes the training matrix the spec describes.
func (sp DataSpec) Load() (*sparse.Matrix, error) {
	var ds *dataset.Dataset
	switch {
	case sp.Input != "":
		if sp.Compact {
			cd, err := dataset.LoadCompact(sp.Input, sp.OneBased)
			if err != nil {
				return nil, err
			}
			ds = cd.Dataset
		} else {
			var err error
			ds, err = dataset.Load(sp.Input, sp.OneBased)
			if err != nil {
				return nil, err
			}
		}
	case sp.Preset != "":
		p, err := dataset.PresetByName(sp.Preset)
		if err != nil {
			return nil, err
		}
		scale := sp.Scale
		if scale <= 0 {
			scale = 0.01
		}
		ds = p.ScaledForBench(scale).Generate(sp.Seed)
	default:
		return nil, fmt.Errorf("shard: data spec names neither an input file nor a preset")
	}
	mx := ds.Matrix
	if sp.TestFrac > 0 {
		train, _, err := dataset.Split(mx, sp.TestFrac, sp.Seed+1)
		if err != nil {
			return nil, err
		}
		mx = train
	}
	return mx, nil
}

// TrainerConfig configures a distributed data-parallel training run.
type TrainerConfig struct {
	// Workers is the number of worker processes (>= 1; 1 is a degenerate
	// but valid single-worker exchange).
	Workers int
	// ListenAddr is the coordinator's listen address (default
	// "127.0.0.1:0" — an ephemeral loopback port).
	ListenAddr string
	// Spawn starts worker rank, pointing it at the coordinator address,
	// and returns a stop function (called on coordinator failure so no
	// worker outlives a dead run). Nil runs workers as in-process
	// goroutines — the unit-test and library mode; alstrain execs itself
	// with -dist-rank instead.
	Spawn func(rank int, addr string) (stop func(), err error)
	// Timeout bounds the worker handshake and every blocking exchange
	// read (default 10m: a half-iteration on a large preset is minutes of
	// compute between frames).
	Timeout time.Duration

	K              int
	Lambda         float32
	Iterations     int
	Seed           int64
	WeightedLambda bool
	// Flat selects the flat-baseline scheduling inside each worker;
	// Variant the kernel toggles (UseRecommended substitutes the host
	// recommendation vec+fus when Variant is zero).
	Flat           bool
	Variant        variant.Options
	UseRecommended bool
	// Threads is the per-worker goroutine count (0 = GOMAXPROCS).
	Threads int

	// Data is shipped to every worker, which loads the training matrix
	// itself rather than receiving it over the wire.
	Data DataSpec

	// Checkpointing (coordinator-side, same semantics as core.Train): the
	// assembled factors are written after every CheckpointEvery-th
	// iteration and the final one, and Resume restarts from the newest
	// valid checkpoint, shipping the restored factors to the workers.
	CheckpointDir   string
	CheckpointEvery int
	CheckpointKeep  int
	Resume          bool
	CheckpointFS    checkpoint.FS
	// CheckpointPrecision selects the factor encoding for written
	// checkpoints (quant.F32 default). Quantized checkpoints are smaller
	// and serve directly at that precision, but cannot seed Resume.
	CheckpointPrecision quant.Precision

	// Registry, when set, gains als_dist_broadcast_bytes_total: the bytes
	// relayed through the coordinator (worker shards in, assembled
	// factors out, frame headers included).
	Registry *obs.Registry

	// Tracer, when set and sampling the run, records a root "train" span
	// with per-half-iteration gather/broadcast children (one wait span per
	// rank, so the straggler is visible), tells every worker to trace its
	// own compute/gather/broadcast spans, and ingests those spans when the
	// workers ship them back over a frameSpans TCP frame at the end of the
	// run.
	Tracer *rtrace.Tracer
}

// TrainInfo reports how a distributed run went.
type TrainInfo struct {
	Workers int
	Seconds float64
	// BroadcastBytes is the total exchange traffic through the
	// coordinator: every factor shard received plus every assembled
	// factor matrix sent, frame headers included.
	BroadcastBytes int64
	ResumedFrom    int
	Variant        string
}

// workerConfig is the JSON config frame the coordinator sends each worker.
type workerConfig struct {
	Workers        int      `json:"workers"`
	Rank           int      `json:"rank"`
	K              int      `json:"k"`
	Lambda         float32  `json:"lambda"`
	Iterations     int      `json:"iterations"`
	Seed           int64    `json:"seed"`
	WeightedLambda bool     `json:"weighted_lambda"`
	Flat           bool     `json:"flat"`
	VariantID      string   `json:"variant_id"`
	Threads        int      `json:"threads"`
	StartIteration int      `json:"start_iteration"`
	Data           DataSpec `json:"data"`
	// Trace tells the worker a frameTraceCtx follows the config and that it
	// must record per-half compute/gather/broadcast spans and ship them
	// back over frameSpans after the final iteration.
	Trace bool `json:"trace,omitempty"`
}

func (cfg *TrainerConfig) setDefaults() {
	if cfg.K <= 0 {
		cfg.K = 10
	}
	if cfg.Iterations <= 0 {
		cfg.Iterations = 5
	}
	if cfg.ListenAddr == "" {
		cfg.ListenAddr = "127.0.0.1:0"
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Minute
	}
	if cfg.UseRecommended && !cfg.Flat && cfg.Variant == (variant.Options{}) {
		cfg.Variant = variant.Options{Vector: true, Fused: true}
	}
}

// variantName labels the run the way core.Train does, so distributed
// checkpoints interoperate with single-process resume and the serving
// watcher.
func (cfg *TrainerConfig) variantName() string {
	if cfg.Flat {
		return "flat baseline"
	}
	return cfg.Variant.String()
}

// Train runs the coordinator of a distributed data-parallel ALS job. mx is
// the training matrix (already split, exactly what Data describes) — the
// coordinator uses it only for its dimensions and never touches the
// ratings; each worker loads its own copy from Data.
//
// The exchange is a BSP star: per half-iteration every worker solves its
// static row range and sends that shard up, the coordinator assembles the
// full side and broadcasts it back, and no worker starts the next half
// before holding the complete fixed factor. Row updates are pure functions
// of (row data, fixed factors, λ, k, variant), so the assembled model is
// bit-identical to a single-process run with the same seed.
func Train(mx *sparse.Matrix, cfg TrainerConfig) (*core.Model, *TrainInfo, error) {
	if mx == nil || mx.NNZ() == 0 {
		return nil, nil, fmt.Errorf("shard: empty rating matrix")
	}
	if cfg.Workers < 1 {
		return nil, nil, fmt.Errorf("shard: need at least 1 worker, got %d", cfg.Workers)
	}
	cfg.setDefaults()
	m, n, k := mx.Rows(), mx.Cols(), cfg.K
	vname := cfg.variantName()

	fsys := cfg.CheckpointFS
	if fsys == nil {
		fsys = checkpoint.OS
	}
	start, resumedFrom := 0, 0
	var resumeX, resumeY *linalg.Dense
	if cfg.CheckpointDir != "" && cfg.Resume {
		st, _, err := checkpoint.LoadLatest(fsys, cfg.CheckpointDir)
		switch {
		case err == nil:
			if err := resumeMismatch(st, &cfg, vname); err != nil {
				return nil, nil, err
			}
			if st.X.Rows != m || st.Y.Rows != n {
				return nil, nil, fmt.Errorf("shard: checkpoint factors (%dx%d users, %dx%d items) do not match the dataset (%d users, %d items)",
					st.X.Rows, st.X.Cols, st.Y.Rows, st.Y.Cols, m, n)
			}
			start, resumedFrom = st.Iteration, st.Iteration
			resumeX, resumeY = st.X, st.Y
		case errors.Is(err, checkpoint.ErrNoCheckpoint):
		default:
			return nil, nil, fmt.Errorf("shard: resuming from %s: %w", cfg.CheckpointDir, err)
		}
	}

	// Coordinator-side factor buffers: assembled from worker shards each
	// half. The initial contents only matter for a resumed run (they seed
	// the workers); a fresh run overwrites both in the first iteration.
	x := linalg.NewDense(m, k)
	y := host.InitialY(n, k, cfg.Seed)
	if resumeX != nil {
		x, y = resumeX, resumeY
	}
	model := &core.Model{K: k, X: x, Y: y,
		Meta: core.Meta{Lambda: cfg.Lambda, WeightedLambda: cfg.WeightedLambda}}
	info := &TrainInfo{Workers: cfg.Workers, ResumedFrom: resumedFrom, Variant: vname}
	if start >= cfg.Iterations {
		// The checkpoint already covers the requested iterations; nothing
		// to distribute.
		return model, info, nil
	}

	lis, err := net.Listen("tcp", cfg.ListenAddr)
	if err != nil {
		return nil, nil, fmt.Errorf("shard: coordinator listen: %w", err)
	}
	defer lis.Close()
	addr := lis.Addr().String()

	var traffic atomic.Int64
	spawn := cfg.Spawn
	if spawn == nil {
		spawn = func(rank int, addr string) (func(), error) {
			go RunWorker(addr, rank)
			return func() {}, nil
		}
	}
	var stops []func()
	defer func() {
		for _, stop := range stops {
			stop()
		}
	}()
	for rank := 0; rank < cfg.Workers; rank++ {
		stop, err := spawn(rank, addr)
		if err != nil {
			return nil, nil, fmt.Errorf("shard: spawning worker %d: %w", rank, err)
		}
		stops = append(stops, stop)
	}

	conns, err := acceptWorkers(lis, cfg.Workers, cfg.Timeout, &traffic)
	if err != nil {
		return nil, nil, err
	}
	defer func() {
		for _, wc := range conns {
			wc.close()
		}
	}()

	// Head-sample the run: a sampled run traces the coordinator's exchange
	// spans and tells every worker to trace (and later ship) its own.
	runCtx, root := cfg.Tracer.StartRequest(context.Background(), "train", rtrace.SpanContext{})
	if root != nil {
		root.SetAttr("workers", strconv.Itoa(cfg.Workers))
		root.SetAttr("variant", vname)
	}

	for rank, wc := range conns {
		wcfg := workerConfig{
			Workers: cfg.Workers, Rank: rank,
			K: k, Lambda: cfg.Lambda, Iterations: cfg.Iterations, Seed: cfg.Seed,
			WeightedLambda: cfg.WeightedLambda, Flat: cfg.Flat,
			VariantID: cfg.Variant.ID(), Threads: cfg.Threads,
			StartIteration: start, Data: cfg.Data,
			Trace: root != nil,
		}
		body, err := json.Marshal(wcfg)
		if err != nil {
			return nil, nil, err
		}
		if err := wc.writeSmall(frameConfig, body); err != nil {
			return nil, nil, fmt.Errorf("shard: sending config to worker %d: %w", rank, err)
		}
		if root != nil {
			if err := wc.writeSmall(frameTraceCtx, root.Context().AppendBinary(nil)); err != nil {
				return nil, nil, fmt.Errorf("shard: sending trace context to worker %d: %w", rank, err)
			}
		}
		if start > 0 {
			// Seed resumed workers with the checkpointed factors; fresh
			// workers derive the identical start state themselves.
			if err := wc.writeFactors(factorHeader{Iter: uint32(start), Half: halfX, Lo: 0, Rows: uint32(m), K: uint32(k)}, x.Data); err != nil {
				return nil, nil, fmt.Errorf("shard: seeding worker %d: %w", rank, err)
			}
			if err := wc.writeFactors(factorHeader{Iter: uint32(start), Half: halfY, Lo: 0, Rows: uint32(n), K: uint32(k)}, y.Data); err != nil {
				return nil, nil, fmt.Errorf("shard: seeding worker %d: %w", rank, err)
			}
		}
	}

	every := cfg.CheckpointEvery
	if every <= 0 {
		every = 1
	}
	keep := cfg.CheckpointKeep
	if keep <= 0 {
		keep = 3
	}
	trainStart := time.Now()
	for it := start + 1; it <= cfg.Iterations; it++ {
		if err := relayHalfTraced(runCtx, conns, it, "x", halfX, m, k, x.Data, cfg.Timeout); err != nil {
			return nil, nil, fmt.Errorf("shard: iteration %d X half: %w", it, err)
		}
		if err := relayHalfTraced(runCtx, conns, it, "y", halfY, n, k, y.Data, cfg.Timeout); err != nil {
			return nil, nil, fmt.Errorf("shard: iteration %d Y half: %w", it, err)
		}
		if cfg.CheckpointDir != "" && (it%every == 0 || it == cfg.Iterations) {
			st := &checkpoint.State{
				Iteration: it, K: k, Lambda: cfg.Lambda,
				WeightedLambda: cfg.WeightedLambda, Seed: cfg.Seed,
				Variant: vname, X: x, Y: y,
				Precision: cfg.CheckpointPrecision,
			}
			if _, err := checkpoint.Save(fsys, cfg.CheckpointDir, st); err != nil {
				return nil, nil, fmt.Errorf("shard: iteration %d checkpoint: %w", it, err)
			}
			if err := checkpoint.GC(fsys, cfg.CheckpointDir, keep); err != nil {
				return nil, nil, fmt.Errorf("shard: iteration %d checkpoint GC: %w", it, err)
			}
		}
	}
	if root != nil {
		// Workers ship their span bundles after the final broadcast; the
		// stream is ordered, so one frameSpans per worker follows the last
		// factor frame with nothing in between.
		for rank, wc := range conns {
			wc.c.SetReadDeadline(time.Now().Add(cfg.Timeout))
			kind, body, err := wc.readSmall()
			if err != nil || kind != frameSpans {
				return nil, nil, fmt.Errorf("shard: reading spans from worker %d (kind=%d): %v", rank, kind, err)
			}
			spans, err := rtrace.DecodeSpans(body)
			if err != nil {
				return nil, nil, fmt.Errorf("shard: decoding spans from worker %d: %w", rank, err)
			}
			cfg.Tracer.Ingest(spans)
		}
		root.End()
	}
	info.Seconds = time.Since(trainStart).Seconds()
	info.BroadcastBytes = traffic.Load()
	if cfg.Registry != nil {
		cfg.Registry.Counter("als_dist_broadcast_bytes_total",
			"Factor-exchange bytes relayed through the distributed trainer coordinator.").
			With().Add(float64(info.BroadcastBytes))
	}
	return model, info, nil
}

// acceptWorkers collects one hello-identified connection per rank.
func acceptWorkers(lis net.Listener, workers int, timeout time.Duration, traffic *atomic.Int64) ([]*wire, error) {
	deadline := time.Now().Add(timeout)
	if tl, ok := lis.(*net.TCPListener); ok {
		tl.SetDeadline(deadline)
	}
	conns := make([]*wire, workers)
	bail := func(err error) ([]*wire, error) {
		for _, wc := range conns {
			wc.close()
		}
		return nil, err
	}
	for i := 0; i < workers; i++ {
		c, err := lis.Accept()
		if err != nil {
			return bail(fmt.Errorf("shard: waiting for %d worker(s): %w", workers-i, err))
		}
		c.SetReadDeadline(deadline)
		wc := newWire(c, traffic)
		kind, body, err := wc.readSmall()
		if err != nil || kind != frameHello || len(body) != 4 {
			wc.close()
			return bail(fmt.Errorf("shard: bad hello from %s (kind=%d err=%v)", c.RemoteAddr(), kind, err))
		}
		rank := int(int32(uint32(body[0]) | uint32(body[1])<<8 | uint32(body[2])<<16 | uint32(body[3])<<24))
		if rank < 0 || rank >= workers || conns[rank] != nil {
			wc.close()
			return bail(fmt.Errorf("shard: hello with invalid or duplicate rank %d", rank))
		}
		c.SetReadDeadline(time.Time{})
		conns[rank] = wc
	}
	return conns, nil
}

// relayHalfTraced wraps relayHalf in an "iterN/half" span with gather and
// broadcast children when ctx carries the run's root span; the gather span
// gets one wait child per rank, so the straggling worker is the one whose
// wait dominates.
func relayHalfTraced(ctx context.Context, conns []*wire, it int, halfName string, half byte, rows, k int, dst []float32, timeout time.Duration) error {
	if !rtrace.Active(ctx) {
		return relayHalf(nil, conns, it, half, rows, k, dst, timeout)
	}
	hctx, span := rtrace.StartChild(ctx, fmt.Sprintf("iter%d/%s", it, halfName))
	err := relayHalf(hctx, conns, it, half, rows, k, dst, timeout)
	span.End()
	return err
}

// relayHalf runs one half-iteration exchange: gather every worker's
// contiguous shard into dst, then broadcast the assembled side back. A
// non-nil ctx with an active span records the gather and broadcast phases.
func relayHalf(ctx context.Context, conns []*wire, it int, half byte, rows, k int, dst []float32, timeout time.Duration) error {
	workers := len(conns)
	var gctx context.Context = context.Background()
	var gather *rtrace.Span
	if ctx != nil {
		gctx, gather = rtrace.StartChild(ctx, "gather")
	}
	for rank, wc := range conns {
		lo, hi := Range(rows, rank, workers)
		wc.c.SetReadDeadline(time.Now().Add(timeout))
		var wait *rtrace.Span
		if gather != nil {
			_, wait = rtrace.StartChild(gctx, "wait worker"+strconv.Itoa(rank))
		}
		err := wc.expectFactors(it, half, k, dst, lo, hi-lo)
		wait.End()
		if err != nil {
			return fmt.Errorf("worker %d: %w", rank, err)
		}
	}
	gather.End()
	var bcast *rtrace.Span
	if ctx != nil {
		_, bcast = rtrace.StartChild(ctx, "broadcast")
	}
	h := factorHeader{Iter: uint32(it), Half: half, Lo: 0, Rows: uint32(rows), K: uint32(k)}
	for rank, wc := range conns {
		if err := wc.writeFactors(h, dst); err != nil {
			return fmt.Errorf("worker %d: %w", rank, err)
		}
	}
	bcast.End()
	return nil
}

// resumeMismatch mirrors core.Train's checkpoint compatibility checks.
func resumeMismatch(st *checkpoint.State, cfg *TrainerConfig, vname string) error {
	switch {
	case st.K != cfg.K:
		return fmt.Errorf("shard: checkpoint has k=%d, run wants k=%d", st.K, cfg.K)
	case st.Lambda != cfg.Lambda:
		return fmt.Errorf("shard: checkpoint has lambda=%g, run wants %g", st.Lambda, cfg.Lambda)
	case st.Seed != cfg.Seed:
		return fmt.Errorf("shard: checkpoint has seed=%d, run wants %d", st.Seed, cfg.Seed)
	case st.WeightedLambda != cfg.WeightedLambda:
		return fmt.Errorf("shard: checkpoint lambda convention (weighted=%v) does not match run (weighted=%v)",
			st.WeightedLambda, cfg.WeightedLambda)
	case st.Variant != vname:
		return fmt.Errorf("shard: checkpoint was trained with variant %q, run wants %q", st.Variant, vname)
	case st.Precision != quant.F32:
		// A quantized checkpoint is lossy; resuming from dequantized
		// factors could not stay bit-identical to an uninterrupted run.
		return fmt.Errorf("shard: checkpoint factors are quantized (%v); resume requires a float32 checkpoint", st.Precision)
	}
	return nil
}

// RunWorker connects to a coordinator, identifies as rank, and serves one
// worker's share of a distributed training run: load the dataset the
// config frame describes, then per half-iteration solve the static row
// range this rank owns, send the shard up, and receive the assembled side
// back. It returns when training completes or the coordinator goes away —
// a worker never outlives its run.
func RunWorker(coordAddr string, rank int) error {
	c, err := net.Dial("tcp", coordAddr)
	if err != nil {
		return fmt.Errorf("shard: worker %d dialing %s: %w", rank, coordAddr, err)
	}
	w := newWire(c, nil)
	defer w.close()

	hello := []byte{byte(rank), byte(rank >> 8), byte(rank >> 16), byte(rank >> 24)}
	if err := w.writeSmall(frameHello, hello); err != nil {
		return err
	}
	kind, body, err := w.readSmall()
	if err != nil {
		return err
	}
	if kind != frameConfig {
		return fmt.Errorf("shard: worker %d: unexpected frame kind %d (want config)", rank, kind)
	}
	var cfg workerConfig
	if err := json.Unmarshal(body, &cfg); err != nil {
		return fmt.Errorf("shard: worker %d: bad config: %w", rank, err)
	}
	if cfg.Rank != rank {
		return fmt.Errorf("shard: worker %d received config for rank %d", rank, cfg.Rank)
	}

	// A traced run sends its span context right after the config; the worker
	// records its own compute/gather/broadcast spans into a local sample-1.0
	// tracer and ships them back over frameSpans after the final iteration.
	var wtr *rtrace.Tracer
	wctx := context.Background()
	var wroot *rtrace.Span
	if cfg.Trace {
		kind, body, err := w.readSmall()
		if err != nil || kind != frameTraceCtx {
			return fmt.Errorf("shard: worker %d: expected trace context frame (kind=%d): %v", rank, kind, err)
		}
		remote, err := rtrace.ContextFromBinary(body)
		if err != nil {
			return fmt.Errorf("shard: worker %d: bad trace context: %w", rank, err)
		}
		iters := cfg.Iterations - cfg.StartIteration
		wtr = rtrace.New(rtrace.Config{
			Sample:   1,
			Capacity: iters*8 + 16,
			Slowest:  -1,
			Process:  "alstrain-worker" + strconv.Itoa(rank),
		})
		wctx, wroot = wtr.StartRequest(wctx, "worker"+strconv.Itoa(rank), remote)
		wroot.SetAttr("worker", strconv.Itoa(rank))
	}

	// From here on, failures are reported to the coordinator before
	// returning, so the whole run dies with the worker's message instead
	// of a bare connection reset.
	fail := func(err error) error {
		w.writeSmall(frameError, []byte(err.Error()))
		return err
	}

	v, err := variant.ParseID(cfg.VariantID)
	if err != nil {
		return fail(err)
	}
	mx, err := cfg.Data.Load()
	if err != nil {
		return fail(fmt.Errorf("worker %d: %w", rank, err))
	}
	m, n, k := mx.Rows(), mx.Cols(), cfg.K
	x := linalg.NewDense(m, k)
	y := host.InitialY(n, k, cfg.Seed)
	if cfg.StartIteration > 0 {
		st := uint32(cfg.StartIteration)
		if err := w.expectFactors(int(st), halfX, k, x.Data, 0, m); err != nil {
			return fmt.Errorf("shard: worker %d resume seed: %w", rank, err)
		}
		if err := w.expectFactors(int(st), halfY, k, y.Data, 0, n); err != nil {
			return fmt.Errorf("shard: worker %d resume seed: %w", rank, err)
		}
	}

	// The Y half runs the same row updates on Rᵀ, viewed zero-copy through
	// the CSC arrays exactly as host.Train does.
	rt := &sparse.CSR{NumRows: n, NumCols: m, RowPtr: mx.C.ColPtr, ColIdx: mx.C.RowIdx, Val: mx.C.Val}
	ru := host.NewRangeUpdater(host.Config{
		K: k, Lambda: cfg.Lambda, Workers: cfg.Threads,
		Flat: cfg.Flat, Variant: v, WeightedLambda: cfg.WeightedLambda,
	})
	defer ru.Close()

	lo, hi := Range(m, rank, cfg.Workers)
	ylo, yhi := Range(n, rank, cfg.Workers)
	for it := cfg.StartIteration + 1; it <= cfg.Iterations; it++ {
		hctx, hspan := workerHalfSpan(wctx, wroot, it, "x")
		_, cspan := rtrace.StartChild(hctx, "compute")
		err := ru.UpdateRange(mx.R, y, x, lo, hi, it, true)
		cspan.End()
		if err != nil {
			return fail(fmt.Errorf("worker %d iteration %d X: %w", rank, it, err))
		}
		_, gspan := rtrace.StartChild(hctx, "gather")
		err = w.writeFactors(factorHeader{Iter: uint32(it), Half: halfX, Lo: uint32(lo), Rows: uint32(hi - lo), K: uint32(k)}, x.Data[lo*k:hi*k])
		gspan.End()
		if err != nil {
			return err
		}
		_, bspan := rtrace.StartChild(hctx, "broadcast")
		err = w.expectFactors(it, halfX, k, x.Data, 0, m)
		bspan.End()
		hspan.End()
		if err != nil {
			return err
		}

		hctx, hspan = workerHalfSpan(wctx, wroot, it, "y")
		_, cspan = rtrace.StartChild(hctx, "compute")
		err = ru.UpdateRange(rt, x, y, ylo, yhi, it, false)
		cspan.End()
		if err != nil {
			return fail(fmt.Errorf("worker %d iteration %d Y: %w", rank, it, err))
		}
		_, gspan = rtrace.StartChild(hctx, "gather")
		err = w.writeFactors(factorHeader{Iter: uint32(it), Half: halfY, Lo: uint32(ylo), Rows: uint32(yhi - ylo), K: uint32(k)}, y.Data[ylo*k:yhi*k])
		gspan.End()
		if err != nil {
			return err
		}
		_, bspan = rtrace.StartChild(hctx, "broadcast")
		err = w.expectFactors(it, halfY, k, y.Data, 0, n)
		bspan.End()
		hspan.End()
		if err != nil {
			return err
		}
	}
	if wroot != nil {
		wroot.End()
		if err := w.writeSmall(frameSpans, rtrace.EncodeSpans(wtr.Snapshot())); err != nil {
			return fmt.Errorf("shard: worker %d sending spans: %w", rank, err)
		}
	}
	return nil
}

// workerHalfSpan opens a traced worker's per-half-iteration span; untraced
// runs get the untouched context and a nil span back, so the per-phase
// StartChild calls below it all no-op.
func workerHalfSpan(ctx context.Context, root *rtrace.Span, it int, half string) (context.Context, *rtrace.Span) {
	if root == nil {
		return ctx, nil
	}
	hctx, span := rtrace.StartChild(ctx, "iter"+strconv.Itoa(it)+"/"+half)
	return hctx, span
}
