package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/host"
	"repro/internal/linalg"
	"repro/internal/obs"
	"repro/internal/quant"
	"repro/internal/rtrace"
	"repro/internal/shard/chaosnet"
	"repro/internal/sparse"
	"repro/internal/variant"
)

// DataSpec tells a worker process how to materialize the training matrix on
// its own, exactly as the alstrain front-end does: generate or read the
// dataset, then carve off the held-out fraction with dataset.Split seeded at
// Seed+1. Dataset generation and splitting are deterministic, so every
// worker — and the single-process reference run — sees byte-identical
// ratings, which is what the trainer's bit-identity guarantee rests on.
type DataSpec struct {
	Preset   string  `json:"preset,omitempty"`
	Scale    float64 `json:"scale,omitempty"`
	Input    string  `json:"input,omitempty"`
	OneBased bool    `json:"one_based,omitempty"`
	Compact  bool    `json:"compact,omitempty"`
	TestFrac float64 `json:"test_frac"`
	Seed     int64   `json:"seed"`
}

// Load materializes the training matrix the spec describes.
func (sp DataSpec) Load() (*sparse.Matrix, error) {
	var ds *dataset.Dataset
	switch {
	case sp.Input != "":
		if sp.Compact {
			cd, err := dataset.LoadCompact(sp.Input, sp.OneBased)
			if err != nil {
				return nil, err
			}
			ds = cd.Dataset
		} else {
			var err error
			ds, err = dataset.Load(sp.Input, sp.OneBased)
			if err != nil {
				return nil, err
			}
		}
	case sp.Preset != "":
		p, err := dataset.PresetByName(sp.Preset)
		if err != nil {
			return nil, err
		}
		scale := sp.Scale
		if scale <= 0 {
			scale = 0.01
		}
		ds = p.ScaledForBench(scale).Generate(sp.Seed)
	default:
		return nil, fmt.Errorf("shard: data spec names neither an input file nor a preset")
	}
	mx := ds.Matrix
	if sp.TestFrac > 0 {
		train, _, err := dataset.Split(mx, sp.TestFrac, sp.Seed+1)
		if err != nil {
			return nil, err
		}
		mx = train
	}
	return mx, nil
}

// TrainerConfig configures a distributed data-parallel training run.
type TrainerConfig struct {
	// Workers is the number of worker processes (>= 1; 1 is a degenerate
	// but valid single-worker exchange).
	Workers int
	// ListenAddr is the coordinator's listen address (default
	// "127.0.0.1:0" — an ephemeral loopback port).
	ListenAddr string
	// Spawn starts worker rank, pointing it at the coordinator address,
	// and returns a stop function (called on coordinator failure so no
	// worker outlives a dead run; it must be idempotent — the supervisor
	// may call it again at shutdown). Nil runs workers as in-process
	// goroutines — the unit-test and library mode; alstrain execs itself
	// with -dist-rank instead. The supervisor also calls Spawn to replace
	// a failed rank mid-run.
	Spawn func(rank int, addr string) (stop func(), err error)
	// Timeout bounds the worker handshake and the end-of-run span
	// collection read (default 10m). Liveness during the exchange itself
	// is governed by the much tighter HeartbeatTimeout and RoundTimeout.
	Timeout time.Duration

	// HeartbeatInterval is how often a worker emits a liveness frame while
	// computing (default 1s; <0 disables heartbeats).
	HeartbeatInterval time.Duration
	// HeartbeatTimeout is how long the coordinator waits without a sign of
	// life — a heartbeat or payload bytes — before declaring a worker hung
	// (default 5s, and never less than twice the interval).
	HeartbeatTimeout time.Duration
	// RoundTimeout bounds one half-iteration exchange end to end, catching
	// failures liveness cannot (a worker that heartbeats forever but never
	// sends its shard). Default: Timeout.
	RoundTimeout time.Duration
	// SpawnTimeout bounds a (re)spawned worker's dial-hello-config
	// handshake (default: Timeout).
	SpawnTimeout time.Duration
	// MaxRespawns is the per-run budget of worker respawns before the
	// supervisor stops replacing dead ranks and elastically downscales to
	// the survivors instead (default 3; negative disables respawning, so
	// the first failure downscales).
	MaxRespawns int
	// NetChaos, when set, wraps every accepted worker connection with the
	// deterministic fault plan — the failure-injection test mode behind
	// alstrain -net-chaos.
	NetChaos *chaosnet.Plan
	// Interrupt, when non-nil and closed (or sent to), stops the run at
	// the next iteration boundary: the coordinator writes a final
	// checkpoint, tears the workers down, and returns ErrInterrupted.
	Interrupt <-chan struct{}
	// Logf, when set, receives supervision events (failures, respawns,
	// downscales) — alstrain wires log.Printf.
	Logf func(format string, args ...any)

	K              int
	Lambda         float32
	Iterations     int
	Seed           int64
	WeightedLambda bool
	// Flat selects the flat-baseline scheduling inside each worker;
	// Variant the kernel toggles (UseRecommended substitutes the host
	// recommendation vec+fus when Variant is zero).
	Flat           bool
	Variant        variant.Options
	UseRecommended bool
	// Threads is the per-worker goroutine count (0 = GOMAXPROCS).
	Threads int

	// Data is shipped to every worker, which loads the training matrix
	// itself rather than receiving it over the wire.
	Data DataSpec

	// Checkpointing (coordinator-side, same semantics as core.Train): the
	// assembled factors are written after every CheckpointEvery-th
	// iteration and the final one, and Resume restarts from the newest
	// valid checkpoint, shipping the restored factors to the workers.
	CheckpointDir   string
	CheckpointEvery int
	CheckpointKeep  int
	Resume          bool
	CheckpointFS    checkpoint.FS
	// CheckpointPrecision selects the factor encoding for written
	// checkpoints (quant.F32 default). Quantized checkpoints are smaller
	// and serve directly at that precision, but cannot seed Resume.
	CheckpointPrecision quant.Precision

	// Registry, when set, gains als_dist_broadcast_bytes_total (the bytes
	// relayed through the coordinator) plus the supervision counters:
	// als_dist_worker_failures_total{reason}, als_dist_respawns_total and
	// als_dist_round_deadline_exceeded_total.
	Registry *obs.Registry

	// Tracer, when set and sampling the run, records a root "train" span
	// with per-half-iteration gather/broadcast children (one wait span per
	// rank, so the straggler is visible), tells every worker to trace its
	// own compute/gather/broadcast spans, and ingests those spans when the
	// workers ship them back over a frameSpans TCP frame at the end of the
	// run. Worker failures annotate the half span they interrupted.
	Tracer *rtrace.Tracer
}

// TrainInfo reports how a distributed run went.
type TrainInfo struct {
	Workers int
	Seconds float64
	// BroadcastBytes is the total exchange traffic through the
	// coordinator: every factor shard received plus every assembled
	// factor matrix sent, frame headers included.
	BroadcastBytes int64
	ResumedFrom    int
	Variant        string
	// Supervision outcomes: worker failures detected, ranks respawned,
	// elastic downscales taken, and the cohort size that finished the run
	// (== Workers when nothing failed or every failure was respawned).
	Failures     int
	Respawns     int
	Downscales   int
	FinalWorkers int
}

// workerConfig is the JSON config frame the coordinator sends each worker.
type workerConfig struct {
	Workers        int      `json:"workers"`
	Rank           int      `json:"rank"`
	K              int      `json:"k"`
	Lambda         float32  `json:"lambda"`
	Iterations     int      `json:"iterations"`
	Seed           int64    `json:"seed"`
	WeightedLambda bool     `json:"weighted_lambda"`
	Flat           bool     `json:"flat"`
	VariantID      string   `json:"variant_id"`
	Threads        int      `json:"threads"`
	StartIteration int      `json:"start_iteration"`
	Data           DataSpec `json:"data"`
	// StartY makes the worker's first computed half StartIteration+1's Y
	// half instead of its X half — how a rank respawned mid-iteration
	// rejoins without redoing the half that already completed.
	StartY bool `json:"start_y,omitempty"`
	// Seeded tells the worker two full factor frames (X then Y, tagged
	// StartIteration) follow the config, seeding a resumed or respawned
	// rank with the coordinator's in-memory state.
	Seeded bool `json:"seeded,omitempty"`
	// HeartbeatMillis is the liveness frame period (0 = no heartbeats).
	HeartbeatMillis int `json:"heartbeat_millis,omitempty"`
	// Trace tells the worker a frameTraceCtx follows the config and that it
	// must record per-half compute/gather/broadcast spans and ship them
	// back over frameSpans after the final iteration.
	Trace bool `json:"trace,omitempty"`
}

func (cfg *TrainerConfig) setDefaults() {
	if cfg.K <= 0 {
		cfg.K = 10
	}
	if cfg.Iterations <= 0 {
		cfg.Iterations = 5
	}
	if cfg.ListenAddr == "" {
		cfg.ListenAddr = "127.0.0.1:0"
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Minute
	}
	if cfg.HeartbeatInterval == 0 {
		cfg.HeartbeatInterval = time.Second
	}
	if cfg.HeartbeatInterval < 0 {
		cfg.HeartbeatInterval = 0
	}
	if cfg.HeartbeatTimeout <= 0 {
		cfg.HeartbeatTimeout = 5 * time.Second
	}
	if cfg.HeartbeatInterval > 0 && cfg.HeartbeatTimeout < 2*cfg.HeartbeatInterval {
		cfg.HeartbeatTimeout = 2 * cfg.HeartbeatInterval
	}
	if cfg.RoundTimeout <= 0 {
		cfg.RoundTimeout = cfg.Timeout
	}
	if cfg.SpawnTimeout <= 0 {
		cfg.SpawnTimeout = cfg.Timeout
	}
	if cfg.MaxRespawns == 0 {
		cfg.MaxRespawns = 3
	}
	if cfg.UseRecommended && !cfg.Flat && cfg.Variant == (variant.Options{}) {
		cfg.Variant = variant.Options{Vector: true, Fused: true}
	}
}

// variantName labels the run the way core.Train does, so distributed
// checkpoints interoperate with single-process resume and the serving
// watcher.
func (cfg *TrainerConfig) variantName() string {
	if cfg.Flat {
		return "flat baseline"
	}
	return cfg.Variant.String()
}

// Train runs the coordinator of a distributed data-parallel ALS job. mx is
// the training matrix (already split, exactly what Data describes) — the
// coordinator uses it only for its dimensions and never touches the
// ratings; each worker loads its own copy from Data.
//
// The exchange is a BSP star: per half-iteration every worker solves its
// static row range and sends that shard up, the coordinator assembles the
// full side and broadcasts it back, and no worker starts the next half
// before holding the complete fixed factor. Row updates are pure functions
// of (row data, fixed factors, λ, k, variant), so the assembled model is
// bit-identical to a single-process run with the same seed.
//
// The run is supervised: workers heartbeat while computing, every frame is
// CRC-checked, and a worker that dies, hangs, or corrupts a frame is either
// respawned (seeded from the in-memory factors, redoing only the
// interrupted half-iteration) or — once MaxRespawns is spent — the cohort
// elastically downscales to the survivors, which still yields factors
// bit-identical to a clean run at that worker count.
func Train(mx *sparse.Matrix, cfg TrainerConfig) (*core.Model, *TrainInfo, error) {
	if mx == nil || mx.NNZ() == 0 {
		return nil, nil, fmt.Errorf("shard: empty rating matrix")
	}
	if cfg.Workers < 1 {
		return nil, nil, fmt.Errorf("shard: need at least 1 worker, got %d", cfg.Workers)
	}
	cfg.setDefaults()
	m, n, k := mx.Rows(), mx.Cols(), cfg.K
	vname := cfg.variantName()

	fsys := cfg.CheckpointFS
	if fsys == nil {
		fsys = checkpoint.OS
	}
	start, resumedFrom := 0, 0
	var resumeX, resumeY *linalg.Dense
	if cfg.CheckpointDir != "" && cfg.Resume {
		st, _, err := checkpoint.LoadLatest(fsys, cfg.CheckpointDir)
		switch {
		case err == nil:
			if err := resumeMismatch(st, &cfg, vname); err != nil {
				return nil, nil, err
			}
			if st.X.Rows != m || st.Y.Rows != n {
				return nil, nil, fmt.Errorf("shard: checkpoint factors (%dx%d users, %dx%d items) do not match the dataset (%d users, %d items)",
					st.X.Rows, st.X.Cols, st.Y.Rows, st.Y.Cols, m, n)
			}
			start, resumedFrom = st.Iteration, st.Iteration
			resumeX, resumeY = st.X, st.Y
		case errors.Is(err, checkpoint.ErrNoCheckpoint):
		default:
			return nil, nil, fmt.Errorf("shard: resuming from %s: %w", cfg.CheckpointDir, err)
		}
	}

	// Coordinator-side factor buffers: assembled from worker shards each
	// half. The initial contents only matter when seeding workers (resumed
	// runs, and any rank respawned before the first exchange); a fresh run
	// overwrites both in the first iteration.
	x := linalg.NewDense(m, k)
	y := host.InitialY(n, k, cfg.Seed)
	if resumeX != nil {
		x, y = resumeX, resumeY
	}
	model := &core.Model{K: k, X: x, Y: y,
		Meta: core.Meta{Lambda: cfg.Lambda, WeightedLambda: cfg.WeightedLambda}}
	info := &TrainInfo{Workers: cfg.Workers, ResumedFrom: resumedFrom, Variant: vname}
	if start >= cfg.Iterations {
		// The checkpoint already covers the requested iterations; nothing
		// to distribute.
		info.FinalWorkers = cfg.Workers
		return model, info, nil
	}

	lis, err := net.Listen("tcp", cfg.ListenAddr)
	if err != nil {
		return nil, nil, fmt.Errorf("shard: coordinator listen: %w", err)
	}
	defer lis.Close()

	var traffic atomic.Int64
	spawn := cfg.Spawn
	if spawn == nil {
		spawn = func(rank int, addr string) (func(), error) {
			go RunWorker(addr, rank)
			return func() {}, nil
		}
	}

	// Head-sample the run: a sampled run traces the coordinator's exchange
	// spans and tells every worker to trace (and later ship) its own.
	runCtx, root := cfg.Tracer.StartRequest(context.Background(), "train", rtrace.SpanContext{})
	if root != nil {
		root.SetAttr("workers", strconv.Itoa(cfg.Workers))
		root.SetAttr("variant", vname)
	}

	sup := &supervisor{
		cfg: &cfg, lis: lis, addr: lis.Addr().String(), spawn: spawn,
		traffic: &traffic, m: m, n: n, k: k, x: x, y: y, vname: vname,
		total: cfg.Workers, workers: make([]*supWorker, cfg.Workers),
		runCtx: runCtx, root: root,
	}
	if cfg.Registry != nil {
		sup.failuresVec = cfg.Registry.Counter("als_dist_worker_failures_total",
			"Distributed-training worker failures detected by the supervisor, by reason.", "reason")
		sup.respawnsC = cfg.Registry.Counter("als_dist_respawns_total",
			"Worker ranks respawned by the distributed-training supervisor.").With()
		sup.deadlineC = cfg.Registry.Counter("als_dist_round_deadline_exceeded_total",
			"Half-iteration exchanges that exceeded the round deadline.").With()
	}
	defer sup.close()

	all := make([]int, cfg.Workers)
	for i := range all {
		all[i] = i
	}
	point0 := resumePoint{iter: start + 1}
	if failed := sup.spawnRanks(all, point0, start > 0); len(failed) > 0 {
		for _, r := range sortedRanks(failed) {
			sup.noteFailure(r, failed[r], root)
		}
		if _, err := sup.recover(failed, point0, root); err != nil {
			return nil, nil, err
		}
	}

	every := cfg.CheckpointEvery
	if every <= 0 {
		every = 1
	}
	keep := cfg.CheckpointKeep
	if keep <= 0 {
		keep = 3
	}
	saveCkpt := func(it int) error {
		st := &checkpoint.State{
			Iteration: it, K: k, Lambda: cfg.Lambda,
			WeightedLambda: cfg.WeightedLambda, Seed: cfg.Seed,
			Variant: vname, X: x, Y: y,
			Precision: cfg.CheckpointPrecision,
		}
		if _, err := checkpoint.Save(fsys, cfg.CheckpointDir, st); err != nil {
			return fmt.Errorf("shard: iteration %d checkpoint: %w", it, err)
		}
		if err := checkpoint.GC(fsys, cfg.CheckpointDir, keep); err != nil {
			return fmt.Errorf("shard: iteration %d checkpoint GC: %w", it, err)
		}
		return nil
	}
	finish := func() {
		info.Seconds = time.Since(sup.started).Seconds()
		info.BroadcastBytes = traffic.Load()
		info.Failures = sup.failuresN
		info.Respawns = sup.respawns
		info.Downscales = sup.downscales
		info.FinalWorkers = sup.total
		if cfg.Registry != nil {
			cfg.Registry.Counter("als_dist_broadcast_bytes_total",
				"Factor-exchange bytes relayed through the distributed trainer coordinator.").
				With().Add(float64(info.BroadcastBytes))
		}
	}
	sup.started = time.Now()
	for it := start + 1; it <= cfg.Iterations; it++ {
		if err := sup.iterate(it); err != nil {
			return nil, nil, fmt.Errorf("shard: %w", err)
		}
		saved := false
		if cfg.CheckpointDir != "" && (it%every == 0 || it == cfg.Iterations) {
			if err := saveCkpt(it); err != nil {
				return nil, nil, err
			}
			saved = true
		}
		select {
		case <-cfg.Interrupt:
			if cfg.CheckpointDir != "" && !saved {
				if err := saveCkpt(it); err != nil {
					return nil, nil, err
				}
			}
			finish()
			return model, info, fmt.Errorf("%w at iteration %d/%d", ErrInterrupted, it, cfg.Iterations)
		default:
		}
	}
	sup.collectSpans()
	if root != nil {
		root.End()
	}
	finish()
	return model, info, nil
}

// resumeMismatch mirrors core.Train's checkpoint compatibility checks.
func resumeMismatch(st *checkpoint.State, cfg *TrainerConfig, vname string) error {
	switch {
	case st.K != cfg.K:
		return fmt.Errorf("shard: checkpoint has k=%d, run wants k=%d", st.K, cfg.K)
	case st.Lambda != cfg.Lambda:
		return fmt.Errorf("shard: checkpoint has lambda=%g, run wants %g", st.Lambda, cfg.Lambda)
	case st.Seed != cfg.Seed:
		return fmt.Errorf("shard: checkpoint has seed=%d, run wants %d", st.Seed, cfg.Seed)
	case st.WeightedLambda != cfg.WeightedLambda:
		return fmt.Errorf("shard: checkpoint lambda convention (weighted=%v) does not match run (weighted=%v)",
			st.WeightedLambda, cfg.WeightedLambda)
	case st.Variant != vname:
		return fmt.Errorf("shard: checkpoint was trained with variant %q, run wants %q", st.Variant, vname)
	case st.Precision != quant.F32:
		// A quantized checkpoint is lossy; resuming from dequantized
		// factors could not stay bit-identical to an uninterrupted run.
		return fmt.Errorf("shard: checkpoint factors are quantized (%v); resume requires a float32 checkpoint", st.Precision)
	}
	return nil
}

// RunWorker connects to a coordinator, identifies as rank, and serves one
// worker's share of a distributed training run: load the dataset the
// config frame describes, then per half-iteration solve the static row
// range this rank owns, send the shard up, and receive the assembled side
// back. While computing it emits heartbeat frames so the coordinator can
// tell a slow worker from a dead one. It returns when training completes or
// the coordinator goes away — a worker never outlives its run.
func RunWorker(coordAddr string, rank int) error {
	c, err := net.Dial("tcp", coordAddr)
	if err != nil {
		return fmt.Errorf("shard: worker %d dialing %s: %w", rank, coordAddr, err)
	}
	w := newWire(c, nil)
	defer w.close()

	hello := []byte{byte(rank), byte(rank >> 8), byte(rank >> 16), byte(rank >> 24)}
	if err := w.writeSmall(frameHello, hello); err != nil {
		return err
	}
	kind, body, err := w.readSmall(nil)
	if err != nil {
		return err
	}
	if kind != frameConfig {
		return fmt.Errorf("shard: worker %d: unexpected frame kind %d (want config)", rank, kind)
	}
	var cfg workerConfig
	if err := json.Unmarshal(body, &cfg); err != nil {
		return fmt.Errorf("shard: worker %d: bad config: %w", rank, err)
	}
	if cfg.Rank != rank {
		return fmt.Errorf("shard: worker %d received config for rank %d", rank, cfg.Rank)
	}

	// A traced run sends its span context right after the config; the worker
	// records its own compute/gather/broadcast spans into a local sample-1.0
	// tracer and ships them back over frameSpans after the final iteration.
	var wtr *rtrace.Tracer
	wctx := context.Background()
	var wroot *rtrace.Span
	if cfg.Trace {
		kind, body, err := w.readSmall(nil)
		if err != nil || kind != frameTraceCtx {
			return fmt.Errorf("shard: worker %d: expected trace context frame (kind=%d): %v", rank, kind, err)
		}
		remote, err := rtrace.ContextFromBinary(body)
		if err != nil {
			return fmt.Errorf("shard: worker %d: bad trace context: %w", rank, err)
		}
		iters := cfg.Iterations - cfg.StartIteration
		wtr = rtrace.New(rtrace.Config{
			Sample:   1,
			Capacity: iters*8 + 16,
			Slowest:  -1,
			Process:  "alstrain-worker" + strconv.Itoa(rank),
		})
		wctx, wroot = wtr.StartRequest(wctx, "worker"+strconv.Itoa(rank), remote)
		wroot.SetAttr("worker", strconv.Itoa(rank))
	}

	// Liveness: while the training loop computes, a side goroutine emits
	// heartbeat frames (writes are mutex-serialized with factor frames). A
	// failed heartbeat write means the coordinator is gone — close the
	// connection so every pending exchange I/O fails and the worker exits
	// instead of computing for a dead run.
	if cfg.HeartbeatMillis > 0 {
		hbStop := make(chan struct{})
		defer close(hbStop)
		go func() {
			t := time.NewTicker(time.Duration(cfg.HeartbeatMillis) * time.Millisecond)
			defer t.Stop()
			for {
				select {
				case <-hbStop:
					return
				case <-t.C:
					if err := w.writeSmall(frameHeartbeat, nil); err != nil {
						w.close()
						return
					}
				}
			}
		}()
	}

	// From here on, failures are reported to the coordinator before
	// returning, so the supervisor sees the worker's message instead of a
	// bare connection reset.
	fail := func(err error) error {
		w.writeSmall(frameError, []byte(err.Error()))
		return err
	}

	v, err := variant.ParseID(cfg.VariantID)
	if err != nil {
		return fail(err)
	}
	mx, err := cfg.Data.Load()
	if err != nil {
		return fail(fmt.Errorf("worker %d: %w", rank, err))
	}
	m, n, k := mx.Rows(), mx.Cols(), cfg.K
	x := linalg.NewDense(m, k)
	y := host.InitialY(n, k, cfg.Seed)
	if cfg.Seeded {
		st := cfg.StartIteration
		if err := w.expectFactors(st, halfX, k, x.Data, 0, m, nil); err != nil {
			return fmt.Errorf("shard: worker %d seed: %w", rank, err)
		}
		if err := w.expectFactors(st, halfY, k, y.Data, 0, n, nil); err != nil {
			return fmt.Errorf("shard: worker %d seed: %w", rank, err)
		}
	}

	// The Y half runs the same row updates on Rᵀ, viewed zero-copy through
	// the CSC arrays exactly as host.Train does.
	rt := &sparse.CSR{NumRows: n, NumCols: m, RowPtr: mx.C.ColPtr, ColIdx: mx.C.RowIdx, Val: mx.C.Val}
	ru := host.NewRangeUpdater(host.Config{
		K: k, Lambda: cfg.Lambda, Workers: cfg.Threads,
		Flat: cfg.Flat, Variant: v, WeightedLambda: cfg.WeightedLambda,
	})
	defer ru.Close()

	lo, hi := Range(m, rank, cfg.Workers)
	ylo, yhi := Range(n, rank, cfg.Workers)
	startIt := cfg.StartIteration + 1
	for it := startIt; it <= cfg.Iterations; it++ {
		if !(it == startIt && cfg.StartY) {
			hctx, hspan := workerHalfSpan(wctx, wroot, it, "x")
			_, cspan := rtrace.StartChild(hctx, "compute")
			err := ru.UpdateRange(mx.R, y, x, lo, hi, it, true)
			cspan.End()
			if err != nil {
				return fail(fmt.Errorf("worker %d iteration %d X: %w", rank, it, err))
			}
			_, gspan := rtrace.StartChild(hctx, "gather")
			err = w.writeFactors(factorHeader{Iter: uint32(it), Half: halfX, Lo: uint32(lo), Rows: uint32(hi - lo), K: uint32(k)}, x.Data[lo*k:hi*k])
			gspan.End()
			if err != nil {
				return err
			}
			_, bspan := rtrace.StartChild(hctx, "broadcast")
			err = w.expectFactors(it, halfX, k, x.Data, 0, m, nil)
			bspan.End()
			hspan.End()
			if err != nil {
				return err
			}
		}

		hctx, hspan := workerHalfSpan(wctx, wroot, it, "y")
		_, cspan := rtrace.StartChild(hctx, "compute")
		err = ru.UpdateRange(rt, x, y, ylo, yhi, it, false)
		cspan.End()
		if err != nil {
			return fail(fmt.Errorf("worker %d iteration %d Y: %w", rank, it, err))
		}
		_, gspan := rtrace.StartChild(hctx, "gather")
		err = w.writeFactors(factorHeader{Iter: uint32(it), Half: halfY, Lo: uint32(ylo), Rows: uint32(yhi - ylo), K: uint32(k)}, y.Data[ylo*k:yhi*k])
		gspan.End()
		if err != nil {
			return err
		}
		_, bspan := rtrace.StartChild(hctx, "broadcast")
		err = w.expectFactors(it, halfY, k, y.Data, 0, n, nil)
		bspan.End()
		hspan.End()
		if err != nil {
			return err
		}
	}
	if wroot != nil {
		wroot.End()
		if err := w.writeSmall(frameSpans, rtrace.EncodeSpans(wtr.Snapshot())); err != nil {
			return fmt.Errorf("shard: worker %d sending spans: %w", rank, err)
		}
	}
	return nil
}

// workerHalfSpan opens a traced worker's per-half-iteration span; untraced
// runs get the untouched context and a nil span back, so the per-phase
// StartChild calls below it all no-op.
func workerHalfSpan(ctx context.Context, root *rtrace.Span, it int, half string) (context.Context, *rtrace.Span) {
	if root == nil {
		return ctx, nil
	}
	hctx, span := rtrace.StartChild(ctx, "iter"+strconv.Itoa(it)+"/"+half)
	return hctx, span
}
