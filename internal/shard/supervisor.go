package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/linalg"
	"repro/internal/obs"
	"repro/internal/rtrace"
)

// ErrInterrupted reports a training run stopped by TrainerConfig.Interrupt
// (alstrain wires SIGINT/SIGTERM into it). The run's latest state is
// checkpointed before the error is returned, so the run is resumable.
var ErrInterrupted = errors.New("shard: training interrupted")

// errRoundDeadline marks a half-iteration exchange that outlived
// RoundTimeout even though the worker kept heartbeating — the
// lost-in-transit case (e.g. a dropped frame) that liveness alone cannot
// catch.
var errRoundDeadline = errors.New("shard: round deadline exceeded")

// errSpawnFailed marks a worker that could not be started or never completed
// its handshake.
var errSpawnFailed = errors.New("shard: worker spawn failed")

// resumePoint names the half-iteration boundary a (re)spawned worker starts
// from: the first half it computes is iteration iter's X half, or its Y half
// when startY is set. The seed a worker needs at any such boundary is
// exactly the coordinator's in-memory factors — the Y half only consumes the
// X side assembled this iteration, and the X half only the Y side of the
// previous one — which is why recovery restarts the interrupted half, never
// the whole run.
type resumePoint struct {
	iter   int
	startY bool
}

// supWorker is one live rank: its framed connection and the stop function
// its spawn returned.
type supWorker struct {
	wire *wire
	stop func()
}

// supervisor owns the worker cohort of a distributed run: it spawns and
// accepts workers, runs the per-half gather/broadcast exchange under
// heartbeat and round deadlines, and — when a worker dies, hangs, or sends a
// corrupt frame — either respawns the rank seeded from the in-memory factors
// or elastically downscales the cohort to the survivors once the respawn
// budget is spent. Downscaling is safe because row updates are pure
// functions of the fixed side: a W'-worker cohort resumed from the same
// boundary produces bit-identical factors (the PR-6 invariance).
type supervisor struct {
	cfg     *TrainerConfig
	lis     net.Listener
	addr    string
	spawn   func(rank int, addr string) (func(), error)
	traffic *atomic.Int64

	m, n, k int
	x, y    *linalg.Dense
	vname   string

	total   int          // current cohort size
	workers []*supWorker // indexed by rank; nil = dead

	started    time.Time
	failuresN  int
	respawns   int
	downscales int
	allStops   []func()

	runCtx context.Context
	root   *rtrace.Span

	failuresVec *obs.Vec
	respawnsC   *obs.Metric
	deadlineC   *obs.Metric
}

func (s *supervisor) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// close shuts the whole cohort down: every connection is closed and every
// stop function ever handed out is invoked (stops are idempotent), so no
// worker outlives the run regardless of how it ended.
func (s *supervisor) close() {
	for _, w := range s.workers {
		if w != nil {
			w.wire.close()
		}
	}
	for _, stop := range s.allStops {
		stop()
	}
}

func (s *supervisor) chaosWrap(c net.Conn) net.Conn {
	if s.cfg.NetChaos != nil {
		return s.cfg.NetChaos.Wrap(c)
	}
	return c
}

// liveRanks lists the cohort's live ranks in order.
func (s *supervisor) liveRanks() []int {
	var ranks []int
	for r, w := range s.workers {
		if w != nil {
			ranks = append(ranks, r)
		}
	}
	return ranks
}

// spawnRanks starts the given ranks, accepts their hellos, and sends each
// its config (plus trace context and factor seeds). Ranks that fail anywhere
// along that path are returned with their errors; successes are installed in
// the cohort.
func (s *supervisor) spawnRanks(ranks []int, point resumePoint, seeded bool) map[int]error {
	failed := map[int]error{}
	stops := map[int]func(){}
	want := map[int]bool{}
	deadline := time.Now().Add(s.cfg.SpawnTimeout)
	for _, r := range ranks {
		if s.workers[r] != nil {
			s.shutdownRank(r)
		}
		stop, err := s.spawn(r, s.addr)
		if err != nil {
			failed[r] = fmt.Errorf("%w: rank %d: %v", errSpawnFailed, r, err)
			continue
		}
		s.allStops = append(s.allStops, stop)
		stops[r] = stop
		want[r] = true
	}
	got, acceptErr := s.acceptRanks(want, deadline)
	for r := range want {
		wc, ok := got[r]
		if !ok {
			stops[r]()
			failed[r] = fmt.Errorf("%w: rank %d handshake: %v", errSpawnFailed, r, acceptErr)
			continue
		}
		if err := s.sendSetup(r, wc, point, seeded, deadline); err != nil {
			wc.close()
			stops[r]()
			failed[r] = fmt.Errorf("%w: rank %d setup: %v", errSpawnFailed, r, err)
			continue
		}
		s.workers[r] = &supWorker{wire: wc, stop: stops[r]}
	}
	return failed
}

// acceptRanks collects hello-identified connections for the wanted ranks. A
// connection whose hello cannot be read (severed mid-handshake) cannot be
// attributed to a rank, so it just reduces the number of hellos still
// worth waiting for; whoever stays unmatched is the failure.
func (s *supervisor) acceptRanks(want map[int]bool, deadline time.Time) (map[int]*wire, error) {
	got := map[int]*wire{}
	if len(want) == 0 {
		return got, nil
	}
	if tl, ok := s.lis.(*net.TCPListener); ok {
		tl.SetDeadline(deadline)
	}
	var lastErr error = fmt.Errorf("no hello before deadline")
	for broken := 0; len(got)+broken < len(want); {
		c, err := s.lis.Accept()
		if err != nil {
			lastErr = err
			break
		}
		c = s.chaosWrap(c)
		c.SetReadDeadline(deadline)
		wc := newWire(c, s.traffic)
		kind, body, err := wc.readSmall(nil)
		if err != nil || kind != frameHello || len(body) != 4 {
			wc.close()
			broken++
			lastErr = fmt.Errorf("bad hello from %s (kind=%d err=%v)", c.RemoteAddr(), kind, err)
			continue
		}
		rank := int(int32(uint32(body[0]) | uint32(body[1])<<8 | uint32(body[2])<<16 | uint32(body[3])<<24))
		if !want[rank] || got[rank] != nil {
			wc.close()
			broken++
			lastErr = fmt.Errorf("hello with unexpected or duplicate rank %d", rank)
			continue
		}
		c.SetReadDeadline(time.Time{})
		got[rank] = wc
	}
	return got, lastErr
}

// sendSetup ships a freshly accepted worker its config frame, the trace
// context when the run is traced, and — when seeded — both factor matrices
// at the resume point's boundary, so the worker can start mid-run.
func (s *supervisor) sendSetup(rank int, wc *wire, point resumePoint, seeded bool, deadline time.Time) error {
	cfg := s.cfg
	wcfg := workerConfig{
		Workers: s.total, Rank: rank,
		K: s.k, Lambda: cfg.Lambda, Iterations: cfg.Iterations, Seed: cfg.Seed,
		WeightedLambda: cfg.WeightedLambda, Flat: cfg.Flat,
		VariantID: cfg.Variant.ID(), Threads: cfg.Threads,
		StartIteration: point.iter - 1, StartY: point.startY,
		Seeded:          seeded,
		HeartbeatMillis: int(cfg.HeartbeatInterval / time.Millisecond),
		Data:            cfg.Data,
		Trace:           s.root != nil,
	}
	body, err := json.Marshal(wcfg)
	if err != nil {
		return err
	}
	wc.c.SetWriteDeadline(deadline)
	defer wc.c.SetWriteDeadline(time.Time{})
	if err := wc.writeSmall(frameConfig, body); err != nil {
		return fmt.Errorf("sending config: %w", err)
	}
	if s.root != nil {
		if err := wc.writeSmall(frameTraceCtx, s.root.Context().AppendBinary(nil)); err != nil {
			return fmt.Errorf("sending trace context: %w", err)
		}
	}
	if seeded {
		it := uint32(point.iter - 1)
		if err := wc.writeFactors(factorHeader{Iter: it, Half: halfX, Lo: 0, Rows: uint32(s.m), K: uint32(s.k)}, s.x.Data); err != nil {
			return fmt.Errorf("seeding X: %w", err)
		}
		if err := wc.writeFactors(factorHeader{Iter: it, Half: halfY, Lo: 0, Rows: uint32(s.n), K: uint32(s.k)}, s.y.Data); err != nil {
			return fmt.Errorf("seeding Y: %w", err)
		}
	}
	return nil
}

// shutdownRank severs a rank: connection closed, stop invoked, slot cleared.
func (s *supervisor) shutdownRank(rank int) {
	if w := s.workers[rank]; w != nil {
		w.wire.close()
		w.stop()
		s.workers[rank] = nil
	}
}

// classifyFailure buckets a worker failure for the
// als_dist_worker_failures_total reason label.
func classifyFailure(err error) string {
	var wf *workerFailure
	switch {
	case errors.Is(err, errRoundDeadline):
		return "round-deadline"
	case errors.Is(err, ErrFrameCorrupt):
		return "corrupt"
	case errors.Is(err, errSpawnFailed):
		return "spawn"
	case errors.As(err, &wf):
		return "worker"
	case isTimeout(err):
		return "hang"
	default:
		return "conn"
	}
}

func isTimeout(err error) bool {
	if errors.Is(err, os.ErrDeadlineExceeded) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// noteFailure records one worker failure — counter, trace annotation, log —
// and tears the rank down.
func (s *supervisor) noteFailure(rank int, err error, span *rtrace.Span) {
	reason := classifyFailure(err)
	s.failuresN++
	if s.failuresVec != nil {
		s.failuresVec.With(reason).Inc()
	}
	if reason == "round-deadline" && s.deadlineC != nil {
		s.deadlineC.Inc()
	}
	if span != nil {
		span.SetAttr("failed_worker"+strconv.Itoa(rank), reason)
	}
	s.logf("shard: worker %d failed (%s): %v", rank, reason, err)
	s.shutdownRank(rank)
}

func sortedRanks(m map[int]error) []int {
	ranks := make([]int, 0, len(m))
	for r := range m {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	return ranks
}

// recover replaces or removes the failed ranks so the run can resume from
// point: respawn them (seeded from the in-memory factors) while the respawn
// budget lasts, otherwise kill the cohort and restart the survivors' worth
// of fresh ranks from the same boundary. It returns the ranks that must redo
// the interrupted half — the respawned ranks, or the whole new cohort after
// a downscale — or an error once no workers remain.
func (s *supervisor) recover(failed map[int]error, point resumePoint, span *rtrace.Span) ([]int, error) {
	pending := map[int]bool{}
	for len(failed) > 0 {
		ranks := sortedRanks(failed)
		if s.cfg.MaxRespawns > 0 && s.respawns+len(ranks) <= s.cfg.MaxRespawns {
			s.respawns += len(ranks)
			if s.respawnsC != nil {
				s.respawnsC.Add(float64(len(ranks)))
			}
			if span != nil {
				span.SetAttr("respawned", strconv.Itoa(s.respawns))
			}
			s.logf("shard: respawning worker(s) %v at iteration %d (startY=%v), %d/%d respawns used",
				ranks, point.iter, point.startY, s.respawns, s.cfg.MaxRespawns)
			still := s.spawnRanks(ranks, point, true)
			for _, r := range ranks {
				if _, bad := still[r]; !bad {
					pending[r] = true
				}
			}
			for r, err := range still {
				s.noteFailure(r, err, span)
			}
			failed = still
			continue
		}
		// Elastic downscale: the respawn budget is spent (or respawning is
		// disabled), so the run continues on the survivors alone. The whole
		// cohort is torn down and a fresh, smaller one starts from the same
		// half boundary — bit-identical to a clean run at that worker count.
		survivors := s.total - len(ranks)
		if survivors <= 0 {
			return nil, fmt.Errorf("shard: all workers lost: %w", failed[ranks[0]])
		}
		s.downscales++
		if span != nil {
			span.SetAttr("downscaled_to", strconv.Itoa(survivors))
		}
		s.logf("shard: downscaling %d -> %d workers at iteration %d (startY=%v)",
			s.total, survivors, point.iter, point.startY)
		for r := range s.workers {
			s.shutdownRank(r)
		}
		s.total = survivors
		s.workers = make([]*supWorker, survivors)
		all := make([]int, survivors)
		for i := range all {
			all[i] = i
		}
		pending = map[int]bool{}
		still := s.spawnRanks(all, point, true)
		for _, r := range all {
			if _, bad := still[r]; !bad {
				pending[r] = true
			}
		}
		for r, err := range still {
			s.noteFailure(r, err, span)
		}
		failed = still
	}
	out := make([]int, 0, len(pending))
	for r := range pending {
		out = append(out, r)
	}
	sort.Ints(out)
	return out, nil
}

// iterate runs one full iteration: the X half, then the Y half.
func (s *supervisor) iterate(it int) error {
	if err := s.half(it, halfX); err != nil {
		return fmt.Errorf("iteration %d X half: %w", it, err)
	}
	if err := s.half(it, halfY); err != nil {
		return fmt.Errorf("iteration %d Y half: %w", it, err)
	}
	return nil
}

// half runs one supervised half-iteration exchange: gather every pending
// shard (recovering failed ranks and re-gathering until the side is fully
// assembled), then broadcast the assembled side. Broadcast failures are
// recovered at the *next* half boundary — the dead worker already
// contributed its shard, so the model needs nothing more from it until then.
func (s *supervisor) half(it int, half byte) error {
	rows, dst, name := s.m, s.x.Data, "x"
	if half == halfY {
		rows, dst, name = s.n, s.y.Data, "y"
	}
	hctx := s.runCtx
	var span *rtrace.Span
	if s.root != nil {
		hctx, span = rtrace.StartChild(s.runCtx, "iter"+strconv.Itoa(it)+"/"+name)
	}
	defer span.End()

	point := resumePoint{iter: it, startY: half == halfY}
	pending := s.liveRanks()
	for {
		failed := s.gather(hctx, pending, it, half, rows, dst)
		if len(failed) == 0 {
			break
		}
		for _, r := range sortedRanks(failed) {
			s.noteFailure(r, failed[r], span)
		}
		var err error
		pending, err = s.recover(failed, point, span)
		if err != nil {
			return err
		}
	}

	bfailed := s.broadcast(hctx, it, half, rows, dst)
	if len(bfailed) == 0 {
		return nil
	}
	for _, r := range sortedRanks(bfailed) {
		s.noteFailure(r, bfailed[r], span)
	}
	next := resumePoint{iter: it, startY: true}
	if half == halfY {
		next = resumePoint{iter: it + 1}
	}
	if next.iter > s.cfg.Iterations {
		// Final broadcast: the model is already complete; the failed workers
		// simply exit without their last copy.
		return nil
	}
	_, err := s.recover(bfailed, next, span)
	return err
}

// gather collects the pending ranks' shards concurrently; each rank writes a
// disjoint row range of dst. Failed ranks come back with their errors.
func (s *supervisor) gather(ctx context.Context, pending []int, it int, half byte, rows int, dst []float32) map[int]error {
	gctx := context.Background()
	var gspan *rtrace.Span
	if s.root != nil {
		gctx, gspan = rtrace.StartChild(ctx, "gather")
	}
	defer gspan.End()
	roundDeadline := time.Now().Add(s.cfg.RoundTimeout)
	var mu sync.Mutex
	failed := map[int]error{}
	var wg sync.WaitGroup
	for _, rank := range pending {
		w := s.workers[rank]
		if w == nil {
			failed[rank] = fmt.Errorf("%w: rank %d has no connection", errSpawnFailed, rank)
			continue
		}
		lo, hi := Range(rows, rank, s.total)
		wg.Add(1)
		go func(rank int, w *supWorker, lo, hi int) {
			defer wg.Done()
			var wait *rtrace.Span
			if gspan != nil {
				_, wait = rtrace.StartChild(gctx, "wait worker"+strconv.Itoa(rank))
			}
			err := s.gatherOne(w, it, half, dst, lo, hi-lo, roundDeadline)
			wait.End()
			if err != nil {
				mu.Lock()
				failed[rank] = err
				mu.Unlock()
			}
		}(rank, w, lo, hi)
	}
	wg.Wait()
	return failed
}

// gatherOne reads one rank's shard under liveness supervision: the read
// deadline sits one HeartbeatTimeout out (refreshed on every heartbeat the
// worker emits while computing) but never beyond the round deadline, so a
// hung worker surfaces within seconds and a lost frame within the round.
func (s *supervisor) gatherOne(w *supWorker, it int, half byte, dst []float32, lo, nrows int, roundDeadline time.Time) error {
	arm := func() {
		dl := time.Now().Add(s.cfg.HeartbeatTimeout)
		if dl.After(roundDeadline) {
			dl = roundDeadline
		}
		w.wire.c.SetReadDeadline(dl)
	}
	arm()
	err := w.wire.expectFactors(it, half, s.k, dst, lo, nrows, arm)
	if err != nil && isTimeout(err) && !time.Now().Before(roundDeadline) {
		return fmt.Errorf("%w: %v", errRoundDeadline, err)
	}
	return err
}

// broadcast sends the assembled side to every live rank concurrently, under
// a write deadline so one wedged connection cannot stall the round.
func (s *supervisor) broadcast(ctx context.Context, it int, half byte, rows int, dst []float32) map[int]error {
	var bspan *rtrace.Span
	if s.root != nil {
		_, bspan = rtrace.StartChild(ctx, "broadcast")
	}
	defer bspan.End()
	deadline := time.Now().Add(s.cfg.RoundTimeout)
	h := factorHeader{Iter: uint32(it), Half: half, Lo: 0, Rows: uint32(rows), K: uint32(s.k)}
	var mu sync.Mutex
	failed := map[int]error{}
	var wg sync.WaitGroup
	for _, rank := range s.liveRanks() {
		w := s.workers[rank]
		wg.Add(1)
		go func(rank int, w *supWorker) {
			defer wg.Done()
			w.wire.c.SetWriteDeadline(deadline)
			err := w.wire.writeFactors(h, dst)
			w.wire.c.SetWriteDeadline(time.Time{})
			if err != nil {
				mu.Lock()
				failed[rank] = err
				mu.Unlock()
			}
		}(rank, w)
	}
	wg.Wait()
	return failed
}

// collectSpans drains each surviving worker's end-of-run frameSpans bundle
// into the tracer. Span shipping is best-effort: a worker that died after
// the final broadcast loses its spans, not the run.
func (s *supervisor) collectSpans() {
	if s.root == nil {
		return
	}
	for rank, w := range s.workers {
		if w == nil {
			s.root.SetAttr("spans_lost_worker"+strconv.Itoa(rank), "dead")
			continue
		}
		arm := func() { w.wire.c.SetReadDeadline(time.Now().Add(s.cfg.Timeout)) }
		arm()
		kind, body, err := w.wire.readSmall(arm)
		if err != nil || kind != frameSpans {
			s.root.SetAttr("spans_lost_worker"+strconv.Itoa(rank), fmt.Sprintf("kind=%d err=%v", kind, err))
			continue
		}
		spans, err := rtrace.DecodeSpans(body)
		if err != nil {
			s.root.SetAttr("spans_lost_worker"+strconv.Itoa(rank), err.Error())
			continue
		}
		s.cfg.Tracer.Ingest(spans)
	}
}
