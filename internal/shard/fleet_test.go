package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/linalg"
	"repro/internal/quant"
	"repro/internal/serve"
	"repro/internal/sparse"
)

// tieModel builds a compact model whose scores are small integers with
// plenty of exact cross-shard ties: score(u, i) = i%5 + (u%2)·((i/5)%3).
// Integer-valued factors keep every Gram/RHS sum exactly representable, so
// the distributed fold-in solve is bit-identical to the single-process one
// regardless of summation order.
func tieModel(users, items, k int) *core.Model {
	x := linalg.NewDense(users, k)
	y := linalg.NewDense(items, k)
	for u := 0; u < users; u++ {
		x.Set(u, 0, 1)
		x.Set(u, 1, float32(u%2))
	}
	for i := 0; i < items; i++ {
		y.Set(i, 0, float32(i%5))
		y.Set(i, 1, float32((i/5)%3))
	}
	m := &core.Model{K: k, X: x, Y: y,
		UserIDs: make([]int64, users), ItemIDs: make([]int64, items),
		Meta: core.Meta{Lambda: 0.5}}
	for u := range m.UserIDs {
		m.UserIDs[u] = int64(500 + u)
	}
	for i := range m.ItemIDs {
		m.ItemIDs[i] = int64(1000 + i)
	}
	return m
}

// ratedSet marks user 0 as having rated the given items.
func ratedSet(users, items int, rated ...int) *sparse.CSR {
	coo := sparse.NewCOO(users, items)
	for _, it := range rated {
		coo.Append(0, it, 5)
	}
	coo.Rows, coo.Cols = users, items
	m, err := coo.ToCSR()
	if err != nil {
		panic(err)
	}
	return m
}

// fleet is a scatter-gather test deployment: N shard replicas behind one
// frontend, plus a full-catalog reference server with the same model.
type fleet struct {
	front    *Frontend
	frontTS  *httptest.Server
	replicas []*Replica
	servers  []*serve.Server
	shardTS  []*httptest.Server
	full     *serve.Server
	fullTS   *httptest.Server
}

func newFleet(t *testing.T, m *core.Model, rated *sparse.CSR, shards int) *fleet {
	t.Helper()
	return newFleetPrec(t, m, rated, shards, quant.F32)
}

// newFleetPrec is newFleet with every server — replicas and the
// full-catalog reference — scoring at the given precision.
func newFleetPrec(t *testing.T, m *core.Model, rated *sparse.CSR, shards int, prec quant.Precision) *fleet {
	t.Helper()
	f := &fleet{}
	urls := make([]string, shards)
	for i := 0; i < shards; i++ {
		srv := serve.New(serve.Config{})
		srv.SetPrecision(prec)
		rep, err := NewReplica(srv, ReplicaConfig{Index: i, Count: shards})
		if err != nil {
			t.Fatal(err)
		}
		rep.Swap(m, rated, "v1")
		ts := httptest.NewServer(rep.Handler())
		t.Cleanup(func() { ts.Close(); srv.Close() })
		f.replicas = append(f.replicas, rep)
		f.servers = append(f.servers, srv)
		f.shardTS = append(f.shardTS, ts)
		urls[i] = ts.URL
	}
	front, err := NewFrontend(FrontendConfig{Shards: urls, ShardTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	front.ProbeOnce(context.Background())
	f.front = front
	f.frontTS = httptest.NewServer(front.Handler())
	t.Cleanup(f.frontTS.Close)

	f.full = serve.New(serve.Config{})
	f.full.SetPrecision(prec)
	f.full.Swap(m, rated, "v1")
	f.fullTS = httptest.NewServer(f.full.Handler())
	t.Cleanup(func() { f.fullTS.Close(); f.full.Close() })
	return f
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func postJSON(t *testing.T, url string, body, out any) int {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func sameItems(t *testing.T, label string, got, want []serve.RecItem) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d items, want %d\ngot:  %+v\nwant: %+v", label, len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: item %d = %+v, want %+v\ngot:  %+v\nwant: %+v",
				label, i, got[i], want[i], got, want)
		}
	}
}

// TestScatterGatherMergeIdentical holds the frontend's merged top-N
// item-for-item identical — indices, external IDs, scores, and the
// deterministic lower-index tie-break — to a single process serving the
// full catalog, across fleet sizes including ones where n exceeds every
// shard's local item count.
func TestScatterGatherMergeIdentical(t *testing.T) {
	const users, items, k = 5, 23, 3
	m := tieModel(users, items, k)
	rated := ratedSet(users, items, 2, 9, 22)
	for _, shards := range []int{1, 2, 3, 7} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			f := newFleet(t, m, rated, shards)
			// n=10 and n=40 exceed the 3-4 items a 7-way shard holds; n=40
			// exceeds the whole catalog and must return every unrated item.
			for _, n := range []int{1, 3, 10, 40} {
				for _, user := range []int64{500, 501, 504} {
					var want serve.RecommendResponse
					if code := getJSON(t, fmt.Sprintf("%s/v1/recommend?user=%d&n=%d", f.fullTS.URL, user, n), &want); code != 200 {
						t.Fatalf("full server: HTTP %d", code)
					}
					var got RecommendResponse
					if code := getJSON(t, fmt.Sprintf("%s/v1/recommend?user=%d&n=%d", f.frontTS.URL, user, n), &got); code != 200 {
						t.Fatalf("frontend: HTTP %d", code)
					}
					if got.Partial || got.ShardsOK != shards {
						t.Fatalf("healthy fleet answered partial=%v shards_ok=%d", got.Partial, got.ShardsOK)
					}
					sameItems(t, fmt.Sprintf("user=%d n=%d", user, n), got.Items, want.Items)
				}
			}
			// Unknown user: every shard rejects with 404, and so must the
			// frontend (a shard must NOT be marked down for it).
			if code := getJSON(t, f.frontTS.URL+"/v1/recommend?user=99999&n=3", nil); code != 404 {
				t.Fatalf("unknown user: HTTP %d, want 404", code)
			}
			if up, total := f.front.Healthy(); up != total {
				t.Fatalf("4xx marked shards down: %d/%d up", up, total)
			}
		})
	}
}

// TestScatterGatherQuantizedMergeIdentical pins the quantized fleet to the
// single-process quantized server: because factors are quantized per row,
// a replica's zero-copy slice of the catalog encoding scores every item
// bit-identically to the full server, so the merged top-N — scores and the
// lower-index tie-break over tieModel's many exact ties — must match
// item-for-item at every precision and fleet size.
func TestScatterGatherQuantizedMergeIdentical(t *testing.T) {
	const users, items, k = 5, 23, 3
	m := tieModel(users, items, k)
	rated := ratedSet(users, items, 2, 9, 22)
	for _, prec := range []quant.Precision{quant.F16, quant.I8} {
		for _, shards := range []int{1, 2, 3} {
			t.Run(fmt.Sprintf("%v/shards=%d", prec, shards), func(t *testing.T) {
				f := newFleetPrec(t, m, rated, shards, prec)
				var info InfoResponse
				if code := getJSON(t, f.shardTS[0].URL+"/shard/v1/info", &info); code != 200 {
					t.Fatalf("/shard/v1/info: HTTP %d", code)
				}
				if info.Precision != prec.String() {
					t.Fatalf("shard info precision %q, want %q", info.Precision, prec)
				}
				for _, n := range []int{1, 3, 10, 40} {
					for _, user := range []int64{500, 501, 504} {
						var want serve.RecommendResponse
						if code := getJSON(t, fmt.Sprintf("%s/v1/recommend?user=%d&n=%d", f.fullTS.URL, user, n), &want); code != 200 {
							t.Fatalf("full server: HTTP %d", code)
						}
						var got RecommendResponse
						if code := getJSON(t, fmt.Sprintf("%s/v1/recommend?user=%d&n=%d", f.frontTS.URL, user, n), &got); code != 200 {
							t.Fatalf("frontend: HTTP %d", code)
						}
						if got.Partial || got.ShardsOK != shards {
							t.Fatalf("healthy fleet answered partial=%v shards_ok=%d", got.Partial, got.ShardsOK)
						}
						sameItems(t, fmt.Sprintf("user=%d n=%d", user, n), got.Items, want.Items)
					}
				}
			})
		}
	}
}

// TestFoldInAcrossShards holds the distributed fold-in — partial normal
// equations gathered per shard, solved once at the frontend, scored across
// the fleet — bit-identical to the single-process fold-in path.
func TestFoldInAcrossShards(t *testing.T) {
	const users, items, k = 5, 23, 3
	m := tieModel(users, items, k)
	f := newFleet(t, m, nil, 3)
	req := serve.FoldInRequest{
		Items:   []int32{1, 6, 11, 17, 22}, // spans all three slices
		Ratings: []float32{5, 3, 4, 1, 2},
		N:       8,
	}
	var want serve.FoldInResponse
	if code := postJSON(t, f.fullTS.URL+"/v1/foldin", req, &want); code != 200 {
		t.Fatalf("full server fold-in: HTTP %d", code)
	}
	var got FoldInResponse
	if code := postJSON(t, f.frontTS.URL+"/v1/foldin", req, &got); code != 200 {
		t.Fatalf("frontend fold-in: HTTP %d", code)
	}
	if got.Partial {
		t.Fatal("healthy fleet answered partial fold-in")
	}
	sameItems(t, "foldin", got.Items, want.Items)

	// The single-process validation rules hold at the frontend too.
	for _, bad := range []serve.FoldInRequest{
		{Items: []int32{1, 2}, Ratings: []float32{5}, N: 3},
		{Items: []int32{1, 1}, Ratings: []float32{5, 4}, N: 3},
		{Items: []int32{int32(items)}, Ratings: []float32{5}, N: 3},
		{Items: nil, Ratings: nil, N: 3},
	} {
		if code := postJSON(t, f.frontTS.URL+"/v1/foldin", bad, nil); code != 400 {
			t.Fatalf("bad fold-in %+v: HTTP %d, want 400", bad, code)
		}
	}
	// Fold-in sent directly to a shard replica is refused: it would solve
	// against a partial Gram matrix and return silently wrong factors.
	if code := postJSON(t, f.shardTS[0].URL+"/v1/foldin", req, nil); code != 501 {
		t.Fatalf("shard-direct fold-in: HTTP %d, want 501", code)
	}
}

// TestFoldInPurgesAllShards is the regression test for the distributed
// write path: a fold-in that names a user must purge that user's cached
// responses on every shard, or a later /v1/recommend through the frontend
// would merge one shard's fresh slice with another's stale cache entry.
func TestFoldInPurgesAllShards(t *testing.T) {
	const users, items, k = 5, 23, 3
	m := tieModel(users, items, k)
	f := newFleet(t, m, nil, 3)
	const user = int64(501)

	// Warm every shard's LRU through the frontend.
	var warm RecommendResponse
	if code := getJSON(t, fmt.Sprintf("%s/v1/recommend?user=%d&n=5", f.frontTS.URL, user), &warm); code != 200 {
		t.Fatalf("warming: HTTP %d", code)
	}
	dense := int(user - 500)
	for i, srv := range f.servers {
		if got := srv.ResponseCache().UserEntries(dense); got != 1 {
			t.Fatalf("shard %d: %d cached entries for user after warm, want 1", i, got)
		}
	}

	u := user
	req := serve.FoldInRequest{
		Items: []int32{0, 8, 20}, Ratings: []float32{5, 4, 3}, N: 5, User: &u,
	}
	if code := postJSON(t, f.frontTS.URL+"/v1/foldin", req, nil); code != 200 {
		t.Fatalf("fold-in: HTTP %d", code)
	}
	for i, srv := range f.servers {
		if got := srv.ResponseCache().UserEntries(dense); got != 0 {
			t.Fatalf("shard %d still holds %d cached entries for the folded-in user", i, got)
		}
	}
}

var partialCounterRe = regexp.MustCompile(`(?m)^als_shard_partial_total (\d+)`)

func partialCount(t *testing.T, f *Frontend) int {
	t.Helper()
	var buf bytes.Buffer
	if err := f.Registry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	m := partialCounterRe.FindStringSubmatch(buf.String())
	if m == nil {
		t.Fatalf("exposition lacks als_shard_partial_total:\n%s", buf.String())
	}
	n, err := strconv.Atoi(m[1])
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestFrontendDegradationAndRecovery kills a shard mid-service and checks
// the documented degradation ladder: requests keep answering from the
// healthy shard flagged partial, als_shard_partial_total counts them,
// /readyz goes 503 — and after the shard restarts on the same address the
// fleet recovers to full, non-partial answers.
func TestFrontendDegradationAndRecovery(t *testing.T) {
	const users, items, k = 5, 23, 3
	m := tieModel(users, items, k)

	// Shard 0 lives on a plain httptest server; shard 1 on a hand-rolled
	// listener so it can be killed and restarted on the same address.
	srv0 := serve.New(serve.Config{})
	rep0, err := NewReplica(srv0, ReplicaConfig{Index: 0, Count: 2})
	if err != nil {
		t.Fatal(err)
	}
	rep0.Swap(m, nil, "v1")
	ts0 := httptest.NewServer(rep0.Handler())
	defer ts0.Close()
	defer srv0.Close()

	srv1 := serve.New(serve.Config{})
	rep1, err := NewReplica(srv1, ReplicaConfig{Index: 1, Count: 2})
	if err != nil {
		t.Fatal(err)
	}
	rep1.Swap(m, nil, "v1")
	defer srv1.Close()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis.Addr().String()
	hs1 := &http.Server{Handler: rep1.Handler()}
	go hs1.Serve(lis)

	front, err := NewFrontend(FrontendConfig{
		Shards:       []string{ts0.URL, "http://" + addr},
		ShardTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	front.ProbeOnce(context.Background())
	if up, total := front.Healthy(); up != 2 || total != 2 {
		t.Fatalf("fresh fleet: %d/%d up", up, total)
	}
	fts := httptest.NewServer(front.Handler())
	defer fts.Close()

	var full RecommendResponse
	if code := getJSON(t, fts.URL+"/v1/recommend?user=500&n=10", &full); code != 200 {
		t.Fatalf("healthy request: HTTP %d", code)
	}
	if full.Partial {
		t.Fatal("healthy fleet answered partial")
	}

	// Kill shard 1.
	hs1.Close()
	var degraded RecommendResponse
	if code := getJSON(t, fts.URL+"/v1/recommend?user=500&n=10", &degraded); code != 200 {
		t.Fatalf("degraded request: HTTP %d", code)
	}
	if !degraded.Partial || degraded.ShardsOK != 1 {
		t.Fatalf("killed shard: partial=%v shards_ok=%d, want partial from 1 shard", degraded.Partial, degraded.ShardsOK)
	}
	if len(degraded.Items) == 0 {
		t.Fatal("degraded response returned no items from the surviving shard")
	}
	if got := partialCount(t, front); got < 1 {
		t.Fatalf("als_shard_partial_total = %d after degraded request, want >= 1", got)
	}
	if code := getJSON(t, fts.URL+"/readyz", nil); code != 503 {
		t.Fatalf("degraded /readyz: HTTP %d, want 503", code)
	}
	if err := front.Ready(); err == nil {
		t.Fatal("Ready() reported healthy with a dead shard")
	}

	// Restart shard 1 on the same address and let the prober find it.
	lis2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("rebinding %s: %v", addr, err)
	}
	hs2 := &http.Server{Handler: rep1.Handler()}
	go hs2.Serve(lis2)
	defer hs2.Close()
	front.ProbeOnce(context.Background())
	if up, _ := front.Healthy(); up != 2 {
		t.Fatalf("after restart: %d/2 up", up)
	}
	if code := getJSON(t, fts.URL+"/readyz", nil); code != 200 {
		t.Fatalf("recovered /readyz: HTTP %d, want 200", code)
	}
	var recovered RecommendResponse
	if code := getJSON(t, fts.URL+"/v1/recommend?user=500&n=10", &recovered); code != 200 {
		t.Fatalf("recovered request: HTTP %d", code)
	}
	if recovered.Partial {
		t.Fatal("recovered fleet still answering partial")
	}
	sameItems(t, "recovered", recovered.Items, full.Items)
}
