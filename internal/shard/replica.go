package shard

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/linalg"
	"repro/internal/serve"
	"repro/internal/sparse"
)

// scoreMaxN bounds a /shard/v1/score heap independently of the serving
// config (the frontend enforces its own MaxN; this is the shard's backstop
// against an unbounded internal request).
const scoreMaxN = 10000

// ReplicaConfig describes one shard replica's place in the fleet.
type ReplicaConfig struct {
	// Index / Count name the shard: the replica serves item range
	// Range(total, Index, Count).
	Index, Count int
	// MaxStaleness bounds /readyz freshness when the replica follows a
	// checkpoint watcher (0 disables the age check; see serve.Readiness).
	MaxStaleness time.Duration
	// Clock overrides time for readiness (tests); nil is real time.
	Clock checkpoint.Clock
}

// Replica wraps a serve.Server into one shard of the item catalog. The
// ordinary endpoints keep working — /v1/recommend answers partial top-N
// over the local slice with global item indices — and four internal
// endpoints give the scatter-gather frontend what it needs:
//
//	GET  /shard/v1/info      shard identity, slice bounds, model meta
//	POST /shard/v1/partials  partial Gram/RHS terms for a fold-in solve
//	POST /shard/v1/score     top-N of the local slice for a given factor
//	POST /shard/v1/purge     drop a user's cached responses (fold-in write)
//
// plus a public GET /readyz, so frontends health-check replicas without
// needing the debug listener.
type Replica struct {
	srv   *serve.Server
	cfg   ReplicaConfig
	ready func() error
	mux   *http.ServeMux
}

// NewReplica wraps srv as shard Index of Count.
func NewReplica(srv *serve.Server, cfg ReplicaConfig) (*Replica, error) {
	if cfg.Count < 1 || cfg.Index < 0 || cfg.Index >= cfg.Count {
		return nil, fmt.Errorf("shard: replica %d/%d is not 0 <= i < N", cfg.Index, cfg.Count)
	}
	r := &Replica{srv: srv, cfg: cfg,
		ready: serve.Readiness(srv, cfg.MaxStaleness, cfg.Clock)}
	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	mux.HandleFunc("GET /readyz", r.handleReady)
	mux.HandleFunc("GET /shard/v1/info", srv.Instrument("shardinfo", r.handleInfo))
	mux.HandleFunc("POST /shard/v1/partials", srv.Instrument("partials", r.handlePartials))
	mux.HandleFunc("POST /shard/v1/score", srv.Instrument("score", r.handleScore))
	mux.HandleFunc("POST /shard/v1/purge", srv.Instrument("purge", r.handlePurge))
	mux.HandleFunc("POST /admin/swap", srv.Instrument("swap", r.handleSwap))
	r.mux = mux
	return r, nil
}

// Handler returns the replica's routing (shard endpoints layered over the
// wrapped server's).
func (r *Replica) Handler() http.Handler { return r.mux }

// Server returns the wrapped serving core.
func (r *Replica) Server() *serve.Server { return r.srv }

// Swap slices a full model down to this shard's range and installs it.
func (r *Replica) Swap(m *core.Model, rated *sparse.CSR, version string) *serve.Snapshot {
	view, off, total := SliceModel(m, r.cfg.Index, r.cfg.Count)
	return r.srv.SwapShard(view, rated, version, off, total)
}

// Transform is the serve.WatcherConfig.Transform hook: it slices each
// checkpoint the watcher loads down to this shard's range, making the
// checkpoint directory the fleet's shard-sync mechanism.
func (r *Replica) Transform(m *core.Model) (*core.Model, int, int) {
	return SliceModel(m, r.cfg.Index, r.cfg.Count)
}

func (r *Replica) handleReady(w http.ResponseWriter, _ *http.Request) {
	if err := r.ready(); err != nil {
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	w.Write([]byte("ok\n"))
}

// InfoResponse answers /shard/v1/info.
type InfoResponse struct {
	Shard          int     `json:"shard"`
	Of             int     `json:"of"`
	ItemOffset     int     `json:"item_offset"`
	ShardItems     int     `json:"shard_items"`
	TotalItems     int     `json:"total_items"`
	Users          int     `json:"users"`
	K              int     `json:"k"`
	Lambda         float32 `json:"lambda"`
	WeightedLambda bool    `json:"weighted_lambda"`
	Compact        bool    `json:"compact"`
	Precision      string  `json:"precision"` // scoring precision of this shard's snapshot
	Version        string  `json:"version"`
	Seq            uint64  `json:"seq"`
}

func (r *Replica) handleInfo(w http.ResponseWriter, _ *http.Request) {
	sn := r.srv.Current()
	if sn == nil {
		httpError(w, http.StatusServiceUnavailable, "no model loaded")
		return
	}
	total, off := sn.ItemTotal, sn.ItemOffset
	if total == 0 {
		total = sn.Model.Y.Rows
	}
	writeJSON(w, InfoResponse{
		Shard: r.cfg.Index, Of: r.cfg.Count,
		ItemOffset: off, ShardItems: sn.Model.Y.Rows, TotalItems: total,
		Users: sn.Model.X.Rows, K: sn.Model.K,
		Lambda: sn.Model.Meta.Lambda, WeightedLambda: sn.Model.Meta.WeightedLambda,
		Compact:   sn.Model.UserIDs != nil,
		Precision: sn.Precision.String(),
		Version:   sn.Version, Seq: sn.Seq,
	})
}

// PartialsRequest asks for this shard's contribution to a fold-in solve:
// the cold-start user's ratings in global item indices. Out-of-slice items
// are skipped — every shard sees the full request and contributes exactly
// its slice, so the frontend's sum covers each rating once.
type PartialsRequest struct {
	Items   []int32   `json:"items"`
	Ratings []float32 `json:"ratings"`
}

// PartialsResponse carries the shard's partial normal equations: the packed
// upper-triangular Gram term Σ y_i·y_iᵀ and right-hand side Σ r_i·y_i over
// the shard-local rated items, without the λI the frontend adds once.
type PartialsResponse struct {
	K       int       `json:"k"`
	Gram    []float32 `json:"gram"`
	RHS     []float32 `json:"rhs"`
	Local   int       `json:"local"` // ratings that fell in this slice
	Version string    `json:"version"`
	Seq     uint64    `json:"seq"`
}

func (r *Replica) handlePartials(w http.ResponseWriter, req *http.Request) {
	sn := r.srv.Current()
	if sn == nil {
		httpError(w, http.StatusServiceUnavailable, "no model loaded")
		return
	}
	var pr PartialsRequest
	if err := json.NewDecoder(req.Body).Decode(&pr); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	if len(pr.Items) != len(pr.Ratings) {
		httpError(w, http.StatusBadRequest, "items and ratings lengths differ")
		return
	}
	k := sn.Model.K
	off, rows := sn.ItemOffset, sn.Model.Y.Rows
	var cols []int32
	var vals []float32
	for z, g := range pr.Items {
		if int(g) >= off && int(g) < off+rows {
			cols = append(cols, g-int32(off))
			vals = append(vals, pr.Ratings[z])
		}
	}
	packed := make([]float32, linalg.PackedLen(k))
	rhs := make([]float32, k)
	// GramRHSFused zeroes both outputs, so an empty local set still
	// returns valid all-zero terms.
	linalg.GramRHSFused(sn.Model.Y.Data, k, cols, vals, packed, rhs)
	writeJSON(w, PartialsResponse{K: k, Gram: packed, RHS: rhs, Local: len(cols),
		Version: sn.Version, Seq: sn.Seq})
}

// ScoreRequest asks for the shard's top-N against a caller-provided user
// factor (the frontend's fold-in solution), excluding the given global
// item indices.
type ScoreRequest struct {
	X       []float32 `json:"x"`
	N       int       `json:"n"`
	Exclude []int32   `json:"exclude,omitempty"`
}

// ScoreResponse carries the shard-local top-N in global item indices.
type ScoreResponse struct {
	Version string          `json:"version"`
	Seq     uint64          `json:"seq"`
	Items   []serve.RecItem `json:"items"`
}

func (r *Replica) handleScore(w http.ResponseWriter, req *http.Request) {
	sn := r.srv.Current()
	if sn == nil {
		httpError(w, http.StatusServiceUnavailable, "no model loaded")
		return
	}
	var sr ScoreRequest
	if err := json.NewDecoder(req.Body).Decode(&sr); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	if len(sr.X) != sn.Model.K {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("x has %d components, model k=%d", len(sr.X), sn.Model.K))
		return
	}
	if sr.N <= 0 || sr.N > scoreMaxN {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("n must be in [1,%d]", scoreMaxN))
		return
	}
	off := sn.ItemOffset
	var excluded func(int) bool
	if len(sr.Exclude) > 0 {
		ex := make(map[int]bool, len(sr.Exclude))
		for _, g := range sr.Exclude {
			if int(g) >= off && int(g) < off+sn.Model.Y.Rows {
				ex[int(g)-off] = true
			}
		}
		excluded = func(i int) bool { return ex[i] }
	}
	// ScoreTopN dispatches to the quantized scan when the snapshot carries
	// a compressed Y, so a scatter-gather fleet serves the same precision
	// as a single-process server at the same -precision flag.
	scored, err := r.srv.ScoreTopN(req.Context(), sn, sr.X, excluded, sr.N)
	if err != nil {
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	items := make([]serve.RecItem, len(scored))
	for i, s := range scored {
		items[i] = serve.RecItem{Item: s.Item + off, Score: s.Score}
		if sn.Model.ItemIDs != nil {
			items[i].ID = sn.Model.ItemLabel(s.Item)
		}
	}
	writeJSON(w, ScoreResponse{Version: sn.Version, Seq: sn.Seq, Items: items})
}

// PurgeRequest names the user whose cached responses must be dropped.
type PurgeRequest struct {
	User int64 `json:"user"`
}

// PurgeResponse reports how many cache entries were removed.
type PurgeResponse struct {
	Purged int `json:"purged"`
}

func (r *Replica) handlePurge(w http.ResponseWriter, req *http.Request) {
	sn := r.srv.Current()
	if sn == nil {
		httpError(w, http.StatusServiceUnavailable, "no model loaded")
		return
	}
	var pr PurgeRequest
	if err := json.NewDecoder(req.Body).Decode(&pr); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	purged := 0
	if u, ok := sn.UserIndex(pr.User); ok {
		purged = r.srv.ResponseCache().PurgeUser(u)
	}
	writeJSON(w, PurgeResponse{Purged: purged})
}

// handleSwap overrides the wrapped server's /admin/swap: the loaded model
// is sliced to this shard's range before installation, so an operator can
// push one model path to the whole fleet.
func (r *Replica) handleSwap(w http.ResponseWriter, req *http.Request) {
	var sr serve.SwapRequest
	if err := json.NewDecoder(req.Body).Decode(&sr); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	if sr.Model == "" {
		httpError(w, http.StatusBadRequest, "need model path")
		return
	}
	oneBased := true
	if sr.OneBased != nil {
		oneBased = *sr.OneBased
	}
	m, rated, err := serve.LoadSnapshotFiles(sr.Model, sr.Ratings, oneBased)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	sn := r.Swap(m, rated, sr.Version)
	writeJSON(w, serve.SwapResponse{Version: sn.Version, Seq: sn.Seq,
		Users: sn.Model.X.Rows, Items: sn.Model.Y.Rows, K: sn.Model.K})
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
