package shard

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/serve"
)

// TestFrontendRetriesFlakyShard pins the transient-failure path: a shard
// whose first reply is a 500 must be retried once within the per-shard
// deadline, so the merged answer is complete (not partial) and the retry is
// counted — one flaky response no longer degrades the request.
func TestFrontendRetriesFlakyShard(t *testing.T) {
	m := tieModel(4, 40, 2)
	rated := ratedSet(4, 40)

	urls := make([]string, 2)
	for i := 0; i < 2; i++ {
		srv := serve.New(serve.Config{})
		rep, err := NewReplica(srv, ReplicaConfig{Index: i, Count: 2})
		if err != nil {
			t.Fatal(err)
		}
		rep.Swap(m, rated, "v1")
		h := rep.Handler()
		if i == 1 {
			// Shard 1 fails exactly one recommend request, then recovers.
			var failed atomic.Bool
			inner := h
			h = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if strings.HasPrefix(r.URL.Path, "/v1/recommend") && failed.CompareAndSwap(false, true) {
					http.Error(w, `{"error":"transient"}`, http.StatusInternalServerError)
					return
				}
				inner.ServeHTTP(w, r)
			})
		}
		ts := httptest.NewServer(h)
		t.Cleanup(func() { ts.Close(); srv.Close() })
		urls[i] = ts.URL
	}

	front, err := NewFrontend(FrontendConfig{
		Shards: urls, ShardTimeout: 5 * time.Second, RetryBackoff: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	front.ProbeOnce(context.Background())
	fts := httptest.NewServer(front.Handler())
	t.Cleanup(fts.Close)

	var resp RecommendResponse
	if code := getJSON(t, fts.URL+"/v1/recommend?user=500&n=5", &resp); code != http.StatusOK {
		t.Fatalf("recommend: HTTP %d", code)
	}
	if resp.Partial || resp.ShardsOK != 2 {
		t.Fatalf("flaky shard degraded the answer: partial=%v shardsOK=%d", resp.Partial, resp.ShardsOK)
	}

	var buf bytes.Buffer
	if err := front.Registry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.Contains(text, `als_shard_retries_total{shard="1"} 1`) {
		t.Errorf("exposition lacks the retry count:\n%s", text)
	}
	if strings.Contains(text, `als_shard_partial_total 1`) {
		t.Error("partial counter incremented despite successful retry")
	}

	// The recovered shard answers first try now: no second retry.
	if code := getJSON(t, fts.URL+"/v1/recommend?user=500&n=5", &resp); code != http.StatusOK || resp.Partial {
		t.Fatalf("healthy request: HTTP %d partial=%v", code, resp.Partial)
	}
	buf.Reset()
	if err := front.Registry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `als_shard_retries_total{shard="1"} 1`) {
		t.Error("retry counter moved on a healthy request")
	}
}

// TestFrontendRejectionNotRetried pins the inverse: a 4xx reply blames the
// request, so it must pass through without burning a retry.
func TestFrontendRejectionNotRetried(t *testing.T) {
	m := tieModel(4, 40, 2)
	f := newFleet(t, m, ratedSet(4, 40), 2)
	var resp RecommendResponse
	if code := getJSON(t, f.frontTS.URL+"/v1/recommend?user=99&n=5", &resp); code != http.StatusNotFound {
		t.Fatalf("unknown user: HTTP %d, want 404", code)
	}
	var buf bytes.Buffer
	if err := f.front.Registry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "als_shard_retries_total{") {
		t.Errorf("4xx reply was retried:\n%s", buf.String())
	}
}
