package clgen

import (
	"os"
	"strings"
	"testing"

	"repro/internal/variant"
)

// balanced checks brace/paren balance — the cheap syntax sanity test
// available without an OpenCL compiler.
func balanced(t *testing.T, src string) {
	t.Helper()
	var brace, paren int
	for _, r := range src {
		switch r {
		case '{':
			brace++
		case '}':
			brace--
		case '(':
			paren++
		case ')':
			paren--
		}
		if brace < 0 || paren < 0 {
			t.Fatalf("unbalanced delimiters (early close) in generated source")
		}
	}
	if brace != 0 || paren != 0 {
		t.Fatalf("unbalanced delimiters: braces %+d, parens %+d", brace, paren)
	}
}

func TestBaselineSource(t *testing.T) {
	src, err := Baseline(Params{K: 10, GroupSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	balanced(t, src)
	for _, want := range []string{
		"__kernel void als_update_baseline",
		"#define K 10",
		"float smat[K * K]", // the paper's oversized private scratch
		"float sum[K * K]",
		"cholesky_solve(smat, svec)",
		"get_global_id(0)", // one work-item per row
	} {
		if !strings.Contains(src, want) {
			t.Errorf("baseline source missing %q", want)
		}
	}
	if strings.Contains(src, "__local") {
		t.Error("baseline must not use local memory")
	}
	if strings.Contains(src, "barrier(") {
		t.Error("baseline must not need barriers")
	}
}

func TestBatchedStructurePerVariant(t *testing.T) {
	for _, v := range variant.All() {
		src, err := Batched(Params{K: 10, GroupSize: 32, Variant: v})
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		balanced(t, src)
		// Every batched kernel is one work-group per row, grid-stride.
		for _, want := range []string{
			"get_group_id(0)", "get_num_groups(0)", "get_local_id(0)",
			"cholesky_solve_local",
		} {
			if !strings.Contains(src, want) {
				t.Errorf("%s: missing %q", v, want)
			}
		}
		// Register toggle: unrolled per-column accumulators (Fig. 3b)
		// replace the K*K zero pass.
		hasSums := strings.Contains(src, "float sum0 = 0.0f;") && strings.Contains(src, "float sum9 = 0.0f;")
		if v.Register != hasSums {
			t.Errorf("%s: register accumulators present=%v, want %v", v, hasSums, v.Register)
		}
		// Local toggle: staging buffers + fused staged S2.
		hasStage := strings.Contains(src, "__local float yStage") && strings.Contains(src, "rStage[z] * yStage")
		if v.Local != hasStage {
			t.Errorf("%s: local staging present=%v, want %v", v, hasStage, v.Local)
		}
		// Vector toggle: float4 gather in the global-S2 path only.
		hasVec := strings.Contains(src, "vload4")
		wantVec := v.Vector && !v.Local
		if hasVec != wantVec {
			t.Errorf("%s: float4 gather present=%v, want %v", v, hasVec, wantVec)
		}
	}
}

func TestKernelNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, v := range variant.All() {
		n := kernelName(v)
		if seen[n] {
			t.Fatalf("duplicate kernel name %s", n)
		}
		seen[n] = true
		if strings.ContainsAny(n, "+- ") {
			t.Fatalf("kernel name %q not a C identifier", n)
		}
	}
}

func TestAllEmitsEveryKernel(t *testing.T) {
	src, err := All(10, 32)
	if err != nil {
		t.Fatal(err)
	}
	balanced(t, src)
	if !strings.Contains(src, "als_update_baseline") {
		t.Error("All missing the baseline kernel")
	}
	for _, v := range variant.All() {
		if !strings.Contains(src, "__kernel void "+kernelName(v)+"(") {
			t.Errorf("All missing kernel for %s", v)
		}
	}
}

func TestKSpecialization(t *testing.T) {
	// The unrolled register form must track k exactly.
	src, err := Batched(Params{K: 3, GroupSize: 16, Variant: variant.Options{Register: true}})
	if err != nil {
		t.Fatal(err)
	}
	balanced(t, src)
	if !strings.Contains(src, "float sum2 = 0.0f;") {
		t.Error("k=3: missing sum2")
	}
	if strings.Contains(src, "float sum3") {
		t.Error("k=3: emitted sum3")
	}
	if !strings.Contains(src, "#define K 3") {
		t.Error("k=3: wrong K define")
	}
}

func TestStageRowsBudget(t *testing.T) {
	// The staging tile must respect the 32 KiB local-memory budget.
	for _, k := range []int{10, 100, 1000} {
		rows := stageRows(Params{K: k, GroupSize: 32})
		if rows < 1 {
			t.Fatalf("k=%d: no staging rows", k)
		}
		if bytes := rows * 4 * (k + 1); bytes > 32*1024 {
			t.Fatalf("k=%d: staging tile %d bytes exceeds 32 KiB", k, bytes)
		}
	}
}

func TestValidation(t *testing.T) {
	if _, err := Baseline(Params{K: 0, GroupSize: 32}); err == nil {
		t.Error("accepted k=0")
	}
	if _, err := Batched(Params{K: 10, GroupSize: 0}); err == nil {
		t.Error("accepted group size 0")
	}
	if _, err := All(0, 0); err == nil {
		t.Error("All accepted bad params")
	}
}

// TestDeterministic: generation is a pure function of Params.
func TestDeterministic(t *testing.T) {
	p := Params{K: 10, GroupSize: 32, Variant: variant.Options{Local: true, Register: true}}
	a, err := Batched(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Batched(p)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("generation not deterministic")
	}
}

// TestAllSingleDefinitions: the full program must define each device
// function and macro block exactly once (a real OpenCL compiler rejects
// redefinitions).
func TestAllSingleDefinitions(t *testing.T) {
	src, err := All(10, 32)
	if err != nil {
		t.Fatal(err)
	}
	for _, def := range []string{
		"static void cholesky_solve(",
		"static void cholesky_solve_local(",
		"#define K 10",
		"#define STAGE_ROWS",
	} {
		if got := strings.Count(src, def); got != 1 {
			t.Errorf("%q defined %d times in the full program, want 1", def, got)
		}
	}
}

// TestGoldenProgram pins the full generated program against the checked-in
// golden file; regenerate with
//
//	go run ./cmd/alsclgen -k 10 -group-size 32 -out internal/clgen/testdata/als_k10_ws32.cl
//
// when an intentional generator change alters the output.
func TestGoldenProgram(t *testing.T) {
	want, err := os.ReadFile("testdata/als_k10_ws32.cl")
	if err != nil {
		t.Fatal(err)
	}
	got, err := All(10, 32)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Fatal("generated program differs from testdata/als_k10_ws32.cl; " +
			"regenerate the golden file if the change is intentional")
	}
}
