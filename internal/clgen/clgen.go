// Package clgen generates the OpenCL C sources of the paper's kernels: the
// SAC'15 flat baseline and the eight thread-batched code variants (register
// / local-memory / vector toggles), specialized for a latent factor k and a
// work-group size.
//
// The Go reproduction executes these kernels' semantics on the simulated
// devices (internal/kernels); this package closes the loop for users with
// real OpenCL hardware: the emitted sources follow the structures of the
// paper's Fig. 3 (register restructuring) and Fig. 5 (local staging), and
// the golden tests pin their shape. The sources target OpenCL C 1.2, the
// version the paper used.
package clgen

import (
	"fmt"
	"strings"

	"repro/internal/variant"
)

// Params specializes a kernel.
type Params struct {
	K         int             // latent factor (compile-time constant in the source)
	GroupSize int             // work-group size the kernel is tuned for
	Variant   variant.Options // optimization toggles (ignored by Baseline)
}

func (p Params) validate() error {
	if p.K <= 0 {
		return fmt.Errorf("clgen: k must be positive, got %d", p.K)
	}
	if p.GroupSize <= 0 {
		return fmt.Errorf("clgen: group size must be positive, got %d", p.GroupSize)
	}
	return nil
}

// Baseline emits the SAC'15-style flat kernel: one work-item per row, a
// private k×k scratch for YᵀY (the structure of the paper's Fig. 3a), a
// private right-hand side, and an inline Cholesky solve.
func Baseline(p Params) (string, error) {
	return baseline(p, true)
}

func baseline(p Params, preamble bool) (string, error) {
	if err := p.validate(); err != nil {
		return "", err
	}
	var b strings.Builder
	header(&b, p, "als_update_baseline", "flat one-work-item-per-row baseline (SAC'15 structure)", false, preamble)
	fmt.Fprintf(&b, `__kernel void als_update_baseline(
    __global const float *restrict val,      /* CSR values               */
    __global const int   *restrict col_idx,  /* CSR column indices       */
    __global const int   *restrict row_ptr,  /* CSR row pointers         */
    __global const float *restrict Y,        /* fixed factor, n x K      */
    __global float       *restrict X,        /* output factor, m x K     */
    const int m,
    const float lambda)
{
    const int u = get_global_id(0);
    if (u >= m) return;
    const int lo = row_ptr[u];
    const int omega = row_ptr[u + 1] - lo;
    __global float *xu = X + (size_t)u * K;
    if (omega == 0) {
        for (int i = 0; i < K; ++i) xu[i] = 0.0f;
        return;
    }

    /* S1: smat = Y^T Y |_omega + lambda*I (private K*K scratch, Fig. 3a). */
    float smat[K * K];
    float sum[K * K];
    for (int i = 0; i < K; ++i)
        for (int j = i; j < K; ++j) {
            float s = 0.0f;
            for (int z = 0; z < omega; ++z) {
                const int d = col_idx[lo + z] * K;
                s += Y[d + i] * Y[d + j];
            }
            sum[i * K + j] = s;
        }
    for (int i = 0; i < K; ++i)
        for (int j = i; j < K; ++j) {
            smat[i * K + j] = sum[i * K + j];
            smat[j * K + i] = sum[i * K + j];
        }
    for (int i = 0; i < K; ++i) smat[i * K + i] += lambda;

    /* S2: svec = Y^T r_u. */
    float svec[K];
    for (int c = 0; c < K; ++c) {
        float s = 0.0f;
        for (int z = 0; z < omega; ++z)
            s += val[lo + z] * Y[col_idx[lo + z] * K + c];
        svec[c] = s;
    }

    cholesky_solve(smat, svec);
    for (int i = 0; i < K; ++i) xu[i] = svec[i];
}
`)
	return b.String(), nil
}

// Batched emits the thread-batched kernel for the given variant: one
// work-group per row, lanes splitting the K columns, with the optimization
// toggles changing the source structurally —
//
//	Register: the Fig. 3b unrolled per-column accumulators (sum0..sumK-1)
//	          with lane guards, replacing the private K*K array;
//	Local:    __local staging of the gathered Y rows and the row's ratings
//	          (Fig. 5), tile by tile with barriers;
//	Vector:   explicit float4 arithmetic (vload4) in the gather step.
func Batched(p Params) (string, error) {
	return batched(p, true)
}

func batched(p Params, preamble bool) (string, error) {
	if err := p.validate(); err != nil {
		return "", err
	}
	v := p.Variant
	name := kernelName(v)
	var b strings.Builder
	header(&b, p, name, "thread-batched kernel: one work-group per row ("+v.String()+")", true, preamble)

	fmt.Fprintf(&b, "__kernel void %s(\n", name)
	b.WriteString(`    __global const float *restrict val,
    __global const int   *restrict col_idx,
    __global const int   *restrict row_ptr,
    __global const float *restrict Y,
    __global float       *restrict X,
    const int m,
    const float lambda)
{
    const int lx = get_local_id(0);
    const int ws = get_local_size(0);
`)
	if v.Local {
		b.WriteString(`    __local float yStage[STAGE_ROWS * K]; /* staged rows of Y (Fig. 5) */
    __local float rStage[STAGE_ROWS];     /* staged ratings of r_u      */
`)
	}
	b.WriteString(`    __local float smat[K * K];
    __local float svec[K];

    /* Grid-stride over rows: group g handles rows g, g+G, ... */
    for (int u = get_group_id(0); u < m; u += get_num_groups(0)) {
        const int lo = row_ptr[u];
        const int omega = row_ptr[u + 1] - lo;
        __global float *xu = X + (size_t)u * K;
        if (omega == 0) {
            for (int i = lx; i < K; i += ws) xu[i] = 0.0f;
            continue;
        }

`)

	// --- S1 initialization (before any staging tiles) ---
	if v.Register {
		b.WriteString("        /* S1 accumulators, register-restructured (Fig. 3b): one per j. */\n")
		for j := 0; j < p.K; j++ {
			fmt.Fprintf(&b, "        float sum%d = 0.0f;\n", j)
		}
	} else {
		b.WriteString(`        /* S1 scratch (Fig. 3a adapted): zero the shared K*K matrix. */
        for (int i = lx; i < K * K; i += ws) smat[i] = 0.0f;
        barrier(CLK_LOCAL_MEM_FENCE);
`)
	}

	// --- Tile loop (staging) or single pass ---
	if v.Local {
		b.WriteString(`        for (int c = lx; c < K; c += ws) svec[c] = 0.0f;
        barrier(CLK_LOCAL_MEM_FENCE);

        for (int base = 0; base < omega; base += STAGE_ROWS) {
            const int tile = min(STAGE_ROWS, omega - base);
            /* Stage the gathered rows of Y and the ratings (Fig. 5). */
            for (int z = lx; z < tile; z += ws) {
                const int d = col_idx[lo + base + z] * K;
                rStage[z] = val[lo + base + z];
                for (int c = 0; c < K; ++c)
                    yStage[z * K + c] = Y[d + c];
            }
            barrier(CLK_LOCAL_MEM_FENCE);
`)
	} else {
		b.WriteString(`
        {
            const int base = 0;
            const int tile = omega;
`)
	}

	// --- S1 accumulation over the tile ---
	if v.Register {
		b.WriteString("            for (int z = 0; z < tile; ++z) {\n")
		b.WriteString(s1LoadLine(v))
		for j := 0; j < p.K; j++ {
			fmt.Fprintf(&b, "                if (lx < K) sum%d += yi * %s;\n", j, yRef(v, fmt.Sprint(j)))
		}
		b.WriteString("            }\n")
	} else {
		b.WriteString(`            for (int i = lx; i < K; i += ws)
                for (int j = 0; j < K; ++j) {
                    float s = 0.0f;
                    for (int z = 0; z < tile; ++z) {
`)
		if v.Local {
			b.WriteString("                        s += yStage[z * K + i] * yStage[z * K + j];\n")
		} else {
			b.WriteString(`                        const int d = col_idx[lo + base + z] * K;
                        s += Y[d + i] * Y[d + j];
`)
		}
		b.WriteString(`                    }
                    smat[j * K + i] += s;
                }
`)
	}

	if v.Local {
		// Fused S2 over the staged tile (Fig. 5 stages the ratings too).
		b.WriteString(`            for (int c = lx; c < K; c += ws) {
                float s2acc = 0.0f;
                for (int z = 0; z < tile; ++z)
                    s2acc += rStage[z] * yStage[z * K + c];
                svec[c] += s2acc;
            }
            barrier(CLK_LOCAL_MEM_FENCE);
        } /* staging tiles */
`)
	} else {
		b.WriteString("        }\n")
	}

	// --- S1 finalization ---
	if v.Register {
		b.WriteString("        if (lx < K) {\n")
		for j := 0; j < p.K; j++ {
			fmt.Fprintf(&b, "            smat[%d * K + lx] = sum%d;\n", j, j)
		}
		b.WriteString("        }\n")
	}

	// Regularize, then S2 (Local variants computed svec fused with the
	// staging tiles above; the others gather from global here).
	b.WriteString(`
        barrier(CLK_LOCAL_MEM_FENCE);
        if (lx < K) smat[lx * K + lx] += lambda;
`)
	if !v.Local {
		b.WriteString(`
        /* S2: svec = Y^T r_u, lanes over columns. */
        for (int c = lx; c < K; c += ws) {
            float s = 0.0f;
`)
		if v.Vector {
			b.WriteString(s2VectorBody(v))
		} else {
			b.WriteString(`            for (int z = 0; z < omega; ++z)
                s += val[lo + z] * Y[col_idx[lo + z] * K + c];
`)
		}
		b.WriteString(`            svec[c] = s;
        }
`)
	}
	b.WriteString(`        barrier(CLK_LOCAL_MEM_FENCE);

        /* S3: Cholesky LL^T solve on lane 0. */
        if (lx == 0) {
            cholesky_solve_local(smat, svec);
        }
        barrier(CLK_LOCAL_MEM_FENCE);
        for (int i = lx; i < K; i += ws) xu[i] = svec[i];
        barrier(CLK_LOCAL_MEM_FENCE);
    }
}
`)
	return b.String(), nil
}

// All emits the complete program: one shared preamble (compile-time
// constants and both Cholesky device functions), then the baseline kernel
// and all eight batched variants — a single translation unit a real OpenCL
// compiler accepts.
func All(k, groupSize int) (string, error) {
	p := Params{K: k, GroupSize: groupSize}
	if err := p.validate(); err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, `/* ALS update kernels — complete program generated by clgen
 * (k=%d, work-group size %d, OpenCL C 1.2).
 */
#ifndef K
#define K %d
#endif
#ifndef STAGE_ROWS
#define STAGE_ROWS %d
#endif

`, k, groupSize, k, stageRows(p))
	b.WriteString(choleskyPrivate())
	b.WriteString(choleskyLocal())
	base, err := baseline(p, false)
	if err != nil {
		return "", err
	}
	b.WriteString(base)
	for _, v := range variant.All() {
		src, err := batched(Params{K: k, GroupSize: groupSize, Variant: v}, false)
		if err != nil {
			return "", err
		}
		b.WriteString("\n")
		b.WriteString(src)
	}
	return b.String(), nil
}

func kernelName(v variant.Options) string {
	return "als_update_" + strings.NewReplacer("+", "_").Replace(v.ID())
}

// header writes the per-kernel preamble: provenance comment, compile-time
// constants, and the Cholesky device functions (emitted once per source).
func header(b *strings.Builder, p Params, name, desc string, localSolve, preamble bool) {
	fmt.Fprintf(b, `/* %s — %s
 * generated by clgen for k=%d, work-group size %d (OpenCL C 1.2).
 */
`, name, desc, p.K, p.GroupSize)
	if !preamble {
		return
	}
	fmt.Fprintf(b, `#ifndef K
#define K %d
#endif
#ifndef STAGE_ROWS
#define STAGE_ROWS %d
#endif

`, p.K, stageRows(p))
	b.WriteString(choleskyPrivate())
	if localSolve {
		b.WriteString(choleskyLocal())
	}
}

// stageRows sizes the __local staging tile: bounded by a 32 KiB budget so
// the kernel compiles on any 1.2 device.
func stageRows(p Params) int {
	rows := (32 * 1024) / (4 * (p.K + 1))
	if rows > 1024 {
		rows = 1024
	}
	if rows < 1 {
		rows = 1
	}
	return rows
}

// s1LoadLine loads the lane's column element of the gathered Y row.
func s1LoadLine(v variant.Options) string {
	if v.Local {
		return "            const float yi = (lx < K) ? yStage[z * K + lx] : 0.0f;\n"
	}
	return `                const int d = col_idx[lo + base + z] * K;
                const float yi = (lx < K) ? Y[d + lx] : 0.0f;
`
}

// yRef returns the expression for element `c` of the z-th gathered Y row.
func yRef(v variant.Options, c string) string {
	if v.Local {
		return "yStage[z * K + " + c + "]"
	}
	return "Y[d + " + c + "]"
}

// s2VectorBody issues the gather through float4 accumulators (the paper's
// explicit-vector optimization; 4 is portable across 1.2 devices).
func s2VectorBody(v variant.Options) string {
	return `            float4 acc4 = (float4)(0.0f);
            int z = 0;
            for (; z + 4 <= omega; z += 4) {
                const float4 r4 = vload4(0, val + lo + z);
                float4 y4;
                y4.s0 = Y[col_idx[lo + z + 0] * K + c];
                y4.s1 = Y[col_idx[lo + z + 1] * K + c];
                y4.s2 = Y[col_idx[lo + z + 2] * K + c];
                y4.s3 = Y[col_idx[lo + z + 3] * K + c];
                acc4 += r4 * y4;
            }
            s = acc4.s0 + acc4.s1 + acc4.s2 + acc4.s3;
            for (; z < omega; ++z)
                s += val[lo + z] * Y[col_idx[lo + z] * K + c];
`
}

// choleskyPrivate emits the S3 device function for private scratch.
func choleskyPrivate() string {
	return `static void cholesky_solve(float *a, float *b)
{
    for (int j = 0; j < K; ++j) {
        float d = a[j * K + j];
        for (int p = 0; p < j; ++p) d -= a[j * K + p] * a[j * K + p];
        const float ljj = sqrt(d);
        a[j * K + j] = ljj;
        for (int i = j + 1; i < K; ++i) {
            float s = a[i * K + j];
            for (int p = 0; p < j; ++p) s -= a[i * K + p] * a[j * K + p];
            a[i * K + j] = s / ljj;
        }
    }
    for (int i = 0; i < K; ++i) {
        float s = b[i];
        for (int p = 0; p < i; ++p) s -= a[i * K + p] * b[p];
        b[i] = s / a[i * K + i];
    }
    for (int i = K - 1; i >= 0; --i) {
        float s = b[i];
        for (int p = i + 1; p < K; ++p) s -= a[p * K + i] * b[p];
        b[i] = s / a[i * K + i];
    }
}
`
}

// choleskyLocal emits the S3 device function for __local scratch.
func choleskyLocal() string {
	return `static void cholesky_solve_local(__local float *a, __local float *b)
{
    for (int j = 0; j < K; ++j) {
        float d = a[j * K + j];
        for (int p = 0; p < j; ++p) d -= a[j * K + p] * a[j * K + p];
        const float ljj = sqrt(d);
        a[j * K + j] = ljj;
        for (int i = j + 1; i < K; ++i) {
            float s = a[i * K + j];
            for (int p = 0; p < j; ++p) s -= a[i * K + p] * a[j * K + p];
            a[i * K + j] = s / ljj;
        }
    }
    for (int i = 0; i < K; ++i) {
        float s = b[i];
        for (int p = 0; p < i; ++p) s -= a[i * K + p] * b[p];
        b[i] = s / a[i * K + i];
    }
    for (int i = K - 1; i >= 0; --i) {
        float s = b[i];
        for (int p = i + 1; p < K; ++p) s -= a[p * K + i] * b[p];
        b[i] = s / a[i * K + i];
    }
}

`
}
