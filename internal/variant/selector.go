package variant

import (
	"fmt"
	"math"
	"sort"
)

// Features describes one execution context for the learned selector — the
// paper's future-work proposal ("we will introduce the machine learning
// technique to select an appropriate code variant according to the target
// architecture and input dataset"). The features are deliberately cheap:
// everything is known before training starts.
type Features struct {
	DeviceKind  string  // "CPU", "GPU", "MIC"
	K           int     // latent factor
	MeanRowNNZ  float64 // average nonzeros per row
	RowCoV      float64 // row-degree coefficient of variation (imbalance)
	Rows        float64 // number of rows (log-scaled internally)
	FixedFactor float64 // size of the fixed factor matrix in MB
}

// vector embeds the features in a comparable space. Scale-free quantities
// enter directly; sizes enter logarithmically.
func (f Features) vector() [5]float64 {
	return [5]float64{
		float64(f.K) / 10,
		math.Log1p(f.MeanRowNNZ) / 5,
		f.RowCoV / 2,
		math.Log1p(f.Rows) / 12,
		math.Log1p(f.FixedFactor) / 5,
	}
}

func (f Features) distance(g Features) float64 {
	if f.DeviceKind != g.DeviceKind {
		// Architectures have different optimization landscapes (Fig. 6);
		// cross-architecture neighbours are heavily penalized rather than
		// excluded so a sparsely-trained selector still answers.
		return 1e3 + f.sq(g)
	}
	return f.sq(g)
}

func (f Features) sq(g Features) float64 {
	a, b := f.vector(), g.vector()
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Sample is one training observation: a context and the variant that was
// empirically fastest there.
type Sample struct {
	Features Features
	Best     Options
}

// MLSelector is a k-nearest-neighbour code-variant selector trained on
// empirical measurements.
type MLSelector struct {
	samples []Sample
	k       int
}

// NewMLSelector returns a selector using k nearest neighbours (k is
// clamped to at least 1).
func NewMLSelector(k int) *MLSelector {
	if k < 1 {
		k = 1
	}
	return &MLSelector{k: k}
}

// Train adds observations.
func (s *MLSelector) Train(samples ...Sample) {
	s.samples = append(s.samples, samples...)
}

// Len reports the number of stored observations.
func (s *MLSelector) Len() int { return len(s.samples) }

// Predict returns the variant chosen by majority vote among the k nearest
// training contexts; ties break toward the nearest neighbour's choice.
func (s *MLSelector) Predict(f Features) (Options, error) {
	if len(s.samples) == 0 {
		return Options{}, fmt.Errorf("variant: selector has no training samples")
	}
	type cand struct {
		d    float64
		best Options
	}
	cands := make([]cand, len(s.samples))
	for i, sm := range s.samples {
		cands[i] = cand{d: f.distance(sm.Features), best: sm.Best}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].d < cands[j].d })
	k := s.k
	if k > len(cands) {
		k = len(cands)
	}
	votes := map[string]int{}
	for _, c := range cands[:k] {
		votes[c.best.ID()]++
	}
	bestID := cands[0].best.ID()
	bestVotes := votes[bestID]
	for id, n := range votes {
		if n > bestVotes {
			bestID, bestVotes = id, n
		}
	}
	return ParseID(bestID)
}
