package variant

import (
	"testing"
	"testing/quick"
)

func TestAllEnumeratesEightVariants(t *testing.T) {
	all := All()
	if len(all) != 8 {
		t.Fatalf("All() returned %d variants, paper defines 8", len(all))
	}
	seen := map[string]bool{}
	for _, v := range all {
		if seen[v.ID()] {
			t.Fatalf("duplicate variant %s", v.ID())
		}
		seen[v.ID()] = true
	}
	if !seen["tb"] || !seen["tb+reg+loc+vec"] {
		t.Fatal("missing bare or fully-combined variant")
	}
}

func TestExtendedAddsFusedFamily(t *testing.T) {
	ext := Extended()
	if len(ext) != 12 {
		t.Fatalf("Extended() returned %d variants, want 12 (8 paper + 4 fused)", len(ext))
	}
	seen := map[string]bool{}
	fused := 0
	for _, v := range ext {
		if seen[v.ID()] {
			t.Fatalf("duplicate variant %s", v.ID())
		}
		seen[v.ID()] = true
		if v.Fused {
			fused++
			if v.Register {
				t.Fatalf("%s: fused variants must not set Register (subsumed)", v.ID())
			}
		}
	}
	if fused != 4 {
		t.Fatalf("Extended() has %d fused variants, want 4", fused)
	}
	if !seen["tb+fus"] || !seen["tb+loc+vec+fus"] {
		t.Fatal("missing bare-fused or fully-combined fused variant")
	}
}

func TestLadderMatchesFig6(t *testing.T) {
	l := Ladder()
	want := []string{"tb", "tb+loc", "tb+reg+loc", "tb+reg+loc+vec"}
	if len(l) != len(want) {
		t.Fatalf("ladder length %d, want %d", len(l), len(want))
	}
	for i, v := range l {
		if v.ID() != want[i] {
			t.Fatalf("ladder[%d] = %s, want %s", i, v.ID(), want[i])
		}
	}
}

func TestStringNames(t *testing.T) {
	if (Options{}).String() != "thread batching" {
		t.Fatalf("bare name = %q", (Options{}).String())
	}
	v := Options{Local: true, Register: true, Vector: true}
	if v.String() != "thread batching+local memory+register+vector" {
		t.Fatalf("full name = %q", v.String())
	}
	f := Options{Local: true, Fused: true}
	if f.String() != "thread batching+local memory+fused" {
		t.Fatalf("fused name = %q", f.String())
	}
}

func TestParseIDRoundTrip(t *testing.T) {
	f := func(reg, loc, vec, fus bool) bool {
		v := Options{Register: reg, Local: loc, Vector: vec, Fused: fus}
		got, err := ParseID(v.ID())
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseID("tb+warp"); err == nil {
		t.Fatal("ParseID accepted unknown token")
	}
	// Order-insensitive.
	v, err := ParseID("vec+tb+reg")
	if err != nil || !v.Vector || !v.Register || v.Local {
		t.Fatalf("ParseID out-of-order failed: %+v %v", v, err)
	}
}

func TestSelectBest(t *testing.T) {
	cands := All()
	// Cost model: local saves 5, vector saves 2, register costs 1.
	cost := func(o Options) float64 {
		c := 10.0
		if o.Local {
			c -= 5
		}
		if o.Vector {
			c -= 2
		}
		if o.Register {
			c += 1
		}
		return c
	}
	best, ms := SelectBest(cands, cost)
	if best != (Options{Local: true, Vector: true}) {
		t.Fatalf("SelectBest = %+v", best)
	}
	if len(ms) != 8 {
		t.Fatalf("measurements %d, want 8", len(ms))
	}
	for i := 1; i < len(ms); i++ {
		if ms[i].Seconds < ms[i-1].Seconds {
			t.Fatal("measurements not sorted fastest-first")
		}
	}
}

func TestMLSelectorEmpty(t *testing.T) {
	s := NewMLSelector(3)
	if _, err := s.Predict(Features{DeviceKind: "GPU"}); err == nil {
		t.Fatal("expected error from untrained selector")
	}
}

func TestMLSelectorLearnsPerArchitecture(t *testing.T) {
	s := NewMLSelector(3)
	gpuBest := Options{Local: true, Register: true}
	cpuBest := Options{Local: true}
	// Train with several contexts per architecture, mirroring the paper's
	// per-architecture recommendations.
	for i := 0; i < 5; i++ {
		s.Train(Sample{
			Features: Features{DeviceKind: "GPU", K: 10, MeanRowNNZ: float64(20 + i*30),
				RowCoV: 1.5, Rows: float64(1000 * (i + 1)), FixedFactor: 1},
			Best: gpuBest,
		})
		s.Train(Sample{
			Features: Features{DeviceKind: "CPU", K: 10, MeanRowNNZ: float64(20 + i*30),
				RowCoV: 1.5, Rows: float64(1000 * (i + 1)), FixedFactor: 1},
			Best: cpuBest,
		})
	}
	if s.Len() != 10 {
		t.Fatalf("Len = %d", s.Len())
	}
	got, err := s.Predict(Features{DeviceKind: "GPU", K: 10, MeanRowNNZ: 75, RowCoV: 1.4, Rows: 2500, FixedFactor: 1})
	if err != nil || got != gpuBest {
		t.Fatalf("GPU prediction = %+v, %v; want %+v", got, err, gpuBest)
	}
	got, err = s.Predict(Features{DeviceKind: "CPU", K: 10, MeanRowNNZ: 75, RowCoV: 1.4, Rows: 2500, FixedFactor: 1})
	if err != nil || got != cpuBest {
		t.Fatalf("CPU prediction = %+v, %v; want %+v", got, err, cpuBest)
	}
}

func TestMLSelectorCrossArchitectureFallback(t *testing.T) {
	s := NewMLSelector(1)
	s.Train(Sample{Features: Features{DeviceKind: "GPU", K: 10}, Best: Options{Register: true}})
	// No MIC samples: the selector must still answer (nearest across arch).
	got, err := s.Predict(Features{DeviceKind: "MIC", K: 10})
	if err != nil || got != (Options{Register: true}) {
		t.Fatalf("fallback prediction = %+v, %v", got, err)
	}
}

func TestMLSelectorMajorityVote(t *testing.T) {
	s := NewMLSelector(3)
	f := Features{DeviceKind: "CPU", K: 10, MeanRowNNZ: 50, RowCoV: 1, Rows: 1000, FixedFactor: 1}
	winner := Options{Local: true, Vector: true}
	s.Train(
		Sample{Features: f, Best: winner},
		Sample{Features: f, Best: winner},
		Sample{Features: f, Best: Options{Register: true}},
	)
	got, err := s.Predict(f)
	if err != nil || got != winner {
		t.Fatalf("majority vote = %+v, %v; want %+v", got, err, winner)
	}
}
