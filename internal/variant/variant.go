// Package variant defines the code-variant space of the paper's Section
// III-D: starting from the thread-batching parallelization, the three
// architecture-specific optimizations (registers, local memory, vector
// units) are individually toggleable, yielding 8 functionally-equivalent
// variants. The package also implements the empirical variant selector the
// paper uses, and the machine-learning-based selector its future-work
// section proposes.
package variant

import (
	"fmt"
	"sort"
	"strings"
)

// Options is one point in the optimization space. The zero value is plain
// thread batching with no architecture-specific optimization.
type Options struct {
	// Register applies the Fig. 3b restructuring: a k-sized accumulator
	// strip instead of the k×k private scratch, keeping the working set in
	// registers.
	Register bool
	// Local stages the gathered columns of Y and the current row's nonzeros
	// in on-chip local memory (Fig. 5).
	Local bool
	// Vector uses explicit wide vector operations (float16-style) in the
	// inner loops.
	Vector bool
	// Fused computes S1 and S2 in a single sweep over the gathered rows,
	// accumulating the Gram matrix in packed upper-triangular storage
	// (k(k+1)/2) and solving S3 with a packed Cholesky. It subsumes the
	// Register restructuring (the packed accumulator is the k-strip form),
	// so the Register toggle is a no-op when Fused is set; Local and Vector
	// compose with it as usual. An extension beyond the paper's 8 variants
	// (see Extended).
	Fused bool
}

// All enumerates the 8 variants in the paper's presentation order: the
// bare thread-batching version first, then single optimizations, pairs,
// and the full combination.
func All() []Options {
	return []Options{
		{},
		{Register: true},
		{Local: true},
		{Vector: true},
		{Register: true, Local: true},
		{Register: true, Vector: true},
		{Local: true, Vector: true},
		{Register: true, Local: true, Vector: true},
	}
}

// Extended enumerates the full variant space of this reproduction: the
// paper's 8 variants plus the fused-kernel family (fused S1+S2 with packed
// storage, alone and combined with local memory and vectors). The Register
// toggle is omitted from the fused combinations because the packed
// accumulator already is the register-strip form.
func Extended() []Options {
	return append(All(),
		Options{Fused: true},
		Options{Fused: true, Local: true},
		Options{Fused: true, Vector: true},
		Options{Fused: true, Local: true, Vector: true},
	)
}

// Ladder returns the incremental sequence Figure 6 plots: thread batching,
// +local memory, +local memory+register, +vector(all).
func Ladder() []Options {
	return []Options{
		{},
		{Local: true},
		{Local: true, Register: true},
		{Local: true, Register: true, Vector: true},
	}
}

// String names the variant the way the paper's figure legends do.
func (o Options) String() string {
	parts := []string{"thread batching"}
	if o.Local {
		parts = append(parts, "local memory")
	}
	if o.Register {
		parts = append(parts, "register")
	}
	if o.Vector {
		parts = append(parts, "vector")
	}
	if o.Fused {
		parts = append(parts, "fused")
	}
	return strings.Join(parts, "+")
}

// ID returns a compact stable identifier (e.g. "tb", "tb+reg+loc+vec").
func (o Options) ID() string {
	id := "tb"
	if o.Register {
		id += "+reg"
	}
	if o.Local {
		id += "+loc"
	}
	if o.Vector {
		id += "+vec"
	}
	if o.Fused {
		id += "+fus"
	}
	return id
}

// ParseID is the inverse of ID; it accepts the toggles in any order.
func ParseID(s string) (Options, error) {
	var o Options
	for _, part := range strings.Split(s, "+") {
		switch part {
		case "tb", "":
		case "reg":
			o.Register = true
		case "loc":
			o.Local = true
		case "vec":
			o.Vector = true
		case "fus":
			o.Fused = true
		default:
			return Options{}, fmt.Errorf("variant: unknown token %q in %q", part, s)
		}
	}
	return o, nil
}

// Measurement is one empirical observation of a variant's run time.
type Measurement struct {
	Variant Options
	Seconds float64
}

// SelectBest runs the measure callback for every candidate variant and
// returns the fastest, implementing the paper's empirical selection. The
// returned slice carries all measurements, sorted fastest-first, so callers
// can report the full comparison (Fig. 6).
func SelectBest(candidates []Options, measure func(Options) float64) (Options, []Measurement) {
	ms := make([]Measurement, 0, len(candidates))
	for _, c := range candidates {
		ms = append(ms, Measurement{Variant: c, Seconds: measure(c)})
	}
	sort.Slice(ms, func(i, j int) bool { return ms[i].Seconds < ms[j].Seconds })
	return ms[0].Variant, ms
}
