// Package device models the three execution platforms of the paper's
// evaluation — the NVIDIA Tesla K20c GPU, the Intel Xeon Phi 31SP MIC and
// the dual-socket Intel Xeon E5-2670 CPU — at the level of the mechanisms
// the paper's optimizations target:
//
//   - hierarchical thread organization: compute units executing lock-step
//     SIMT warps (GPU) or SIMD vector lanes (CPU/MIC), so divergent lanes
//     serialize (Sec. III-B, "unbalanced thread use");
//   - the coalescing rule: a warp's global access is split into memory
//     transactions of a fixed width, so per-lane scattered addresses cost a
//     transaction each ("scattered memory access");
//   - on-chip local memory with its own latency (GPU has a physical
//     scratch-pad; CPU/MIC emulate it in cache, paper Sec. V-B);
//   - per-work-item register budgets with spilling (Sec. III-C1);
//   - caches on CPU/MIC, modeled as a deterministic hit fraction from
//     working-set size;
//   - host↔accelerator transfers over PCIe for GPU and MIC.
//
// A kernel run reports what it did as Counters; Device.Cycles weighs them
// into a cycle estimate, and Device.Seconds converts cycles at the device
// clock. The absolute numbers are estimates; the experiments only rely on
// the relative shapes these mechanisms produce (see DESIGN.md §5).
package device

import "fmt"

// Kind discriminates the three architecture classes of the paper.
type Kind int

const (
	// CPU is a cache-rich multi-core with out-of-order cores and SIMD units.
	CPU Kind = iota
	// GPU is a SIMT many-core with physical scratch-pad memory and no
	// meaningful per-thread cache.
	GPU
	// MIC is a many-core coprocessor: wide SIMD, small in-order cores,
	// cache-based like a CPU but latency-bound like a GPU.
	MIC
)

// String returns the figure-legend name of the kind.
func (k Kind) String() string {
	switch k {
	case CPU:
		return "CPU"
	case GPU:
		return "GPU"
	case MIC:
		return "MIC"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Device describes one platform. All latencies are in core cycles; the
// calibration constants were fixed once against the paper's headline ratios
// (see calibrate_test.go) and are not fitted per experiment.
type Device struct {
	Name string
	Kind Kind

	ComputeUnits int     // SMs on GPU, cores on CPU/MIC
	WarpSize     int     // lock-step width: CUDA warp or SIMD vector width
	ClockGHz     float64 // per-CU issue clock

	// IssueCPI is the average cycles per lane-group ALU operation
	// (multiply-add granularity), capturing in-order vs out-of-order width.
	IssueCPI float64

	// Global memory.
	TransactionBytes int     // coalescing granularity (GPU) / cacheline (CPU, MIC)
	GlobalLatency    float64 // cycles per transaction after overlap
	// MemOverlap divides global latency to model how well the architecture
	// hides memory latency with other warps/threads (higher = better).
	MemOverlap float64

	// Caches (CPU/MIC); zero on GPU where the tiny L2 is folded into
	// GlobalLatency.
	CacheBytes   int64   // aggregate last-level cache
	CacheLatency float64 // cycles per cacheline access on hit

	// Scratch-pad ("local memory" in OpenCL).
	HasScratchpad bool    // physical (GPU) vs emulated in cache (CPU/MIC)
	LocalBytes    int     // capacity per CU
	LocalLatency  float64 // cycles per access

	// Registers.
	RegistersPerWI int     // addressable 32-bit registers per work-item
	SpillLatency   float64 // cycles per spilled private access

	// VectorBenefit scales ALU cost when the kernel uses explicit wide
	// vectors: 1 = no benefit (GPU, already SIMT), <1 = speedup (CPU/MIC).
	VectorBenefit float64

	// ScalarPenalty multiplies ALU cost when a kernel shape defeats the
	// implicit vectorizer (the paper's register-restructured loop on
	// CPU/MIC, Sec. V-B).
	ScalarPenalty float64

	// PCIeGBs is the host link bandwidth for initial data placement;
	// zero means host memory (no transfer).
	PCIeGBs float64

	// GroupOverhead is the fixed scheduling cost (cycles) each work-group
	// incurs per row task, and WarpOverhead the cost of each extra resident
	// warp in a group (idle warps at large group sizes, Fig. 10).
	GroupOverhead float64
	WarpOverhead  float64
}

// K20c returns the NVIDIA Tesla K20c model: 13 SMs × 192 CUDA cores,
// 0.706 GHz, 208 GB/s GDDR5, 48 KB scratch-pad and 255 registers per
// thread (Sec. III-C1), PCIe gen2 x16.
func K20c() *Device {
	return &Device{
		Name: "Tesla K20c", Kind: GPU,
		ComputeUnits: 13, WarpSize: 32, ClockGHz: 0.706,
		IssueCPI:         0.02, // 192 lanes/SM ≈ 6 warps issued per cycle
		TransactionBytes: 128, GlobalLatency: 440, MemOverlap: 24,
		CacheBytes: 0, CacheLatency: 0,
		HasScratchpad: true, LocalBytes: 48 * 1024, LocalLatency: 0.9,
		RegistersPerWI: 255, SpillLatency: 4,
		VectorBenefit: 1.0, ScalarPenalty: 1.0,
		PCIeGBs:       6.0,
		GroupOverhead: 180, WarpOverhead: 90,
	}
}

// XeonE52670 returns the dual-socket Intel Xeon E5-2670 model: 16 cores at
// 2.6 GHz, AVX (8 float lanes), 2×20 MB L3. Local memory is emulated: the
// OpenCL runtime places it in ordinary cached memory.
func XeonE52670() *Device {
	return &Device{
		Name: "Xeon E5-2670 x2", Kind: CPU,
		ComputeUnits: 16, WarpSize: 8, ClockGHz: 2.6,
		IssueCPI:         3.5, // OpenCL-on-CPU work-item loops issue far below peak
		TransactionBytes: 64, GlobalLatency: 190, MemOverlap: 3.2,
		CacheBytes: 40 << 20, CacheLatency: 2.4,
		HasScratchpad: false, LocalBytes: 32 * 1024, LocalLatency: 2.4,
		RegistersPerWI: 16, SpillLatency: 1.6, // spills land in L1
		VectorBenefit: 0.62, ScalarPenalty: 1.75,
		PCIeGBs:       0,
		GroupOverhead: 400, WarpOverhead: 12,
	}
}

// XeonPhi31SP returns the Intel Xeon Phi 31SP model: 57 in-order cores at
// 1.1 GHz with 512-bit SIMD (16 float lanes), 28.5 MB aggregate L2,
// PCIe-attached. In-order execution and high memory latency make it the
// slowest platform for this workload (Fig. 9).
func XeonPhi31SP() *Device {
	return &Device{
		Name: "Xeon Phi 31SP", Kind: MIC,
		ComputeUnits: 57, WarpSize: 16, ClockGHz: 1.1,
		IssueCPI:         11, // in-order scalar issue + heavy OpenCL runtime per item
		TransactionBytes: 64, GlobalLatency: 340, MemOverlap: 1.6,
		CacheBytes: 28 << 20, CacheLatency: 36,
		HasScratchpad: false, LocalBytes: 32 * 1024, LocalLatency: 36,
		RegistersPerWI: 32, SpillLatency: 3.4,
		VectorBenefit: 0.45, ScalarPenalty: 2.2,
		PCIeGBs:       6.0,
		GroupOverhead: 2600, WarpOverhead: 140,
	}
}

// All returns the three evaluation platforms in the paper's figure order
// (GPU, MIC, CPU).
func All() []*Device {
	return []*Device{K20c(), XeonPhi31SP(), XeonE52670()}
}

// ByName finds a device model by its Kind string ("CPU", "GPU", "MIC").
func ByName(name string) (*Device, error) {
	for _, d := range All() {
		if d.Kind.String() == name || d.Name == name {
			return d, nil
		}
	}
	return nil, fmt.Errorf("device: unknown device %q", name)
}

// Counters records what a kernel did, in device-neutral units. The sim
// aggregates them per work-group and per stage (S1/S2/S3).
type Counters struct {
	// ALUOps counts lane-group operations: one op is one lock-step
	// multiply-add step of a warp/vector (already divided by lane width).
	ALUOps float64
	// VectorALUOps are ALU ops issued through the explicit vector path.
	VectorALUOps float64
	// ScalarALUOps are ALU ops in shapes that defeat implicit vectorization
	// on CPU/MIC (charged with ScalarPenalty).
	ScalarALUOps float64
	// GlobalTx counts global-memory transactions after coalescing.
	GlobalTx float64
	// CacheHits/CacheMisses split cacheline accesses on cache-based devices.
	CacheHits   float64
	CacheMisses float64
	// LocalOps counts scratch-pad accesses.
	LocalOps float64
	// SpillOps counts register-spill round trips.
	SpillOps float64
	// Overhead is fixed scheduling cost in cycles (group/warp overheads).
	Overhead float64
}

// Add accumulates other into c.
func (c *Counters) Add(other Counters) {
	c.ALUOps += other.ALUOps
	c.VectorALUOps += other.VectorALUOps
	c.ScalarALUOps += other.ScalarALUOps
	c.GlobalTx += other.GlobalTx
	c.CacheHits += other.CacheHits
	c.CacheMisses += other.CacheMisses
	c.LocalOps += other.LocalOps
	c.SpillOps += other.SpillOps
	c.Overhead += other.Overhead
}

// Cycles converts counters into an estimated cycle count on this device.
func (d *Device) Cycles(c Counters) float64 {
	cy := c.Overhead
	cy += c.ALUOps * d.IssueCPI
	cy += c.VectorALUOps * d.IssueCPI * d.VectorBenefit
	cy += c.ScalarALUOps * d.IssueCPI * d.ScalarPenalty
	cy += c.GlobalTx * d.GlobalLatency / d.MemOverlap
	cy += c.CacheHits * d.CacheLatency
	cy += c.CacheMisses * d.GlobalLatency / d.MemOverlap
	cy += c.LocalOps * d.LocalLatency
	cy += c.SpillOps * d.SpillLatency
	return cy
}

// Seconds converts a cycle count to seconds at the device clock.
func (d *Device) Seconds(cycles float64) float64 {
	return cycles / (d.ClockGHz * 1e9)
}

// TransferSeconds models the one-time host→device placement of the rating
// matrix and factor matrices over PCIe; zero for host-resident devices.
func (d *Device) TransferSeconds(bytes int64) float64 {
	if d.PCIeGBs <= 0 {
		return 0
	}
	return float64(bytes) / (d.PCIeGBs * 1e9)
}

// CacheHitFraction deterministically models how much of a streamed working
// set of the given size hits the last-level cache: 1 when it fits, scaling
// down toward a floor as it grows. GPU returns 0 (no modeled cache).
func (d *Device) CacheHitFraction(workingSet int64) float64 {
	if d.CacheBytes == 0 || workingSet <= 0 {
		return 0
	}
	if workingSet <= d.CacheBytes {
		return 1
	}
	f := float64(d.CacheBytes) / float64(workingSet)
	const floor = 0.05 // streaming still hits on re-referenced lines
	if f < floor {
		return floor
	}
	return f
}
