package device

import (
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	if CPU.String() != "CPU" || GPU.String() != "GPU" || MIC.String() != "MIC" {
		t.Fatal("kind names wrong")
	}
	if Kind(42).String() == "" {
		t.Fatal("unknown kind should format")
	}
}

func TestAllAndByName(t *testing.T) {
	devs := All()
	if len(devs) != 3 {
		t.Fatalf("All returned %d devices", len(devs))
	}
	// Paper order: GPU, MIC, CPU.
	if devs[0].Kind != GPU || devs[1].Kind != MIC || devs[2].Kind != CPU {
		t.Fatal("All order wrong (want GPU, MIC, CPU)")
	}
	for _, name := range []string{"CPU", "GPU", "MIC", "Tesla K20c"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("TPU"); err == nil {
		t.Fatal("ByName accepted unknown device")
	}
}

func TestPublishedSpecs(t *testing.T) {
	gpu := K20c()
	if gpu.ComputeUnits != 13 || gpu.WarpSize != 32 || gpu.RegistersPerWI != 255 {
		t.Fatalf("K20c specs wrong: %+v", gpu)
	}
	if !gpu.HasScratchpad || gpu.LocalBytes != 48*1024 {
		t.Fatal("K20c scratchpad wrong")
	}
	cpu := XeonE52670()
	if cpu.ComputeUnits != 16 || cpu.Kind != CPU || cpu.HasScratchpad {
		t.Fatalf("E5-2670 specs wrong: %+v", cpu)
	}
	mic := XeonPhi31SP()
	if mic.ComputeUnits != 57 || mic.WarpSize != 16 || mic.Kind != MIC {
		t.Fatalf("Phi specs wrong: %+v", mic)
	}
}

func TestCountersAdd(t *testing.T) {
	a := Counters{ALUOps: 1, VectorALUOps: 2, ScalarALUOps: 3, GlobalTx: 4,
		CacheHits: 5, CacheMisses: 6, LocalOps: 7, SpillOps: 8, Overhead: 9}
	var b Counters
	b.Add(a)
	b.Add(a)
	if b.ALUOps != 2 || b.GlobalTx != 8 || b.Overhead != 18 || b.SpillOps != 16 {
		t.Fatalf("Add wrong: %+v", b)
	}
}

func TestCyclesWeighting(t *testing.T) {
	d := &Device{
		IssueCPI: 2, GlobalLatency: 100, MemOverlap: 4, CacheLatency: 3,
		LocalLatency: 1.5, SpillLatency: 7, VectorBenefit: 0.5, ScalarPenalty: 2,
	}
	c := Counters{
		ALUOps: 10, VectorALUOps: 10, ScalarALUOps: 10,
		GlobalTx: 2, CacheHits: 4, CacheMisses: 2, LocalOps: 8, SpillOps: 3, Overhead: 5,
	}
	// 5 + 10*2 + 10*2*0.5 + 10*2*2 + 2*25 + 4*3 + 2*25 + 8*1.5 + 3*7
	want := 5.0 + 20 + 10 + 40 + 50 + 12 + 50 + 12 + 21
	if got := d.Cycles(c); got != want {
		t.Fatalf("Cycles = %g, want %g", got, want)
	}
}

func TestSeconds(t *testing.T) {
	d := &Device{ClockGHz: 2}
	if got := d.Seconds(4e9); got != 2 {
		t.Fatalf("Seconds = %g, want 2", got)
	}
}

func TestTransferSeconds(t *testing.T) {
	gpu := K20c()
	if got := gpu.TransferSeconds(6e9); got != 1 {
		t.Fatalf("TransferSeconds = %g, want 1", got)
	}
	cpu := XeonE52670()
	if got := cpu.TransferSeconds(1 << 30); got != 0 {
		t.Fatalf("CPU TransferSeconds = %g, want 0", got)
	}
}

func TestCacheHitFraction(t *testing.T) {
	cpu := XeonE52670()
	if got := cpu.CacheHitFraction(1 << 10); got != 1 {
		t.Fatalf("small working set hit fraction = %g, want 1", got)
	}
	if got := cpu.CacheHitFraction(cpu.CacheBytes * 2); got != 0.5 {
		t.Fatalf("2x working set hit fraction = %g, want 0.5", got)
	}
	if got := cpu.CacheHitFraction(cpu.CacheBytes * 1000); got != 0.05 {
		t.Fatalf("huge working set hit fraction = %g, want floor 0.05", got)
	}
	gpu := K20c()
	if got := gpu.CacheHitFraction(1); got != 0 {
		t.Fatalf("GPU hit fraction = %g, want 0 (no modeled cache)", got)
	}
	if got := cpu.CacheHitFraction(0); got != 0 {
		t.Fatalf("zero working set = %g, want 0", got)
	}
}

// TestCyclesMonotone: more work never costs fewer cycles on any device.
func TestCyclesMonotone(t *testing.T) {
	f := func(alu, tx, spill uint16) bool {
		base := Counters{ALUOps: 10, GlobalTx: 10, SpillOps: 10}
		more := base
		more.ALUOps += float64(alu)
		more.GlobalTx += float64(tx)
		more.SpillOps += float64(spill)
		for _, d := range All() {
			if d.Cycles(more) < d.Cycles(base) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
