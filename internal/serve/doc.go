// Package serve is the online serving layer over trained ALS models: the
// inference-side counterpart of the paper's training hot loops. It provides
//
//   - a sharded top-N scorer that partitions the item factor matrix Y across
//     a bounded worker pool, scores each shard with the linalg dot kernels
//     into a per-shard size-n min-heap, and merges the heaps (S1–S3's
//     serving analogue: the per-request hot loop);
//   - atomic model hot-swap: immutable versioned Snapshots published through
//     an atomic.Pointer so retraining (cmd/alstrain) and serving compose
//     with zero request downtime;
//   - a fold-in path for cold-start users wrapping core.Model.FoldInUser;
//   - an LRU response cache keyed by (model version, user, n), purged
//     wholesale on hot-swap;
//   - robustness and observability: per-request deadlines, a bounded
//     admission queue with load shedding (429 on saturation), and a
//     Prometheus-style /metrics endpoint (request counts, latency
//     histogram, cache hit rate, in-flight gauge, model version).
//
// cmd/alsserve wires the package to an HTTP listener; cmd/alsload drives it
// with a power-law user distribution and reports latency percentiles.
package serve
