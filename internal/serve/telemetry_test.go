package serve

import (
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func renderTel(t *testing.T, tel *Telemetry) string {
	t.Helper()
	var b strings.Builder
	if err := tel.WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestTelemetryExpositionValidates: the serving metrics must pass the same
// strict exposition parser the training metrics do.
func TestTelemetryExpositionValidates(t *testing.T) {
	tel := NewTelemetry()
	tel.Observe("recommend", 200, 3*time.Millisecond)
	tel.Observe("recommend", 404, time.Millisecond)
	tel.Shed("recommend")
	tel.SwapRecorded()
	tel.SwapRejected()
	tel.SwapInstalled(time.Unix(1700000000, 0))
	out := renderTel(t, tel)
	if _, err := obs.ValidateExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("telemetry output does not validate: %v\n%s", err, out)
	}
	for _, want := range []string{
		`als_requests_total{endpoint="recommend",code="200"} 1`,
		`als_requests_total{endpoint="recommend",code="404"} 1`,
		`als_request_seconds_count{code="200"} 1`,
		`als_request_seconds_count{code="404"} 1`,
		`als_shed_total{endpoint="recommend"} 1`,
		"als_model_swaps_total 1",
		"als_swap_rejected_total 1",
		"als_inflight_requests 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

// TestCheckpointFreshnessGauges: absent before the first watcher install,
// then last-swap timestamp plus a monotonically growing age.
func TestCheckpointFreshnessGauges(t *testing.T) {
	tel := NewTelemetry()
	out := renderTel(t, tel)
	if strings.Contains(out, "als_checkpoint_age_seconds") ||
		strings.Contains(out, "als_last_swap_timestamp_seconds") {
		t.Fatalf("freshness gauges present before first install:\n%s", out)
	}

	swapAt := time.Unix(1700000000, 0)
	now := swapAt
	tel.now = func() time.Time { return now }
	tel.SwapInstalled(swapAt)

	now = swapAt.Add(90 * time.Second)
	out = renderTel(t, tel)
	if !strings.Contains(out, "als_last_swap_timestamp_seconds 1.7e+09") {
		t.Errorf("missing last-swap timestamp:\n%s", out)
	}
	if !strings.Contains(out, "als_checkpoint_age_seconds 90") {
		t.Errorf("missing 90s checkpoint age:\n%s", out)
	}

	// A fresh install resets the age.
	tel.SwapInstalled(now)
	out = renderTel(t, tel)
	if !strings.Contains(out, "als_checkpoint_age_seconds 0") {
		t.Errorf("age not reset after new install:\n%s", out)
	}
}

// TestSwapRejectedCountRoundTrip keeps the embedder-facing accessor honest
// against the registry-backed counter.
func TestSwapRejectedCountRoundTrip(t *testing.T) {
	tel := NewTelemetry()
	for i := 0; i < 3; i++ {
		tel.SwapRejected()
	}
	if got := tel.SwapRejectedCount(); got != 3 {
		t.Errorf("SwapRejectedCount = %d, want 3", got)
	}
}
