package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/linalg"
	"repro/internal/sparse"
)

// linearModel builds a model whose score for (u, i) is exactly scale*i:
// X rows are (scale, 0, ...), Y rows are (i, 0, ...). The closed-form score
// lets the hot-swap stress test verify responses against the version they
// claim to come from.
func linearModel(scale float32, users, items, k int) *core.Model {
	x := linalg.NewDense(users, k)
	for u := 0; u < users; u++ {
		x.Set(u, 0, scale)
	}
	y := linalg.NewDense(items, k)
	for i := 0; i < items; i++ {
		y.Set(i, 0, float32(i))
	}
	return &core.Model{K: k, X: x, Y: y}
}

// singleRating returns a rated set where user 0 rated exactly item `item`.
func singleRating(users, items, item int) *sparse.CSR {
	coo := sparse.NewCOO(users, items)
	coo.Append(0, item, 5)
	coo.Rows, coo.Cols = users, items
	m, err := coo.ToCSR()
	if err != nil {
		panic(err)
	}
	return m
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func postJSON(t *testing.T, url string, body any, out any) int {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func TestRecommendEndpoint(t *testing.T) {
	const users, items = 4, 64
	s, ts := newTestServer(t, Config{Workers: 2})
	s.Swap(linearModel(1, users, items, 4), singleRating(users, items, items-1), "m1")

	var resp RecommendResponse
	if code := getJSON(t, ts.URL+"/v1/recommend?user=0&n=3", &resp); code != 200 {
		t.Fatalf("status %d", code)
	}
	// user 0 rated the strongest item (items-1), so the top 3 are the next ones.
	want := []int{items - 2, items - 3, items - 4}
	if len(resp.Items) != 3 {
		t.Fatalf("items = %+v", resp.Items)
	}
	for i, it := range resp.Items {
		if it.Item != want[i] || it.Score != float64(want[i]) {
			t.Fatalf("rank %d: got %+v, want item %d", i, it, want[i])
		}
	}
	if resp.Version != "m1" || resp.Cached {
		t.Fatalf("resp = %+v", resp)
	}

	// Identical query: served from cache.
	var again RecommendResponse
	getJSON(t, ts.URL+"/v1/recommend?user=0&n=3", &again)
	if !again.Cached {
		t.Fatal("second identical request not cached")
	}
	if hits, _ := s.cache.Stats(); hits != 1 {
		t.Fatalf("cache hits = %d", hits)
	}

	// User 1 rated nothing: the true top item is included.
	getJSON(t, ts.URL+"/v1/recommend?user=1&n=1", &resp)
	if resp.Items[0].Item != items-1 {
		t.Fatalf("unrated user top = %+v", resp.Items)
	}
}

func TestRecommendErrors(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, MaxN: 20})
	// No model yet: everything model-backed is 503.
	if code := getJSON(t, ts.URL+"/v1/recommend?user=0", nil); code != 503 {
		t.Fatalf("no-model status %d", code)
	}
	if code := getJSON(t, ts.URL+"/healthz", nil); code != 503 {
		t.Fatalf("healthz without model = %d", code)
	}
	s.Swap(linearModel(1, 4, 16, 2), nil, "")

	cases := []struct {
		url  string
		want int
	}{
		{"/v1/recommend?user=abc", 400},
		{"/v1/recommend", 400},            // missing user
		{"/v1/recommend?user=99", 404},    // unknown user
		{"/v1/recommend?user=0&n=0", 400}, // n out of range
		{"/v1/recommend?user=0&n=21", 400},
		{"/v1/nope", 404},
		{"/healthz", 200},
	}
	for _, c := range cases {
		if code := getJSON(t, ts.URL+c.url, nil); code != c.want {
			t.Errorf("GET %s = %d, want %d", c.url, code, c.want)
		}
	}
	// Method mismatch on a registered pattern.
	resp, err := http.Post(ts.URL+"/v1/recommend?user=0", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/recommend = %d", resp.StatusCode)
	}
}

func TestFoldInEndpoint(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const items, k = 400, 6
	m := &core.Model{K: k, X: linalg.NewDense(1, k), Y: randomDense(rng, items, k)}
	s, ts := newTestServer(t, Config{Workers: 2})
	s.Swap(m, nil, "f1")

	req := FoldInRequest{Items: []int32{3, 10, 77}, Ratings: []float32{5, 4, 1}, N: 5}
	var resp FoldInResponse
	if code := postJSON(t, ts.URL+"/v1/foldin", req, &resp); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(resp.Items) != 5 || resp.Version != "f1" {
		t.Fatalf("resp = %+v", resp)
	}
	for _, it := range resp.Items {
		for _, rated := range req.Items {
			if it.Item == int(rated) {
				t.Fatalf("fold-in recommended an item the user just rated: %+v", it)
			}
		}
	}
}

func TestFoldInErrors(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, MaxN: 20, MaxFoldInItems: 4})
	s.Swap(linearModel(1, 2, 16, 2), nil, "")
	url := ts.URL + "/v1/foldin"

	cases := []struct {
		name string
		body any
		want int
	}{
		{"empty", FoldInRequest{}, 400},
		{"length mismatch", FoldInRequest{Items: []int32{1, 2}, Ratings: []float32{5}}, 400},
		{"duplicate item", FoldInRequest{Items: []int32{3, 3}, Ratings: []float32{5, 4}}, 400},
		{"out of range", FoldInRequest{Items: []int32{99}, Ratings: []float32{5}}, 400},
		{"too many ratings", FoldInRequest{Items: []int32{1, 2, 3, 4, 5}, Ratings: []float32{1, 2, 3, 4, 5}}, 400},
		{"n too large", FoldInRequest{Items: []int32{1}, Ratings: []float32{5}, N: 21}, 400},
	}
	for _, c := range cases {
		if code := postJSON(t, url, c.body, nil); code != c.want {
			t.Errorf("%s: status %d, want %d", c.name, code, c.want)
		}
	}
	resp, err := http.Post(url, "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("malformed JSON: %d", resp.StatusCode)
	}
}

func TestDeadlineExceeded(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, Timeout: time.Nanosecond})
	s.Swap(linearModel(1, 2, 2048, 4), nil, "")
	if code := getJSON(t, ts.URL+"/v1/recommend?user=0", nil); code != http.StatusGatewayTimeout {
		t.Fatalf("expired deadline returned %d, want 504", code)
	}
}

func TestLoadShedding(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, Queue: 2})
	s.Swap(linearModel(1, 2, 64, 2), nil, "")

	// Saturate the admission queue directly: deterministic, no timing games.
	s.sem <- struct{}{}
	s.sem <- struct{}{}
	resp, err := http.Get(ts.URL + "/v1/recommend?user=0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated server returned %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Errorf("429 Retry-After = %q, want \"1\"", ra)
	}
	<-s.sem
	<-s.sem
	if code := getJSON(t, ts.URL+"/v1/recommend?user=0", nil); code != 200 {
		t.Fatalf("drained server returned %d", code)
	}
	body := fetchMetrics(t, ts)
	if !strings.Contains(body, `als_shed_total{endpoint="recommend"} 1`) {
		t.Fatalf("shed counter missing:\n%s", body)
	}
}

func fetchMetrics(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestMetricsEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	s.Swap(linearModel(1, 2, 64, 2), nil, "vX")
	getJSON(t, ts.URL+"/v1/recommend?user=0&n=2", nil)
	getJSON(t, ts.URL+"/v1/recommend?user=0&n=2", nil) // cache hit
	getJSON(t, ts.URL+"/v1/recommend?user=999", nil)   // 404

	body := fetchMetrics(t, ts)
	for _, want := range []string{
		`als_requests_total{endpoint="recommend",code="200"} 2`,
		`als_requests_total{endpoint="recommend",code="404"} 1`,
		`als_request_seconds_count{code="200"} 2`,
		`als_request_seconds_count{code="404"} 1`,
		"als_cache_hits_total 1",
		"als_cache_misses_total 1",
		`als_model_info{version="vX",seq="1"} 1`,
		"als_model_swaps_total 1",
		"als_inflight_requests 0",
		`als_request_seconds_bucket{code="200",le="+Inf"} 2`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestSwapEndpointAndVersioning(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.bin")
	m := linearModel(1, 3, 8, 2)
	m.Meta = core.Meta{Version: "meta-v", Lambda: 0.1}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Save(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s, ts := newTestServer(t, Config{Workers: 1})
	s.Swap(linearModel(1, 3, 8, 2), nil, "") // unversioned: becomes v1
	if got := s.Current().Version; got != "v1" {
		t.Fatalf("default version = %q", got)
	}
	// Warm the cache, then swap via the admin endpoint.
	getJSON(t, ts.URL+"/v1/recommend?user=0", nil)
	if s.cache.Len() == 0 {
		t.Fatal("cache not warmed")
	}

	var resp SwapResponse
	if code := postJSON(t, ts.URL+"/admin/swap", SwapRequest{Model: path}, &resp); code != 200 {
		t.Fatalf("swap status %d", code)
	}
	if resp.Version != "meta-v" || resp.Seq != 2 || resp.Users != 3 || resp.Items != 8 {
		t.Fatalf("swap resp = %+v", resp)
	}
	if s.cache.Len() != 0 {
		t.Fatal("hot-swap did not purge the cache")
	}
	var mi ModelResponse
	getJSON(t, ts.URL+"/v1/model", &mi)
	if mi.Version != "meta-v" || mi.K != 2 {
		t.Fatalf("model info = %+v", mi)
	}

	if code := postJSON(t, ts.URL+"/admin/swap", SwapRequest{Model: filepath.Join(dir, "missing.bin")}, nil); code != 400 {
		t.Fatalf("missing model file swap = %d", code)
	}
	if code := postJSON(t, ts.URL+"/admin/swap", SwapRequest{}, nil); code != 400 {
		t.Fatalf("empty swap = %d", code)
	}
}

// TestHotSwapStress hammers the server with concurrent reads while another
// goroutine hot-swaps between two models with distinguishable factors.
// Every response must be internally consistent: the scores must match the
// model the response's version claims. Run under -race this is the torn-
// model detector the acceptance criteria require.
func TestHotSwapStress(t *testing.T) {
	const users, items, k = 8, 512, 4
	modelA := linearModel(1, users, items, k) // score = i
	modelB := linearModel(2, users, items, k) // score = 2i
	s, ts := newTestServer(t, Config{Workers: 4, Queue: 256, CacheSize: 64})
	s.Swap(modelA, nil, "A")

	swaps := 60
	readers := 4
	perReader := 150
	if testing.Short() {
		swaps, perReader = 15, 40
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < swaps; i++ {
			if i%2 == 0 {
				s.Swap(modelB, nil, "B")
			} else {
				s.Swap(modelA, nil, "A")
			}
			time.Sleep(200 * time.Microsecond)
		}
		stop.Store(true)
	}()

	errc := make(chan error, readers)
	for r := 0; r < readers; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &http.Client{Timeout: 5 * time.Second}
			for i := 0; i < perReader || !stop.Load(); i++ {
				u := (r*perReader + i) % users
				resp, err := client.Get(fmt.Sprintf("%s/v1/recommend?user=%d&n=5", ts.URL, u))
				if err != nil {
					errc <- err
					return
				}
				var rec RecommendResponse
				err = json.NewDecoder(resp.Body).Decode(&rec)
				resp.Body.Close()
				if err != nil {
					errc <- err
					return
				}
				scale := 1.0
				if rec.Version == "B" {
					scale = 2.0
				} else if rec.Version != "A" {
					errc <- fmt.Errorf("unknown version %q", rec.Version)
					return
				}
				for _, it := range rec.Items {
					if it.Score != scale*float64(it.Item) {
						errc <- fmt.Errorf("torn model: version %s item %d score %g",
							rec.Version, it.Item, it.Score)
						return
					}
				}
				if i > perReader*10 { // safety valve if the swapper stalls
					break
				}
			}
			errc <- nil
		}()
	}
	wg.Wait()
	for r := 0; r < readers; r++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Current().Seq; got != uint64(swaps)+1 {
		t.Fatalf("seq = %d, want %d", got, swaps+1)
	}
}
