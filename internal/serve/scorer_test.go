package serve

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/linalg"
	"repro/internal/metrics"
	"repro/internal/sparse"
)

func randomDense(rng *rand.Rand, rows, cols int) *linalg.Dense {
	d := linalg.NewDense(rows, cols)
	for i := range d.Data {
		d.Data[i] = rng.Float32()*2 - 1
	}
	return d
}

func randomRated(rng *rand.Rand, users, items, perUser int) *sparse.CSR {
	coo := sparse.NewCOO(users, items)
	for u := 0; u < users; u++ {
		for j := 0; j < perUser; j++ {
			coo.Append(u, rng.Intn(items), 4)
		}
	}
	coo.Dedup(sparse.DedupKeepLast)
	coo.Rows, coo.Cols = users, items
	m, err := coo.ToCSR()
	if err != nil {
		panic(err)
	}
	return m
}

// TestScorerMatchesTopN: the sharded scorer must select exactly what the
// single-threaded heap and the full-sort oracle select, for any worker
// count, n, and exclusion set.
func TestScorerMatchesTopN(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	const users, items, k = 4, 3000, 8
	x := randomDense(rng, users, k)
	y := randomDense(rng, items, k)
	rated := randomRated(rng, users, items, 40)

	for _, workers := range []int{1, 2, 3, 8} {
		sc := NewScorer(workers)
		for _, n := range []int{1, 7, 50, items + 10} {
			for u := 0; u < users; u++ {
				scored, err := sc.TopN(context.Background(), x.Row(u), y, RatedExcluder(rated, u), n)
				if err != nil {
					t.Fatalf("workers=%d n=%d: %v", workers, n, err)
				}
				got := make([]int, len(scored))
				for i, s := range scored {
					got[i] = s.Item
				}
				want := metrics.TopN(rated, x, y, u, n)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("workers=%d n=%d u=%d: sharded %v != heap %v", workers, n, u, got, want)
				}
				wantSort := metrics.TopNSort(rated, x, y, u, n)
				if !reflect.DeepEqual(want, wantSort) {
					t.Fatalf("n=%d u=%d: heap %v != full sort %v", n, u, want, wantSort)
				}
			}
		}
		sc.Close()
	}
}

func TestScorerCanceledContext(t *testing.T) {
	sc := NewScorer(2)
	defer sc.Close()
	rng := rand.New(rand.NewSource(1))
	y := randomDense(rng, 5000, 4)
	x := []float32{1, 0, 0, 0}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sc.TopN(ctx, x, y, nil, 10); err == nil {
		t.Fatal("canceled context did not abort scoring")
	}
}

func TestScorerDegenerate(t *testing.T) {
	sc := NewScorer(0) // default pool
	defer sc.Close()
	if sc.Workers() < 1 {
		t.Fatalf("default workers = %d", sc.Workers())
	}
	y := linalg.NewDense(0, 4)
	if out, err := sc.TopN(context.Background(), []float32{1, 0, 0, 0}, y, nil, 5); err != nil || out != nil {
		t.Fatalf("empty catalog: %v %v", out, err)
	}
	y = linalg.NewDense(3, 4)
	if out, err := sc.TopN(context.Background(), []float32{1, 0, 0, 0}, y, nil, 0); err != nil || out != nil {
		t.Fatalf("n=0: %v %v", out, err)
	}
}

func TestRatedExcluder(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rated := randomRated(rng, 3, 200, 30)
	for u := 0; u < 3; u++ {
		ex := RatedExcluder(rated, u)
		cols, _ := rated.Row(u)
		set := map[int]bool{}
		for _, c := range cols {
			set[int(c)] = true
		}
		for i := 0; i < 200; i++ {
			if ex(i) != set[i] {
				t.Fatalf("u=%d item=%d: excluder %v, want %v", u, i, ex(i), set[i])
			}
		}
	}
	if RatedExcluder(nil, 0) != nil {
		t.Fatal("nil matrix should yield nil excluder")
	}
	if RatedExcluder(rated, 99) != nil {
		t.Fatal("out-of-range user should yield nil excluder")
	}
}
