package serve

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/linalg"
)

// saveCheckpoint writes a valid checkpoint whose model scores (u, i) as
// scale*i — the same closed form as linearModel — so responses can be
// attributed to the checkpoint they came from.
func saveCheckpoint(t *testing.T, fsys checkpoint.FS, dir string, iter int, scale float32, users, items, k int) {
	t.Helper()
	x := linalg.NewDense(users, k)
	for u := 0; u < users; u++ {
		x.Set(u, 0, scale)
	}
	y := linalg.NewDense(items, k)
	for i := 0; i < items; i++ {
		y.Set(i, 0, float32(i))
	}
	st := &checkpoint.State{
		Iteration: iter, K: k, Lambda: 0.1, Seed: 1,
		Variant: "tb", X: x, Y: y,
	}
	if _, err := checkpoint.Save(fsys, dir, st); err != nil {
		t.Fatal(err)
	}
}

func TestWatcherSwapsNewestCheckpoint(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	fsys := checkpoint.NewMemFS()
	w := NewWatcher(s, WatcherConfig{Dir: "ckpts", FS: fsys})

	// No directory yet: keep waiting, don't error.
	if swapped, err := w.Poll(); swapped || err != nil {
		t.Fatalf("empty poll = (%v, %v)", swapped, err)
	}

	saveCheckpoint(t, fsys, "ckpts", 1, 1, 4, 6, 3)
	saveCheckpoint(t, fsys, "ckpts", 2, 2, 4, 6, 3)
	if swapped, err := w.Poll(); !swapped || err != nil {
		t.Fatalf("poll = (%v, %v), want swap", swapped, err)
	}
	sn := s.Current()
	if sn == nil || sn.Version != "ckpt-2" {
		t.Fatalf("installed %+v, want version ckpt-2", sn)
	}

	// Nothing new: no swap, and the stale checkpoint 1 is never revisited.
	if swapped, _ := w.Poll(); swapped {
		t.Fatal("re-poll swapped without a new checkpoint")
	}

	saveCheckpoint(t, fsys, "ckpts", 3, 3, 4, 6, 3)
	if swapped, _ := w.Poll(); !swapped {
		t.Fatal("new checkpoint not picked up")
	}
	if v := s.Current().Version; v != "ckpt-3" {
		t.Fatalf("version = %s, want ckpt-3", v)
	}
}

func TestWatcherAppliesRatedOnlyOnDimensionMatch(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	fsys := checkpoint.NewMemFS()
	rated := singleRating(4, 6, 5) // user 0 rated item 5, the top scorer
	w := NewWatcher(s, WatcherConfig{Dir: "ckpts", FS: fsys, Rated: rated})

	saveCheckpoint(t, fsys, "ckpts", 1, 1, 4, 6, 3)
	if swapped, err := w.Poll(); !swapped || err != nil {
		t.Fatalf("poll = (%v, %v)", swapped, err)
	}
	var resp RecommendResponse
	getJSON(t, ts.URL+"/v1/recommend?user=0&n=1", &resp)
	if len(resp.Items) != 1 || resp.Items[0].Item != 4 {
		t.Fatalf("rated exclusion not applied: %+v", resp.Items)
	}

	// A checkpoint with a different user count must not inherit the stale
	// rated matrix (it would exclude the wrong rows).
	saveCheckpoint(t, fsys, "ckpts", 2, 1, 5, 6, 3)
	if swapped, _ := w.Poll(); !swapped {
		t.Fatal("resized checkpoint not swapped")
	}
	getJSON(t, ts.URL+"/v1/recommend?user=0&n=1", &resp)
	if len(resp.Items) != 1 || resp.Items[0].Item != 5 {
		t.Fatalf("mismatched rated matrix still applied: %+v", resp.Items)
	}
}

// TestWatcherRejectsCorruptCheckpointUnderLoad is the crash-safety story
// end to end: a training run dies mid-checkpoint leaving a torn file, the
// serving fleet notices the new file while under live request load, fails
// to load it, counts the rejection — and never stops answering from the
// snapshot it already has.
func TestWatcherRejectsCorruptCheckpointUnderLoad(t *testing.T) {
	s, ts := newTestServer(t, Config{Queue: 256})
	fsys := checkpoint.NewMemFS()
	var rejected []string
	w := NewWatcher(s, WatcherConfig{Dir: "ckpts", FS: fsys,
		OnReject: func(path string, err error) {
			rejected = append(rejected, path)
			if err == nil {
				t.Error("OnReject called with nil error")
			}
		}})

	saveCheckpoint(t, fsys, "ckpts", 1, 1, 4, 6, 3)
	if swapped, _ := w.Poll(); !swapped {
		t.Fatal("initial checkpoint not installed")
	}

	// Live load against /v1/recommend for the whole scenario. Every
	// response must come from an installed snapshot and carry its closed
	// form — a torn swap would surface as a non-ckpt version or a garbage
	// score.
	stop := make(chan struct{})
	errs := make(chan error, 64)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(ts.URL + "/v1/recommend?user=0&n=1")
				if err != nil {
					errs <- err
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("status %d: %s", resp.StatusCode, body)
					return
				}
				if !strings.Contains(string(body), `"version":"ckpt-`) {
					errs <- fmt.Errorf("response from unknown snapshot: %s", body)
					return
				}
			}
		}()
	}

	// A torn checkpoint 2 appears (truncated mid-payload), then a
	// bit-flipped checkpoint 3: both must be rejected while serving
	// continues. The watcher polls repeatedly, as Run would.
	valid, ok := fsys.ReadFile(filepath.Join("ckpts", checkpoint.FileName(1)))
	if !ok {
		t.Fatal("checkpoint 1 missing")
	}
	fsys.WriteFile(filepath.Join("ckpts", checkpoint.FileName(2)), valid[:len(valid)/2])
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)-5] ^= 0x80
	fsys.WriteFile(filepath.Join("ckpts", checkpoint.FileName(3)), flipped)
	for i := 0; i < 3; i++ {
		if swapped, err := w.Poll(); swapped || err != nil {
			t.Fatalf("poll %d with only corrupt candidates = (%v, %v)", i, swapped, err)
		}
	}

	// A good checkpoint 4 ends the outage.
	saveCheckpoint(t, fsys, "ckpts", 4, 4, 4, 6, 3)
	if swapped, _ := w.Poll(); !swapped {
		t.Fatal("recovery checkpoint not installed")
	}

	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("request failed during corrupt swap: %v", err)
	}

	if s.Current().Version != "ckpt-4" {
		t.Fatalf("final version = %s", s.Current().Version)
	}
	// Each corrupt file is rejected exactly once (no retry churn), and the
	// rejection counter is exported for alerting.
	if len(rejected) != 2 {
		t.Fatalf("rejected %v, want the two corrupt files once each", rejected)
	}
	if n := s.Telemetry().SwapRejectedCount(); n != 2 {
		t.Fatalf("swap_rejected counter = %d, want 2", n)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "als_swap_rejected_total 2") {
		t.Fatalf("metrics missing rejection count:\n%s", body)
	}
}

// TestWatcherFallsBackToOlderValidCandidate: when the newest checkpoint is
// torn, the next-newest valid one still gets installed in the same poll.
func TestWatcherFallsBackToOlderValidCandidate(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	fsys := checkpoint.NewMemFS()
	w := NewWatcher(s, WatcherConfig{Dir: "ckpts", FS: fsys})

	saveCheckpoint(t, fsys, "ckpts", 5, 1, 4, 6, 3)
	fsys.WriteFile(filepath.Join("ckpts", checkpoint.FileName(6)), []byte("torn"))
	if swapped, err := w.Poll(); !swapped || err != nil {
		t.Fatalf("poll = (%v, %v)", swapped, err)
	}
	if v := s.Current().Version; v != "ckpt-5" {
		t.Fatalf("version = %s, want fallback ckpt-5", v)
	}
	if n := s.Telemetry().SwapRejectedCount(); n != 1 {
		t.Fatalf("swap_rejected = %d, want 1", n)
	}
}

// TestWatcherRunWithFakeClock drives the polling loop with a fake clock:
// no sleeps, fully deterministic.
func TestWatcherRunWithFakeClock(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	fsys := checkpoint.NewMemFS()
	clk := checkpoint.NewFakeClock(time.Unix(0, 0))
	swaps := make(chan *Snapshot, 1)
	w := NewWatcher(s, WatcherConfig{
		Dir: "ckpts", FS: fsys, Clock: clk, Interval: time.Second,
		OnSwap: func(sn *Snapshot) { swaps <- sn },
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { w.Run(ctx); close(done) }()

	waitWaiters := func() {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for clk.Waiters() == 0 {
			if time.Now().After(deadline) {
				t.Fatal("watcher never armed its poll timer")
			}
			time.Sleep(time.Millisecond)
		}
	}

	// First tick: empty directory, no swap.
	waitWaiters()
	clk.Advance(time.Second)

	// Second tick: a checkpoint has appeared.
	saveCheckpoint(t, fsys, "ckpts", 1, 1, 4, 6, 3)
	waitWaiters()
	clk.Advance(time.Second)
	select {
	case sn := <-swaps:
		if sn.Version != "ckpt-1" {
			t.Fatalf("swapped %s, want ckpt-1", sn.Version)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("poll tick produced no swap")
	}

	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not exit on context cancel")
	}
}
