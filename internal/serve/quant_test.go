package serve

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/linalg"
	"repro/internal/quant"
)

// randomModel builds a model with dense random factors in [-1, 1).
func randomModel(rng *rand.Rand, users, items, k int) *core.Model {
	return &core.Model{K: k, X: randomDense(rng, users, k), Y: randomDense(rng, items, k)}
}

// TestScorerTopNQuantMatchesSequential holds the pooled, sharded,
// slab-scanned TopNQuant item-for-item and score-for-score identical to
// the sequential quant.TopN reference, including exclusion and the
// lower-index tie-break across shard boundaries.
func TestScorerTopNQuantMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	y := linalg.NewDense(1100, 6) // > minShardRows·workers so several shards run
	for i := range y.Data {
		y.Data[i] = float32(rng.NormFloat64())
	}
	// A block of identical rows forces exact cross-shard ties.
	copy(y.Row(700), y.Row(10))
	copy(y.Row(701), y.Row(10))
	x := make([]float32, 6)
	for i := range x {
		x[i] = float32(rng.NormFloat64())
	}
	excluded := func(i int) bool { return i%13 == 0 }

	s := NewScorer(4)
	defer s.Close()
	for _, prec := range []quant.Precision{quant.F16, quant.I8} {
		q, err := quant.EncodeDense(y, prec)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range []int{1, 10, 50} {
			got, err := s.TopNQuant(context.Background(), x, q, excluded, n)
			if err != nil {
				t.Fatal(err)
			}
			want := q.TopN(x, excluded, n)
			if len(got) != len(want) {
				t.Fatalf("%v n=%d: %d items, want %d", prec, n, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%v n=%d rank %d: got %+v, want %+v", prec, n, i, got[i], want[i])
				}
			}
		}
	}
}

// TestRecommendQuantized serves the same model at every precision and
// checks the responses match the sequential quantized reference exactly,
// that /v1/model and /metrics report the precision, and that the
// max-abs-error gauge appears for quantized snapshots.
func TestRecommendQuantized(t *testing.T) {
	const users, items, k = 3, 400, 5
	rng := rand.New(rand.NewSource(31))
	m := randomModel(rng, users, items, k)
	for _, prec := range []quant.Precision{quant.F32, quant.F16, quant.I8} {
		s, ts := newTestServer(t, Config{Workers: 2})
		s.SetPrecision(prec)
		sn := s.Swap(m, nil, "q1")
		if sn.Precision != prec || (prec != quant.F32) != (sn.QY != nil) {
			t.Fatalf("%v: snapshot precision %v, QY %v", prec, sn.Precision, sn.QY)
		}

		var mr ModelResponse
		if code := getJSON(t, ts.URL+"/v1/model", &mr); code != 200 {
			t.Fatalf("%v: /v1/model HTTP %d", prec, code)
		}
		if mr.Precision != prec.String() {
			t.Fatalf("%v: /v1/model precision %q", prec, mr.Precision)
		}

		var resp RecommendResponse
		if code := getJSON(t, ts.URL+"/v1/recommend?user=1&n=7", &resp); code != 200 {
			t.Fatalf("%v: HTTP %d", prec, code)
		}
		if len(resp.Items) != 7 {
			t.Fatalf("%v: %d items", prec, len(resp.Items))
		}
		if prec != quant.F32 {
			want := sn.QY.TopN(m.X.Row(1), nil, 7)
			for i, it := range resp.Items {
				if it.Item != want[i].Item || it.Score != want[i].Score {
					t.Fatalf("%v rank %d: got %+v, want %+v", prec, i, it, want[i])
				}
			}
		}

		var sb strings.Builder
		if err := s.Telemetry().WriteMetrics(&sb); err != nil {
			t.Fatal(err)
		}
		metrics := sb.String()
		if !strings.Contains(metrics, `als_scorer_precision{precision="`+prec.String()+`"} 1`) {
			t.Errorf("%v: missing precision gauge in metrics:\n%s", prec, metrics)
		}
		if got := strings.Contains(metrics, "als_quant_max_abs_error"); got != (prec != quant.F32) {
			t.Errorf("%v: max-abs-error gauge present=%v", prec, got)
		}
		if !strings.Contains(metrics, `als_scan_seconds_count{precision="`+prec.String()+`"} 1`) {
			t.Errorf("%v: scan histogram did not record the request:\n%s", prec, metrics)
		}
	}
}

// TestFoldInQuantized: fold-in keeps solving the user factor in float32
// against the original Y, and only the final top-N scan runs quantized —
// so the response must match scanning the quantized matrix with the
// float32 fold-in solution.
func TestFoldInQuantized(t *testing.T) {
	const users, items, k = 3, 300, 4
	rng := rand.New(rand.NewSource(37))
	m := randomModel(rng, users, items, k)
	f32srv, f32ts := newTestServer(t, Config{Workers: 1})
	f32srv.Swap(m, nil, "v")
	req := FoldInRequest{Items: []int32{5, 90, 211}, Ratings: []float32{5, 3, 4}, N: 6}
	var f32resp FoldInResponse
	if code := postJSON(t, f32ts.URL+"/v1/foldin", req, &f32resp); code != 200 {
		t.Fatalf("f32 fold-in HTTP %d", code)
	}

	s, ts := newTestServer(t, Config{Workers: 1})
	s.SetPrecision(quant.I8)
	sn := s.Swap(m, nil, "v")
	var resp FoldInResponse
	if code := postJSON(t, ts.URL+"/v1/foldin", req, &resp); code != 200 {
		t.Fatalf("i8 fold-in HTTP %d", code)
	}
	// Same float32 solve, then the quantized scan: reproduce it directly.
	xu, err := m.FoldInUser(req.Items, req.Ratings, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	rated := map[int]bool{5: true, 90: true, 211: true}
	want := sn.QY.TopN(xu, func(i int) bool { return rated[i] }, 6)
	if len(resp.Items) != len(want) {
		t.Fatalf("%d items, want %d", len(resp.Items), len(want))
	}
	for i, it := range resp.Items {
		if it.Item != want[i].Item || it.Score != want[i].Score {
			t.Fatalf("rank %d: got %+v, want %+v", i, it, want[i])
		}
	}
	// The quantized ranking should still broadly agree with float32.
	if overlap := itemOverlap(resp.Items, f32resp.Items); overlap < 4 {
		t.Errorf("i8 fold-in shares only %d of 6 items with f32", overlap)
	}
}

func itemOverlap(a, b []RecItem) int {
	in := make(map[int]bool, len(a))
	for _, it := range a {
		in[it.Item] = true
	}
	n := 0
	for _, it := range b {
		if in[it.Item] {
			n++
		}
	}
	return n
}

// TestCacheKeyPrecision: entries scored at different precisions must not
// answer for each other even when every other key component matches.
func TestCacheKeyPrecision(t *testing.T) {
	c := NewCache(8)
	base := cacheKey{version: "v", seq: 1, user: 2, n: 3, prec: quant.F32}
	c.Put(base, nil)
	quantized := base
	quantized.prec = quant.I8
	if _, ok := c.Get(quantized); ok {
		t.Fatal("i8 key hit the f32 entry")
	}
	if _, ok := c.Get(base); !ok {
		t.Fatal("f32 entry lost")
	}
}

// TestSwapReusesCheckpointEncoding: a model carrying quantized factors
// from a compressed checkpoint is installed without re-encoding when the
// precision matches, and re-encoded when it does not.
func TestSwapReusesCheckpointEncoding(t *testing.T) {
	const users, items, k = 2, 64, 3
	rng := rand.New(rand.NewSource(41))
	m := randomModel(rng, users, items, k)
	qy, err := quant.EncodeDense(m.Y, quant.I8)
	if err != nil {
		t.Fatal(err)
	}
	m.QY = qy

	var st Store
	st.SetPrecision(quant.I8)
	if sn := st.Swap(m, nil, "a"); sn.QY != qy {
		t.Fatal("matching precision did not reuse the checkpoint encoding")
	}
	st.SetPrecision(quant.F16)
	sn := st.Swap(m, nil, "b")
	if sn.QY == nil || sn.QY.Prec != quant.F16 {
		t.Fatalf("mismatched precision not re-encoded: %+v", sn.QY)
	}
	st.SetPrecision(quant.F32)
	if sn := st.Swap(m, nil, "c"); sn.QY != nil || sn.Precision != quant.F32 {
		t.Fatal("f32 swap attached a quantized matrix")
	}
}
