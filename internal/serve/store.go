package serve

import (
	"fmt"
	"os"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/quant"
	"repro/internal/sparse"
)

// Snapshot is one immutable serving state: a model, the optional training
// matrix used to exclude already-rated items, and its version identity.
// Handlers load a Snapshot once per request, so a concurrent swap can never
// mix factors from one model with the version or rated-set of another.
type Snapshot struct {
	Model *core.Model
	Rated *sparse.CSR // optional; nil serves without rated-item exclusion
	// Version labels the model for cache keys and responses; Seq increases
	// by one per swap and breaks ties between reused labels.
	Version string
	Seq     uint64

	// ItemOffset and ItemTotal describe a sharded snapshot: Model.Y holds
	// only rows [ItemOffset, ItemOffset+Y.Rows) of a catalog of ItemTotal
	// items, and responses report global item indices. ItemTotal == 0 (the
	// zero value) means the snapshot holds the full catalog.
	ItemOffset int
	ItemTotal  int

	// Precision is the scoring precision this snapshot serves at; QY is
	// the quantized item-factor matrix backing it, built once per swap
	// (or inherited from a compressed checkpoint) and nil at F32. Fold-in
	// solving always uses the float32 Model.Y — only the top-N scan reads
	// QY.
	Precision quant.Precision
	QY        *quant.Matrix

	// userIdx maps external user IDs to dense rows for compact models;
	// built once per swap so request-path lookups are O(1) instead of the
	// O(m) scan core.Model.UserIndex does.
	userIdx map[int64]int
}

// UserIndex resolves an external user ID to the model's dense row.
func (sn *Snapshot) UserIndex(orig int64) (int, bool) {
	if sn.userIdx != nil {
		u, ok := sn.userIdx[orig]
		return u, ok
	}
	return sn.Model.UserIndex(orig)
}

// Store publishes the current Snapshot through an atomic pointer: readers
// never block, writers swap in O(1), and an in-flight request keeps its
// snapshot alive until it finishes.
type Store struct {
	cur  atomic.Pointer[Snapshot]
	seq  atomic.Uint64
	prec atomic.Uint32 // quant.Precision swaps encode Y at
}

// Current returns the live snapshot, or nil before the first Swap.
func (s *Store) Current() *Snapshot { return s.cur.Load() }

// SetPrecision selects the scoring precision for subsequent swaps (it
// does not re-encode the live snapshot; the next swap picks it up).
func (s *Store) SetPrecision(p quant.Precision) { s.prec.Store(uint32(p)) }

// Precision returns the precision subsequent swaps will serve at.
func (s *Store) Precision() quant.Precision { return quant.Precision(s.prec.Load()) }

// Swap atomically installs a new model. An empty version falls back to the
// model's own Meta.Version, then to "v<seq>".
func (s *Store) Swap(m *core.Model, rated *sparse.CSR, version string) *Snapshot {
	return s.SwapShard(m, rated, version, 0, 0)
}

// SwapShard installs a sharded model view: m.Y holds the slice of a
// total-item catalog starting at global index offset. total == 0 installs
// an ordinary full-catalog snapshot.
func (s *Store) SwapShard(m *core.Model, rated *sparse.CSR, version string, offset, total int) *Snapshot {
	seq := s.seq.Add(1)
	if version == "" {
		version = m.Meta.Version
	}
	if version == "" {
		version = fmt.Sprintf("v%d", seq)
	}
	sn := &Snapshot{Model: m, Rated: rated, Version: version, Seq: seq,
		ItemOffset: offset, ItemTotal: total}
	if prec := s.Precision(); prec != quant.F32 {
		// Encode once per swap, amortized over every request the snapshot
		// serves. A model decoded from a compressed checkpoint already
		// carries the matching quantized matrix — reuse it verbatim. The
		// only way encoding fails is non-finite factors, which the training
		// guard prevents; if it happens anyway the snapshot serves float32
		// (and reports that precision) rather than refusing the swap.
		if m.QY != nil && m.QY.Prec == prec && m.QY.Rows == m.Y.Rows && m.QY.Cols == m.Y.Cols {
			sn.QY, sn.Precision = m.QY, prec
		} else if qy, err := quant.EncodeDense(m.Y, prec); err == nil {
			sn.QY, sn.Precision = qy, prec
		}
	}
	if m.UserIDs != nil {
		sn.userIdx = make(map[int64]int, len(m.UserIDs))
		for i, id := range m.UserIDs {
			sn.userIdx[id] = i
		}
	}
	s.cur.Store(sn)
	return sn
}

// LoadSnapshotFiles reads a model written by alstrain -out and, when
// ratingsPath is non-empty, the rating file it was trained on (aligned to
// the model's ID space for compact models) for rated-item exclusion.
func LoadSnapshotFiles(modelPath, ratingsPath string, oneBased bool) (*core.Model, *sparse.CSR, error) {
	f, err := os.Open(modelPath)
	if err != nil {
		return nil, nil, err
	}
	m, err := core.LoadModel(f)
	f.Close()
	if err != nil {
		return nil, nil, fmt.Errorf("serve: %s: %w", modelPath, err)
	}
	if ratingsPath == "" {
		return m, nil, nil
	}
	mx, err := core.AlignRatings(m, ratingsPath, oneBased)
	if err != nil {
		return nil, nil, err
	}
	return m, mx.R, nil
}
