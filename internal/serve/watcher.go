package serve

import (
	"context"
	"fmt"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/sparse"
)

// WatcherConfig configures a checkpoint-directory Watcher.
type WatcherConfig struct {
	// Dir is the checkpoint directory written by a training run
	// (alstrain -checkpoint-dir). It may not exist yet; the watcher keeps
	// polling until it appears.
	Dir string
	// Interval is the polling period for Run (default 2s).
	Interval time.Duration
	// FS overrides the filesystem (nil = the real disk); tests inject a
	// checkpoint.MemFS here.
	FS checkpoint.FS
	// Clock overrides time for Run's polling loop (nil = real time);
	// tests drive a checkpoint.FakeClock instead of sleeping.
	Clock checkpoint.Clock
	// Rated optionally enables rated-item exclusion for swapped-in
	// models; it is applied only when its row count matches the
	// checkpoint's user count.
	Rated *sparse.CSR
	// OnSwap, when set, is called after each successful hot-swap.
	OnSwap func(*Snapshot)
	// OnReject, when set, is called for each checkpoint file that failed
	// to load (after the rejection metric is incremented).
	OnReject func(path string, err error)
}

// Watcher tails a checkpoint directory and hot-swaps the newest valid
// checkpoint into a Server through the ordinary versioned-snapshot path,
// composing training and serving into a live pipeline: a long alstrain
// run checkpoints every iteration, and the serving fleet follows it
// without restarts. A corrupt or torn checkpoint is rejected (counted in
// als_swap_rejected_total), the previous snapshot keeps serving, and the
// watcher falls back to the next-newest candidate.
type Watcher struct {
	srv       *Server
	cfg       WatcherConfig
	installed int             // iteration of the installed checkpoint
	rejected  map[string]bool // checkpoint files already found corrupt
}

// NewWatcher builds a watcher bound to srv. Call Poll for one
// deterministic scan-and-swap pass, or Run for the polling loop.
func NewWatcher(srv *Server, cfg WatcherConfig) *Watcher {
	if cfg.Interval <= 0 {
		cfg.Interval = 2 * time.Second
	}
	if cfg.FS == nil {
		cfg.FS = checkpoint.OS
	}
	if cfg.Clock == nil {
		cfg.Clock = checkpoint.SystemClock
	}
	return &Watcher{srv: srv, cfg: cfg, rejected: make(map[string]bool)}
}

// Poll performs one scan: if the directory holds a checkpoint newer than
// the installed one, the newest loadable candidate is swapped in.
// Corrupt candidates are skipped (never retried — a visible checkpoint is
// complete, so a bad one cannot heal) and each counts one rejection. It
// reports whether a swap happened. Poll is not safe for concurrent use
// with itself; Run is the single-goroutine driver.
func (w *Watcher) Poll() (bool, error) {
	names, err := w.cfg.FS.ReadDir(w.cfg.Dir)
	if err != nil {
		// The directory may simply not exist yet (training not started);
		// keep waiting rather than failing the loop.
		return false, nil
	}
	type candidate struct {
		name string
		iter int
	}
	var cands []candidate
	for _, name := range names {
		if it, ok := checkpoint.ParseFileName(name); ok && it > w.installed {
			cands = append(cands, candidate{name, it})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].iter > cands[j].iter })
	for _, c := range cands {
		path := filepath.Join(w.cfg.Dir, c.name)
		if w.rejected[path] {
			continue
		}
		st, err := checkpoint.Load(w.cfg.FS, path)
		if err != nil {
			w.rejected[path] = true
			w.srv.Telemetry().SwapRejected()
			if w.cfg.OnReject != nil {
				w.cfg.OnReject(path, err)
			}
			continue
		}
		model := &core.Model{
			K: st.K, X: st.X, Y: st.Y,
			Meta: core.Meta{
				Version: fmt.Sprintf("ckpt-%d", st.Iteration),
				Lambda:  st.Lambda, WeightedLambda: st.WeightedLambda,
			},
		}
		rated := w.cfg.Rated
		if rated != nil && rated.NumRows != model.X.Rows {
			rated = nil
		}
		sn := w.srv.Swap(model, rated, "")
		w.srv.Telemetry().SwapInstalled(w.cfg.Clock.Now())
		w.installed = c.iter
		if w.cfg.OnSwap != nil {
			w.cfg.OnSwap(sn)
		}
		return true, nil
	}
	return false, nil
}

// Run polls until ctx is cancelled.
func (w *Watcher) Run(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		case <-w.cfg.Clock.After(w.cfg.Interval):
			w.Poll()
		}
	}
}
