package serve

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/sparse"
)

// WatcherConfig configures a checkpoint-directory Watcher.
type WatcherConfig struct {
	// Dir is the checkpoint directory written by a training run
	// (alstrain -checkpoint-dir). It may not exist yet; the watcher keeps
	// polling until it appears.
	Dir string
	// Interval is the polling period for Run (default 2s).
	Interval time.Duration
	// FS overrides the filesystem (nil = the real disk); tests inject a
	// checkpoint.MemFS here.
	FS checkpoint.FS
	// Clock overrides time for Run's polling loop (nil = real time);
	// tests drive a checkpoint.FakeClock instead of sleeping.
	Clock checkpoint.Clock
	// Rated optionally enables rated-item exclusion for swapped-in
	// models; it is applied only when its row count matches the
	// checkpoint's user count.
	Rated *sparse.CSR
	// Transform, when set, maps the loaded checkpoint model to the view
	// actually swapped in, returning the view plus its item offset and the
	// full catalog size (total 0 = full model). Shard replicas slice out
	// their item range here, so a whole serving fleet can follow a single
	// training run's checkpoint directory and each member hot-swaps only
	// its slice.
	Transform func(*core.Model) (m *core.Model, itemOffset, itemTotal int)
	// OnSwap, when set, is called after each successful hot-swap.
	OnSwap func(*Snapshot)
	// OnReject, when set, is called for each checkpoint file that failed
	// to load (after the rejection metric is incremented).
	OnReject func(path string, err error)
	// MaxRetries bounds the Load attempts for a candidate failing with a
	// transient error — anything that is not checkpoint.ErrCorrupt, e.g.
	// an open raced by a concurrent writer or a flaky network mount —
	// before the candidate is rejected for good (default 5).
	MaxRetries int
	// RetryBackoff is the base delay before re-trying a transiently
	// failing candidate; the delay doubles per attempt with ±50% jitter
	// (default 250ms).
	RetryBackoff time.Duration
}

// Watcher tails a checkpoint directory and hot-swaps the newest valid
// checkpoint into a Server through the ordinary versioned-snapshot path,
// composing training and serving into a live pipeline: a long alstrain
// run checkpoints every iteration, and the serving fleet follows it
// without restarts. A corrupt or torn checkpoint is rejected (counted in
// als_swap_rejected_total), the previous snapshot keeps serving, and the
// watcher falls back to the next-newest candidate.
type Watcher struct {
	srv       *Server
	cfg       WatcherConfig
	installed int                    // iteration of the installed checkpoint
	rejected  map[string]bool        // checkpoint files already found corrupt
	retries   map[string]*retryState // transiently failing candidates backing off
	jitter    *rand.Rand
}

// retryState tracks one transiently failing candidate between polls.
type retryState struct {
	attempts int
	next     time.Time // earliest Clock time for the next attempt
}

// NewWatcher builds a watcher bound to srv. Call Poll for one
// deterministic scan-and-swap pass, or Run for the polling loop.
func NewWatcher(srv *Server, cfg WatcherConfig) *Watcher {
	if cfg.Interval <= 0 {
		cfg.Interval = 2 * time.Second
	}
	if cfg.FS == nil {
		cfg.FS = checkpoint.OS
	}
	if cfg.Clock == nil {
		cfg.Clock = checkpoint.SystemClock
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 5
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 250 * time.Millisecond
	}
	return &Watcher{
		srv: srv, cfg: cfg,
		rejected: make(map[string]bool),
		retries:  make(map[string]*retryState),
		jitter:   rand.New(rand.NewSource(cfg.Clock.Now().UnixNano())),
	}
}

// Poll performs one scan: if the directory holds a checkpoint newer than
// the installed one, the newest loadable candidate is swapped in.
// Candidates failing with checkpoint.ErrCorrupt are rejected immediately
// and never retried — a visible checkpoint is complete, so a bad one
// cannot heal. Any other load error is treated as transient (an open
// raced by a writer, a flaky mount): the candidate backs off with
// doubling jittered delays and is rejected only after MaxRetries
// attempts. Each rejection counts once. Poll reports whether a swap
// happened. It is not safe for concurrent use with itself; Run is the
// single-goroutine driver.
func (w *Watcher) Poll() (bool, error) {
	names, err := w.cfg.FS.ReadDir(w.cfg.Dir)
	if err != nil {
		// The directory may simply not exist yet (training not started);
		// keep waiting rather than failing the loop.
		return false, nil
	}
	w.pruneRetries(names)
	type candidate struct {
		name string
		iter int
	}
	var cands []candidate
	for _, name := range names {
		if it, ok := checkpoint.ParseFileName(name); ok && it > w.installed {
			cands = append(cands, candidate{name, it})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].iter > cands[j].iter })
	for _, c := range cands {
		path := filepath.Join(w.cfg.Dir, c.name)
		if w.rejected[path] {
			continue
		}
		if rs := w.retries[path]; rs != nil && w.cfg.Clock.Now().Before(rs.next) {
			continue // backing off; an older candidate may still serve
		}
		st, err := checkpoint.Load(w.cfg.FS, path)
		if err != nil {
			if errors.Is(err, checkpoint.ErrCorrupt) {
				w.reject(path, err)
				continue
			}
			rs := w.retries[path]
			if rs == nil {
				rs = &retryState{}
				w.retries[path] = rs
			}
			rs.attempts++
			if rs.attempts >= w.cfg.MaxRetries {
				delete(w.retries, path)
				w.reject(path, err)
				continue
			}
			rs.next = w.cfg.Clock.Now().Add(w.backoff(rs.attempts))
			continue
		}
		delete(w.retries, path)
		model := &core.Model{
			K: st.K, X: st.X, Y: st.Y,
			// A compressed (format v2) checkpoint already carries quantized
			// item factors; attaching them lets the swap reuse the encoding
			// instead of re-quantizing when the serving precision matches.
			QY: st.QY,
			Meta: core.Meta{
				Version: fmt.Sprintf("ckpt-%d", st.Iteration),
				Lambda:  st.Lambda, WeightedLambda: st.WeightedLambda,
			},
		}
		rated := w.cfg.Rated
		if rated != nil && rated.NumRows != model.X.Rows {
			rated = nil
		}
		offset, total := 0, 0
		if w.cfg.Transform != nil {
			model, offset, total = w.cfg.Transform(model)
		}
		sn := w.srv.SwapShard(model, rated, "", offset, total)
		w.srv.Telemetry().SwapInstalled(w.cfg.Clock.Now())
		w.installed = c.iter
		if w.cfg.OnSwap != nil {
			w.cfg.OnSwap(sn)
		}
		return true, nil
	}
	return false, nil
}

// reject marks a candidate permanently bad: it is skipped by every later
// poll, counted once in als_swap_rejected_total, and reported to OnReject.
func (w *Watcher) reject(path string, err error) {
	w.rejected[path] = true
	w.srv.Telemetry().SwapRejected()
	if w.cfg.OnReject != nil {
		w.cfg.OnReject(path, err)
	}
}

// backoff returns the delay after the nth failed attempt: RetryBackoff
// doubled per prior attempt, scaled by a jitter in [0.5, 1.5) so a fleet
// of watchers following one training run does not retry in lockstep.
func (w *Watcher) backoff(attempts int) time.Duration {
	d := w.cfg.RetryBackoff << (attempts - 1)
	return time.Duration((0.5 + w.jitter.Float64()) * float64(d))
}

// pruneRetries drops retry state for files no longer in the directory
// (e.g. rotated away by the trainer's keep-last policy), so the map stays
// bounded by the directory size.
func (w *Watcher) pruneRetries(names []string) {
	if len(w.retries) == 0 {
		return
	}
	present := make(map[string]bool, len(names))
	for _, n := range names {
		present[filepath.Join(w.cfg.Dir, n)] = true
	}
	for p := range w.retries {
		if !present[p] {
			delete(w.retries, p)
		}
	}
}

// Run polls until ctx is cancelled.
func (w *Watcher) Run(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		case <-w.cfg.Clock.After(w.cfg.Interval):
			w.Poll()
		}
	}
}
