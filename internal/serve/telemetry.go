package serve

import (
	"io"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/quant"
)

// latencyBuckets are the request-latency histogram upper bounds in seconds,
// spaced for sub-millisecond scoring up to multi-second stragglers.
var latencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// scanBuckets resolve the top-N scan itself (no HTTP or queueing), which
// sits well under the request buckets: tens of microseconds for small
// catalogs up to ~100ms for huge ones on a loaded box.
var scanBuckets = []float64{
	0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.1,
}

// Telemetry aggregates the serving metrics exported at /metrics in the
// Prometheus text format: per-endpoint/status request counters, a global
// latency histogram, an in-flight gauge, shed and swap counters, and — once
// the checkpoint watcher installs a model — freshness gauges. It is a thin
// facade over an obs.Registry, so the serving metrics share one renderer
// (and one exposition-format contract) with the training-side metrics.
type Telemetry struct {
	reg *obs.Registry

	requests     *obs.Vec
	latency      *obs.Vec
	scan         *obs.Vec
	inflight     *obs.Metric
	shed         *obs.Vec
	swaps        *obs.Metric
	swapRejected *obs.Metric

	mu       sync.Mutex
	lastSwap time.Time // zero until the watcher installs a model
	now      func() time.Time
}

// NewTelemetry returns an empty registry. The zero-label families are
// instantiated eagerly so they render as 0 before first use.
func NewTelemetry() *Telemetry {
	reg := obs.NewRegistry()
	t := &Telemetry{
		reg:      reg,
		requests: reg.Counter("als_requests_total", "Finished requests by endpoint and status code.", "endpoint", "code"),
		latency:  reg.Histogram("als_request_seconds", "Request latency by status code.", latencyBuckets, "code"),
		scan: reg.Histogram("als_scan_seconds",
			"Top-N scan latency (scoring only, no HTTP) by snapshot precision.", scanBuckets, "precision"),
		inflight: reg.Gauge("als_inflight_requests", "Requests currently being handled.").With(),
		shed:     reg.Counter("als_shed_total", "Requests rejected with 429 by the admission queue, by endpoint.", "endpoint"),
		swaps:    reg.Counter("als_model_swaps_total", "Model hot-swaps since start.").With(),
		swapRejected: reg.Counter("als_swap_rejected_total",
			"Candidate models rejected as corrupt or unreadable; the previous snapshot keeps serving.").With(),
		now: time.Now,
	}
	reg.Func("als_last_swap_timestamp_seconds",
		"Unix time the checkpoint watcher last installed a model; absent before the first install.",
		obs.Gauge, nil, func() []obs.Sample {
			t.mu.Lock()
			last := t.lastSwap
			t.mu.Unlock()
			if last.IsZero() {
				return nil
			}
			return []obs.Sample{{Value: float64(last.UnixNano()) / 1e9}}
		})
	reg.Func("als_checkpoint_age_seconds",
		"Seconds since the checkpoint watcher last installed a model; absent before the first install.",
		obs.Gauge, nil, func() []obs.Sample {
			t.mu.Lock()
			last, now := t.lastSwap, t.now()
			t.mu.Unlock()
			if last.IsZero() {
				return nil
			}
			return []obs.Sample{{Value: now.Sub(last).Seconds()}}
		})
	return t
}

// AttachServer registers the scrape-time collectors that read live server
// state: model identity from the snapshot store and hit rates from the
// response cache. Called once by New; current and cache may be nil.
func (t *Telemetry) AttachServer(current func() *Snapshot, cache *Cache) {
	if current != nil {
		t.reg.Func("als_model_info", "Live model identity (value is always 1).",
			obs.Gauge, []string{"version", "seq"}, func() []obs.Sample {
				sn := current()
				if sn == nil {
					return nil
				}
				return []obs.Sample{{Labels: []string{sn.Version, strconv.FormatUint(sn.Seq, 10)}, Value: 1}}
			})
		t.reg.Func("als_scorer_precision", "Scoring precision of the live snapshot (value is always 1).",
			obs.Gauge, []string{"precision"}, func() []obs.Sample {
				sn := current()
				if sn == nil {
					return nil
				}
				return []obs.Sample{{Labels: []string{sn.Precision.String()}, Value: 1}}
			})
		t.reg.Func("als_quant_max_abs_error",
			"Largest absolute dequantization error of the live snapshot's item factors, measured once at encode time; absent at f32.",
			obs.Gauge, nil, func() []obs.Sample {
				sn := current()
				if sn == nil || sn.QY == nil {
					return nil
				}
				return []obs.Sample{{Value: sn.QY.MaxAbsErr}}
			})
	}
	if cache != nil {
		t.reg.Func("als_cache_hits_total", "Response cache hits.", obs.Counter, nil,
			func() []obs.Sample {
				hits, _ := cache.Stats()
				return []obs.Sample{{Value: float64(hits)}}
			})
		t.reg.Func("als_cache_misses_total", "Response cache misses.", obs.Counter, nil,
			func() []obs.Sample {
				_, misses := cache.Stats()
				return []obs.Sample{{Value: float64(misses)}}
			})
		t.reg.Func("als_cache_entries", "Response cache occupancy.", obs.Gauge, nil,
			func() []obs.Sample {
				return []obs.Sample{{Value: float64(cache.Len())}}
			})
	}
}

// Registry exposes the underlying metric registry so embedders can serve it
// from an obs.DebugServer or add process-level collectors.
func (t *Telemetry) Registry() *obs.Registry { return t.reg }

// Observe records one finished request. The status-code label is shared by
// the counter and the latency histogram (one strconv.Itoa per request), so
// a 429 spike and its latency profile line up on the same series.
func (t *Telemetry) Observe(endpoint string, code int, d time.Duration) {
	c := strconv.Itoa(code)
	t.requests.With(endpoint, c).Inc()
	t.latency.With(c).Observe(d.Seconds())
}

// ObserveScan records one completed top-N scan at the given precision.
func (t *Telemetry) ObserveScan(p quant.Precision, d time.Duration) {
	t.scan.With(p.String()).Observe(d.Seconds())
}

// IncInflight/DecInflight track requests currently inside handlers.
func (t *Telemetry) IncInflight() { t.inflight.Add(1) }
func (t *Telemetry) DecInflight() { t.inflight.Add(-1) }

// Shed counts a request rejected by the admission queue (429) against the
// endpoint that shed it, so recommend and fold-in pressure are separable.
func (t *Telemetry) Shed(endpoint string) { t.shed.With(endpoint).Inc() }

// SwapRecorded counts a model hot-swap.
func (t *Telemetry) SwapRecorded() { t.swaps.Inc() }

// SwapInstalled marks the moment the checkpoint watcher installed a fresh
// model, feeding the freshness gauges. The timestamp comes from the
// watcher's (possibly fake) clock.
func (t *Telemetry) SwapInstalled(at time.Time) {
	t.mu.Lock()
	t.lastSwap = at
	t.mu.Unlock()
}

// LastSwap reports when the checkpoint watcher last installed a model;
// ok is false before the first install (including when models arrive only
// through POST /admin/swap, which carries no checkpoint timestamp).
func (t *Telemetry) LastSwap() (last time.Time, ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.lastSwap, !t.lastSwap.IsZero()
}

// SwapRejected counts a candidate model that failed to load or verify
// (e.g. a corrupt checkpoint seen by the directory watcher); the server
// keeps serving the previous snapshot.
func (t *Telemetry) SwapRejected() { t.swapRejected.Inc() }

// SwapRejectedCount reads the rejection counter (tests and embedders).
func (t *Telemetry) SwapRejectedCount() uint64 { return uint64(t.swapRejected.Value()) }

// WriteMetrics renders the Prometheus exposition text; collector-backed
// families (model identity, cache stats, freshness) read the live state at
// scrape time.
func (t *Telemetry) WriteMetrics(w io.Writer) error {
	return t.reg.WritePrometheus(w)
}
