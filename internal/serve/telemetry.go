package serve

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// latencyBuckets are the request-latency histogram upper bounds in seconds,
// spaced for sub-millisecond scoring up to multi-second stragglers.
var latencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

type requestKey struct {
	endpoint string
	code     int
}

// Telemetry aggregates the serving metrics exported at /metrics in the
// Prometheus text format: per-endpoint/status request counters, a global
// latency histogram, an in-flight gauge, shed and swap counters.
type Telemetry struct {
	mu       sync.Mutex
	requests map[requestKey]uint64
	buckets  []uint64 // len(latencyBuckets)+1; last is +Inf
	sum      float64
	count    uint64

	inflight     atomic.Int64
	shed         atomic.Uint64
	swaps        atomic.Uint64
	swapRejected atomic.Uint64
}

// NewTelemetry returns an empty registry.
func NewTelemetry() *Telemetry {
	return &Telemetry{
		requests: make(map[requestKey]uint64),
		buckets:  make([]uint64, len(latencyBuckets)+1),
	}
}

// Observe records one finished request.
func (t *Telemetry) Observe(endpoint string, code int, d time.Duration) {
	secs := d.Seconds()
	idx := sort.SearchFloat64s(latencyBuckets, secs)
	t.mu.Lock()
	t.requests[requestKey{endpoint, code}]++
	t.buckets[idx]++
	t.sum += secs
	t.count++
	t.mu.Unlock()
}

// IncInflight/DecInflight track requests currently inside handlers.
func (t *Telemetry) IncInflight() { t.inflight.Add(1) }
func (t *Telemetry) DecInflight() { t.inflight.Add(-1) }

// Shed counts a request rejected by the admission queue (429).
func (t *Telemetry) Shed() { t.shed.Add(1) }

// SwapRecorded counts a model hot-swap.
func (t *Telemetry) SwapRecorded() { t.swaps.Add(1) }

// SwapRejected counts a candidate model that failed to load or verify
// (e.g. a corrupt checkpoint seen by the directory watcher); the server
// keeps serving the previous snapshot.
func (t *Telemetry) SwapRejected() { t.swapRejected.Add(1) }

// SwapRejectedCount reads the rejection counter (tests and embedders).
func (t *Telemetry) SwapRejectedCount() uint64 { return t.swapRejected.Load() }

// WriteMetrics renders the Prometheus exposition text. The live snapshot
// and cache are passed in so model identity and hit rates come from the
// source of truth at scrape time.
func (t *Telemetry) WriteMetrics(w io.Writer, sn *Snapshot, cache *Cache) {
	t.mu.Lock()
	keys := make([]requestKey, 0, len(t.requests))
	for k := range t.requests {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].endpoint != keys[j].endpoint {
			return keys[i].endpoint < keys[j].endpoint
		}
		return keys[i].code < keys[j].code
	})
	counts := make([]uint64, len(keys))
	for i, k := range keys {
		counts[i] = t.requests[k]
	}
	buckets := append([]uint64(nil), t.buckets...)
	sum, count := t.sum, t.count
	t.mu.Unlock()

	fmt.Fprintln(w, "# HELP als_requests_total Finished requests by endpoint and status code.")
	fmt.Fprintln(w, "# TYPE als_requests_total counter")
	for i, k := range keys {
		fmt.Fprintf(w, "als_requests_total{endpoint=%q,code=\"%d\"} %d\n", k.endpoint, k.code, counts[i])
	}

	fmt.Fprintln(w, "# HELP als_request_seconds Request latency.")
	fmt.Fprintln(w, "# TYPE als_request_seconds histogram")
	var cum uint64
	for i, le := range latencyBuckets {
		cum += buckets[i]
		fmt.Fprintf(w, "als_request_seconds_bucket{le=\"%g\"} %d\n", le, cum)
	}
	fmt.Fprintf(w, "als_request_seconds_bucket{le=\"+Inf\"} %d\n", count)
	fmt.Fprintf(w, "als_request_seconds_sum %g\n", sum)
	fmt.Fprintf(w, "als_request_seconds_count %d\n", count)

	fmt.Fprintln(w, "# HELP als_inflight_requests Requests currently being handled.")
	fmt.Fprintln(w, "# TYPE als_inflight_requests gauge")
	fmt.Fprintf(w, "als_inflight_requests %d\n", t.inflight.Load())

	fmt.Fprintln(w, "# HELP als_shed_total Requests rejected with 429 by the admission queue.")
	fmt.Fprintln(w, "# TYPE als_shed_total counter")
	fmt.Fprintf(w, "als_shed_total %d\n", t.shed.Load())

	fmt.Fprintln(w, "# HELP als_model_swaps_total Model hot-swaps since start.")
	fmt.Fprintln(w, "# TYPE als_model_swaps_total counter")
	fmt.Fprintf(w, "als_model_swaps_total %d\n", t.swaps.Load())

	fmt.Fprintln(w, "# HELP als_swap_rejected_total Candidate models rejected as corrupt or unreadable; the previous snapshot keeps serving.")
	fmt.Fprintln(w, "# TYPE als_swap_rejected_total counter")
	fmt.Fprintf(w, "als_swap_rejected_total %d\n", t.swapRejected.Load())

	if cache != nil {
		hits, misses := cache.Stats()
		fmt.Fprintln(w, "# HELP als_cache_hits_total Response cache hits.")
		fmt.Fprintln(w, "# TYPE als_cache_hits_total counter")
		fmt.Fprintf(w, "als_cache_hits_total %d\n", hits)
		fmt.Fprintln(w, "# HELP als_cache_misses_total Response cache misses.")
		fmt.Fprintln(w, "# TYPE als_cache_misses_total counter")
		fmt.Fprintf(w, "als_cache_misses_total %d\n", misses)
		fmt.Fprintln(w, "# HELP als_cache_entries Response cache occupancy.")
		fmt.Fprintln(w, "# TYPE als_cache_entries gauge")
		fmt.Fprintf(w, "als_cache_entries %d\n", cache.Len())
	}

	if sn != nil {
		fmt.Fprintln(w, "# HELP als_model_info Live model identity (value is always 1).")
		fmt.Fprintln(w, "# TYPE als_model_info gauge")
		fmt.Fprintf(w, "als_model_info{version=%q,seq=\"%d\"} 1\n", sn.Version, sn.Seq)
	}
}
