package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/quant"
	"repro/internal/rtrace"
	"repro/internal/sparse"
)

// Config sizes the server. The zero value gets sensible defaults.
type Config struct {
	// Workers is the scoring pool size (default GOMAXPROCS).
	Workers int
	// Queue caps concurrently admitted requests; arrivals beyond it are
	// shed with 429 instead of queueing unboundedly (default 64).
	Queue int
	// Timeout is the per-request deadline (default 2s).
	Timeout time.Duration
	// CacheSize is the response-cache capacity in entries (default 1024;
	// negative disables caching).
	CacheSize int
	// MaxN caps the per-request recommendation count (default 100).
	MaxN int
	// MaxFoldInItems caps the ratings accepted by one fold-in request
	// (default 10000).
	MaxFoldInItems int
	// Lambda is the fold-in regularization used when neither the request
	// nor the model's Meta supplies one (default 0.1).
	Lambda float32
	// Tracer, when set, records request spans: a middleware root (or a
	// child of the inbound traceparent context) per endpoint with children
	// for cache lookup, the top-N scan, the fold-in solve and snapshot
	// swaps. Nil disables tracing with zero per-request cost.
	Tracer *rtrace.Tracer
	// SlowLog, when positive, logs requests at or above this duration with
	// their trace ID, so logs cross-reference /debug/traces.
	SlowLog time.Duration
}

func (c *Config) setDefaults() {
	if c.Queue <= 0 {
		c.Queue = 64
	}
	if c.Timeout <= 0 {
		c.Timeout = 2 * time.Second
	}
	if c.CacheSize == 0 {
		c.CacheSize = 1024
	}
	if c.MaxN <= 0 {
		c.MaxN = 100
	}
	if c.MaxFoldInItems <= 0 {
		c.MaxFoldInItems = 10000
	}
	if c.Lambda <= 0 {
		c.Lambda = 0.1
	}
}

// Server serves top-N and fold-in recommendations over HTTP from the
// current Snapshot. Create with New, install a model with Swap (or the
// /admin/swap endpoint), mount Handler, and Close when done.
type Server struct {
	cfg    Config
	store  Store
	cache  *Cache
	scorer *Scorer
	tel    *Telemetry
	sem    chan struct{}
	mux    *http.ServeMux
}

// New builds a server; it serves 503 until the first Swap installs a model.
func New(cfg Config) *Server {
	cfg.setDefaults()
	s := &Server{
		cfg:    cfg,
		cache:  NewCache(cfg.CacheSize),
		scorer: NewScorer(cfg.Workers),
		tel:    NewTelemetry(),
		sem:    make(chan struct{}, cfg.Queue),
	}
	s.tel.AttachServer(s.store.Current, s.cache)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/model", s.Instrument("model", s.handleModel))
	mux.HandleFunc("GET /v1/recommend", s.Instrument("recommend", s.handleRecommend))
	mux.HandleFunc("POST /v1/foldin", s.Instrument("foldin", s.handleFoldIn))
	mux.HandleFunc("POST /admin/swap", s.Instrument("swap", s.handleSwap))
	s.mux = mux
	return s
}

// Handler returns the HTTP routing for the server.
func (s *Server) Handler() http.Handler { return s.mux }

// Telemetry exposes the metric registry (for embedding hosts).
func (s *Server) Telemetry() *Telemetry { return s.tel }

// Tracer exposes the configured request tracer; nil when tracing is off.
func (s *Server) Tracer() *rtrace.Tracer { return s.cfg.Tracer }

// Current returns the live snapshot, or nil before the first Swap.
func (s *Server) Current() *Snapshot { return s.store.Current() }

// Swap atomically installs a new model and purges the response cache; see
// Store.Swap for version defaulting.
func (s *Server) Swap(m *core.Model, rated *sparse.CSR, version string) *Snapshot {
	return s.SwapShard(m, rated, version, 0, 0)
}

// SwapShard installs a sharded model view whose Y rows cover the catalog
// slice [offset, offset+Y.Rows) of total items (total == 0 means a full
// model). Recommendation responses report global item indices; fold-in is
// refused on sharded snapshots because it needs the whole catalog.
func (s *Server) SwapShard(m *core.Model, rated *sparse.CSR, version string, offset, total int) *Snapshot {
	sn := s.store.SwapShard(m, rated, version, offset, total)
	s.cache.Purge()
	s.tel.SwapRecorded()
	return sn
}

// Scorer exposes the scoring pool for embedding hosts (the shard replica
// endpoints score against the same bounded pool as /v1/recommend).
func (s *Server) Scorer() *Scorer { return s.scorer }

// SetPrecision selects the scoring precision installed by subsequent
// swaps (alsserve -precision). The live snapshot is not re-encoded.
func (s *Server) SetPrecision(p quant.Precision) { s.store.SetPrecision(p) }

// ScoreTopN ranks the snapshot's item slice for one scoring vector at the
// snapshot's precision: the quantized scan when the swap built a
// compressed Y, the float32 pool otherwise. All request paths — recommend,
// fold-in, shard replica scoring — funnel through here, so precision
// dispatch and the per-precision scan-time histogram live in one place.
func (s *Server) ScoreTopN(ctx context.Context, sn *Snapshot, x []float32, excluded func(int) bool, n int) ([]metrics.Scored, error) {
	_, span := rtrace.StartChild(ctx, "scan")
	span.SetAttr("precision", sn.Precision.String())
	start := time.Now()
	var scored []metrics.Scored
	var err error
	if sn.QY != nil {
		scored, err = s.scorer.TopNQuant(ctx, x, sn.QY, excluded, n)
	} else {
		scored, err = s.scorer.TopN(ctx, x, sn.Model.Y, excluded, n)
	}
	span.End()
	if err == nil {
		s.tel.ObserveScan(sn.Precision, time.Since(start))
	}
	return scored, err
}

// ResponseCache exposes the LRU response cache for embedding hosts.
func (s *Server) ResponseCache() *Cache { return s.cache }

// Close releases the scoring pool. In-flight requests must have drained
// (http.Server.Shutdown) before calling it.
func (s *Server) Close() { s.scorer.Close() }

// Instrument wraps a handler with admission control (bounded queue, 429
// with Retry-After on saturation), the per-request deadline, the in-flight
// gauge, the latency histogram and — when a Tracer is configured — the
// endpoint's trace span, continuing an inbound traceparent context.
// Exported so embedding hosts (the shard replica) can put extra endpoints
// behind the same admission path.
func (s *Server) Instrument(endpoint string, h func(http.ResponseWriter, *http.Request)) func(http.ResponseWriter, *http.Request) {
	return func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.sem <- struct{}{}:
		default:
			s.tel.Shed(endpoint)
			s.tel.Observe(endpoint, http.StatusTooManyRequests, 0)
			// One second is long enough for the bounded queue to drain at
			// any realistic service time without parking clients.
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusTooManyRequests, "server saturated, retry later")
			return
		}
		defer func() { <-s.sem }()
		s.tel.IncInflight()
		defer s.tel.DecInflight()

		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
		defer cancel()
		var span *rtrace.Span
		if s.cfg.Tracer != nil {
			ctx, span = s.cfg.Tracer.StartRequest(ctx, endpoint, rtrace.Extract(r.Header))
		}

		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r.WithContext(ctx))
		d := time.Since(start)
		s.tel.Observe(endpoint, sw.code, d)
		if span != nil {
			span.SetAttr("code", strconv.Itoa(sw.code))
			span.End()
		}
		if s.cfg.SlowLog > 0 && d >= s.cfg.SlowLog {
			log.Printf("serve: slow request endpoint=%s code=%d dur=%s trace=%s",
				endpoint, sw.code, d, span.TraceID())
		}
	}
}

type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// scoreError maps a scorer/context failure to an HTTP status.
func scoreError(w http.ResponseWriter, err error) {
	if errors.Is(err, context.DeadlineExceeded) {
		httpError(w, http.StatusGatewayTimeout, "deadline exceeded while scoring")
		return
	}
	httpError(w, http.StatusServiceUnavailable, err.Error())
}

// RecItem is one recommended item in a response.
type RecItem struct {
	Item  int     `json:"item"`         // dense index into Y
	ID    int64   `json:"id,omitempty"` // external item ID for compact models
	Score float64 `json:"score"`
}

// recItems converts scorer output to response items. offset shifts the
// local Y row index to the global catalog index for sharded snapshots
// (labels stay local: the sliced model carries the matching ItemIDs slice).
func recItems(m *core.Model, scored []metrics.Scored, offset int) []RecItem {
	out := make([]RecItem, len(scored))
	for i, s := range scored {
		out[i] = RecItem{Item: s.Item + offset, Score: s.Score}
		if m.ItemIDs != nil {
			out[i].ID = m.ItemLabel(s.Item)
		}
	}
	return out
}

// RecommendResponse answers /v1/recommend.
type RecommendResponse struct {
	Version string    `json:"version"`
	Seq     uint64    `json:"seq"`
	User    int64     `json:"user"`
	Items   []RecItem `json:"items"`
	Cached  bool      `json:"cached"`
}

func (s *Server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	sn := s.store.Current()
	if sn == nil {
		httpError(w, http.StatusServiceUnavailable, "no model loaded")
		return
	}
	q := r.URL.Query()
	orig, err := strconv.ParseInt(q.Get("user"), 10, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, "user must be an integer")
		return
	}
	n := 10
	if v := q.Get("n"); v != "" {
		n, err = strconv.Atoi(v)
		if err != nil || n <= 0 || n > s.cfg.MaxN {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("n must be in [1,%d]", s.cfg.MaxN))
			return
		}
	}
	// Compact models address users by external ID, dense models by row.
	u, ok := sn.UserIndex(orig)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Sprintf("user %d not in the model", orig))
		return
	}

	key := cacheKey{version: sn.Version, seq: sn.Seq, user: u, n: n, prec: sn.Precision}
	_, cspan := rtrace.StartChild(r.Context(), "cache.lookup")
	items, hit := s.cache.Get(key)
	if cspan != nil {
		cspan.SetAttr("hit", strconv.FormatBool(hit))
		cspan.End()
	}
	if hit {
		writeJSON(w, RecommendResponse{Version: sn.Version, Seq: sn.Seq, User: orig,
			Items: recItems(sn.Model, items, sn.ItemOffset), Cached: true})
		return
	}
	// On a sharded snapshot the rated set is indexed by global item, while
	// the scorer walks local Y rows: shift the predicate by the offset.
	excluded := RatedExcluder(sn.Rated, u)
	if excluded != nil && sn.ItemOffset != 0 {
		ex, off := excluded, sn.ItemOffset
		excluded = func(i int) bool { return ex(i + off) }
	}
	scored, err := s.ScoreTopN(r.Context(), sn, sn.Model.X.Row(u), excluded, n)
	if err != nil {
		scoreError(w, err)
		return
	}
	s.cache.Put(key, scored)
	writeJSON(w, RecommendResponse{Version: sn.Version, Seq: sn.Seq, User: orig,
		Items: recItems(sn.Model, scored, sn.ItemOffset)})
}

// FoldInRequest is the /v1/foldin payload: the cold-start user's observed
// ratings in the model's dense item index space.
type FoldInRequest struct {
	Items   []int32   `json:"items"`
	Ratings []float32 `json:"ratings"`
	N       int       `json:"n"`
	// Lambda overrides the fold-in regularization; 0 uses the model's
	// training λ (scaled by |Ω| under the weighted convention), falling
	// back to the server default.
	Lambda float32 `json:"lambda"`
	// User, when set, names the external user these ratings belong to.
	// The server then purges that user's cached recommendations so a
	// fold-in write is never shadowed by a stale cache entry.
	User *int64 `json:"user,omitempty"`
}

// FoldInResponse answers /v1/foldin.
type FoldInResponse struct {
	Version string    `json:"version"`
	Seq     uint64    `json:"seq"`
	Items   []RecItem `json:"items"`
}

// foldInLambda resolves the effective regularization for a fold-in request.
func (s *Server) foldInLambda(m *core.Model, req *FoldInRequest) float32 {
	if req.Lambda > 0 {
		return req.Lambda
	}
	if m.Meta.Lambda > 0 {
		if m.Meta.WeightedLambda {
			return m.Meta.Lambda * float32(len(req.Items))
		}
		return m.Meta.Lambda
	}
	return s.cfg.Lambda
}

func (s *Server) handleFoldIn(w http.ResponseWriter, r *http.Request) {
	sn := s.store.Current()
	if sn == nil {
		httpError(w, http.StatusServiceUnavailable, "no model loaded")
		return
	}
	if sn.ItemTotal != 0 {
		// A shard holds only a slice of Y; solving the fold-in user here
		// would drop every out-of-slice rating. The scatter-gather
		// frontend sums per-shard partial Gram/RHS terms instead.
		httpError(w, http.StatusNotImplemented,
			"fold-in is not served by a shard replica; send it to the scatter-gather frontend")
		return
	}
	var req FoldInRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	if len(req.Items) == 0 {
		httpError(w, http.StatusBadRequest, "need at least one rating")
		return
	}
	if len(req.Items) > s.cfg.MaxFoldInItems {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("at most %d ratings per request", s.cfg.MaxFoldInItems))
		return
	}
	if req.N <= 0 {
		req.N = 10
	}
	if req.N > s.cfg.MaxN {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("n must be in [1,%d]", s.cfg.MaxN))
		return
	}
	_, fspan := rtrace.StartChild(r.Context(), "foldin.solve")
	xu, err := sn.Model.FoldInUser(req.Items, req.Ratings, s.foldInLambda(sn.Model, &req))
	fspan.End()
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	// The folded-in user's own items are their rated set: exclude them.
	rated := make(map[int]bool, len(req.Items))
	for _, it := range req.Items {
		rated[int(it)] = true
	}
	// Fold-in solves xu in float32 against the original Y (above); only
	// this final scan reads the quantized matrix.
	scored, err := s.ScoreTopN(r.Context(), sn, xu,
		func(i int) bool { return rated[i] }, req.N)
	if err != nil {
		scoreError(w, err)
		return
	}
	if req.User != nil {
		if u, ok := sn.UserIndex(*req.User); ok {
			s.cache.PurgeUser(u)
		}
	}
	writeJSON(w, FoldInResponse{Version: sn.Version, Seq: sn.Seq, Items: recItems(sn.Model, scored, 0)})
}

// SwapRequest is the /admin/swap payload: file paths on the server host, as
// written by alstrain -out.
type SwapRequest struct {
	Model    string `json:"model"`
	Ratings  string `json:"ratings"`
	OneBased *bool  `json:"one_based"` // default true
	Version  string `json:"version"`
}

// SwapResponse reports the installed snapshot.
type SwapResponse struct {
	Version string `json:"version"`
	Seq     uint64 `json:"seq"`
	Users   int    `json:"users"`
	Items   int    `json:"items"`
	K       int    `json:"k"`
}

func (s *Server) handleSwap(w http.ResponseWriter, r *http.Request) {
	var req SwapRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	if req.Model == "" {
		httpError(w, http.StatusBadRequest, "need model path")
		return
	}
	oneBased := true
	if req.OneBased != nil {
		oneBased = *req.OneBased
	}
	m, rated, err := LoadSnapshotFiles(req.Model, req.Ratings, oneBased)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	_, span := rtrace.StartChild(r.Context(), "swap.install")
	sn := s.Swap(m, rated, req.Version)
	span.End()
	writeJSON(w, SwapResponse{Version: sn.Version, Seq: sn.Seq,
		Users: m.X.Rows, Items: m.Y.Rows, K: m.K})
}

// ModelResponse answers /v1/model (load generators use it for discovery).
type ModelResponse struct {
	Version   string `json:"version"`
	Seq       uint64 `json:"seq"`
	Users     int    `json:"users"`
	Items     int    `json:"items"`
	K         int    `json:"k"`
	Compact   bool   `json:"compact"` // users addressed by external IDs
	RatedSet  bool   `json:"rated_set"`
	Precision string `json:"precision"` // scoring precision: f32, f16 or i8
	// Sharded snapshots report the full catalog size in Items and describe
	// their local slice here; ShardItems == 0 means a full model.
	ItemOffset int `json:"item_offset,omitempty"`
	ShardItems int `json:"shard_items,omitempty"`
}

func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	sn := s.store.Current()
	if sn == nil {
		httpError(w, http.StatusServiceUnavailable, "no model loaded")
		return
	}
	resp := ModelResponse{Version: sn.Version, Seq: sn.Seq,
		Users: sn.Model.X.Rows, Items: sn.Model.Y.Rows, K: sn.Model.K,
		Compact: sn.Model.UserIDs != nil, RatedSet: sn.Rated != nil,
		Precision: sn.Precision.String()}
	if sn.ItemTotal != 0 {
		resp.Items = sn.ItemTotal
		resp.ItemOffset = sn.ItemOffset
		resp.ShardItems = sn.Model.Y.Rows
	}
	writeJSON(w, resp)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.store.Current() == nil {
		httpError(w, http.StatusServiceUnavailable, "no model loaded")
		return
	}
	w.Write([]byte("ok\n"))
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.tel.WriteMetrics(w)
}
