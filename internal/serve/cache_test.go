package serve

import (
	"testing"

	"repro/internal/metrics"
)

func ck(version string, user int) cacheKey {
	return cacheKey{version: version, seq: 1, user: user, n: 10}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	v := []metrics.Scored{{Item: 1, Score: 2}}
	c.Put(ck("a", 1), v)
	c.Put(ck("a", 2), v)
	if _, ok := c.Get(ck("a", 1)); !ok {
		t.Fatal("fresh entry missing")
	}
	// user 2 is now least recently used; inserting user 3 evicts it.
	c.Put(ck("a", 3), v)
	if _, ok := c.Get(ck("a", 2)); ok {
		t.Fatal("LRU entry survived eviction")
	}
	if _, ok := c.Get(ck("a", 1)); !ok {
		t.Fatal("recently used entry evicted")
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
	hits, misses := c.Stats()
	if hits != 2 || misses != 1 {
		t.Fatalf("stats = %d hits %d misses", hits, misses)
	}
}

func TestCachePurge(t *testing.T) {
	c := NewCache(8)
	c.Put(ck("a", 1), nil)
	c.Put(ck("a", 2), nil)
	c.Purge()
	if c.Len() != 0 {
		t.Fatalf("len after purge = %d", c.Len())
	}
	if _, ok := c.Get(ck("a", 1)); ok {
		t.Fatal("purged entry still served")
	}
}

func TestCacheVersionIsolation(t *testing.T) {
	c := NewCache(8)
	c.Put(cacheKey{version: "a", seq: 1, user: 1, n: 10}, []metrics.Scored{{Item: 7}})
	if _, ok := c.Get(cacheKey{version: "b", seq: 2, user: 1, n: 10}); ok {
		t.Fatal("entry leaked across versions")
	}
	if _, ok := c.Get(cacheKey{version: "a", seq: 1, user: 1, n: 5}); ok {
		t.Fatal("entry leaked across n")
	}
}

func TestCacheDisabled(t *testing.T) {
	c := NewCache(0)
	c.Put(ck("a", 1), nil)
	if _, ok := c.Get(ck("a", 1)); ok {
		t.Fatal("disabled cache returned a value")
	}
	c.Purge() // must not panic
	if c.Len() != 0 {
		t.Fatal("disabled cache has entries")
	}
}

func TestCachePurgeUser(t *testing.T) {
	c := NewCache(8)
	c.Put(cacheKey{version: "a", seq: 1, user: 1, n: 5}, []metrics.Scored{{Item: 1}})
	c.Put(cacheKey{version: "a", seq: 1, user: 1, n: 10}, []metrics.Scored{{Item: 2}})
	c.Put(cacheKey{version: "b", seq: 2, user: 1, n: 5}, []metrics.Scored{{Item: 3}})
	c.Put(cacheKey{version: "a", seq: 1, user: 2, n: 5}, []metrics.Scored{{Item: 4}})
	if got := c.UserEntries(1); got != 3 {
		t.Fatalf("UserEntries(1) = %d, want 3", got)
	}
	if removed := c.PurgeUser(1); removed != 3 {
		t.Fatalf("PurgeUser removed %d entries, want 3 (all n and version variants)", removed)
	}
	if got := c.UserEntries(1); got != 0 {
		t.Fatalf("UserEntries(1) after purge = %d", got)
	}
	if _, ok := c.Get(cacheKey{version: "a", seq: 1, user: 2, n: 5}); !ok {
		t.Fatal("PurgeUser evicted another user's entry")
	}
	if c.Len() != 1 {
		t.Fatalf("len after user purge = %d, want 1", c.Len())
	}

	disabled := NewCache(0)
	if removed := disabled.PurgeUser(1); removed != 0 {
		t.Fatalf("disabled cache purged %d entries", removed)
	}
}
