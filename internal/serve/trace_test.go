package serve

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/rtrace"
)

// TestServerTraceSpans drives a traced request through the middleware and
// checks the span tree: an endpoint root continuing the inbound traceparent
// context, with cache-lookup and precision-tagged scan children inside the
// root's time envelope.
func TestServerTraceSpans(t *testing.T) {
	tr := rtrace.New(rtrace.Config{Sample: 1, Process: "test"})
	s := New(Config{Workers: 1, Tracer: tr})
	t.Cleanup(s.Close)
	s.Swap(linearModel(1, 2, 64, 2), nil, "")
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	remote := rtrace.SpanContext{Trace: 0xabc123, Span: 0xdef456, Sampled: true}
	req, err := http.NewRequest("GET", ts.URL+"/v1/recommend?user=0", nil)
	if err != nil {
		t.Fatal(err)
	}
	rtrace.Inject(req.Header, remote)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}

	spans := tr.Snapshot()
	byName := map[string]rtrace.SpanRecord{}
	for _, sp := range spans {
		byName[sp.Name] = sp
	}
	root, ok := byName["recommend"]
	if !ok {
		t.Fatalf("no recommend root span in %d spans", len(spans))
	}
	if root.Trace != remote.Trace {
		t.Errorf("root trace = %v, want remote %v (traceparent not continued)", root.Trace, remote.Trace)
	}
	if root.Parent != remote.Span {
		t.Errorf("root parent = %v, want remote span %v", root.Parent, remote.Span)
	}
	attrs := map[string]string{}
	for _, a := range root.Attrs {
		attrs[a.Key] = a.Value
	}
	if attrs["code"] != "200" {
		t.Errorf("root code attr = %q", attrs["code"])
	}
	for _, child := range []string{"cache.lookup", "scan"} {
		c, ok := byName[child]
		if !ok {
			t.Errorf("missing %q child span", child)
			continue
		}
		if c.Parent != root.ID {
			t.Errorf("%q parent = %v, want root %v", child, c.Parent, root.ID)
		}
		if c.Start.Before(root.Start) || c.Start.Add(c.Dur).After(root.Start.Add(root.Dur)) {
			t.Errorf("%q outside the root envelope", child)
		}
	}
	scanAttrs := map[string]string{}
	for _, a := range byName["scan"].Attrs {
		scanAttrs[a.Key] = a.Value
	}
	if scanAttrs["precision"] != "f32" {
		t.Errorf("scan precision attr = %q, want f32", scanAttrs["precision"])
	}

	// An unsampled inbound context suppresses the whole tree.
	before := len(tr.Snapshot())
	req, _ = http.NewRequest("GET", ts.URL+"/v1/recommend?user=0", nil)
	rtrace.Inject(req.Header, rtrace.SpanContext{Trace: 1, Span: 2, Sampled: false})
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := len(tr.Snapshot()); got != before {
		t.Errorf("unsampled request added %d spans", got-before)
	}
}
