package serve

import (
	"context"
	"runtime"
	"sync"

	"repro/internal/linalg"
	"repro/internal/metrics"
	"repro/internal/quant"
	"repro/internal/sparse"
)

// checkEvery is how many rows a shard scores between context checks, so an
// expired deadline aborts a scan over a huge catalog promptly.
const checkEvery = 4096

// minShardRows keeps small catalogs on few workers: below this many rows
// per shard the merge and handoff overhead outweighs the parallelism.
const minShardRows = 256

// Scorer ranks an item catalog against a user factor with a bounded worker
// pool shared by all requests: Y is partitioned into contiguous shards, each
// shard keeps its own size-n min-heap (metrics.TopK), and the per-shard
// heaps are merged. The pool bound — not the request count — caps scoring
// concurrency, so a traffic spike degrades latency instead of oversubscribing
// the machine the training loops also run on.
type Scorer struct {
	workers int
	tasks   chan func()
	wg      sync.WaitGroup
}

// NewScorer starts a pool of workers goroutines (GOMAXPROCS when <= 0).
func NewScorer(workers int) *Scorer {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	s := &Scorer{workers: workers, tasks: make(chan func())}
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for f := range s.tasks {
				f()
			}
		}()
	}
	return s
}

// Workers returns the pool size.
func (s *Scorer) Workers() int { return s.workers }

// Close stops the pool after in-flight shards finish. TopN must not be
// called after Close.
func (s *Scorer) Close() {
	close(s.tasks)
	s.wg.Wait()
}

// TopN returns the n strongest items of y under x·y_i, strongest first,
// skipping items for which excluded returns true (nil excludes nothing).
// It honors ctx: an expired deadline aborts both shard submission and
// in-shard scanning and returns ctx.Err().
func (s *Scorer) TopN(ctx context.Context, x []float32, y *linalg.Dense, excluded func(int) bool, n int) ([]metrics.Scored, error) {
	if n <= 0 || y == nil || y.Rows == 0 {
		return nil, nil
	}
	shards := s.workers
	if max := (y.Rows + minShardRows - 1) / minShardRows; shards > max {
		shards = max
	}
	per := (y.Rows + shards - 1) / shards

	heaps := make([]*metrics.TopK, shards)
	errs := make([]error, shards)
	var wg sync.WaitGroup
	var submitErr error
	for si := 0; si < shards; si++ {
		si := si
		lo := si * per
		hi := lo + per
		if hi > y.Rows {
			hi = y.Rows
		}
		job := func() {
			defer wg.Done()
			t := metrics.NewTopK(n)
			for i := lo; i < hi; i++ {
				if (i-lo)%checkEvery == 0 {
					select {
					case <-ctx.Done():
						errs[si] = ctx.Err()
						return
					default:
					}
				}
				if excluded != nil && excluded(i) {
					continue
				}
				t.Push(i, linalg.Dot(x, y.Row(i)))
			}
			heaps[si] = t
		}
		wg.Add(1)
		select {
		case s.tasks <- job:
		case <-ctx.Done():
			wg.Done()
			submitErr = ctx.Err()
		}
		if submitErr != nil {
			break
		}
	}
	wg.Wait()
	if submitErr != nil {
		return nil, submitErr
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	merged := metrics.NewTopK(n)
	for _, h := range heaps {
		merged.Merge(h)
	}
	return merged.Drain(), nil
}

// TopNQuant is TopN over a quantized item-factor matrix: the same bounded
// pool, sharding, deadline and merge semantics, but each shard runs the
// fused dequant-dot-TopK scan kernel in checkEvery-row slabs with a
// context check between slabs. The query is prepared (and, for int8,
// quantized) once and shared read-only by every shard. Tie-breaking is
// identical to the float path — both push into metrics.TopK.
func (s *Scorer) TopNQuant(ctx context.Context, x []float32, y *quant.Matrix, excluded func(int) bool, n int) ([]metrics.Scored, error) {
	if n <= 0 || y == nil || y.Rows == 0 {
		return nil, nil
	}
	qr := y.Prepare(x)
	shards := s.workers
	if max := (y.Rows + minShardRows - 1) / minShardRows; shards > max {
		shards = max
	}
	per := (y.Rows + shards - 1) / shards

	heaps := make([]*metrics.TopK, shards)
	errs := make([]error, shards)
	var wg sync.WaitGroup
	var submitErr error
	for si := 0; si < shards; si++ {
		si := si
		lo := si * per
		hi := lo + per
		if hi > y.Rows {
			hi = y.Rows
		}
		job := func() {
			defer wg.Done()
			t := metrics.NewTopK(n)
			for slab := lo; slab < hi; slab += checkEvery {
				select {
				case <-ctx.Done():
					errs[si] = ctx.Err()
					return
				default:
				}
				end := slab + checkEvery
				if end > hi {
					end = hi
				}
				y.ScanTopK(qr, slab, end, excluded, t)
			}
			heaps[si] = t
		}
		wg.Add(1)
		select {
		case s.tasks <- job:
		case <-ctx.Done():
			wg.Done()
			submitErr = ctx.Err()
		}
		if submitErr != nil {
			break
		}
	}
	wg.Wait()
	if submitErr != nil {
		return nil, submitErr
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	merged := metrics.NewTopK(n)
	for _, h := range heaps {
		merged.Merge(h)
	}
	return merged.Drain(), nil
}

// RatedExcluder returns an exclusion predicate over the sorted column
// indices of user u's rated row, or nil when there is nothing to exclude.
// Binary search over the CSR row avoids building a per-request map.
func RatedExcluder(r *sparse.CSR, u int) func(int) bool {
	if r == nil || u < 0 || u >= r.NumRows {
		return nil
	}
	cols, _ := r.Row(u)
	if len(cols) == 0 {
		return nil
	}
	return func(i int) bool {
		lo, hi := 0, len(cols)
		for lo < hi {
			mid := (lo + hi) / 2
			if int(cols[mid]) < i {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo < len(cols) && int(cols[lo]) == i
	}
}
