package serve

import (
	"fmt"
	"time"

	"repro/internal/checkpoint"
)

// Readiness builds a /readyz probe for srv, suitable for
// obs.DebugConfig.Ready: the server is ready when a model is installed
// and — if maxStaleness > 0 — the checkpoint watcher has installed one
// within the staleness bound. A positive bound therefore requires the
// watcher: a model loaded statically at startup carries no install
// timestamp, and a fleet configured with -max-staleness is declaring that
// it must be following a live training run. clock defaults to real time;
// tests inject a checkpoint.FakeClock.
func Readiness(srv *Server, maxStaleness time.Duration, clock checkpoint.Clock) func() error {
	if clock == nil {
		clock = checkpoint.SystemClock
	}
	return func() error {
		if srv.Current() == nil {
			return fmt.Errorf("no model installed")
		}
		if maxStaleness <= 0 {
			return nil
		}
		last, ok := srv.Telemetry().LastSwap()
		if !ok {
			return fmt.Errorf("staleness bound %s configured but no checkpoint installed yet", maxStaleness)
		}
		if age := clock.Now().Sub(last); age > maxStaleness {
			return fmt.Errorf("model stale: last checkpoint installed %s ago (bound %s)", age, maxStaleness)
		}
		return nil
	}
}
