package serve

import (
	"container/list"
	"sync"

	"repro/internal/metrics"
	"repro/internal/quant"
)

type cacheKey struct {
	version string
	seq     uint64
	user    int
	n       int
	// prec keeps responses scored at different precisions apart: an
	// operator flipping -precision between restarts (same model files,
	// same version label) must never see f32-scored entries answer for a
	// quantized snapshot or vice versa.
	prec quant.Precision
}

type cacheEntry struct {
	key cacheKey
	val []metrics.Scored
}

// Cache is a mutex-guarded LRU for recommendation responses keyed by
// (model version+seq, user, n). Keys embed the snapshot identity, so a
// stale entry can never answer for a newer model; hot-swap additionally
// purges the whole cache so dead entries do not squat on capacity.
// A zero or negative capacity disables caching entirely.
type Cache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List
	byKey map[cacheKey]*list.Element
	hits  uint64
	miss  uint64
}

// NewCache returns an LRU holding at most capacity entries.
func NewCache(capacity int) *Cache {
	c := &Cache{cap: capacity}
	if capacity > 0 {
		c.ll = list.New()
		c.byKey = make(map[cacheKey]*list.Element, capacity)
	}
	return c
}

// Get returns the cached items for the key, counting a hit or miss.
func (c *Cache) Get(k cacheKey) ([]metrics.Scored, bool) {
	if c.cap <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[k]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*cacheEntry).val, true
	}
	c.miss++
	return nil, false
}

// Put stores the items for the key, evicting the least recently used entry
// when full. Callers must not mutate val afterwards.
func (c *Cache) Put(k cacheKey, val []metrics.Scored) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[k]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).val = val
		return
	}
	if c.ll.Len() >= c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.byKey, oldest.Value.(*cacheEntry).key)
	}
	c.byKey[k] = c.ll.PushFront(&cacheEntry{key: k, val: val})
}

// Purge drops every entry (hot-swap invalidation); hit/miss counters are
// cumulative and survive.
func (c *Cache) Purge() {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.byKey = make(map[cacheKey]*list.Element, c.cap)
}

// PurgeUser drops every entry cached for one dense user row, across all
// (version, seq, n) variants, and reports how many were removed. Fold-in
// writes use it so a user's stale recommendations cannot outlive the write.
func (c *Cache) PurgeUser(user int) int {
	if c.cap <= 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	removed := 0
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		if ent := el.Value.(*cacheEntry); ent.key.user == user {
			c.ll.Remove(el)
			delete(c.byKey, ent.key)
			removed++
		}
		el = next
	}
	return removed
}

// UserEntries counts the entries currently cached for one dense user row
// (test and debugging visibility for PurgeUser).
func (c *Cache) UserEntries(user int) int {
	if c.cap <= 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for el := c.ll.Front(); el != nil; el = el.Next() {
		if el.Value.(*cacheEntry).key.user == user {
			n++
		}
	}
	return n
}

// Len returns the current entry count.
func (c *Cache) Len() int {
	if c.cap <= 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns cumulative hit and miss counts.
func (c *Cache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.miss
}
