package serve

import (
	"testing"
	"time"

	"repro/internal/checkpoint"
)

// TestWatcherRetriesTransientErrors: a candidate whose open fails
// transiently (fault-injected) must not be rejected — the watcher backs
// off, retries on later polls, and installs the checkpoint once the fault
// clears. Corruption is permanent; an EIO is not.
func TestWatcherRetriesTransientErrors(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	fsys := checkpoint.NewMemFS()
	clk := checkpoint.NewFakeClock(time.Unix(0, 0))
	var rejected []string
	w := NewWatcher(s, WatcherConfig{
		Dir: "ckpts", FS: fsys, Clock: clk,
		MaxRetries: 5, RetryBackoff: 100 * time.Millisecond,
		OnReject: func(path string, err error) { rejected = append(rejected, path) },
	})

	saveCheckpoint(t, fsys, "ckpts", 1, 1, 4, 6, 3)
	fsys.SetFaults(checkpoint.Faults{FailOpens: 2})

	// Attempt 1 fails; the candidate must back off, not be rejected.
	if swapped, err := w.Poll(); swapped || err != nil {
		t.Fatalf("poll under fault = (%v, %v)", swapped, err)
	}
	if len(rejected) != 0 || s.Telemetry().SwapRejectedCount() != 0 {
		t.Fatalf("transient failure rejected: %v", rejected)
	}
	// An immediate re-poll is inside the backoff window: the candidate is
	// skipped without touching the FS, so the remaining fault budget (1)
	// must survive to the next real attempt.
	if swapped, _ := w.Poll(); swapped {
		t.Fatal("backing-off candidate was loaded inside its backoff window")
	}
	// Past the backoff: attempt 2 consumes the last injected fault.
	clk.Advance(time.Second)
	if swapped, _ := w.Poll(); swapped {
		t.Fatal("swap succeeded while the open fault was still armed")
	}
	// Past the (doubled) backoff again: attempt 3 succeeds and installs.
	clk.Advance(2 * time.Second)
	if swapped, err := w.Poll(); !swapped || err != nil {
		t.Fatalf("poll after fault cleared = (%v, %v), want swap", swapped, err)
	}
	if v := s.Current().Version; v != "ckpt-1" {
		t.Fatalf("version = %s, want ckpt-1", v)
	}
	if len(rejected) != 0 || s.Telemetry().SwapRejectedCount() != 0 {
		t.Fatalf("recovered candidate was counted rejected: %v", rejected)
	}
}

// TestWatcherRejectsAfterRetriesExhausted: a candidate that keeps failing
// transiently is rejected exactly once after MaxRetries attempts, and the
// watcher moves on to later checkpoints.
func TestWatcherRejectsAfterRetriesExhausted(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	fsys := checkpoint.NewMemFS()
	clk := checkpoint.NewFakeClock(time.Unix(0, 0))
	var rejected []string
	w := NewWatcher(s, WatcherConfig{
		Dir: "ckpts", FS: fsys, Clock: clk,
		MaxRetries: 3, RetryBackoff: 50 * time.Millisecond,
		OnReject: func(path string, err error) { rejected = append(rejected, path) },
	})

	saveCheckpoint(t, fsys, "ckpts", 1, 1, 4, 6, 3)
	fsys.SetFaults(checkpoint.Faults{FailOpens: 1000})
	for i := 0; i < 3; i++ {
		if swapped, err := w.Poll(); swapped || err != nil {
			t.Fatalf("poll %d = (%v, %v)", i, swapped, err)
		}
		clk.Advance(time.Minute)
	}
	if len(rejected) != 1 {
		t.Fatalf("rejected %v, want the exhausted candidate once", rejected)
	}
	if n := s.Telemetry().SwapRejectedCount(); n != 1 {
		t.Fatalf("swap_rejected = %d, want 1", n)
	}
	// The rejected candidate is never revisited — no retry churn.
	if swapped, _ := w.Poll(); swapped || len(rejected) != 1 {
		t.Fatalf("rejected candidate revisited: swapped=%v rejected=%v", swapped, rejected)
	}

	// A later good checkpoint still installs once the fault clears.
	fsys.SetFaults(checkpoint.Faults{})
	saveCheckpoint(t, fsys, "ckpts", 2, 2, 4, 6, 3)
	if swapped, err := w.Poll(); !swapped || err != nil {
		t.Fatalf("recovery poll = (%v, %v)", swapped, err)
	}
	if v := s.Current().Version; v != "ckpt-2" {
		t.Fatalf("version = %s, want ckpt-2", v)
	}
}

// TestReadiness covers the /readyz probe matrix: no model, model via the
// watcher, staleness bound fresh/expired, and a statically swapped model
// under a bound (which can never satisfy an age requirement).
func TestReadiness(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	clk := checkpoint.NewFakeClock(time.Unix(1000, 0))

	unbounded := Readiness(s, 0, clk)
	if err := unbounded(); err == nil {
		t.Fatal("ready with no model installed")
	}

	fsys := checkpoint.NewMemFS()
	w := NewWatcher(s, WatcherConfig{Dir: "ckpts", FS: fsys, Clock: clk})
	saveCheckpoint(t, fsys, "ckpts", 1, 1, 4, 6, 3)
	if swapped, err := w.Poll(); !swapped || err != nil {
		t.Fatalf("poll = (%v, %v)", swapped, err)
	}
	if err := unbounded(); err != nil {
		t.Fatalf("not ready with a model installed: %v", err)
	}

	bounded := Readiness(s, time.Minute, clk)
	if err := bounded(); err != nil {
		t.Fatalf("not ready right after install: %v", err)
	}
	clk.Advance(2 * time.Minute)
	if err := bounded(); err == nil {
		t.Fatal("ready with a checkpoint older than the staleness bound")
	}
	// A fresh install restores readiness.
	saveCheckpoint(t, fsys, "ckpts", 2, 2, 4, 6, 3)
	if swapped, _ := w.Poll(); !swapped {
		t.Fatal("fresh checkpoint not installed")
	}
	if err := bounded(); err != nil {
		t.Fatalf("not ready after fresh install: %v", err)
	}

	// A statically swapped model has no install timestamp: fine without a
	// bound, never ready with one.
	s2, _ := newTestServer(t, Config{})
	s2.Swap(linearModel(1, 4, 6, 3), nil, "static")
	if err := Readiness(s2, 0, clk)(); err != nil {
		t.Fatalf("static model not ready without bound: %v", err)
	}
	if err := Readiness(s2, time.Minute, clk)(); err == nil {
		t.Fatal("static model satisfied a staleness bound it cannot prove")
	}
}
