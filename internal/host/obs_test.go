package host

import (
	"strings"
	"testing"

	"repro/internal/linalg"
	"repro/internal/obs"
	"repro/internal/variant"
)

// TestTrainWithRecorder: observing a run must not change its results, and
// the recorder must come back fully populated — halves, per-worker rows,
// stage time, and loss points.
func TestTrainWithRecorder(t *testing.T) {
	mx := smallDataset(t, 6)
	base := Config{K: 8, Lambda: 0.1, Iterations: 3, Seed: 9, Workers: 3,
		Variant: variant.Options{Vector: true, Fused: true}, TrackLoss: true}

	plain, err := Train(mx, base)
	if err != nil {
		t.Fatal(err)
	}

	rec := obs.NewTrainRecorder()
	reg := obs.NewRegistry()
	rec.Register(reg)
	cfg := base
	cfg.Obs = rec
	observed, err := Train(mx, cfg)
	if err != nil {
		t.Fatal(err)
	}

	if d := linalg.MaxAbsDiff(plain.X, observed.X); d != 0 {
		t.Errorf("observed run changed X by %g", d)
	}
	if d := linalg.MaxAbsDiff(plain.Y, observed.Y); d != 0 {
		t.Errorf("observed run changed Y by %g", d)
	}

	info := rec.RunInfo()
	if info.Iteration != 3 || info.Halves != 6 {
		t.Errorf("recorder progress: iter %d halves %d, want 3 and 6", info.Iteration, info.Halves)
	}
	if info.Meta.Rows != mx.Rows() || info.Meta.Cols != mx.Cols() || info.Meta.NNZ != mx.NNZ() {
		t.Errorf("recorder shape %d x %d (%d nnz), want %d x %d (%d)",
			info.Meta.Rows, info.Meta.Cols, info.Meta.NNZ, mx.Rows(), mx.Cols(), mx.NNZ())
	}
	if info.Meta.Workers != 3 || info.Meta.Variant != base.Variant.String() {
		t.Errorf("recorder meta workers=%d variant=%q", info.Meta.Workers, info.Meta.Variant)
	}
	if info.LastLoss == nil {
		t.Error("recorder has no loss despite TrackLoss")
	}
	// Fused variant: stage time must land on s1+s2 and s3, never s1/s2.
	if info.StageSeconds["s1+s2"] <= 0 || info.StageSeconds["s3"] <= 0 {
		t.Errorf("fused stage totals missing: %v", info.StageSeconds)
	}
	if _, ok := info.StageSeconds["s1"]; ok {
		t.Errorf("fused run reported split s1 time: %v", info.StageSeconds)
	}

	// Worker row totals must account for every row update exactly once:
	// (m + n) rows per iteration over 3 iterations.
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if _, err := obs.ValidateExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("live metrics do not validate: %v", err)
	}
	wantRows := 3 * (mx.Rows() + mx.Cols())
	var gotRows int
	for _, ev := range info.RecentEvents {
		if ev.Event == "half" {
			for _, wh := range ev.Workers {
				gotRows += wh.Rows
			}
		}
	}
	if gotRows != wantRows {
		t.Errorf("worker rows sum to %d, want %d", gotRows, wantRows)
	}
}

// TestTrainWithRecorderNonFused: the split-kernel path must report s1, s2
// and s3 separately.
func TestTrainWithRecorderNonFused(t *testing.T) {
	mx := smallDataset(t, 7)
	rec := obs.NewTrainRecorder()
	cfg := Config{K: 8, Lambda: 0.1, Iterations: 1, Seed: 9, Workers: 2,
		Variant: variant.Options{Vector: true}, Obs: rec}
	if _, err := Train(mx, cfg); err != nil {
		t.Fatal(err)
	}
	info := rec.RunInfo()
	for _, s := range []string{"s1", "s2", "s3"} {
		if info.StageSeconds[s] <= 0 {
			t.Errorf("stage %s unreported: %v", s, info.StageSeconds)
		}
	}
	if _, ok := info.StageSeconds["s1+s2"]; ok {
		t.Errorf("non-fused run reported fused time: %v", info.StageSeconds)
	}
}
