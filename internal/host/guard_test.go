package host

import (
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/guard"
	"repro/internal/linalg"
	"repro/internal/sparse"
	"repro/internal/variant"
)

// ladderMatrix builds a matrix whose every row has fewer ratings than k, so
// λ = 0 makes each normal matrix exactly rank-deficient — the natural
// (non-injected) trigger for the recovery ladder.
func ladderMatrix(t *testing.T) *sparse.Matrix {
	t.Helper()
	coo := sparse.NewCOO(12, 9)
	for u := 0; u < 12; u++ {
		for j := 0; j < 3; j++ {
			coo.Append(u, (u+j*2)%9, float32(1+(u+j)%5))
		}
	}
	mx, err := sparse.NewMatrix(coo)
	if err != nil {
		t.Fatal(err)
	}
	return mx
}

// TestLadderJitterRescuesSingular: λ = 0 with omega < k is singular, but the
// Gram matrix is PSD, so the first ridge-jitter rung must rescue every row —
// no LDL, no skips, finite factors.
func TestLadderJitterRescuesSingular(t *testing.T) {
	mx := ladderMatrix(t)
	g := guard.New(guard.Policy{})
	res, err := Train(mx, Config{K: 6, Lambda: 0, Iterations: 2, Seed: 3, Guard: g})
	if err != nil {
		t.Fatal(err)
	}
	if !guard.FiniteVec(res.X.Data) || !guard.FiniteVec(res.Y.Data) {
		t.Fatal("guarded λ=0 run produced non-finite factors")
	}
	if n := g.Recoveries(guard.RungJitter2); n == 0 {
		t.Fatal("jitter2 rung never fired on a singular system")
	}
	if n := g.Recoveries(guard.RungSkip); n != 0 {
		t.Fatalf("%d rows skipped; jitter should have rescued all", n)
	}
}

// TestLadderStrictFailsFast: the same singular system under Strict must die
// with a typed RowError instead of climbing the ladder.
func TestLadderStrictFailsFast(t *testing.T) {
	mx := ladderMatrix(t)
	g := guard.New(guard.Policy{Strict: true})
	_, err := Train(mx, Config{K: 6, Lambda: 0, Iterations: 2, Seed: 3, Guard: g})
	if err == nil {
		t.Skip("LDL solved the singular system exactly; nothing to assert")
	}
	var re *guard.RowError
	if !errors.As(err, &re) {
		t.Fatalf("error %v is not a guard.RowError", err)
	}
	if re.Iteration != 1 {
		t.Fatalf("RowError.Iteration = %d, want 1", re.Iteration)
	}
	if g.TotalRecoveries() != 0 {
		t.Fatal("strict mode climbed the ladder")
	}
}

// TestForcedFailureSkipsRow: a chaos-forced solver failure must exhaust the
// ladder and land on the skip rung, leaving that row's factors at their
// last-good value (zero, in iteration 1) while the run completes.
func TestForcedFailureSkipsRow(t *testing.T) {
	mx := ladderMatrix(t)
	const victim = 5
	g := guard.New(guard.Policy{})
	g.Chaos = &guard.Chaos{
		FailFunc: func(iter, row int, xHalf bool) bool {
			return iter == 1 && xHalf && row == victim
		},
	}
	res, err := Train(mx, Config{K: 3, Lambda: 0.1, Iterations: 1, Seed: 3, Guard: g})
	if err != nil {
		t.Fatal(err)
	}
	if n := g.Recoveries(guard.RungSkip); n != 1 {
		t.Fatalf("skip rung fired %d times, want 1", n)
	}
	for _, v := range res.X.Row(victim) {
		if v != 0 {
			t.Fatalf("skipped row %d got factor %g, want last-good (zero)", victim, v)
		}
	}
	// Strict mode must turn the same injection into a typed fail-fast error.
	gs := guard.New(guard.Policy{Strict: true})
	gs.Chaos = &guard.Chaos{FailFunc: g.Chaos.FailFunc}
	_, err = Train(mx, Config{K: 3, Lambda: 0.1, Iterations: 1, Seed: 3, Guard: gs})
	if !errors.Is(err, guard.ErrForcedFailure) {
		t.Fatalf("strict error = %v, want ErrForcedFailure", err)
	}
	var re *guard.RowError
	if !errors.As(err, &re) || re.Row != victim {
		t.Fatalf("strict error %v does not name row %d", err, victim)
	}
}

// TestGuardRecoveryAllVariants: every code variant's recovery path must
// produce finite factors and count its rescues under the chaos Gram-zeroing
// fault (which makes the system exactly singular after λ was added).
func TestGuardRecoveryAllVariants(t *testing.T) {
	mx := smallDataset(t, 31)
	cases := []struct {
		name string
		cfg  Config
	}{
		{"flat", Config{Flat: true}},
		{"tb", Config{}},
		{"tb+reg+loc", Config{Variant: variant.Options{Register: true, Local: true}}},
		{"tb+fus+vec", Config{Variant: variant.Options{Fused: true, Vector: true}}},
	}
	for _, tc := range cases {
		g := guard.New(guard.Policy{})
		ch := &guard.Chaos{Seed: 11, GramRows: 4}
		ch.Bind(mx.Rows())
		g.Chaos = ch
		cfg := tc.cfg
		cfg.K, cfg.Lambda, cfg.Iterations, cfg.Seed, cfg.Guard = 8, 0.1, 2, 7, g
		res, err := Train(mx, cfg)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !guard.FiniteVec(res.X.Data) || !guard.FiniteVec(res.Y.Data) {
			t.Fatalf("%s: non-finite factors after recovery", tc.name)
		}
		if g.TotalRecoveries() < int64(len(ch.GramRowList())) {
			t.Fatalf("%s: %d recoveries for %d poisoned rows", tc.name, g.TotalRecoveries(), len(ch.GramRowList()))
		}
	}
}

// TestGuardedRowUpdateAllocsZero: an armed (but quiet) guard must not cost
// the hot path its zero-allocation property — the recovery closures may only
// materialize on the cold error branch.
func TestGuardedRowUpdateAllocsZero(t *testing.T) {
	mx := smallDataset(t, 22)
	g := guard.New(guard.Policy{})
	check := func(name string, cfg Config) {
		cfg.Guard = g
		if n := RowUpdateAllocs(mx, cfg); n != 0 {
			t.Errorf("%s with guard armed: %v allocs per row update, want 0", name, n)
		}
	}
	check("flat", Config{K: 10, Lambda: 0.1, Flat: true})
	check("tb", Config{K: 10, Lambda: 0.1})
	check("tb+fus+vec", Config{K: 10, Lambda: 0.1, Variant: variant.Options{Fused: true, Vector: true}})
}

// TestPoolErrorStopsMidChunk: once any worker poisons the half, other
// workers must bail in the middle of their claimed chunk instead of
// finishing it. The chaos FailFunc doubles as a synchronization point: row 0
// (first chunk) fails only after row 4 (second chunk) is underway, and row 4
// holds its chunk open until the error is visible, so the second chunk's
// remaining rows provably run after the error was set — and must be skipped.
func TestPoolErrorStopsMidChunk(t *testing.T) {
	const m, k, chunk = 8, 4, 4
	coo := sparse.NewCOO(m, 6)
	for u := 0; u < m; u++ {
		coo.Append(u, u%6, 3)
		coo.Append(u, (u+2)%6, 4)
	}
	mx, err := sparse.NewMatrix(coo)
	if err != nil {
		t.Fatal(err)
	}

	started := make(chan struct{}) // closed when the second chunk is underway
	errSet := make(chan struct{})  // closed when job.err is visible
	g := guard.New(guard.Policy{Strict: true})
	g.Chaos = &guard.Chaos{
		FailFunc: func(iter, row int, xHalf bool) bool {
			switch row {
			case 0:
				<-started
				return true
			case chunk:
				close(started)
				<-errSet
			}
			return false
		},
	}

	cfg := Config{K: k, Lambda: 0.1, Workers: 2, Guard: g}
	cfg.setDefaults(m, mx.NNZ())
	y := InitialY(6, k, 1)
	x := linalg.NewDense(m, k)

	p := newWorkerPool(cfg)
	defer p.close()
	job := &halfJob{r: mx.R, fixed: y, out: x, chunk: chunk, iter: 1, xHalf: true}
	job.wg.Add(p.workers)
	for i := 0; i < p.workers; i++ {
		p.jobs <- job
	}
	go func() {
		deadline := time.Now().Add(10 * time.Second)
		for job.err.Load() == nil && time.Now().Before(deadline) {
			time.Sleep(100 * time.Microsecond)
		}
		close(errSet)
	}()
	done := make(chan struct{})
	go func() { job.wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("half iteration deadlocked")
	}

	jerr, _ := job.err.Load().(error)
	if !errors.Is(jerr, guard.ErrForcedFailure) {
		t.Fatalf("job error = %v, want ErrForcedFailure", jerr)
	}
	rowNonZero := func(u int) bool {
		for _, v := range x.Row(u) {
			if v != 0 {
				return true
			}
		}
		return false
	}
	if !rowNonZero(chunk) {
		t.Fatalf("row %d (second chunk head) was never updated; choreography broken", chunk)
	}
	for u := chunk + 1; u < m; u++ {
		if rowNonZero(u) {
			t.Fatalf("row %d updated after the half was poisoned; mid-chunk bail missing", u)
		}
	}
}

// TestGuardNilUnchanged: a nil guard must reproduce the unguarded failure
// mode bit for bit — λ=0 singular systems still surface a plain error (or an
// exact LDL solve), never a silent recovery.
func TestGuardNilUnchanged(t *testing.T) {
	mx := ladderMatrix(t)
	res, err := Train(mx, Config{K: 6, Lambda: 0, Iterations: 1, Seed: 3})
	if err != nil {
		var re *guard.RowError
		if errors.As(err, &re) {
			t.Fatalf("nil guard produced a guard.RowError: %v", err)
		}
		return
	}
	for _, v := range res.X.Data {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatal("nil-guard λ=0 run produced non-finite factors without error")
		}
	}
}
