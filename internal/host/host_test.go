package host

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/linalg"
	"repro/internal/metrics"
	"repro/internal/sparse"
	"repro/internal/variant"
)

func smallDataset(t testing.TB, seed int64) *sparse.Matrix {
	t.Helper()
	return dataset.YahooR4.Scaled(0.02).Generate(seed).Matrix
}

func TestTrainConverges(t *testing.T) {
	mx := smallDataset(t, 1)
	cfg := Config{K: 10, Lambda: 0.1, Iterations: 8, Seed: 5, TrackLoss: true}
	res, err := Train(mx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) != 16 {
		t.Fatalf("history length %d, want 16 half-steps", len(res.History))
	}
	first := res.History[0].Loss
	last := res.History[len(res.History)-1].Loss
	if !(last < first) {
		t.Fatalf("loss did not decrease: %g -> %g", first, last)
	}
	// Training RMSE should be decent after 8 iterations on a planted-signal
	// dataset.
	rmse := res.RMSE(mx.R)
	if math.IsNaN(rmse) || rmse > 1.2 {
		t.Fatalf("training RMSE = %g, want < 1.2", rmse)
	}
}

// TestLossMonotone asserts the core ALS invariant: each exact half-step
// minimizes the quadratic subproblem, so the regularized loss (Eq. 2 with
// matching convention) never increases between half-steps.
func TestLossMonotone(t *testing.T) {
	for _, weighted := range []bool{false, true} {
		mx := smallDataset(t, 2)
		cfg := Config{K: 8, Lambda: 0.2, Iterations: 6, Seed: 3, TrackLoss: true, WeightedLambda: weighted}
		res, err := Train(mx, cfg)
		if err != nil {
			t.Fatal(err)
		}
		prev := math.Inf(1)
		for i, h := range res.History {
			if h.Loss > prev*(1+1e-6) {
				t.Fatalf("weighted=%v: loss increased at half-step %d: %g -> %g", weighted, i, prev, h.Loss)
			}
			prev = h.Loss
		}
	}
}

// TestVariantsEquivalent is the paper's functional-equivalence requirement:
// every scheduling/kernel variant must produce the same factors (Sec. III-D:
// "each code variant has the same interface, and is functionally equivalent
// to the other variants").
func TestVariantsEquivalent(t *testing.T) {
	mx := smallDataset(t, 3)
	base := Config{K: 10, Lambda: 0.1, Iterations: 2, Seed: 7, Flat: true}
	ref, err := Train(mx, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range variant.Extended() {
		cfg := Config{K: 10, Lambda: 0.1, Iterations: 2, Seed: 7, Variant: v}
		got, err := Train(mx, cfg)
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		if d := linalg.MaxAbsDiff(ref.X, got.X); d > 2e-3 {
			t.Errorf("%s: X differs from flat baseline by %g", v, d)
		}
		if d := linalg.MaxAbsDiff(ref.Y, got.Y); d > 2e-3 {
			t.Errorf("%s: Y differs from flat baseline by %g", v, d)
		}
	}
}

// TestWorkerCountInvariance: row updates are independent, so results must
// not depend on parallelism or chunking. Flat mode is included because its
// static blocks are broadcast to the pool and must each be processed exactly
// once no matter how the job copies land on workers.
func TestWorkerCountInvariance(t *testing.T) {
	mx := smallDataset(t, 4)
	cases := []struct {
		name string
		cfg  Config
	}{
		{"flat", Config{K: 6, Lambda: 0.1, Iterations: 2, Seed: 9, Flat: true}},
		{"tb+reg+loc", Config{K: 6, Lambda: 0.1, Iterations: 2, Seed: 9,
			Variant: variant.Options{Register: true, Local: true}}},
		{"tb+fus+loc+vec", Config{K: 6, Lambda: 0.1, Iterations: 2, Seed: 9,
			Variant: variant.Options{Fused: true, Local: true, Vector: true}}},
	}
	for _, tc := range cases {
		var ref *Result
		for _, workers := range []int{1, 2, 7, 16, 32} {
			cfg := tc.cfg
			cfg.Workers = workers
			res, err := Train(mx, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if ref == nil {
				ref = res
				continue
			}
			if d := linalg.MaxAbsDiff(ref.X, res.X); d != 0 {
				t.Fatalf("%s workers=%d: X differs by %g from single-worker run", tc.name, workers, d)
			}
			if d := linalg.MaxAbsDiff(ref.Y, res.Y); d != 0 {
				t.Fatalf("%s workers=%d: Y differs by %g", tc.name, workers, d)
			}
		}
	}
}

// TestLPTOrder: the longest-processing-time permutation must order rows by
// strictly non-increasing degree, break ties by ascending row index, and be
// a valid permutation.
func TestLPTOrder(t *testing.T) {
	coo := sparse.NewCOO(6, 5)
	deg := []int{2, 4, 1, 4, 0, 2} // rows 1,3 tie at 4; rows 0,5 tie at 2
	for u, d := range deg {
		for j := 0; j < d; j++ {
			coo.Append(u, j, float32(u+j+1))
		}
	}
	mx, err := sparse.NewMatrix(coo)
	if err != nil {
		t.Fatal(err)
	}
	order := lptOrder(mx.R)
	want := []int32{1, 3, 0, 5, 2, 4}
	if len(order) != len(want) {
		t.Fatalf("order length %d, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// TestRowUpdateAllocsZero is the steady-state allocation regression test:
// with a warmed worker scratch, no variant's row update may touch the heap.
func TestRowUpdateAllocsZero(t *testing.T) {
	mx := smallDataset(t, 21)
	check := func(name string, cfg Config) {
		if n := RowUpdateAllocs(mx, cfg); n != 0 {
			t.Errorf("%s: %v allocs per row update, want 0", name, n)
		}
	}
	check("flat", Config{K: 10, Lambda: 0.1, Flat: true})
	for _, v := range variant.Extended() {
		check(v.ID(), Config{K: 10, Lambda: 0.1, Variant: v})
	}
	// The ALS-WR weighted-λ path shares the hot loop; keep it clean too.
	check("tb+fus weighted", Config{K: 10, Lambda: 0.1, WeightedLambda: true,
		Variant: variant.Options{Fused: true}})
}

func TestEmptyRowsGetZeroFactors(t *testing.T) {
	coo := sparse.NewCOO(5, 4)
	coo.Append(0, 1, 4)
	coo.Append(2, 3, 5)
	coo.Append(2, 0, 3)
	mx, err := sparse.NewMatrix(coo)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Train(mx, Config{K: 4, Lambda: 0.1, Iterations: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range []int{1, 3, 4} {
		for _, v := range res.X.Row(u) {
			if v != 0 {
				t.Fatalf("empty user %d got nonzero factor %g", u, v)
			}
		}
	}
	for _, v := range res.Y.Row(2) { // item 2 unrated
		if v != 0 {
			t.Fatalf("empty item 2 got nonzero factor %g", v)
		}
	}
	// Rated cells should still be fit reasonably.
	if p := res.Predict(2, 3); math.Abs(p-5) > 2.5 {
		t.Fatalf("Predict(2,3) = %g, want near 5", p)
	}
}

func TestTrainEmptyMatrixRejected(t *testing.T) {
	coo := sparse.NewCOO(3, 3)
	mx, err := sparse.NewMatrix(coo)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Train(mx, Config{}); err == nil {
		t.Fatal("accepted empty matrix")
	}
}

func TestLambdaZeroFallback(t *testing.T) {
	// λ = 0 with omega < k makes the normal matrix singular; the LDL
	// fallback must either solve it or return a descriptive error rather
	// than NaN factors.
	coo := sparse.NewCOO(2, 3)
	coo.Append(0, 0, 4)
	coo.Append(0, 1, 3)
	coo.Append(1, 1, 2)
	coo.Append(1, 2, 5)
	mx, err := sparse.NewMatrix(coo)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Train(mx, Config{K: 5, Lambda: 0, Iterations: 1, Seed: 2})
	if err != nil {
		// An explicit ErrNotSPD-derived error is acceptable behaviour.
		return
	}
	for _, v := range res.X.Data {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatal("λ=0 produced non-finite factors without error")
		}
	}
}

func TestDefaultsApplied(t *testing.T) {
	cfg := Config{}
	cfg.setDefaults(1000, 50000)
	if cfg.K != 10 || cfg.Iterations != 5 || cfg.Workers < 1 || cfg.ChunkSize < 1 {
		t.Fatalf("defaults wrong: %+v", cfg)
	}
}

// TestDefaultChunkDegreeAware: the default chunk must shrink with the mean
// row degree so a claim is roughly constant work, not constant rows. A
// skewed dense side (mean degree 500) must get a far smaller chunk than a
// sparse side of the same row count.
func TestDefaultChunkDegreeAware(t *testing.T) {
	const m, workers = 100000, 4
	sparseChunk := defaultChunk(m, m*5, workers)  // mean degree 5
	denseChunk := defaultChunk(m, m*500, workers) // mean degree 500
	if sparseChunk != 64 {
		t.Fatalf("sparse-side chunk = %d, want 64", sparseChunk)
	}
	if want := chunkRowNNZBudget / 500; denseChunk != want {
		t.Fatalf("dense-side chunk = %d, want %d (budget %d / mean degree 500)",
			denseChunk, want, chunkRowNNZBudget)
	}
	// Extremes: tiny sides and ultra-dense rows still give a sane chunk.
	if c := defaultChunk(10, 100, 8); c < 1 {
		t.Fatalf("tiny side chunk = %d", c)
	}
	if c := defaultChunk(1000, 1000*10000, 2); c != 1 {
		t.Fatalf("ultra-dense chunk = %d, want 1", c)
	}
	// An explicit ChunkSize must be respected, not overwritten.
	cfg := Config{ChunkSize: 7}
	cfg.setDefaults(100000, 100000*500)
	if cfg.ChunkSize != 7 {
		t.Fatalf("explicit ChunkSize overwritten: %d", cfg.ChunkSize)
	}
	// A generated skewed preset end-to-end: the heavy side's heuristic chunk
	// stays within the work budget for its actual mean degree.
	mx := densePreset.Generate(9).Matrix
	meanDeg := (mx.NNZ() + mx.Rows() - 1) / mx.Rows()
	c := defaultChunk(mx.Rows(), mx.NNZ(), 1)
	if c*meanDeg > chunkRowNNZBudget && c > 1 {
		t.Fatalf("preset chunk %d × mean degree %d exceeds budget %d", c, meanDeg, chunkRowNNZBudget)
	}
}

// TestRMSEImprovesWithIterations is the paper's implicit convergence claim:
// more ALS iterations yield a better fit on the training ratings.
func TestRMSEImprovesWithIterations(t *testing.T) {
	mx := smallDataset(t, 6)
	rmse := func(iters int) float64 {
		res, err := Train(mx, Config{K: 10, Lambda: 0.1, Iterations: iters, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		return res.RMSE(mx.R)
	}
	one, five := rmse(1), rmse(5)
	if !(five < one) {
		t.Fatalf("RMSE did not improve: 1 iter %g vs 5 iters %g", one, five)
	}
}

// densePreset is a generalization-friendly synthetic dataset: ~50 ratings
// per user so held-out cells rarely hit cold users/items. The paper's Table
// I presets keep their true (very sparse) densities; those exercise the
// performance path, this one exercises the learning path.
var densePreset = dataset.Preset{
	Name: "DENSE", Long: "dense synthetic", Users: 400, Items: 300,
	NNZ: 20000, MinVal: 1, MaxVal: 5, UserSkew: 0.6, ItemSkew: 0.6,
}

// TestHeldOutRMSE: the factorization must generalize to held-out ratings on
// the planted-low-rank synthetic data (substantially better than predicting
// the global mean would on a pure-noise matrix).
func TestHeldOutRMSE(t *testing.T) {
	mx := densePreset.Generate(8).Matrix
	train, test, err := dataset.Split(mx, 0.2, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Train(train, Config{K: 8, Lambda: 0.1, Iterations: 10, Seed: 4, WeightedLambda: true})
	if err != nil {
		t.Fatal(err)
	}
	testRMSE := res.RMSE(test.R)
	// Baseline: predicting the global training mean for every cell.
	var mean float64
	for _, v := range train.R.Val {
		mean += float64(v)
	}
	mean /= float64(train.NNZ())
	var se float64
	for _, v := range test.R.Val {
		d := float64(v) - mean
		se += d * d
	}
	meanRMSE := math.Sqrt(se / float64(test.NNZ()))
	if math.IsNaN(testRMSE) || testRMSE >= meanRMSE {
		t.Fatalf("held-out RMSE = %g, no better than global-mean baseline %g", testRMSE, meanRMSE)
	}
}

// TestVariantEquivalenceQuick: property form over random variants and seeds.
func TestVariantEquivalenceQuick(t *testing.T) {
	mx := smallDataset(t, 10)
	f := func(reg, loc, vec, fus bool, seedByte uint8) bool {
		seed := int64(seedByte)
		if fus {
			reg = false // fused subsumes the register strip
		}
		a, err := Train(mx, Config{K: 5, Lambda: 0.1, Iterations: 1, Seed: seed,
			Variant: variant.Options{Register: reg, Local: loc, Vector: vec, Fused: fus}})
		if err != nil {
			return false
		}
		b, err := Train(mx, Config{K: 5, Lambda: 0.1, Iterations: 1, Seed: seed, Flat: true})
		if err != nil {
			return false
		}
		return linalg.MaxAbsDiff(a.X, b.X) < 2e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func TestPrecisionRecallSmoke(t *testing.T) {
	mx := densePreset.Generate(12).Matrix
	train, test, err := dataset.Split(mx, 0.25, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Train(train, Config{K: 8, Lambda: 0.1, Iterations: 6, Seed: 6, WeightedLambda: true})
	if err != nil {
		t.Fatal(err)
	}
	p, r := metrics.PrecisionRecallAtN(train.R, test.R, res.X, res.Y, 20, 3.5)
	if math.IsNaN(p) || math.IsNaN(r) {
		t.Fatal("precision/recall NaN on non-empty test set")
	}
	if p < 0 || p > 1 || r < 0 || r > 1 {
		t.Fatalf("precision %g / recall %g out of range", p, r)
	}
}

// TestEarlyStopping: with a tolerance set, training halts once the loss
// plateaus, well before the iteration budget.
func TestEarlyStopping(t *testing.T) {
	mx := smallDataset(t, 15)
	res, err := Train(mx, Config{K: 6, Lambda: 0.1, Iterations: 100, Seed: 2, Tolerance: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged == 0 || res.Converged >= 100 {
		t.Fatalf("early stopping did not fire: converged at %d", res.Converged)
	}
	// The early-stopped model should fit about as well as a full run.
	full, err := Train(mx, Config{K: 6, Lambda: 0.1, Iterations: 30, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.RMSE(mx.R) > full.RMSE(mx.R)*1.25 {
		t.Fatalf("early-stopped RMSE %.4f much worse than full %.4f", res.RMSE(mx.R), full.RMSE(mx.R))
	}
}

// TestToleranceZeroRunsAllIterations: without a tolerance the loop runs to
// the iteration budget and Converged stays zero.
func TestToleranceZeroRunsAllIterations(t *testing.T) {
	mx := smallDataset(t, 16)
	res, err := Train(mx, Config{K: 4, Lambda: 0.1, Iterations: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged != 0 {
		t.Fatalf("Converged = %d without tolerance", res.Converged)
	}
}
