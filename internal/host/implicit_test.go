package host

import (
	"math"
	"strings"
	"testing"

	"repro/internal/guard"
	"repro/internal/linalg"
	"repro/internal/variant"
)

// implicitBase is the shared hyperparameter set for the implicit-mode tests:
// small enough to keep the dense-Gram reference cheap, λ > 0 so every system
// is SPD by construction.
func implicitBase() Config {
	return Config{K: 8, Lambda: 0.1, Alpha: 40, Iterations: 3, Seed: 13, Implicit: true}
}

// TestImplicitWorkerInvariance: the shared FᵀF Gram is computed sequentially
// before the workers start and row updates are independent, so implicit
// training must be bit-identical across worker counts — for the direct
// solver, CG, and iALS++ blocks alike.
func TestImplicitWorkerInvariance(t *testing.T) {
	mx := smallDataset(t, 41)
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"direct flat", func(c *Config) { c.Flat = true }},
		{"direct tb+fus", func(c *Config) { c.Variant = variant.Options{Fused: true} }},
		{"direct tb+loc", func(c *Config) { c.Variant = variant.Options{Local: true} }},
		{"cg", func(c *Config) { c.Solver = SolverCG; c.CGIters = 4 }},
		{"block b=3", func(c *Config) { c.BlockSize = 3 }},
	}
	for _, tc := range cases {
		var ref *Result
		for _, workers := range []int{1, 4, 16} {
			cfg := implicitBase()
			cfg.Workers = workers
			tc.mut(&cfg)
			res, err := Train(mx, cfg)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", tc.name, workers, err)
			}
			if ref == nil {
				ref = res
				continue
			}
			if d := linalg.MaxAbsDiff(ref.X, res.X); d != 0 {
				t.Fatalf("%s workers=%d: X differs by %g from single-worker run", tc.name, workers, d)
			}
			if d := linalg.MaxAbsDiff(ref.Y, res.Y); d != 0 {
				t.Fatalf("%s workers=%d: Y differs by %g", tc.name, workers, d)
			}
		}
	}
}

// TestImplicitVariantsBitIdentical: the confidence kernel is inherently
// fused+packed, so every non-vector scheduling/staging variant must produce
// the same bits as the flat baseline; the 4-way unrolled vector kernel
// reassociates and only has to stay close.
func TestImplicitVariantsBitIdentical(t *testing.T) {
	mx := smallDataset(t, 42)
	base := implicitBase()
	base.Flat = true
	ref, err := Train(mx, base)
	if err != nil {
		t.Fatal(err)
	}
	exact := []variant.Options{
		{},
		{Local: true},
		{Fused: true},
		{Local: true, Fused: true},
		{Register: true}, // Register is a documented no-op in implicit mode
	}
	for _, v := range exact {
		cfg := implicitBase()
		cfg.Variant = v
		got, err := Train(mx, cfg)
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		if d := linalg.MaxAbsDiff(ref.X, got.X); d != 0 {
			t.Errorf("%s: X differs from flat baseline by %g, want bit-identical", v, d)
		}
		if d := linalg.MaxAbsDiff(ref.Y, got.Y); d != 0 {
			t.Errorf("%s: Y differs by %g, want bit-identical", v, d)
		}
	}
	for _, v := range []variant.Options{{Vector: true}, {Vector: true, Local: true, Fused: true}} {
		cfg := implicitBase()
		cfg.Variant = v
		got, err := Train(mx, cfg)
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		if d := linalg.MaxAbsDiff(ref.X, got.X); d > 2e-3 {
			t.Errorf("%s: X differs from flat baseline by %g, want < 2e-3", v, d)
		}
	}
}

// TestImplicitLossMonotone: each direct half-step solves its subproblem
// exactly, so the Hu et al. objective must not increase between half-steps.
func TestImplicitLossMonotone(t *testing.T) {
	mx := smallDataset(t, 43)
	cfg := implicitBase()
	cfg.Iterations = 5
	cfg.TrackLoss = true
	res, err := Train(mx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) != 10 {
		t.Fatalf("history length %d, want 10 half-steps", len(res.History))
	}
	prev := math.Inf(1)
	for i, h := range res.History {
		if math.IsNaN(h.Loss) || math.IsInf(h.Loss, 0) {
			t.Fatalf("half-step %d: non-finite loss %g", i, h.Loss)
		}
		if h.Loss > prev*(1+1e-6) {
			t.Fatalf("implicit loss increased at half-step %d: %g -> %g", i, prev, h.Loss)
		}
		prev = h.Loss
	}
	if !(res.History[len(res.History)-1].Loss < res.History[0].Loss) {
		t.Fatal("implicit loss did not decrease over training")
	}
}

// TestImplicitCGApproachesDirect: with enough iterations per row solve, CG
// training lands close to the direct solve; with the default budget it still
// trains (finite factors, decreasing loss).
func TestImplicitCGApproachesDirect(t *testing.T) {
	mx := smallDataset(t, 44)
	direct, err := Train(mx, implicitBase())
	if err != nil {
		t.Fatal(err)
	}
	cfg := implicitBase()
	cfg.Solver = SolverCG
	cfg.CGIters = 2 * cfg.K
	cg, err := Train(mx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d := linalg.MaxAbsDiff(direct.X, cg.X); d > 1e-2 {
		t.Fatalf("CG at 2k iters differs from direct solve by %g", d)
	}

	cheap := implicitBase()
	cheap.Solver = SolverCG // default CGIters = 3
	cheap.TrackLoss = true
	res, err := Train(mx, cheap)
	if err != nil {
		t.Fatal(err)
	}
	if !guard.FiniteVec(res.X.Data) || !guard.FiniteVec(res.Y.Data) {
		t.Fatal("CG run produced non-finite factors")
	}
	if last, first := res.History[len(res.History)-1].Loss, res.History[0].Loss; !(last < first) {
		t.Fatalf("CG loss did not decrease: %g -> %g", first, last)
	}
}

// TestImplicitBlockFullWidthMatchesDirect: with b = k the sweep is a single
// Newton step from the warm start on a quadratic — the exact solution — so
// iALS++ must agree with the direct solver to float32 accuracy.
func TestImplicitBlockFullWidthMatchesDirect(t *testing.T) {
	mx := smallDataset(t, 45)
	direct, err := Train(mx, implicitBase())
	if err != nil {
		t.Fatal(err)
	}
	cfg := implicitBase()
	cfg.BlockSize = cfg.K
	blk, err := Train(mx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d := linalg.MaxAbsDiff(direct.X, blk.X); d > 1e-3 {
		t.Fatalf("full-width block solve differs from direct by %g", d)
	}
}

// TestImplicitBlockTrains: a genuinely partial sweep (b < k) is not an exact
// solve, but Gauss-Seidel over SPD blocks still descends the objective.
func TestImplicitBlockTrains(t *testing.T) {
	mx := smallDataset(t, 46)
	for _, b := range []int{1, 2, 3} {
		cfg := implicitBase()
		cfg.BlockSize = b
		cfg.TrackLoss = true
		res, err := Train(mx, cfg)
		if err != nil {
			t.Fatalf("b=%d: %v", b, err)
		}
		if !guard.FiniteVec(res.X.Data) || !guard.FiniteVec(res.Y.Data) {
			t.Fatalf("b=%d: non-finite factors", b)
		}
		prev := math.Inf(1)
		for i, h := range res.History {
			if h.Loss > prev*(1+1e-6) {
				t.Fatalf("b=%d: loss increased at half-step %d: %g -> %g", b, i, prev, h.Loss)
			}
			prev = h.Loss
		}
	}
}

// TestImplicitRowUpdateAllocsZero extends the steady-state allocation
// regression to every implicit sub-path: direct (scalar and vector kernels),
// CG, and blocks must not touch the heap once the worker scratch is warm.
func TestImplicitRowUpdateAllocsZero(t *testing.T) {
	mx := smallDataset(t, 47)
	check := func(name string, mut func(*Config)) {
		cfg := Config{K: 10, Lambda: 0.1, Implicit: true}
		mut(&cfg)
		if n := RowUpdateAllocs(mx, cfg); n != 0 {
			t.Errorf("%s: %v allocs per row update, want 0", name, n)
		}
	}
	check("direct flat", func(c *Config) { c.Flat = true })
	check("direct tb", func(c *Config) {})
	check("direct tb+loc+vec", func(c *Config) { c.Variant = variant.Options{Local: true, Vector: true} })
	check("cg", func(c *Config) { c.Solver = SolverCG })
	check("block b=4", func(c *Config) { c.BlockSize = 4 })
}

// TestImplicitCGDegenerateFallsBackToLadder (satellite): chaos-forced solve
// failures on the CG path must route through the assembled-system fallback
// and the guard ladder to the skip rung — finite factors, never NaN. The
// Gram-poisoning fault must likewise be repaired by the jitter rungs.
func TestImplicitCGDegenerateFallsBackToLadder(t *testing.T) {
	mx := smallDataset(t, 48)
	for _, tc := range []struct {
		name string
		mut  func(*Config)
	}{
		{"cg", func(c *Config) { c.Solver = SolverCG }},
		{"block", func(c *Config) { c.BlockSize = 3 }},
		{"direct", func(c *Config) {}},
	} {
		g := guard.New(guard.Policy{})
		g.Chaos = &guard.Chaos{
			FailFunc: func(iter, row int, xHalf bool) bool {
				return iter == 1 && xHalf && row == 2
			},
		}
		cfg := implicitBase()
		cfg.Guard = g
		tc.mut(&cfg)
		res, err := Train(mx, cfg)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !guard.FiniteVec(res.X.Data) || !guard.FiniteVec(res.Y.Data) {
			t.Fatalf("%s: non-finite factors after forced failure", tc.name)
		}
		if n := g.Recoveries(guard.RungSkip); n != 1 {
			t.Fatalf("%s: skip rung fired %d times, want 1", tc.name, n)
		}

		// Gram corruption: the ladder's jitter must repair it on every path.
		g2 := guard.New(guard.Policy{})
		ch := &guard.Chaos{Seed: 17, GramRows: 3}
		ch.Bind(mx.Rows())
		g2.Chaos = ch
		cfg2 := implicitBase()
		cfg2.Guard = g2
		tc.mut(&cfg2)
		res2, err := Train(mx, cfg2)
		if err != nil {
			t.Fatalf("%s chaos gram: %v", tc.name, err)
		}
		if !guard.FiniteVec(res2.X.Data) || !guard.FiniteVec(res2.Y.Data) {
			t.Fatalf("%s chaos gram: non-finite factors", tc.name)
		}
		if g2.TotalRecoveries() == 0 {
			t.Fatalf("%s chaos gram: no recoveries counted for poisoned rows", tc.name)
		}
	}
}

// TestExplicitSolverOptions: the solver flag also applies to explicit mode —
// LDLᵀ matches Cholesky almost exactly (same assembled system, different
// factorization), and CG with a generous budget lands nearby.
func TestExplicitSolverOptions(t *testing.T) {
	mx := smallDataset(t, 49)
	base := Config{K: 8, Lambda: 0.1, Iterations: 3, Seed: 5}
	ref, err := Train(mx, base)
	if err != nil {
		t.Fatal(err)
	}
	ldl := base
	ldl.Solver = SolverLDL
	got, err := Train(mx, ldl)
	if err != nil {
		t.Fatal(err)
	}
	// Per-solve the factorizations differ only at rounding level, but the
	// difference feeds back through the alternating halves and grows a few
	// ULP-multiples per iteration.
	if d := linalg.MaxAbsDiff(ref.X, got.X); d > 2e-2 {
		t.Fatalf("explicit LDL differs from Cholesky by %g", d)
	}
	cg := base
	cg.Solver = SolverCG
	cg.CGIters = 2 * cg.K
	got, err = Train(mx, cg)
	if err != nil {
		t.Fatal(err)
	}
	if d := linalg.MaxAbsDiff(ref.X, got.X); d > 1e-2 {
		t.Fatalf("explicit CG differs from Cholesky by %g", d)
	}
}

// TestValidateMode: inconsistent mode combinations are rejected up front
// with messages that name the offending knob.
func TestValidateMode(t *testing.T) {
	mx := smallDataset(t, 50)
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"weighted implicit", Config{Implicit: true, WeightedLambda: true}, "WeightedLambda"},
		{"block explicit", Config{BlockSize: 2}, "implicit"},
		{"block cg", Config{Implicit: true, BlockSize: 2, Solver: SolverCG}, "block"},
		{"negative block", Config{Implicit: true, BlockSize: -1}, "negative"},
		{"unknown solver", Config{Solver: Solver(9)}, "solver"},
	}
	for _, tc := range cases {
		if _, err := Train(mx, tc.cfg); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}

// TestParseSolver pins the flag grammar.
func TestParseSolver(t *testing.T) {
	for in, want := range map[string]Solver{
		"": SolverCholesky, "chol": SolverCholesky, "cholesky": SolverCholesky,
		"ldl": SolverLDL, "cg": SolverCG,
	} {
		got, err := ParseSolver(in)
		if err != nil || got != want {
			t.Errorf("ParseSolver(%q) = %v, %v; want %v", in, got, err, want)
		}
		if got.String() == "" {
			t.Errorf("Solver(%v).String() empty", got)
		}
	}
	if _, err := ParseSolver("qr"); err == nil {
		t.Error("ParseSolver accepted unknown solver")
	}
}
