package host

import (
	"fmt"

	"repro/internal/linalg"
	"repro/internal/sparse"
)

// RangeUpdater exposes the half-iteration row-update machinery for a
// contiguous row range instead of a whole side: the building block of the
// distributed data-parallel trainer, where each worker process owns one
// static slice of the user (and item) rows and the fixed factor arrives by
// broadcast. The worker pool and per-goroutine scratch persist across
// calls, exactly as they do inside Train, so repeated range updates stay
// allocation-free in steady state.
//
// Row updates are pure functions of (row data, fixed factors, λ, k,
// variant) and rows never read each other's output, so updating a range
// here is bit-identical to the same rows of a full Train half given
// identical fixed factors — the property the distributed trainer's
// bit-identity guarantee rests on.
type RangeUpdater struct {
	cfg       Config
	userChunk int // ChunkSize as configured; 0 = derive per call
	pool      *workerPool
	ig        *linalg.SharedGram // implicit mode's FᵀF; recomputed per call
}

// NewRangeUpdater starts a worker pool for range updates. Only the solver
// configuration of cfg is used (K, Lambda, Workers, Flat, Variant,
// WeightedLambda, ChunkSize); iteration control, loss tracking, hooks,
// guard and observability fields are ignored.
func NewRangeUpdater(cfg Config) *RangeUpdater {
	userChunk := cfg.ChunkSize
	cfg.Guard = nil
	cfg.Obs = nil
	cfg.setDefaults(0, 0)
	ru := &RangeUpdater{cfg: cfg, userChunk: userChunk, pool: newWorkerPool(cfg)}
	if cfg.Implicit {
		ru.ig = linalg.NewSharedGram(cfg.K)
	}
	return ru
}

// K returns the configured factor dimensionality.
func (ru *RangeUpdater) K() int { return ru.cfg.K }

// UpdateRange solves rows [lo, hi) of out against fixed, where r is the
// full side matrix (R for the X half, Rᵀ for the Y half). iter is the
// 1-based iteration and xHalf names the half, mirroring Train's calls.
// Rows outside the range are untouched.
func (ru *RangeUpdater) UpdateRange(r *sparse.CSR, fixed, out *linalg.Dense, lo, hi, iter int, xHalf bool) error {
	if lo < 0 || hi > r.NumRows || lo > hi {
		return fmt.Errorf("host: row range [%d,%d) outside matrix with %d rows", lo, hi, r.NumRows)
	}
	if lo == hi {
		return nil
	}
	view := r.RowRange(lo, hi)
	outView := linalg.NewDenseFrom(hi-lo, ru.cfg.K, out.Data[lo*ru.cfg.K:hi*ru.cfg.K])
	var order []int32
	if !ru.cfg.Flat && ru.pool.workers > 1 {
		order = lptOrder(view)
	}
	chunk := ru.userChunk
	if chunk <= 0 {
		chunk = defaultChunk(view.NumRows, view.NNZ(), ru.cfg.Workers)
	}
	if ru.ig != nil {
		// The shared FᵀF depends only on the fixed factor, which every range
		// of the same half sees identically — so per-call recomputation keeps
		// range updates bit-identical to a full Train half.
		ru.ig.Compute(fixed)
	}
	return ru.pool.runHalf(view, fixed, outView, order, chunk, iter, xHalf, ru.ig)
}

// Close releases the worker pool; UpdateRange must not be called after it.
func (ru *RangeUpdater) Close() { ru.pool.close() }
