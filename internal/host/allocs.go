package host

import (
	"math"
	"runtime"

	"repro/internal/linalg"
	"repro/internal/sparse"
)

// RowUpdateAllocs measures the average heap allocations one steady-state row
// update performs under cfg. The worker scratch is warmed by a full pass over
// the rows first, exactly as a pool worker's scratch is after its first
// chunk; the package tests and the bench capture assert the result is zero
// for every variant. The count comes from runtime.ReadMemStats (the same
// mechanism as testing.AllocsPerRun) so non-test binaries can call this
// without linking the testing framework.
func RowUpdateAllocs(mx *sparse.Matrix, cfg Config) float64 {
	m := mx.Rows()
	cfg.setDefaults(m, mx.NNZ())
	y := InitialY(mx.Cols(), cfg.K, cfg.Seed)
	x := linalg.NewDense(m, cfg.K)
	ws := newWorkerState(cfg.K)
	var ig *linalg.SharedGram
	if cfg.Implicit {
		ig = linalg.NewSharedGram(cfg.K)
		ig.Compute(y)
	}
	for u := 0; u < m; u++ {
		if err := updateRow(mx.R, y, x, u, 1, true, cfg, ws, ig); err != nil {
			return -1
		}
	}
	// CG and block rows grow the per-nonzero dots scratch on first contact
	// with the row's degree; one more warming pass isn't needed because the
	// loop above already visited every row, but the LPT-free natural order
	// means the widest row has been seen and the scratch is at capacity.
	u := 0
	return allocsPerRun(200, func() {
		_ = updateRow(mx.R, y, x, u, 1, true, cfg, ws, ig)
		u++
		if u == m {
			u = 0
		}
	})
}

// allocsPerRun returns the average number of heap allocations per call to f,
// mirroring testing.AllocsPerRun: the runtime is pinned to one proc so
// background goroutines can't pollute the malloc counters, f runs once to
// warm caches, and the Mallocs delta over runs calls is averaged.
//
// Even pinned, runtime background work (a GC cycle starting inside the
// window) occasionally contributes a malloc or two, so the measurement is
// retried and the minimum taken: code that really allocates per call shows
// up in every attempt, while scheduler noise does not repeat.
func allocsPerRun(runs int, f func()) float64 {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	f()
	best := math.Inf(1)
	for attempt := 0; attempt < 3 && best != 0; attempt++ {
		runtime.GC() // finish any in-flight GC cycle before the window opens
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		for i := 0; i < runs; i++ {
			f()
		}
		runtime.ReadMemStats(&after)
		if n := float64(after.Mallocs-before.Mallocs) / float64(runs); n < best {
			best = n
		}
	}
	return best
}
