package host

import (
	"testing"

	"repro/internal/linalg"
	"repro/internal/sparse"
)

// RowUpdateAllocs measures the average heap allocations one steady-state row
// update performs under cfg, via testing.AllocsPerRun. The worker scratch is
// warmed by a full pass over the rows first, exactly as a pool worker's
// scratch is after its first chunk; the package tests and the bench capture
// assert the result is zero for every variant.
func RowUpdateAllocs(mx *sparse.Matrix, cfg Config) float64 {
	m := mx.Rows()
	cfg.setDefaults(m, mx.NNZ())
	y := InitialY(mx.Cols(), cfg.K, cfg.Seed)
	x := linalg.NewDense(m, cfg.K)
	ws := newWorkerState(cfg.K)
	for u := 0; u < m; u++ {
		if err := updateRow(mx.R, y, x, u, cfg, ws); err != nil {
			return -1
		}
	}
	u := 0
	return testing.AllocsPerRun(200, func() {
		_ = updateRow(mx.R, y, x, u, cfg, ws)
		u++
		if u == m {
			u = 0
		}
	})
}
