package host

import (
	"fmt"
	"time"

	"repro/internal/guard"
	"repro/internal/linalg"
	"repro/internal/obs"
)

// Solver selects the per-row S3 strategy.
type Solver uint8

const (
	// SolverCholesky is the default direct solve (packed or dense LLᵀ).
	SolverCholesky Solver = iota
	// SolverLDL forces the square-root-free LDLᵀ factorization that the
	// recovery ladder otherwise keeps as a fallback rung.
	SolverLDL
	// SolverCG solves the normal equations matrix-free with warm-started
	// conjugate gradient (Config.CGIters steps).
	SolverCG
)

// String returns the flag spelling of the solver.
func (s Solver) String() string {
	switch s {
	case SolverCholesky:
		return "chol"
	case SolverLDL:
		return "ldl"
	case SolverCG:
		return "cg"
	}
	return fmt.Sprintf("solver(%d)", uint8(s))
}

// ParseSolver parses the -solver flag values {chol, ldl, cg}.
func ParseSolver(s string) (Solver, error) {
	switch s {
	case "", "chol", "cholesky":
		return SolverCholesky, nil
	case "ldl":
		return SolverLDL, nil
	case "cg":
		return SolverCG, nil
	}
	return 0, fmt.Errorf("host: unknown solver %q (want chol, ldl or cg)", s)
}

// updateRowImplicit solves one implicit-feedback row on the fast path. The
// shared FᵀF base arrives precomputed in ig; the row adds its |Ω|
// confidence-weighted rank-1 corrections. Three sub-paths:
//
//   - direct (default): the fused confidence kernel accumulates the packed
//     corrected Gram and RHS in one sweep, solved by packed Cholesky/LDLᵀ —
//     bit-identical to the reference solver (plain kernel) by construction;
//   - CG (Solver == SolverCG): matrix-free, never assembles the Gram;
//   - blocks (BlockSize > 0): one iALS++ Gauss-Seidel sweep over b-wide
//     coordinate blocks.
//
// CG breakdowns and block-solve failures fall back to the assembled system
// and the same recovery ladder the direct path climbs, so degenerate rows
// are jittered/skipped rather than emitting NaN.
func updateRowImplicit(cfg Config, ws *workerState, g *guard.Guard, chaosGram, forced bool,
	src []float32, k int, gcols []int32, gvals []float32, lam float32, xu []float32, u, omega int,
	ig *linalg.SharedGram) error {
	if cfg.BlockSize > 0 && cfg.BlockSize < k {
		return blockRow(cfg, ws, g, chaosGram, forced, src, k, gcols, gvals, lam, xu, u, omega, ig)
	}
	if cfg.Solver == SolverCG {
		return cgRow(cfg, ws, g, chaosGram, forced, src, k, gcols, gvals, lam, xu, u, omega, ig)
	}

	kernel := linalg.ConfGramRHSFused
	if !cfg.Flat && cfg.Variant.Vector {
		kernel = linalg.ConfGramRHSFusedUnrolled
	}
	var t0 time.Time
	if ws.timed {
		t0 = time.Now()
	}
	kernel(src, k, gcols, gvals, cfg.Alpha, ig.Packed, ws.pmat, ws.svec, ws.cf)
	linalg.AddDiagPacked(ws.pmat, k, lam)
	if chaosGram {
		linalg.ZeroDiagPacked(ws.pmat, k)
	}
	if ws.timed {
		now := time.Now()
		ws.stage[obs.StageS12] += now.Sub(t0)
		t0 = now
	}
	var err error
	switch {
	case forced:
		err = guard.ErrForcedFailure
	case cfg.Solver == SolverLDL:
		err = linalg.LDLSolvePacked(ws.pmat, k, ws.svec, ws.ldl)
	default:
		err = linalg.CholeskySolvePacked(ws.pmat, k, ws.svec)
	}
	if err != nil {
		assemble := func(extra float32) {
			kernel(src, k, gcols, gvals, cfg.Alpha, ig.Packed, ws.pmat, ws.svec, ws.cf)
			linalg.AddDiagPacked(ws.pmat, k, lam)
			if chaosGram {
				linalg.ZeroDiagPacked(ws.pmat, k)
			}
			if extra != 0 {
				linalg.AddDiagPacked(ws.pmat, k, extra)
			}
		}
		skip, rerr := recoverRow(g, forced, lam, assemble,
			func() error { return linalg.CholeskySolvePacked(ws.pmat, k, ws.svec) },
			func() error { return linalg.LDLSolvePacked(ws.pmat, k, ws.svec, ws.ldl) },
			ws.svec, u, omega, err)
		if rerr != nil || skip {
			if ws.timed {
				ws.stage[obs.StageS3] += time.Since(t0)
			}
			return rerr
		}
	}
	if ws.timed {
		ws.stage[obs.StageS3] += time.Since(t0)
	}
	copy(xu, ws.svec)
	return nil
}

// cgRow solves one row with warm-started conjugate gradient, implicit
// (ig != nil: A = FᵀF + Σ α·r f fᵀ + λI) or explicit (A = Σ f fᵀ + λI).
// The matrix is never assembled on the happy path; a breakdown, chaos
// corruption or non-finite iterate falls back to the assembled packed
// system through fallbackAssembled.
func cgRow(cfg Config, ws *workerState, g *guard.Guard, chaosGram, forced bool,
	src []float32, k int, gcols []int32, gvals []float32, lam float32, xu []float32, u, omega int,
	ig *linalg.SharedGram) error {
	var t0 time.Time
	if ws.timed {
		t0 = time.Now()
	}
	if ig != nil {
		linalg.ConfRHS(src, k, gcols, gvals, cfg.Alpha, ws.rhs)
	} else {
		rhsKernel(cfg, src, k, gcols, gvals, ws.rhs)
	}
	if ws.timed {
		now := time.Now()
		ws.stage[obs.StageS2] += now.Sub(t0)
		t0 = now
	}
	copy(ws.svec, xu) // warm start from the row's current factors
	sys := linalg.CGSystem{K: k, Src: src, Cols: gcols, Lam: lam}
	if ig != nil {
		sys.G = ig.Dense
		sys.Vals = gvals
		sys.Alpha = cfg.Alpha
	}
	var err error
	switch {
	case forced:
		err = guard.ErrForcedFailure
	case chaosGram:
		// Chaos poisons the assembled Gram; CG never assembles one, so the
		// corruption lands on the fallback path where the ladder repairs it.
		err = guard.ErrForcedFailure
		forced = false
	default:
		err = linalg.CGSolve(&sys, ws.rhs, ws.svec, cfg.CGIters, ws.cgR, ws.cgP, ws.cgAp)
		if err == nil && !guard.FiniteVec(ws.svec) {
			err = fmt.Errorf("%w: non-finite CG iterate", linalg.ErrCGBreakdown)
		}
	}
	if err != nil {
		if rerr, skip := fallbackAssembled(cfg, ws, g, chaosGram, forced, src, k, gcols, gvals, lam, u, omega, ig, err); rerr != nil || skip {
			if ws.timed {
				ws.stage[obs.StageS3] += time.Since(t0)
			}
			return rerr
		}
	}
	if ws.timed {
		ws.stage[obs.StageS3] += time.Since(t0)
	}
	copy(xu, ws.svec)
	return nil
}

// blockRow performs one iALS++ Gauss-Seidel sweep over b-wide coordinate
// blocks: for each block B it forms the residual r_B = (svec − A·x)_B from
// the shared Gram base and the incrementally-maintained per-nonzero dot
// products d_z = f_z·x, solves the b×b subsystem A_BB·δ = r_B directly, and
// applies x_B += δ. Per-row cost is k² + |Ω|·k·b + k·b²/6 — linear in b
// where the full solve is quadratic in k. Any block failure falls back to
// the assembled full system and the recovery ladder.
func blockRow(cfg Config, ws *workerState, g *guard.Guard, chaosGram, forced bool,
	src []float32, k int, gcols []int32, gvals []float32, lam float32, xu []float32, u, omega int,
	ig *linalg.SharedGram) error {
	var t0 time.Time
	if ws.timed {
		t0 = time.Now()
	}
	var err error
	if forced || chaosGram {
		// Chaos poisons the assembled Gram; the sweep never assembles the
		// full one, so route the corruption to the fallback where the ladder
		// repairs it (forced failures stay forced and ride to the skip rung).
		err = guard.ErrForcedFailure
		if chaosGram {
			forced = false
		}
	} else {
		err = blockSweep(cfg, ws, src, k, gcols, gvals, lam, xu, ig.Dense)
	}
	if ws.timed {
		now := time.Now()
		ws.stage[obs.StageS12] += now.Sub(t0)
		t0 = now
	}
	if err != nil {
		if rerr, skip := fallbackAssembled(cfg, ws, g, chaosGram, forced, src, k, gcols, gvals, lam, u, omega, ig, err); rerr != nil || skip {
			if ws.timed {
				ws.stage[obs.StageS3] += time.Since(t0)
			}
			return rerr
		}
	}
	if ws.timed {
		ws.stage[obs.StageS3] += time.Since(t0)
	}
	copy(xu, ws.svec)
	return nil
}

// blockSweep runs the sweep proper, leaving the updated factors in ws.svec.
// It works on a private copy of the row so a failed sweep never publishes a
// half-updated row (the skip rung must keep last-good factors intact).
func blockSweep(cfg Config, ws *workerState, src []float32, k int, gcols []int32, gvals []float32, lam float32, xu []float32, gd []float32) error {
	b := cfg.BlockSize
	linalg.ConfRHS(src, k, gcols, gvals, cfg.Alpha, ws.rhs)
	x := ws.svec[:k]
	copy(x, xu)
	ws.ensureDots(len(gcols))
	for z, c := range gcols {
		f := src[int(c)*k : int(c)*k+k]
		ws.dots[z] = float32(linalg.Dot(f, x))
	}
	for b0 := 0; b0 < k; b0 += b {
		bw := b
		if b0+bw > k {
			bw = k - b0
		}
		// Residual r_B = rhs_B − (A·x)_B with A = G + Σ conf f fᵀ + λI.
		rb := ws.delta[:bw]
		for i := 0; i < bw; i++ {
			row := b0 + i
			s := float64(lam) * float64(x[row])
			gr := gd[row*k : row*k+k]
			for j := 0; j < k; j++ {
				s += float64(gr[j]) * float64(x[j])
			}
			for z, c := range gcols {
				f := src[int(c)*k : int(c)*k+k]
				conf := cfg.Alpha * gvals[z]
				s += float64(conf) * float64(f[row]) * float64(ws.dots[z])
			}
			rb[i] = ws.rhs[row] - float32(s)
		}
		// A_BB = G_BB + Σ conf f_B f_Bᵀ + λI_B, dense b×b.
		blk := ws.blk[:bw*bw]
		for i := 0; i < bw; i++ {
			gr := gd[(b0+i)*k:]
			for j := 0; j < bw; j++ {
				blk[i*bw+j] = gr[b0+j]
			}
		}
		for z, c := range gcols {
			f := src[int(c)*k : int(c)*k+k]
			conf := cfg.Alpha * gvals[z]
			for i := 0; i < bw; i++ {
				ci := conf * f[b0+i]
				row := blk[i*bw:]
				for j := 0; j < bw; j++ {
					row[j] += ci * f[b0+j]
				}
			}
		}
		for i := 0; i < bw; i++ {
			blk[i*bw+i] += lam
		}
		ws.blkMat.Rows, ws.blkMat.Cols, ws.blkMat.Data = bw, bw, blk
		if err := linalg.CholeskySolve(&ws.blkMat, rb); err != nil {
			return err
		}
		if !guard.FiniteVec(rb) {
			return fmt.Errorf("block [%d,%d): non-finite update", b0, b0+bw)
		}
		// Apply δ and maintain the dot products incrementally.
		for i := 0; i < bw; i++ {
			x[b0+i] += rb[i]
		}
		for z, c := range gcols {
			f := src[int(c)*k : int(c)*k+k]
			var s float64
			for i := 0; i < bw; i++ {
				s += float64(f[b0+i]) * float64(rb[i])
			}
			ws.dots[z] += float32(s)
		}
	}
	return nil
}

// fallbackAssembled is the shared cold path for CG breakdowns and block
// failures: assemble the full packed system (confidence kernel in implicit
// mode, fused explicit kernel otherwise) and hand it to recoverRow — the
// pre-guard LDLᵀ retry, or the guard's jitter→LDLᵀ→skip ladder. On
// (nil, false) ws.svec holds a usable solution.
func fallbackAssembled(cfg Config, ws *workerState, g *guard.Guard, chaosGram, forced bool,
	src []float32, k int, gcols []int32, gvals []float32, lam float32, u, omega int,
	ig *linalg.SharedGram, firstErr error) (error, bool) {
	assemble := func(extra float32) {
		if ig != nil {
			linalg.ConfGramRHSFused(src, k, gcols, gvals, cfg.Alpha, ig.Packed, ws.pmat, ws.svec, ws.cf)
		} else {
			linalg.GramRHSFused(src, k, gcols, gvals, ws.pmat, ws.svec)
		}
		linalg.AddDiagPacked(ws.pmat, k, lam)
		if chaosGram {
			linalg.ZeroDiagPacked(ws.pmat, k)
		}
		if extra != 0 {
			linalg.AddDiagPacked(ws.pmat, k, extra)
		}
	}
	assemble(0)
	var err error
	if forced {
		err = guard.ErrForcedFailure
	} else if err = linalg.CholeskySolvePacked(ws.pmat, k, ws.svec); err == nil {
		return nil, false
	}
	if err == nil {
		err = firstErr
	}
	skip, rerr := recoverRow(g, forced, lam, assemble,
		func() error { return linalg.CholeskySolvePacked(ws.pmat, k, ws.svec) },
		func() error { return linalg.LDLSolvePacked(ws.pmat, k, ws.svec, ws.ldl) },
		ws.svec, u, omega, err)
	return rerr, skip
}
