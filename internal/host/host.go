// Package host implements the ALS solver as real goroutine-parallel Go for
// the machine the benchmarks run on. It is the wall-clock counterpart to the
// simulated-device kernels in internal/kernels: the same code-variant space
// (flat baseline vs. thread batching; register/local/vector/fused toggles)
// mapped to genuine host mechanisms:
//
//   - flat scheduling  -> one static contiguous block of rows per worker,
//     so skewed rows imbalance the workers (the SAC'15 baseline behaviour);
//   - thread batching  -> dynamic chunked work sharing via an atomic cursor,
//     with rows visited longest-first (LPT) so stragglers surface early;
//   - registers        -> the Fig. 3b k-strip accumulator kernel instead of
//     the k×k scratch;
//   - local memory     -> staging the gathered rows of Y (and the row's
//     ratings) into a dense per-worker buffer before computing, i.e. cache
//     blocking;
//   - vector units     -> 4-way unrolled inner loops;
//   - fused            -> S1 and S2 in one sweep over the gathered rows into
//     a packed upper-triangular Gram, solved by a packed Cholesky.
//
// Workers are spawned once per Train call and persist across all half
// iterations: each half is a rendezvous on a shared job (an atomic row
// cursor), not a fresh goroutine fan-out, and each worker's scratch lives
// for the whole run so the row-update steady state allocates nothing.
//
// Every variant produces identical factors for identical inputs (the
// package tests assert this), so scheduling and kernel choice change only
// performance — the paper's definition of a code variant.
package host

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/guard"
	"repro/internal/linalg"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sparse"
	"repro/internal/variant"
)

// Config controls one ALS training run.
type Config struct {
	K          int     // latent factor dimensionality (paper default 10)
	Lambda     float32 // regularization coefficient (paper default 0.1)
	Iterations int     // full ALS iterations (paper uses 5 for timing)
	Workers    int     // goroutines; 0 means GOMAXPROCS
	Seed       int64   // seed for Y's random initial guess

	// Flat selects the SAC'15 baseline scheduling (static contiguous row
	// blocks, scatter kernel) regardless of Variant.
	Flat bool
	// Variant selects the optimization toggles for thread-batched runs.
	Variant variant.Options

	// WeightedLambda enables the ALS-WR convention λ·|Ω_u|·I (Zhou et al.)
	// instead of the paper's plain λI.
	WeightedLambda bool

	// Implicit switches training to implicit-feedback ALS (Hu et al.):
	// ratings become confidences c_ui = 1 + Alpha·r_ui over unit
	// preferences, each half iteration precomputes the shared FᵀF Gram
	// sequentially in float64, and the row kernels apply confidence-weighted
	// rank-1 corrections on top of it. The direct-solver path is
	// bit-identical to the reference solver in internal/solvers (the
	// equivalence suite pins it). Incompatible with WeightedLambda. The
	// Fused and Register variant toggles are no-ops in this mode — the
	// confidence kernels are inherently fused into packed register-strip
	// form; Local staging, Vector unrolling and Flat scheduling still apply.
	Implicit bool
	// Alpha is the implicit-mode confidence scale (default 40).
	Alpha float32
	// Solver selects the per-row S3: direct Cholesky (default), direct
	// LDLᵀ, or matrix-free conjugate gradient (CG never assembles the k×k
	// normal matrix — each iteration applies it as k² + |Ω|·k work, so a
	// few warm-started iterations beat the |Ω|·k² assembly at large k). CG
	// results differ from the direct solve within a small tolerance; on
	// breakdown (degenerate system) the row falls back to the assembled
	// system and the guard recovery ladder.
	Solver Solver
	// CGIters bounds the CG iterations per row solve (default 3, following
	// the rusket exemplar's cg_iters).
	CGIters int
	// BlockSize enables iALS++ (arXiv 2110.14044) block-coordinate
	// subspace updates in implicit mode: each row update performs one
	// Gauss-Seidel sweep over ⌈k/b⌉ coordinate blocks, solving only b×b
	// systems, so per-row cost scales as k² + |Ω|·k·b instead of |Ω|·k².
	// 0 = full direct solve. Requires Implicit and the Cholesky solver.
	BlockSize int

	// TrackLoss records the regularized loss (Eq. 2) after every half-step;
	// costs an extra pass over the ratings, so benchmarks leave it off.
	TrackLoss bool
	// Tolerance enables early stopping (Algorithm 1's "until it reaches the
	// maximum specified cycles or error rate"): training stops once the
	// relative loss improvement of a full iteration falls below Tolerance.
	// Implies loss evaluation each iteration. 0 disables.
	Tolerance float64
	// ChunkSize is the number of rows a batched worker claims at once;
	// 0 means a heuristic from the row count, mean row degree and Workers.
	ChunkSize int

	// StartIteration resumes a checkpointed run: the loop begins at
	// StartIteration+1 (0 = a fresh run). ResumeX/ResumeY must then carry
	// the factors as of that iteration; they are deep-copied, never
	// mutated. Because every iteration is a pure function of the current
	// factors, a resumed run is bit-identical to an uninterrupted one.
	StartIteration int
	ResumeX        *linalg.Dense
	ResumeY        *linalg.Dense

	// OnIteration, when set, runs after every completed full iteration
	// (workers quiescent, factors stable) with the 1-based iteration
	// number, the live factor matrices, and the history so far. An error
	// aborts training — a checkpoint that cannot be written should stop a
	// run that depends on being resumable.
	OnIteration func(it int, x, y *linalg.Dense, history []IterStats) error

	// Guard, when set, arms the numerical-resilience layer: the solver
	// recovery ladder in the row-update kernel (ridge jitter → LDLᵀ → skip
	// instead of aborting the run), the divergence watchdog at the
	// iteration boundary (typed guard.DivergedError the caller can answer
	// with a checkpoint rollback), and any configured chaos injection. Nil
	// — the library default — keeps the pre-guard fail-fast behavior
	// bit-for-bit, as does Guard.Strict apart from typed errors.
	Guard *guard.Guard

	// Obs, when set, receives the training-run observability stream:
	// half-iteration spans, per-worker utilization, per-stage kernel time,
	// and loss points. All recording happens at the half rendezvous (one
	// report per worker per half), except the stage timers which bracket
	// the S1/S2/S3 kernels inside updateRow; with Obs nil the row-update
	// path is untouched and stays allocation-free.
	Obs *obs.TrainRecorder
}

// chunkRowNNZBudget caps a default chunk's work: one claim covers roughly
// this many nonzeros. Without the cap a 64-row chunk is microseconds of work
// on a sparse side but a serial straggler on a dense one.
const chunkRowNNZBudget = 4096

// defaultChunk sizes a batched worker's claim for an m-row side holding nnz
// ratings: small enough that every worker sees several chunks (dynamic
// balancing), and capped by the mean row degree so claim granularity is
// roughly constant in work rather than in rows.
func defaultChunk(m, nnz, workers int) int {
	c := 64
	if v := 1 + m/(workers*8); v < c {
		c = v
	}
	if m > 0 && nnz > 0 {
		meanDeg := (nnz + m - 1) / m
		if byWork := chunkRowNNZBudget / meanDeg; byWork < c {
			c = byWork
		}
	}
	if c < 1 {
		c = 1
	}
	return c
}

func (c *Config) setDefaults(m, nnz int) {
	if c.K <= 0 {
		c.K = 10
	}
	if c.Iterations <= 0 {
		c.Iterations = 5
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.ChunkSize <= 0 {
		c.ChunkSize = defaultChunk(m, nnz, c.Workers)
	}
	if c.Alpha <= 0 {
		c.Alpha = 40
	}
	if c.CGIters <= 0 {
		c.CGIters = 3
	}
	if c.BlockSize > c.K {
		c.BlockSize = c.K
	}
}

// validateMode rejects inconsistent training-mode combinations up front,
// before any workers spawn.
func (c *Config) validateMode() error {
	if c.Solver > SolverCG {
		return fmt.Errorf("host: unknown solver %d", c.Solver)
	}
	if c.Implicit && c.WeightedLambda {
		return fmt.Errorf("host: WeightedLambda applies to explicit ALS-WR only, not implicit mode")
	}
	if c.BlockSize < 0 {
		return fmt.Errorf("host: negative block size %d", c.BlockSize)
	}
	if c.BlockSize > 0 && !c.Implicit {
		return fmt.Errorf("host: block-coordinate updates (iALS++) require implicit mode")
	}
	if c.BlockSize > 0 && c.Solver != SolverCholesky {
		return fmt.Errorf("host: block-coordinate updates solve each b×b subsystem directly; -solver %s cannot be combined with a block size", c.Solver)
	}
	return nil
}

// IterStats records per-half-iteration progress when TrackLoss is on.
type IterStats struct {
	Iteration int     // 1-based full iteration
	Half      string  // "X" or "Y"
	Loss      float64 // regularized loss, Eq. 2
	Elapsed   time.Duration
}

// Result is a trained factorization.
type Result struct {
	X, Y    *linalg.Dense // user (m×k) and item (n×k) factors
	History []IterStats
	Elapsed time.Duration
	// Converged is the iteration early stopping fired at (0 when Tolerance
	// was unset; Iterations when the loop ran to completion).
	Converged int
}

// Predict returns the estimated rating r̂_ui = x_u·y_i.
func (r *Result) Predict(u, i int) float64 {
	return linalg.Dot(r.X.Row(u), r.Y.Row(i))
}

// RMSE evaluates the model on a rating matrix.
func (r *Result) RMSE(on *sparse.CSR) float64 { return metrics.RMSE(on, r.X, r.Y) }

// Train runs ALS (Algorithm 1): X and Y are updated alternately, each side
// solved exactly row-by-row via Cholesky, for Config.Iterations rounds.
func Train(mx *sparse.Matrix, cfg Config) (*Result, error) {
	m, n := mx.Rows(), mx.Cols()
	userChunk := cfg.ChunkSize
	cfg.setDefaults(m, mx.NNZ())
	if mx.NNZ() == 0 {
		return nil, fmt.Errorf("host: empty rating matrix")
	}
	if err := cfg.validateMode(); err != nil {
		return nil, err
	}
	if cfg.StartIteration < 0 {
		return nil, fmt.Errorf("host: negative start iteration %d", cfg.StartIteration)
	}
	if (cfg.ResumeX == nil) != (cfg.ResumeY == nil) {
		return nil, fmt.Errorf("host: only one of ResumeX/ResumeY set")
	}
	if cfg.StartIteration > 0 && cfg.ResumeX == nil {
		return nil, fmt.Errorf("host: StartIteration %d without resume factors", cfg.StartIteration)
	}
	x := linalg.NewDense(m, cfg.K)
	y := InitialY(n, cfg.K, cfg.Seed)
	if cfg.ResumeX != nil {
		if cfg.ResumeX.Rows != m || cfg.ResumeX.Cols != cfg.K ||
			cfg.ResumeY.Rows != n || cfg.ResumeY.Cols != cfg.K {
			return nil, fmt.Errorf("host: resume factors (%dx%d,%dx%d) do not match run (%dx%d,%dx%d)",
				cfg.ResumeX.Rows, cfg.ResumeX.Cols, cfg.ResumeY.Rows, cfg.ResumeY.Cols,
				m, cfg.K, n, cfg.K)
		}
		x = cfg.ResumeX.Clone()
		y = cfg.ResumeY.Clone()
	}

	// The Y update runs the same row-update code on Rᵀ: build a CSR view of
	// the transpose by reinterpreting the CSC arrays (no copy).
	rt := &sparse.CSR{NumRows: n, NumCols: m, RowPtr: mx.C.ColPtr, ColIdx: mx.C.RowIdx, Val: mx.C.Val}

	pool := newWorkerPool(cfg)
	defer pool.close()

	// Per-side schedules, built once and reused every iteration: a
	// longest-row-first visit order (row updates are independent, so order
	// changes only balance, never results) and a degree-aware chunk size.
	// With a single worker there is no imbalance to fix and the natural
	// order has better locality, so LPT is skipped.
	var orderX, orderY []int32
	if !cfg.Flat && pool.workers > 1 {
		orderX = lptOrder(mx.R)
		orderY = lptOrder(rt)
	}
	chunkX, chunkY := cfg.ChunkSize, cfg.ChunkSize
	if userChunk <= 0 {
		chunkY = defaultChunk(n, mx.NNZ(), cfg.Workers)
	}

	cfg.Obs.SetShape(m, n, mx.NNZ(), pool.workers, variantLabel(cfg), modeLabel(cfg))
	if cfg.Guard != nil {
		cfg.Guard.SetVariant(variantLabel(cfg))
		// The watchdog's loss floor scales with the objective's natural
		// magnitude: Σr² for the explicit squared error, Σc·p² = nnz + αΣr
		// for the implicit confidence-weighted one.
		var sq float64
		if cfg.Implicit {
			for _, v := range mx.R.Val {
				sq += 1 + float64(cfg.Alpha)*float64(v)
			}
		} else {
			for _, v := range mx.R.Val {
				sq += float64(v) * float64(v)
			}
		}
		cfg.Guard.SetLossScale(sq)
	}
	// Implicit mode shares one FᵀF precompute across every row of a half
	// iteration; the buffers live here so workers never allocate.
	var ig *linalg.SharedGram
	if cfg.Implicit {
		ig = linalg.NewSharedGram(cfg.K)
	}
	res := &Result{X: x, Y: y}
	start := time.Now()
	prevLoss := math.Inf(1)
	for it := cfg.StartIteration + 1; it <= cfg.Iterations; it++ {
		cfg.Obs.BeginHalf(it, "X", m, mx.NNZ(), pool.workers)
		if ig != nil {
			ig.Compute(y)
		}
		err := pool.runHalf(mx.R, y, x, orderX, chunkX, it, true, ig)
		cfg.Obs.EndHalf()
		if err != nil {
			annotateRowError(err, it)
			return nil, fmt.Errorf("host: iteration %d update X: %w", it, err)
		}
		if cfg.TrackLoss {
			loss := cfg.loss(mx, x, y)
			res.History = append(res.History, IterStats{
				Iteration: it, Half: "X", Loss: loss, Elapsed: time.Since(start),
			})
			cfg.Obs.RecordLoss(it, "X", loss)
		}
		cfg.Obs.BeginHalf(it, "Y", n, mx.NNZ(), pool.workers)
		if ig != nil {
			ig.Compute(x)
		}
		err = pool.runHalf(rt, x, y, orderY, chunkY, it, false, ig)
		cfg.Obs.EndHalf()
		if err != nil {
			annotateRowError(err, it)
			return nil, fmt.Errorf("host: iteration %d update Y: %w", it, err)
		}
		if cfg.TrackLoss {
			loss := cfg.loss(mx, x, y)
			res.History = append(res.History, IterStats{
				Iteration: it, Half: "Y", Loss: loss, Elapsed: time.Since(start),
			})
			cfg.Obs.RecordLoss(it, "Y", loss)
		}
		// Divergence watchdog: with the workers parked the factors are
		// stable, so this is the safe point to vet them — and it runs
		// before OnIteration so diverged factors are never checkpointed.
		// A chaos blow-up lands here too (after the half losses were
		// recorded, mimicking corruption that strikes between iterations),
		// in which case the vetted loss must be recomputed from the
		// corrupted factors rather than reused.
		if g := cfg.Guard; g != nil {
			blew := g.Chaos.BlowUp(it)
			if blew {
				g.Chaos.CorruptFactors(x.Data)
			}
			var loss float64
			if cfg.TrackLoss && !blew {
				loss = res.History[len(res.History)-1].Loss
			} else {
				loss = cfg.loss(mx, x, y)
			}
			if err := g.CheckIteration(it, x.Data, y.Data, loss); err != nil {
				return nil, fmt.Errorf("host: iteration %d: %w", it, err)
			}
		}
		// Workers are parked between halves, so the factors are stable here.
		if cfg.OnIteration != nil {
			if err := cfg.OnIteration(it, x, y, res.History); err != nil {
				return nil, fmt.Errorf("host: iteration %d hook: %w", it, err)
			}
		}
		cfg.Obs.IterDone(it)
		if cfg.Tolerance > 0 {
			var loss float64
			if cfg.TrackLoss {
				loss = res.History[len(res.History)-1].Loss
			} else {
				loss = cfg.loss(mx, x, y)
				cfg.Obs.RecordLoss(it, "Y", loss)
			}
			res.Converged = it
			if prevLoss-loss < cfg.Tolerance*prevLoss {
				break
			}
			prevLoss = loss
		}
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// annotateRowError fills the iteration into a guard.RowError bubbling out
// of the worker pool — the workers know the row but not the iteration.
func annotateRowError(err error, it int) {
	var re *guard.RowError
	if errors.As(err, &re) && re.Iteration == 0 {
		re.Iteration = it
	}
}

// variantLabel names the run's code variant for observability output,
// matching the naming the result layer uses.
func variantLabel(cfg Config) string {
	if cfg.Flat {
		return "flat baseline"
	}
	return cfg.Variant.String()
}

// modeLabel names the training mode for observability output.
func modeLabel(cfg Config) string {
	if cfg.Implicit {
		return "implicit"
	}
	return "explicit"
}

// loss evaluates the objective the configured mode minimizes: the paper's
// Eq. 2 for explicit runs, the Hu et al. confidence-weighted objective for
// implicit ones. The watchdog, early stopping and TrackLoss all read this,
// so divergence detection stays meaningful across modes.
func (c Config) loss(mx *sparse.Matrix, x, y *linalg.Dense) float64 {
	if c.Implicit {
		return metrics.ImplicitLoss(mx.R, x, y, float64(c.Alpha), float64(c.Lambda))
	}
	return metrics.RegularizedLoss(mx.R, x, y, float64(c.Lambda), c.WeightedLambda)
}

// InitialY fills Y with the paper's "small random numbers" initial guess.
// Exported so the simulated-device kernels start from the identical Y and
// the variant-equivalence tests can compare factors across substrates.
func InitialY(n, k int, seed int64) *linalg.Dense {
	rng := rand.New(rand.NewSource(seed))
	y := linalg.NewDense(n, k)
	for i := range y.Data {
		y.Data[i] = rng.Float32() * 0.1
	}
	return y
}

// lptOrder returns the rows of r sorted by descending nonzero count, ties
// broken by ascending row index (a counting sort, so building it is O(m)).
// Visiting rows longest-first approximates LPT scheduling: the expensive
// rows are claimed while every worker is still busy, instead of surfacing
// at the tail where they serialize the half iteration.
func lptOrder(r *sparse.CSR) []int32 {
	m := r.NumRows
	maxDeg := 0
	for u := 0; u < m; u++ {
		if d := r.RowNNZ(u); d > maxDeg {
			maxDeg = d
		}
	}
	start := make([]int, maxDeg+1)
	for u := 0; u < m; u++ {
		start[r.RowNNZ(u)]++
	}
	pos := 0
	for d := maxDeg; d >= 0; d-- {
		n := start[d]
		start[d] = pos
		pos += n
	}
	order := make([]int32, m)
	for u := 0; u < m; u++ {
		d := r.RowNNZ(u)
		order[start[d]] = int32(u)
		start[d]++
	}
	return order
}

// halfJob is one half iteration handed to every worker: the side's CSR, the
// factor pair, the visit order, and a shared atomic cursor the workers claim
// chunks from. A job completes when all workers return from it.
type halfJob struct {
	r          *sparse.CSR
	fixed, out *linalg.Dense
	order      []int32 // LPT permutation; nil = natural order
	chunk      int
	iter       int                // 1-based full iteration (guard/chaos addressing)
	xHalf      bool               // true for the X half, false for the Y half
	gram       *linalg.SharedGram // implicit mode's FᵀF precompute; nil otherwise
	cursor     atomic.Int64
	err        atomic.Value
	wg         sync.WaitGroup
}

// workerPool owns Config.Workers goroutines for the lifetime of one Train
// call. Each worker keeps its scratch (Gram matrix, staging buffers) across
// every half iteration, so steady-state row updates allocate nothing; a half
// iteration costs two channel sends per worker instead of a goroutine spawn.
type workerPool struct {
	cfg     Config
	workers int
	jobs    chan *halfJob
	wg      sync.WaitGroup
}

func newWorkerPool(cfg Config) *workerPool {
	p := &workerPool{cfg: cfg, workers: cfg.Workers, jobs: make(chan *halfJob, cfg.Workers)}
	p.wg.Add(p.workers)
	for w := 0; w < p.workers; w++ {
		go p.run(w)
	}
	return p
}

func (p *workerPool) close() {
	close(p.jobs)
	p.wg.Wait()
}

// runHalf broadcasts one job to every worker and waits for the rendezvous.
func (p *workerPool) runHalf(r *sparse.CSR, fixed, out *linalg.Dense, order []int32, chunk, iter int, xHalf bool, gram *linalg.SharedGram) error {
	job := &halfJob{r: r, fixed: fixed, out: out, order: order, chunk: chunk, iter: iter, xHalf: xHalf, gram: gram}
	job.wg.Add(p.workers)
	for i := 0; i < p.workers; i++ {
		p.jobs <- job
	}
	job.wg.Wait()
	if err, _ := job.err.Load().(error); err != nil {
		return err
	}
	return nil
}

func (p *workerPool) run(id int) {
	defer p.wg.Done()
	ws := newWorkerState(p.cfg.K)
	ws.timed = p.cfg.Obs != nil
	for job := range p.jobs {
		if ws.timed {
			t0 := time.Now()
			chunks, rows := p.work(job, ws)
			p.cfg.Obs.WorkerReport(id, time.Since(t0), chunks, rows, ws.stage)
			ws.stage = obs.StageDur{}
		} else {
			p.work(job, ws)
		}
		job.wg.Done()
	}
}

// work drains one half-iteration job, returning how many chunks this worker
// claimed and how many rows it updated (both zero-cost to count; only read
// when observability is on).
func (p *workerPool) work(job *halfJob, ws *workerState) (chunks, rows int) {
	m := job.r.NumRows
	if p.cfg.Flat {
		// Static contiguous blocks [b·m/W, (b+1)·m/W), claimed by index from
		// the shared cursor. Claiming (rather than keying blocks off the
		// worker id) keeps the work idempotent across however the broadcast
		// job copies land on workers: the channel does not guarantee one copy
		// per worker, and a block tied to a starved worker's id would be
		// silently skipped.
		for job.err.Load() == nil {
			blk := int(job.cursor.Add(1)) - 1
			if blk >= p.workers {
				return
			}
			lo := blk * m / p.workers
			hi := (blk + 1) * m / p.workers
			chunks++
			for u := lo; u < hi; u++ {
				// Re-check the shared error inside the block too: a flat
				// block is m/W rows, and finishing it after another worker
				// poisoned the half is wasted (and, under guard, soon
				// rolled-back) work.
				if job.err.Load() != nil {
					return
				}
				if err := updateRow(job.r, job.fixed, job.out, u, job.iter, job.xHalf, p.cfg, ws, job.gram); err != nil {
					job.err.CompareAndSwap(nil, err)
					return
				}
				rows++
			}
		}
		return
	}
	for job.err.Load() == nil {
		base := int(job.cursor.Add(int64(job.chunk))) - job.chunk
		if base >= m {
			return
		}
		end := base + job.chunk
		if end > m {
			end = m
		}
		chunks++
		for i := base; i < end; i++ {
			// Bail mid-chunk once any worker has failed the half — the
			// cursor check above only runs between claims.
			if job.err.Load() != nil {
				return
			}
			u := i
			if job.order != nil {
				u = int(job.order[i])
			}
			if err := updateRow(job.r, job.fixed, job.out, u, job.iter, job.xHalf, p.cfg, ws, job.gram); err != nil {
				job.err.CompareAndSwap(nil, err)
				return
			}
			rows++
		}
	}
	return
}

// workerState is the per-goroutine scratch: the k×k normal matrix (and its
// packed twin for fused variants), the k-vector right-hand side, solver
// scratch, and the staging buffers the "local memory" variant copies
// gathered data into. It lives as long as its worker, so a warmed state
// makes updateRow allocation-free.
type workerState struct {
	smat      *linalg.Dense
	svec      []float32
	gsum      []float32 // GramScatter's private accumulator
	pmat      []float32 // packed upper-triangular Gram (fused variants)
	ldl       []float64 // LDL fallback scratch
	stageY    []float32 // staged rows of the fixed factor, omega×k
	stageVals []float32
	stageCols []int32

	// Implicit-mode and CG scratch: the confidence-scaled row buffer (4k
	// for the unrolled kernel's four strips), the CG residual/direction/
	// matvec vectors and separate right-hand side, and the iALS++ block
	// system (blkMat is a reusable header over blk — never reallocated, so
	// block solves stay allocation-free).
	cf     []float32
	rhs    []float32
	cgR    []float32
	cgP    []float32
	cgAp   []float32
	blk    []float32
	blkMat linalg.Dense
	delta  []float32
	dots   []float32 // per-nonzero f_z·x dot products, grown per row

	// timed brackets the S1/S2/S3 kernels in updateRow with wall-clock
	// probes, accumulated into stage; set only when Config.Obs is non-nil,
	// so the default path carries a single predictable branch per stage.
	timed bool
	stage obs.StageDur
}

func newWorkerState(k int) *workerState {
	return &workerState{
		smat:  linalg.NewDense(k, k),
		svec:  make([]float32, k),
		gsum:  make([]float32, k*k),
		pmat:  make([]float32, linalg.PackedLen(k)),
		ldl:   make([]float64, k),
		cf:    make([]float32, 4*k),
		rhs:   make([]float32, k),
		cgR:   make([]float32, k),
		cgP:   make([]float32, k),
		cgAp:  make([]float32, k),
		blk:   make([]float32, k*k),
		delta: make([]float32, k),
	}
}

func (ws *workerState) ensureStage(omega, k int) {
	if cap(ws.stageY) < omega*k {
		ws.stageY = make([]float32, omega*k)
	}
	ws.stageY = ws.stageY[:omega*k]
	if cap(ws.stageVals) < omega {
		ws.stageVals = make([]float32, omega)
		ws.stageCols = make([]int32, omega)
	}
	ws.stageVals = ws.stageVals[:omega]
	ws.stageCols = ws.stageCols[:omega]
}

func (ws *workerState) ensureDots(omega int) {
	if cap(ws.dots) < omega {
		ws.dots = make([]float32, omega)
	}
	ws.dots = ws.dots[:omega]
}

// updateRow solves one row's normal equations (Algorithm 2 body). With a
// warmed workerState it performs no allocations (the package tests assert
// zero allocs per row for every variant).
//
// Solver failures (ErrNotSPD, or a chaos-forced failure) take one of two
// paths. Without a Guard, or in strict mode, the pre-guard behavior holds:
// one LDLᵀ retry for borderline systems, then a hard error — typed as
// guard.RowError when a Guard is armed so strict runs name the failing
// row. With a non-strict Guard the row climbs the recovery ladder instead:
// re-solve with 2× then 10× ridge jitter added to the diagonal, fall back
// to LDLᵀ, and finally skip the row keeping its last-good factors; every
// rescue is counted on its rung. Each rung re-assembles the full system
// (Gram and right-hand side) because a rejected-but-completed solve has
// already overwritten the RHS with garbage.
func updateRow(r *sparse.CSR, fixed, out *linalg.Dense, u, iter int, xHalf bool, cfg Config, ws *workerState, ig *linalg.SharedGram) error {
	k := cfg.K
	cols, vals := r.Row(u)
	omega := len(cols)
	xu := out.Row(u)
	if omega == 0 {
		for i := range xu {
			xu[i] = 0
		}
		return nil
	}

	g := cfg.Guard
	var chaosGram, forced bool
	if g != nil && g.Chaos != nil {
		chaosGram = g.Chaos.CorruptGram(iter, u, xHalf)
		forced = g.Chaos.FailSolve(iter, u, xHalf)
	}

	src := fixed.Data
	gcols, gvals := cols, vals
	if !cfg.Flat && cfg.Variant.Local {
		// Stage the needed columns of the fixed factor contiguously (Fig. 5):
		// on the host this is cache blocking — one pass of gathered copies,
		// then dense sequential access in S1 and S2.
		ws.ensureStage(omega, k)
		for z, c := range cols {
			copy(ws.stageY[z*k:(z+1)*k], fixed.Row(int(c)))
			ws.stageCols[z] = int32(z)
		}
		copy(ws.stageVals, vals)
		src = ws.stageY
		gcols, gvals = ws.stageCols, ws.stageVals
	}

	// Regularize: λI (paper) or λ|Ω_u|I (ALS-WR).
	lam := cfg.Lambda
	if cfg.WeightedLambda {
		lam *= float32(omega)
	}

	// Implicit mode and the explicit CG solver branch to their own row
	// kernels; the rest of this function is the explicit direct path.
	if cfg.Implicit {
		return updateRowImplicit(cfg, ws, g, chaosGram, forced, src, k, gcols, gvals, lam, xu, u, omega, ig)
	}
	if cfg.Solver == SolverCG {
		return cgRow(cfg, ws, g, chaosGram, forced, src, k, gcols, gvals, lam, xu, u, omega, nil)
	}

	var t0 time.Time
	if ws.timed {
		t0 = time.Now()
	}

	if !cfg.Flat && cfg.Variant.Fused {
		// Fused S1+S2: one sweep over the gathered rows accumulates the
		// packed upper-triangular Gram and the right-hand side together,
		// then a packed Cholesky solves in place. The chaos diagonal
		// zeroing lands after λ (making the system exactly singular) but
		// before any recovery jitter, so the jitter rungs genuinely repair
		// it rather than re-assembling a healthy matrix.
		fused := linalg.GramRHSFused
		if cfg.Variant.Vector {
			fused = linalg.GramRHSFusedUnrolled
		}
		fused(src, k, gcols, gvals, ws.pmat, ws.svec)
		linalg.AddDiagPacked(ws.pmat, k, lam)
		if chaosGram {
			linalg.ZeroDiagPacked(ws.pmat, k)
		}
		if ws.timed {
			now := time.Now()
			ws.stage[obs.StageS12] += now.Sub(t0)
			t0 = now
		}
		var err error
		switch {
		case forced:
			err = guard.ErrForcedFailure
		case cfg.Solver == SolverLDL:
			err = linalg.LDLSolvePacked(ws.pmat, k, ws.svec, ws.ldl)
		default:
			err = linalg.CholeskySolvePacked(ws.pmat, k, ws.svec)
		}
		if err != nil {
			// Recovery is cold by construction, so the closures (and their
			// heap allocation) exist only on this branch: the happy path
			// stays allocation-free.
			assemble := func(extra float32) {
				fused(src, k, gcols, gvals, ws.pmat, ws.svec)
				linalg.AddDiagPacked(ws.pmat, k, lam)
				if chaosGram {
					linalg.ZeroDiagPacked(ws.pmat, k)
				}
				if extra != 0 {
					linalg.AddDiagPacked(ws.pmat, k, extra)
				}
			}
			skip, rerr := recoverRow(g, forced, lam, assemble,
				func() error { return linalg.CholeskySolvePacked(ws.pmat, k, ws.svec) },
				func() error { return linalg.LDLSolvePacked(ws.pmat, k, ws.svec, ws.ldl) },
				ws.svec, u, omega, err)
			if rerr != nil || skip {
				if ws.timed {
					ws.stage[obs.StageS3] += time.Since(t0)
				}
				return rerr
			}
		}
		if ws.timed {
			ws.stage[obs.StageS3] += time.Since(t0)
		}
		copy(xu, ws.svec)
		return nil
	}

	// S1: smat = FᵀF|Ω.
	gramKernel(cfg, src, k, gcols, ws)
	ws.smat.AddDiag(lam)
	if chaosGram {
		zeroDiagDense(ws.smat, k)
	}
	if ws.timed {
		now := time.Now()
		ws.stage[obs.StageS1] += now.Sub(t0)
		t0 = now
	}

	// S2: svec = Fᵀ r_u.
	rhsKernel(cfg, src, k, gcols, gvals, ws.svec)
	if ws.timed {
		now := time.Now()
		ws.stage[obs.StageS2] += now.Sub(t0)
		t0 = now
	}

	// S3: Cholesky solve; failures go through recoverRow (pre-guard LDLᵀ
	// fallback for borderline λ = 0 systems, or the guard's ladder).
	var err error
	switch {
	case forced:
		err = guard.ErrForcedFailure
	case cfg.Solver == SolverLDL:
		err = linalg.LDLSolve(ws.smat, ws.svec)
	default:
		err = linalg.CholeskySolve(ws.smat, ws.svec)
	}
	if err != nil {
		assemble := func(extra float32) {
			gramKernel(cfg, src, k, gcols, ws)
			ws.smat.AddDiag(lam)
			if chaosGram {
				zeroDiagDense(ws.smat, k)
			}
			if extra != 0 {
				ws.smat.AddDiag(extra)
			}
			// The S2 kernels zero svec before accumulating, so this fully
			// restores a right-hand side clobbered by a rejected solve.
			rhsKernel(cfg, src, k, gcols, gvals, ws.svec)
		}
		skip, rerr := recoverRow(g, forced, lam, assemble,
			func() error { return linalg.CholeskySolve(ws.smat, ws.svec) },
			func() error { return linalg.LDLSolve(ws.smat, ws.svec) },
			ws.svec, u, omega, err)
		if rerr != nil || skip {
			if ws.timed {
				ws.stage[obs.StageS3] += time.Since(t0)
			}
			return rerr
		}
	}
	if ws.timed {
		ws.stage[obs.StageS3] += time.Since(t0)
	}
	copy(xu, ws.svec)
	return nil
}

// gramKernel runs the variant's S1 kernel into ws.smat.
func gramKernel(cfg Config, src []float32, k int, gcols []int32, ws *workerState) {
	switch {
	case cfg.Flat || (!cfg.Variant.Register && !cfg.Variant.Vector):
		linalg.GramScatter(src, k, gcols, ws.smat.Data, ws.gsum)
	case cfg.Variant.Vector:
		linalg.GramUnrolled(src, k, gcols, ws.smat.Data)
	default:
		linalg.GramRegister(src, k, gcols, ws.smat.Data)
	}
}

// rhsKernel runs the variant's S2 kernel into svec.
func rhsKernel(cfg Config, src []float32, k int, gcols []int32, gvals, svec []float32) {
	if !cfg.Flat && cfg.Variant.Vector {
		linalg.GatherGaxpyUnrolled(src, k, gcols, gvals, svec)
	} else {
		linalg.GatherGaxpy(src, k, gcols, gvals, svec)
	}
}

// recoverRow handles a failed row solve. Without a guard, or in strict
// mode, it preserves the pre-guard behavior: one LDLᵀ retry on the
// re-assembled system (skipped for chaos-forced failures), then a hard
// error — typed via rowFailure. With a non-strict guard it climbs the
// recovery ladder; if every rung fails it reports skip=true and the caller
// keeps the row's last-good factors. On (false, nil) the scratch RHS holds
// a usable solution.
func recoverRow(g *guard.Guard, forced bool, lam float32, assemble func(extra float32), solve, ldl func() error, svec []float32, u, omega int, firstErr error) (skip bool, err error) {
	if g == nil || g.Strict {
		if !forced {
			assemble(0)
			if lerr := ldl(); lerr == nil {
				return false, nil
			} else {
				firstErr = lerr
			}
		}
		return false, rowFailure(g, u, omega, firstErr)
	}
	if climbLadder(g, forced, lam, assemble, solve, ldl, svec) {
		return false, nil
	}
	g.Recovered(guard.RungSkip)
	return true, nil
}

// climbLadder walks the guard's recovery rungs for one failed row solve:
// ridge jitter at 2× then 10× the effective λ (floored for λ = 0 runs,
// where a multiple of zero would jitter nothing), then LDLᵀ on the
// unjittered system. Each rung re-assembles the system via assemble and
// accepts only a finite solution — LDLᵀ on an indefinite matrix can
// "succeed" with garbage. Chaos-forced failures fail every rung, driving
// the row to the skip rung (handled by the caller when this returns
// false). YᵀY is PSD, so YᵀY + λI + εI is SPD for any ε > 0: the jitter
// rungs genuinely rescue rank-deficient rows rather than papering over a
// logic bug.
func climbLadder(g *guard.Guard, forced bool, lam float32, assemble func(extra float32), solve, ldl func() error, svec []float32) bool {
	if forced {
		return false
	}
	base := lam
	if base <= 0 {
		base = guard.MinJitterBase
	}
	for rung, mult := range guard.JitterMultipliers {
		assemble(base * mult)
		if solve() == nil && guard.FiniteVec(svec) {
			g.Recovered(guard.RungJitter2 + rung)
			return true
		}
	}
	assemble(0)
	if ldl() == nil && guard.FiniteVec(svec) {
		g.Recovered(guard.RungLDL)
		return true
	}
	return false
}

// rowFailure wraps a fatal row-solve error: typed guard.RowError when a
// guard is armed (strict mode), the pre-guard plain error otherwise.
func rowFailure(g *guard.Guard, u, omega int, err error) error {
	if g != nil {
		return &guard.RowError{Row: u, Omega: omega, Err: err}
	}
	return fmt.Errorf("row %d (omega=%d): %w", u, omega, err)
}

// zeroDiagDense zeroes the diagonal of the k×k scratch Gram — the dense
// twin of linalg.ZeroDiagPacked for the chaos harness.
func zeroDiagDense(a *linalg.Dense, k int) {
	for i := 0; i < k; i++ {
		a.Data[i*k+i] = 0
	}
}
