// Package host implements the ALS solver as real goroutine-parallel Go for
// the machine the benchmarks run on. It is the wall-clock counterpart to the
// simulated-device kernels in internal/kernels: the same code-variant space
// (flat baseline vs. thread batching; register/local/vector toggles) mapped
// to genuine host mechanisms:
//
//   - flat scheduling  -> one static contiguous block of rows per worker,
//     so skewed rows imbalance the workers (the SAC'15 baseline behaviour);
//   - thread batching  -> dynamic chunked work sharing via an atomic cursor;
//   - registers        -> the Fig. 3b k-strip accumulator kernel instead of
//     the k×k scratch;
//   - local memory     -> staging the gathered rows of Y (and the row's
//     ratings) into a dense per-worker buffer before computing, i.e. cache
//     blocking;
//   - vector units     -> 4-way unrolled inner loops.
//
// Every variant produces identical factors for identical inputs (the
// package tests assert this), so scheduling and kernel choice change only
// performance — the paper's definition of a code variant.
package host

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/linalg"
	"repro/internal/metrics"
	"repro/internal/sparse"
	"repro/internal/variant"
)

// Config controls one ALS training run.
type Config struct {
	K          int     // latent factor dimensionality (paper default 10)
	Lambda     float32 // regularization coefficient (paper default 0.1)
	Iterations int     // full ALS iterations (paper uses 5 for timing)
	Workers    int     // goroutines; 0 means GOMAXPROCS
	Seed       int64   // seed for Y's random initial guess

	// Flat selects the SAC'15 baseline scheduling (static contiguous row
	// blocks, scatter kernel) regardless of Variant.
	Flat bool
	// Variant selects the optimization toggles for thread-batched runs.
	Variant variant.Options

	// WeightedLambda enables the ALS-WR convention λ·|Ω_u|·I (Zhou et al.)
	// instead of the paper's plain λI.
	WeightedLambda bool

	// TrackLoss records the regularized loss (Eq. 2) after every half-step;
	// costs an extra pass over the ratings, so benchmarks leave it off.
	TrackLoss bool
	// Tolerance enables early stopping (Algorithm 1's "until it reaches the
	// maximum specified cycles or error rate"): training stops once the
	// relative loss improvement of a full iteration falls below Tolerance.
	// Implies loss evaluation each iteration. 0 disables.
	Tolerance float64
	// ChunkSize is the number of rows a batched worker claims at once;
	// 0 means a heuristic based on m and Workers.
	ChunkSize int
}

func (c *Config) setDefaults(m int) {
	if c.K <= 0 {
		c.K = 10
	}
	if c.Iterations <= 0 {
		c.Iterations = 5
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.ChunkSize <= 0 {
		c.ChunkSize = 64
		if m/(c.Workers*8) < 64 {
			c.ChunkSize = 1 + m/(c.Workers*8)
		}
	}
}

// IterStats records per-half-iteration progress when TrackLoss is on.
type IterStats struct {
	Iteration int     // 1-based full iteration
	Half      string  // "X" or "Y"
	Loss      float64 // regularized loss, Eq. 2
	Elapsed   time.Duration
}

// Result is a trained factorization.
type Result struct {
	X, Y    *linalg.Dense // user (m×k) and item (n×k) factors
	History []IterStats
	Elapsed time.Duration
	// Converged is the iteration early stopping fired at (0 when Tolerance
	// was unset; Iterations when the loop ran to completion).
	Converged int
}

// Predict returns the estimated rating r̂_ui = x_u·y_i.
func (r *Result) Predict(u, i int) float64 {
	return linalg.Dot(r.X.Row(u), r.Y.Row(i))
}

// RMSE evaluates the model on a rating matrix.
func (r *Result) RMSE(on *sparse.CSR) float64 { return metrics.RMSE(on, r.X, r.Y) }

// Train runs ALS (Algorithm 1): X and Y are updated alternately, each side
// solved exactly row-by-row via Cholesky, for Config.Iterations rounds.
func Train(mx *sparse.Matrix, cfg Config) (*Result, error) {
	m, n := mx.Rows(), mx.Cols()
	cfg.setDefaults(m)
	if mx.NNZ() == 0 {
		return nil, fmt.Errorf("host: empty rating matrix")
	}
	x := linalg.NewDense(m, cfg.K)
	y := InitialY(n, cfg.K, cfg.Seed)

	// The Y update runs the same row-update code on Rᵀ: build a CSR view of
	// the transpose by reinterpreting the CSC arrays (no copy).
	rt := &sparse.CSR{NumRows: n, NumCols: m, RowPtr: mx.C.ColPtr, ColIdx: mx.C.RowIdx, Val: mx.C.Val}

	res := &Result{X: x, Y: y}
	start := time.Now()
	prevLoss := math.Inf(1)
	for it := 1; it <= cfg.Iterations; it++ {
		if err := updateSide(mx.R, y, x, cfg); err != nil {
			return nil, fmt.Errorf("host: iteration %d update X: %w", it, err)
		}
		if cfg.TrackLoss {
			res.History = append(res.History, IterStats{
				Iteration: it, Half: "X",
				Loss:    metrics.RegularizedLoss(mx.R, x, y, float64(cfg.Lambda), cfg.WeightedLambda),
				Elapsed: time.Since(start),
			})
		}
		if err := updateSide(rt, x, y, cfg); err != nil {
			return nil, fmt.Errorf("host: iteration %d update Y: %w", it, err)
		}
		if cfg.TrackLoss {
			res.History = append(res.History, IterStats{
				Iteration: it, Half: "Y",
				Loss:    metrics.RegularizedLoss(mx.R, x, y, float64(cfg.Lambda), cfg.WeightedLambda),
				Elapsed: time.Since(start),
			})
		}
		if cfg.Tolerance > 0 {
			var loss float64
			if cfg.TrackLoss {
				loss = res.History[len(res.History)-1].Loss
			} else {
				loss = metrics.RegularizedLoss(mx.R, x, y, float64(cfg.Lambda), cfg.WeightedLambda)
			}
			res.Converged = it
			if prevLoss-loss < cfg.Tolerance*prevLoss {
				break
			}
			prevLoss = loss
		}
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// InitialY fills Y with the paper's "small random numbers" initial guess.
// Exported so the simulated-device kernels start from the identical Y and
// the variant-equivalence tests can compare factors across substrates.
func InitialY(n, k int, seed int64) *linalg.Dense {
	rng := rand.New(rand.NewSource(seed))
	y := linalg.NewDense(n, k)
	for i := range y.Data {
		y.Data[i] = rng.Float32() * 0.1
	}
	return y
}

// updateSide recomputes every row of out by solving
// (FᵀF|Ω + λI)·out_u = Fᵀ r_u with F = fixed, using the configured
// scheduling and kernel variant.
func updateSide(r *sparse.CSR, fixed, out *linalg.Dense, cfg Config) error {
	m := r.NumRows
	if m == 0 {
		return nil
	}
	workers := cfg.Workers
	if workers > m {
		workers = m
	}
	var firstErr atomic.Value
	var wg sync.WaitGroup
	var cursor atomic.Int64

	runWorker := func(w int) {
		defer wg.Done()
		ws := newWorkerState(cfg.K)
		if cfg.Flat {
			lo := w * m / workers
			hi := (w + 1) * m / workers
			for u := lo; u < hi; u++ {
				if err := updateRow(r, fixed, out, u, cfg, ws); err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
			}
			return
		}
		for {
			base := int(cursor.Add(int64(cfg.ChunkSize))) - cfg.ChunkSize
			if base >= m {
				return
			}
			end := base + cfg.ChunkSize
			if end > m {
				end = m
			}
			for u := base; u < end; u++ {
				if err := updateRow(r, fixed, out, u, cfg, ws); err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
			}
		}
	}

	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go runWorker(w)
	}
	wg.Wait()
	if err, _ := firstErr.Load().(error); err != nil {
		return err
	}
	return nil
}

// workerState is the per-goroutine scratch: the k×k normal matrix, the
// k-vector right-hand side, and the staging buffers the "local memory"
// variant copies gathered data into.
type workerState struct {
	smat      *linalg.Dense
	svec      []float32
	stageY    []float32 // staged rows of the fixed factor, omega×k
	stageVals []float32
	stageCols []int32
}

func newWorkerState(k int) *workerState {
	return &workerState{smat: linalg.NewDense(k, k), svec: make([]float32, k)}
}

func (ws *workerState) ensureStage(omega, k int) {
	if cap(ws.stageY) < omega*k {
		ws.stageY = make([]float32, omega*k)
	}
	ws.stageY = ws.stageY[:omega*k]
	if cap(ws.stageVals) < omega {
		ws.stageVals = make([]float32, omega)
		ws.stageCols = make([]int32, omega)
	}
	ws.stageVals = ws.stageVals[:omega]
	ws.stageCols = ws.stageCols[:omega]
}

// updateRow solves one row's normal equations (Algorithm 2 body).
func updateRow(r *sparse.CSR, fixed, out *linalg.Dense, u int, cfg Config, ws *workerState) error {
	k := cfg.K
	cols, vals := r.Row(u)
	omega := len(cols)
	xu := out.Row(u)
	if omega == 0 {
		for i := range xu {
			xu[i] = 0
		}
		return nil
	}

	src := fixed.Data
	gcols, gvals := cols, vals
	if !cfg.Flat && cfg.Variant.Local {
		// Stage the needed columns of the fixed factor contiguously (Fig. 5):
		// on the host this is cache blocking — one pass of gathered copies,
		// then dense sequential access in S1 and S2.
		ws.ensureStage(omega, k)
		for z, c := range cols {
			copy(ws.stageY[z*k:(z+1)*k], fixed.Row(int(c)))
			ws.stageCols[z] = int32(z)
		}
		copy(ws.stageVals, vals)
		src = ws.stageY
		gcols, gvals = ws.stageCols, ws.stageVals
	}

	// S1: smat = FᵀF|Ω.
	switch {
	case cfg.Flat || (!cfg.Variant.Register && !cfg.Variant.Vector):
		linalg.GramScatter(src, k, gcols, ws.smat.Data)
	case cfg.Variant.Vector:
		linalg.GramUnrolled(src, k, gcols, ws.smat.Data)
	default:
		linalg.GramRegister(src, k, gcols, ws.smat.Data)
	}
	// Regularize: λI (paper) or λ|Ω_u|I (ALS-WR).
	lam := cfg.Lambda
	if cfg.WeightedLambda {
		lam *= float32(omega)
	}
	ws.smat.AddDiag(lam)

	// S2: svec = Fᵀ r_u.
	if !cfg.Flat && cfg.Variant.Vector {
		linalg.GatherGaxpyUnrolled(src, k, gcols, gvals, ws.svec)
	} else {
		linalg.GatherGaxpy(src, k, gcols, gvals, ws.svec)
	}

	// S3: Cholesky solve; LDL fallback for borderline systems (λ = 0).
	if err := linalg.CholeskySolve(ws.smat, ws.svec); err != nil {
		switch {
		case cfg.Flat || (!cfg.Variant.Register && !cfg.Variant.Vector):
			linalg.GramScatter(src, k, gcols, ws.smat.Data)
		case cfg.Variant.Vector:
			linalg.GramUnrolled(src, k, gcols, ws.smat.Data)
		default:
			linalg.GramRegister(src, k, gcols, ws.smat.Data)
		}
		ws.smat.AddDiag(lam)
		if err := linalg.LDLSolve(ws.smat, ws.svec); err != nil {
			return fmt.Errorf("row %d (omega=%d): %w", u, omega, err)
		}
	}
	copy(xu, ws.svec)
	return nil
}
