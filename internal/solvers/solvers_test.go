package solvers

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/host"
	"repro/internal/metrics"
	"repro/internal/sparse"
)

var densePreset = dataset.Preset{
	Name: "DENSE", Long: "dense synthetic", Users: 300, Items: 200,
	NNZ: 12000, MinVal: 1, MaxVal: 5, UserSkew: 0.6, ItemSkew: 0.6,
}

func denseMatrix(t testing.TB, seed int64) *sparse.Matrix {
	t.Helper()
	return densePreset.Generate(seed).Matrix
}

func TestSGDConverges(t *testing.T) {
	mx := denseMatrix(t, 1)
	x, y, err := TrainSGD(mx, SGDConfig{K: 8, Lambda: 0.02, Epochs: 30, Seed: 2, LearnRate: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	rmse := metrics.RMSE(mx.R, x, y)
	if math.IsNaN(rmse) || rmse > 0.8 {
		t.Fatalf("SGD training RMSE = %g, want < 0.8", rmse)
	}
}

func TestSGDClipPreventsBlowup(t *testing.T) {
	mx := denseMatrix(t, 2)
	// A deliberately hot learning rate: without clipping this can diverge;
	// with clipping the factors must stay finite.
	x, y, err := TrainSGD(mx, SGDConfig{K: 8, Lambda: 0.02, Epochs: 10, Seed: 3,
		LearnRate: 0.15, ClipWeight: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range x.Data {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatal("SGD factors not finite")
		}
	}
	_ = y
}

func TestSGDEpochsImprove(t *testing.T) {
	mx := denseMatrix(t, 3)
	rmse := func(epochs int) float64 {
		x, y, err := TrainSGD(mx, SGDConfig{K: 8, Lambda: 0.02, Epochs: epochs, Seed: 4, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		return metrics.RMSE(mx.R, x, y)
	}
	if r30, r2 := rmse(30), rmse(2); !(r30 < r2) {
		t.Fatalf("SGD did not improve with epochs: 2ep %g vs 30ep %g", r2, r30)
	}
}

func TestCCDConverges(t *testing.T) {
	mx := denseMatrix(t, 5)
	x, y, err := TrainCCD(mx, CCDConfig{K: 8, Lambda: 0.1, Iterations: 8, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	rmse := metrics.RMSE(mx.R, x, y)
	if math.IsNaN(rmse) || rmse > 0.8 {
		t.Fatalf("CCD training RMSE = %g, want < 0.8", rmse)
	}
}

// TestCCDMatchesALSQuality: CCD++ minimizes the same objective; its fit
// should be in the same ballpark as ALS on the same data.
func TestCCDMatchesALSQuality(t *testing.T) {
	mx := denseMatrix(t, 7)
	als, err := host.Train(mx, host.Config{K: 8, Lambda: 0.1, Iterations: 8, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	x, y, err := TrainCCD(mx, CCDConfig{K: 8, Lambda: 0.1, Iterations: 8, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	alsRMSE := als.RMSE(mx.R)
	ccdRMSE := metrics.RMSE(mx.R, x, y)
	if ccdRMSE > alsRMSE*1.5+0.1 {
		t.Fatalf("CCD RMSE %g much worse than ALS %g", ccdRMSE, alsRMSE)
	}
}

func TestCCDWorkerInvariance(t *testing.T) {
	mx := denseMatrix(t, 9)
	run := func(workers int) []float32 {
		x, _, err := TrainCCD(mx, CCDConfig{K: 6, Lambda: 0.1, Iterations: 3, Seed: 10, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return x.Data
	}
	a, b := run(1), run(8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("CCD factors differ across worker counts at %d: %g vs %g", i, a[i], b[i])
		}
	}
}

func TestImplicitConverges(t *testing.T) {
	mx := denseMatrix(t, 11)
	x, y, err := TrainImplicit(mx, ImplicitConfig{K: 8, Lambda: 0.1, Alpha: 10, Iterations: 6, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	// Implicit models predict preference ≈ 1 on observed pairs.
	var obs, unobs float64
	var nObs, nUnobs int
	r := mx.R
	for u := 0; u < r.NumRows && nUnobs < 2000; u++ {
		cols, _ := r.Row(u)
		rated := map[int]bool{}
		for _, c := range cols {
			rated[int(c)] = true
			obs += PreferenceScore(x, y, u, int(c))
			nObs++
		}
		for i := 0; i < mx.Cols() && nUnobs < 2000; i += 7 {
			if !rated[i] {
				unobs += PreferenceScore(x, y, u, i)
				nUnobs++
			}
		}
	}
	obsMean := obs / float64(nObs)
	unobsMean := unobs / float64(nUnobs)
	if !(obsMean > unobsMean+0.2) {
		t.Fatalf("implicit model does not separate observed (%.3f) from unobserved (%.3f)", obsMean, unobsMean)
	}
	if obsMean < 0.5 || obsMean > 1.3 {
		t.Fatalf("observed preference mean %.3f far from 1", obsMean)
	}
}

// TestImplicitReferenceLossConverges pins the reference loop's convergence:
// each exact ALS sweep minimizes the Hu et al. objective over one factor
// with the other fixed, so the implicit loss must be non-increasing across
// iteration counts and strictly lower after several sweeps than after one.
func TestImplicitReferenceLossConverges(t *testing.T) {
	mx := denseMatrix(t, 15)
	cfg := ImplicitConfig{K: 8, Lambda: 0.1, Alpha: 10, Seed: 16, Workers: 1}
	var prev float64 = math.Inf(1)
	var first, last float64
	for _, iters := range []int{1, 2, 4, 6} {
		c := cfg
		c.Iterations = iters
		x, y, err := TrainImplicit(mx, c)
		if err != nil {
			t.Fatal(err)
		}
		loss := metrics.ImplicitLoss(mx.R, x, y, float64(c.Alpha), float64(c.Lambda))
		if math.IsNaN(loss) || math.IsInf(loss, 0) {
			t.Fatalf("implicit loss after %d iterations is %g", iters, loss)
		}
		// Identical seeds make run i a strict prefix of run i+1, so the
		// loss sequence is the trajectory of one run sampled at 1,2,4,6.
		if loss > prev*(1+1e-9) {
			t.Fatalf("implicit loss rose from %g to %g at %d iterations", prev, loss, iters)
		}
		prev = loss
		if iters == 1 {
			first = loss
		}
		last = loss
	}
	if !(last < first*0.999) {
		t.Fatalf("implicit loss did not meaningfully converge: %g after 1 iter, %g after 6", first, last)
	}
}

func TestImplicitEmptyRejected(t *testing.T) {
	coo := sparse.NewCOO(2, 2)
	empty, err := sparse.NewMatrix(coo)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := TrainImplicit(empty, ImplicitConfig{}); err == nil {
		t.Fatal("accepted empty matrix")
	}
	if _, _, err := TrainSGD(empty, SGDConfig{}); err == nil {
		t.Fatal("accepted empty matrix")
	}
	if _, _, err := TrainCCD(empty, CCDConfig{}); err == nil {
		t.Fatal("accepted empty matrix")
	}
}

func TestImplicitWorkerInvariance(t *testing.T) {
	mx := denseMatrix(t, 13)
	run := func(workers int) []float32 {
		x, _, err := TrainImplicit(mx, ImplicitConfig{K: 6, Lambda: 0.1, Alpha: 5, Iterations: 2, Seed: 14, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return x.Data
	}
	a, b := run(1), run(8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("implicit factors differ across worker counts at %d", i)
		}
	}
}

func TestImplicitRNGDeterministic(t *testing.T) {
	if implicitRNG(5).Int63() != implicitRNG(5).Int63() {
		t.Fatal("rng helper not deterministic")
	}
}
