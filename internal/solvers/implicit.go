// Package solvers implements the matrix-factorization solvers surrounding
// the paper's explicit-feedback ALS:
//
//   - implicit-feedback ALS (Hu/Koren/Volinsky) — the paper's introduction
//     names the ability to "incorporate implicit ratings" as a key ALS
//     advantage over SGD;
//   - Hogwild-style parallel SGD and CCD++ — the two alternative solver
//     families of the related-work section, which the conclusion proposes
//     extending the technique to.
//
// All solvers share the factor-matrix conventions of internal/host (X is
// m×k, Y is n×k, row-major float32) so models interoperate with the
// metrics and recommendation helpers.
package solvers

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/host"
	"repro/internal/linalg"
	"repro/internal/sparse"
)

// ImplicitConfig configures implicit-feedback ALS. Ratings are treated as
// observation strengths: preference p_ui = 1 for every observed pair, with
// confidence c_ui = 1 + Alpha·r_ui.
type ImplicitConfig struct {
	K          int
	Lambda     float32
	Alpha      float32 // confidence scaling (default 40, following the paper's reference [1]'s source)
	Iterations int
	Workers    int
	Seed       int64
}

func (c *ImplicitConfig) setDefaults() {
	if c.K <= 0 {
		c.K = 10
	}
	if c.Alpha <= 0 {
		c.Alpha = 40
	}
	if c.Iterations <= 0 {
		c.Iterations = 5
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
}

// TrainImplicit factorizes an implicit-feedback matrix. Per user:
//
//	x_u = (YᵀY + Yᵀ(C_u−I)Y + λI)⁻¹ Yᵀ C_u p_u
//
// using the standard decomposition so the dense YᵀY Gram matrix is computed
// once per half-iteration and each user adds only its observed rank-|Ω|
// correction.
func TrainImplicit(mx *sparse.Matrix, cfg ImplicitConfig) (*linalg.Dense, *linalg.Dense, error) {
	cfg.setDefaults()
	if mx.NNZ() == 0 {
		return nil, nil, fmt.Errorf("solvers: empty matrix")
	}
	m, n, k := mx.Rows(), mx.Cols(), cfg.K
	x := linalg.NewDense(m, k)
	y := host.InitialY(n, k, cfg.Seed)
	rt := &sparse.CSR{NumRows: n, NumCols: m, RowPtr: mx.C.ColPtr, ColIdx: mx.C.RowIdx, Val: mx.C.Val}

	for it := 0; it < cfg.Iterations; it++ {
		if err := implicitSide(mx.R, y, x, cfg); err != nil {
			return nil, nil, fmt.Errorf("solvers: implicit iteration %d (X): %w", it+1, err)
		}
		if err := implicitSide(rt, x, y, cfg); err != nil {
			return nil, nil, fmt.Errorf("solvers: implicit iteration %d (Y): %w", it+1, err)
		}
	}
	return x, y, nil
}

func implicitSide(r *sparse.CSR, fixed, out *linalg.Dense, cfg ImplicitConfig) error {
	k := cfg.K
	// Dense Gram over the whole fixed factor: G = FᵀF (computed once).
	gram := make([]float64, k*k)
	for row := 0; row < fixed.Rows; row++ {
		f := fixed.Row(row)
		for i := 0; i < k; i++ {
			fi := float64(f[i])
			for j := i; j < k; j++ {
				gram[i*k+j] += fi * float64(f[j])
			}
		}
	}
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			gram[j*k+i] = gram[i*k+j]
		}
	}

	workers := cfg.Workers
	if workers > r.NumRows {
		workers = r.NumRows
	}
	if workers < 1 {
		workers = 1
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	var firstErr atomic.Value
	worker := func() {
		defer wg.Done()
		smat := linalg.NewDense(k, k)
		svec := make([]float32, k)
		for {
			u := int(cursor.Add(1)) - 1
			if u >= r.NumRows {
				return
			}
			cols, vals := r.Row(u)
			xu := out.Row(u)
			if len(cols) == 0 {
				for i := range xu {
					xu[i] = 0
				}
				continue
			}
			// smat = G + Σ α·r · f fᵀ + λI ; svec = Σ (1+α·r) · f.
			for i := 0; i < k; i++ {
				for j := 0; j < k; j++ {
					smat.Data[i*k+j] = float32(gram[i*k+j])
				}
				svec[i] = 0
			}
			for z, c := range cols {
				conf := cfg.Alpha * vals[z] // c_ui − 1
				f := fixed.Row(int(c))
				for i := 0; i < k; i++ {
					ci := conf * f[i]
					row := smat.Data[i*k:]
					for j := 0; j < k; j++ {
						row[j] += ci * f[j]
					}
					svec[i] += (1 + conf) * f[i]
				}
			}
			smat.AddDiag(cfg.Lambda)
			if err := linalg.CholeskySolve(smat, svec); err != nil {
				firstErr.CompareAndSwap(nil, fmt.Errorf("user %d: %w", u, err))
				return
			}
			copy(xu, svec)
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go worker()
	}
	wg.Wait()
	if err, _ := firstErr.Load().(error); err != nil {
		return err
	}
	return nil
}

// PreferenceScore ranks items for implicit models: the predicted preference
// x_u·y_i (≈1 for strong preferences, ≈0 for none).
func PreferenceScore(x, y *linalg.Dense, u, i int) float64 {
	return linalg.Dot(x.Row(u), y.Row(i))
}

// implicitRNG gives solvers a deterministic RNG helper.
func implicitRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
