package solvers_test

import (
	"bufio"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestImplicitSmoke is the implicit-mode end-to-end check the CI lane runs
// (make implicit-smoke): build the real alstrain binary, train the YMR4
// preset in implicit mode through both fast paths the PR promotes — the
// matrix-free CG solver and the iALS++ block-coordinate updates — and
// require, per run: exit 0, held-out recall@10 at least the floor, and a
// /metrics exposition that passes the strict parser and carries the
// per-mode stage attribution (CG spends s2+s3, block sweeps spend s1+s2,
// both labeled mode="implicit").
func TestImplicitSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the alstrain binary")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "alstrain")
	build := exec.Command("go", "build", "-o", bin, "repro/cmd/alstrain")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building alstrain: %v\n%s", err, out)
	}

	// YMR4 at this scale has ~1100 items: random recall@10 ≈ 0.9%, the
	// trained implicit model measures ≈ 9-11%. The floor catches a model
	// that degenerated to noise without flaking on split variance.
	const recallFloor = 0.04
	for _, tc := range []struct {
		name       string
		extraFlags []string
		stages     []string
	}{
		{
			name:       "cg",
			extraFlags: []string{"-solver", "cg", "-cg-iters", "16"},
			stages:     []string{`stage="s2",mode="implicit"`, `stage="s3",mode="implicit"`},
		},
		{
			name:       "block",
			extraFlags: []string{"-block-size", "4"},
			stages:     []string{`stage="s1+s2",mode="implicit"`},
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			args := append([]string{
				"-preset", "YMR4", "-scale", "0.02", "-k", "8", "-iters", "5",
				"-implicit", "-alpha", "5", "-test-frac", "0.1",
				"-debug-addr", "127.0.0.1:0", "-debug-linger", "30s",
			}, tc.extraFlags...)
			cmd := exec.Command(bin, args...)
			stdout, err := cmd.StdoutPipe()
			if err != nil {
				t.Fatal(err)
			}
			cmd.Stderr = os.Stderr
			if err := cmd.Start(); err != nil {
				t.Fatal(err)
			}
			defer func() {
				cmd.Process.Kill()
				cmd.Wait()
			}()

			// Follow stdout for the debug address, the recall line, and the
			// linger marker that means training (and metric flushing) is done.
			var addr string
			recall := -1.0
			sc := bufio.NewScanner(stdout)
			deadline := time.After(60 * time.Second)
			lines := make(chan string)
			go func() {
				defer close(lines)
				for sc.Scan() {
					lines <- sc.Text()
				}
			}()
		wait:
			for {
				select {
				case line, ok := <-lines:
					if !ok {
						t.Fatal("alstrain exited before lingering")
					}
					if rest, found := strings.CutPrefix(line, "debug server listening on http://"); found {
						addr = rest
					}
					if i := strings.Index(line, "recall@10: "); i >= 0 {
						fields := strings.Fields(line[i:])
						if len(fields) >= 2 {
							if v, err := strconv.ParseFloat(fields[1], 64); err == nil {
								recall = v
							}
						}
					}
					if strings.HasPrefix(line, "debug server lingering") {
						break wait
					}
				case <-deadline:
					t.Fatal("timed out waiting for alstrain")
				}
			}
			if addr == "" {
				t.Fatal("alstrain never printed the debug address")
			}
			if recall < 0 {
				t.Fatal("alstrain never printed recall@10")
			}
			if recall < recallFloor {
				t.Errorf("implicit %s recall@10 = %g, want ≥ %g", tc.name, recall, recallFloor)
			}

			resp, err := http.Get("http://" + addr + "/metrics")
			if err != nil {
				t.Fatal(err)
			}
			b, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			body := string(b)
			if n, err := obs.ValidateExposition(strings.NewReader(body)); err != nil || n == 0 {
				t.Fatalf("/metrics invalid exposition (%d samples): %v\n%s", n, err, body)
			}
			for _, want := range append([]string{
				`als_train_info{program="alstrain"`,
				`mode="implicit"`,
				"als_train_iteration 5",
			}, tc.stages...) {
				if !strings.Contains(body, want) {
					t.Errorf("/metrics missing %q", want)
				}
			}
			// The explicit-mode label must NOT appear: every stage second of
			// an implicit run is attributed to its mode.
			if strings.Contains(body, `mode="explicit"`) {
				t.Errorf(`/metrics attributes stage time to mode="explicit" in an implicit run`)
			}
		})
	}
}
