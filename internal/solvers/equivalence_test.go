package solvers

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/host"
	"repro/internal/linalg"
	"repro/internal/metrics"
	"repro/internal/variant"
)

// TestHostImplicitMatchesReference is the fast-path promotion contract:
// the host training loop in implicit mode — shared FᵀF Gram, fused
// confidence-weighted rank-1 kernels, packed Cholesky — must reproduce
// this package's straightforward reference loop bit for bit, across every
// bit-identical variant and across worker counts. The reference is the
// spec; the fast path is only allowed to be faster, never different.
func TestHostImplicitMatchesReference(t *testing.T) {
	mx := denseMatrix(t, 21)
	const (
		k     = 8
		lam   = float32(0.1)
		alpha = float32(40)
		iters = 3
		seed  = int64(17)
	)
	refX, refY, err := TrainImplicit(mx, ImplicitConfig{
		K: k, Lambda: lam, Alpha: alpha, Iterations: iters, Seed: seed, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		flat bool
		v    variant.Options
	}{
		{name: "flat", flat: true},
		{name: "tb"},
		{name: "tb+loc", v: variant.Options{Local: true}},
		{name: "tb+fus", v: variant.Options{Fused: true}},
		{name: "tb+loc+fus", v: variant.Options{Local: true, Fused: true}},
		{name: "tb+reg", v: variant.Options{Register: true}},
	}
	for _, tc := range cases {
		for _, workers := range []int{1, 4} {
			res, err := host.Train(mx, host.Config{
				K: k, Lambda: lam, Iterations: iters, Seed: seed,
				Implicit: true, Alpha: alpha,
				Flat: tc.flat, Variant: tc.v, Workers: workers,
			})
			if err != nil {
				t.Fatalf("%s w=%d: %v", tc.name, workers, err)
			}
			if d := linalg.MaxAbsDiff(refX, res.X); d != 0 {
				t.Errorf("%s w=%d: host X differs from reference by %g", tc.name, workers, d)
			}
			if d := linalg.MaxAbsDiff(refY, res.Y); d != 0 {
				t.Errorf("%s w=%d: host Y differs from reference by %g", tc.name, workers, d)
			}
		}
	}
}

// TestHostImplicitCGMatchesReference pins the CG solver's contract: run to
// its documented worst-case budget (2k iterations in float32 — the exact
// k-step termination bound does not survive rounding), factors land within
// 1e-2 of the direct reference, and the models are interchangeable for
// ranking: identical recall@10 on a held-out split.
func TestHostImplicitCGMatchesReference(t *testing.T) {
	full := denseMatrix(t, 22)
	train, test, err := dataset.Split(full, 0.2, 23)
	if err != nil {
		t.Fatal(err)
	}
	const k = 8
	cfg := ImplicitConfig{K: k, Lambda: 0.1, Alpha: 40, Iterations: 3, Seed: 19, Workers: 1}
	refX, refY, err := TrainImplicit(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := host.Train(train, host.Config{
		K: k, Lambda: 0.1, Iterations: 3, Seed: 19,
		Implicit: true, Alpha: 40, Solver: host.SolverCG, CGIters: 2 * k,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := linalg.MaxAbsDiff(refX, res.X); d > 1e-2 {
		t.Errorf("CG X differs from direct reference by %g, want ≤ 1e-2", d)
	}
	if d := linalg.MaxAbsDiff(refY, res.Y); d > 1e-2 {
		t.Errorf("CG Y differs from direct reference by %g, want ≤ 1e-2", d)
	}
	_, refRecall := metrics.PrecisionRecallAtN(train.R, test.R, refX, refY, 10, 0)
	_, cgRecall := metrics.PrecisionRecallAtN(train.R, test.R, res.X, res.Y, 10, 0)
	if refRecall != cgRecall {
		t.Errorf("recall@10 differs: reference %g, CG %g", refRecall, cgRecall)
	}
}

// TestImplicitRecallFloor is the quality-regression gate for the whole
// implicit family: on a held-out split, every solver configuration must
// beat both a popularity-free random floor and an absolute recall@10
// floor, and the fast paths must stay within a whisker of the reference.
func TestImplicitRecallFloor(t *testing.T) {
	full := denseMatrix(t, 25)
	train, test, err := dataset.Split(full, 0.2, 26)
	if err != nil {
		t.Fatal(err)
	}
	// α=5 suits this small dense synthetic: its ratings run 1–5, so α=40
	// would push confidences past 200 and drown the planted structure in
	// the popularity head.
	const (
		k     = 8
		alpha = float32(5)
	)
	refX, refY, err := TrainImplicit(train, ImplicitConfig{
		K: k, Lambda: 0.1, Alpha: alpha, Iterations: 5, Seed: 27, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, refRecall := metrics.PrecisionRecallAtN(train.R, test.R, refX, refY, 10, 0)
	// ~200 items, 10 recommended: random recall ≈ 5%. The trained model
	// must clear double that with margin (measured ≈ 0.136).
	const floor = 0.10
	if math.IsNaN(refRecall) || refRecall < floor {
		t.Fatalf("reference implicit recall@10 = %g, want ≥ %g", refRecall, floor)
	}
	for name, hc := range map[string]host.Config{
		"direct": {K: k, Lambda: 0.1, Iterations: 5, Seed: 27, Implicit: true, Alpha: alpha},
		"cg":     {K: k, Lambda: 0.1, Iterations: 5, Seed: 27, Implicit: true, Alpha: alpha, Solver: host.SolverCG, CGIters: 2 * k},
		"block":  {K: k, Lambda: 0.1, Iterations: 5, Seed: 27, Implicit: true, Alpha: alpha, BlockSize: 4},
	} {
		res, err := host.Train(train, hc)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		_, recall := metrics.PrecisionRecallAtN(train.R, test.R, res.X, res.Y, 10, 0)
		if math.IsNaN(recall) || recall < floor {
			t.Errorf("%s implicit recall@10 = %g, want ≥ %g", name, recall, floor)
		}
		if recall < refRecall-0.05 {
			t.Errorf("%s recall@10 = %g regressed more than 0.05 below reference %g", name, recall, refRecall)
		}
	}
}
