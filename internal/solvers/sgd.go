package solvers

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/host"
	"repro/internal/linalg"
	"repro/internal/sparse"
)

// SGDConfig configures Hogwild-style parallel stochastic gradient descent
// (Recht et al., the lock-free scheme of the paper's related work). Updates
// race benignly across goroutines: conflicting factor writes are rare on
// sparse data and the algorithm tolerates them.
type SGDConfig struct {
	K          int
	Lambda     float32 // L2 regularization per update
	LearnRate  float32 // initial learning rate (default 0.01)
	Decay      float32 // multiplicative per-epoch decay (default 0.9)
	Epochs     int     // passes over the ratings (default 10)
	Workers    int
	Seed       int64
	ClipWeight float32 // gradient clip threshold; 0 disables
}

func (c *SGDConfig) setDefaults() {
	if c.K <= 0 {
		c.K = 10
	}
	if c.LearnRate <= 0 {
		c.LearnRate = 0.01
	}
	if c.Decay <= 0 {
		c.Decay = 0.9
	}
	if c.Epochs <= 0 {
		c.Epochs = 10
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
}

// TrainSGD factorizes by Hogwild SGD. Per observed rating (u,i,r):
//
//	e = r − x_u·y_i
//	x_u += η(e·y_i − λ·x_u);  y_i += η(e·x_u − λ·y_i)
//
// Entries are processed in a per-epoch shuffled order, partitioned across
// workers without locks.
func TrainSGD(mx *sparse.Matrix, cfg SGDConfig) (*linalg.Dense, *linalg.Dense, error) {
	cfg.setDefaults()
	if mx.NNZ() == 0 {
		return nil, nil, fmt.Errorf("solvers: empty matrix")
	}
	m, n, k := mx.Rows(), mx.Cols(), cfg.K
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Both factors start random for SGD (zero X would zero the y-gradient).
	x := host.InitialY(m, k, cfg.Seed+1)
	y := host.InitialY(n, k, cfg.Seed+2)

	// Flatten the ratings once into (u, i, r) triples for shuffling.
	type trip struct {
		u, i int32
		r    float32
	}
	trips := make([]trip, 0, mx.NNZ())
	r := mx.R
	for u := 0; u < m; u++ {
		cols, vals := r.Row(u)
		for j, c := range cols {
			trips = append(trips, trip{u: int32(u), i: c, r: vals[j]})
		}
	}

	eta := cfg.LearnRate
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(trips), func(a, b int) { trips[a], trips[b] = trips[b], trips[a] })
		workers := cfg.Workers
		if workers > len(trips) {
			workers = len(trips)
		}
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			lo := w * len(trips) / workers
			hi := (w + 1) * len(trips) / workers
			go func(chunk []trip) {
				defer wg.Done()
				for _, t := range chunk {
					xu := x.Row(int(t.u))
					yi := y.Row(int(t.i))
					var pred float32
					for d := 0; d < k; d++ {
						pred += xu[d] * yi[d]
					}
					e := t.r - pred
					if cfg.ClipWeight > 0 {
						if e > cfg.ClipWeight {
							e = cfg.ClipWeight
						} else if e < -cfg.ClipWeight {
							e = -cfg.ClipWeight
						}
					}
					for d := 0; d < k; d++ {
						xd, yd := xu[d], yi[d]
						xu[d] = xd + eta*(e*yd-cfg.Lambda*xd)
						yi[d] = yd + eta*(e*xd-cfg.Lambda*yd)
					}
				}
			}(trips[lo:hi])
		}
		wg.Wait()
		eta *= cfg.Decay
	}
	return x, y, nil
}

// CCDConfig configures CCD++ (Yu et al.), the cyclic-coordinate-descent
// solver of the related work: factors are updated one rank at a time, each
// rank-one subproblem solved coordinate-wise in closed form.
type CCDConfig struct {
	K          int
	Lambda     float32
	Iterations int // outer passes over the k ranks (default 5)
	Workers    int
	Seed       int64
}

func (c *CCDConfig) setDefaults() {
	if c.K <= 0 {
		c.K = 10
	}
	if c.Iterations <= 0 {
		c.Iterations = 5
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
}

// TrainCCD factorizes by CCD++. It maintains the residual matrix
// E = R − X·Yᵀ implicitly by adding back the active rank before each
// rank-one refit:
//
//	for each rank d: Ê = E + x_d·y_dᵀ, then alternately
//	  x_ud = Σ_i Ê_ui·y_id / (λ + Σ_i y_id²)   over u (and symmetrically y)
func TrainCCD(mx *sparse.Matrix, cfg CCDConfig) (*linalg.Dense, *linalg.Dense, error) {
	cfg.setDefaults()
	if mx.NNZ() == 0 {
		return nil, nil, fmt.Errorf("solvers: empty matrix")
	}
	m, n, k := mx.Rows(), mx.Cols(), cfg.K
	x := linalg.NewDense(m, k)
	y := host.InitialY(n, k, cfg.Seed)

	r := mx.R
	c := mx.C
	// Residual values aligned with the CSR (row-major) nonzero layout, plus
	// the CSC permutation to keep the column view in sync.
	resid := make([]float32, r.NNZ())
	copy(resid, r.Val)
	// cscToCSR[p] = position in the CSR value array of the CSC entry p.
	cscToCSR := buildCSCPerm(r, c)

	for it := 0; it < cfg.Iterations; it++ {
		for d := 0; d < k; d++ {
			// Ê = E + x_d y_dᵀ over observed entries.
			addRankOne(r, resid, x, y, d, +1)
			// Inner alternations on the rank-one subproblem.
			for inner := 0; inner < 2; inner++ {
				updateRankRows(r, resid, x, y, d, cfg)
				updateRankCols(c, cscToCSR, resid, x, y, d, cfg)
			}
			// E = Ê − x_d y_dᵀ with the refreshed factors.
			addRankOne(r, resid, x, y, d, -1)
		}
	}
	return x, y, nil
}

func buildCSCPerm(r *sparse.CSR, c *sparse.CSC) []int64 {
	next := make([]int64, r.NumCols)
	copy(next, c.ColPtr[:r.NumCols])
	perm := make([]int64, r.NNZ())
	for u := 0; u < r.NumRows; u++ {
		lo, hi := r.RowPtr[u], r.RowPtr[u+1]
		for p := lo; p < hi; p++ {
			col := r.ColIdx[p]
			perm[next[col]] = p
			next[col]++
		}
	}
	return perm
}

func addRankOne(r *sparse.CSR, resid []float32, x, y *linalg.Dense, d int, sign float32) {
	k := x.Cols
	for u := 0; u < r.NumRows; u++ {
		xd := x.Data[u*k+d]
		if xd == 0 {
			continue
		}
		lo, hi := r.RowPtr[u], r.RowPtr[u+1]
		for p := lo; p < hi; p++ {
			resid[p] += sign * xd * y.Data[int(r.ColIdx[p])*k+d]
		}
	}
}

func updateRankRows(r *sparse.CSR, resid []float32, x, y *linalg.Dense, d int, cfg CCDConfig) {
	k := x.Cols
	parallelRows(r.NumRows, cfg.Workers, func(u int) {
		lo, hi := r.RowPtr[u], r.RowPtr[u+1]
		if lo == hi {
			x.Data[u*k+d] = 0
			return
		}
		var num, den float64
		for p := lo; p < hi; p++ {
			yd := float64(y.Data[int(r.ColIdx[p])*k+d])
			num += float64(resid[p]) * yd
			den += yd * yd
		}
		x.Data[u*k+d] = float32(num / (den + float64(cfg.Lambda)))
	})
}

func updateRankCols(c *sparse.CSC, perm []int64, resid []float32, x, y *linalg.Dense, d int, cfg CCDConfig) {
	k := y.Cols
	parallelRows(c.NumCols, cfg.Workers, func(i int) {
		lo, hi := c.ColPtr[i], c.ColPtr[i+1]
		if lo == hi {
			y.Data[i*k+d] = 0
			return
		}
		var num, den float64
		for p := lo; p < hi; p++ {
			xd := float64(x.Data[int(c.RowIdx[p])*k+d])
			num += float64(resid[perm[p]]) * xd
			den += xd * xd
		}
		y.Data[i*k+d] = float32(num / (den + float64(cfg.Lambda)))
	})
}

// parallelRows applies fn to every index in [0, n) across workers.
func parallelRows(n, workers int, fn func(int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		lo := w * n / workers
		hi := (w + 1) * n / workers
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}
