package checkpoint

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"
)

// encodedLen measures the exact on-disk size of a state.
func encodedLen(t *testing.T, st *State) int64 {
	t.Helper()
	var buf bytes.Buffer
	if err := Encode(&buf, st); err != nil {
		t.Fatal(err)
	}
	return int64(buf.Len())
}

// TestCrashAtEveryByte is the acceptance sweep: for every byte offset N of
// the second checkpoint's write, die at exactly N (short write at the
// boundary, everything after lost), then recover. Recovery must always
// find the first checkpoint bit-exact — the torn temp file must never be
// visible under a valid name, before or after the simulated power loss.
func TestCrashAtEveryByte(t *testing.T) {
	first := testState(1, 1)
	second := testState(2, 2)
	size := encodedLen(t, second)
	// A budget of exactly size is not a crash: the write fits, Save must
	// succeed and the new checkpoint must be recoverable.
	{
		fsys := NewMemFS()
		if _, err := Save(fsys, "ckpts", first); err != nil {
			t.Fatal(err)
		}
		fsys.SetFaults(Faults{FailWriteAfter: fsys.BytesWritten() + size})
		if _, err := Save(fsys, "ckpts", second); err != nil {
			t.Fatalf("exact-budget Save failed: %v", err)
		}
		st, _, err := LoadLatest(fsys, "ckpts")
		if err != nil {
			t.Fatal(err)
		}
		statesEqual(t, second, st)
	}
	for n := int64(1); n < size; n++ {
		fsys := NewMemFS()
		if _, err := Save(fsys, "ckpts", first); err != nil {
			t.Fatal(err)
		}
		base := fsys.BytesWritten()
		fsys.SetFaults(Faults{FailWriteAfter: base + n})
		if _, err := Save(fsys, "ckpts", second); !errors.Is(err, ErrInjected) {
			t.Fatalf("crash at byte %d: Save err = %v, want injected fault", n, err)
		}
		// Before the crash: the partial write must be invisible to recovery.
		st, path, err := LoadLatest(fsys, "ckpts")
		if err != nil || filepath.Base(path) != FileName(1) {
			t.Fatalf("crash at byte %d: recovery = %s, %v", n, path, err)
		}
		statesEqual(t, first, st)
		// After power loss: only durable bytes survive; same recovery.
		fsys.Crash()
		st, path, err = LoadLatest(fsys, "ckpts")
		if err != nil || filepath.Base(path) != FileName(1) {
			t.Fatalf("crash at byte %d after power loss: recovery = %s, %v", n, path, err)
		}
		statesEqual(t, first, st)
	}
}

// TestSaveSurvivesPowerLoss asserts the durability ordering of Save (data
// fsync before rename): a crash immediately after a successful Save must
// leave the full checkpoint durable. Deleting the Sync call from
// WriteFileAtomic makes this fail.
func TestSaveSurvivesPowerLoss(t *testing.T) {
	fsys := NewMemFS()
	st := testState(4, 3)
	if _, err := Save(fsys, "ckpts", st); err != nil {
		t.Fatal(err)
	}
	fsys.Crash()
	got, path, err := LoadLatest(fsys, "ckpts")
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != FileName(4) {
		t.Fatalf("recovered %s, want %s", path, FileName(4))
	}
	statesEqual(t, st, got)
}

// TestTornRename: a lying disk acks fsync without persisting, so the
// commit rename lands while the data does not — after the crash the
// checkpoint file exists but is empty (torn). The loader must reject it
// and fall back to the previous checkpoint.
func TestTornRename(t *testing.T) {
	fsys := NewMemFS()
	first := testState(1, 1)
	if _, err := Save(fsys, "ckpts", first); err != nil {
		t.Fatal(err)
	}
	fsys.SetFaults(Faults{SilentSyncLoss: true})
	if _, err := Save(fsys, "ckpts", testState(2, 2)); err != nil {
		t.Fatalf("Save with lying fsync should report success, got %v", err)
	}
	fsys.Crash()
	// The iteration-2 file exists (rename was journaled) but is torn.
	if b, ok := fsys.ReadFile(filepath.Join("ckpts", FileName(2))); !ok || len(b) != 0 {
		t.Fatalf("torn file state = %d bytes, exists=%v; want empty file", len(b), ok)
	}
	st, path, err := LoadLatest(fsys, "ckpts")
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != FileName(1) {
		t.Fatalf("recovered %s, want fallback to %s", path, FileName(1))
	}
	statesEqual(t, first, st)
}

// TestFsyncFailureAborts: an fsync error must fail the Save (a checkpoint
// that may not be durable is not a checkpoint) and must not replace the
// previous file.
func TestFsyncFailureAborts(t *testing.T) {
	fsys := NewMemFS()
	first := testState(1, 1)
	if _, err := Save(fsys, "ckpts", first); err != nil {
		t.Fatal(err)
	}
	fsys.SetFaults(Faults{FailSyncAt: 2}) // Save #1 consumed sync call 1
	if _, err := Save(fsys, "ckpts", testState(2, 2)); !errors.Is(err, ErrInjected) {
		t.Fatalf("Save with failing fsync = %v, want injected fault", err)
	}
	st, path, err := LoadLatest(fsys, "ckpts")
	if err != nil || filepath.Base(path) != FileName(1) {
		t.Fatalf("recovery after fsync failure = %s, %v", path, err)
	}
	statesEqual(t, first, st)
}

// TestRenameFailureAborts: dying between the data fsync and the commit
// rename leaves only a temp file; recovery ignores it and GC removes it.
func TestRenameFailureAborts(t *testing.T) {
	fsys := NewMemFS()
	first := testState(1, 1)
	if _, err := Save(fsys, "ckpts", first); err != nil {
		t.Fatal(err)
	}
	fsys.SetFaults(Faults{FailRenameAt: 2})
	if _, err := Save(fsys, "ckpts", testState(2, 2)); !errors.Is(err, ErrInjected) {
		t.Fatal("rename failure not surfaced")
	}
	fsys.SetFaults(Faults{})
	st, path, err := LoadLatest(fsys, "ckpts")
	if err != nil || filepath.Base(path) != FileName(1) {
		t.Fatalf("recovery after rename failure = %s, %v", path, err)
	}
	statesEqual(t, first, st)
	if err := GC(fsys, "ckpts", 3); err != nil {
		t.Fatal(err)
	}
	names, _ := fsys.ReadDir("ckpts")
	for _, n := range names {
		if _, ok := ParseFileName(n); !ok {
			t.Fatalf("temp residue survived GC: %v", names)
		}
	}
}

// TestShortWriteSemantics pins the MemFS short-write behaviour the sweep
// relies on: the failing Write accepts exactly the bytes up to the budget
// and reports the injected error.
func TestShortWriteSemantics(t *testing.T) {
	fsys := NewMemFS()
	fsys.SetFaults(Faults{FailWriteAfter: 5})
	f, err := fsys.Create("x")
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("0123456789"))
	if n != 5 || !errors.Is(err, ErrInjected) {
		t.Fatalf("Write = (%d,%v), want (5, injected)", n, err)
	}
	if n, err = f.Write([]byte("ab")); n != 0 || !errors.Is(err, ErrInjected) {
		t.Fatalf("post-budget Write = (%d,%v), want (0, injected)", n, err)
	}
	b, _ := fsys.ReadFile("x")
	if string(b) != "01234" {
		t.Fatalf("volatile content %q, want first 5 bytes", b)
	}
	// Nothing was synced, so power loss erases even the accepted bytes.
	fsys.Crash()
	if _, ok := fsys.ReadFile("x"); ok {
		t.Fatal("unsynced file survived the crash")
	}
}
