package checkpoint

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// ErrInjected is the error every injected fault surfaces as, so tests can
// distinguish deliberate failures from real bugs.
var ErrInjected = errors.New("checkpoint: injected fault")

// Faults configures deterministic failure injection on a MemFS. The zero
// value injects nothing. Counters (write bytes, sync calls, rename calls)
// are cumulative over the life of the MemFS, so a test can pre-populate
// state fault-free and then arm a fault at an exact operation.
type Faults struct {
	// FailWriteAfter fails every Write once the FS has accepted this many
	// bytes in total, with a short write at the boundary (the first
	// failing call writes the bytes up to the budget, then errors) —
	// together with Crash this simulates dying at exactly byte N.
	// 0 disables.
	FailWriteAfter int64
	// FailSyncAt fails the nth File.Sync call (1-based); 0 disables.
	FailSyncAt int
	// FailRenameAt fails the nth Rename call (1-based); 0 disables —
	// simulates crashing after the data is written but before the commit
	// rename.
	FailRenameAt int
	// SilentSyncLoss makes File.Sync report success without making the
	// bytes durable (a lying disk). A Save still "succeeds", but a
	// subsequent Crash tears the renamed file down to nothing — the torn
	// rename a loader must survive.
	SilentSyncLoss bool
	// FailOpens fails the next N Open calls (decrementing each time) —
	// a transient read fault, e.g. a checkpoint listed by ReadDir that a
	// concurrent writer still holds. Retrying after the budget drains
	// succeeds, which is exactly what the serve watcher's bounded-retry
	// path needs to distinguish from permanent corruption. 0 disables.
	FailOpens int
}

// MemFS is an in-memory FS with a durability model: every file has a
// volatile content (what readers see now) and a durable content (what
// survives Crash — only bytes that were covered by a successful Sync).
// Combined with Faults it deterministically reproduces the crash shapes
// that matter for checkpointing: death at byte N, torn renames, short
// writes, and fsync failures — no sleeps, no real disk.
type MemFS struct {
	mu      sync.Mutex
	files   map[string]*bytes.Buffer // volatile view
	durable map[string][]byte        // what a Crash preserves
	dirs    map[string]bool
	faults  Faults

	written int64 // total bytes accepted across all files
	syncs   int
	renames int
}

// NewMemFS returns an empty in-memory filesystem with no faults armed.
func NewMemFS() *MemFS {
	return &MemFS{
		files:   make(map[string]*bytes.Buffer),
		durable: make(map[string][]byte),
		dirs:    map[string]bool{".": true, "/": true},
	}
}

// SetFaults arms (or with the zero value, disarms) fault injection.
func (m *MemFS) SetFaults(f Faults) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.faults = f
}

// BytesWritten reports the cumulative bytes accepted by Write calls,
// the counter FailWriteAfter compares against.
func (m *MemFS) BytesWritten() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.written
}

// Crash simulates power loss: the volatile view is discarded and replaced
// by the durable one. Files that were created or extended but never
// successfully synced lose the unsynced bytes; files renamed into place
// carry whatever had been synced under their old name.
func (m *MemFS) Crash() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.files = make(map[string]*bytes.Buffer, len(m.durable))
	for p, b := range m.durable {
		m.files[p] = bytes.NewBuffer(append([]byte(nil), b...))
	}
}

// WriteFile installs a file bypassing the durability model (both views),
// for tests that plant pre-existing or hand-corrupted content.
func (m *MemFS) WriteFile(path string, data []byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	path = filepath.Clean(path)
	m.mkdirsLocked(filepath.Dir(path))
	m.files[path] = bytes.NewBuffer(append([]byte(nil), data...))
	m.durable[path] = append([]byte(nil), data...)
}

// ReadFile returns the current (volatile) content of path.
func (m *MemFS) ReadFile(path string) ([]byte, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.files[filepath.Clean(path)]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), b.Bytes()...), true
}

func (m *MemFS) mkdirsLocked(dir string) {
	for d := filepath.Clean(dir); ; d = filepath.Dir(d) {
		m.dirs[d] = true
		if d == "." || d == "/" || d == filepath.Dir(d) {
			return
		}
	}
}

func (m *MemFS) MkdirAll(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.mkdirsLocked(dir)
	return nil
}

func (m *MemFS) Create(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = filepath.Clean(name)
	if !m.dirs[filepath.Dir(name)] {
		return nil, fmt.Errorf("memfs: create %s: parent directory does not exist", name)
	}
	buf := &bytes.Buffer{}
	m.files[name] = buf
	delete(m.durable, name) // a fresh create starts with nothing durable
	return &memFile{fs: m, path: name, buf: buf}, nil
}

func (m *MemFS) Open(name string) (io.ReadCloser, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.faults.FailOpens > 0 {
		m.faults.FailOpens--
		return nil, fmt.Errorf("memfs: open %s: %w", name, ErrInjected)
	}
	b, ok := m.files[filepath.Clean(name)]
	if !ok {
		return nil, fmt.Errorf("memfs: open %s: file does not exist", name)
	}
	return io.NopCloser(bytes.NewReader(append([]byte(nil), b.Bytes()...))), nil
}

func (m *MemFS) Rename(oldpath, newpath string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.renames++
	if m.faults.FailRenameAt > 0 && m.renames == m.faults.FailRenameAt {
		return fmt.Errorf("memfs: rename %s: %w", oldpath, ErrInjected)
	}
	oldpath, newpath = filepath.Clean(oldpath), filepath.Clean(newpath)
	b, ok := m.files[oldpath]
	if !ok {
		return fmt.Errorf("memfs: rename %s: file does not exist", oldpath)
	}
	m.files[newpath] = b
	delete(m.files, oldpath)
	// The rename itself is atomic journaled metadata: the destination name
	// survives a crash, but only with the bytes that were durable under
	// the old name — an unsynced source tears to an empty file.
	m.durable[newpath] = m.durable[oldpath]
	delete(m.durable, oldpath)
	return nil
}

func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = filepath.Clean(name)
	if _, ok := m.files[name]; !ok {
		return fmt.Errorf("memfs: remove %s: file does not exist", name)
	}
	delete(m.files, name)
	delete(m.durable, name)
	return nil
}

func (m *MemFS) ReadDir(dir string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	dir = filepath.Clean(dir)
	if !m.dirs[dir] {
		return nil, fmt.Errorf("memfs: readdir %s: directory does not exist", dir)
	}
	prefix := dir + string(filepath.Separator)
	if dir == "." {
		prefix = ""
	}
	var names []string
	for p := range m.files {
		if !strings.HasPrefix(p, prefix) {
			continue
		}
		rest := p[len(prefix):]
		if rest != "" && !strings.Contains(rest, string(filepath.Separator)) {
			names = append(names, rest)
		}
	}
	sort.Strings(names)
	return names, nil
}

func (m *MemFS) SyncDir(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.dirs[filepath.Clean(dir)] {
		return fmt.Errorf("memfs: syncdir %s: directory does not exist", dir)
	}
	return nil
}

// memFile is a MemFS write handle. The durability model lives here: Write
// grows only the volatile view; Sync copies it to the durable view.
type memFile struct {
	fs     *MemFS
	path   string
	buf    *bytes.Buffer
	closed bool
}

func (f *memFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return 0, fmt.Errorf("memfs: write %s: file closed", f.path)
	}
	if lim := f.fs.faults.FailWriteAfter; lim > 0 {
		if f.fs.written >= lim {
			return 0, fmt.Errorf("memfs: write %s: %w", f.path, ErrInjected)
		}
		if f.fs.written+int64(len(p)) > lim {
			// Short write: accept bytes up to the budget, then fail.
			n := int(lim - f.fs.written)
			f.buf.Write(p[:n])
			f.fs.written += int64(n)
			return n, fmt.Errorf("memfs: short write %s: %w", f.path, ErrInjected)
		}
	}
	n, _ := f.buf.Write(p)
	f.fs.written += int64(n)
	return n, nil
}

func (f *memFile) Sync() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	f.fs.syncs++
	if at := f.fs.faults.FailSyncAt; at > 0 && f.fs.syncs == at {
		return fmt.Errorf("memfs: fsync %s: %w", f.path, ErrInjected)
	}
	if f.fs.faults.SilentSyncLoss {
		return nil // lie: report success, persist nothing
	}
	if _, ok := f.fs.files[f.path]; ok {
		f.fs.durable[f.path] = append([]byte(nil), f.buf.Bytes()...)
	}
	return nil
}

func (f *memFile) Close() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	f.closed = true
	return nil
}
