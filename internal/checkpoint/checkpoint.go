// Package checkpoint makes long ALS training runs crash-safe: it
// persists both factor matrices plus the training state (iteration,
// hyperparameters, RNG seed, loss history) in a versioned, CRC-protected
// binary format, written atomically (temp file + fsync + rename + dir
// fsync) so a kill at any byte leaves either the previous checkpoint or
// the new one — never a torn file. Load verifies the checksum, Latest
// picks the newest checkpoint that actually decodes (falling back past
// torn or corrupt files), and GC bounds the directory to the last N.
//
// The package doubles as the repo's fault-injection harness: every
// filesystem touch goes through the FS interface, and MemFS implements it
// with a durability model (volatile vs fsynced bytes) plus deterministic
// fault hooks — die at byte N, torn rename, short write, fsync failure —
// that the checkpoint, serving-watcher, and future distributed tests
// drive without sleeps or real crashes.
package checkpoint

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/host"
	"repro/internal/linalg"
	"repro/internal/quant"
)

// Magic identifies a checkpoint file ("ALSK").
const Magic = uint32(0x414C534B)

// FormatVersion is bumped on any incompatible layout change; Load rejects
// versions it does not know but keeps decoding every version it ever
// wrote. Version 2 added the precision byte and quantized factor
// sections; version 3 added the training-mode block (implicit flag, α,
// solver, CG iterations, iALS++ block size). Version 1 and 2 files still
// load, decoding as explicit-mode Cholesky runs. Golden-file tests pin
// every version byte for byte.
const FormatVersion = uint32(3)

// formatV1 is the pre-quantization layout: no precision byte, factors
// always raw float32. formatV2 added the precision byte but predates the
// training-mode block.
const (
	formatV1 = uint32(1)
	formatV2 = uint32(2)
)

const (
	maxVariantLen = 256
	maxHistory    = 1 << 16
	// maxFloats mirrors core.LoadModel's allocation guard: the largest
	// plausible factor matrix is ~2G floats.
	maxFloats = int64(1) << 32
)

// ErrNoCheckpoint is returned by Latest/LoadLatest when the directory
// holds no valid checkpoint (including when it does not exist yet).
var ErrNoCheckpoint = errors.New("checkpoint: no valid checkpoint found")

// ErrCorrupt marks a checkpoint whose bytes decode invalid — a permanent
// fault of the file itself (bad magic, CRC mismatch, truncation, absurd
// header), as opposed to a transient I/O error opening it. Load wraps
// every decode failure with it so consumers (the serve watcher) can
// distinguish "reject this file forever" from "retry in a moment".
var ErrCorrupt = errors.New("checkpoint: corrupt")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// State is everything needed to resume training exactly where it stopped:
// the factor pair after Iteration completed full ALS iterations, the run's
// hyperparameters and seed (so a resume can refuse a mismatched
// configuration), and the loss history accumulated so far.
type State struct {
	Iteration      int     // completed full ALS iterations
	K              int     // latent dimensionality
	Lambda         float32 // regularization
	WeightedLambda bool    // ALS-WR λ|Ω|I convention
	Seed           int64   // initial-guess RNG seed
	Variant        string  // code-variant ID the run used (e.g. "tb+vec+fus")

	X, Y *linalg.Dense // user (m×k) and item (n×k) factors

	// Precision selects the on-disk factor encoding. F32 (the zero value)
	// writes raw float32 exactly like format v1; F16/I8 write per-row-scaled
	// quantized sections instead, shrinking the file 2–4×. X and Y above
	// stay float32 in memory either way — Decode dequantizes — so every
	// consumer of State keeps working regardless of the file's precision.
	Precision quant.Precision

	// QX, QY hold the quantized factors when Precision != F32: Encode
	// reuses them verbatim when they match (byte-stable round trips) and
	// Decode populates them so the serving layer can install the compressed
	// matrix without re-encoding. Nil on float32 checkpoints.
	QX, QY *quant.Matrix

	// Training-mode block (format v3): implicit-feedback flag with its
	// confidence scale α, the per-row solver, and the solver hyperparameters
	// that change the trajectory (CG iteration budget, iALS++ block size).
	// All are part of the strict resume-match contract — a run resumed under
	// a different mode or solver would not reproduce the checkpointed one.
	// v1/v2 files decode with the zero values: explicit, Cholesky.
	Implicit  bool
	Alpha     float32
	Solver    host.Solver
	CGIters   int
	BlockSize int

	History []host.IterStats // per-half-iteration loss when tracked
}

// FileName returns the canonical file name for a checkpoint at the given
// iteration; lexicographic order equals iteration order.
func FileName(iteration int) string {
	return fmt.Sprintf("ckpt-%08d.alsck", iteration)
}

// ParseFileName extracts the iteration from a canonical checkpoint file
// name, reporting false for anything else (temp files, foreign files).
func ParseFileName(name string) (int, bool) {
	var it int
	if _, err := fmt.Sscanf(name, "ckpt-%d.alsck", &it); err != nil {
		return 0, false
	}
	if name != FileName(it) || it < 0 {
		return 0, false
	}
	return it, true
}

func (st *State) validate() error {
	if st.X == nil || st.Y == nil {
		return fmt.Errorf("checkpoint: state has nil factors")
	}
	if st.K <= 0 || st.X.Cols != st.K || st.Y.Cols != st.K {
		return fmt.Errorf("checkpoint: factor widths (%d,%d) do not match k=%d",
			st.X.Cols, st.Y.Cols, st.K)
	}
	if st.Iteration < 0 {
		return fmt.Errorf("checkpoint: negative iteration %d", st.Iteration)
	}
	if len(st.Variant) > maxVariantLen {
		return fmt.Errorf("checkpoint: variant label longer than %d bytes", maxVariantLen)
	}
	if len(st.History) > maxHistory {
		return fmt.Errorf("checkpoint: history longer than %d entries", maxHistory)
	}
	if !st.Precision.Valid() {
		return fmt.Errorf("checkpoint: unknown precision %v", st.Precision)
	}
	if st.Solver > host.SolverCG {
		return fmt.Errorf("checkpoint: unknown solver %d", st.Solver)
	}
	if math.IsNaN(float64(st.Alpha)) || math.IsInf(float64(st.Alpha), 0) || st.Alpha < 0 {
		return fmt.Errorf("checkpoint: invalid alpha %v", st.Alpha)
	}
	if st.CGIters < 0 || st.CGIters > math.MaxUint16 {
		return fmt.Errorf("checkpoint: CG iterations %d out of range", st.CGIters)
	}
	if st.BlockSize < 0 || st.BlockSize > math.MaxUint16 {
		return fmt.Errorf("checkpoint: block size %d out of range", st.BlockSize)
	}
	return nil
}

// EncodedSize returns the exact byte count Encode will produce for st,
// including the CRC trailer. The observability layer uses it to report
// checkpoint I/O volume without re-reading the file (the FS interface has
// no Stat). A size test pins it against real Encode output.
func (st *State) EncodedSize() int64 {
	const (
		header    = 7 * 8             // magic..seed, uint64 each
		fixed     = 4 + 1 + 1 + 2 + 4 // lambda + weighted + precision + variant len + history len
		modeBlock = 1 + 4 + 1 + 2 + 2 // v3: implicit + alpha + solver + cg iters + block size
		histEntry = 4 + 1 + 8 + 8     // iteration, half, loss, elapsed
		trailer   = 4                 // CRC-32C
	)
	n := int64(header + fixed + modeBlock + trailer)
	n += int64(len(st.Variant))
	n += int64(len(st.History)) * histEntry
	if st.X != nil {
		n += factorSize(st.X.Rows, st.X.Cols, st.Precision)
	}
	if st.Y != nil {
		n += factorSize(st.Y.Rows, st.Y.Cols, st.Precision)
	}
	return n
}

// factorSize is the on-disk byte count of one factor matrix section: raw
// float32 elements at F32, or max-abs-error + per-row scales + compact
// payload for a quantized precision.
func factorSize(rows, cols int, prec quant.Precision) int64 {
	elems := int64(rows) * int64(cols)
	switch prec {
	case quant.F16:
		return 8 + 4*int64(rows) + 2*elems
	case quant.I8:
		return 8 + 4*int64(rows) + elems
	}
	return 4 * elems
}

// crcWriter checksums everything written through it.
type crcWriter struct {
	w   io.Writer
	crc uint32
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.crc = crc32.Update(cw.crc, castagnoli, p[:n])
	return n, err
}

// crcReader checksums everything read through it.
type crcReader struct {
	r   io.Reader
	crc uint32
}

func (cr *crcReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.crc = crc32.Update(cr.crc, castagnoli, p[:n])
	return n, err
}

// Encode writes st in the on-disk format: a little-endian header (magic,
// format version, dims, training state), the variant label and history,
// both factor matrices, and a trailing CRC-32C over every preceding byte.
func Encode(w io.Writer, st *State) error {
	if err := st.validate(); err != nil {
		return err
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	cw := &crcWriter{w: bw}
	hdr := []uint64{
		uint64(Magic), uint64(FormatVersion),
		uint64(st.K), uint64(st.X.Rows), uint64(st.Y.Rows),
		uint64(st.Iteration), uint64(st.Seed),
	}
	for _, h := range hdr {
		if err := binary.Write(cw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	if err := binary.Write(cw, binary.LittleEndian, st.Lambda); err != nil {
		return err
	}
	var weighted uint8
	if st.WeightedLambda {
		weighted = 1
	}
	if err := binary.Write(cw, binary.LittleEndian, weighted); err != nil {
		return err
	}
	if err := binary.Write(cw, binary.LittleEndian, uint8(st.Precision)); err != nil {
		return err
	}
	// Format v3 training-mode block.
	var implicit uint8
	if st.Implicit {
		implicit = 1
	}
	if err := binary.Write(cw, binary.LittleEndian, implicit); err != nil {
		return err
	}
	if err := binary.Write(cw, binary.LittleEndian, st.Alpha); err != nil {
		return err
	}
	if err := binary.Write(cw, binary.LittleEndian, uint8(st.Solver)); err != nil {
		return err
	}
	if err := binary.Write(cw, binary.LittleEndian, uint16(st.CGIters)); err != nil {
		return err
	}
	if err := binary.Write(cw, binary.LittleEndian, uint16(st.BlockSize)); err != nil {
		return err
	}
	if err := binary.Write(cw, binary.LittleEndian, uint16(len(st.Variant))); err != nil {
		return err
	}
	if _, err := cw.Write([]byte(st.Variant)); err != nil {
		return err
	}
	if err := binary.Write(cw, binary.LittleEndian, uint32(len(st.History))); err != nil {
		return err
	}
	for _, h := range st.History {
		var half uint8
		if h.Half == "Y" {
			half = 1
		}
		if err := binary.Write(cw, binary.LittleEndian, uint32(h.Iteration)); err != nil {
			return err
		}
		if err := binary.Write(cw, binary.LittleEndian, half); err != nil {
			return err
		}
		if err := binary.Write(cw, binary.LittleEndian, math.Float64bits(h.Loss)); err != nil {
			return err
		}
		if err := binary.Write(cw, binary.LittleEndian, uint64(h.Elapsed)); err != nil {
			return err
		}
	}
	if err := writeFactor(cw, st.X, st.QX, st.Precision); err != nil {
		return err
	}
	if err := writeFactor(cw, st.Y, st.QY, st.Precision); err != nil {
		return err
	}
	// The trailer is written outside the CRC writer.
	if err := binary.Write(bw, binary.LittleEndian, cw.crc); err != nil {
		return err
	}
	return bw.Flush()
}

// writeFactor emits one factor section at the state's precision. F32 is
// the raw float32 data, byte-compatible with format v1's payload. For a
// quantized precision the section is max-abs-error (float64 bits), the
// per-row scales, then the packed payload; an already-quantized matrix of
// matching shape is written verbatim (so decode→encode round trips are
// byte-stable), otherwise the float32 factors are quantized here.
func writeFactor(cw *crcWriter, d *linalg.Dense, q *quant.Matrix, prec quant.Precision) error {
	if prec == quant.F32 {
		return binary.Write(cw, binary.LittleEndian, d.Data)
	}
	if q == nil || q.Prec != prec || q.Rows != d.Rows || q.Cols != d.Cols {
		var err error
		if q, err = quant.EncodeDense(d, prec); err != nil {
			return err
		}
	}
	if err := binary.Write(cw, binary.LittleEndian, math.Float64bits(q.MaxAbsErr)); err != nil {
		return err
	}
	if err := binary.Write(cw, binary.LittleEndian, q.Scales); err != nil {
		return err
	}
	switch prec {
	case quant.F16:
		return binary.Write(cw, binary.LittleEndian, q.F16)
	default:
		return binary.Write(cw, binary.LittleEndian, q.I8)
	}
}

// readFactor reads one factor section at the given precision, returning
// the float32 matrix (dequantized if needed) and, for quantized sections,
// the compact form.
func readFactor(cr *crcReader, rows, cols int, prec quant.Precision) (*linalg.Dense, *quant.Matrix, error) {
	if prec == quant.F32 {
		d := linalg.NewDense(rows, cols)
		if err := binary.Read(cr, binary.LittleEndian, &d.Data); err != nil {
			return nil, nil, err
		}
		return d, nil, nil
	}
	var errBits uint64
	if err := binary.Read(cr, binary.LittleEndian, &errBits); err != nil {
		return nil, nil, err
	}
	q := &quant.Matrix{
		Prec: prec, Rows: rows, Cols: cols,
		Scales:    make([]float32, rows),
		MaxAbsErr: math.Float64frombits(errBits),
	}
	if math.IsNaN(q.MaxAbsErr) || q.MaxAbsErr < 0 {
		return nil, nil, fmt.Errorf("invalid max-abs-error %v", q.MaxAbsErr)
	}
	if err := binary.Read(cr, binary.LittleEndian, &q.Scales); err != nil {
		return nil, nil, err
	}
	for r, s := range q.Scales {
		// A negative or non-finite scale cannot come from EncodeDense and
		// would poison every score in its row; the CRC catches random
		// corruption, this catches a systematically bad writer.
		if s < 0 || math.IsNaN(float64(s)) || math.IsInf(float64(s), 0) {
			return nil, nil, fmt.Errorf("invalid row scale %v at row %d", s, r)
		}
	}
	var err error
	switch prec {
	case quant.F16:
		q.F16 = make([]uint16, rows*cols)
		err = binary.Read(cr, binary.LittleEndian, &q.F16)
	default:
		q.I8 = make([]int8, rows*cols)
		err = binary.Read(cr, binary.LittleEndian, &q.I8)
	}
	if err != nil {
		return nil, nil, err
	}
	return q.Decode(), q, nil
}

// Decode reads a checkpoint written by Encode, verifying format version,
// dimension plausibility and the CRC. It returns an error — never panics,
// never allocates unboundedly — on arbitrary corrupt input (the fuzz test
// holds it to that).
func Decode(r io.Reader) (*State, error) {
	cr := &crcReader{r: bufio.NewReaderSize(r, 1<<20)}
	var hdr [7]uint64
	for i := range hdr {
		if err := binary.Read(cr, binary.LittleEndian, &hdr[i]); err != nil {
			return nil, fmt.Errorf("checkpoint: reading header: %w", err)
		}
	}
	if uint32(hdr[0]) != Magic {
		return nil, fmt.Errorf("checkpoint: bad magic %#x", hdr[0])
	}
	version := uint32(hdr[1])
	if version < formatV1 || version > FormatVersion {
		return nil, fmt.Errorf("checkpoint: unsupported format version %d (want %d..%d)",
			version, formatV1, FormatVersion)
	}
	k, m, n := int64(hdr[2]), int64(hdr[3]), int64(hdr[4])
	// Division, not multiplication: m*k on attacker-controlled dims can
	// overflow int64 and wrap past the bound (the fuzzer found exactly
	// that).
	if k <= 0 || m < 0 || n < 0 || k > 1<<20 || m > maxFloats/k || n > maxFloats/k {
		return nil, fmt.Errorf("checkpoint: implausible dims k=%d m=%d n=%d", k, m, n)
	}
	if hdr[5] > 1<<32 {
		return nil, fmt.Errorf("checkpoint: implausible iteration %d", hdr[5])
	}
	st := &State{
		K:         int(k),
		Iteration: int(hdr[5]),
		Seed:      int64(hdr[6]),
	}
	if err := binary.Read(cr, binary.LittleEndian, &st.Lambda); err != nil {
		return nil, fmt.Errorf("checkpoint: reading lambda: %w", err)
	}
	var weighted uint8
	if err := binary.Read(cr, binary.LittleEndian, &weighted); err != nil {
		return nil, fmt.Errorf("checkpoint: reading lambda convention: %w", err)
	}
	if weighted > 1 {
		return nil, fmt.Errorf("checkpoint: invalid lambda convention %d", weighted)
	}
	st.WeightedLambda = weighted == 1
	if version >= formatV2 {
		var prec uint8
		if err := binary.Read(cr, binary.LittleEndian, &prec); err != nil {
			return nil, fmt.Errorf("checkpoint: reading precision: %w", err)
		}
		st.Precision = quant.Precision(prec)
		if !st.Precision.Valid() {
			return nil, fmt.Errorf("checkpoint: invalid precision %d", prec)
		}
	}
	if version >= FormatVersion {
		var implicit, solver uint8
		var cgIters, blockSize uint16
		if err := binary.Read(cr, binary.LittleEndian, &implicit); err != nil {
			return nil, fmt.Errorf("checkpoint: reading mode: %w", err)
		}
		if implicit > 1 {
			return nil, fmt.Errorf("checkpoint: invalid mode %d", implicit)
		}
		if err := binary.Read(cr, binary.LittleEndian, &st.Alpha); err != nil {
			return nil, fmt.Errorf("checkpoint: reading alpha: %w", err)
		}
		if math.IsNaN(float64(st.Alpha)) || math.IsInf(float64(st.Alpha), 0) || st.Alpha < 0 {
			return nil, fmt.Errorf("checkpoint: invalid alpha %v", st.Alpha)
		}
		if err := binary.Read(cr, binary.LittleEndian, &solver); err != nil {
			return nil, fmt.Errorf("checkpoint: reading solver: %w", err)
		}
		if host.Solver(solver) > host.SolverCG {
			return nil, fmt.Errorf("checkpoint: unknown solver %d", solver)
		}
		if err := binary.Read(cr, binary.LittleEndian, &cgIters); err != nil {
			return nil, fmt.Errorf("checkpoint: reading CG iterations: %w", err)
		}
		if err := binary.Read(cr, binary.LittleEndian, &blockSize); err != nil {
			return nil, fmt.Errorf("checkpoint: reading block size: %w", err)
		}
		st.Implicit = implicit == 1
		st.Solver = host.Solver(solver)
		st.CGIters = int(cgIters)
		st.BlockSize = int(blockSize)
	}
	var vlen uint16
	if err := binary.Read(cr, binary.LittleEndian, &vlen); err != nil {
		return nil, fmt.Errorf("checkpoint: reading variant length: %w", err)
	}
	if vlen > maxVariantLen {
		return nil, fmt.Errorf("checkpoint: implausible variant length %d", vlen)
	}
	vbuf := make([]byte, vlen)
	if _, err := io.ReadFull(cr, vbuf); err != nil {
		return nil, fmt.Errorf("checkpoint: reading variant: %w", err)
	}
	st.Variant = string(vbuf)
	var histLen uint32
	if err := binary.Read(cr, binary.LittleEndian, &histLen); err != nil {
		return nil, fmt.Errorf("checkpoint: reading history length: %w", err)
	}
	if histLen > maxHistory {
		return nil, fmt.Errorf("checkpoint: implausible history length %d", histLen)
	}
	if histLen > 0 {
		st.History = make([]host.IterStats, histLen)
		for i := range st.History {
			var it uint32
			var half uint8
			var loss, elapsed uint64
			if err := binary.Read(cr, binary.LittleEndian, &it); err != nil {
				return nil, fmt.Errorf("checkpoint: reading history: %w", err)
			}
			if err := binary.Read(cr, binary.LittleEndian, &half); err != nil {
				return nil, fmt.Errorf("checkpoint: reading history: %w", err)
			}
			if half > 1 {
				return nil, fmt.Errorf("checkpoint: invalid history half %d", half)
			}
			if err := binary.Read(cr, binary.LittleEndian, &loss); err != nil {
				return nil, fmt.Errorf("checkpoint: reading history: %w", err)
			}
			if err := binary.Read(cr, binary.LittleEndian, &elapsed); err != nil {
				return nil, fmt.Errorf("checkpoint: reading history: %w", err)
			}
			h := &st.History[i]
			h.Iteration = int(it)
			h.Half = "X"
			if half == 1 {
				h.Half = "Y"
			}
			h.Loss = math.Float64frombits(loss)
			h.Elapsed = time.Duration(elapsed)
		}
	}
	var ferr error
	if st.X, st.QX, ferr = readFactor(cr, int(m), int(k), st.Precision); ferr != nil {
		return nil, fmt.Errorf("checkpoint: reading X: %w", ferr)
	}
	if st.Y, st.QY, ferr = readFactor(cr, int(n), int(k), st.Precision); ferr != nil {
		return nil, fmt.Errorf("checkpoint: reading Y: %w", ferr)
	}
	sum := cr.crc
	var stored uint32
	if err := binary.Read(cr.r, binary.LittleEndian, &stored); err != nil {
		return nil, fmt.Errorf("checkpoint: reading checksum: %w", err)
	}
	if stored != sum {
		return nil, fmt.Errorf("checkpoint: checksum mismatch (stored %#x, computed %#x)", stored, sum)
	}
	return st, nil
}

// Save atomically writes st into dir as ckpt-<iteration>.alsck and
// returns the final path. The write order (temp file, fsync, rename,
// directory fsync) guarantees that a crash at any point leaves the
// previous checkpoints untouched and never exposes a half-written file
// under a valid name.
func Save(fsys FS, dir string, st *State) (string, error) {
	if err := st.validate(); err != nil {
		return "", err
	}
	if err := fsys.MkdirAll(dir); err != nil {
		return "", err
	}
	path := filepath.Join(dir, FileName(st.Iteration))
	if err := WriteFileAtomic(fsys, path, func(w io.Writer) error {
		return Encode(w, st)
	}); err != nil {
		return "", err
	}
	return path, nil
}

// Load reads and verifies one checkpoint file. Open errors pass through
// untouched (they may be transient); decode failures are wrapped with
// ErrCorrupt — the file's bytes are bad and will stay bad.
func Load(fsys FS, path string) (*State, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := Decode(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w: %w", filepath.Base(path), ErrCorrupt, err)
	}
	return st, nil
}

// list returns the canonical checkpoint entries of dir sorted by
// descending iteration. A missing directory is an empty listing.
func list(fsys FS, dir string) ([]string, []int, error) {
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, nil, nil
	}
	type entry struct {
		name string
		iter int
	}
	var entries []entry
	for _, name := range names {
		if it, ok := ParseFileName(name); ok {
			entries = append(entries, entry{name, it})
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].iter > entries[j].iter })
	ns := make([]string, len(entries))
	its := make([]int, len(entries))
	for i, e := range entries {
		ns[i], its[i] = e.name, e.iter
	}
	return ns, its, nil
}

// Latest returns the path and iteration of the newest checkpoint in dir
// that decodes cleanly, skipping over torn or corrupt files (a crashed
// writer can leave the highest-numbered file unreadable; recovery must
// fall back to the previous good one). ErrNoCheckpoint when none qualify.
func Latest(fsys FS, dir string) (string, int, error) {
	names, iters, err := list(fsys, dir)
	if err != nil {
		return "", 0, err
	}
	for i, name := range names {
		path := filepath.Join(dir, name)
		if _, err := Load(fsys, path); err == nil {
			return path, iters[i], nil
		}
	}
	return "", 0, ErrNoCheckpoint
}

// LoadLatest loads the newest valid checkpoint in dir (see Latest).
func LoadLatest(fsys FS, dir string) (*State, string, error) {
	path, _, err := Latest(fsys, dir)
	if err != nil {
		return nil, "", err
	}
	st, err := Load(fsys, path)
	if err != nil {
		return nil, "", err
	}
	return st, path, nil
}

// GC bounds dir to the newest keep checkpoints (by iteration number) and
// removes abandoned temp files from interrupted writes. keep < 1 keeps 1.
func GC(fsys FS, dir string, keep int) error {
	if keep < 1 {
		keep = 1
	}
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return nil
	}
	var firstErr error
	for _, name := range names {
		if len(name) > len(tmpPrefix) && name[:len(tmpPrefix)] == tmpPrefix {
			if err := fsys.Remove(filepath.Join(dir, name)); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	ckpts, _, err := list(fsys, dir)
	if err != nil {
		return firstErr
	}
	for _, name := range ckpts[min(keep, len(ckpts)):] {
		if err := fsys.Remove(filepath.Join(dir, name)); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
