package checkpoint

import (
	"sort"
	"sync"
	"time"
)

// Clock abstracts time for the components that poll (the serving layer's
// checkpoint watcher), so tests can drive ticks deterministically instead
// of sleeping.
type Clock interface {
	Now() time.Time
	After(d time.Duration) <-chan time.Time
}

// SystemClock is the real time.
var SystemClock Clock = systemClock{}

type systemClock struct{}

func (systemClock) Now() time.Time                         { return time.Now() }
func (systemClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// FakeClock is a manually-advanced Clock for deterministic tests: After
// registers a waiter that fires when Advance moves the clock past its
// deadline. No real time ever elapses.
type FakeClock struct {
	mu      sync.Mutex
	now     time.Time
	waiters []fakeWaiter
}

type fakeWaiter struct {
	at time.Time
	ch chan time.Time
}

// NewFakeClock starts a fake clock at the given instant.
func NewFakeClock(start time.Time) *FakeClock {
	return &FakeClock{now: start}
}

func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *FakeClock) After(d time.Duration) <-chan time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch := make(chan time.Time, 1)
	w := fakeWaiter{at: c.now.Add(d), ch: ch}
	if d <= 0 {
		ch <- c.now
		return ch
	}
	c.waiters = append(c.waiters, w)
	sort.SliceStable(c.waiters, func(i, j int) bool { return c.waiters[i].at.Before(c.waiters[j].at) })
	return ch
}

// Advance moves the clock forward, firing every waiter whose deadline is
// reached.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
	kept := c.waiters[:0]
	for _, w := range c.waiters {
		if !w.at.After(c.now) {
			w.ch <- c.now
		} else {
			kept = append(kept, w)
		}
	}
	c.waiters = kept
}

// Waiters reports how many After channels are pending, so a test can wait
// for a polling loop to park before advancing time.
func (c *FakeClock) Waiters() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.waiters)
}
