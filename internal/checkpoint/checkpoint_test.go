package checkpoint

import (
	"bytes"
	"errors"
	"io"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/host"
	"repro/internal/linalg"
	"repro/internal/quant"
)

// testState builds a small deterministic State; the seed offsets the float
// patterns so different checkpoints are distinguishable.
func testState(iter int, seed float32) *State {
	const k, m, n = 3, 4, 5
	x := linalg.NewDense(m, k)
	y := linalg.NewDense(n, k)
	for i := range x.Data {
		x.Data[i] = seed + float32(i)*0.25
	}
	for i := range y.Data {
		y.Data[i] = -seed + float32(i)*0.5
	}
	return &State{
		Iteration: iter, K: k, Lambda: 0.1, WeightedLambda: iter%2 == 1,
		Seed: 2017, Variant: "tb+vec+fus", X: x, Y: y,
		History: []host.IterStats{
			{Iteration: 1, Half: "X", Loss: 12.5, Elapsed: 3 * time.Millisecond},
			{Iteration: 1, Half: "Y", Loss: 11.25, Elapsed: 7 * time.Millisecond},
		},
	}
}

func statesEqual(t *testing.T, want, got *State) {
	t.Helper()
	if got.Iteration != want.Iteration || got.K != want.K ||
		got.Lambda != want.Lambda || got.WeightedLambda != want.WeightedLambda ||
		got.Seed != want.Seed || got.Variant != want.Variant ||
		got.Precision != want.Precision ||
		got.Implicit != want.Implicit || got.Alpha != want.Alpha ||
		got.Solver != want.Solver || got.CGIters != want.CGIters ||
		got.BlockSize != want.BlockSize {
		t.Fatalf("scalar state mismatch:\nwant %+v\ngot  %+v", want, got)
	}
	if d := linalg.MaxAbsDiff(want.X, got.X); d != 0 {
		t.Fatalf("X differs by %g", d)
	}
	if d := linalg.MaxAbsDiff(want.Y, got.Y); d != 0 {
		t.Fatalf("Y differs by %g", d)
	}
	if !reflect.DeepEqual(want.History, got.History) {
		t.Fatalf("history mismatch:\nwant %+v\ngot  %+v", want.History, got.History)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	st := testState(7, 1.5)
	var buf bytes.Buffer
	if err := Encode(&buf, st); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	statesEqual(t, st, got)
}

// TestQuantizedRoundTrip: a state saved at a quantized precision decodes
// with the compact factors attached and float32 factors dequantized
// within the recorded error bound, and a decode→encode round trip is
// byte-stable (the decoded quantized payload is written back verbatim,
// not re-quantized through the lossy float32 view).
func TestQuantizedRoundTrip(t *testing.T) {
	for _, prec := range []quant.Precision{quant.F16, quant.I8} {
		orig := testState(4, 1.5)
		orig.Precision = prec
		var buf bytes.Buffer
		if err := Encode(&buf, orig); err != nil {
			t.Fatal(err)
		}
		got, err := Decode(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if got.Precision != prec || got.QX == nil || got.QY == nil {
			t.Fatalf("%v: decoded precision %v, QX %v, QY %v", prec, got.Precision, got.QX, got.QY)
		}
		if d := float64(linalg.MaxAbsDiff(orig.X, got.X)); d > got.QX.MaxAbsErr+1e-12 {
			t.Errorf("%v: X moved by %g, recorded max error %g", prec, d, got.QX.MaxAbsErr)
		}
		if d := float64(linalg.MaxAbsDiff(orig.Y, got.Y)); d > got.QY.MaxAbsErr+1e-12 {
			t.Errorf("%v: Y moved by %g, recorded max error %g", prec, d, got.QY.MaxAbsErr)
		}
		var again bytes.Buffer
		if err := Encode(&again, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), again.Bytes()) {
			t.Errorf("%v: decode→encode is not byte-stable", prec)
		}
	}
}

// TestEncodedSizeMatchesEncode pins EncodedSize to the real on-disk byte
// count, with and without history, with an empty variant label, and at
// every precision.
func TestEncodedSizeMatchesEncode(t *testing.T) {
	states := []*State{testState(7, 1.5), testState(2, 0), testState(3, 1), testState(4, 1)}
	states[1].History = nil
	states[1].Variant = ""
	states[2].Precision = quant.F16
	states[3].Precision = quant.I8
	for i, st := range states {
		var buf bytes.Buffer
		if err := Encode(&buf, st); err != nil {
			t.Fatal(err)
		}
		if got, want := st.EncodedSize(), int64(buf.Len()); got != want {
			t.Errorf("state %d: EncodedSize() = %d, Encode wrote %d bytes", i, got, want)
		}
	}
}

func TestDecodeRejectsBitFlips(t *testing.T) {
	st := testState(3, 0.25)
	var buf bytes.Buffer
	if err := Encode(&buf, st); err != nil {
		t.Fatal(err)
	}
	enc := buf.Bytes()
	// Flip one bit at a spread of offsets; every flip must be rejected
	// (header checks or the CRC trailer), never silently accepted.
	for off := 0; off < len(enc); off += 17 {
		bad := append([]byte(nil), enc...)
		bad[off] ^= 0x40
		if _, err := Decode(bytes.NewReader(bad)); err == nil {
			t.Fatalf("bit flip at offset %d accepted", off)
		}
	}
	// Truncations at every length must error too.
	for cut := 0; cut < len(enc); cut += 13 {
		if _, err := Decode(bytes.NewReader(enc[:cut])); err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
	}
}

func TestSaveLoadLatestGC(t *testing.T) {
	for _, tc := range []struct {
		name string
		fsys FS
		dir  string
	}{
		{"memfs", NewMemFS(), "ckpts"},
		{"osfs", OS, filepath.Join(t.TempDir(), "ckpts")},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, err := Latest(tc.fsys, tc.dir); !errors.Is(err, ErrNoCheckpoint) {
				t.Fatalf("Latest on empty dir = %v, want ErrNoCheckpoint", err)
			}
			var states []*State
			for it := 1; it <= 5; it++ {
				st := testState(it, float32(it))
				states = append(states, st)
				if _, err := Save(tc.fsys, tc.dir, st); err != nil {
					t.Fatal(err)
				}
			}
			path, iter, err := Latest(tc.fsys, tc.dir)
			if err != nil {
				t.Fatal(err)
			}
			if iter != 5 || filepath.Base(path) != FileName(5) {
				t.Fatalf("Latest = %s iter %d, want %s iter 5", path, iter, FileName(5))
			}
			got, _, err := LoadLatest(tc.fsys, tc.dir)
			if err != nil {
				t.Fatal(err)
			}
			statesEqual(t, states[4], got)

			if err := GC(tc.fsys, tc.dir, 2); err != nil {
				t.Fatal(err)
			}
			names, err := tc.fsys.ReadDir(tc.dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(names) != 2 || names[0] != FileName(4) || names[1] != FileName(5) {
				t.Fatalf("after GC keep 2: %v", names)
			}
		})
	}
}

func TestLatestSkipsCorruptNewest(t *testing.T) {
	fsys := NewMemFS()
	good := testState(2, 1)
	if _, err := Save(fsys, "ckpts", good); err != nil {
		t.Fatal(err)
	}
	// A higher-numbered file full of garbage must be skipped, not returned
	// and not fatal.
	fsys.WriteFile(filepath.Join("ckpts", FileName(9)), []byte("not a checkpoint at all"))
	st, path, err := LoadLatest(fsys, "ckpts")
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != FileName(2) {
		t.Fatalf("LoadLatest picked %s, want fallback to %s", path, FileName(2))
	}
	statesEqual(t, good, st)
}

func TestGCRemovesTempFiles(t *testing.T) {
	fsys := NewMemFS()
	if _, err := Save(fsys, "ckpts", testState(1, 1)); err != nil {
		t.Fatal(err)
	}
	fsys.WriteFile(filepath.Join("ckpts", tmpPrefix+FileName(2)), []byte("abandoned partial write"))
	if err := GC(fsys, "ckpts", 3); err != nil {
		t.Fatal(err)
	}
	names, err := fsys.ReadDir("ckpts")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != FileName(1) {
		t.Fatalf("after GC: %v, want only %s", names, FileName(1))
	}
}

func TestParseFileName(t *testing.T) {
	for _, tc := range []struct {
		name string
		iter int
		ok   bool
	}{
		{FileName(0), 0, true},
		{FileName(12), 12, true},
		{FileName(99999999), 99999999, true},
		{"ckpt-12.alsck", 0, false}, // not zero-padded
		{tmpPrefix + FileName(3), 0, false},
		{"model.bin", 0, false},
		{"ckpt--0000001.alsck", 0, false},
	} {
		it, ok := ParseFileName(tc.name)
		if ok != tc.ok || (ok && it != tc.iter) {
			t.Errorf("ParseFileName(%q) = (%d,%v), want (%d,%v)", tc.name, it, ok, tc.iter, tc.ok)
		}
	}
}

func TestEncodeValidatesState(t *testing.T) {
	var buf bytes.Buffer
	bad := testState(1, 1)
	bad.X = nil
	if err := Encode(&buf, bad); err == nil {
		t.Fatal("nil factors accepted")
	}
	bad = testState(1, 1)
	bad.K = 2 // mismatched with 3-wide factors
	if err := Encode(&buf, bad); err == nil {
		t.Fatal("mismatched k accepted")
	}
	bad = testState(1, 1)
	bad.Iteration = -1
	if err := Encode(&buf, bad); err == nil {
		t.Fatal("negative iteration accepted")
	}
	bad = testState(1, 1)
	bad.Precision = quant.Precision(9)
	if err := Encode(&buf, bad); err == nil {
		t.Fatal("unknown precision accepted")
	}
}

func TestWriteFileAtomicReplacesOnlyOnSuccess(t *testing.T) {
	fsys := NewMemFS()
	fsys.MkdirAll("d")
	path := filepath.Join("d", "model.bin")
	if err := WriteFileAtomic(fsys, path, func(w io.Writer) error {
		_, err := w.Write([]byte("version-1"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	// A failing rewrite must leave the original untouched and no temp file.
	fsys.SetFaults(Faults{FailWriteAfter: fsys.BytesWritten() + 3})
	err := WriteFileAtomic(fsys, path, func(w io.Writer) error {
		_, err := w.Write([]byte("version-2"))
		return err
	})
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want injected fault", err)
	}
	got, ok := fsys.ReadFile(path)
	if !ok || string(got) != "version-1" {
		t.Fatalf("file = %q,%v; want intact version-1", got, ok)
	}
	names, _ := fsys.ReadDir("d")
	if len(names) != 1 {
		t.Fatalf("leftover entries: %v", names)
	}
}
