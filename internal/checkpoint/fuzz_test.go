package checkpoint

import (
	"bytes"
	"testing"

	"repro/internal/host"
	"repro/internal/quant"
)

// FuzzLoadCheckpoint: the checkpoint decoder must return errors — never
// panic, never allocate unboundedly — on arbitrary input, and anything it
// accepts must survive an encode/decode round trip. Seeded with valid
// checkpoints at every precision (the v2 quantized sections carry their
// own scale/error fields for the fuzzer to mangle) plus the corruption
// shapes crashes actually produce: truncations and bit flips.
func FuzzLoadCheckpoint(f *testing.F) {
	st := testState(3, 1.25)
	var buf bytes.Buffer
	if err := Encode(&buf, st); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:len(valid)/2])                         // truncated mid-payload
	f.Add(valid[:57])                                   // truncated inside the header
	f.Add(append([]byte(nil), valid[:len(valid)-1]...)) // missing CRC byte
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/3] ^= 0x01
	f.Add(flipped)
	for _, prec := range []quant.Precision{quant.F16, quant.I8} {
		qst := testState(5, 0.75)
		qst.Precision = prec
		var qbuf bytes.Buffer
		if err := Encode(&qbuf, qst); err != nil {
			f.Fatal(err)
		}
		qvalid := qbuf.Bytes()
		f.Add(qvalid)
		f.Add(qvalid[:len(qvalid)*3/4]) // truncated inside the quantized payload
		qflip := append([]byte(nil), qvalid...)
		qflip[len(qflip)/2] ^= 0x10
		f.Add(qflip)
	}
	// The v3 training-mode block: a valid implicit iALS++/CG state, a
	// truncation inside the mode block (header is 7*8 + lambda 4 + weighted
	// 1 + precision 1 = 62 bytes; the block spans 62..72), and bit flips on
	// the mode and solver bytes (which must decode or reject, never panic).
	ist := testState(9, 2.5)
	ist.Implicit = true
	ist.Alpha = 40
	ist.Solver = host.SolverCG
	ist.CGIters = 5
	var ibuf bytes.Buffer
	if err := Encode(&ibuf, ist); err != nil {
		f.Fatal(err)
	}
	ivalid := ibuf.Bytes()
	f.Add(ivalid)
	f.Add(ivalid[:66]) // truncated mid mode block
	for _, off := range []int{62, 67} {
		iflip := append([]byte(nil), ivalid...)
		iflip[off] ^= 0x03
		f.Add(iflip)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := Encode(&out, st); err != nil {
			t.Fatalf("accepted checkpoint failed to re-encode: %v", err)
		}
		if _, err := Decode(bytes.NewReader(out.Bytes())); err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
	})
}
