package checkpoint

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// File is the writable handle the checkpoint writer needs: sequential
// writes, an explicit durability barrier, and close.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// FS abstracts the filesystem operations checkpointing (and the serving
// layer's checkpoint watcher) performs, so tests can substitute a
// deterministic fault-injecting implementation (MemFS) for the real disk.
// All paths are slash-joined by the caller with filepath.Join.
type FS interface {
	MkdirAll(dir string) error
	Create(name string) (File, error)
	Open(name string) (io.ReadCloser, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	// ReadDir returns the names (not full paths) of the entries of dir.
	ReadDir(dir string) ([]string, error)
	// SyncDir flushes the directory entry table, making a preceding
	// Rename durable.
	SyncDir(dir string) error
}

// OS is the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (osFS) Create(name string) (File, error) { return os.Create(name) }

func (osFS) Open(name string) (io.ReadCloser, error) { return os.Open(name) }

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(ents))
	for i, e := range ents {
		names[i] = e.Name()
	}
	return names, nil
}

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// WriteFileAtomic writes a file crash-safely: the content goes to a
// hidden temp file in the same directory, is fsynced, and only then
// renamed over the final path (followed by a directory fsync), so a crash
// at any byte leaves either the old file or the new one — never a torn
// mix. The write callback receives a buffered writer; it must not retain
// it.
func WriteFileAtomic(fsys FS, path string, write func(io.Writer) error) (err error) {
	dir, base := filepath.Dir(path), filepath.Base(path)
	tmp := filepath.Join(dir, tmpPrefix+base)
	f, err := fsys.Create(tmp)
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			fsys.Remove(tmp)
		}
	}()
	bw := bufio.NewWriterSize(f, 1<<20)
	if err = write(bw); err != nil {
		f.Close()
		return err
	}
	if err = bw.Flush(); err != nil {
		f.Close()
		return err
	}
	if err = f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("checkpoint: fsync %s: %w", tmp, err)
	}
	if err = f.Close(); err != nil {
		return err
	}
	if err = fsys.Rename(tmp, path); err != nil {
		return fmt.Errorf("checkpoint: rename %s: %w", base, err)
	}
	if err = fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("checkpoint: fsync dir %s: %w", dir, err)
	}
	return nil
}

// tmpPrefix marks in-progress writes; Latest ignores and GC removes them.
const tmpPrefix = ".tmp-"
