package checkpoint

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/host"
	"repro/internal/linalg"
	"repro/internal/quant"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden checkpoint files")

// goldenState is a fixed small model: every byte of its encoding is
// pinned by testdata/golden_v3*.alsck. Changing the encoder in any way —
// field order, widths, endianness, CRC — breaks this test instead of
// silently breaking users' old checkpoints. A deliberate format change
// must bump FormatVersion, regenerate with -update-golden, and keep (or
// consciously drop) the ability to read the old versions.
func goldenState() *State {
	const k, m, n = 2, 3, 2
	x := linalg.NewDense(m, k)
	y := linalg.NewDense(n, k)
	for i := range x.Data {
		x.Data[i] = float32(i)*0.5 - 1
	}
	for i := range y.Data {
		y.Data[i] = 2 - float32(i)*0.25
	}
	return &State{
		Iteration: 7, K: k, Lambda: 0.1, WeightedLambda: true, Seed: 42,
		Variant: "tb+vec+fus", X: x, Y: y,
		History: []host.IterStats{
			{Iteration: 7, Half: "X", Loss: 3.5, Elapsed: 1500 * time.Microsecond},
			{Iteration: 7, Half: "Y", Loss: 3.25, Elapsed: 2500 * time.Microsecond},
		},
	}
}

func checkGolden(t *testing.T, name string, st *State) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Encode(&buf, st); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with -update-golden after a deliberate format change)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		i := 0
		for i < len(want) && i < buf.Len() && want[i] == buf.Bytes()[i] {
			i++
		}
		t.Fatalf("on-disk checkpoint format drifted (%s): encoded %d bytes, golden %d bytes, first difference at offset %d.\n"+
			"If the change is deliberate: bump FormatVersion and regenerate with -update-golden.",
			name, buf.Len(), len(want), i)
	}
	return want
}

// goldenImplicitState exercises the v3 training-mode block: an implicit
// iALS++ run with a non-default solver hyperparameter set.
func goldenImplicitState() *State {
	st := goldenState()
	st.Implicit = true
	st.Alpha = 40
	st.Solver = host.SolverCG
	st.CGIters = 3
	return st
}

func TestGoldenCheckpointFormat(t *testing.T) {
	want := checkGolden(t, "golden_v3.alsck", goldenState())
	// The golden bytes must also decode back to the golden state.
	st, err := Decode(bytes.NewReader(want))
	if err != nil {
		t.Fatal(err)
	}
	statesEqual(t, goldenState(), st)
}

// TestGoldenImplicitFormat pins the v3 training-mode block byte for byte:
// the implicit flag, confidence α, solver selection and CG budget must
// round-trip through the golden file exactly.
func TestGoldenImplicitFormat(t *testing.T) {
	want := checkGolden(t, "golden_v3_implicit.alsck", goldenImplicitState())
	st, err := Decode(bytes.NewReader(want))
	if err != nil {
		t.Fatal(err)
	}
	statesEqual(t, goldenImplicitState(), st)
	if !st.Implicit || st.Alpha != 40 || st.Solver != host.SolverCG || st.CGIters != 3 || st.BlockSize != 0 {
		t.Fatalf("mode block decoded wrong: %+v", st)
	}
}

// TestGoldenQuantizedFormats pins the quantized factor sections byte for
// byte and checks the decoded factors sit within the recorded
// quantization error of the originals.
func TestGoldenQuantizedFormats(t *testing.T) {
	for _, prec := range []quant.Precision{quant.F16, quant.I8} {
		orig := goldenState()
		orig.Precision = prec
		want := checkGolden(t, fmt.Sprintf("golden_v3_%s.alsck", prec), orig)
		st, err := Decode(bytes.NewReader(want))
		if err != nil {
			t.Fatal(err)
		}
		if st.Precision != prec || st.QX == nil || st.QY == nil {
			t.Fatalf("%v: decoded precision %v, QX %v, QY %v", prec, st.Precision, st.QX, st.QY)
		}
		ref := goldenState()
		if d := float64(linalg.MaxAbsDiff(ref.X, st.X)); d > st.QX.MaxAbsErr+1e-12 {
			t.Errorf("%v: X moved by %g, recorded max error %g", prec, d, st.QX.MaxAbsErr)
		}
		if d := float64(linalg.MaxAbsDiff(ref.Y, st.Y)); d > st.QY.MaxAbsErr+1e-12 {
			t.Errorf("%v: Y moved by %g, recorded max error %g", prec, d, st.QY.MaxAbsErr)
		}
	}
}

// TestGoldenV1StillLoads is the backward-compatibility gate: the pinned
// format-v1 file (written before the precision byte existed) must keep
// decoding to the exact same state, reported as float32 precision and
// explicit-mode Cholesky defaults.
func TestGoldenV1StillLoads(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "golden_v1.alsck"))
	if err != nil {
		t.Fatal(err)
	}
	st, err := Decode(bytes.NewReader(want))
	if err != nil {
		t.Fatalf("format v1 no longer decodes: %v", err)
	}
	if st.Precision != quant.F32 || st.QX != nil || st.QY != nil {
		t.Fatalf("v1 decoded as precision %v (QX %v, QY %v), want plain f32", st.Precision, st.QX, st.QY)
	}
	statesEqual(t, goldenState(), st)
}

// TestGoldenV2StillLoads: pinned format-v2 files (precision byte, no
// training-mode block) must keep decoding — including the quantized
// variants — with the mode fields defaulting to explicit Cholesky.
func TestGoldenV2StillLoads(t *testing.T) {
	for _, tc := range []struct {
		file string
		prec quant.Precision
	}{
		{"golden_v2.alsck", quant.F32},
		{"golden_v2_f16.alsck", quant.F16},
		{"golden_v2_i8.alsck", quant.I8},
	} {
		want, err := os.ReadFile(filepath.Join("testdata", tc.file))
		if err != nil {
			t.Fatal(err)
		}
		st, err := Decode(bytes.NewReader(want))
		if err != nil {
			t.Fatalf("format v2 (%s) no longer decodes: %v", tc.file, err)
		}
		if st.Precision != tc.prec {
			t.Fatalf("%s decoded as precision %v, want %v", tc.file, st.Precision, tc.prec)
		}
		if st.Implicit || st.Alpha != 0 || st.Solver != host.SolverCholesky || st.CGIters != 0 || st.BlockSize != 0 {
			t.Fatalf("%s: v2 file decoded with non-default mode block: %+v", tc.file, st)
		}
		if tc.prec == quant.F32 {
			statesEqual(t, goldenState(), st)
		}
	}
}
