package checkpoint

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/host"
	"repro/internal/linalg"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden checkpoint file")

// goldenState is a fixed small model: every byte of its encoding is
// pinned by testdata/golden_v1.alsck. Changing the encoder in any way —
// field order, widths, endianness, CRC — breaks this test instead of
// silently breaking users' old checkpoints. A deliberate format change
// must bump FormatVersion, regenerate with -update-golden, and keep (or
// consciously drop) the ability to read the old version.
func goldenState() *State {
	const k, m, n = 2, 3, 2
	x := linalg.NewDense(m, k)
	y := linalg.NewDense(n, k)
	for i := range x.Data {
		x.Data[i] = float32(i)*0.5 - 1
	}
	for i := range y.Data {
		y.Data[i] = 2 - float32(i)*0.25
	}
	return &State{
		Iteration: 7, K: k, Lambda: 0.1, WeightedLambda: true, Seed: 42,
		Variant: "tb+vec+fus", X: x, Y: y,
		History: []host.IterStats{
			{Iteration: 7, Half: "X", Loss: 3.5, Elapsed: 1500 * time.Microsecond},
			{Iteration: 7, Half: "Y", Loss: 3.25, Elapsed: 2500 * time.Microsecond},
		},
	}
}

func TestGoldenCheckpointFormat(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, goldenState()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "golden_v1.alsck")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with -update-golden after a deliberate format change)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		i := 0
		for i < len(want) && i < buf.Len() && want[i] == buf.Bytes()[i] {
			i++
		}
		t.Fatalf("on-disk checkpoint format drifted: encoded %d bytes, golden %d bytes, first difference at offset %d.\n"+
			"If the change is deliberate: bump FormatVersion and regenerate with -update-golden.",
			buf.Len(), len(want), i)
	}
	// The golden bytes must also decode back to the golden state.
	st, err := Decode(bytes.NewReader(want))
	if err != nil {
		t.Fatal(err)
	}
	statesEqual(t, goldenState(), st)
}
