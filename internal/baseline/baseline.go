// Package baseline implements the two systems the paper compares against:
//
//   - SAC'15 (Rodrigues et al.): the flat one-thread-per-row ALS whose
//     OpenMP and CUDA forms the paper uses as its baseline (Fig. 1, Fig. 7).
//     These are thin wrappers over the flat kernel spec in internal/kernels
//     and the flat scheduling mode of internal/host.
//
//   - HPDC'16 (cuMF, Tan et al.): a CUDA matrix-factorization library built
//     from generic batched sparse primitives (cusparseScsrmm2,
//     cublasSgeam) and batched factorizations. The paper attributes its win
//     over cuMF at k=10 to cuMF being "specially tuned for the k = 100
//     case" and composed of generic library kernels rather than per-step
//     customized ones. The model here reproduces exactly those causes: tile
//     padding of k up to the library's tile width, generic (non-fused)
//     passes over the data, and fixed per-launch library overhead that
//     dominates on small datasets such as YahooMusic R4 (where the paper
//     measures its largest speedup, 6.8×).
package baseline

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/host"
	"repro/internal/kernels"
	"repro/internal/sim"
	"repro/internal/sparse"
)

// SAC15Sim runs the flat baseline kernel on a simulated device (the CUDA
// baseline when dev is the K20c; the OpenMP baseline when dev is the CPU).
func SAC15Sim(mx *sparse.Matrix, dev *device.Device, k int, lambda float32, iters int, seed int64) (*kernels.Result, error) {
	return kernels.Train(mx, kernels.Config{
		Device: dev, Spec: kernels.Baseline(),
		K: k, Lambda: lambda, Iterations: iters, Seed: seed,
	})
}

// SAC15Host runs the flat baseline as real goroutine-parallel host code.
func SAC15Host(mx *sparse.Matrix, k int, lambda float32, iters int, seed int64) (*host.Result, error) {
	return host.Train(mx, host.Config{K: k, Lambda: lambda, Iterations: iters, Seed: seed, Flat: true})
}

// CuMF models the HPDC'16 library on a simulated GPU.
type CuMFConfig struct {
	Device     *device.Device // must be a GPU
	K          int
	Lambda     float32
	Iterations int
	Seed       int64
}

// cuMF model constants (HPDC'16 structure).
const (
	// cumfTileK is the tile width the library's batched kernels pad the
	// latent dimension to; cuMF's kernels are tuned for k = 100 and issue
	// full tiles regardless of the requested k.
	cumfTileK = 32
	// cumfLaunchesPerUpdate counts the library calls one factor update
	// makes (csrmm, geam, batched factor, batched solve, transposes...).
	cumfLaunchesPerUpdate = 14
	// cumfLaunchOverheadSec is the per-launch driver/runtime cost.
	cumfLaunchOverheadSec = 35e-6
	// cumfGenericPassFactor inflates memory traffic for the non-fused
	// generic pipeline (intermediate matrices written and re-read).
	cumfGenericPassFactor = 2.2
	// cumfBatchedLUCPI: cycles per flop of the batched LU factor+solve.
	cumfBatchedLUCPI = 1.1
)

// TrainCuMF runs the cuMF-style ALS: real arithmetic identical to the other
// solvers (it is the same exact ALS), with the library cost model above.
func TrainCuMF(mx *sparse.Matrix, cfg CuMFConfig) (*kernels.Result, error) {
	if cfg.Device == nil || cfg.Device.Kind != device.GPU {
		return nil, fmt.Errorf("baseline: cuMF requires a GPU device")
	}
	if cfg.K <= 0 {
		cfg.K = 10
	}
	if cfg.Iterations <= 0 {
		cfg.Iterations = 5
	}
	// Real math: reuse the batched kernel implementation for the factors…
	res, err := kernels.Train(mx, kernels.Config{
		Device: cfg.Device,
		Spec:   kernels.Spec{S1Local: true, S2Local: true, S1Register: true},
		K:      cfg.K, Lambda: cfg.Lambda, Iterations: cfg.Iterations, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	// …then replace the timing report with the library cost model.
	res.Report = cuMFReport(mx, cfg)
	return res, nil
}

// cuMFReport estimates cuMF's execution time for the whole run.
func cuMFReport(mx *sparse.Matrix, cfg CuMFConfig) sim.Report {
	d := cfg.Device
	kEff := cfg.K
	if kEff < cumfTileK {
		kEff = cumfTileK // tile padding: lanes beyond k do dead work
	}
	nz := float64(mx.NNZ())
	m := float64(mx.Rows())
	n := float64(mx.Cols())

	var rep sim.Report
	perUpdate := func(rows float64) (s1, s2, s3 device.Counters) {
		// S1+S2 via generic csrmm-style passes: work scales with kEff, and
		// the non-fused pipeline streams intermediates through DRAM.
		steps := nz * float64(kEff) * float64(kEff) / float64(d.WarpSize)
		s1.ALUOps = steps * 0.5
		s1.GlobalTx = nz * float64(kEff) / float64(d.TransactionBytes/4) * cumfGenericPassFactor
		s2.ALUOps = nz * float64(kEff) / float64(d.WarpSize) * cumfGenericPassFactor
		s2.GlobalTx = nz / float64(d.TransactionBytes/4) * cumfGenericPassFactor
		// Batched LU factor+solve (getrfBatched-style, no symmetry, one
		// poorly-occupied block per system): dependence-chained work at
		// ~1 cycle/flop on the padded kEff×kEff tiles.
		kf := float64(kEff)
		s3.Overhead = rows * (kf*kf*kf/3 + kf*kf) * cumfBatchedLUCPI
		s3.GlobalTx = rows * kf * kf / float64(d.TransactionBytes/4)
		return
	}

	cus := float64(d.ComputeUnits)
	addUpdate := func(rows float64) {
		s1, s2, s3 := perUpdate(rows)
		c1, c2, c3 := d.Cycles(s1), d.Cycles(s2), d.Cycles(s3)
		rep.StageCycles[sim.S1] += c1
		rep.StageCycles[sim.S2] += c2
		rep.StageCycles[sim.S3] += c3
		rep.MakespanCycles += (c1 + c2 + c3) / cus
		rep.Total.Add(s1)
		rep.Total.Add(s2)
		rep.Total.Add(s3)
	}
	for it := 0; it < cfg.Iterations; it++ {
		addUpdate(m)
		addUpdate(n)
	}
	rep.Seconds = d.Seconds(rep.MakespanCycles)
	// Library launch overhead: fixed cost per call, paid serially.
	rep.Seconds += float64(cfg.Iterations) * 2 * cumfLaunchesPerUpdate * cumfLaunchOverheadSec
	return rep
}
