package baseline

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/device"
	"repro/internal/kernels"
	"repro/internal/linalg"
	"repro/internal/metrics"
	"repro/internal/sparse"
)

func testMatrix(t testing.TB) *sparse.Matrix {
	t.Helper()
	return dataset.YahooR4.ScaledForBench(0.05).Generate(31).Matrix
}

func TestSAC15SimRuns(t *testing.T) {
	mx := testMatrix(t)
	for _, dev := range device.All() {
		res, err := SAC15Sim(mx, dev, 10, 0.1, 2, 3)
		if err != nil {
			t.Fatalf("%s: %v", dev.Kind, err)
		}
		if res.Seconds() <= 0 {
			t.Fatalf("%s: no simulated time", dev.Kind)
		}
		if rmse := metrics.RMSE(mx.R, res.X, res.Y); math.IsNaN(rmse) || rmse > 1.5 {
			t.Fatalf("%s: baseline RMSE %g", dev.Kind, rmse)
		}
	}
}

func TestSAC15HostMatchesSimFactors(t *testing.T) {
	mx := testMatrix(t)
	h, err := SAC15Host(mx, 10, 0.1, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	s, err := SAC15Sim(mx, device.K20c(), 10, 0.1, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if d := linalg.MaxAbsDiff(h.X, s.X); d > 2e-3 {
		t.Fatalf("host/sim baseline factors differ by %g", d)
	}
}

func TestCuMFRequiresGPU(t *testing.T) {
	mx := testMatrix(t)
	if _, err := TrainCuMF(mx, CuMFConfig{Device: device.XeonE52670()}); err == nil {
		t.Fatal("cuMF accepted a CPU device")
	}
	if _, err := TrainCuMF(mx, CuMFConfig{}); err == nil {
		t.Fatal("cuMF accepted nil device")
	}
}

func TestCuMFProducesValidModel(t *testing.T) {
	mx := testMatrix(t)
	res, err := TrainCuMF(mx, CuMFConfig{Device: device.K20c(), K: 10, Lambda: 0.1, Iterations: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if rmse := metrics.RMSE(mx.R, res.X, res.Y); math.IsNaN(rmse) || rmse > 1.5 {
		t.Fatalf("cuMF RMSE %g", rmse)
	}
	if res.Seconds() <= 0 {
		t.Fatal("cuMF charged no time")
	}
}

// TestCuMFSlowerThanCustomKernels: the paper's core comparison — the
// generic library pipeline loses to the per-step customized kernels at
// k=10 on every dataset.
func TestCuMFSlowerThanCustomKernels(t *testing.T) {
	mx := testMatrix(t)
	gpu := device.K20c()
	ours, err := kernels.Train(mx, kernels.Config{
		Device: gpu, Spec: kernels.Spec{S1Local: true, S2Local: true, S1Register: true},
		K: 10, Lambda: 0.1, Iterations: 3, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	cm, err := TrainCuMF(mx, CuMFConfig{Device: gpu, K: 10, Lambda: 0.1, Iterations: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	ratio := cm.Seconds() / ours.Seconds()
	if ratio < 1.3 {
		t.Fatalf("cuMF only %.2fx slower; paper reports 2.2-6.8x", ratio)
	}
}

// TestCuMFTilePaddingCost: the k=10 run pays nearly the k=32 price —
// the mechanism behind the paper's "tuned for k=100" explanation.
func TestCuMFTilePaddingCost(t *testing.T) {
	mx := testMatrix(t)
	gpu := device.K20c()
	t10, err := TrainCuMF(mx, CuMFConfig{Device: gpu, K: 10, Lambda: 0.1, Iterations: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	t32, err := TrainCuMF(mx, CuMFConfig{Device: gpu, K: 32, Lambda: 0.1, Iterations: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rel := t32.Report.Seconds / t10.Report.Seconds; rel > 1.05 {
		t.Fatalf("k=32 costs %.2fx of k=10 in the cuMF model; tile padding should make them equal", rel)
	}
}
