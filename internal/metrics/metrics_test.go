package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/linalg"
	"repro/internal/sparse"
)

// tinyProblem builds a 2x2 rating matrix and exact rank-1 factors so error
// metrics have closed-form values.
func tinyProblem(t *testing.T) (*sparse.CSR, *linalg.Dense, *linalg.Dense) {
	t.Helper()
	coo := sparse.NewCOO(2, 2)
	coo.Append(0, 0, 2)
	coo.Append(0, 1, 4)
	coo.Append(1, 0, 1)
	m, err := coo.ToCSR()
	if err != nil {
		t.Fatal(err)
	}
	// x = [[2],[1]], y = [[1],[2]] -> predictions: (0,0)=2 (0,1)=4 (1,0)=1.
	x := linalg.NewDenseFrom(2, 1, []float32{2, 1})
	y := linalg.NewDenseFrom(2, 1, []float32{1, 2})
	return m, x, y
}

func TestRMSEPerfectFit(t *testing.T) {
	m, x, y := tinyProblem(t)
	if got := RMSE(m, x, y); got != 0 {
		t.Fatalf("RMSE = %g, want 0", got)
	}
	if got := MAE(m, x, y); got != 0 {
		t.Fatalf("MAE = %g, want 0", got)
	}
}

func TestRMSEKnownError(t *testing.T) {
	m, x, y := tinyProblem(t)
	x.Data[0] = 3 // predictions become 3 and 6: errors 1 and 2 on row 0.
	want := math.Sqrt((1.0 + 4.0 + 0.0) / 3.0)
	if got := RMSE(m, x, y); math.Abs(got-want) > 1e-12 {
		t.Fatalf("RMSE = %g, want %g", got, want)
	}
	wantMAE := (1.0 + 2.0 + 0.0) / 3.0
	if got := MAE(m, x, y); math.Abs(got-wantMAE) > 1e-12 {
		t.Fatalf("MAE = %g, want %g", got, wantMAE)
	}
}

func TestRMSEEmptyIsNaN(t *testing.T) {
	coo := sparse.NewCOO(2, 2)
	m, err := coo.ToCSR()
	if err != nil {
		t.Fatal(err)
	}
	x := linalg.NewDense(2, 1)
	y := linalg.NewDense(2, 1)
	if got := RMSE(m, x, y); !math.IsNaN(got) {
		t.Fatalf("RMSE on empty = %g, want NaN", got)
	}
	if got := MAE(m, x, y); !math.IsNaN(got) {
		t.Fatalf("MAE on empty = %g, want NaN", got)
	}
}

func TestRegularizedLoss(t *testing.T) {
	m, x, y := tinyProblem(t)
	// Perfect fit: loss is pure regularization.
	// Plain: λ(|x_0|²+|x_1|²+|y_0|²+|y_1|²) = λ(4+1+1+4) = 10λ.
	if got := RegularizedLoss(m, x, y, 0.5, false); math.Abs(got-5) > 1e-9 {
		t.Fatalf("plain loss = %g, want 5", got)
	}
	// Weighted: λ(2·4 + 1·1 + 2·1 + 1·4) = 15λ.
	if got := RegularizedLoss(m, x, y, 0.5, true); math.Abs(got-7.5) > 1e-9 {
		t.Fatalf("weighted loss = %g, want 7.5", got)
	}
}

func TestTopNExcludesRated(t *testing.T) {
	m, x, y := tinyProblem(t)
	// User 1 rated item 0 only; top-1 must be item 1.
	got := TopN(m, x, y, 1, 5)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("TopN = %v, want [1]", got)
	}
}

func TestTopNOrdering(t *testing.T) {
	coo := sparse.NewCOO(1, 4)
	m, err := coo.ToCSR()
	if err != nil {
		t.Fatal(err)
	}
	x := linalg.NewDenseFrom(1, 1, []float32{1})
	y := linalg.NewDenseFrom(4, 1, []float32{0.3, 0.9, 0.1, 0.9})
	got := TopN(m, x, y, 0, 3)
	// Scores: item1=0.9, item3=0.9 (tie -> lower index first), item0=0.3.
	want := []int{1, 3, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TopN = %v, want %v", got, want)
		}
	}
}

func TestPrecisionRecallBounds(t *testing.T) {
	train := sparse.NewCOO(2, 5)
	train.Append(0, 0, 5)
	trainM, err := train.ToCSR()
	if err != nil {
		t.Fatal(err)
	}
	test := sparse.NewCOO(2, 5)
	test.Append(0, 1, 5) // relevant
	test.Append(0, 2, 1) // not relevant at threshold 4
	testM, err := test.ToCSR()
	if err != nil {
		t.Fatal(err)
	}
	x := linalg.NewDenseFrom(2, 1, []float32{1, 1})
	y := linalg.NewDenseFrom(5, 1, []float32{0.1, 0.9, 0.5, 0.2, 0.3})
	p, r := PrecisionRecallAtN(trainM, testM, x, y, 1, 4)
	// Top-1 unrated item for user 0 is item 1, which is relevant.
	if p != 1 || r != 1 {
		t.Fatalf("precision=%g recall=%g, want 1,1", p, r)
	}
	p, r = PrecisionRecallAtN(trainM, testM, x, y, 2, 4)
	if p != 0.5 || r != 1 {
		t.Fatalf("n=2: precision=%g recall=%g, want 0.5,1", p, r)
	}
}

func TestPrecisionRecallNoRelevant(t *testing.T) {
	train := sparse.NewCOO(1, 3)
	trainM, _ := train.ToCSR()
	test := sparse.NewCOO(1, 3)
	testM, _ := test.ToCSR()
	x := linalg.NewDense(1, 1)
	y := linalg.NewDense(3, 1)
	p, r := PrecisionRecallAtN(trainM, testM, x, y, 2, 4)
	if !math.IsNaN(p) || !math.IsNaN(r) {
		t.Fatalf("expected NaN for empty relevance, got %g %g", p, r)
	}
}

func TestSummaryString(t *testing.T) {
	s := Summary{Dataset: "NTFX", Platform: "GPU", Variant: "tb+loc", Seconds: 1.5, RMSE: 0.9}
	if s.String() == "" {
		t.Fatal("empty Summary string")
	}
}

// TestTopNMatchesFullSort: property check of the heap selection against a
// straightforward full sort.
func TestTopNMatchesFullSort(t *testing.T) {
	f := func(seed int64, n8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		items := rng.Intn(200) + 1
		n := int(n8)%20 + 1
		y := linalg.NewDense(items, 3)
		for i := range y.Data {
			y.Data[i] = rng.Float32()*2 - 1
		}
		x := linalg.NewDenseFrom(1, 3, []float32{rng.Float32(), rng.Float32(), rng.Float32()})
		coo := sparse.NewCOO(1, items)
		for i := 0; i < items; i++ {
			if rng.Float64() < 0.3 {
				coo.Append(0, i, 5)
			}
		}
		coo.Rows, coo.Cols = 1, items
		m, err := coo.ToCSR()
		if err != nil {
			return false
		}
		got := TopN(m, x, y, 0, n)

		// Reference: full sort.
		type sc struct {
			item  int
			score float64
		}
		var all []sc
		rated := map[int]bool{}
		cols, _ := m.Row(0)
		for _, c := range cols {
			rated[int(c)] = true
		}
		for i := 0; i < items; i++ {
			if rated[i] {
				continue
			}
			all = append(all, sc{i, linalg.Dot(x.Row(0), y.Row(i))})
		}
		sort.Slice(all, func(a, b int) bool {
			if all[a].score != all[b].score {
				return all[a].score > all[b].score
			}
			return all[a].item < all[b].item
		})
		want := n
		if want > len(all) {
			want = len(all)
		}
		if len(got) != want {
			return false
		}
		for i := 0; i < want; i++ {
			if got[i] != all[i].item {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestTopNZero(t *testing.T) {
	m, x, y := tinyProblem(t)
	if got := TopN(m, x, y, 0, 0); len(got) != 0 {
		t.Fatalf("TopN(0) = %v", got)
	}
}

// ImplicitLoss collapses the dense m×n confidence sum with the Gram trick;
// pin it against the brute-force double loop on a small random problem.
func TestImplicitLossMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	const m, n, k = 12, 9, 4
	coo := sparse.NewCOO(m, n)
	for u := 0; u < m; u++ {
		for i := 0; i < n; i++ {
			if rng.Float64() < 0.3 {
				coo.Append(u, i, float32(rng.Intn(5)+1))
			}
		}
	}
	r, err := coo.ToCSR()
	if err != nil {
		t.Fatal(err)
	}
	x, y := linalg.NewDense(m, k), linalg.NewDense(n, k)
	for i := range x.Data {
		x.Data[i] = rng.Float32() - 0.5
	}
	for i := range y.Data {
		y.Data[i] = rng.Float32() - 0.5
	}
	const alpha, lambda = 7.5, 0.3

	// Brute force: every (u,i) pair with c=1+α·r, p=1 for observed.
	obs := make(map[[2]int]float64)
	for u := 0; u < m; u++ {
		cols, vals := r.Row(u)
		for z, c := range cols {
			obs[[2]int{u, int(c)}] = float64(vals[z])
		}
	}
	var want float64
	for u := 0; u < m; u++ {
		for i := 0; i < n; i++ {
			s := linalg.Dot(x.Row(u), y.Row(i))
			conf, pref := 1.0, 0.0
			if v, ok := obs[[2]int{u, i}]; ok {
				conf, pref = 1+alpha*v, 1
			}
			d := pref - s
			want += conf * d * d
		}
	}
	for u := 0; u < m; u++ {
		want += lambda * linalg.Nrm2Sq(x.Row(u))
	}
	for i := 0; i < n; i++ {
		want += lambda * linalg.Nrm2Sq(y.Row(i))
	}

	got := ImplicitLoss(r, x, y, alpha, lambda)
	if d := math.Abs(got - want); d > 1e-6*(1+math.Abs(want)) {
		t.Fatalf("ImplicitLoss = %g, brute force = %g (diff %g)", got, want, d)
	}
}
