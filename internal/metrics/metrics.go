// Package metrics provides the evaluation measures used to verify that the
// reproduced ALS solver actually learns: RMSE and MAE on held-out ratings,
// the regularized squared-error loss the algorithm minimizes (Eq. 2 of the
// paper), and ranking measures (precision/recall@N) for the recommender
// examples.
package metrics

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/linalg"
	"repro/internal/sparse"
)

// RMSE returns the root-mean-square error of the factorization X·Yᵀ against
// the stored ratings of r. Factors are m×k and n×k row-major. Empty test
// sets return NaN.
func RMSE(r *sparse.CSR, x, y *linalg.Dense) float64 {
	se, n := squaredError(r, x, y)
	if n == 0 {
		return math.NaN()
	}
	return math.Sqrt(se / float64(n))
}

// MAE returns the mean absolute error of the factorization on r's ratings.
func MAE(r *sparse.CSR, x, y *linalg.Dense) float64 {
	var sum float64
	var n int
	for u := 0; u < r.NumRows; u++ {
		xu := x.Row(u)
		cols, vals := r.Row(u)
		for j, c := range cols {
			pred := linalg.Dot(xu, y.Row(int(c)))
			sum += math.Abs(pred - float64(vals[j]))
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

func squaredError(r *sparse.CSR, x, y *linalg.Dense) (float64, int) {
	var se float64
	var n int
	for u := 0; u < r.NumRows; u++ {
		xu := x.Row(u)
		cols, vals := r.Row(u)
		for j, c := range cols {
			pred := linalg.Dot(xu, y.Row(int(c)))
			d := pred - float64(vals[j])
			se += d * d
			n++
		}
	}
	return se, n
}

// RegularizedLoss evaluates the paper's Eq. 2 objective:
//
//	L(X,Y) = Σ_{(u,i)∈Ω} (r_ui − x_u·y_i)² + λ·Σ_u |Ω_u||x_u|² + λ·Σ_i |Ω_i||y_i|²
//
// with the weighted-λ convention (ALS-WR, Zhou et al.) when weighted is
// true, or the plain λ(|x_u|²+|y_i|²) convention summed over observed pairs
// when false. ALS with λ>0 must not increase this between half-steps; the
// property tests rely on that invariant.
func RegularizedLoss(r *sparse.CSR, x, y *linalg.Dense, lambda float64, weighted bool) float64 {
	se, _ := squaredError(r, x, y)
	reg := 0.0
	c := r.ToCSC()
	if weighted {
		for u := 0; u < r.NumRows; u++ {
			reg += float64(r.RowNNZ(u)) * linalg.Nrm2Sq(x.Row(u))
		}
		for i := 0; i < r.NumCols; i++ {
			reg += float64(c.ColNNZ(i)) * linalg.Nrm2Sq(y.Row(i))
		}
	} else {
		// Plain convention: each observed pair contributes λ(|x_u|²+|y_i|²)
		// exactly once per its row and column membership.
		for u := 0; u < r.NumRows; u++ {
			if r.RowNNZ(u) > 0 {
				reg += linalg.Nrm2Sq(x.Row(u))
			}
		}
		for i := 0; i < r.NumCols; i++ {
			if c.ColNNZ(i) > 0 {
				reg += linalg.Nrm2Sq(y.Row(i))
			}
		}
	}
	return se + lambda*reg
}

// ImplicitLoss evaluates the implicit-feedback (Hu/Koren/Volinsky) objective
//
//	L(X,Y) = Σ_u Σ_i c_ui (p_ui − x_u·y_i)² + λ(Σ_u|x_u|² + Σ_i|y_i|²)
//
// with preference p_ui = 1 for observed pairs (0 otherwise) and confidence
// c_ui = 1 + α·r_ui (1 for unobserved). The dense m×n sum collapses via the
// Gram trick: the unobserved baseline Σ_all (x·y)² is Σ_u x_uᵀ(YᵀY)x_u, and
// each observed pair adds the correction c(1−s)² − s². Exact per-row solves
// cannot increase this between half-steps (the solvers tests pin it).
func ImplicitLoss(r *sparse.CSR, x, y *linalg.Dense, alpha, lambda float64) float64 {
	k := x.Cols
	gram := make([]float64, k*k)
	for row := 0; row < y.Rows; row++ {
		f := y.Row(row)
		for i := 0; i < k; i++ {
			fi := float64(f[i])
			gi := gram[i*k:]
			for j := i; j < k; j++ {
				gi[j] += fi * float64(f[j])
			}
		}
	}
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			gram[j*k+i] = gram[i*k+j]
		}
	}
	var loss float64
	gx := make([]float64, k)
	for u := 0; u < r.NumRows; u++ {
		xu := x.Row(u)
		// Baseline over all items: x_uᵀ G x_u.
		for i := 0; i < k; i++ {
			var s float64
			gi := gram[i*k:]
			for j := 0; j < k; j++ {
				s += gi[j] * float64(xu[j])
			}
			gx[i] = s
		}
		for i := 0; i < k; i++ {
			loss += float64(xu[i]) * gx[i]
		}
		// Observed corrections.
		cols, vals := r.Row(u)
		for z, c := range cols {
			s := linalg.Dot(xu, y.Row(int(c)))
			conf := 1 + alpha*float64(vals[z])
			d := 1 - s
			loss += conf*d*d - s*s
		}
	}
	var reg float64
	for u := 0; u < x.Rows; u++ {
		reg += linalg.Nrm2Sq(x.Row(u))
	}
	for i := 0; i < y.Rows; i++ {
		reg += linalg.Nrm2Sq(y.Row(i))
	}
	return loss + lambda*reg
}

// TopN returns the indices of the n highest-scoring unrated items for user
// u, scored by x_u·y_i. Items already rated in r are excluded. Ties are
// broken by lower index for determinism. A bounded min-heap (TopK) keeps
// the selection O(items·log n) instead of sorting every candidate — n is
// tens while catalogs are hundreds of thousands.
func TopN(r *sparse.CSR, x, y *linalg.Dense, u, n int) []int {
	rated := make(map[int]bool)
	cols, _ := r.Row(u)
	for _, c := range cols {
		rated[int(c)] = true
	}
	xu := x.Row(u)
	t := NewTopK(n)
	for i := 0; i < y.Rows; i++ {
		if rated[i] {
			continue
		}
		t.Push(i, linalg.Dot(xu, y.Row(i)))
	}
	scored := t.Drain()
	out := make([]int, len(scored))
	for i, s := range scored {
		out[i] = s.Item
	}
	return out
}

// TopNSort is the full-scan reference selection: it scores every candidate,
// sorts the whole catalog, and takes the first n. O(items·log items) — kept
// as the differential-test oracle and the benchmark baseline the heap
// (TopN) and the sharded serving scorer are measured against.
func TopNSort(r *sparse.CSR, x, y *linalg.Dense, u, n int) []int {
	rated := make(map[int]bool)
	cols, _ := r.Row(u)
	for _, c := range cols {
		rated[int(c)] = true
	}
	xu := x.Row(u)
	all := make([]Scored, 0, y.Rows)
	for i := 0; i < y.Rows; i++ {
		if rated[i] {
			continue
		}
		all = append(all, Scored{Item: i, Score: linalg.Dot(xu, y.Row(i))})
	}
	sort.Slice(all, func(a, b int) bool { return weaker(all[b], all[a]) })
	if n < 0 {
		n = 0
	}
	if n > len(all) {
		n = len(all)
	}
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = all[i].Item
	}
	return out
}

// PrecisionRecallAtN scores top-N recommendations against a held-out test
// set: an item counts as relevant if the user rated it at least relThresh in
// test. Returns macro-averaged precision and recall over users with at least
// one relevant test item.
func PrecisionRecallAtN(train, test *sparse.CSR, x, y *linalg.Dense, n int, relThresh float32) (precision, recall float64) {
	var pSum, rSum float64
	users := 0
	for u := 0; u < test.NumRows; u++ {
		cols, vals := test.Row(u)
		relevant := make(map[int]bool)
		for j, c := range cols {
			if vals[j] >= relThresh {
				relevant[int(c)] = true
			}
		}
		if len(relevant) == 0 {
			continue
		}
		users++
		hits := 0
		for _, item := range TopN(train, x, y, u, n) {
			if relevant[item] {
				hits++
			}
		}
		pSum += float64(hits) / float64(n)
		rSum += float64(hits) / float64(len(relevant))
	}
	if users == 0 {
		return math.NaN(), math.NaN()
	}
	return pSum / float64(users), rSum / float64(users)
}

// Summary is a compact per-run record used by the experiment harness.
type Summary struct {
	Dataset   string
	Platform  string
	Variant   string
	Seconds   float64 // simulated or wall-clock, per 5 ALS iterations
	RMSE      float64
	Iteration int
}

// String renders one result row.
func (s Summary) String() string {
	return fmt.Sprintf("%-6s %-4s %-28s %10.4fs rmse=%.4f", s.Dataset, s.Platform, s.Variant, s.Seconds, s.RMSE)
}
