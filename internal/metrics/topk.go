package metrics

import "sort"

// Scored pairs an item index with its predicted score.
type Scored struct {
	Item  int
	Score float64
}

// TopK is a bounded min-heap that retains the k strongest Scored entries
// seen so far: the weakest survivor sits at the root and is evicted as
// stronger candidates arrive, so selecting the top k of N candidates costs
// O(N·log k) instead of the O(N·log N) full sort. Ties are broken toward
// the lower item index for determinism. Both the evaluation-side TopN and
// the serving-side sharded scorer build on it; per-shard heaps merge with
// Merge and drain sorted with Drain.
type TopK struct {
	k int
	h []Scored
}

// NewTopK returns an empty selector retaining the k strongest entries.
// k <= 0 yields a selector that retains nothing.
func NewTopK(k int) *TopK {
	if k < 0 {
		k = 0
	}
	return &TopK{k: k, h: make([]Scored, 0, k)}
}

// weaker reports whether a loses to b: lower score, with the higher item
// index losing ties (so the lower index is kept among equals).
func weaker(a, b Scored) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.Item > b.Item
}

// Len returns the number of retained entries.
func (t *TopK) Len() int { return len(t.h) }

// Threshold returns the weakest retained entry and whether the selector is
// full; until it is full every candidate is admitted.
func (t *TopK) Threshold() (Scored, bool) {
	if len(t.h) < t.k || t.k == 0 {
		return Scored{}, false
	}
	return t.h[0], true
}

// Push offers a candidate, keeping only the k strongest.
func (t *TopK) Push(item int, score float64) {
	s := Scored{Item: item, Score: score}
	if len(t.h) < t.k {
		t.h = append(t.h, s)
		t.siftUp(len(t.h) - 1)
		return
	}
	if t.k > 0 && weaker(t.h[0], s) {
		t.h[0] = s
		t.siftDown(0)
	}
}

// Merge offers every entry retained by o to t. o is left untouched.
func (t *TopK) Merge(o *TopK) {
	for _, s := range o.h {
		t.Push(s.Item, s.Score)
	}
}

// Reset empties the selector in place, keeping its backing storage, so a
// steady-state serving loop can reuse one selector with zero allocations.
func (t *TopK) Reset() { t.h = t.h[:0] }

// Drain returns the retained entries strongest-first and resets the
// selector to empty.
func (t *TopK) Drain() []Scored {
	out := t.h
	t.h = make([]Scored, 0, t.k)
	sort.Slice(out, func(a, b int) bool { return weaker(out[b], out[a]) })
	return out
}

func (t *TopK) siftUp(c int) {
	for c > 0 {
		p := (c - 1) / 2
		if !weaker(t.h[c], t.h[p]) {
			return
		}
		t.h[c], t.h[p] = t.h[p], t.h[c]
		c = p
	}
}

func (t *TopK) siftDown(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(t.h) && weaker(t.h[l], t.h[min]) {
			min = l
		}
		if r < len(t.h) && weaker(t.h[r], t.h[min]) {
			min = r
		}
		if min == i {
			return
		}
		t.h[i], t.h[min] = t.h[min], t.h[i]
		i = min
	}
}
