package metrics

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

func TestTopKSelectsStrongest(t *testing.T) {
	tk := NewTopK(3)
	for i, s := range []float64{5, 1, 9, 7, 3, 8} {
		tk.Push(i, s)
	}
	got := tk.Drain()
	want := []Scored{{Item: 2, Score: 9}, {Item: 5, Score: 8}, {Item: 3, Score: 7}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	if tk.Len() != 0 {
		t.Fatal("Drain did not reset")
	}
}

func TestTopKTiesPreferLowerIndex(t *testing.T) {
	tk := NewTopK(2)
	for i := 4; i >= 0; i-- {
		tk.Push(i, 1.0)
	}
	got := tk.Drain()
	want := []Scored{{Item: 0, Score: 1}, {Item: 1, Score: 1}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestTopKMergeEqualsPooledPush(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	scores := make([]float64, 500)
	for i := range scores {
		scores[i] = rng.NormFloat64()
	}
	// Push everything into one selector...
	whole := NewTopK(10)
	for i, s := range scores {
		whole.Push(i, s)
	}
	// ...and the same split across 4 shards merged together.
	merged := NewTopK(10)
	for shard := 0; shard < 4; shard++ {
		part := NewTopK(10)
		for i := shard; i < len(scores); i += 4 {
			part.Push(i, scores[i])
		}
		merged.Merge(part)
	}
	if a, b := whole.Drain(), merged.Drain(); !reflect.DeepEqual(a, b) {
		t.Fatalf("merged shards %v != whole %v", b, a)
	}
}

func TestTopKDegenerate(t *testing.T) {
	tk := NewTopK(0)
	tk.Push(1, 5)
	if got := tk.Drain(); len(got) != 0 {
		t.Fatalf("k=0 retained %v", got)
	}
	tk = NewTopK(-3)
	tk.Push(1, 5)
	if got := tk.Drain(); len(got) != 0 {
		t.Fatalf("negative k retained %v", got)
	}
	if _, full := NewTopK(2).Threshold(); full {
		t.Fatal("empty selector claims to be full")
	}
}

func TestTopKThreshold(t *testing.T) {
	tk := NewTopK(2)
	tk.Push(0, 5)
	tk.Push(1, 9)
	weakest, full := tk.Threshold()
	if !full || weakest.Score != 5 {
		t.Fatalf("threshold = %v full=%v", weakest, full)
	}
}

// TestTopKRandomAgainstSort: property check against a full sort oracle.
func TestTopKRandomAgainstSort(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(400)
		k := 1 + rng.Intn(30)
		all := make([]Scored, n)
		tk := NewTopK(k)
		for i := 0; i < n; i++ {
			// Coarse scores force plenty of ties.
			s := float64(rng.Intn(10))
			all[i] = Scored{Item: i, Score: s}
			tk.Push(i, s)
		}
		sort.Slice(all, func(a, b int) bool { return weaker(all[b], all[a]) })
		if k > n {
			k = n
		}
		want := all[:k]
		if got := tk.Drain(); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d (n=%d k=%d): got %v, want %v", trial, n, k, got, want)
		}
	}
}
