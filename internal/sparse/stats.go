package sparse

import (
	"fmt"
	"math"
	"sort"
)

// DegreeStats summarizes the distribution of nonzeros per row (or column).
// The paper's thread-batching argument rests on this distribution being
// heavily skewed for real recommender datasets: with one flat thread per
// row, a warp's execution time is the maximum row length among its 32 lanes,
// so skew translates directly into idle lanes.
type DegreeStats struct {
	Count  int     // number of rows/columns
	Min    int     // shortest row
	Max    int     // longest row
	Mean   float64 // average nonzeros per row
	Median float64
	P90    float64 // 90th percentile
	P99    float64 // 99th percentile
	StdDev float64
	// CoV is the coefficient of variation (StdDev/Mean), the paper's
	// "significantly uneven" measure: 0 for perfectly balanced rows.
	CoV float64
	// Empty is the number of rows with no nonzeros (skipped by ALS,
	// Algorithm 2 line 5: "if omegaSize > 0").
	Empty int
}

// RowStats computes the degree distribution over the rows of a CSR matrix.
func RowStats(m *CSR) DegreeStats {
	deg := make([]int, m.NumRows)
	for r := 0; r < m.NumRows; r++ {
		deg[r] = m.RowNNZ(r)
	}
	return degreeStats(deg)
}

// ColStats computes the degree distribution over the columns of a CSC matrix.
func ColStats(m *CSC) DegreeStats {
	deg := make([]int, m.NumCols)
	for c := 0; c < m.NumCols; c++ {
		deg[c] = m.ColNNZ(c)
	}
	return degreeStats(deg)
}

func degreeStats(deg []int) DegreeStats {
	s := DegreeStats{Count: len(deg)}
	if len(deg) == 0 {
		return s
	}
	sorted := make([]int, len(deg))
	copy(sorted, deg)
	sort.Ints(sorted)
	s.Min = sorted[0]
	s.Max = sorted[len(sorted)-1]
	var sum, sumSq float64
	for _, d := range deg {
		sum += float64(d)
		sumSq += float64(d) * float64(d)
		if d == 0 {
			s.Empty++
		}
	}
	s.Mean = sum / float64(len(deg))
	variance := sumSq/float64(len(deg)) - s.Mean*s.Mean
	if variance < 0 {
		variance = 0
	}
	s.StdDev = math.Sqrt(variance)
	if s.Mean > 0 {
		s.CoV = s.StdDev / s.Mean
	}
	s.Median = percentile(sorted, 0.5)
	s.P90 = percentile(sorted, 0.9)
	s.P99 = percentile(sorted, 0.99)
	return s
}

// percentile returns the p-quantile (0<=p<=1) of pre-sorted integer data
// using nearest-rank interpolation.
func percentile(sorted []int, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return float64(sorted[lo])
	}
	frac := pos - float64(lo)
	return float64(sorted[lo])*(1-frac) + float64(sorted[hi])*frac
}

// WarpImbalance estimates the fraction of lane-cycles wasted when rows are
// assigned one-per-lane to SIMT groups of the given width, as in the flat
// baseline kernel. It equals 1 - sum(len)/ (groups * groupMax), aggregated
// over consecutive groups of `width` rows. A balanced matrix gives ~0; a
// skewed recommender matrix gives a large fraction, quantifying the paper's
// "unbalanced thread use" diagnosis.
func WarpImbalance(m *CSR, width int) float64 {
	if width <= 0 {
		panic(fmt.Sprintf("sparse: non-positive warp width %d", width))
	}
	var useful, total int64
	for base := 0; base < m.NumRows; base += width {
		end := base + width
		if end > m.NumRows {
			end = m.NumRows
		}
		var groupMax int64
		for r := base; r < end; r++ {
			l := int64(m.RowNNZ(r))
			useful += l
			if l > groupMax {
				groupMax = l
			}
		}
		total += groupMax * int64(end-base)
	}
	if total == 0 {
		return 0
	}
	return 1 - float64(useful)/float64(total)
}

// String formats the stats in one line for reports.
func (s DegreeStats) String() string {
	return fmt.Sprintf("count=%d min=%d max=%d mean=%.1f median=%.0f p90=%.0f p99=%.0f cov=%.2f empty=%d",
		s.Count, s.Min, s.Max, s.Mean, s.Median, s.P90, s.P99, s.CoV, s.Empty)
}
