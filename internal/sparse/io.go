package sparse

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadTriples parses the paper's dataset format, one rating per line:
//
//	<userID> <itemID> <rating>
//
// Fields may be separated by spaces, tabs or commas (Movielens uses "::"
// which is also accepted). Lines starting with '%' or '#' are comments.
// IDs are 0-based after parsing; set oneBased if the file uses 1-based IDs
// (Movielens and Netflix do).
func ReadTriples(r io.Reader, oneBased bool) (*COO, error) {
	coo := NewCOO(0, 0)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") || strings.HasPrefix(line, "#") {
			continue
		}
		fields := splitRating(line)
		if len(fields) < 3 {
			return nil, fmt.Errorf("sparse: line %d: want at least 3 fields, got %d", lineNo, len(fields))
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("sparse: line %d: bad user id %q: %v", lineNo, fields[0], err)
		}
		i, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("sparse: line %d: bad item id %q: %v", lineNo, fields[1], err)
		}
		v, err := strconv.ParseFloat(fields[2], 32)
		if err != nil {
			return nil, fmt.Errorf("sparse: line %d: bad rating %q: %v", lineNo, fields[2], err)
		}
		if oneBased {
			u--
			i--
		}
		if u < 0 || i < 0 {
			return nil, fmt.Errorf("sparse: line %d: negative id after adjustment (%d,%d)", lineNo, u, i)
		}
		coo.Append(u, i, float32(v))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return coo, nil
}

// splitRating handles space, tab, comma and "::" separated rating lines.
func splitRating(line string) []string {
	if strings.Contains(line, "::") {
		return strings.Split(line, "::")
	}
	return strings.FieldsFunc(line, func(r rune) bool {
		return r == ' ' || r == '\t' || r == ','
	})
}

// WriteTriples writes the matrix in the `<userID, itemID, rating>` text
// format, row-major, 0-based IDs.
func WriteTriples(w io.Writer, m *CSR) error {
	bw := bufio.NewWriter(w)
	for r := 0; r < m.NumRows; r++ {
		cols, vals := m.Row(r)
		for j, c := range cols {
			if _, err := fmt.Fprintf(bw, "%d\t%d\t%g\n", r, c, vals[j]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// binaryMagic identifies the binary CSR container written by WriteBinary.
const binaryMagic = uint32(0x43535231) // "CSR1"

// WriteBinary writes a compact little-endian binary encoding of the CSR
// matrix: magic, dims, nnz, then the three arrays. Binary snapshots make
// repeated benchmark runs on large synthetic datasets cheap to reload.
func WriteBinary(w io.Writer, m *CSR) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	hdr := []uint64{uint64(binaryMagic), uint64(m.NumRows), uint64(m.NumCols), uint64(m.NNZ())}
	for _, h := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, m.RowPtr); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, m.ColIdx); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, m.Val); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadBinary reads a matrix written by WriteBinary and validates it.
func ReadBinary(r io.Reader) (*CSR, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var hdr [4]uint64
	for i := range hdr {
		if err := binary.Read(br, binary.LittleEndian, &hdr[i]); err != nil {
			return nil, fmt.Errorf("sparse: reading header: %w", err)
		}
	}
	if uint32(hdr[0]) != binaryMagic {
		return nil, fmt.Errorf("sparse: bad magic %#x", hdr[0])
	}
	// Reject corrupt headers before allocating: the largest dataset this
	// library targets (full YahooMusic R1) has ~1.2e8 nonzeros.
	const maxDim, maxNNZ = uint64(1) << 33, uint64(1) << 31
	if hdr[1] > maxDim || hdr[2] > maxDim || hdr[3] > maxNNZ {
		return nil, fmt.Errorf("sparse: implausible header dims %dx%d nnz %d", hdr[1], hdr[2], hdr[3])
	}
	m := &CSR{
		NumRows: int(hdr[1]),
		NumCols: int(hdr[2]),
		RowPtr:  make([]int64, hdr[1]+1),
		ColIdx:  make([]int32, hdr[3]),
		Val:     make([]float32, hdr[3]),
	}
	if err := binary.Read(br, binary.LittleEndian, &m.RowPtr); err != nil {
		return nil, fmt.Errorf("sparse: reading row pointers: %w", err)
	}
	if err := binary.Read(br, binary.LittleEndian, &m.ColIdx); err != nil {
		return nil, fmt.Errorf("sparse: reading column indices: %w", err)
	}
	if err := binary.Read(br, binary.LittleEndian, &m.Val); err != nil {
		return nil, fmt.Errorf("sparse: reading values: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}
