package sparse

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"strings"
	"testing"
)

func TestReadTriplesFormats(t *testing.T) {
	cases := []struct {
		name     string
		input    string
		oneBased bool
	}{
		{"space separated", "0 1 4.0\n1 0 2.5\n", false},
		{"tab separated", "0\t1\t4.0\n1\t0\t2.5\n", false},
		{"comma separated", "0,1,4.0\n1,0,2.5\n", false},
		{"movielens double colon", "1::2::4.0\n2::1::2.5\n", true},
		{"one based", "1 2 4.0\n2 1 2.5\n", true},
		{"with comments and blanks", "% header\n\n# note\n0 1 4.0\n1 0 2.5\n", false},
		{"extra fields (timestamps)", "0 1 4.0 978300760\n1 0 2.5 978302109\n", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			coo, err := ReadTriples(strings.NewReader(tc.input), tc.oneBased)
			if err != nil {
				t.Fatalf("ReadTriples: %v", err)
			}
			m, err := coo.ToCSR()
			if err != nil {
				t.Fatal(err)
			}
			if m.At(0, 1) != 4.0 || m.At(1, 0) != 2.5 {
				t.Fatalf("parsed values wrong: At(0,1)=%g At(1,0)=%g", m.At(0, 1), m.At(1, 0))
			}
		})
	}
}

func TestReadTriplesErrors(t *testing.T) {
	cases := []struct {
		name  string
		input string
	}{
		{"too few fields", "0 1\n"},
		{"bad user", "x 1 4.0\n"},
		{"bad item", "0 y 4.0\n"},
		{"bad rating", "0 1 zzz\n"},
		{"negative after one-based adjust", "0 1 4.0\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			oneBased := tc.name == "negative after one-based adjust"
			if _, err := ReadTriples(strings.NewReader(tc.input), oneBased); err == nil {
				t.Fatal("expected parse error")
			}
		})
	}
}

func TestTextRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	m, err := randomCOO(rng, 15, 25, 100).ToCSR()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTriples(&buf, m); err != nil {
		t.Fatal(err)
	}
	coo, err := ReadTriples(&buf, false)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := coo.ToCSR()
	if err != nil {
		t.Fatal(err)
	}
	if m2.NNZ() != m.NNZ() {
		t.Fatalf("nnz %d != %d", m2.NNZ(), m.NNZ())
	}
	for r := 0; r < m.NumRows; r++ {
		cols, vals := m.Row(r)
		for j := range cols {
			if got := m2.At(r, int(cols[j])); got != vals[j] {
				t.Fatalf("value mismatch at (%d,%d): %g != %g", r, cols[j], got, vals[j])
			}
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	m, err := randomCOO(rng, 50, 60, 500).ToCSR()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, m); err != nil {
		t.Fatal(err)
	}
	m2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m2.NumRows != m.NumRows || m2.NumCols != m.NumCols || m2.NNZ() != m.NNZ() {
		t.Fatalf("dims mismatch after binary round trip")
	}
	for i := range m.Val {
		if m.Val[i] != m2.Val[i] || m.ColIdx[i] != m2.ColIdx[i] {
			t.Fatalf("payload mismatch at %d", i)
		}
	}
}

func TestReadBinaryRejectsBadMagic(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(make([]byte, 64))
	if _, err := ReadBinary(&buf); err == nil {
		t.Fatal("expected bad-magic error")
	}
}

func TestReadBinaryTruncated(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	m, err := randomCOO(rng, 10, 10, 40).ToCSR()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, m); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := ReadBinary(bytes.NewReader(trunc)); err == nil {
		t.Fatal("expected truncation error")
	}
}

func TestReadBinaryRejectsImplausibleHeader(t *testing.T) {
	var buf bytes.Buffer
	hdr := []uint64{uint64(binaryMagic), 1 << 60, 4, 4}
	for _, h := range hdr {
		if err := binary.Write(&buf, binary.LittleEndian, h); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ReadBinary(&buf); err == nil {
		t.Fatal("accepted 2^60-row header")
	}
}
