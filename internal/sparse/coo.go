package sparse

import (
	"errors"
	"fmt"
	"sort"
)

// Entry is one rating triple <userID, itemID, rating> in coordinate form.
type Entry struct {
	Row, Col int
	Val      float32
}

// COO is a coordinate-format sparse matrix: an unordered bag of entries.
// It is the natural ingestion format for rating files and synthetic
// generators; convert to CSR/CSC for computation.
type COO struct {
	Rows, Cols int
	Entries    []Entry
}

// NewCOO returns an empty COO matrix with the given logical dimensions.
func NewCOO(rows, cols int) *COO {
	return &COO{Rows: rows, Cols: cols}
}

// Append adds one entry. It grows the logical dimensions if the coordinate
// lies outside the current bounds, which lets callers ingest rating files
// without knowing m and n up front.
func (c *COO) Append(row, col int, val float32) {
	if row >= c.Rows {
		c.Rows = row + 1
	}
	if col >= c.Cols {
		c.Cols = col + 1
	}
	c.Entries = append(c.Entries, Entry{Row: row, Col: col, Val: val})
}

// NNZ returns the number of stored entries, including any duplicates.
func (c *COO) NNZ() int { return len(c.Entries) }

// Validate checks that every entry lies within the matrix bounds.
func (c *COO) Validate() error {
	if c.Rows < 0 || c.Cols < 0 {
		return fmt.Errorf("sparse: negative dimensions %dx%d", c.Rows, c.Cols)
	}
	for i, e := range c.Entries {
		if e.Row < 0 || e.Row >= c.Rows {
			return fmt.Errorf("sparse: entry %d row %d out of range [0,%d)", i, e.Row, c.Rows)
		}
		if e.Col < 0 || e.Col >= c.Cols {
			return fmt.Errorf("sparse: entry %d col %d out of range [0,%d)", i, e.Col, c.Cols)
		}
	}
	return nil
}

// SortRowMajor orders entries by (row, col). The sort is deterministic for
// inputs without duplicate coordinates.
func (c *COO) SortRowMajor() {
	sort.Slice(c.Entries, func(i, j int) bool {
		a, b := c.Entries[i], c.Entries[j]
		if a.Row != b.Row {
			return a.Row < b.Row
		}
		return a.Col < b.Col
	})
}

// SortColMajor orders entries by (col, row).
func (c *COO) SortColMajor() {
	sort.Slice(c.Entries, func(i, j int) bool {
		a, b := c.Entries[i], c.Entries[j]
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Row < b.Row
	})
}

// Dedup merges duplicate (row, col) coordinates. The keep policy decides the
// surviving value. Dedup sorts the entries row-major as a side effect.
func (c *COO) Dedup(keep DedupPolicy) {
	if len(c.Entries) == 0 {
		return
	}
	c.SortRowMajor()
	out := c.Entries[:1]
	for _, e := range c.Entries[1:] {
		last := &out[len(out)-1]
		if e.Row == last.Row && e.Col == last.Col {
			switch keep {
			case DedupKeepLast:
				last.Val = e.Val
			case DedupKeepFirst:
				// keep existing
			case DedupSum:
				last.Val += e.Val
			}
			continue
		}
		out = append(out, e)
	}
	c.Entries = out
}

// DedupPolicy selects how duplicate coordinates are merged by Dedup.
type DedupPolicy int

const (
	// DedupKeepLast keeps the value of the last duplicate seen (typical for
	// re-rated items in recommendation logs).
	DedupKeepLast DedupPolicy = iota
	// DedupKeepFirst keeps the first value seen.
	DedupKeepFirst
	// DedupSum accumulates duplicate values.
	DedupSum
)

// ErrDuplicate is returned by conversions that require unique coordinates.
var ErrDuplicate = errors.New("sparse: duplicate coordinate")

// ToCSR converts the COO matrix to CSR. Entries are counted and bucketed in
// two passes, so the receiver's entry order does not matter. Duplicate
// coordinates are rejected with ErrDuplicate; call Dedup first to merge them.
func (c *COO) ToCSR() (*CSR, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	m := &CSR{
		NumRows: c.Rows,
		NumCols: c.Cols,
		RowPtr:  make([]int64, c.Rows+1),
		ColIdx:  make([]int32, len(c.Entries)),
		Val:     make([]float32, len(c.Entries)),
	}
	for _, e := range c.Entries {
		m.RowPtr[e.Row+1]++
	}
	for r := 0; r < c.Rows; r++ {
		m.RowPtr[r+1] += m.RowPtr[r]
	}
	next := make([]int64, c.Rows)
	copy(next, m.RowPtr[:c.Rows])
	for _, e := range c.Entries {
		p := next[e.Row]
		m.ColIdx[p] = int32(e.Col)
		m.Val[p] = e.Val
		next[e.Row]++
	}
	// Sort each row by column index and detect duplicates.
	for r := 0; r < c.Rows; r++ {
		lo, hi := m.RowPtr[r], m.RowPtr[r+1]
		row := rowView{cols: m.ColIdx[lo:hi], vals: m.Val[lo:hi]}
		sort.Sort(row)
		for i := 1; i < len(row.cols); i++ {
			if row.cols[i] == row.cols[i-1] {
				return nil, fmt.Errorf("%w: (%d,%d)", ErrDuplicate, r, row.cols[i])
			}
		}
	}
	return m, nil
}

// ToCSC converts the COO matrix to CSC via the transpose of the CSR path.
func (c *COO) ToCSC() (*CSC, error) {
	csr, err := c.ToCSR()
	if err != nil {
		return nil, err
	}
	return csr.ToCSC(), nil
}

// rowView sorts one CSR row's (col, val) pairs together.
type rowView struct {
	cols []int32
	vals []float32
}

func (r rowView) Len() int           { return len(r.cols) }
func (r rowView) Less(i, j int) bool { return r.cols[i] < r.cols[j] }
func (r rowView) Swap(i, j int) {
	r.cols[i], r.cols[j] = r.cols[j], r.cols[i]
	r.vals[i], r.vals[j] = r.vals[j], r.vals[i]
}
