package sparse

import (
	"math"
	"math/rand"
	"testing"
)

func uniformRowMatrix(t *testing.T, rows, perRow, cols int) *CSR {
	t.Helper()
	coo := NewCOO(rows, cols)
	for r := 0; r < rows; r++ {
		for j := 0; j < perRow; j++ {
			coo.Append(r, j, 1)
		}
	}
	m, err := coo.ToCSR()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRowStatsUniform(t *testing.T) {
	m := uniformRowMatrix(t, 64, 5, 16)
	s := RowStats(m)
	if s.Min != 5 || s.Max != 5 || s.Mean != 5 || s.CoV != 0 || s.Empty != 0 {
		t.Fatalf("uniform stats wrong: %+v", s)
	}
	if s.Median != 5 || s.P90 != 5 || s.P99 != 5 {
		t.Fatalf("uniform percentiles wrong: %+v", s)
	}
}

func TestRowStatsSkewed(t *testing.T) {
	coo := NewCOO(4, 100)
	// Rows of length 0, 1, 1, 98.
	coo.Append(1, 0, 1)
	coo.Append(2, 0, 1)
	for j := 0; j < 98; j++ {
		coo.Append(3, j, 1)
	}
	m, err := coo.ToCSR()
	if err != nil {
		t.Fatal(err)
	}
	s := RowStats(m)
	if s.Min != 0 || s.Max != 98 || s.Empty != 1 {
		t.Fatalf("skewed stats wrong: %+v", s)
	}
	if s.Mean != 25 {
		t.Fatalf("mean = %g, want 25", s.Mean)
	}
	if s.CoV < 1.5 {
		t.Fatalf("CoV = %g, expected heavy skew > 1.5", s.CoV)
	}
}

func TestColStatsMatchesTransposedRowStats(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m, err := randomCOO(rng, 40, 30, 300).ToCSR()
	if err != nil {
		t.Fatal(err)
	}
	cs := ColStats(m.ToCSC())
	// Column stats of R == row stats of R^T.
	tr := m.ToCSC().ToCSR() // same matrix
	_ = tr
	var total int
	for c := 0; c < 30; c++ {
		total += m.ToCSC().ColNNZ(c)
	}
	if cs.Count != 30 {
		t.Fatalf("Count = %d, want 30", cs.Count)
	}
	if math.Abs(cs.Mean*30-float64(total)) > 1e-9 {
		t.Fatalf("mean inconsistent with total")
	}
}

// TestWarpImbalanceBalanced: uniform rows waste no lane-cycles.
func TestWarpImbalanceBalanced(t *testing.T) {
	m := uniformRowMatrix(t, 128, 7, 16)
	if got := WarpImbalance(m, 32); got != 0 {
		t.Fatalf("WarpImbalance = %g, want 0 for uniform rows", got)
	}
}

// TestWarpImbalanceSkewed: one long row per warp idles the other lanes,
// which is exactly the paper's "unbalanced thread use" failure mode.
func TestWarpImbalanceSkewed(t *testing.T) {
	coo := NewCOO(32, 64)
	for j := 0; j < 64; j++ {
		coo.Append(0, j, 1) // row 0: 64 nonzeros
	}
	for r := 1; r < 32; r++ {
		coo.Append(r, 0, 1) // rows 1..31: 1 nonzero
	}
	m, err := coo.ToCSR()
	if err != nil {
		t.Fatal(err)
	}
	got := WarpImbalance(m, 32)
	// useful = 64+31 = 95; total = 64*32 = 2048; waste = 1 - 95/2048.
	want := 1 - 95.0/2048.0
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("WarpImbalance = %g, want %g", got, want)
	}
}

func TestWarpImbalancePartialLastGroup(t *testing.T) {
	// 40 rows with width 32: second group has only 8 rows.
	coo := NewCOO(40, 8)
	for r := 0; r < 40; r++ {
		for j := 0; j <= r%3; j++ {
			coo.Append(r, j, 1)
		}
	}
	m, err := coo.ToCSR()
	if err != nil {
		t.Fatal(err)
	}
	got := WarpImbalance(m, 32)
	if got < 0 || got >= 1 {
		t.Fatalf("WarpImbalance = %g out of [0,1)", got)
	}
}

func TestWarpImbalancePanicsOnBadWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for width 0")
		}
	}()
	m := uniformRowMatrix(t, 4, 1, 4)
	WarpImbalance(m, 0)
}

func TestDegreeStatsEmpty(t *testing.T) {
	s := degreeStats(nil)
	if s.Count != 0 || s.Mean != 0 {
		t.Fatalf("empty stats wrong: %+v", s)
	}
}

func TestPercentileInterpolation(t *testing.T) {
	sorted := []int{0, 10}
	if got := percentile(sorted, 0.5); got != 5 {
		t.Fatalf("percentile(0.5) = %g, want 5", got)
	}
	if got := percentile(sorted, 0); got != 0 {
		t.Fatalf("percentile(0) = %g, want 0", got)
	}
	if got := percentile(sorted, 1); got != 10 {
		t.Fatalf("percentile(1) = %g, want 10", got)
	}
}

func TestStatsString(t *testing.T) {
	m := uniformRowMatrix(t, 8, 2, 4)
	s := RowStats(m)
	if s.String() == "" {
		t.Fatal("empty String()")
	}
}
