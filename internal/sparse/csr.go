package sparse

import "fmt"

// CSR is a compressed-sparse-row matrix (Fig. 2 of the paper): Val stores the
// nonzero ratings row by row, ColIdx the column (item) index of each nonzero,
// and RowPtr[u]..RowPtr[u+1] delimits row u's span in the two arrays.
//
// RowPtr uses int64 so that full-size Netflix/YahooMusic nonzero counts
// (~10^8) stay comfortably indexable; ColIdx uses int32 to match the compact
// device-side layout the paper's kernels assume.
type CSR struct {
	NumRows, NumCols int
	RowPtr           []int64
	ColIdx           []int32
	Val              []float32
}

// NNZ returns the number of stored nonzeros.
func (m *CSR) NNZ() int { return len(m.Val) }

// RowNNZ returns the number of nonzeros in row u (the paper's omegaSize).
func (m *CSR) RowNNZ(u int) int { return int(m.RowPtr[u+1] - m.RowPtr[u]) }

// Row returns the column indices and values of row u as sub-slices backed by
// the matrix storage. Callers must not modify them.
func (m *CSR) Row(u int) (cols []int32, vals []float32) {
	lo, hi := m.RowPtr[u], m.RowPtr[u+1]
	return m.ColIdx[lo:hi], m.Val[lo:hi]
}

// RowRange returns a zero-copy view of rows [lo, hi): the nonzero storage is
// shared with m (only the small row-pointer slice is rebased), and column
// indices keep their original meaning. The distributed trainer and the
// cluster simulation both partition a side matrix this way.
func (m *CSR) RowRange(lo, hi int) *CSR {
	view := &CSR{
		NumRows: hi - lo,
		NumCols: m.NumCols,
		RowPtr:  make([]int64, hi-lo+1),
	}
	base := m.RowPtr[lo]
	for j := 0; j <= hi-lo; j++ {
		view.RowPtr[j] = m.RowPtr[lo+j] - base
	}
	view.ColIdx = m.ColIdx[base:m.RowPtr[hi]]
	view.Val = m.Val[base:m.RowPtr[hi]]
	return view
}

// At returns the value at (row, col), or 0 if the coordinate is not stored.
// Rows are kept column-sorted, so the lookup is a binary search.
func (m *CSR) At(row, col int) float32 {
	cols, vals := m.Row(row)
	lo, hi := 0, len(cols)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case int(cols[mid]) < col:
			lo = mid + 1
		case int(cols[mid]) > col:
			hi = mid
		default:
			return vals[mid]
		}
	}
	return 0
}

// Validate checks structural consistency: monotone row pointers, in-range and
// strictly increasing column indices per row, and matching array lengths.
func (m *CSR) Validate() error {
	if m.NumRows < 0 || m.NumCols < 0 {
		return fmt.Errorf("sparse: negative dimensions %dx%d", m.NumRows, m.NumCols)
	}
	if len(m.RowPtr) != m.NumRows+1 {
		return fmt.Errorf("sparse: RowPtr length %d, want %d", len(m.RowPtr), m.NumRows+1)
	}
	if len(m.ColIdx) != len(m.Val) {
		return fmt.Errorf("sparse: ColIdx length %d != Val length %d", len(m.ColIdx), len(m.Val))
	}
	if m.RowPtr[0] != 0 {
		return fmt.Errorf("sparse: RowPtr[0] = %d, want 0", m.RowPtr[0])
	}
	if m.RowPtr[m.NumRows] != int64(len(m.Val)) {
		return fmt.Errorf("sparse: RowPtr[last] = %d, want nnz %d", m.RowPtr[m.NumRows], len(m.Val))
	}
	for r := 0; r < m.NumRows; r++ {
		lo, hi := m.RowPtr[r], m.RowPtr[r+1]
		if lo > hi {
			return fmt.Errorf("sparse: RowPtr not monotone at row %d", r)
		}
		for p := lo; p < hi; p++ {
			c := m.ColIdx[p]
			if c < 0 || int(c) >= m.NumCols {
				return fmt.Errorf("sparse: row %d col %d out of range [0,%d)", r, c, m.NumCols)
			}
			if p > lo && m.ColIdx[p-1] >= c {
				return fmt.Errorf("sparse: row %d columns not strictly increasing at pos %d", r, p)
			}
		}
	}
	return nil
}

// ToCSC transposes the CSR structure into the column-compressed view of the
// same logical matrix. It is a two-pass counting transpose: O(nnz + n).
func (m *CSR) ToCSC() *CSC {
	t := &CSC{
		NumRows: m.NumRows,
		NumCols: m.NumCols,
		ColPtr:  make([]int64, m.NumCols+1),
		RowIdx:  make([]int32, len(m.Val)),
		Val:     make([]float32, len(m.Val)),
	}
	for _, c := range m.ColIdx {
		t.ColPtr[c+1]++
	}
	for c := 0; c < m.NumCols; c++ {
		t.ColPtr[c+1] += t.ColPtr[c]
	}
	next := make([]int64, m.NumCols)
	copy(next, t.ColPtr[:m.NumCols])
	for r := 0; r < m.NumRows; r++ {
		lo, hi := m.RowPtr[r], m.RowPtr[r+1]
		for p := lo; p < hi; p++ {
			c := m.ColIdx[p]
			q := next[c]
			t.RowIdx[q] = int32(r)
			t.Val[q] = m.Val[p]
			next[c]++
		}
	}
	return t
}

// ToCOO expands the matrix back to coordinate form (row-major order).
func (m *CSR) ToCOO() *COO {
	out := &COO{Rows: m.NumRows, Cols: m.NumCols, Entries: make([]Entry, 0, len(m.Val))}
	for r := 0; r < m.NumRows; r++ {
		lo, hi := m.RowPtr[r], m.RowPtr[r+1]
		for p := lo; p < hi; p++ {
			out.Entries = append(out.Entries, Entry{Row: r, Col: int(m.ColIdx[p]), Val: m.Val[p]})
		}
	}
	return out
}

// Clone returns a deep copy of the matrix.
func (m *CSR) Clone() *CSR {
	out := &CSR{
		NumRows: m.NumRows,
		NumCols: m.NumCols,
		RowPtr:  make([]int64, len(m.RowPtr)),
		ColIdx:  make([]int32, len(m.ColIdx)),
		Val:     make([]float32, len(m.Val)),
	}
	copy(out.RowPtr, m.RowPtr)
	copy(out.ColIdx, m.ColIdx)
	copy(out.Val, m.Val)
	return out
}

// CSC is a compressed-sparse-column matrix: the column-major twin of CSR,
// used when ALS updates the item factors Y (each column i lists the users
// who rated item i).
type CSC struct {
	NumRows, NumCols int
	ColPtr           []int64
	RowIdx           []int32
	Val              []float32
}

// NNZ returns the number of stored nonzeros.
func (m *CSC) NNZ() int { return len(m.Val) }

// ColNNZ returns the number of nonzeros in column i.
func (m *CSC) ColNNZ(i int) int { return int(m.ColPtr[i+1] - m.ColPtr[i]) }

// Col returns the row indices and values of column i as sub-slices backed by
// the matrix storage. Callers must not modify them.
func (m *CSC) Col(i int) (rows []int32, vals []float32) {
	lo, hi := m.ColPtr[i], m.ColPtr[i+1]
	return m.RowIdx[lo:hi], m.Val[lo:hi]
}

// At returns the value at (row, col), or 0 if the coordinate is not stored.
func (m *CSC) At(row, col int) float32 {
	rows, vals := m.Col(col)
	lo, hi := 0, len(rows)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case int(rows[mid]) < row:
			lo = mid + 1
		case int(rows[mid]) > row:
			hi = mid
		default:
			return vals[mid]
		}
	}
	return 0
}

// Validate checks structural consistency of the CSC arrays.
func (m *CSC) Validate() error {
	if m.NumRows < 0 || m.NumCols < 0 {
		return fmt.Errorf("sparse: negative dimensions %dx%d", m.NumRows, m.NumCols)
	}
	if len(m.ColPtr) != m.NumCols+1 {
		return fmt.Errorf("sparse: ColPtr length %d, want %d", len(m.ColPtr), m.NumCols+1)
	}
	if len(m.RowIdx) != len(m.Val) {
		return fmt.Errorf("sparse: RowIdx length %d != Val length %d", len(m.RowIdx), len(m.Val))
	}
	if m.ColPtr[0] != 0 {
		return fmt.Errorf("sparse: ColPtr[0] = %d, want 0", m.ColPtr[0])
	}
	if m.ColPtr[m.NumCols] != int64(len(m.Val)) {
		return fmt.Errorf("sparse: ColPtr[last] = %d, want nnz %d", m.ColPtr[m.NumCols], len(m.Val))
	}
	for c := 0; c < m.NumCols; c++ {
		lo, hi := m.ColPtr[c], m.ColPtr[c+1]
		if lo > hi {
			return fmt.Errorf("sparse: ColPtr not monotone at col %d", c)
		}
		for p := lo; p < hi; p++ {
			r := m.RowIdx[p]
			if r < 0 || int(r) >= m.NumRows {
				return fmt.Errorf("sparse: col %d row %d out of range [0,%d)", c, r, m.NumRows)
			}
			if p > lo && m.RowIdx[p-1] >= r {
				return fmt.Errorf("sparse: col %d rows not strictly increasing at pos %d", c, p)
			}
		}
	}
	return nil
}

// ToCSR transposes the CSC structure back to the row-compressed view.
func (m *CSC) ToCSR() *CSR {
	t := &CSR{
		NumRows: m.NumRows,
		NumCols: m.NumCols,
		RowPtr:  make([]int64, m.NumRows+1),
		ColIdx:  make([]int32, len(m.Val)),
		Val:     make([]float32, len(m.Val)),
	}
	for _, r := range m.RowIdx {
		t.RowPtr[r+1]++
	}
	for r := 0; r < m.NumRows; r++ {
		t.RowPtr[r+1] += t.RowPtr[r]
	}
	next := make([]int64, m.NumRows)
	copy(next, t.RowPtr[:m.NumRows])
	for c := 0; c < m.NumCols; c++ {
		lo, hi := m.ColPtr[c], m.ColPtr[c+1]
		for p := lo; p < hi; p++ {
			r := m.RowIdx[p]
			q := next[r]
			t.ColIdx[q] = int32(c)
			t.Val[q] = m.Val[p]
			next[r]++
		}
	}
	return t
}

// Matrix bundles the CSR and CSC views of one rating matrix R, the pair the
// ALS solver needs (CSR to update X, CSC to update Y).
type Matrix struct {
	R *CSR // row view: users × items
	C *CSC // column view of the same matrix
}

// NewMatrix builds both views from coordinate data. Duplicates are merged
// with DedupKeepLast.
func NewMatrix(coo *COO) (*Matrix, error) {
	coo.Dedup(DedupKeepLast)
	r, err := coo.ToCSR()
	if err != nil {
		return nil, err
	}
	return &Matrix{R: r, C: r.ToCSC()}, nil
}

// Rows returns the number of users m.
func (mx *Matrix) Rows() int { return mx.R.NumRows }

// Cols returns the number of items n.
func (mx *Matrix) Cols() int { return mx.R.NumCols }

// NNZ returns the number of observed ratings.
func (mx *Matrix) NNZ() int { return mx.R.NNZ() }
