package sparse

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomCOO builds a random sparse matrix with unique coordinates.
func randomCOO(rng *rand.Rand, rows, cols, nnz int) *COO {
	coo := NewCOO(rows, cols)
	seen := make(map[[2]int]bool, nnz)
	for len(coo.Entries) < nnz {
		r, c := rng.Intn(rows), rng.Intn(cols)
		if seen[[2]int{r, c}] {
			continue
		}
		seen[[2]int{r, c}] = true
		coo.Append(r, c, float32(rng.Intn(5)+1))
	}
	return coo
}

func TestCOOToCSRBasic(t *testing.T) {
	// The paper's Fig. 2 example: 4x4 matrix with 5 ratings.
	coo := NewCOO(4, 4)
	coo.Append(0, 1, 2)
	coo.Append(1, 0, 5)
	coo.Append(1, 3, 3)
	coo.Append(2, 2, 4)
	coo.Append(3, 1, 1)
	m, err := coo.ToCSR()
	if err != nil {
		t.Fatalf("ToCSR: %v", err)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	wantPtr := []int64{0, 1, 3, 4, 5}
	for i, w := range wantPtr {
		if m.RowPtr[i] != w {
			t.Errorf("RowPtr[%d] = %d, want %d", i, m.RowPtr[i], w)
		}
	}
	wantCols := []int32{1, 0, 3, 2, 1}
	wantVals := []float32{2, 5, 3, 4, 1}
	for i := range wantCols {
		if m.ColIdx[i] != wantCols[i] || m.Val[i] != wantVals[i] {
			t.Errorf("entry %d = (%d,%g), want (%d,%g)", i, m.ColIdx[i], m.Val[i], wantCols[i], wantVals[i])
		}
	}
}

func TestCSRAt(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	coo := randomCOO(rng, 30, 40, 200)
	m, err := coo.ToCSR()
	if err != nil {
		t.Fatal(err)
	}
	dense := make([][]float32, 30)
	for i := range dense {
		dense[i] = make([]float32, 40)
	}
	for _, e := range coo.Entries {
		dense[e.Row][e.Col] = e.Val
	}
	for r := 0; r < 30; r++ {
		for c := 0; c < 40; c++ {
			if got := m.At(r, c); got != dense[r][c] {
				t.Fatalf("At(%d,%d) = %g, want %g", r, c, got, dense[r][c])
			}
		}
	}
}

func TestCSRValidateRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	mk := func() *CSR {
		m, err := randomCOO(rng, 10, 10, 30).ToCSR()
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	cases := []struct {
		name   string
		mutate func(*CSR)
	}{
		{"row ptr not starting at zero", func(m *CSR) { m.RowPtr[0] = 1 }},
		{"row ptr non-monotone", func(m *CSR) { m.RowPtr[3] = m.RowPtr[4] + 5 }},
		{"col out of range", func(m *CSR) { m.ColIdx[0] = 99 }},
		{"negative col", func(m *CSR) { m.ColIdx[0] = -1 }},
		{"wrong nnz tail", func(m *CSR) { m.RowPtr[m.NumRows] = 7 }},
		{"mismatched arrays", func(m *CSR) { m.Val = m.Val[:len(m.Val)-1] }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := mk()
			tc.mutate(m)
			if err := m.Validate(); err == nil {
				t.Fatal("Validate accepted corrupted matrix")
			}
		})
	}
}

func TestDuplicateRejected(t *testing.T) {
	coo := NewCOO(2, 2)
	coo.Append(0, 0, 1)
	coo.Append(0, 0, 2)
	if _, err := coo.ToCSR(); err == nil {
		t.Fatal("ToCSR accepted duplicate coordinates")
	}
}

func TestDedupPolicies(t *testing.T) {
	mk := func() *COO {
		coo := NewCOO(2, 2)
		coo.Append(0, 0, 1)
		coo.Append(1, 1, 9)
		coo.Append(0, 0, 2)
		return coo
	}
	cases := []struct {
		policy DedupPolicy
		want   float32
	}{
		{DedupKeepLast, 2},
		{DedupKeepFirst, 1},
		{DedupSum, 3},
	}
	for _, tc := range cases {
		coo := mk()
		coo.Dedup(tc.policy)
		if len(coo.Entries) != 2 {
			t.Fatalf("policy %v: %d entries after dedup, want 2", tc.policy, len(coo.Entries))
		}
		m, err := coo.ToCSR()
		if err != nil {
			t.Fatalf("policy %v: %v", tc.policy, err)
		}
		if got := m.At(0, 0); got != tc.want {
			t.Errorf("policy %v: At(0,0) = %g, want %g", tc.policy, got, tc.want)
		}
	}
}

// TestTransposeRoundTrip checks the property CSR -> CSC -> CSR == identity,
// the structural invariant the ALS solver relies on when it switches between
// the row view (update X) and the column view (update Y).
func TestTransposeRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := rng.Intn(50) + 1
		cols := rng.Intn(50) + 1
		maxNNZ := rows * cols / 2
		nnz := 0
		if maxNNZ > 0 {
			nnz = rng.Intn(maxNNZ)
		}
		m, err := randomCOO(rng, rows, cols, nnz).ToCSR()
		if err != nil {
			return false
		}
		back := m.ToCSC().ToCSR()
		if back.NumRows != m.NumRows || back.NumCols != m.NumCols || back.NNZ() != m.NNZ() {
			return false
		}
		for i := range m.RowPtr {
			if m.RowPtr[i] != back.RowPtr[i] {
				return false
			}
		}
		for i := range m.ColIdx {
			if m.ColIdx[i] != back.ColIdx[i] || m.Val[i] != back.Val[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestTransposeValues checks that CSC.At agrees with CSR.At everywhere.
func TestTransposeValues(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, err := randomCOO(rng, 25, 35, 150).ToCSR()
	if err != nil {
		t.Fatal(err)
	}
	c := m.ToCSC()
	if err := c.Validate(); err != nil {
		t.Fatalf("CSC.Validate: %v", err)
	}
	for r := 0; r < m.NumRows; r++ {
		for col := 0; col < m.NumCols; col++ {
			if m.At(r, col) != c.At(r, col) {
				t.Fatalf("mismatch at (%d,%d): CSR %g, CSC %g", r, col, m.At(r, col), c.At(r, col))
			}
		}
	}
}

func TestToCOORoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m, err := randomCOO(rng, 20, 20, 80).ToCSR()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := m.ToCOO().ToCSR()
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 20; r++ {
		for c := 0; c < 20; c++ {
			if m.At(r, c) != m2.At(r, c) {
				t.Fatalf("round-trip mismatch at (%d,%d)", r, c)
			}
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m, err := randomCOO(rng, 10, 10, 20).ToCSR()
	if err != nil {
		t.Fatal(err)
	}
	cl := m.Clone()
	cl.Val[0] = 99
	cl.ColIdx[0] = 3
	cl.RowPtr[1] = 77
	if m.Val[0] == 99 || m.RowPtr[1] == 77 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestEmptyMatrix(t *testing.T) {
	coo := NewCOO(5, 7)
	m, err := coo.ToCSR()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 0 {
		t.Fatalf("NNZ = %d, want 0", m.NNZ())
	}
	c := m.ToCSC()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 5; r++ {
		if m.RowNNZ(r) != 0 {
			t.Fatalf("RowNNZ(%d) != 0", r)
		}
	}
}

func TestMatrixBundle(t *testing.T) {
	coo := NewCOO(3, 4)
	coo.Append(0, 1, 4)
	coo.Append(2, 3, 5)
	coo.Append(2, 3, 2) // duplicate, keep-last
	mx, err := NewMatrix(coo)
	if err != nil {
		t.Fatal(err)
	}
	if mx.Rows() != 3 || mx.Cols() != 4 || mx.NNZ() != 2 {
		t.Fatalf("dims/nnz = %d/%d/%d", mx.Rows(), mx.Cols(), mx.NNZ())
	}
	if mx.R.At(2, 3) != 2 || mx.C.At(2, 3) != 2 {
		t.Fatal("keep-last dedup not applied consistently across views")
	}
}

func TestAppendGrowsDims(t *testing.T) {
	coo := NewCOO(0, 0)
	coo.Append(4, 9, 1)
	if coo.Rows != 5 || coo.Cols != 10 {
		t.Fatalf("dims = %dx%d, want 5x10", coo.Rows, coo.Cols)
	}
}
