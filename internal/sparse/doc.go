// Package sparse provides the sparse-matrix storage substrate used by the
// ALS solver: compressed sparse row (CSR), compressed sparse column (CSC)
// and coordinate (COO) formats for the user×item rating matrix R, together
// with builders, format conversions, structural statistics and I/O.
//
// The ALS algorithm updates the user-factor matrix X row by row using the
// CSR view of R (each row u lists the items user u rated) and updates the
// item-factor matrix Y column by column using the CSC view (each column i
// lists the users who rated item i). Both views share the same logical
// matrix; Transpose and the Matrix builder keep them consistent.
//
// Values are stored as float32 to match the paper's OpenCL kernels.
package sparse
