package sparse

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadTriples: the rating-file parser must never panic and must either
// return an error or a structurally valid matrix for arbitrary input.
func FuzzReadTriples(f *testing.F) {
	f.Add("0 1 4.5\n1 0 2.0\n", false)
	f.Add("1::2::3.0\n", true)
	f.Add("% comment\n\n3,4,5\n", false)
	f.Add("a b c\n", false)
	f.Add("9999999 1 2\n", false)
	f.Fuzz(func(t *testing.T, input string, oneBased bool) {
		coo, err := ReadTriples(strings.NewReader(input), oneBased)
		if err != nil {
			return
		}
		if err := coo.Validate(); err != nil {
			t.Fatalf("parser returned invalid COO: %v", err)
		}
		coo.Dedup(DedupKeepLast)
		m, err := coo.ToCSR()
		if err != nil {
			t.Fatalf("deduped COO failed CSR conversion: %v", err)
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("parsed matrix invalid: %v", err)
		}
		// Round-trip through the writer must re-parse cleanly.
		var buf bytes.Buffer
		if err := WriteTriples(&buf, m); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadTriples(&buf, false); err != nil {
			t.Fatalf("writer output failed to re-parse: %v", err)
		}
	})
}

func TestSortColMajor(t *testing.T) {
	coo := NewCOO(3, 3)
	coo.Append(2, 1, 1)
	coo.Append(0, 2, 2)
	coo.Append(1, 0, 3)
	coo.Append(0, 1, 4)
	coo.SortColMajor()
	prev := [2]int{-1, -1}
	for _, e := range coo.Entries {
		cur := [2]int{e.Col, e.Row}
		if cur[0] < prev[0] || (cur[0] == prev[0] && cur[1] <= prev[1]) {
			t.Fatalf("not column-major sorted: %v", coo.Entries)
		}
		prev = cur
	}
}
