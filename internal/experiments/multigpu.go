package experiments

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/kernels"
)

// MultiGPU is an extension experiment: data-parallel scaling across 1/2/4
// simulated K20c devices, the multi-GPU capability the paper's related work
// credits cuMF with. It reports compute speedup and the end-to-end speedup
// after the serialized PCIe broadcasts/gathers — showing where
// communication erases the gain (small datasets, the same effect behind
// cuMF's poor YMR4 result in Fig. 7).
func MultiGPU(s Settings) (*Table, error) {
	t := &Table{
		ID: "multigpu", Title: "Data-parallel scaling across K20c devices",
		Caption: "extension (cuMF's multi-GPU scheme): compute scales near-linearly; serialized PCIe transfers bound end-to-end gains",
		Header:  []string{"dataset", "1 GPU [s]", "2 GPUs [s]", "4 GPUs [s]", "4-GPU compute speedup", "4-GPU total speedup"},
	}
	for _, ds := range Datasets(s) {
		var totals [3]float64
		var compute [3]float64
		for i, n := range []int{1, 2, 4} {
			devs := make([]*device.Device, n)
			for j := range devs {
				devs[j] = device.K20c()
			}
			res, err := kernels.TrainMulti(ds.Matrix, kernels.Config{
				Device: devs[0], Spec: kernels.FromVariant(BestVariant(device.GPU)),
				K: s.K, Lambda: s.Lambda, Iterations: s.Iterations, Seed: s.Seed,
				Groups: s.Groups, GroupSize: s.GroupSize,
			}, devs)
			if err != nil {
				return nil, fmt.Errorf("%s on %d GPUs: %w", ds.Name, n, err)
			}
			totals[i] = res.Seconds()
			compute[i] = res.ComputeSeconds
		}
		t.AddRow(ds.Name, secs(totals[0]), secs(totals[1]), secs(totals[2]),
			speedup(compute[0]/compute[2]), speedup(totals[0]/totals[2]))
	}
	return t, nil
}
