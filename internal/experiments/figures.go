package experiments

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/device"
	"repro/internal/kernels"
	"repro/internal/sim"
	"repro/internal/sparse"
	"repro/internal/variant"
)

// Table1 reproduces Table I: the dataset shapes, plus the degree statistics
// that motivate thread batching (not in the paper's table but central to
// its Sec. III-B argument).
func Table1(s Settings) (*Table, error) {
	t := &Table{
		ID: "table1", Title: "Datasets",
		Caption: "Table I: m, n, training Nz for MVLE, NTFX, YMR1, YMR4",
		Header:  []string{"abbr", "m", "n", "Nz", "mean nnz/row", "cov", "warp imbalance"},
	}
	for _, ds := range Datasets(s) {
		st := sparse.RowStats(ds.Matrix.R)
		imb := sparse.WarpImbalance(ds.Matrix.R, 32)
		t.AddRow(ds.Name,
			fmt.Sprint(ds.Matrix.Rows()), fmt.Sprint(ds.Matrix.Cols()), fmt.Sprint(ds.Matrix.NNZ()),
			fmt.Sprintf("%.1f", st.Mean), fmt.Sprintf("%.2f", st.CoV), fmt.Sprintf("%.2f", imb))
	}
	return t, nil
}

// Fig1 reproduces Figure 1: the flat SAC'15 baseline on the 16-core CPU
// (OpenMP) versus the K20c (CUDA). The paper observes the CPU is on average
// 8.4× faster.
func Fig1(s Settings) (*Table, error) {
	t := &Table{
		ID: "fig1", Title: "Baseline ALS: OpenMP (16-core CPU) vs CUDA (K20c)",
		Caption: "Fig. 1: flat baseline runs ~8.4x faster on the CPU than on the GPU",
		Header:  []string{"dataset", "CPU [s]", "GPU [s]", "GPU/CPU"},
	}
	cpu, gpu := device.XeonE52670(), device.K20c()
	var ratioSum float64
	var count int
	for _, ds := range Datasets(s) {
		tc, err := runSeconds(ds, cpu, kernels.Baseline(), s)
		if err != nil {
			return nil, err
		}
		tg, err := runSeconds(ds, gpu, kernels.Baseline(), s)
		if err != nil {
			return nil, err
		}
		t.AddRow(ds.Name, secs(tc), secs(tg), speedup(tg/tc))
		ratioSum += tg / tc
		count++
	}
	t.AddRow("mean", "", "", speedup(ratioSum/float64(count)))
	return t, nil
}

// Fig6 reproduces Figure 6: the incremental optimization ladder (thread
// batching; +local memory; +local memory+register; +vector) on the three
// devices, one sub-table per dataset.
func Fig6(s Settings) ([]*Table, error) {
	var out []*Table
	ladder := variant.Ladder()
	for _, ds := range Datasets(s) {
		t := &Table{
			ID: "fig6", Title: fmt.Sprintf("Optimization ladder on %s", ds.Name),
			Caption: "Fig. 6: GPU gains up to 2.6x from registers+local; local helps CPU/MIC (1.4-1.6x); registers+local together degrade CPU/MIC; vectors help CPU/MIC slightly",
			Header:  []string{"variant", "GPU [s]", "MIC [s]", "CPU [s]"},
		}
		for _, v := range ladder {
			row := []string{v.String()}
			for _, dev := range device.All() {
				sec, err := runSeconds(ds, dev, kernels.FromVariant(v), s)
				if err != nil {
					return nil, err
				}
				row = append(row, secs(sec))
			}
			t.AddRow(row...)
		}
		out = append(out, t)
	}
	return out, nil
}

// Fig7 reproduces Figure 7: our best per-architecture variant against the
// SAC'15 baseline on the CPU and the GPU and against cuMF (HPDC'16) on the
// GPU. Paper: 5.5× on E5-2670, 21.2× on K20c, 2.2–6.8× over cuMF.
func Fig7(s Settings) (*Table, error) {
	t := &Table{
		ID: "fig7", Title: "Speedup vs state of the art",
		Caption: "Fig. 7: ours vs SAC15 on E5-2670 (5.5x), vs SAC15 on K20c (21.2x), vs HPDC16/cuMF on K20c (2.2-6.8x, largest on YMR4)",
		Header:  []string{"dataset", "vs SAC15 CPU", "vs SAC15 GPU", "vs cuMF GPU"},
	}
	cpu, gpu := device.XeonE52670(), device.K20c()
	var sumC, sumG float64
	var count int
	for _, ds := range Datasets(s) {
		oursCPU, err := runSeconds(ds, cpu, kernels.FromVariant(BestVariant(device.CPU)), s)
		if err != nil {
			return nil, err
		}
		oursGPU, err := runSeconds(ds, gpu, kernels.FromVariant(BestVariant(device.GPU)), s)
		if err != nil {
			return nil, err
		}
		flatCPU, err := runSeconds(ds, cpu, kernels.Baseline(), s)
		if err != nil {
			return nil, err
		}
		flatGPU, err := runSeconds(ds, gpu, kernels.Baseline(), s)
		if err != nil {
			return nil, err
		}
		cumf, err := baseline.TrainCuMF(ds.Matrix, baseline.CuMFConfig{
			Device: gpu, K: s.K, Lambda: s.Lambda, Iterations: s.Iterations, Seed: s.Seed,
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(ds.Name,
			speedup(flatCPU/oursCPU), speedup(flatGPU/oursGPU), speedup(cumf.Seconds()/oursGPU))
		sumC += flatCPU / oursCPU
		sumG += flatGPU / oursGPU
		count++
	}
	t.AddRow("mean", speedup(sumC/float64(count)), speedup(sumG/float64(count)), "")
	return t, nil
}

// Fig8 reproduces Figure 8: the S1/S2/S3 execution-time shares on Netflix/
// K20c at the four tuning stages — flat baseline, thread batching,
// optimizing S1 (registers+local on S1), optimizing S2 (+local on S2).
func Fig8(s Settings) (*Table, error) {
	t := &Table{
		ID: "fig8", Title: "Stage breakdown while tuning (Netflix on K20c)",
		Caption: "Fig. 8: baseline 65/19/16; batching 68/19/13; after S1 opt 32/44/24; after S2 opt 41/32/27 (percent S1/S2/S3)",
		Header:  []string{"stage", "S1 %", "S2 %", "S3 %", "total [s]"},
	}
	gpu := device.K20c()
	var ntfx *sparse.Matrix
	for _, ds := range Datasets(s) {
		if ds.Name == "NTFX" {
			ntfx = ds.Matrix
		}
	}
	steps := []struct {
		name string
		spec kernels.Spec
	}{
		{"(a) baseline", kernels.Baseline()},
		{"(b) thread batching", kernels.Spec{S3Gauss: true}},
		{"(c) optimizing S1", kernels.Spec{S1Register: true, S1Local: true, S3Gauss: true}},
		{"(d) optimizing S2", kernels.Spec{S1Register: true, S1Local: true, S2Local: true, S3Gauss: true}},
		{"(e) + Cholesky S3", kernels.Spec{S1Register: true, S1Local: true, S2Local: true}},
	}
	for _, st := range steps {
		res, err := kernels.Train(ntfx, kernelConfig(gpu, st.spec, s))
		if err != nil {
			return nil, err
		}
		sh := res.Report.StageShare()
		t.AddRow(st.name,
			fmt.Sprintf("%.1f", sh[0]*100), fmt.Sprintf("%.1f", sh[1]*100), fmt.Sprintf("%.1f", sh[2]*100),
			secs(res.Seconds()))
	}
	return t, nil
}

// Fig9 reproduces Figure 9: the best per-architecture variant across the
// three devices, reported as slowdown relative to the fastest. Paper: CPU
// fastest overall, GPU ~1.5× slower, MIC ~4.1× slower; GPU wins on YMR1.
func Fig9(s Settings) (*Table, error) {
	t := &Table{
		ID: "fig9", Title: "Cross-platform comparison (best variant each)",
		Caption: "Fig. 9: CPU best, GPU 1.5x slower, MIC 4.1x slower on average; GPU outperforms CPU on YMR1",
		Header:  []string{"dataset", "GPU [s]", "MIC [s]", "CPU [s]", "GPU/CPU", "MIC/CPU"},
	}
	var sumG, sumM float64
	var count int
	for _, ds := range Datasets(s) {
		times := map[device.Kind]float64{}
		for _, dev := range device.All() {
			sec, err := runSeconds(ds, dev, kernels.FromVariant(BestVariant(dev.Kind)), s)
			if err != nil {
				return nil, err
			}
			times[dev.Kind] = sec
		}
		t.AddRow(ds.Name,
			secs(times[device.GPU]), secs(times[device.MIC]), secs(times[device.CPU]),
			speedup(times[device.GPU]/times[device.CPU]), speedup(times[device.MIC]/times[device.CPU]))
		sumG += times[device.GPU] / times[device.CPU]
		sumM += times[device.MIC] / times[device.CPU]
		count++
	}
	t.AddRow("mean", "", "", "", speedup(sumG/float64(count)), speedup(sumM/float64(count)))
	return t, nil
}

// Fig10 reproduces Figure 10: execution time across work-group sizes
// {8, 16, 32, 64, 128} on the three devices, one sub-table per dataset.
// Paper: the GPU minimum sits at 16/32 for k=10; 8 under-fills warps and
// 64+ leaves idle warps; CPU prefers smaller groups; MIC is
// dataset-dependent.
func Fig10(s Settings) ([]*Table, error) {
	sizes := []int{8, 16, 32, 64, 128}
	var out []*Table
	for _, ds := range Datasets(s) {
		t := &Table{
			ID: "fig10", Title: fmt.Sprintf("Thread-block sweep on %s", ds.Name),
			Caption: "Fig. 10: GPU best at 16/32 (k=10), worse at 8 and 64+; CPU flat/smaller-is-better; MIC optimum varies by dataset",
			Header:  []string{"group size", "GPU [s]", "MIC [s]", "CPU [s]"},
		}
		for _, ws := range sizes {
			row := []string{fmt.Sprint(ws)}
			for _, dev := range device.All() {
				cfg := s
				cfg.GroupSize = ws
				sec, err := runSeconds(ds, dev, kernels.FromVariant(BestVariant(dev.Kind)), cfg)
				if err != nil {
					return nil, err
				}
				row = append(row, secs(sec))
			}
			t.AddRow(row...)
		}
		out = append(out, t)
	}
	return out, nil
}

// StageSecondsGPU is a helper for tests and calibration: per-stage seconds
// for one spec on the GPU for the named dataset.
func StageSecondsGPU(s Settings, dsName string, spec kernels.Spec) ([3]float64, error) {
	gpu := device.K20c()
	for _, ds := range Datasets(s) {
		if ds.Name != dsName {
			continue
		}
		res, err := kernels.Train(ds.Matrix, kernelConfig(gpu, spec, s))
		if err != nil {
			return [3]float64{}, err
		}
		var out [3]float64
		for i := 0; i < 3; i++ {
			out[i] = gpu.Seconds(res.Report.StageCycles[sim.Stage(i)])
		}
		return out, nil
	}
	return [3]float64{}, fmt.Errorf("experiments: unknown dataset %q", dsName)
}
