package experiments

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/device"
	"repro/internal/kernels"
	"repro/internal/variant"
)

// KSweep is an extension experiment the paper's Sec. V-A motivates but does
// not plot: "the latent factor k has an impact on the overall performance.
// The HPDC16 implementation has been specially tuned for the k = 100 case,
// while it is a generic one for the other cases." The sweep runs our solver
// (with per-k empirical variant selection, Sec. III-D) against the
// cuMF-style library across k and reports where the paper's k=10 advantage
// erodes: the library's tile padding stops hurting once k reaches the tile
// width, so the speedup should fall toward (and possibly below) 1 as k
// approaches 100.
func KSweep(s Settings, ks []int) (*Table, error) {
	if len(ks) == 0 {
		ks = []int{10, 20, 32, 64, 100}
	}
	t := &Table{
		ID: "ksweep", Title: "Latent-factor sensitivity vs cuMF (K20c, Netflix)",
		Caption: "extension of Sec. V-A: cuMF is tuned for k=100; our k=10 advantage should shrink as k grows",
		Header:  []string{"k", "ours [s]", "ours variant", "cuMF [s]", "speedup"},
	}
	gpu := device.K20c()
	var ntfx = Datasets(s)[1]
	for _, k := range ks {
		cfg := s
		cfg.K = k
		// Per-k empirical variant selection: at large k the local stage no
		// longer fits/pays, so the winning variant may change.
		best, _ := variant.SelectBest(variant.All(), func(v variant.Options) float64 {
			probe := cfg
			probe.Iterations = 1
			sec, err := runSeconds(ntfx, gpu, kernels.FromVariant(v), probe)
			if err != nil {
				return 1e18
			}
			return sec
		})
		ours, err := runSeconds(ntfx, gpu, kernels.FromVariant(best), cfg)
		if err != nil {
			return nil, err
		}
		cm, err := baseline.TrainCuMF(ntfx.Matrix, baseline.CuMFConfig{
			Device: gpu, K: k, Lambda: s.Lambda, Iterations: s.Iterations, Seed: s.Seed,
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprint(k), secs(ours), best.ID(), secs(cm.Seconds()), speedup(cm.Seconds()/ours))
	}
	return t, nil
}
