package experiments

import (
	"fmt"

	"repro/internal/cluster"
)

// Cluster is an extension experiment quantifying the related-work claim the
// paper's single-node design leans on (Sec. VI: distributing the matrix
// "results in heavy cross-node traffic"): distributed ALS with Spark-style
// partial replication across commodity nodes, sweeping the node count and
// interconnect. The factors stay bit-identical to single-node training;
// only the simulated clock changes.
func Cluster(s Settings) (*Table, error) {
	t := &Table{
		ID: "cluster", Title: "Distributed ALS (partial replication) on Netflix",
		Caption: "extension of Sec. VI: per-iteration factor re-shipping makes scaling communication-bound on commodity networks",
		Header:  []string{"nodes", "network", "compute [s]", "network [s]", "total [s]", "net share"},
	}
	ntfx := Datasets(s)[1]
	for _, net := range []struct {
		name string
		n    cluster.Network
	}{{"GigE", cluster.GigE()}, {"10GbE", cluster.TenGbE()}} {
		for _, nodes := range []int{1, 2, 4, 8} {
			res, err := cluster.Train(ntfx.Matrix, cluster.Config{
				Nodes: nodes, Network: net.n,
				K: s.K, Lambda: s.Lambda, Iterations: s.Iterations, Seed: s.Seed,
			})
			if err != nil {
				return nil, fmt.Errorf("cluster %d nodes on %s: %w", nodes, net.name, err)
			}
			t.AddRow(fmt.Sprint(nodes), net.name,
				secs(res.ComputeSeconds), secs(res.NetworkSeconds), secs(res.Seconds()),
				fmt.Sprintf("%.0f%%", res.NetworkSeconds/res.Seconds()*100))
		}
	}
	return t, nil
}
