package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"repro/internal/device"
	"repro/internal/variant"
)

// smallSettings keeps the figure smoke tests fast.
func smallSettings() Settings {
	s := Defaults()
	s.Scale = 0.2
	s.Iterations = 1
	return s
}

func TestTable1Rows(t *testing.T) {
	tab, err := Table1(smallSettings())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("Table1 has %d rows, want 4", len(tab.Rows))
	}
	order := []string{"MVLE", "NTFX", "YMR1", "YMR4"}
	for i, r := range tab.Rows {
		if r[0] != order[i] {
			t.Fatalf("row %d is %s, want %s (paper order)", i, r[0], order[i])
		}
	}
}

func TestFig1Structure(t *testing.T) {
	tab, err := Fig1(smallSettings())
	if err != nil {
		t.Fatal(err)
	}
	// 4 datasets + mean row; every ratio > 1 (GPU slower).
	if len(tab.Rows) != 5 {
		t.Fatalf("Fig1 rows = %d", len(tab.Rows))
	}
	for _, r := range tab.Rows[:4] {
		ratio := parseSpeedup(t, r[3])
		if ratio <= 1 {
			t.Fatalf("%s: flat GPU not slower than CPU (%s)", r[0], r[3])
		}
	}
}

func TestFig6And10PerDataset(t *testing.T) {
	s := smallSettings()
	f6, err := Fig6(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(f6) != 4 {
		t.Fatalf("Fig6 produced %d tables, want one per dataset", len(f6))
	}
	for _, tab := range f6 {
		if len(tab.Rows) != 4 {
			t.Fatalf("Fig6 %s has %d ladder rows, want 4", tab.Title, len(tab.Rows))
		}
	}
	f10, err := Fig10(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(f10) != 4 {
		t.Fatalf("Fig10 produced %d tables", len(f10))
	}
	for _, tab := range f10 {
		if len(tab.Rows) != 5 {
			t.Fatalf("Fig10 %s has %d size rows, want 5", tab.Title, len(tab.Rows))
		}
	}
}

func TestFig7And9Rows(t *testing.T) {
	s := smallSettings()
	f7, err := Fig7(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(f7.Rows) != 5 {
		t.Fatalf("Fig7 rows = %d", len(f7.Rows))
	}
	for _, r := range f7.Rows[:4] {
		if parseSpeedup(t, r[1]) <= 1 || parseSpeedup(t, r[2]) <= 1 {
			t.Fatalf("%s: ours not faster than SAC15 (%v)", r[0], r)
		}
	}
	f9, err := Fig9(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(f9.Rows) != 5 {
		t.Fatalf("Fig9 rows = %d", len(f9.Rows))
	}
}

func TestFig8StageNarrative(t *testing.T) {
	tab, err := Fig8(smallSettings())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("Fig8 rows = %d", len(tab.Rows))
	}
	// Totals must improve monotonically down the tuning ladder.
	var prev float64 = 1e18
	for _, r := range tab.Rows {
		tot, err := strconv.ParseFloat(r[4], 64)
		if err != nil {
			t.Fatalf("bad total %q", r[4])
		}
		if tot >= prev {
			t.Fatalf("stage %s did not improve: %g -> %g", r[0], prev, tot)
		}
		prev = tot
	}
}

func TestKSweepErosion(t *testing.T) {
	s := smallSettings()
	tab, err := KSweep(s, []int{10, 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("KSweep rows = %d", len(tab.Rows))
	}
	s10 := parseSpeedup(t, tab.Rows[0][4])
	s100 := parseSpeedup(t, tab.Rows[1][4])
	if !(s10 > 1.2) {
		t.Fatalf("k=10 speedup vs cuMF = %.1f, want > 1.2 (paper: 2.2-6.8)", s10)
	}
	if !(s100 < s10) {
		t.Fatalf("speedup did not erode with k: %.1f at k=10 vs %.1f at k=100", s10, s100)
	}
}

func TestConvergenceCurves(t *testing.T) {
	s := smallSettings()
	tab, err := Convergence(s, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("Convergence rows = %d", len(tab.Rows))
	}
	// ALS RMSE strictly improves with iterations and beats SGD at every
	// matched iteration count (exact solves vs stochastic steps).
	var prevALS = 1e18
	for _, r := range tab.Rows {
		als, err1 := strconv.ParseFloat(r[1], 64)
		sgd, err2 := strconv.ParseFloat(r[2], 64)
		ccd, err3 := strconv.ParseFloat(r[3], 64)
		if err1 != nil || err2 != nil || err3 != nil {
			t.Fatalf("bad row %v", r)
		}
		if als >= prevALS {
			t.Fatalf("ALS RMSE not improving: %g -> %g", prevALS, als)
		}
		prevALS = als
		if !(als < sgd) {
			t.Fatalf("ALS (%g) not ahead of SGD (%g) at iteration %s", als, sgd, r[0])
		}
		if ccd <= 0 || ccd > 2 {
			t.Fatalf("CCD RMSE implausible: %g", ccd)
		}
	}
}

func TestMultiGPUScaling(t *testing.T) {
	s := smallSettings()
	tab, err := MultiGPU(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("MultiGPU rows = %d", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		comp := parseSpeedup(t, r[4])
		total := parseSpeedup(t, r[5])
		if comp < 2 || comp > 4.5 {
			t.Errorf("%s: 4-GPU compute speedup %.1f out of [2,4.5]", r[0], comp)
		}
		if !(total <= comp+0.05) {
			t.Errorf("%s: total speedup %.1f exceeds compute speedup %.1f", r[0], total, comp)
		}
		if total < 1.2 {
			t.Errorf("%s: total speedup %.1f — communication erased all gain", r[0], total)
		}
	}
}

func TestBestVariantPerArchitecture(t *testing.T) {
	if BestVariant(device.GPU) != (variant.Options{Local: true, Register: true}) {
		t.Fatal("GPU recommendation wrong")
	}
	if BestVariant(device.CPU) != (variant.Options{Local: true}) {
		t.Fatal("CPU recommendation wrong")
	}
	if BestVariant(device.MIC) != (variant.Options{Local: true}) {
		t.Fatal("MIC recommendation wrong")
	}
}

func TestTableFprint(t *testing.T) {
	tab := &Table{ID: "x", Title: "T", Caption: "C", Header: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	tab.AddRow("333", "4")
	var buf bytes.Buffer
	tab.Fprint(&buf)
	out := buf.String()
	if !strings.Contains(out, "== x: T ==") || !strings.Contains(out, "paper: C") {
		t.Fatalf("Fprint output missing header: %q", out)
	}
	if !strings.Contains(out, "333") {
		t.Fatal("Fprint lost a row")
	}
}

func TestDatasetsCachedAndScaled(t *testing.T) {
	s := smallSettings()
	a := Datasets(s)
	b := Datasets(s)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("dataset cache returned different instances")
		}
	}
	// Different seeds must not share cache entries.
	s2 := s
	s2.Seed++
	c := Datasets(s2)
	if c[0] == a[0] {
		t.Fatal("cache ignored the seed")
	}
	// The four datasets keep the paper's figure order.
	for i, name := range []string{"MVLE", "NTFX", "YMR1", "YMR4"} {
		if a[i].Name != name {
			t.Fatalf("dataset %d = %s, want %s", i, a[i].Name, name)
		}
	}
}

func parseSpeedup(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "x"), 64)
	if err != nil {
		t.Fatalf("bad speedup cell %q", s)
	}
	return v
}
