package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is a printable experiment result: a title, a caption tying it to
// the paper, column headers and rows of label+value cells.
type Table struct {
	ID      string // e.g. "fig7"
	Title   string
	Caption string // what the paper reports, for side-by-side reading
	Header  []string
	Rows    [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	if t.Caption != "" {
		fmt.Fprintf(w, "   paper: %s\n", t.Caption)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	fmt.Fprintln(w)
}

// secs formats a simulated duration.
func secs(v float64) string { return fmt.Sprintf("%.4f", v) }

// speedup formats a ratio.
func speedup(v float64) string { return fmt.Sprintf("%.1fx", v) }
