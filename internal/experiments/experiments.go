// Package experiments reproduces every table and figure of the paper's
// evaluation (Sec. IV–V): Table I and Figures 1, 6, 7, 8, 9 and 10. Each
// runner returns a structured Table whose rows mirror what the paper plots,
// so `alsbench` can print them and EXPERIMENTS.md can record paper-vs-
// measured shapes.
//
// Experiments run on the synthetic Table I presets at a configurable scale
// (default: full YahooMusic R4; the three large datasets scaled down to
// laptop-sized row counts with density and skew preserved — see
// internal/dataset). Simulated execution times come from the device models
// in internal/device; the paper's absolute seconds are not reproducible
// without the physical hardware, but every comparison the paper makes is.
package experiments

import (
	"fmt"
	"sync"

	"repro/internal/dataset"
	"repro/internal/device"
	"repro/internal/kernels"
	"repro/internal/variant"
)

// Settings configures a reproduction run.
type Settings struct {
	// Scale multiplies the per-dataset default scales below; 1 keeps them.
	Scale float64
	// K, Lambda, Iterations follow the paper: k=10, λ=0.1, 5 iterations.
	K          int
	Lambda     float32
	Iterations int
	Seed       int64
	// Groups/GroupSize: the paper's 8192×32 launch grid.
	Groups    int
	GroupSize int
}

// Defaults returns the paper's experimental configuration.
func Defaults() Settings {
	return Settings{
		Scale: 1, K: 10, Lambda: 0.1, Iterations: 5, Seed: 2017,
		Groups: 8192, GroupSize: 32,
	}
}

// presetScales shrinks the three large datasets to tractable sizes while
// keeping YahooMusic R4 (already small) at full size. Scales preserve
// density and degree skew (dataset.Preset.Scaled).
var presetScales = map[string]float64{
	"MVLE": 0.02,
	"NTFX": 0.005,
	"YMR1": 0.004,
	"YMR4": 1.0,
}

var (
	dsCacheMu sync.Mutex
	dsCache   = map[string]*dataset.Dataset{}
)

// Datasets generates (and caches) the four evaluation datasets at the
// settings' scale, in the paper's figure order.
func Datasets(s Settings) []*dataset.Dataset {
	out := make([]*dataset.Dataset, 0, len(dataset.Presets))
	for _, p := range dataset.Presets {
		f := presetScales[p.Name] * s.Scale
		if f > 1 {
			f = 1
		}
		key := fmt.Sprintf("%s/%g/%d", p.Name, f, s.Seed)
		dsCacheMu.Lock()
		ds, ok := dsCache[key]
		dsCacheMu.Unlock()
		if !ok {
			scaled := p
			if f < 1 {
				scaled = p.ScaledForBench(f)
			}
			ds = scaled.Generate(s.Seed)
			ds.Name = p.Name // keep the paper abbreviation after scaling
			dsCacheMu.Lock()
			dsCache[key] = ds
			dsCacheMu.Unlock()
		}
		out = append(out, ds)
	}
	return out
}

// BestVariant returns the paper's per-architecture recommended variant
// (Fig. 10 caption): thread batching + local memory + registers on the GPU,
// thread batching + local memory on CPU and MIC.
func BestVariant(kind device.Kind) variant.Options {
	if kind == device.GPU {
		return variant.Options{Local: true, Register: true}
	}
	return variant.Options{Local: true}
}

// kernelConfig assembles a simulated-run config.
func kernelConfig(dev *device.Device, spec kernels.Spec, s Settings) kernels.Config {
	return kernels.Config{
		Device: dev, Spec: spec,
		K: s.K, Lambda: s.Lambda, Iterations: s.Iterations, Seed: s.Seed,
		Groups: s.Groups, GroupSize: s.GroupSize,
	}
}

// runSeconds trains on the simulated device and returns end-to-end seconds.
func runSeconds(ds *dataset.Dataset, dev *device.Device, spec kernels.Spec, s Settings) (float64, error) {
	res, err := kernels.Train(ds.Matrix, kernelConfig(dev, spec, s))
	if err != nil {
		return 0, fmt.Errorf("%s on %s (%s): %w", ds.Name, dev.Kind, spec.Name(), err)
	}
	return res.Seconds(), nil
}
