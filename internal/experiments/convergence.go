package experiments

import (
	"fmt"

	"repro/internal/host"
	"repro/internal/metrics"
	"repro/internal/solvers"
)

// Convergence is an extension experiment: training-set RMSE per iteration
// for the three solver families the paper discusses — ALS (this paper),
// Hogwild SGD and CCD++ (related work, and the conclusion's future-work
// targets). It substantiates the intro's claim that ALS is "an effective
// solver": exact per-row minimization converges in a handful of
// iterations, while SGD needs many cheap epochs.
func Convergence(s Settings, iterations int) (*Table, error) {
	if iterations <= 0 {
		iterations = 10
	}
	t := &Table{
		ID: "convergence", Title: "Training RMSE per iteration (YahooMusic R4)",
		Caption: "extension: ALS converges in a few exact iterations; SGD epochs are cheaper but slower to converge; CCD++ sits between",
		Header:  []string{"iteration", "ALS", "SGD", "CCD++"},
	}
	mx := Datasets(s)[3].Matrix // YMR4

	type curve []float64
	als := make(curve, 0, iterations)
	sgd := make(curve, 0, iterations)
	ccd := make(curve, 0, iterations)
	for it := 1; it <= iterations; it++ {
		resALS, err := host.Train(mx, host.Config{K: s.K, Lambda: s.Lambda, Iterations: it, Seed: s.Seed})
		if err != nil {
			return nil, fmt.Errorf("convergence ALS it=%d: %w", it, err)
		}
		als = append(als, resALS.RMSE(mx.R))
		sx, sy, err := solvers.TrainSGD(mx, solvers.SGDConfig{K: s.K, Lambda: s.Lambda / 2,
			Epochs: it, Seed: s.Seed, LearnRate: 0.02})
		if err != nil {
			return nil, fmt.Errorf("convergence SGD it=%d: %w", it, err)
		}
		sgd = append(sgd, metrics.RMSE(mx.R, sx, sy))
		cx, cy, err := solvers.TrainCCD(mx, solvers.CCDConfig{K: s.K, Lambda: s.Lambda, Iterations: it, Seed: s.Seed})
		if err != nil {
			return nil, fmt.Errorf("convergence CCD it=%d: %w", it, err)
		}
		ccd = append(ccd, metrics.RMSE(mx.R, cx, cy))
	}
	for i := 0; i < iterations; i++ {
		t.AddRow(fmt.Sprint(i+1),
			fmt.Sprintf("%.4f", als[i]), fmt.Sprintf("%.4f", sgd[i]), fmt.Sprintf("%.4f", ccd[i]))
	}
	return t, nil
}
