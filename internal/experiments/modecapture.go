package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/dataset"
	"repro/internal/host"
)

// The training-mode bench capture (BENCH_8.json): wall-clock of the host
// solver across the mode dimension — explicit vs implicit feedback, the
// direct Cholesky vs conjugate-gradient row solvers, and the iALS++ block
// sizes — on the MVLE preset treated as implicit feedback. The headline
// numbers the capture is accountable to: CG beats the direct solve at
// serving-scale k (the k³/6 factorization vs a 3·(k²+2ωk) iteration loop),
// and the iALS++ update cost scales with block size b, meeting the direct
// solve at b=k.

// ModeEntry is one (mode, solver, block) measurement.
type ModeEntry struct {
	Mode          string  `json:"mode"` // explicit | implicit
	Solver        string  `json:"solver"`
	BlockSize     int     `json:"block_size,omitempty"`
	SecondsPerRun float64 `json:"seconds_per_run"`
	// SpeedupVsModeChol is the direct-Cholesky run of the same mode divided
	// by this entry (>1 = faster than the direct solve).
	SpeedupVsModeChol float64 `json:"speedup_vs_mode_chol"`
}

// ModeBenchCapture is the full record of one mode-dimension capture.
type ModeBenchCapture struct {
	Preset     string  `json:"preset"`
	Scale      float64 `json:"scale"`
	Rows       int     `json:"rows"`
	Cols       int     `json:"cols"`
	NNZ        int     `json:"nnz"`
	K          int     `json:"k"`
	Alpha      float64 `json:"alpha"`
	CGIters    int     `json:"cg_iters"`
	Iterations int     `json:"iterations"`
	Workers    int     `json:"workers"`
	GoVersion  string  `json:"go_version"`
	GoArch     string  `json:"goarch"`

	Entries []ModeEntry `json:"entries"`

	// ImplicitCGSpeedup = implicit chol seconds / implicit cg seconds: the
	// number the CG fast path is accountable to (target ≥ 1.2 at k=64).
	ImplicitCGSpeedup float64 `json:"implicit_cg_speedup"`
	// BlockSeconds maps each measured iALS++ block size to its seconds per
	// run, pinning the update-cost scaling in b.
	BlockSeconds map[string]float64 `json:"block_seconds"`
}

// CaptureModeBench measures the mode dimension on the MVLE preset at the
// given bench scale. k comes from the settings (the tracked BENCH_8.json
// runs k=64, where the direct solve's cubic term dominates).
func CaptureModeBench(s Settings, scale float64) (*ModeBenchCapture, error) {
	if scale <= 0 {
		scale = 0.01
	}
	ds := dataset.Movielens.ScaledForBench(scale).Generate(s.Seed)
	mx := ds.Matrix
	if mx.NNZ() == 0 {
		return nil, fmt.Errorf("modecapture: empty dataset at scale %g", scale)
	}
	const (
		alpha   = float32(40)
		cgIters = 3
	)
	cap := &ModeBenchCapture{
		Preset: dataset.Movielens.Name, Scale: scale,
		Rows: mx.Rows(), Cols: mx.Cols(), NNZ: mx.NNZ(),
		K: s.K, Alpha: float64(alpha), CGIters: cgIters,
		Iterations:   s.Iterations,
		Workers:      runtime.GOMAXPROCS(0),
		GoVersion:    runtime.Version(),
		GoArch:       runtime.GOARCH,
		BlockSeconds: map[string]float64{},
	}

	measure := func(cfg host.Config) (float64, error) {
		// Same shape as CaptureHostBench: one warm-up, then measured runs
		// until at least a second has elapsed.
		const benchMinTime = time.Second
		if _, err := host.Train(mx, cfg); err != nil {
			return 0, fmt.Errorf("modecapture: %w", err)
		}
		var (
			runs    int
			elapsed time.Duration
		)
		for elapsed < benchMinTime {
			start := time.Now()
			if _, err := host.Train(mx, cfg); err != nil {
				return 0, fmt.Errorf("modecapture: %w", err)
			}
			elapsed += time.Since(start)
			runs++
		}
		return elapsed.Seconds() / float64(runs), nil
	}

	base := host.Config{K: s.K, Lambda: s.Lambda, Iterations: s.Iterations, Seed: s.Seed}
	type point struct {
		mode   string
		solver host.Solver
		block  int
	}
	points := []point{
		{"explicit", host.SolverCholesky, 0},
		{"explicit", host.SolverCG, 0},
		{"implicit", host.SolverCholesky, 0},
		{"implicit", host.SolverCG, 0},
	}
	for _, b := range []int{8, 16, 32, s.K} {
		if b < s.K {
			points = append(points, point{"implicit", host.SolverCholesky, b})
		} else {
			points = append(points, point{"implicit", host.SolverCholesky, s.K})
			break
		}
	}
	cholSeconds := map[string]float64{}
	for _, p := range points {
		cfg := base
		cfg.Solver = p.solver
		cfg.CGIters = cgIters
		if p.mode == "implicit" {
			cfg.Implicit = true
			cfg.Alpha = alpha
			cfg.BlockSize = p.block
		}
		sec, err := measure(cfg)
		if err != nil {
			return nil, err
		}
		e := ModeEntry{Mode: p.mode, Solver: p.solver.String(), BlockSize: p.block, SecondsPerRun: sec}
		if p.solver == host.SolverCholesky && p.block == 0 {
			cholSeconds[p.mode] = sec
		}
		cap.Entries = append(cap.Entries, e)
		if p.block > 0 {
			cap.BlockSeconds[fmt.Sprintf("b=%d", p.block)] = sec
		}
	}
	for i := range cap.Entries {
		if chol := cholSeconds[cap.Entries[i].Mode]; chol > 0 {
			cap.Entries[i].SpeedupVsModeChol = chol / cap.Entries[i].SecondsPerRun
		}
	}
	for _, e := range cap.Entries {
		if e.Mode == "implicit" && e.Solver == "cg" {
			cap.ImplicitCGSpeedup = cholSeconds["implicit"] / e.SecondsPerRun
		}
	}
	return cap, nil
}

// WriteJSON renders the capture as indented JSON.
func (c *ModeBenchCapture) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c)
}

// Fprint prints a human-readable summary.
func (c *ModeBenchCapture) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== training-mode bench capture: %s scale=%g (m=%d n=%d nnz=%d, k=%d, %d iters, %d workers) ==\n",
		c.Preset, c.Scale, c.Rows, c.Cols, c.NNZ, c.K, c.Iterations, c.Workers)
	for _, e := range c.Entries {
		label := e.Mode + "/" + e.Solver
		if e.BlockSize > 0 {
			label = fmt.Sprintf("%s b=%d", label, e.BlockSize)
		}
		fmt.Fprintf(w, "  %-24s %10.4fs  %6.2fx vs %s/chol\n",
			label, e.SecondsPerRun, e.SpeedupVsModeChol, e.Mode)
	}
	fmt.Fprintf(w, "  implicit cg vs direct: %.2fx\n\n", c.ImplicitCGSpeedup)
}
