package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"

	"repro/internal/dataset"
	"repro/internal/host"
	"repro/internal/variant"
)

// This file implements the tracked bench trajectory: a reproducible capture
// of the real host solver's wall-clock behaviour across the whole code
// variant space, written as JSON (BENCH_<n>.json in the repo root) so
// successive optimization PRs leave a comparable record. The capture
// separates the pre-existing variant space (flat + the paper's 8) from the
// fused/packed family added on top, and reports the speedup of the best new
// variant over the best pre-existing one — the number the optimization work
// is accountable to.

// BenchEntry is one variant's measurement.
type BenchEntry struct {
	Variant       string  `json:"variant"`
	SecondsPerRun float64 `json:"seconds_per_run"`
	SpeedupVsFlat float64 `json:"speedup_vs_flat"`
	AllocsPerRow  float64 `json:"allocs_per_row"`
}

// BenchCapture is the full record of one capture run.
type BenchCapture struct {
	Preset     string  `json:"preset"`
	Scale      float64 `json:"scale"`
	Rows       int     `json:"rows"`
	Cols       int     `json:"cols"`
	NNZ        int     `json:"nnz"`
	K          int     `json:"k"`
	Iterations int     `json:"iterations"`
	Workers    int     `json:"workers"`
	GoMaxProcs int     `json:"gomaxprocs"`
	GoVersion  string  `json:"go_version"`
	GoArch     string  `json:"goarch"`

	// Baseline holds flat plus the paper's 8 variants (the pre-existing
	// space); New holds the fused/packed family.
	Baseline []BenchEntry `json:"baseline"`
	New      []BenchEntry `json:"new"`

	BestBaseline string `json:"best_baseline"`
	BestNew      string `json:"best_new"`
	// SpeedupNewOverBaseline = best baseline seconds / best new seconds.
	SpeedupNewOverBaseline float64 `json:"speedup_new_over_baseline"`
}

// CaptureHostBench trains the host solver under every variant on the MVLE
// preset at the given bench scale (paper configuration: k=10, 5 iterations)
// and returns the measurements. Each variant is timed over repeated Train
// runs (one warm-up, then at least benchMinTime of measured runs, as
// testing.Benchmark would) and its steady-state row-update allocation count
// is recorded.
func CaptureHostBench(s Settings, scale float64) (*BenchCapture, error) {
	if scale <= 0 {
		scale = 0.01
	}
	ds := dataset.Movielens.ScaledForBench(scale).Generate(s.Seed)
	mx := ds.Matrix
	if mx.NNZ() == 0 {
		return nil, fmt.Errorf("benchcapture: empty dataset at scale %g", scale)
	}
	cap := &BenchCapture{
		Preset: dataset.Movielens.Name, Scale: scale,
		Rows: mx.Rows(), Cols: mx.Cols(), NNZ: mx.NNZ(),
		K: s.K, Iterations: s.Iterations,
		Workers:    runtime.GOMAXPROCS(0),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		GoArch:     runtime.GOARCH,
	}

	measure := func(name string, cfg host.Config) (BenchEntry, error) {
		// One unmeasured warm-up run, then accumulate measured runs until
		// benchMinTime has elapsed — the same shape as testing.Benchmark,
		// done by hand so the testing package stays out of the alsbench and
		// alstrain binaries.
		const benchMinTime = time.Second
		if _, err := host.Train(mx, cfg); err != nil {
			return BenchEntry{}, fmt.Errorf("benchcapture %s: %w", name, err)
		}
		var (
			runs    int
			elapsed time.Duration
		)
		for elapsed < benchMinTime {
			start := time.Now()
			if _, err := host.Train(mx, cfg); err != nil {
				return BenchEntry{}, fmt.Errorf("benchcapture %s: %w", name, err)
			}
			elapsed += time.Since(start)
			runs++
		}
		return BenchEntry{
			Variant:       name,
			SecondsPerRun: elapsed.Seconds() / float64(runs),
			AllocsPerRow:  host.RowUpdateAllocs(mx, cfg),
		}, nil
	}

	base := host.Config{K: s.K, Lambda: s.Lambda, Iterations: s.Iterations, Seed: s.Seed}
	flatCfg := base
	flatCfg.Flat = true
	flat, err := measure("flat", flatCfg)
	if err != nil {
		return nil, err
	}
	cap.Baseline = append(cap.Baseline, flat)
	for _, v := range variant.Extended() {
		cfg := base
		cfg.Variant = v
		e, err := measure(v.ID(), cfg)
		if err != nil {
			return nil, err
		}
		if v.Fused {
			cap.New = append(cap.New, e)
		} else {
			cap.Baseline = append(cap.Baseline, e)
		}
	}
	for i := range cap.Baseline {
		cap.Baseline[i].SpeedupVsFlat = flat.SecondsPerRun / cap.Baseline[i].SecondsPerRun
	}
	for i := range cap.New {
		cap.New[i].SpeedupVsFlat = flat.SecondsPerRun / cap.New[i].SecondsPerRun
	}
	sort.Slice(cap.Baseline, func(i, j int) bool {
		return cap.Baseline[i].SecondsPerRun < cap.Baseline[j].SecondsPerRun
	})
	sort.Slice(cap.New, func(i, j int) bool {
		return cap.New[i].SecondsPerRun < cap.New[j].SecondsPerRun
	})
	cap.BestBaseline = cap.Baseline[0].Variant
	if len(cap.New) > 0 {
		cap.BestNew = cap.New[0].Variant
		cap.SpeedupNewOverBaseline = cap.Baseline[0].SecondsPerRun / cap.New[0].SecondsPerRun
	}
	return cap, nil
}

// WriteJSON renders the capture as indented JSON.
func (c *BenchCapture) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c)
}

// Fprint prints a human-readable summary.
func (c *BenchCapture) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== host bench capture: %s scale=%g (m=%d n=%d nnz=%d, k=%d, %d iters, %d workers) ==\n",
		c.Preset, c.Scale, c.Rows, c.Cols, c.NNZ, c.K, c.Iterations, c.Workers)
	row := func(e BenchEntry) {
		fmt.Fprintf(w, "  %-18s %10.4fs  %6.2fx vs flat  %g allocs/row\n",
			e.Variant, e.SecondsPerRun, e.SpeedupVsFlat, e.AllocsPerRow)
	}
	for _, e := range c.Baseline {
		row(e)
	}
	for _, e := range c.New {
		row(e)
	}
	fmt.Fprintf(w, "  best new %s vs best baseline %s: %.2fx\n\n",
		c.BestNew, c.BestBaseline, c.SpeedupNewOverBaseline)
}
