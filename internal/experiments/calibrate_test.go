package experiments

import (
	"math"
	"testing"

	"repro/internal/baseline"
	"repro/internal/device"
	"repro/internal/kernels"
)

// These tests pin the calibration of the device cost model to the paper's
// headline ratios. They use generous bands: the claim is that each
// comparison lands on the right side with roughly the right magnitude, not
// that the simulator predicts absolute seconds. If a model change moves a
// ratio out of band, the calibration constants in internal/device and
// internal/kernels/cost.go need revisiting.

// calSettings shrinks iteration count (ratios are iteration-invariant) to
// keep the test fast; datasets stay at the default bench scale.
func calSettings() Settings {
	s := Defaults()
	s.Iterations = 2
	return s
}

func geoMeanRatios(t *testing.T, f func(ds int) (num, den float64)) float64 {
	t.Helper()
	prod := 1.0
	n := 0
	for i := 0; i < 4; i++ {
		num, den := f(i)
		if den <= 0 || num <= 0 {
			t.Fatalf("non-positive time: %g/%g", num, den)
		}
		prod *= num / den
		n++
	}
	// Geometric mean over the four datasets.
	return math.Pow(prod, 1/float64(n))
}

func TestCalibrationFig1BaselineGPUSlower(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration runs are slow")
	}
	s := calSettings()
	cpu, gpu := device.XeonE52670(), device.K20c()
	dss := Datasets(s)
	mean := geoMeanRatios(t, func(i int) (float64, float64) {
		tg, err := runSeconds(dss[i], gpu, kernels.Baseline(), s)
		if err != nil {
			t.Fatal(err)
		}
		tc, err := runSeconds(dss[i], cpu, kernels.Baseline(), s)
		if err != nil {
			t.Fatal(err)
		}
		return tg, tc
	})
	// Paper: 8.4x on average. Band [4, 16].
	if mean < 4 || mean > 16 {
		t.Fatalf("flat GPU/CPU geomean = %.1fx, want within [4,16] around the paper's 8.4x", mean)
	}
}

func TestCalibrationFig7Speedups(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration runs are slow")
	}
	s := calSettings()
	cpu, gpu := device.XeonE52670(), device.K20c()
	dss := Datasets(s)

	cpuSpeedup := geoMeanRatios(t, func(i int) (float64, float64) {
		flat, err := runSeconds(dss[i], cpu, kernels.Baseline(), s)
		if err != nil {
			t.Fatal(err)
		}
		ours, err := runSeconds(dss[i], cpu, kernels.FromVariant(BestVariant(device.CPU)), s)
		if err != nil {
			t.Fatal(err)
		}
		return flat, ours
	})
	// Paper: 5.5x on the E5-2670. Band [3, 9].
	if cpuSpeedup < 3 || cpuSpeedup > 9 {
		t.Fatalf("CPU speedup over SAC15 = %.1fx, want [3,9] around 5.5x", cpuSpeedup)
	}

	gpuSpeedup := geoMeanRatios(t, func(i int) (float64, float64) {
		flat, err := runSeconds(dss[i], gpu, kernels.Baseline(), s)
		if err != nil {
			t.Fatal(err)
		}
		ours, err := runSeconds(dss[i], gpu, kernels.FromVariant(BestVariant(device.GPU)), s)
		if err != nil {
			t.Fatal(err)
		}
		return flat, ours
	})
	// Paper: 21.2x on the K20c. Band [10, 40].
	if gpuSpeedup < 10 || gpuSpeedup > 40 {
		t.Fatalf("GPU speedup over SAC15 = %.1fx, want [10,40] around 21.2x", gpuSpeedup)
	}
}

func TestCalibrationCuMF(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration runs are slow")
	}
	s := calSettings()
	gpu := device.K20c()
	dss := Datasets(s)
	var worst, best float64 = 1e9, 0
	var bestName string
	for _, ds := range dss {
		ours, err := runSeconds(ds, gpu, kernels.FromVariant(BestVariant(device.GPU)), s)
		if err != nil {
			t.Fatal(err)
		}
		cm, err := baseline.TrainCuMF(ds.Matrix, baseline.CuMFConfig{
			Device: gpu, K: s.K, Lambda: s.Lambda, Iterations: s.Iterations, Seed: s.Seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		r := cm.Seconds() / ours
		if r < worst {
			worst = r
		}
		if r > best {
			best = r
			bestName = ds.Name
		}
	}
	// Paper: 2.2x–6.8x, the largest on YMR4. Bands [1.3, 10].
	if worst < 1.3 {
		t.Fatalf("cuMF speedup lower bound %.1fx < 1.3x (paper: 2.2x)", worst)
	}
	if best > 10 {
		t.Fatalf("cuMF speedup upper bound %.1fx > 10x (paper: 6.8x)", best)
	}
	if bestName != "YMR4" {
		t.Errorf("largest cuMF speedup on %s, paper finds it on YMR4", bestName)
	}
}

func TestCalibrationFig9PlatformOrder(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration runs are slow")
	}
	s := calSettings()
	dss := Datasets(s)
	var gpuOverCPU, micOverCPU float64
	for _, ds := range dss {
		times := map[device.Kind]float64{}
		for _, dev := range device.All() {
			sec, err := runSeconds(ds, dev, kernels.FromVariant(BestVariant(dev.Kind)), s)
			if err != nil {
				t.Fatal(err)
			}
			times[dev.Kind] = sec
		}
		if times[device.CPU] >= times[device.MIC] {
			t.Errorf("%s: CPU (%.4fs) not faster than MIC (%.4fs)", ds.Name, times[device.CPU], times[device.MIC])
		}
		gpuOverCPU += times[device.GPU] / times[device.CPU] / 4
		micOverCPU += times[device.MIC] / times[device.CPU] / 4
	}
	// Paper: GPU 1.5x slower (its own figures imply ~2.2x), MIC 4.1x slower.
	if gpuOverCPU < 1.2 || gpuOverCPU > 3.5 {
		t.Errorf("GPU/CPU mean = %.1fx, want [1.2,3.5] around the paper's 1.5-2.2x", gpuOverCPU)
	}
	if micOverCPU < 2.5 || micOverCPU > 6 {
		t.Errorf("MIC/CPU mean = %.1fx, want [2.5,6] around the paper's 4.1x", micOverCPU)
	}
}

func TestCalibrationFig6Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration runs are slow")
	}
	s := calSettings()
	dss := Datasets(s)
	type point struct{ tb, loc, locReg, vec float64 }
	get := func(dev *device.Device, ds int) point {
		var p point
		for i, spec := range []kernels.Spec{
			{}, {S1Local: true, S2Local: true},
			{S1Local: true, S2Local: true, S1Register: true},
			{S1Local: true, S2Local: true, S1Register: true, Vector: true},
		} {
			sec, err := runSeconds(dss[ds], dev, spec, s)
			if err != nil {
				t.Fatal(err)
			}
			switch i {
			case 0:
				p.tb = sec
			case 1:
				p.loc = sec
			case 2:
				p.locReg = sec
			case 3:
				p.vec = sec
			}
		}
		return p
	}
	for i, ds := range dss {
		// GPU: local helps, registers help further, vectors change little.
		g := get(device.K20c(), i)
		if !(g.loc < g.tb) || !(g.locReg < g.loc) {
			t.Errorf("%s GPU ladder not monotone: tb=%.4f loc=%.4f loc+reg=%.4f", ds.Name, g.tb, g.loc, g.locReg)
		}
		if rel := g.vec / g.locReg; rel < 0.9 || rel > 1.1 {
			t.Errorf("%s GPU vectors changed time by %.0f%%, paper: very little", ds.Name, (rel-1)*100)
		}
		if total := g.tb / g.locReg; total < 1.5 || total > 4 {
			t.Errorf("%s GPU total opt gain %.1fx, want [1.5,4] around paper's up-to-2.6x", ds.Name, total)
		}
		// CPU and MIC: local helps; registers+local degrade; vectors help.
		for _, dev := range []*device.Device{device.XeonE52670(), device.XeonPhi31SP()} {
			c := get(dev, i)
			boost := c.tb / c.loc
			if boost < 1.1 || boost > 2.2 {
				t.Errorf("%s %s local boost %.2fx, want [1.1,2.2] around paper's 1.4-1.6x", ds.Name, dev.Kind, boost)
			}
			if !(c.locReg > c.loc) {
				t.Errorf("%s %s: registers+local did not degrade (%.4f vs %.4f)", ds.Name, dev.Kind, c.locReg, c.loc)
			}
			if !(c.vec < c.locReg) {
				t.Errorf("%s %s: explicit vectors did not help (%.4f vs %.4f)", ds.Name, dev.Kind, c.vec, c.locReg)
			}
		}
	}
}

func TestCalibrationFig10BlockSizes(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration runs are slow")
	}
	s := calSettings()
	dss := Datasets(s)
	gpu := device.K20c()
	spec := kernels.FromVariant(BestVariant(device.GPU))
	// On the GPU with k=10: 16/32 near-optimal, 8 worse, 128 worse.
	for i, ds := range dss {
		times := map[int]float64{}
		for _, ws := range []int{8, 16, 32, 128} {
			cfg := s
			cfg.GroupSize = ws
			sec, err := runSeconds(dss[i], gpu, spec, cfg)
			if err != nil {
				t.Fatal(err)
			}
			times[ws] = sec
		}
		if !(times[8] > times[16]) {
			t.Errorf("%s GPU: block 8 (%.4f) not slower than 16 (%.4f)", ds.Name, times[8], times[16])
		}
		if !(times[128] > times[32]) {
			t.Errorf("%s GPU: block 128 (%.4f) not slower than 32 (%.4f)", ds.Name, times[128], times[32])
		}
		if rel := times[16] / times[32]; rel < 0.85 || rel > 1.15 {
			t.Errorf("%s GPU: 16 vs 32 differ by %.0f%%, paper: comparable", ds.Name, (rel-1)*100)
		}
	}
}
