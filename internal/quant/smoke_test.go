package quant_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestQuantSmoke is the end-to-end check the `make quant-smoke` CI lane
// runs, entirely through the real binaries: train a tiny preset model,
// serve it at f32, f16 and i8 via alsserve -precision, and require (a)
// each quantized server's top-10 to overlap the f32 ranking by at least
// 0.9 on average over a user sample, (b) /v1/model to report the precision,
// and (c) /metrics to pass the strict exposition parser and carry the
// precision info gauge plus the quantization error gauge.
func TestQuantSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the alstrain/alsserve binaries")
	}
	dir := t.TempDir()
	bins := map[string]string{}
	for _, name := range []string{"alstrain", "alsserve"} {
		bin := filepath.Join(dir, name)
		build := exec.Command("go", "build", "-o", bin, "repro/cmd/"+name)
		if out, err := build.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, out)
		}
		bins[name] = bin
	}

	model := filepath.Join(dir, "smoke.model")
	train := exec.Command(bins["alstrain"], "-preset", "MVLE", "-scale", "0.02",
		"-iters", "6", "-k", "8", "-test-frac", "0", "-seed", "17", "-out", model)
	if out, err := train.CombinedOutput(); err != nil {
		t.Fatalf("alstrain: %v\n%s", err, out)
	}

	users := []int{0, 1, 2, 5, 11, 23, 47, 95}
	const n = 10
	tops := map[string]map[int][]int{}
	for _, prec := range []string{"f32", "f16", "i8"} {
		addr := startServer(t, bins["alsserve"],
			[]string{"-model", model, "-precision", prec, "-addr", "127.0.0.1:0"},
			"alsserve: listening on ")
		base := "http://" + addr

		var info struct {
			Precision string `json:"precision"`
		}
		getInto(t, base+"/v1/model", &info)
		if info.Precision != prec {
			t.Fatalf("/v1/model precision %q, want %q", info.Precision, prec)
		}

		tops[prec] = map[int][]int{}
		for _, u := range users {
			var rec struct {
				Items []struct {
					Item int `json:"item"`
				} `json:"items"`
			}
			getInto(t, fmt.Sprintf("%s/v1/recommend?user=%d&n=%d", base, u, n), &rec)
			if len(rec.Items) != n {
				t.Fatalf("%s user %d: %d items, want %d", prec, u, len(rec.Items), n)
			}
			for _, it := range rec.Items {
				tops[prec][u] = append(tops[prec][u], it.Item)
			}
		}

		resp, err := http.Get(base + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if cnt, err := obs.ValidateExposition(bytes.NewReader(raw)); err != nil {
			t.Fatalf("%s exposition invalid: %v\n%s", prec, err, raw)
		} else if cnt == 0 {
			t.Fatalf("%s exposition empty", prec)
		}
		if want := `als_scorer_precision{precision="` + prec + `"} 1`; !bytes.Contains(raw, []byte(want)) {
			t.Fatalf("%s exposition lacks %s", prec, want)
		}
		if quantized := prec != "f32"; quantized != bytes.Contains(raw, []byte("als_quant_max_abs_error")) {
			t.Fatalf("%s exposition max-abs-error gauge: present=%v", prec, !quantized)
		}
	}

	for _, prec := range []string{"f16", "i8"} {
		var sum float64
		for _, u := range users {
			ref := map[int]bool{}
			for _, it := range tops["f32"][u] {
				ref[it] = true
			}
			hits := 0
			for _, it := range tops[prec][u] {
				if ref[it] {
					hits++
				}
			}
			sum += float64(hits) / float64(n)
		}
		if overlap := sum / float64(len(users)); overlap < 0.9 {
			t.Fatalf("%s mean overlap@%d vs f32 = %.3f, want >= 0.9", prec, n, overlap)
		}
	}
}

func getInto(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: HTTP %d: %s", url, resp.StatusCode, body)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

// startServer launches a server binary, waits for its "listening on" line,
// and returns the bound address. The process is killed on test cleanup —
// including failures — so the smoke lane cannot leak orphans.
func startServer(t *testing.T, bin string, args []string, listenPrefix string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})

	lines := make(chan string, 16)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	deadline := time.After(15 * time.Second)
	for {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatalf("%s exited before announcing its address", bin)
			}
			if rest, found := strings.CutPrefix(line, listenPrefix); found {
				addr := strings.Fields(rest)[0]
				go func() {
					for range lines {
					}
				}()
				return addr
			}
		case <-deadline:
			t.Fatalf("%s never announced its address", bin)
		}
	}
}
