package quant

import (
	"math"

	"repro/internal/metrics"
)

// The scan kernels below are the serving hot path: one call streams a
// row range of the quantized matrix against a prepared query and offers
// every unexcluded item to a metrics.TopK. Dequantize, dot and push are
// fused — no dequantized row is ever materialized — and items are blocked
// four at a time so four independent accumulator chains overlap, the same
// trick linalg.GramRHSFusedUnrolled plays on nonzeros. The kernels
// allocate nothing: a steady-state scan is 0 allocs/request (pinned by
// test), matching the training loop's zero-allocs-per-row discipline.

// f16Mul rescales the exponent-shifted half bits to their value: decoding
// a half by bit-shifting alone leaves the exponent biased 15-vs-127, and
// multiplying by 2^112 corrects it. This maps normal AND subnormal halves
// exactly (only Inf/NaN would decode wrong, and EncodeDense never emits
// them), so the kernel needs no branches per element.
const f16Mul = float32(0x1p112)

func h2f(h uint16) float32 {
	return math.Float32frombits(uint32(h&0x8000)<<16|uint32(h&0x7fff)<<13) * f16Mul
}

// Query is a scoring vector prepared once per request: the int8 kernel
// pre-quantizes the user factor so every shard's scan multiplies int8 by
// int8 and accumulates exactly in int32 (the widening happens once, in
// the final float32 scale product). The fp16 kernel reads x as float32
// and widens each half into a float32 accumulator.
type Query struct {
	x      []float32
	xq     []int8
	xscale float32
}

// Prepare builds the Query for one user factor. len(x) must equal Cols.
// The single slice allocation here (int8 path only) is the request's
// whole scan overhead; ScanTopK itself allocates nothing.
func (q *Matrix) Prepare(x []float32) Query {
	if len(x) != q.Cols {
		panic("quant: query length does not match matrix width")
	}
	qr := Query{x: x}
	if q.Prec != I8 {
		return qr
	}
	maxAbs := float32(0)
	for _, v := range x {
		if a := abs32(v); a > maxAbs {
			maxAbs = a
		}
	}
	qr.xq = make([]int8, len(x))
	if maxAbs == 0 {
		return qr // all-zero query: every score is exactly 0
	}
	qr.xscale = maxAbs / 127
	inv := 1 / qr.xscale
	for c, v := range x {
		iv := int32(math.RoundToEven(float64(v * inv)))
		if iv > 127 {
			iv = 127
		} else if iv < -127 {
			iv = -127
		}
		qr.xq[c] = int8(iv)
	}
	return qr
}

// ScanTopK scores items [lo, hi) against the prepared query and offers
// each item for which excluded returns false (nil excludes nothing) to t.
// Callers slab the range and check their context between calls, exactly
// like the float32 scorer.
func (q *Matrix) ScanTopK(qr Query, lo, hi int, excluded func(int) bool, t *metrics.TopK) {
	switch q.Prec {
	case F16:
		q.scanF16(qr.x, lo, hi, excluded, t)
	case I8:
		q.scanI8(qr.xq, qr.xscale, lo, hi, excluded, t)
	}
}

// Score computes one item's quantized score (request paths use ScanTopK;
// this is for spot checks and evaluation).
func (q *Matrix) Score(qr Query, i int) float64 {
	k := q.Cols
	switch q.Prec {
	case F16:
		r := q.F16[i*k:][:k]
		var s float32
		for j, xv := range qr.x {
			s += xv * h2f(r[j])
		}
		return float64(s * q.Scales[i])
	case I8:
		r := q.I8[i*k:][:k]
		var s int32
		for j, xv := range qr.xq {
			s += int32(xv) * int32(r[j])
		}
		return float64(qr.xscale) * float64(q.Scales[i]) * float64(s)
	}
	return 0
}

// sink filters heap pushes through a cached threshold: most candidates in
// a warm scan lose to the current heap minimum, and the cached compare
// (inlined, three instructions) skips the non-inlinable Push call for all
// of them. The exclusion predicate runs behind the same filter — a
// candidate that cannot enter the heap never pays for it, which turns a
// per-item binary search (serve.RatedExcluder) into a handful of calls
// per scan. The filter condition mirrors metrics.weaker exactly —
// strictly stronger score, or equal score with a lower item index — so
// the heap contents are identical to pushing every unexcluded candidate.
type sink struct {
	t        *metrics.TopK
	excluded func(int) bool
	thrScore float64
	thrItem  int
	full     bool
}

func newSink(t *metrics.TopK, excluded func(int) bool) sink {
	s := sink{t: t, excluded: excluded}
	s.refresh()
	return s
}

func (s *sink) refresh() {
	thr, full := s.t.Threshold()
	s.thrScore, s.thrItem, s.full = thr.Score, thr.Item, full
}

func (s *sink) offer(item int, score float64) {
	if s.full && (score < s.thrScore || (score == s.thrScore && item > s.thrItem)) {
		return
	}
	if s.excluded != nil && s.excluded(item) {
		return
	}
	s.t.Push(item, score)
	s.refresh()
}

func (q *Matrix) scanF16(x []float32, lo, hi int, excluded func(int) bool, t *metrics.TopK) {
	k := q.Cols
	sk := newSink(t, excluded)
	i := lo
	// Four consecutive rows per pass: their dots are computed branch-free
	// on contiguous memory (scoring an excluded row costs less than
	// bookkeeping around it — the sink drops it), and the four accumulator
	// chains hide each other's FP latency. Strip slices pin each row's
	// length to len(x), eliding inner bounds checks.
	for ; i+4 <= hi; i += 4 {
		base := i * k
		r0 := q.F16[base:][:len(x)]
		r1 := q.F16[base+k:][:len(x)]
		r2 := q.F16[base+2*k:][:len(x)]
		r3 := q.F16[base+3*k:][:len(x)]
		var s0, s1, s2, s3 float32
		for j, xv := range x {
			s0 += xv * h2f(r0[j])
			s1 += xv * h2f(r1[j])
			s2 += xv * h2f(r2[j])
			s3 += xv * h2f(r3[j])
		}
		sk.offer(i, float64(s0*q.Scales[i]))
		sk.offer(i+1, float64(s1*q.Scales[i+1]))
		sk.offer(i+2, float64(s2*q.Scales[i+2]))
		sk.offer(i+3, float64(s3*q.Scales[i+3]))
	}
	for ; i < hi; i++ {
		r := q.F16[i*k:][:len(x)]
		var s float32
		for j, xv := range x {
			s += xv * h2f(r[j])
		}
		sk.offer(i, float64(s*q.Scales[i]))
	}
}

func (q *Matrix) scanI8(xq []int8, xscale float32, lo, hi int, excluded func(int) bool, t *metrics.TopK) {
	k := q.Cols
	sk := newSink(t, excluded)
	xs := float64(xscale)
	i := lo
	for ; i+4 <= hi; i += 4 {
		base := i * k
		r0 := q.I8[base:][:len(xq)]
		r1 := q.I8[base+k:][:len(xq)]
		r2 := q.I8[base+2*k:][:len(xq)]
		r3 := q.I8[base+3*k:][:len(xq)]
		// int8×int8 products accumulate exactly in int32 (|p| ≤ 127², far
		// from overflow for any plausible k); the only rounding in the
		// whole dot is the final two-scale widening below.
		var s0, s1, s2, s3 int32
		for j, xv := range xq {
			s0 += int32(xv) * int32(r0[j])
			s1 += int32(xv) * int32(r1[j])
			s2 += int32(xv) * int32(r2[j])
			s3 += int32(xv) * int32(r3[j])
		}
		sk.offer(i, xs*float64(q.Scales[i])*float64(s0))
		sk.offer(i+1, xs*float64(q.Scales[i+1])*float64(s1))
		sk.offer(i+2, xs*float64(q.Scales[i+2])*float64(s2))
		sk.offer(i+3, xs*float64(q.Scales[i+3])*float64(s3))
	}
	for ; i < hi; i++ {
		r := q.I8[i*k:][:len(xq)]
		var s int32
		for j, xv := range xq {
			s += int32(xv) * int32(r[j])
		}
		sk.offer(i, xs*float64(q.Scales[i])*float64(s))
	}
}

// TopN scores the full catalog single-threaded and returns the n
// strongest items, strongest first — the sequential counterpart of the
// serving scorer's sharded scan, used by evaluation tools and tests. Both
// push into metrics.TopK, so tie-breaking (lower item index wins) is
// identical to the float32 path.
func (q *Matrix) TopN(x []float32, excluded func(int) bool, n int) []metrics.Scored {
	if n <= 0 || q.Rows == 0 {
		return nil
	}
	t := metrics.NewTopK(n)
	q.ScanTopK(q.Prepare(x), 0, q.Rows, excluded, t)
	return t.Drain()
}
