// Package quant stores factor matrices in reduced precision for serving.
// The top-N scan streams the whole item-factor matrix per request, so its
// throughput is bounded by bytes moved, not flops; per-row-scaled fp16
// and int8 encodings shrink that stream 2–4× while a widened-accumulate
// scan kernel keeps scoring quality within noise of float32 (following
// the approximate-computing results of arXiv:1808.03843).
//
// An encoding is symmetric per row: row i stores Scales[i] = f(max|v|)
// in float32 plus a compact payload, and dequantization is a single
// multiply. The scan kernels fuse dequantize, dot product and TopK push —
// a dequantized matrix is never materialized — and block four items per
// pass so the four accumulator chains hide each other's latency, the same
// shape as linalg.GramRHSFusedUnrolled blocks four nonzeros.
package quant

import (
	"fmt"
	"math"

	"repro/internal/linalg"
)

// Precision names a factor storage format.
type Precision uint8

const (
	// F32 is full float32 — no quantized payload, the identity precision.
	F32 Precision = iota
	// F16 stores IEEE 754 binary16 with a per-row float32 scale.
	F16
	// I8 stores symmetric int8 (±127 range) with a per-row float32 scale.
	I8
)

// String returns the flag-level name ("f32", "f16", "i8").
func (p Precision) String() string {
	switch p {
	case F32:
		return "f32"
	case F16:
		return "f16"
	case I8:
		return "i8"
	}
	return fmt.Sprintf("precision(%d)", uint8(p))
}

// Valid reports whether p names a known precision.
func (p Precision) Valid() bool { return p <= I8 }

// Parse maps a flag value ("f32", "f16", "i8") to a Precision.
func Parse(s string) (Precision, error) {
	switch s {
	case "f32":
		return F32, nil
	case "f16":
		return F16, nil
	case "i8":
		return I8, nil
	}
	return F32, fmt.Errorf("quant: unknown precision %q (want f32, f16 or i8)", s)
}

// Matrix is a per-row-scaled quantized encoding of a row-major float32
// matrix. Exactly one payload slice is populated, matching Prec; Scales
// holds one float32 per row. Rows with all-zero entries store scale 0 and
// an all-zero payload, so dequantization needs no special case.
type Matrix struct {
	Prec       Precision
	Rows, Cols int
	Scales     []float32
	F16        []uint16 // Prec == F16: len Rows*Cols
	I8         []int8   // Prec == I8:  len Rows*Cols

	// MaxAbsErr is the largest absolute dequantization error |deq−orig|
	// across all elements, measured once at encode time. The serving layer
	// exports it as a gauge so operators can see the quantization cost of
	// the installed snapshot without re-reading the factors.
	MaxAbsErr float64
}

// EncodeDense quantizes d at the requested precision. Inputs containing
// NaN or ±Inf are rejected: a non-finite factor would poison every score
// in its row, and the float32 training path never produces one (the guard
// layer rolls back instead), so refusing loudly beats encoding garbage.
// prec must be F16 or I8 — F32 has no quantized form.
func EncodeDense(d *linalg.Dense, prec Precision) (*Matrix, error) {
	if prec != F16 && prec != I8 {
		return nil, fmt.Errorf("quant: cannot encode at precision %v", prec)
	}
	if d == nil {
		return nil, fmt.Errorf("quant: nil matrix")
	}
	q := &Matrix{Prec: prec, Rows: d.Rows, Cols: d.Cols,
		Scales: make([]float32, d.Rows)}
	switch prec {
	case F16:
		q.F16 = make([]uint16, len(d.Data))
	case I8:
		q.I8 = make([]int8, len(d.Data))
	}
	for r := 0; r < d.Rows; r++ {
		row := d.Row(r)
		maxAbs := float32(0)
		for c, v := range row {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				return nil, fmt.Errorf("quant: non-finite value %v at (%d,%d)", v, r, c)
			}
			if a := abs32(v); a > maxAbs {
				maxAbs = a
			}
		}
		if maxAbs == 0 {
			continue // scale 0, zero payload: dequantizes to exact zeros
		}
		base := r * d.Cols
		switch prec {
		case F16:
			// Scale the row into [-1, 1]: overflow is impossible and the
			// half's relative precision (2^-11) applies uniformly.
			scale := maxAbs
			q.Scales[r] = scale
			inv := 1 / scale
			for c, v := range row {
				h := linalg.F32ToF16(v * inv)
				q.F16[base+c] = h
				if e := math.Abs(float64(scale*linalg.F16ToF32(h)) - float64(v)); e > q.MaxAbsErr {
					q.MaxAbsErr = e
				}
			}
		case I8:
			scale := maxAbs / 127
			q.Scales[r] = scale
			inv := 1 / scale
			for c, v := range row {
				iv := int32(math.RoundToEven(float64(v * inv)))
				if iv > 127 {
					iv = 127
				} else if iv < -127 {
					iv = -127
				}
				q.I8[base+c] = int8(iv)
				if e := math.Abs(float64(scale*float32(iv)) - float64(v)); e > q.MaxAbsErr {
					q.MaxAbsErr = e
				}
			}
		}
	}
	return q, nil
}

// Decode materializes the dequantized matrix (evaluation and tests; the
// serving scan never calls this).
func (q *Matrix) Decode() *linalg.Dense {
	d := linalg.NewDense(q.Rows, q.Cols)
	for r := 0; r < q.Rows; r++ {
		scale := q.Scales[r]
		base := r * q.Cols
		row := d.Row(r)
		switch q.Prec {
		case F16:
			for c := range row {
				row[c] = scale * linalg.F16ToF32(q.F16[base+c])
			}
		case I8:
			for c := range row {
				row[c] = scale * float32(q.I8[base+c])
			}
		}
	}
	return d
}

// Slice returns the zero-copy view of rows [lo, hi) — the quantized
// counterpart of slicing a Dense for a shard replica. Scales and payload
// share the parent's backing arrays; MaxAbsErr keeps the parent's bound
// (conservative for the slice).
func (q *Matrix) Slice(lo, hi int) *Matrix {
	v := &Matrix{Prec: q.Prec, Rows: hi - lo, Cols: q.Cols,
		Scales: q.Scales[lo:hi], MaxAbsErr: q.MaxAbsErr}
	switch q.Prec {
	case F16:
		v.F16 = q.F16[lo*q.Cols : hi*q.Cols]
	case I8:
		v.I8 = q.I8[lo*q.Cols : hi*q.Cols]
	}
	return v
}

// Bytes returns the payload footprint (scales + quantized elements), the
// number that replaces 4*Rows*Cols of a float32 matrix.
func (q *Matrix) Bytes() int {
	n := 4 * len(q.Scales)
	n += 2 * len(q.F16)
	n += len(q.I8)
	return n
}

func abs32(v float32) float32 {
	if v < 0 {
		return -v
	}
	return v
}
