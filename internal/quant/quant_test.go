package quant

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/linalg"
	"repro/internal/metrics"
)

func randDense(rng *rand.Rand, rows, cols int, spread float64) *linalg.Dense {
	d := linalg.NewDense(rows, cols)
	for i := range d.Data {
		d.Data[i] = float32((rng.Float64()*2 - 1) * spread)
	}
	return d
}

// TestRoundTripErrorBounds is the encode→decode property: every element's
// dequantization error is bounded by its row scale — half an integer step
// for int8, half an ulp of the 10-bit half mantissa for fp16 — and
// MaxAbsErr reports the true maximum.
func TestRoundTripErrorBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, prec := range []Precision{F16, I8} {
		for trial := 0; trial < 20; trial++ {
			rows, cols := 1+rng.Intn(40), 1+rng.Intn(32)
			spread := math.Pow(10, float64(rng.Intn(7)-3)) // 1e-3 .. 1e3
			d := randDense(rng, rows, cols, spread)
			q, err := EncodeDense(d, prec)
			if err != nil {
				t.Fatalf("%v: EncodeDense: %v", prec, err)
			}
			back := q.Decode()
			worst := 0.0
			for r := 0; r < rows; r++ {
				scale := float64(q.Scales[r])
				var bound float64
				switch prec {
				case I8:
					// Nearest-integer rounding: half a step, plus float32
					// rounding slop from the scale divide/multiply.
					bound = scale * 0.5 * (1 + 1e-5)
				case F16:
					// Values are scaled into [-1,1]; RNE in binary16 moves a
					// value by at most 2^-11 relative, so 2^-11 absolute
					// after rescaling (plus float32 slop).
					bound = scale * 0x1p-11 * (1 + 1e-5)
				}
				for c := 0; c < cols; c++ {
					e := math.Abs(float64(back.At(r, c)) - float64(d.At(r, c)))
					if e > bound {
						t.Fatalf("%v trial %d: error %g at (%d,%d) exceeds bound %g (scale %g)",
							prec, trial, e, r, c, bound, scale)
					}
					if e > worst {
						worst = e
					}
				}
			}
			if math.Abs(worst-q.MaxAbsErr) > 1e-12 {
				t.Fatalf("%v: MaxAbsErr = %g, measured worst = %g", prec, q.MaxAbsErr, worst)
			}
		}
	}
}

func TestAllZeroRows(t *testing.T) {
	d := linalg.NewDense(3, 4)
	d.Data[4] = 2.5 // row 1 nonzero; rows 0 and 2 all-zero
	for _, prec := range []Precision{F16, I8} {
		q, err := EncodeDense(d, prec)
		if err != nil {
			t.Fatalf("%v: %v", prec, err)
		}
		if q.Scales[0] != 0 || q.Scales[2] != 0 {
			t.Errorf("%v: zero rows got scales %v", prec, q.Scales)
		}
		back := q.Decode()
		for _, r := range []int{0, 2} {
			for c := 0; c < 4; c++ {
				if back.At(r, c) != 0 {
					t.Errorf("%v: zero row %d decoded to %v", prec, r, back.Row(r))
				}
			}
		}
		if got := back.At(1, 0); math.Abs(float64(got)-2.5) > 2.5*0x1p-7 {
			t.Errorf("%v: nonzero row decoded to %v", prec, got)
		}
	}
}

func TestNonFiniteRejected(t *testing.T) {
	bad := []float32{
		float32(math.NaN()),
		float32(math.Inf(1)),
		float32(math.Inf(-1)),
	}
	for _, prec := range []Precision{F16, I8} {
		for _, v := range bad {
			d := linalg.NewDense(2, 3)
			d.Data[4] = v
			if _, err := EncodeDense(d, prec); err == nil {
				t.Errorf("%v: EncodeDense accepted %v", prec, v)
			}
		}
	}
}

func TestEncodeRejectsF32(t *testing.T) {
	if _, err := EncodeDense(linalg.NewDense(1, 1), F32); err == nil {
		t.Error("EncodeDense(F32) should fail: f32 has no quantized form")
	}
}

func TestPrecisionParse(t *testing.T) {
	for _, p := range []Precision{F32, F16, I8} {
		got, err := Parse(p.String())
		if err != nil || got != p {
			t.Errorf("Parse(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := Parse("f64"); err == nil {
		t.Error("Parse(\"f64\") should fail")
	}
}

// TestScanMatchesScore cross-checks the blocked ScanTopK kernel against
// the scalar Score path and against a float64 reference computed from the
// decoded matrix: identical item sets and, for int8, bit-identical scores
// (integer accumulation is exact).
func TestScanMatchesScore(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, prec := range []Precision{F16, I8} {
		d := randDense(rng, 137, 12, 1.0) // odd row count exercises the tail
		q, err := EncodeDense(d, prec)
		if err != nil {
			t.Fatal(err)
		}
		x := make([]float32, 12)
		for i := range x {
			x[i] = float32(rng.NormFloat64())
		}
		qr := q.Prepare(x)
		tk := metrics.NewTopK(q.Rows)
		q.ScanTopK(qr, 0, q.Rows, nil, tk)
		got := tk.Drain()
		if len(got) != q.Rows {
			t.Fatalf("%v: scan returned %d of %d items", prec, len(got), q.Rows)
		}
		for _, s := range got {
			if want := q.Score(qr, s.Item); s.Score != want {
				t.Errorf("%v: item %d scan score %v != scalar score %v", prec, s.Item, s.Score, want)
			}
		}
		// The scan must agree with a plain float32 dot over the decoded
		// matrix to within accumulation-order noise.
		deq := q.Decode()
		for _, s := range got {
			ref := linalg.Dot(x, deq.Row(s.Item))
			tol := 1e-4 * (1 + math.Abs(ref))
			if prec == I8 {
				tol = 0.1 * (1 + math.Abs(ref)) // the query itself is quantized
			}
			if math.Abs(s.Score-ref) > tol {
				t.Errorf("%v: item %d score %v vs f32 reference %v", prec, s.Item, s.Score, ref)
			}
		}
	}
}

// TestScanExclusionAndTieBreak pins that exclusion predicates are honored
// and that equal scores resolve toward the lower item index, exactly like
// the float32 scorer (metrics.TopK does the tie-breaking for both).
func TestScanExclusionAndTieBreak(t *testing.T) {
	d := linalg.NewDense(9, 2)
	for r := 0; r < 9; r++ {
		d.Data[r*2] = 1 // identical rows → identical scores
	}
	for _, prec := range []Precision{F16, I8} {
		q, err := EncodeDense(d, prec)
		if err != nil {
			t.Fatal(err)
		}
		got := q.TopN([]float32{2, 0}, func(i int) bool { return i == 0 || i == 5 }, 4)
		want := []int{1, 2, 3, 4} // ties → ascending index, excluded skipped
		if len(got) != len(want) {
			t.Fatalf("%v: got %d items", prec, len(got))
		}
		for i, s := range got {
			if s.Item != want[i] {
				t.Errorf("%v: rank %d = item %d, want %d", prec, i, s.Item, want[i])
			}
		}
	}
}

func TestSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := randDense(rng, 50, 8, 2.0)
	x := make([]float32, 8)
	for i := range x {
		x[i] = float32(rng.NormFloat64())
	}
	for _, prec := range []Precision{F16, I8} {
		q, err := EncodeDense(d, prec)
		if err != nil {
			t.Fatal(err)
		}
		v := q.Slice(10, 30)
		if v.Rows != 20 || v.Cols != 8 {
			t.Fatalf("%v: slice dims %dx%d", prec, v.Rows, v.Cols)
		}
		qr, vr := q.Prepare(x), v.Prepare(x)
		for i := 0; i < 20; i++ {
			if got, want := v.Score(vr, i), q.Score(qr, 10+i); got != want {
				t.Errorf("%v: slice row %d scores %v, parent row %d scores %v", prec, i, got, 10+i, want)
			}
		}
	}
}

// TestScanZeroAllocs is the zero-allocation regression gate: with the
// query prepared and the heap warm, a full ScanTopK pass must not
// allocate (same discipline as host.RowUpdateAllocs for training).
func TestScanZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := randDense(rng, 4096, 16, 1.0)
	x := make([]float32, 16)
	for i := range x {
		x[i] = float32(rng.NormFloat64())
	}
	excluded := func(i int) bool { return i%17 == 0 }
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	for _, prec := range []Precision{F16, I8} {
		q, err := EncodeDense(d, prec)
		if err != nil {
			t.Fatal(err)
		}
		qr := q.Prepare(x)
		tk := metrics.NewTopK(10)
		q.ScanTopK(qr, 0, q.Rows, excluded, tk) // warm the heap to steady state
		allocs := testing.AllocsPerRun(10, func() {
			q.ScanTopK(qr, 0, q.Rows, excluded, tk)
		})
		if allocs != 0 {
			t.Errorf("%v: ScanTopK allocates %v times per scan, want 0", prec, allocs)
		}
	}
}

func TestBytes(t *testing.T) {
	d := linalg.NewDense(10, 4)
	f16, _ := EncodeDense(d, F16)
	i8, _ := EncodeDense(d, I8)
	if got, want := f16.Bytes(), 10*4+10*4*2; got != want {
		t.Errorf("f16 Bytes = %d, want %d", got, want)
	}
	if got, want := i8.Bytes(), 10*4+10*4; got != want {
		t.Errorf("i8 Bytes = %d, want %d", got, want)
	}
}
