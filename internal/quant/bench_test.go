package quant

import (
	"math/rand"
	"testing"

	"repro/internal/linalg"
	"repro/internal/metrics"
)

// BenchmarkScan compares the quantized scan kernels against the float32
// dot-product scan at the YMR4 serving shape (≈12k items, k=10): one op
// is one full-catalog top-10 scan, the per-request unit of serving work.
func BenchmarkScan(b *testing.B) {
	const rows, k, n = 11916, 10, 10
	rng := rand.New(rand.NewSource(1))
	y := randDense(rng, rows, k, 1.0)
	x := make([]float32, k)
	for i := range x {
		x[i] = float32(rng.NormFloat64())
	}

	b.Run("f32", func(b *testing.B) {
		b.SetBytes(int64(4 * rows * k))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			t := metrics.NewTopK(n)
			for r := 0; r < rows; r++ {
				t.Push(r, linalg.Dot(x, y.Row(r)))
			}
		}
	})
	for _, prec := range []Precision{F16, I8} {
		q, err := EncodeDense(y, prec)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(prec.String(), func(b *testing.B) {
			b.SetBytes(int64(q.Bytes()))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				t := metrics.NewTopK(n)
				q.ScanTopK(q.Prepare(x), 0, rows, nil, t)
			}
		})
	}
}
