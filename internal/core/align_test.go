package core

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dataset"
)

func writeRatings(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "r.txt")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// compactModel mirrors what alstrain -compact does: remap, train, attach
// the ID tables.
func compactModel(t *testing.T) (*Model, string) {
	t.Helper()
	// Sparse external IDs: users {7, 500, 9000}, items {33, 1000, 77}.
	path := writeRatings(t, "7 1000 4\n9000 1000 2\n500 33 3\n7 33 5\n500 77 1\n9000 77 4\n")
	cd, err := dataset.LoadCompact(path, false)
	if err != nil {
		t.Fatal(err)
	}
	model, _, err := Train(cd.Matrix, Config{K: 4, Lambda: 0.1, Iterations: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	model.UserIDs = make([]int64, cd.Users.Len())
	for i := range model.UserIDs {
		model.UserIDs[i] = cd.Users.Orig(i)
	}
	model.ItemIDs = make([]int64, cd.Items.Len())
	for i := range model.ItemIDs {
		model.ItemIDs[i] = cd.Items.Orig(i)
	}
	return model, path
}

func TestAlignRatingsCompact(t *testing.T) {
	model, path := compactModel(t)
	mx, err := AlignRatings(model, path, false)
	if err != nil {
		t.Fatal(err)
	}
	if mx.Rows() != model.X.Rows || mx.Cols() != model.Y.Rows {
		t.Fatalf("aligned dims %dx%d vs model %dx%d", mx.Rows(), mx.Cols(), model.X.Rows, model.Y.Rows)
	}
	if mx.NNZ() != 6 {
		t.Fatalf("aligned nnz = %d", mx.NNZ())
	}
	// The rating <7, 33, 5> must land where the model thinks user 7 and
	// item 33 live.
	u, ok := model.UserIndex(7)
	if !ok {
		t.Fatal("user 7 missing")
	}
	var item int
	found := false
	for i := range model.ItemIDs {
		if model.ItemIDs[i] == 33 {
			item, found = i, true
		}
	}
	if !found {
		t.Fatal("item 33 missing from model")
	}
	if got := mx.R.At(u, item); got != 5 {
		t.Fatalf("aligned value = %g, want 5", got)
	}
	if model.ItemLabel(item) != 33 {
		t.Fatalf("ItemLabel(%d) = %d", item, model.ItemLabel(item))
	}
}

func TestAlignRatingsCompactRejectsUnknown(t *testing.T) {
	model, _ := compactModel(t)
	stranger := writeRatings(t, "123456 1000 3\n")
	if _, err := AlignRatings(model, stranger, false); err == nil {
		t.Fatal("accepted a user the model never saw")
	}
	newItem := writeRatings(t, "7 424242 3\n")
	if _, err := AlignRatings(model, newItem, false); err == nil {
		t.Fatal("accepted an item the model never saw")
	}
}

func TestAlignRatingsPlain(t *testing.T) {
	mx := testMatrix(t)
	model, _, err := Train(mx, Config{K: 4, Iterations: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// A small file inside the model's index space: padded to model dims.
	path := writeRatings(t, "0 1 4\n2 0 2\n")
	aligned, err := AlignRatings(model, path, false)
	if err != nil {
		t.Fatal(err)
	}
	if aligned.Rows() != model.X.Rows || aligned.Cols() != model.Y.Rows {
		t.Fatalf("not padded: %dx%d", aligned.Rows(), aligned.Cols())
	}
	// A file exceeding the model must be rejected with a hint.
	big := writeRatings(t, fmt.Sprintf("%d 1 4\n", model.X.Rows+10))
	if _, err := AlignRatings(model, big, false); err == nil {
		t.Fatal("accepted oversized rating file")
	}
}

func TestUserIndexPlain(t *testing.T) {
	mx := testMatrix(t)
	model, _, err := Train(mx, Config{K: 4, Iterations: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if u, ok := model.UserIndex(3); !ok || u != 3 {
		t.Fatalf("UserIndex(3) = %d,%v", u, ok)
	}
	if _, ok := model.UserIndex(int64(model.X.Rows)); ok {
		t.Fatal("accepted out-of-range user")
	}
	if _, ok := model.UserIndex(-1); ok {
		t.Fatal("accepted negative user")
	}
	if model.ItemLabel(5) != 5 {
		t.Fatal("plain ItemLabel not identity")
	}
}
