package core

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/linalg"
)

func TestFoldInRejectsDuplicateItems(t *testing.T) {
	mx := testMatrix(t)
	model, _, err := Train(mx, Config{K: 4, Iterations: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// A duplicated item would be double-counted in the Gram matrix,
	// silently over-weighting it; it must be rejected instead.
	if _, err := model.FoldInUser([]int32{2, 5, 2}, []float32{4, 3, 4}, 0.1); err == nil {
		t.Fatal("accepted duplicate item IDs")
	}
}

func TestFoldInRejectsNonFiniteRatings(t *testing.T) {
	mx := testMatrix(t)
	model, _, err := Train(mx, Config{K: 4, Iterations: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	nan := float32(math.NaN())
	if _, err := model.FoldInUser([]int32{1}, []float32{nan}, 0.1); err == nil {
		t.Fatal("accepted NaN rating")
	}
	inf := float32(math.Inf(1))
	if _, err := model.FoldInUser([]int32{1}, []float32{inf}, 0.1); err == nil {
		t.Fatal("accepted +Inf rating")
	}
	if _, err := model.FoldInUser([]int32{1}, []float32{-inf}, 0.1); err == nil {
		t.Fatal("accepted -Inf rating")
	}
}

// TestFoldInApproximatesTrainedFactor: folding a *training* user's own
// ratings back in against the frozen Y must land close to that user's
// trained factor — fold-in solves the same per-row normal equations the X
// half-update does, differing only by the final Y half-update between them.
func TestFoldInApproximatesTrainedFactor(t *testing.T) {
	mx := testMatrix(t)
	const lambda = 0.1
	model, _, err := Train(mx, Config{K: 6, Lambda: lambda, Iterations: 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for u := 0; u < mx.Rows() && checked < 5; u++ {
		if mx.R.RowNNZ(u) < 10 {
			continue
		}
		checked++
		cols, vals := mx.R.Row(u)
		xu, err := model.FoldInUser(cols, vals, lambda)
		if err != nil {
			t.Fatal(err)
		}
		trained := model.X.Row(u)
		var dot, na, nb float64
		for j := range xu {
			dot += float64(xu[j]) * float64(trained[j])
			na += float64(xu[j]) * float64(xu[j])
			nb += float64(trained[j]) * float64(trained[j])
		}
		cos := dot / math.Sqrt(na*nb)
		rel := 0.0
		for j := range xu {
			d := float64(xu[j] - trained[j])
			rel += d * d
		}
		rel = math.Sqrt(rel / nb)
		if cos < 0.99 || rel > 0.15 {
			t.Fatalf("user %d: fold-in diverges from trained factor: cos=%.4f rel=%.4f", u, cos, rel)
		}
	}
	if checked == 0 {
		t.Fatal("no user with enough ratings to check")
	}
}

func TestModelMetaSaveLoadRoundTrip(t *testing.T) {
	m := &Model{K: 2, X: linalg.NewDense(3, 2), Y: linalg.NewDense(4, 2),
		Meta: Meta{Version: "2026-08-04/a", Lambda: 0.05, WeightedLambda: true}}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta != m.Meta {
		t.Fatalf("meta round trip: %+v != %+v", got.Meta, m.Meta)
	}

	// A zero meta keeps the legacy layout: the flag stays clear and loading
	// yields a zero meta again.
	m2 := &Model{K: 2, X: linalg.NewDense(3, 2), Y: linalg.NewDense(4, 2)}
	buf.Reset()
	if err := m2.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got2, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got2.Meta != (Meta{}) {
		t.Fatalf("zero meta round trip: %+v", got2.Meta)
	}
}

func TestTrainRecordsMeta(t *testing.T) {
	mx := testMatrix(t)
	model, _, err := Train(mx, Config{K: 4, Lambda: 0.2, Iterations: 1, Seed: 1, WeightedLambda: true})
	if err != nil {
		t.Fatal(err)
	}
	if model.Meta.Lambda != 0.2 || !model.Meta.WeightedLambda {
		t.Fatalf("trained meta = %+v", model.Meta)
	}
}
