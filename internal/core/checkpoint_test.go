package core

import (
	"errors"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/dataset"
	"repro/internal/host"
	"repro/internal/linalg"
	"repro/internal/sparse"
	"repro/internal/variant"
)

func ckptMatrix(t testing.TB) *sparse.Matrix {
	t.Helper()
	return dataset.YahooR4.Scaled(0.015).Generate(11).Matrix
}

// TestResumeEquivalenceAllVariants is the crash-safety contract as a
// property, extending the variant-equivalence suites: for every extended
// variant, training to iteration i with checkpointing, then resuming from
// the checkpoint and training to N, must produce factors bit-identical to
// an uninterrupted N-iteration run. Every iteration is a pure function of
// the current factors, so the checkpoint only has to restore them exactly.
func TestResumeEquivalenceAllVariants(t *testing.T) {
	mx := ckptMatrix(t)
	const n = 3
	for _, v := range variant.Extended() {
		base := Config{K: 6, Lambda: 0.1, Iterations: n, Seed: 7, Variant: v}
		straight, _, err := Train(mx, base)
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		for _, stopAt := range []int{1, 2} {
			fsys := checkpoint.NewMemFS()
			partial := base
			partial.Iterations = stopAt
			partial.CheckpointDir = "ckpts"
			partial.CheckpointFS = fsys
			if _, _, err := Train(mx, partial); err != nil {
				t.Fatalf("%s stop=%d: %v", v, stopAt, err)
			}
			resumedCfg := base
			resumedCfg.CheckpointDir = "ckpts"
			resumedCfg.CheckpointFS = fsys
			resumedCfg.Resume = true
			resumed, info, err := Train(mx, resumedCfg)
			if err != nil {
				t.Fatalf("%s resume=%d: %v", v, stopAt, err)
			}
			if info.ResumedFrom != stopAt {
				t.Fatalf("%s: ResumedFrom = %d, want %d", v, info.ResumedFrom, stopAt)
			}
			if d := linalg.MaxAbsDiff(straight.X, resumed.X); d != 0 {
				t.Errorf("%s resume at %d: X differs by %g from uninterrupted run", v, stopAt, d)
			}
			if d := linalg.MaxAbsDiff(straight.Y, resumed.Y); d != 0 {
				t.Errorf("%s resume at %d: Y differs by %g from uninterrupted run", v, stopAt, d)
			}
		}
	}
}

// TestResumeAfterInjectedCrash: a run whose checkpoint write dies at an
// arbitrary byte must fail loudly, and rerunning the identical command
// with Resume must recover from the surviving checkpoint and still reach
// bit-identical factors.
func TestResumeAfterInjectedCrash(t *testing.T) {
	mx := ckptMatrix(t)
	base := Config{K: 5, Lambda: 0.1, Iterations: 3, Seed: 3, UseRecommended: true}
	straight, _, err := Train(mx, base)
	if err != nil {
		t.Fatal(err)
	}
	fsys := checkpoint.NewMemFS()
	crashed := base
	crashed.CheckpointDir = "ckpts"
	crashed.CheckpointFS = fsys
	// Let checkpoint 1 land, then kill checkpoint 2 partway through.
	probe := checkpoint.NewMemFS()
	p := base
	p.Iterations = 1
	p.CheckpointDir = "ckpts"
	p.CheckpointFS = probe
	if _, _, err := Train(mx, p); err != nil {
		t.Fatal(err)
	}
	fsys.SetFaults(checkpoint.Faults{FailWriteAfter: probe.BytesWritten() + probe.BytesWritten()/2})
	if _, _, err := Train(mx, crashed); err == nil {
		t.Fatal("training with a dying checkpoint writer reported success")
	}
	fsys.Crash()
	fsys.SetFaults(checkpoint.Faults{})
	rerun := base
	rerun.CheckpointDir = "ckpts"
	rerun.CheckpointFS = fsys
	rerun.Resume = true
	resumed, info, err := Train(mx, rerun)
	if err != nil {
		t.Fatal(err)
	}
	if info.ResumedFrom != 1 {
		t.Fatalf("ResumedFrom = %d, want 1 (the surviving checkpoint)", info.ResumedFrom)
	}
	if d := linalg.MaxAbsDiff(straight.X, resumed.X); d != 0 {
		t.Fatalf("X differs by %g after crash-resume", d)
	}
	if d := linalg.MaxAbsDiff(straight.Y, resumed.Y); d != 0 {
		t.Fatalf("Y differs by %g after crash-resume", d)
	}
}

// TestResumeRejectsMismatchedConfig: silently resuming under different
// hyperparameters would converge to a different model under the same job
// name.
func TestResumeRejectsMismatchedConfig(t *testing.T) {
	mx := ckptMatrix(t)
	fsys := checkpoint.NewMemFS()
	base := Config{K: 4, Lambda: 0.1, Iterations: 1, Seed: 5,
		CheckpointDir: "ckpts", CheckpointFS: fsys}
	if _, _, err := Train(mx, base); err != nil {
		t.Fatal(err)
	}
	for name, mutate := range map[string]func(*Config){
		"k":        func(c *Config) { c.K = 6 },
		"lambda":   func(c *Config) { c.Lambda = 0.2 },
		"seed":     func(c *Config) { c.Seed = 6 },
		"weighted": func(c *Config) { c.WeightedLambda = true },
		"variant":  func(c *Config) { c.Variant = variant.Options{Local: true} },
	} {
		cfg := base
		cfg.Iterations = 2
		cfg.Resume = true
		mutate(&cfg)
		if _, _, err := Train(mx, cfg); err == nil {
			t.Errorf("resume with mismatched %s accepted", name)
		}
	}
}

// TestImplicitResumeEquivalence extends the crash-safety contract to the
// implicit fast path: for each solver configuration (direct Cholesky, CG,
// iALS++ blocks), stop-and-resume must reproduce the uninterrupted run
// bit-identically. CG qualifies because its warm start reads the current
// factor row, which the checkpoint restores exactly.
func TestImplicitResumeEquivalence(t *testing.T) {
	mx := ckptMatrix(t)
	const n = 3
	for name, cfg := range map[string]Config{
		"direct": {K: 6, Lambda: 0.1, Iterations: n, Seed: 7, Implicit: true, Alpha: 40},
		"cg":     {K: 6, Lambda: 0.1, Iterations: n, Seed: 7, Implicit: true, Alpha: 40, Solver: host.SolverCG, CGIters: 4},
		"block":  {K: 6, Lambda: 0.1, Iterations: n, Seed: 7, Implicit: true, Alpha: 40, BlockSize: 3},
	} {
		straight, _, err := Train(mx, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		fsys := checkpoint.NewMemFS()
		partial := cfg
		partial.Iterations = 1
		partial.CheckpointDir = "ckpts"
		partial.CheckpointFS = fsys
		if _, _, err := Train(mx, partial); err != nil {
			t.Fatalf("%s partial: %v", name, err)
		}
		resumedCfg := cfg
		resumedCfg.CheckpointDir = "ckpts"
		resumedCfg.CheckpointFS = fsys
		resumedCfg.Resume = true
		resumed, info, err := Train(mx, resumedCfg)
		if err != nil {
			t.Fatalf("%s resume: %v", name, err)
		}
		if info.ResumedFrom != 1 {
			t.Fatalf("%s: ResumedFrom = %d, want 1", name, info.ResumedFrom)
		}
		if d := linalg.MaxAbsDiff(straight.X, resumed.X); d != 0 {
			t.Errorf("%s: X differs by %g from uninterrupted implicit run", name, d)
		}
		if d := linalg.MaxAbsDiff(straight.Y, resumed.Y); d != 0 {
			t.Errorf("%s: Y differs by %g from uninterrupted implicit run", name, d)
		}
	}
}

// TestResumeRejectsModeBoundary: a checkpoint from one training mode must
// not silently continue under another — the objective, solver arithmetic
// and hyperparameters all differ, so the result would be neither run.
func TestResumeRejectsModeBoundary(t *testing.T) {
	mx := ckptMatrix(t)
	explicitFS := checkpoint.NewMemFS()
	base := Config{K: 4, Lambda: 0.1, Iterations: 1, Seed: 5,
		CheckpointDir: "ckpts", CheckpointFS: explicitFS}
	if _, _, err := Train(mx, base); err != nil {
		t.Fatal(err)
	}
	implicitFS := checkpoint.NewMemFS()
	ibase := base
	ibase.CheckpointFS = implicitFS
	ibase.Implicit = true
	ibase.Alpha = 40
	if _, _, err := Train(mx, ibase); err != nil {
		t.Fatal(err)
	}
	for name, tc := range map[string]struct {
		cfg  Config
		fsys checkpoint.FS
		want string
	}{
		"explicit->implicit": {ibase, explicitFS, "explicit-feedback"},
		"implicit->explicit": {base, implicitFS, "implicit-feedback"},
		"alpha": {func() Config { c := ibase; c.Alpha = 20; return c }(),
			implicitFS, "alpha"},
		"solver": {func() Config { c := ibase; c.Solver = host.SolverCG; c.CGIters = 3; return c }(),
			implicitFS, "solver"},
		"cg-iters": {func() Config { c := ibase; c.Solver = host.SolverCG; return c }(),
			func() checkpoint.FS {
				fs := checkpoint.NewMemFS()
				c := ibase
				c.CheckpointFS = fs
				c.Solver = host.SolverCG
				c.CGIters = 3
				if _, _, err := Train(mx, c); err != nil {
					t.Fatal(err)
				}
				return fs
			}(), "cg-iters"},
		"block-size": {func() Config { c := ibase; c.BlockSize = 2; return c }(),
			implicitFS, "block-size"},
	} {
		cfg := tc.cfg
		cfg.Iterations = 2
		cfg.CheckpointFS = tc.fsys
		cfg.Resume = true
		_, _, err := Train(mx, cfg)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: resume across mode boundary = %v, want error mentioning %q", name, err, tc.want)
		}
	}
}

// TestCheckpointEveryAndGC: the stride writes iterations every, 2·every, …
// plus always the final one; GC bounds the directory.
func TestCheckpointEveryAndGC(t *testing.T) {
	mx := ckptMatrix(t)
	fsys := checkpoint.NewMemFS()
	cfg := Config{K: 4, Lambda: 0.1, Iterations: 5, Seed: 2,
		CheckpointDir: "ckpts", CheckpointFS: fsys,
		CheckpointEvery: 2, CheckpointKeep: 2}
	if _, _, err := Train(mx, cfg); err != nil {
		t.Fatal(err)
	}
	names, err := fsys.ReadDir("ckpts")
	if err != nil {
		t.Fatal(err)
	}
	// Written: 2, 4, 5 (final); kept: newest 2.
	want := []string{checkpoint.FileName(4), checkpoint.FileName(5)}
	if len(names) != len(want) || names[0] != want[0] || names[1] != want[1] {
		t.Fatalf("checkpoint dir = %v, want %v", names, want)
	}
}

// TestCheckpointHistoryCarriesAcrossResume: restored loss history plus the
// resumed run's own history must read as one continuous run.
func TestCheckpointHistoryCarriesAcrossResume(t *testing.T) {
	mx := ckptMatrix(t)
	fsys := checkpoint.NewMemFS()
	base := Config{K: 4, Lambda: 0.1, Iterations: 2, Seed: 9, TrackLoss: true,
		CheckpointDir: "ckpts", CheckpointFS: fsys}
	if _, _, err := Train(mx, base); err != nil {
		t.Fatal(err)
	}
	cfg := base
	cfg.Iterations = 4
	cfg.Resume = true
	_, info, err := Train(mx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.History) != 8 {
		t.Fatalf("combined history has %d half-steps, want 8", len(info.History))
	}
	for i, h := range info.History {
		if h.Iteration != i/2+1 {
			t.Fatalf("history[%d] is iteration %d, want %d", i, h.Iteration, i/2+1)
		}
		if math.IsNaN(h.Loss) {
			t.Fatalf("history[%d] loss is NaN", i)
		}
	}
}

// TestResumeOfCompletedRun: resuming a run whose checkpoint already
// reached Iterations returns the checkpointed factors untouched.
func TestResumeOfCompletedRun(t *testing.T) {
	mx := ckptMatrix(t)
	fsys := checkpoint.NewMemFS()
	cfg := Config{K: 4, Lambda: 0.1, Iterations: 2, Seed: 13,
		CheckpointDir: "ckpts", CheckpointFS: fsys}
	first, _, err := Train(mx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Resume = true
	again, info, err := Train(mx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if info.ResumedFrom != 2 {
		t.Fatalf("ResumedFrom = %d, want 2", info.ResumedFrom)
	}
	if d := linalg.MaxAbsDiff(first.X, again.X); d != 0 {
		t.Fatalf("completed-run resume changed X by %g", d)
	}
}

// TestCheckpointConfigValidation: the flag combinations that cannot work
// must fail fast.
func TestCheckpointConfigValidation(t *testing.T) {
	mx := ckptMatrix(t)
	if _, _, err := Train(mx, Config{Resume: true}); err == nil ||
		!strings.Contains(err.Error(), "CheckpointDir") {
		t.Fatalf("Resume without dir = %v", err)
	}
	if _, _, err := Train(mx, Config{Platform: "GPU", CheckpointDir: "x",
		CheckpointFS: checkpoint.NewMemFS()}); err == nil ||
		!strings.Contains(err.Error(), "host") {
		t.Fatalf("simulated-platform checkpointing = %v", err)
	}
	// The checkpoint dir path goes through t.TempDir for the real-FS
	// default: CheckpointFS nil must hit the actual disk.
	dir := filepath.Join(t.TempDir(), "ckpts")
	cfg := Config{K: 4, Lambda: 0.1, Iterations: 1, Seed: 1, CheckpointDir: dir}
	if _, _, err := Train(mx, cfg); err != nil {
		t.Fatal(err)
	}
	if _, it, err := checkpoint.Latest(checkpoint.OS, dir); err != nil || it != 1 {
		t.Fatalf("real-FS checkpoint: iter %d, %v", it, err)
	}
}

// TestInterruptGraceful: closing Config.Interrupt stops the run at the next
// iteration boundary with ErrInterrupted and a resumable checkpoint — even
// when the checkpoint stride would have skipped that iteration — and the
// resumed run reaches factors bit-identical to an uninterrupted one.
func TestInterruptGraceful(t *testing.T) {
	mx := ckptMatrix(t)
	base := Config{K: 4, Lambda: 0.1, Iterations: 4, Seed: 7}
	straight, _, err := Train(mx, base)
	if err != nil {
		t.Fatal(err)
	}

	ch := make(chan struct{})
	close(ch)
	fsys := checkpoint.NewMemFS()
	cfg := base
	cfg.CheckpointDir = "ckpts"
	cfg.CheckpointFS = fsys
	cfg.CheckpointEvery = 3 // iteration 1 would not checkpoint on stride alone
	cfg.Interrupt = ch
	_, _, err = Train(mx, cfg)
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	st, _, err := checkpoint.LoadLatest(fsys, "ckpts")
	if err != nil {
		t.Fatalf("interrupted run left no checkpoint: %v", err)
	}
	if st.Iteration != 1 {
		t.Fatalf("checkpoint at iteration %d, want the forced boundary save at 1", st.Iteration)
	}

	cfg.Interrupt = nil
	cfg.Resume = true
	resumed, info, err := Train(mx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if info.ResumedFrom != 1 {
		t.Fatalf("ResumedFrom = %d, want 1", info.ResumedFrom)
	}
	if d := linalg.MaxAbsDiff(straight.X, resumed.X); d != 0 {
		t.Fatalf("resumed run differs from uninterrupted by %g", d)
	}

	// Without checkpointing the interrupt still stops the run cleanly.
	cfg = base
	cfg.Interrupt = ch
	if _, _, err := Train(mx, cfg); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("uncheckpointed interrupt = %v, want ErrInterrupted", err)
	}
}
