// Package core is the library facade of the reproduction: the efficient
// and portable ALS solver of the paper as one public API.
//
// A Solver factorizes a rating matrix R ≈ X·Yᵀ with alternating least
// squares (Algorithm 1) on any supported platform: the real host machine
// (goroutine-parallel, wall-clock timed) or one of the three simulated
// OpenCL devices (Tesla K20c GPU, Xeon Phi 31SP MIC, Xeon E5-2670 CPU —
// cycle-modeled, see internal/device). The paper's code variants — thread
// batching plus the register / local-memory / vector optimizations — are
// selectable per run, can be chosen empirically (Sec. III-D), or predicted
// by the learned selector the paper proposes as future work.
//
// Typical use:
//
//	mx, _ := dataset.Load("ratings.txt", true)
//	model, info, _ := core.Train(mx.Matrix, core.Config{K: 10, Lambda: 0.1})
//	score := model.Predict(userID, itemID)
//	top := model.Recommend(mx.Matrix.R, userID, 10)
package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/device"
	"repro/internal/guard"
	"repro/internal/host"
	"repro/internal/kernels"
	"repro/internal/linalg"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/quant"
	"repro/internal/sparse"
	"repro/internal/variant"
)

// PlatformHost selects the real machine; the device names ("GPU", "MIC",
// "CPU") select the corresponding simulated platform.
const PlatformHost = "host"

// Config configures a training run. The zero value trains on the host with
// the paper's defaults (k=10, λ=0.1, 5 iterations, thread batching with
// the per-architecture recommended optimizations).
type Config struct {
	K          int     // latent factor dimensionality (default 10)
	Lambda     float32 // regularization coefficient (default 0.1)
	Iterations int     // ALS iterations (default 5)
	Seed       int64   // initial-guess seed

	// Platform is PlatformHost (default) or a simulated device kind:
	// "GPU", "MIC", "CPU".
	Platform string

	// Variant selects the code variant. When AutoVariant is set it is
	// ignored and the empirical selector picks the fastest variant with a
	// one-iteration probe of the extended space (the paper's eight plus the
	// fused/packed family; Sec. III-D).
	Variant     variant.Options
	AutoVariant bool
	// UseRecommended applies the paper's per-architecture recommendation
	// (GPU: +local+registers, CPU/MIC: +local) when Variant is zero and
	// AutoVariant is off. Host runs use +vec+fus, the measured winner on
	// real hardware (see the BENCH_*.json trajectory).
	UseRecommended bool

	// Baseline runs the SAC'15 flat kernel instead (for comparisons).
	Baseline bool

	// GroupSize and Groups control the simulated launch grid (default
	// 8192×32, the paper's configuration). Ignored on the host.
	GroupSize int
	Groups    int

	// Implicit switches to implicit-feedback ALS (Hu et al. 2008, host
	// platform only): stored ratings become confidences c = 1 + Alpha·r
	// over unit preferences, and every row solve runs against a shared
	// FᵀF Gram with confidence-weighted rank-1 corrections. Incompatible
	// with WeightedLambda (implicit regularization is plain λI).
	Implicit bool
	// Alpha is the implicit-mode confidence scale (default 40).
	Alpha float32
	// Solver selects the per-row linear solver: host.SolverCholesky
	// (default), host.SolverLDL, or host.SolverCG (matrix-free conjugate
	// gradient, capped at CGIters iterations per row, default 3).
	Solver  host.Solver
	CGIters int
	// BlockSize enables iALS++ block-coordinate updates: each row solve
	// sweeps ⌈k/b⌉ blocks of b factors instead of one k×k direct solve.
	// Implicit mode with the Cholesky solver only; 0 disables.
	BlockSize int

	// WeightedLambda switches to the ALS-WR convention λ|Ω|I.
	WeightedLambda bool
	// TrackLoss records Eq. 2 after every half-iteration (host only).
	TrackLoss bool
	// Tolerance enables loss-based early stopping on the host (Algorithm
	// 1's "until it converges"); 0 disables.
	Tolerance float64
	// Workers bounds host parallelism (0 = GOMAXPROCS).
	Workers int

	// CheckpointDir enables crash-safe checkpointing (host platform
	// only): after every CheckpointEvery-th iteration (and the final one)
	// the factors plus training state are written atomically into the
	// directory, and all but the newest CheckpointKeep checkpoints are
	// garbage-collected.
	CheckpointDir string
	// CheckpointEvery is the iteration stride between checkpoints
	// (default 1).
	CheckpointEvery int
	// CheckpointKeep bounds the directory to the newest N checkpoints
	// (default 3).
	CheckpointKeep int
	// Resume restarts from the newest valid checkpoint in CheckpointDir,
	// verifying that k, λ, seed, λ convention, variant and the full
	// training mode (implicit flag, α, solver, CG budget, block size)
	// match the checkpointed run; a resumed run produces factors
	// bit-identical to an uninterrupted one. With no checkpoint present training starts
	// fresh, so crash-rerun loops can pass Resume unconditionally.
	Resume bool
	// CheckpointFS overrides the filesystem checkpoints go through
	// (nil = the real disk); tests inject checkpoint.MemFS faults here.
	CheckpointFS checkpoint.FS
	// CheckpointPrecision selects the factor encoding checkpoints are
	// written with (format v2): F32 (default) is lossless, F16/I8 shrink
	// the file 2–4× for serving-oriented runs. Quantized checkpoints
	// cannot be Resumed (the factors are lossy, so a bit-identical
	// continuation is impossible); divergence rollback still uses them,
	// dequantized, since an escalated-λ replay is approximate anyway.
	CheckpointPrecision quant.Precision

	// Obs, when set, receives the training-run observability stream (host
	// platform only): half-iteration spans, worker utilization, stage
	// timings, loss points, and checkpoint I/O. See internal/obs.
	Obs *obs.TrainRecorder

	// Interrupt, when non-nil, requests a graceful stop (host platform
	// only): at the first iteration boundary after the channel is closed
	// the run writes a final checkpoint (when CheckpointDir is set, even
	// if the stride would have skipped that iteration), stops, and
	// returns an error wrapping ErrInterrupted — so a later Resume run
	// continues bit-identically from where the interrupted one left off.
	Interrupt <-chan struct{}

	// Guard, when set, arms the numerical-resilience layer (host platform
	// only): corrupt ratings are sanitized before training (non-strict
	// runs mutate the caller's matrix in place), failed row solves climb
	// the recovery ladder instead of aborting, and a divergence detected
	// by the watchdog rolls the run back to the last good checkpoint in
	// CheckpointDir with escalated λ, up to Guard.MaxRollbacks times
	// before surfacing guard.ErrDiverged. Without CheckpointDir a
	// rollback restarts from scratch. Checkpoints always record the
	// configured λ, not an escalated one: escalation is transient
	// recovery state, and a later Resume must match this config.
	Guard *guard.Guard
}

func (c *Config) setDefaults() {
	if c.K <= 0 {
		c.K = 10
	}
	if c.Iterations <= 0 {
		c.Iterations = 5
	}
	if c.Platform == "" {
		c.Platform = PlatformHost
	}
}

// RunInfo reports how a training run went.
type RunInfo struct {
	Platform string
	Variant  string
	// Seconds is wall-clock on the host, simulated device time otherwise.
	Seconds float64
	// Simulated is true when Seconds is modeled rather than measured.
	Simulated bool
	// StageSeconds breaks simulated runs into the paper's S1/S2/S3.
	StageSeconds [3]float64
	// History carries per-half-iteration loss when TrackLoss was set
	// (including history restored from a resumed checkpoint).
	History []host.IterStats
	// ResumedFrom is the completed iteration a resumed run restarted
	// after (0 = fresh run).
	ResumedFrom int
	// Rollbacks counts divergence rollbacks the guard performed during
	// this run (0 = the run never diverged).
	Rollbacks int
}

// Meta carries optional model provenance the serving layer relies on: a
// version label for hot-swap bookkeeping and the training-time
// regularization so fold-in requests can default to the matching λ
// convention without the caller re-supplying it.
type Meta struct {
	Version        string  // free-form label ("" = unversioned)
	Lambda         float32 // training λ (0 = unknown)
	WeightedLambda bool    // true when trained with the ALS-WR λ|Ω|I convention
}

// Model is a trained factorization. When it was trained on a compact
// (ID-remapped) dataset, UserIDs/ItemIDs carry the external IDs per dense
// row so predictions can be reported in the original ID space; they are nil
// for models trained on already-dense matrices.
type Model struct {
	K    int
	X, Y *linalg.Dense // user (m×k) and item (n×k) factors

	UserIDs []int64 // optional: external user ID per row of X
	ItemIDs []int64 // optional: external item ID per row of Y

	Meta Meta // optional provenance; persisted by Save when non-zero

	// QY is the quantized item-factor matrix when the model came from a
	// compressed (format v2) checkpoint: the serving layer installs it
	// directly instead of re-encoding Y. Transient — Save does not persist
	// it, and it is nil for float32 models.
	QY *quant.Matrix
}

// Predict estimates the rating of item i by user u (Eq. 1: x_u·y_iᵀ).
func (m *Model) Predict(u, i int) float64 {
	return linalg.Dot(m.X.Row(u), m.Y.Row(i))
}

// Recommend returns the top-n unrated items for user u, scored by the
// factorization; rated holds the training matrix used to exclude already-
// rated items.
func (m *Model) Recommend(rated *sparse.CSR, u, n int) []int {
	return metrics.TopN(rated, m.X, m.Y, u, n)
}

// RMSE evaluates the model on the stored ratings of r.
func (m *Model) RMSE(r *sparse.CSR) float64 { return metrics.RMSE(r, m.X, m.Y) }

// MAE evaluates mean absolute error on the stored ratings of r.
func (m *Model) MAE(r *sparse.CSR) float64 { return metrics.MAE(r, m.X, m.Y) }

// FoldInUser computes the factor vector for a user not present at training
// time from their ratings (item indices into Y plus values), without
// retraining: it solves the same per-row normal equations the ALS X update
// does (Eq. 4) against the frozen item factors. The returned vector can be
// dotted with Y rows for predictions. lambda should match training.
func (m *Model) FoldInUser(items []int32, ratings []float32, lambda float32) ([]float32, error) {
	if len(items) != len(ratings) {
		return nil, fmt.Errorf("core: %d items but %d ratings", len(items), len(ratings))
	}
	if len(items) == 0 {
		return make([]float32, m.K), nil
	}
	seen := make(map[int32]struct{}, len(items))
	for j, it := range items {
		if it < 0 || int(it) >= m.Y.Rows {
			return nil, fmt.Errorf("core: item %d out of range [0,%d)", it, m.Y.Rows)
		}
		if _, dup := seen[it]; dup {
			// A repeated item would be accumulated twice into the Gram
			// matrix and the right-hand side, silently over-weighting it.
			return nil, fmt.Errorf("core: duplicate item %d in fold-in ratings", it)
		}
		seen[it] = struct{}{}
		if r := float64(ratings[j]); math.IsNaN(r) || math.IsInf(r, 0) {
			return nil, fmt.Errorf("core: rating for item %d is %g", it, r)
		}
	}
	// The fused S1+S2 kernel with packed storage: same accumulation order
	// and solve arithmetic as the separate register kernels with a dense
	// Cholesky, at half the Gram footprint and one pass over Y's rows.
	packed := make([]float32, linalg.PackedLen(m.K))
	xu := make([]float32, m.K)
	linalg.GramRHSFused(m.Y.Data, m.K, items, ratings, packed, xu)
	linalg.AddDiagPacked(packed, m.K, lambda)
	if err := linalg.CholeskySolvePacked(packed, m.K, xu); err != nil {
		linalg.GramRHSFused(m.Y.Data, m.K, items, ratings, packed, xu)
		linalg.AddDiagPacked(packed, m.K, lambda)
		if err := linalg.LDLSolvePacked(packed, m.K, xu, make([]float64, m.K)); err != nil {
			return nil, fmt.Errorf("core: fold-in solve: %w", err)
		}
	}
	return xu, nil
}

// ScoreItems returns x·y_i for every item given a (possibly folded-in)
// user factor vector.
func (m *Model) ScoreItems(x []float32) []float64 {
	out := make([]float64, m.Y.Rows)
	for i := 0; i < m.Y.Rows; i++ {
		out[i] = linalg.Dot(x, m.Y.Row(i))
	}
	return out
}

// ErrInterrupted reports a training run stopped at an iteration boundary by
// Config.Interrupt. The run's checkpoint (when checkpointing is on) covers
// everything computed so far: rerun with Resume to finish it.
var ErrInterrupted = errors.New("core: training interrupted")

// Train factorizes the rating matrix according to cfg.
func Train(mx *sparse.Matrix, cfg Config) (*Model, *RunInfo, error) {
	cfg.setDefaults()
	if mx == nil || mx.NNZ() == 0 {
		return nil, nil, fmt.Errorf("core: empty rating matrix")
	}
	if cfg.Resume && cfg.CheckpointDir == "" {
		return nil, nil, fmt.Errorf("core: Resume requires CheckpointDir")
	}
	if cfg.CheckpointDir != "" && cfg.Platform != PlatformHost {
		return nil, nil, fmt.Errorf("core: checkpointing is supported on the host platform only (got %q)", cfg.Platform)
	}
	if cfg.Guard != nil && cfg.Platform != PlatformHost {
		return nil, nil, fmt.Errorf("core: the numerical guard is supported on the host platform only (got %q)", cfg.Platform)
	}
	// The simulated devices model the explicit fused/register kernels only;
	// implicit mode and the alternative solvers are host fast paths. (The
	// kernels cost model can still *estimate* implicit-mode stage costs —
	// see kernels.EstimateMode — it just cannot train with them.)
	if cfg.Platform != PlatformHost && (cfg.Implicit || cfg.Solver != host.SolverCholesky || cfg.BlockSize != 0) {
		return nil, nil, fmt.Errorf("core: implicit mode and solver selection are supported on the host platform only (got %q)", cfg.Platform)
	}

	if cfg.Platform == PlatformHost {
		return trainHost(mx, cfg)
	}
	dev, err := device.ByName(cfg.Platform)
	if err != nil {
		return nil, nil, err
	}
	return trainSim(mx, dev, cfg)
}

func trainHost(mx *sparse.Matrix, cfg Config) (*Model, *RunInfo, error) {
	v := cfg.Variant
	if cfg.AutoVariant {
		best, _, err := SelectVariant(mx, PlatformHost, cfg)
		if err != nil {
			return nil, nil, err
		}
		v = best
	} else if cfg.UseRecommended && v == (variant.Options{}) {
		// The fused+vector kernel is the measured host winner (see the
		// BENCH_*.json trajectory); it subsumes the paper's register strip.
		v = variant.Options{Vector: true, Fused: true}
	}
	g := cfg.Guard
	if g != nil && !g.Strict {
		// Quarantine corrupt ratings before they poison the Gram matrices
		// (a single NaN anywhere makes every later loss NaN). This mutates
		// the caller's matrix in place — both sparse views. Strict runs
		// skip it so the fault surfaces at the row that hits it.
		g.SanitizeMatrix(mx)
	}
	hostCfg := host.Config{
		K: cfg.K, Lambda: cfg.Lambda, Iterations: cfg.Iterations, Seed: cfg.Seed,
		Workers: cfg.Workers, Flat: cfg.Baseline, Variant: v,
		WeightedLambda: cfg.WeightedLambda, TrackLoss: cfg.TrackLoss,
		Tolerance: cfg.Tolerance, Obs: cfg.Obs, Guard: g,
		Implicit: cfg.Implicit, Alpha: cfg.Alpha, Solver: cfg.Solver,
		CGIters: cfg.CGIters, BlockSize: cfg.BlockSize,
	}
	var preHistory []host.IterStats
	resumedFrom := 0
	fsys := cfg.CheckpointFS
	if fsys == nil {
		fsys = checkpoint.OS
	}
	every := cfg.CheckpointEvery
	if every <= 0 {
		every = 1
	}
	// saveCkpt writes a checkpoint unconditionally; the OnIteration hook
	// applies the stride, and the interrupt path forces a final save.
	var saveCkpt func(it int, x, y *linalg.Dense, hist []host.IterStats) error
	if cfg.CheckpointDir != "" {
		if cfg.Resume {
			loadStart := time.Now()
			st, _, err := checkpoint.LoadLatest(fsys, cfg.CheckpointDir)
			if err == nil || !errors.Is(err, checkpoint.ErrNoCheckpoint) {
				var bytes int64
				if err == nil {
					bytes = st.EncodedSize()
				}
				cfg.Obs.RecordCheckpoint("load", time.Since(loadStart), bytes, err)
			}
			switch {
			case err == nil:
				if err := resumeMismatch(st, &cfg, variantName(cfg.Baseline, v)); err != nil {
					return nil, nil, err
				}
				hostCfg.StartIteration = st.Iteration
				hostCfg.ResumeX, hostCfg.ResumeY = st.X, st.Y
				preHistory = st.History
				resumedFrom = st.Iteration
			case errors.Is(err, checkpoint.ErrNoCheckpoint):
				// Nothing to resume: start fresh so crash-rerun loops can
				// pass Resume unconditionally.
			default:
				return nil, nil, fmt.Errorf("core: resuming from %s: %w", cfg.CheckpointDir, err)
			}
		}
		keep := cfg.CheckpointKeep
		if keep <= 0 {
			keep = 3
		}
		saveCkpt = func(it int, x, y *linalg.Dense, hist []host.IterStats) error {
			st := &checkpoint.State{
				Iteration: it, K: cfg.K, Lambda: cfg.Lambda,
				WeightedLambda: cfg.WeightedLambda, Seed: cfg.Seed,
				Variant: variantName(cfg.Baseline, v), X: x, Y: y,
				Precision: cfg.CheckpointPrecision,
				Implicit:  cfg.Implicit, Alpha: cfg.Alpha, Solver: cfg.Solver,
				CGIters: cfg.CGIters, BlockSize: cfg.BlockSize,
				History: concatHistory(preHistory, hist),
			}
			saveStart := time.Now()
			_, err := checkpoint.Save(fsys, cfg.CheckpointDir, st)
			cfg.Obs.RecordCheckpoint("save", time.Since(saveStart), st.EncodedSize(), err)
			if err != nil {
				return err
			}
			return checkpoint.GC(fsys, cfg.CheckpointDir, keep)
		}
		hostCfg.OnIteration = func(it int, x, y *linalg.Dense, hist []host.IterStats) error {
			if it%every != 0 && it != cfg.Iterations {
				return nil
			}
			return saveCkpt(it, x, y, hist)
		}
	}
	if cfg.Interrupt != nil {
		inner := hostCfg.OnIteration // nil without checkpointing
		hostCfg.OnIteration = func(it int, x, y *linalg.Dense, hist []host.IterStats) error {
			if inner != nil {
				if err := inner(it, x, y, hist); err != nil {
					return err
				}
			}
			select {
			case <-cfg.Interrupt:
			default:
				return nil
			}
			// Stop at this boundary. When the checkpoint stride skipped this
			// iteration, force one now so the interrupted run is resumable.
			if saveCkpt != nil && it%every != 0 && it != cfg.Iterations {
				if err := saveCkpt(it, x, y, hist); err != nil {
					return err
				}
			}
			return fmt.Errorf("%w at iteration %d/%d", ErrInterrupted, it, cfg.Iterations)
		}
	}
	start := time.Now()
	// The divergence-rollback loop: host.Train either completes, fails
	// hard, or surfaces guard.DivergedError from the watchdog. On
	// divergence (non-strict guard, rollback budget left) the run restarts
	// from the last good checkpoint — which exists because the watchdog
	// vets factors before the checkpoint hook runs — with λ escalated so
	// the replay is better conditioned than the attempt that diverged.
	// Checkpoints keep recording the ORIGINAL λ (see Config.Guard).
	curLambda := cfg.Lambda
	rollbacks := 0
	var res *host.Result
	for {
		hostCfg.Lambda = curLambda
		var err error
		res, err = host.Train(mx, hostCfg)
		if err == nil {
			break
		}
		var de *guard.DivergedError
		if g == nil || g.Strict || !errors.As(err, &de) {
			return nil, nil, err
		}
		if rollbacks >= g.MaxRollbacks {
			return nil, nil, fmt.Errorf("core: %d rollbacks exhausted: %w", rollbacks, err)
		}
		rollbacks++
		g.NoteRollback()
		cfg.Obs.RecordRollback(de.Iteration, de.Loss)
		curLambda *= g.LambdaEscalation
		hostCfg.StartIteration = 0
		hostCfg.ResumeX, hostCfg.ResumeY = nil, nil
		preHistory = nil // the checkpoint hook closure reads this variable
		if cfg.CheckpointDir != "" {
			st, _, lerr := checkpoint.LoadLatest(fsys, cfg.CheckpointDir)
			switch {
			case lerr == nil:
				// st.X/st.Y are dequantized float32 regardless of the file's
				// precision, so a rollback works from quantized checkpoints
				// too (the replay runs with escalated λ and is approximate
				// by construction — resumeMismatch's lossless rule is for
				// plain resumes, not recovery).
				hostCfg.StartIteration = st.Iteration
				hostCfg.ResumeX, hostCfg.ResumeY = st.X, st.Y
				preHistory = st.History
			case errors.Is(lerr, checkpoint.ErrNoCheckpoint):
				// Diverged before the first checkpoint: restart from scratch.
			default:
				return nil, nil, fmt.Errorf("core: rolling back from %s: %w", cfg.CheckpointDir, lerr)
			}
		}
	}
	info := &RunInfo{
		Platform: PlatformHost, Variant: variantName(cfg.Baseline, v),
		Seconds: time.Since(start).Seconds(),
		History: concatHistory(preHistory, res.History), ResumedFrom: resumedFrom,
		Rollbacks: rollbacks,
	}
	mod := &Model{K: cfg.K, X: res.X, Y: res.Y,
		Meta: Meta{Lambda: cfg.Lambda, WeightedLambda: cfg.WeightedLambda}}
	return mod, info, nil
}

func trainSim(mx *sparse.Matrix, dev *device.Device, cfg Config) (*Model, *RunInfo, error) {
	v := cfg.Variant
	switch {
	case cfg.Baseline:
	case cfg.AutoVariant:
		best, _, err := SelectVariant(mx, cfg.Platform, cfg)
		if err != nil {
			return nil, nil, err
		}
		v = best
	case cfg.UseRecommended && v == (variant.Options{}):
		if dev.Kind == device.GPU {
			v = variant.Options{Local: true, Register: true}
		} else {
			v = variant.Options{Local: true}
		}
	}
	spec := kernels.FromVariant(v)
	if cfg.Baseline {
		spec = kernels.Baseline()
	}
	res, err := kernels.Train(mx, kernels.Config{
		Device: dev, Spec: spec,
		K: cfg.K, Lambda: cfg.Lambda, Iterations: cfg.Iterations, Seed: cfg.Seed,
		Groups: cfg.Groups, GroupSize: cfg.GroupSize,
	})
	if err != nil {
		return nil, nil, err
	}
	info := &RunInfo{
		Platform: cfg.Platform, Variant: variantName(cfg.Baseline, v),
		Seconds: res.Seconds(), Simulated: true,
	}
	for i := 0; i < 3; i++ {
		info.StageSeconds[i] = dev.Seconds(res.Report.StageCycles[i])
	}
	mod := &Model{K: cfg.K, X: res.X, Y: res.Y, Meta: Meta{Lambda: cfg.Lambda}}
	return mod, info, nil
}

// resumeMismatch rejects resuming under a configuration that would not
// reproduce the checkpointed run: silently continuing with a different k,
// λ, seed, λ convention or code variant would converge to a different
// model while claiming to be the same job.
func resumeMismatch(st *checkpoint.State, cfg *Config, variantID string) error {
	switch {
	case st.K != cfg.K:
		return fmt.Errorf("core: checkpoint has k=%d, run wants k=%d", st.K, cfg.K)
	case st.Lambda != cfg.Lambda:
		return fmt.Errorf("core: checkpoint has lambda=%g, run wants %g", st.Lambda, cfg.Lambda)
	case st.Seed != cfg.Seed:
		return fmt.Errorf("core: checkpoint has seed=%d, run wants %d", st.Seed, cfg.Seed)
	case st.WeightedLambda != cfg.WeightedLambda:
		return fmt.Errorf("core: checkpoint lambda convention (weighted=%v) does not match run (weighted=%v)",
			st.WeightedLambda, cfg.WeightedLambda)
	case st.Variant != variantID:
		return fmt.Errorf("core: checkpoint was trained with variant %q, run wants %q", st.Variant, variantID)
	case st.Implicit != cfg.Implicit:
		// Resuming across the explicit/implicit boundary would continue a
		// run under a different objective entirely.
		return fmt.Errorf("core: checkpoint is from an %s-feedback run, run wants %s feedback",
			modeName(st.Implicit), modeName(cfg.Implicit))
	case st.Alpha != cfg.Alpha:
		return fmt.Errorf("core: checkpoint has alpha=%g, run wants %g", st.Alpha, cfg.Alpha)
	case st.Solver != cfg.Solver:
		return fmt.Errorf("core: checkpoint was trained with solver %q, run wants %q", st.Solver, cfg.Solver)
	case st.CGIters != cfg.CGIters:
		return fmt.Errorf("core: checkpoint has cg-iters=%d, run wants %d", st.CGIters, cfg.CGIters)
	case st.BlockSize != cfg.BlockSize:
		return fmt.Errorf("core: checkpoint has block-size=%d, run wants %d", st.BlockSize, cfg.BlockSize)
	case st.Precision != quant.F32:
		// Quantization is lossy: resuming from dequantized factors would
		// produce a run that claims bit-identity with the original but
		// is not. (Divergence rollback deliberately skips this check.)
		return fmt.Errorf("core: checkpoint factors are quantized (%v); resume requires a float32 checkpoint", st.Precision)
	}
	return nil
}

// concatHistory joins restored and freshly-recorded loss history without
// aliasing either slice.
func concatHistory(pre, cur []host.IterStats) []host.IterStats {
	if len(pre) == 0 {
		return cur
	}
	out := make([]host.IterStats, 0, len(pre)+len(cur))
	out = append(out, pre...)
	return append(out, cur...)
}

func modeName(implicit bool) string {
	if implicit {
		return "implicit"
	}
	return "explicit"
}

func variantName(baseline bool, v variant.Options) string {
	if baseline {
		return "flat baseline"
	}
	return v.String()
}

// SelectVariant empirically picks the fastest of the 8 code variants for
// the given platform by probing each with a single iteration (the paper's
// Sec. III-D selection). It returns the winner and all measurements sorted
// fastest-first.
func SelectVariant(mx *sparse.Matrix, platform string, cfg Config) (variant.Options, []variant.Measurement, error) {
	cfg.setDefaults()
	probe := cfg
	probe.Iterations = 1
	probe.AutoVariant = false
	probe.UseRecommended = false
	probe.Baseline = false

	var firstErr error
	measure := func(v variant.Options) float64 {
		probe.Variant = v
		if platform == PlatformHost {
			start := time.Now()
			_, err := host.Train(mx, host.Config{
				K: probe.K, Lambda: probe.Lambda, Iterations: 1, Seed: probe.Seed,
				Workers: probe.Workers, Variant: v,
			})
			if err != nil && firstErr == nil {
				firstErr = err
			}
			return time.Since(start).Seconds()
		}
		dev, err := device.ByName(platform)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			return 0
		}
		res, err := kernels.Train(mx, kernels.Config{
			Device: dev, Spec: kernels.FromVariant(v),
			K: probe.K, Lambda: probe.Lambda, Iterations: 1, Seed: probe.Seed,
			Groups: probe.Groups, GroupSize: probe.GroupSize,
		})
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			return 0
		}
		return res.Seconds()
	}
	best, ms := variant.SelectBest(variant.Extended(), measure)
	if firstErr != nil {
		return variant.Options{}, nil, firstErr
	}
	return best, ms, nil
}

// FeaturesOf extracts the learned selector's features for a dataset and
// platform (see variant.MLSelector).
func FeaturesOf(mx *sparse.Matrix, platform string, k int) variant.Features {
	st := sparse.RowStats(mx.R)
	return variant.Features{
		DeviceKind:  platform,
		K:           k,
		MeanRowNNZ:  st.Mean,
		RowCoV:      st.CoV,
		Rows:        float64(mx.Rows()),
		FixedFactor: float64(mx.Cols()*k) * 4 / (1 << 20),
	}
}

const modelMagic = uint32(0x414C5332) // "ALS2"

const (
	flagHasIDMaps = uint64(1)
	flagHasMeta   = uint64(2)
)

// maxVersionLen bounds the stored version label so a corrupt header cannot
// demand an absurd allocation at load time.
const maxVersionLen = 1 << 10

// Save writes the model in a compact little-endian binary format:
// header (magic, k, m, n, flags), X, Y, then — when present — the external
// user and item ID tables, then — when present — the meta section
// (length-prefixed version label, training λ, λ convention). Sections are
// flagged so old files load unchanged and old readers reject new sections
// they cannot skip.
func (m *Model) Save(w io.Writer) error {
	if (m.UserIDs == nil) != (m.ItemIDs == nil) {
		return fmt.Errorf("core: model has only one of UserIDs/ItemIDs")
	}
	if m.UserIDs != nil && (len(m.UserIDs) != m.X.Rows || len(m.ItemIDs) != m.Y.Rows) {
		return fmt.Errorf("core: ID table lengths (%d,%d) do not match factors (%d,%d)",
			len(m.UserIDs), len(m.ItemIDs), m.X.Rows, m.Y.Rows)
	}
	if len(m.Meta.Version) > maxVersionLen {
		return fmt.Errorf("core: version label longer than %d bytes", maxVersionLen)
	}
	var flags uint64
	if m.UserIDs != nil {
		flags |= flagHasIDMaps
	}
	if m.Meta != (Meta{}) {
		flags |= flagHasMeta
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	hdr := []uint64{uint64(modelMagic), uint64(m.K), uint64(m.X.Rows), uint64(m.Y.Rows), flags}
	for _, h := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, m.X.Data); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, m.Y.Data); err != nil {
		return err
	}
	if flags&flagHasIDMaps != 0 {
		if err := binary.Write(bw, binary.LittleEndian, m.UserIDs); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, m.ItemIDs); err != nil {
			return err
		}
	}
	if flags&flagHasMeta != 0 {
		if err := binary.Write(bw, binary.LittleEndian, uint64(len(m.Meta.Version))); err != nil {
			return err
		}
		if _, err := bw.WriteString(m.Meta.Version); err != nil {
			return err
		}
		var weighted uint8
		if m.Meta.WeightedLambda {
			weighted = 1
		}
		if err := binary.Write(bw, binary.LittleEndian, m.Meta.Lambda); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, weighted); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadModel reads a model written by Save.
func LoadModel(r io.Reader) (*Model, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var hdr [5]uint64
	for i := range hdr {
		if err := binary.Read(br, binary.LittleEndian, &hdr[i]); err != nil {
			return nil, fmt.Errorf("core: reading model header: %w", err)
		}
	}
	if uint32(hdr[0]) != modelMagic {
		return nil, fmt.Errorf("core: bad model magic %#x", hdr[0])
	}
	k, m, n, flags := int(hdr[1]), int(hdr[2]), int(hdr[3]), hdr[4]
	if k <= 0 || m < 0 || n < 0 {
		return nil, fmt.Errorf("core: invalid model dims k=%d m=%d n=%d", k, m, n)
	}
	// Guard against corrupt headers demanding absurd allocations: the
	// largest plausible model (full YahooMusic R1 at k=1000) is ~2G floats.
	// Compare by division — the products can overflow int64 on
	// attacker-controlled dims and wrap past the bound.
	const maxFloats = int64(1) << 32
	if int64(k) > 1<<20 || int64(m) > maxFloats/int64(k) || int64(n) > maxFloats/int64(k) {
		return nil, fmt.Errorf("core: implausible model dims k=%d m=%d n=%d", k, m, n)
	}
	mod := &Model{K: k, X: linalg.NewDense(m, k), Y: linalg.NewDense(n, k)}
	if err := binary.Read(br, binary.LittleEndian, &mod.X.Data); err != nil {
		return nil, fmt.Errorf("core: reading X: %w", err)
	}
	if err := binary.Read(br, binary.LittleEndian, &mod.Y.Data); err != nil {
		return nil, fmt.Errorf("core: reading Y: %w", err)
	}
	if flags&flagHasIDMaps != 0 {
		mod.UserIDs = make([]int64, m)
		mod.ItemIDs = make([]int64, n)
		if err := binary.Read(br, binary.LittleEndian, &mod.UserIDs); err != nil {
			return nil, fmt.Errorf("core: reading user IDs: %w", err)
		}
		if err := binary.Read(br, binary.LittleEndian, &mod.ItemIDs); err != nil {
			return nil, fmt.Errorf("core: reading item IDs: %w", err)
		}
	}
	if flags&flagHasMeta != 0 {
		var vlen uint64
		if err := binary.Read(br, binary.LittleEndian, &vlen); err != nil {
			return nil, fmt.Errorf("core: reading meta: %w", err)
		}
		if vlen > maxVersionLen {
			return nil, fmt.Errorf("core: implausible version length %d", vlen)
		}
		vbuf := make([]byte, vlen)
		if _, err := io.ReadFull(br, vbuf); err != nil {
			return nil, fmt.Errorf("core: reading version label: %w", err)
		}
		mod.Meta.Version = string(vbuf)
		var weighted uint8
		if err := binary.Read(br, binary.LittleEndian, &mod.Meta.Lambda); err != nil {
			return nil, fmt.Errorf("core: reading meta lambda: %w", err)
		}
		if err := binary.Read(br, binary.LittleEndian, &weighted); err != nil {
			return nil, fmt.Errorf("core: reading meta flags: %w", err)
		}
		mod.Meta.WeightedLambda = weighted != 0
	}
	return mod, nil
}
