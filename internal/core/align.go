package core

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/sparse"
)

// AlignRatings loads a rating file into the model's index space so it can
// be evaluated or used to exclude rated items.
//
//   - For a compact model (trained with ID remapping), the file's external
//     IDs are translated through the model's stored ID tables; every user
//     and item in the file must exist in the model.
//   - For a plain model, IDs are used directly and the matrix is padded to
//     the model's dimensions; the file must not exceed them.
func AlignRatings(m *Model, path string, oneBased bool) (*sparse.Matrix, error) {
	if m.UserIDs != nil {
		cd, err := dataset.LoadCompact(path, oneBased)
		if err != nil {
			return nil, err
		}
		return alignCompact(m, cd)
	}
	ds, err := dataset.Load(path, oneBased)
	if err != nil {
		return nil, err
	}
	if ds.Matrix.Rows() > m.X.Rows || ds.Matrix.Cols() > m.Y.Rows {
		return nil, fmt.Errorf("core: rating file (%dx%d) larger than model (%dx%d); was the model trained with -compact?",
			ds.Matrix.Rows(), ds.Matrix.Cols(), m.X.Rows, m.Y.Rows)
	}
	coo := ds.Matrix.R.ToCOO()
	coo.Rows, coo.Cols = m.X.Rows, m.Y.Rows
	return sparse.NewMatrix(coo)
}

// alignCompact remaps an already-compacted dataset into the model's dense
// index order (which followed the training file's sorted external IDs).
func alignCompact(m *Model, cd *dataset.CompactDataset) (*sparse.Matrix, error) {
	userTo := make(map[int64]int, len(m.UserIDs))
	for i, id := range m.UserIDs {
		userTo[id] = i
	}
	itemTo := make(map[int64]int, len(m.ItemIDs))
	for i, id := range m.ItemIDs {
		itemTo[id] = i
	}
	out := sparse.NewCOO(m.X.Rows, m.Y.Rows)
	for u := 0; u < cd.Matrix.Rows(); u++ {
		cols, vals := cd.Matrix.R.Row(u)
		if len(cols) == 0 {
			continue
		}
		mu, ok := userTo[cd.Users.Orig(u)]
		if !ok {
			return nil, fmt.Errorf("core: user %d not in the model", cd.Users.Orig(u))
		}
		for j, c := range cols {
			mi, ok := itemTo[cd.Items.Orig(int(c))]
			if !ok {
				return nil, fmt.Errorf("core: item %d not in the model", cd.Items.Orig(int(c)))
			}
			out.Append(mu, mi, vals[j])
		}
	}
	out.Rows, out.Cols = m.X.Rows, m.Y.Rows
	return sparse.NewMatrix(out)
}

// UserIndex resolves an external user ID to the model's dense row: through
// the ID table for compact models, identity (with bounds check) otherwise.
func (m *Model) UserIndex(orig int64) (int, bool) {
	if m.UserIDs == nil {
		if orig < 0 || orig >= int64(m.X.Rows) {
			return 0, false
		}
		return int(orig), true
	}
	for i, id := range m.UserIDs {
		if id == orig {
			return i, true
		}
	}
	return 0, false
}

// ItemLabel returns the external ID for a dense item index (identity for
// plain models).
func (m *Model) ItemLabel(dense int) int64 {
	if m.ItemIDs == nil {
		return int64(dense)
	}
	return m.ItemIDs[dense]
}
