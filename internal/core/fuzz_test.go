package core

import (
	"bytes"
	"testing"
)

// FuzzLoadModel: the binary model parser must never panic or allocate
// unboundedly on corrupt input, and anything it accepts must survive a
// save/load round trip.
func FuzzLoadModel(f *testing.F) {
	// Seed with a real model.
	mx := testMatrix(f)
	model, _, err := Train(mx, Config{Seed: 1, Iterations: 1, K: 4})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add(make([]byte, 40))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := LoadModel(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := m.Save(&out); err != nil {
			t.Fatalf("accepted model failed to save: %v", err)
		}
		if _, err := LoadModel(&out); err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
	})
}
