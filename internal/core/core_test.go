package core

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/linalg"
	"repro/internal/sparse"
	"repro/internal/variant"
)

func testMatrix(t testing.TB) *sparse.Matrix {
	t.Helper()
	return dataset.YahooR4.ScaledForBench(0.05).Generate(21).Matrix
}

func TestTrainHostDefaults(t *testing.T) {
	mx := testMatrix(t)
	model, info, err := Train(mx, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if model.K != 10 {
		t.Fatalf("K default = %d", model.K)
	}
	if info.Platform != PlatformHost || info.Simulated {
		t.Fatalf("info = %+v", info)
	}
	if info.Seconds <= 0 {
		t.Fatal("no wall-clock recorded")
	}
	if rmse := model.RMSE(mx.R); math.IsNaN(rmse) || rmse > 1.2 {
		t.Fatalf("training RMSE = %g", rmse)
	}
	if mae := model.MAE(mx.R); math.IsNaN(mae) || mae >= model.RMSE(mx.R)+1 {
		t.Fatalf("MAE = %g", mae)
	}
}

func TestTrainSimPlatforms(t *testing.T) {
	mx := testMatrix(t)
	for _, platform := range []string{"GPU", "MIC", "CPU"} {
		model, info, err := Train(mx, Config{Platform: platform, Seed: 1, UseRecommended: true, Iterations: 2})
		if err != nil {
			t.Fatalf("%s: %v", platform, err)
		}
		if !info.Simulated || info.Seconds <= 0 {
			t.Fatalf("%s: info = %+v", platform, info)
		}
		var stageSum float64
		for _, s := range info.StageSeconds {
			stageSum += s
		}
		if stageSum <= 0 {
			t.Fatalf("%s: no stage breakdown", platform)
		}
		if rmse := model.RMSE(mx.R); math.IsNaN(rmse) {
			t.Fatalf("%s: NaN RMSE", platform)
		}
	}
}

// TestPlatformsAgree: host and all simulated platforms produce the same
// factors for the same seed — portability without numerical drift.
func TestPlatformsAgree(t *testing.T) {
	mx := testMatrix(t)
	ref, _, err := Train(mx, Config{Seed: 5, Iterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, platform := range []string{"GPU", "MIC", "CPU"} {
		m, _, err := Train(mx, Config{Platform: platform, Seed: 5, Iterations: 2, UseRecommended: true})
		if err != nil {
			t.Fatal(err)
		}
		if d := linalg.MaxAbsDiff(ref.X, m.X); d > 2e-3 {
			t.Errorf("%s: X deviates by %g", platform, d)
		}
	}
}

func TestTrainErrors(t *testing.T) {
	if _, _, err := Train(nil, Config{}); err == nil {
		t.Fatal("accepted nil matrix")
	}
	coo := sparse.NewCOO(2, 2)
	empty, err := sparse.NewMatrix(coo)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Train(empty, Config{}); err == nil {
		t.Fatal("accepted empty matrix")
	}
	mx := testMatrix(t)
	if _, _, err := Train(mx, Config{Platform: "FPGA"}); err == nil {
		t.Fatal("accepted unknown platform")
	}
}

func TestBaselineRun(t *testing.T) {
	mx := testMatrix(t)
	_, info, err := Train(mx, Config{Platform: "GPU", Baseline: true, Seed: 1, Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if info.Variant != "flat baseline" {
		t.Fatalf("variant = %q", info.Variant)
	}
	// The flat baseline must be slower than the recommended variant.
	_, best, err := Train(mx, Config{Platform: "GPU", UseRecommended: true, Seed: 1, Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if info.Seconds <= best.Seconds {
		t.Fatalf("baseline (%.4fs) not slower than optimized (%.4fs)", info.Seconds, best.Seconds)
	}
}

func TestSelectVariantSim(t *testing.T) {
	mx := testMatrix(t)
	best, ms, err := SelectVariant(mx, "GPU", Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 12 {
		t.Fatalf("%d measurements, want 12 (8 paper + 4 fused)", len(ms))
	}
	// On the GPU the winner must include local memory plus the register
	// restructuring — either the paper's register strip or the fused kernel
	// that subsumes it (vectors change nothing there).
	if !best.Local || !(best.Register || best.Fused) {
		t.Fatalf("GPU empirical best = %+v, want local+register/fused", best)
	}
	// Simulated platform selection is deterministic.
	best2, _, err := SelectVariant(mx, "GPU", Config{Seed: 1})
	if err != nil || best2.Local != best.Local || best2.Register != best.Register {
		t.Fatalf("selection not deterministic: %+v vs %+v (%v)", best, best2, err)
	}
}

func TestSelectVariantCPUAvoidsRegisters(t *testing.T) {
	mx := testMatrix(t)
	best, _, err := SelectVariant(mx, "CPU", Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Paper: on CPU/MIC registers+local degrades; with explicit vectors the
	// penalty is repaired, so acceptable winners are local(+vector) combos
	// but never register-without-vector.
	if best.Register && !best.Vector {
		t.Fatalf("CPU empirical best = %+v includes registers without vectors", best)
	}
	if !best.Local {
		t.Fatalf("CPU empirical best = %+v lacks local memory", best)
	}
}

func TestAutoVariantTrains(t *testing.T) {
	mx := testMatrix(t)
	model, info, err := Train(mx, Config{Platform: "MIC", AutoVariant: true, Seed: 2, Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if model == nil || info.Variant == "" {
		t.Fatal("auto-variant run incomplete")
	}
}

func TestRecommendExcludesRated(t *testing.T) {
	mx := testMatrix(t)
	model, _, err := Train(mx, Config{Seed: 3, Iterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	u := 0
	for mx.R.RowNNZ(u) == 0 {
		u++
	}
	top := model.Recommend(mx.R, u, 10)
	if len(top) == 0 {
		t.Fatal("no recommendations")
	}
	rated, _ := mx.R.Row(u)
	ratedSet := map[int]bool{}
	for _, c := range rated {
		ratedSet[int(c)] = true
	}
	for _, item := range top {
		if ratedSet[item] {
			t.Fatalf("recommended already-rated item %d", item)
		}
	}
}

func TestModelSaveLoad(t *testing.T) {
	mx := testMatrix(t)
	model, _, err := Train(mx, Config{Seed: 4, Iterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.K != model.K || got.X.Rows != model.X.Rows || got.Y.Rows != model.Y.Rows {
		t.Fatal("model dims changed across save/load")
	}
	if d := linalg.MaxAbsDiff(model.X, got.X); d != 0 {
		t.Fatalf("X changed by %g", d)
	}
	if d := linalg.MaxAbsDiff(model.Y, got.Y); d != 0 {
		t.Fatalf("Y changed by %g", d)
	}
}

func TestModelSaveLoadWithIDMaps(t *testing.T) {
	mx := testMatrix(t)
	model, _, err := Train(mx, Config{Seed: 4, Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	model.UserIDs = make([]int64, model.X.Rows)
	model.ItemIDs = make([]int64, model.Y.Rows)
	for i := range model.UserIDs {
		model.UserIDs[i] = int64(i)*7 + 1000
	}
	for i := range model.ItemIDs {
		model.ItemIDs[i] = int64(i)*3 + 5
	}
	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.UserIDs) != len(model.UserIDs) || len(got.ItemIDs) != len(model.ItemIDs) {
		t.Fatal("ID tables lost across save/load")
	}
	for i := range got.UserIDs {
		if got.UserIDs[i] != model.UserIDs[i] {
			t.Fatalf("UserIDs[%d] = %d", i, got.UserIDs[i])
		}
	}
	if got.ItemIDs[1] != 8 {
		t.Fatalf("ItemIDs[1] = %d", got.ItemIDs[1])
	}
}

func TestModelSaveRejectsInconsistentIDMaps(t *testing.T) {
	mx := testMatrix(t)
	model, _, err := Train(mx, Config{Seed: 4, Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	model.UserIDs = []int64{1} // wrong length, no item table
	var buf bytes.Buffer
	if err := model.Save(&buf); err == nil {
		t.Fatal("Save accepted one-sided ID tables")
	}
	model.ItemIDs = []int64{2}
	if err := model.Save(&buf); err == nil {
		t.Fatal("Save accepted wrong-length ID tables")
	}
}

func TestLoadModelErrors(t *testing.T) {
	if _, err := LoadModel(bytes.NewReader(make([]byte, 64))); err == nil {
		t.Fatal("accepted bad magic")
	}
	if _, err := LoadModel(bytes.NewReader(nil)); err == nil {
		t.Fatal("accepted empty stream")
	}
}

func TestFeaturesOf(t *testing.T) {
	mx := testMatrix(t)
	f := FeaturesOf(mx, "GPU", 10)
	if f.DeviceKind != "GPU" || f.K != 10 || f.Rows != float64(mx.Rows()) {
		t.Fatalf("features wrong: %+v", f)
	}
	if f.MeanRowNNZ <= 0 || f.FixedFactor <= 0 {
		t.Fatalf("degenerate features: %+v", f)
	}
	// Usable by the ML selector end to end.
	sel := variant.NewMLSelector(1)
	sel.Train(variant.Sample{Features: f, Best: variant.Options{Local: true}})
	got, err := sel.Predict(f)
	if err != nil || !got.Local {
		t.Fatalf("selector round-trip failed: %+v %v", got, err)
	}
}

func TestTrackLossHistory(t *testing.T) {
	mx := testMatrix(t)
	_, info, err := Train(mx, Config{Seed: 6, Iterations: 3, TrackLoss: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(info.History) != 6 {
		t.Fatalf("history length %d, want 6 half-steps", len(info.History))
	}
}

// TestFoldInUser: a held-out user folded in against frozen item factors
// must predict their own ratings about as well as trained users do.
func TestFoldInUser(t *testing.T) {
	mx := testMatrix(t)
	// Train without the last user's ratings.
	last := mx.Rows() - 1
	for mx.R.RowNNZ(last) < 4 {
		last--
	}
	coo := sparse.NewCOO(mx.Rows(), mx.Cols())
	for u := 0; u < mx.Rows(); u++ {
		if u == last {
			continue
		}
		cols, vals := mx.R.Row(u)
		for j, c := range cols {
			coo.Append(u, int(c), vals[j])
		}
	}
	coo.Rows, coo.Cols = mx.Rows(), mx.Cols()
	train, err := sparse.NewMatrix(coo)
	if err != nil {
		t.Fatal(err)
	}
	model, _, err := Train(train, Config{K: 8, Lambda: 0.1, Iterations: 6, Seed: 2, WeightedLambda: true})
	if err != nil {
		t.Fatal(err)
	}
	cols, vals := mx.R.Row(last)
	xu, err := model.FoldInUser(cols, vals, 0.1*float32(len(cols)))
	if err != nil {
		t.Fatal(err)
	}
	scores := model.ScoreItems(xu)
	var se float64
	for j, c := range cols {
		d := scores[c] - float64(vals[j])
		se += d * d
	}
	rmse := math.Sqrt(se / float64(len(cols)))
	if math.IsNaN(rmse) || rmse > 1.5 {
		t.Fatalf("fold-in RMSE on own ratings = %g", rmse)
	}
}

func TestFoldInErrors(t *testing.T) {
	mx := testMatrix(t)
	model, _, err := Train(mx, Config{K: 4, Iterations: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := model.FoldInUser([]int32{0, 1}, []float32{5}, 0.1); err == nil {
		t.Fatal("accepted mismatched lengths")
	}
	if _, err := model.FoldInUser([]int32{int32(mx.Cols()) + 5}, []float32{5}, 0.1); err == nil {
		t.Fatal("accepted out-of-range item")
	}
	x, err := model.FoldInUser(nil, nil, 0.1)
	if err != nil || len(x) != 4 {
		t.Fatalf("empty fold-in: %v %v", x, err)
	}
}

// TestAutoVariantHost: the empirical selector also works on the host
// (wall-clock probes); the winner varies by machine, so only completion
// and a full measurement set are asserted.
func TestAutoVariantHost(t *testing.T) {
	mx := testMatrix(t)
	best, ms, err := SelectVariant(mx, PlatformHost, Config{Seed: 1, K: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 12 {
		t.Fatalf("%d measurements", len(ms))
	}
	_ = best
	model, info, err := Train(mx, Config{AutoVariant: true, Seed: 1, K: 6, Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if model == nil || info.Variant == "" {
		t.Fatal("host auto-variant run incomplete")
	}
}

func TestTrainSimWithExplicitVariantAndGrid(t *testing.T) {
	mx := testMatrix(t)
	_, info, err := Train(mx, Config{Platform: "CPU", Seed: 1, Iterations: 1,
		Variant: variant.Options{Vector: true}, Groups: 512, GroupSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	if info.Variant != "thread batching+vector" {
		t.Fatalf("variant = %q", info.Variant)
	}
}
