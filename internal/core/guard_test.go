package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/guard"
	"repro/internal/sparse"
)

// TestDivergenceRollback: a chaos loss blow-up mid-run must roll training
// back to the last good checkpoint, escalate λ, and still finish with
// finite factors — the watchdog's full recovery loop.
func TestDivergenceRollback(t *testing.T) {
	mx := ckptMatrix(t)
	g := guard.New(guard.Policy{})
	g.Chaos = &guard.Chaos{BlowUpIter: 2}
	fsys := checkpoint.NewMemFS()
	model, info, err := Train(mx, Config{
		K: 5, Lambda: 0.1, Iterations: 4, Seed: 3,
		CheckpointDir: "ckpts", CheckpointFS: fsys, Guard: g,
	})
	if err != nil {
		t.Fatal(err)
	}
	if info.Rollbacks != 1 {
		t.Fatalf("RunInfo.Rollbacks = %d, want 1", info.Rollbacks)
	}
	if g.Rollbacks() != 1 {
		t.Fatalf("guard counted %d rollbacks, want 1", g.Rollbacks())
	}
	if !guard.FiniteVec(model.X.Data) || !guard.FiniteVec(model.Y.Data) {
		t.Fatal("post-rollback factors are not finite")
	}
	if rmse := model.RMSE(mx.R); math.IsNaN(rmse) || rmse > 1.5 {
		t.Fatalf("post-rollback RMSE = %g", rmse)
	}
	// The saved checkpoints must carry the ORIGINAL λ (escalation is a
	// transient recovery measure, not a config change), so a later -resume
	// of the same command line passes the config-mismatch check.
	st, _, err := checkpoint.LoadLatest(fsys, "ckpts")
	if err != nil {
		t.Fatal(err)
	}
	if st.Lambda != 0.1 {
		t.Fatalf("checkpoint records λ=%g, want the configured 0.1", st.Lambda)
	}
}

// TestRollbackWithoutCheckpointRestarts: with no checkpoint directory the
// rollback degrades to a from-scratch restart with escalated λ and must
// still converge.
func TestRollbackWithoutCheckpointRestarts(t *testing.T) {
	mx := ckptMatrix(t)
	g := guard.New(guard.Policy{})
	g.Chaos = &guard.Chaos{BlowUpIter: 2}
	model, info, err := Train(mx, Config{K: 5, Lambda: 0.1, Iterations: 3, Seed: 3, Guard: g})
	if err != nil {
		t.Fatal(err)
	}
	if info.Rollbacks != 1 {
		t.Fatalf("RunInfo.Rollbacks = %d, want 1", info.Rollbacks)
	}
	if !guard.FiniteVec(model.X.Data) {
		t.Fatal("factors not finite after checkpoint-less restart")
	}
}

// TestRollbacksExhausted: once the rollback budget is spent, the run must
// surface the typed divergence error instead of looping forever.
func TestRollbacksExhausted(t *testing.T) {
	mx := ckptMatrix(t)
	g := guard.New(guard.Policy{})
	g.MaxRollbacks = 0 // no budget: the first divergence is fatal
	g.Chaos = &guard.Chaos{BlowUpIter: 2}
	_, _, err := Train(mx, Config{K: 5, Lambda: 0.1, Iterations: 3, Seed: 3, Guard: g})
	if !errors.Is(err, guard.ErrDiverged) {
		t.Fatalf("error = %v, want ErrDiverged", err)
	}
	var de *guard.DivergedError
	if !errors.As(err, &de) || de.Iteration != 2 {
		t.Fatalf("error %v does not name iteration 2", err)
	}
}

// TestStrictDivergenceFailsFast: under Strict the watchdog's finding is
// fatal immediately — no rollback, no λ escalation.
func TestStrictDivergenceFailsFast(t *testing.T) {
	mx := ckptMatrix(t)
	g := guard.New(guard.Policy{Strict: true})
	g.Chaos = &guard.Chaos{BlowUpIter: 2}
	fsys := checkpoint.NewMemFS()
	_, _, err := Train(mx, Config{
		K: 5, Lambda: 0.1, Iterations: 3, Seed: 3,
		CheckpointDir: "ckpts", CheckpointFS: fsys, Guard: g,
	})
	if !errors.Is(err, guard.ErrDiverged) {
		t.Fatalf("error = %v, want ErrDiverged", err)
	}
	if g.Rollbacks() != 0 {
		t.Fatal("strict mode rolled back")
	}
}

// TestGuardSanitizesInput: corrupt ratings (NaN/Inf/huge) are quarantined
// before training in non-strict mode, and the counters say what was fixed.
func TestGuardSanitizesInput(t *testing.T) {
	// Sanitizing mutates the matrix in place, so each phase builds its own.
	poisoned := func() *sparse.Matrix {
		coo := sparse.NewCOO(40, 30)
		for u := 0; u < 40; u++ {
			for j := 0; j < 4; j++ {
				coo.Append(u, (u*3+j*7)%30, float32(1+(u+j)%5))
			}
		}
		coo.Append(0, 11, float32(math.NaN()))
		coo.Append(1, 12, float32(math.Inf(1)))
		coo.Append(2, 13, 1e30)
		mx, err := sparse.NewMatrix(coo)
		if err != nil {
			t.Fatal(err)
		}
		return mx
	}
	mx := poisoned()
	g := guard.New(guard.Policy{})
	model, _, err := Train(mx, Config{K: 4, Lambda: 0.1, Iterations: 3, Seed: 2, Guard: g})
	if err != nil {
		t.Fatal(err)
	}
	if got := g.TotalSanitized(); got != 3 {
		t.Fatalf("sanitized %d ratings, want 3", got)
	}
	if g.Sanitized(guard.SanitizedNaN) != 1 || g.Sanitized(guard.SanitizedInf) != 1 || g.Sanitized(guard.SanitizedHuge) != 1 {
		t.Fatalf("per-kind counts wrong: nan=%d inf=%d huge=%d",
			g.Sanitized(guard.SanitizedNaN), g.Sanitized(guard.SanitizedInf), g.Sanitized(guard.SanitizedHuge))
	}
	if !guard.FiniteVec(model.X.Data) || !guard.FiniteVec(model.Y.Data) {
		t.Fatal("factors not finite after sanitizing")
	}
	// Strict must leave the poison in and die inside training with an error
	// that names the failing iteration and row.
	gs := guard.New(guard.Policy{Strict: true})
	_, _, err = Train(poisoned(), Config{K: 4, Lambda: 0.1, Iterations: 3, Seed: 2, Guard: gs})
	if err == nil {
		t.Fatal("strict run trained through NaN ratings")
	}
	if errors.Is(err, guard.ErrDiverged) {
		return // the watchdog caught it at the iteration boundary: acceptable
	}
	var re *guard.RowError
	if !errors.As(err, &re) {
		t.Fatalf("strict error %v is neither RowError nor DivergedError", err)
	}
}

// TestGuardNonHostRejected: the guard is a host-path feature; asking for it
// on a simulated device must be a typed configuration error, not a silent
// no-op.
func TestGuardNonHostRejected(t *testing.T) {
	mx := ckptMatrix(t)
	g := guard.New(guard.Policy{})
	_, _, err := Train(mx, Config{Platform: "GPU", UseRecommended: true, Guard: g})
	if err == nil {
		t.Fatal("guard accepted on a simulated platform")
	}
}
