// Package obs is the repo-wide observability core: a dependency-free
// Prometheus-text metrics registry (counters, gauges, histograms, with
// labels), a training-run span recorder exportable as a Chrome trace-event
// file and a structured JSONL event log, a strict exposition-format
// validator, a tiny debug HTTP server (/metrics, /runinfo, /debug/pprof/*),
// and the shared -cpuprofile/-memprofile flag plumbing.
//
// The package exists because the paper's whole tuning methodology
// (Sec. V-C, Fig. 8) is hotspot-guided — measure the S1/S2/S3 stage
// shares, optimize the dominant stage, repeat — and that loop needs the
// real training path to be observable while it runs, not only through
// one-off -cpuprofile captures. Everything here is stdlib-only so any
// layer (host solver, checkpointing, serving) can depend on it without
// cycles or third-party baggage.
//
// Design rules:
//
//   - The disabled path costs nothing: instrumentation hooks are nil
//     checks, and the host row-update hot loop stays zero-alloc (guarded
//     by host.RowUpdateAllocs' regression test).
//   - Recording is cheap and coarse-grained: per half-iteration and per
//     worker-rendezvous, never per row; per-row stage timers touch only a
//     preallocated per-worker accumulator.
//   - Exposition output is strict: ValidateExposition parses what
//     WritePrometheus renders, and the CI smoke lane holds a live scrape
//     of a real training run to it.
package obs
