package obs

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
)

// ProfileFlags is the -cpuprofile/-memprofile plumbing shared by the
// command-line tools (previously duplicated in alstrain and alsbench):
// register the flags, Start after flag.Parse, and Stop on the way out.
type ProfileFlags struct {
	CPU string
	Mem string

	cpuFile *os.File
}

// Register adds -cpuprofile and -memprofile to fs (flag.CommandLine for
// the standard binaries).
func (p *ProfileFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&p.CPU, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&p.Mem, "memprofile", "", "write a heap profile to this file on exit")
}

// Start begins CPU profiling when -cpuprofile was given. Call Stop (e.g.
// deferred) to flush profiles.
func (p *ProfileFlags) Start() error {
	if p.CPU == "" {
		return nil
	}
	f, err := os.Create(p.CPU)
	if err != nil {
		return err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return err
	}
	p.cpuFile = f
	return nil
}

// Stop ends CPU profiling and writes the heap profile when -memprofile was
// given.
func (p *ProfileFlags) Stop() error {
	var firstErr error
	if p.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := p.cpuFile.Close(); err != nil {
			firstErr = err
		}
		p.cpuFile = nil
	}
	if p.Mem != "" {
		f, err := os.Create(p.Mem)
		if err != nil {
			return firstOf(firstErr, err)
		}
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			return firstOf(firstErr, fmt.Errorf("writing heap profile: %w", err))
		}
		if err := f.Close(); err != nil {
			return firstOf(firstErr, err)
		}
	}
	return firstErr
}

func firstOf(a, b error) error {
	if a != nil {
		return a
	}
	return b
}
